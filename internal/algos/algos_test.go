package algos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/graph"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/sched"
	"repro/internal/spray"
)

// schedulers enumerates every scheduler in the repository, as used by the
// paper's comparison (Figure 2).
func schedulers(workers int) map[string]func() sched.Scheduler[uint32] {
	return map[string]func() sched.Scheduler[uint32]{
		"smq": func() sched.Scheduler[uint32] {
			return core.NewStealingMQ[uint32](core.Config{Workers: workers})
		},
		"smq_skip": func() sched.Scheduler[uint32] {
			return core.NewStealingMQSkipList[uint32](core.Config{Workers: workers})
		},
		"smq_numa": func() sched.Scheduler[uint32] {
			return core.NewStealingMQ[uint32](core.Config{Workers: workers, NUMANodes: 2})
		},
		"mq_classic": func() sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Classic(workers, 4))
		},
		"mq_opt": func() sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Config{Workers: workers, C: 4,
				Insert: mq.InsertBatch, BatchInsert: 8,
				Delete: mq.DeleteBatch, BatchDelete: 8})
		},
		"reld": func() sched.Scheduler[uint32] {
			return mq.New[uint32](mq.RELD(workers))
		},
		"obim": func() sched.Scheduler[uint32] {
			return obim.New[uint32](obim.Config{Workers: workers, Delta: 6, ChunkSize: 16})
		},
		"pmod": func() sched.Scheduler[uint32] {
			return obim.New[uint32](obim.Config{Workers: workers, Delta: 6, ChunkSize: 16,
				Adaptive: true, AdaptInterval: 512})
		},
		"spray": func() sched.Scheduler[uint32] {
			return spray.New[uint32](spray.Config{Workers: workers})
		},
		"emq": func() sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: workers})
		},
		"emq_unbuffered": func() sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: workers,
				Stickiness: 1, InsertBuffer: 1, DeleteBuffer: 1})
		},
	}
}

func testGraphs() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"grid": graph.GenerateRoadGrid(24, 24, 7),
		"rmat": graph.GenerateRMAT(9, 8, graph.DefaultRMATParams(), 8),
	}
}

func TestSSSPMatchesDijkstraAllSchedulers(t *testing.T) {
	for gname, g := range testGraphs() {
		src := g.MaxOutDegreeVertex()
		want, _ := DijkstraSeq(g, src)
		for sname, mk := range schedulers(4) {
			got, res := SSSP(g, src, mk())
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: dist[%d] = %d, want %d", gname, sname, v, got[v], want[v])
				}
			}
			if res.Tasks == 0 {
				t.Fatalf("%s/%s: no tasks recorded", gname, sname)
			}
			if res.Wasted > res.Tasks {
				t.Fatalf("%s/%s: wasted %d > tasks %d", gname, sname, res.Wasted, res.Tasks)
			}
		}
	}
}

func TestBFSMatchesLevelsAllSchedulers(t *testing.T) {
	for gname, g := range testGraphs() {
		src := g.MaxOutDegreeVertex()
		want := BFSSeq(g, src)
		for sname, mk := range schedulers(4) {
			got, _ := BFS(g, src, mk())
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s/%s: level[%d] = %d, want %d", gname, sname, v, got[v], want[v])
				}
			}
		}
	}
}

func TestAStarMatchesDijkstraAllSchedulers(t *testing.T) {
	g := graph.GenerateRoadGrid(30, 30, 3)
	src := uint32(0)
	target := uint32(g.N - 1)
	dist, _ := DijkstraSeq(g, src)
	want := dist[target]
	if want == Unreachable {
		t.Fatal("test graph has unreachable corner")
	}
	seq, _ := AStarSeq(g, src, target)
	if seq != want {
		t.Fatalf("sequential A* = %d, Dijkstra = %d", seq, want)
	}
	for sname, mk := range schedulers(4) {
		got, _ := AStar(g, src, target, mk())
		if got != want {
			t.Fatalf("%s: A* = %d, want %d", sname, got, want)
		}
	}
}

func TestAStarUnreachable(t *testing.T) {
	// Two disconnected vertices.
	g := graph.MustBuild(2, nil, []graph.Coord{{X: 0, Y: 0}, {X: 5, Y: 5}})
	got, _ := AStar(g, 0, 1, core.NewStealingMQ[uint32](core.Config{Workers: 2}))
	if got != Unreachable {
		t.Fatalf("A* on disconnected pair = %d, want Unreachable", got)
	}
}

func TestMSTMatchesKruskalAllSchedulers(t *testing.T) {
	for gname, g := range map[string]*graph.CSR{
		"grid":  graph.GenerateRoadGrid(16, 16, 5),
		"grid2": graph.GenerateRoadGrid(8, 40, 6),
	} {
		wantW, wantE := KruskalMST(g)
		for sname, mk := range schedulers(4) {
			gotW, gotE, res := BoruvkaMST(g, mk())
			if gotW != wantW {
				t.Fatalf("%s/%s: MST weight %d, want %d", gname, sname, gotW, wantW)
			}
			if gotE != wantE {
				t.Fatalf("%s/%s: MST edges %d, want %d", gname, sname, gotE, wantE)
			}
			if res.Tasks == 0 {
				t.Fatalf("%s/%s: no tasks recorded", gname, sname)
			}
		}
	}
}

func TestMSTDisconnected(t *testing.T) {
	// Forest: two separate 2-cliques (undirected = both directions).
	g := graph.MustBuild(5, []graph.Edge{
		{U: 0, V: 1, W: 3}, {U: 1, V: 0, W: 3},
		{U: 2, V: 3, W: 4}, {U: 3, V: 2, W: 4},
	}, nil)
	wantW, wantE := KruskalMST(g)
	gotW, gotE, _ := BoruvkaMST(g, core.NewStealingMQ[uint32](core.Config{Workers: 2}))
	if gotW != wantW || gotE != wantE {
		t.Fatalf("forest MST = (%d,%d), want (%d,%d)", gotW, gotE, wantW, wantE)
	}
	if wantE != 2 {
		t.Fatalf("sanity: expected 2 forest edges, Kruskal said %d", wantE)
	}
}

func TestPageRankMatchesSequential(t *testing.T) {
	g := graph.GenerateRMAT(8, 8, graph.DefaultRMATParams(), 13)
	cfg := PageRankConfig{Damping: 0.85, Epsilon: 1e-7}
	want := PageRankSeq(g, cfg)
	for sname, mk := range map[string]func() sched.Scheduler[uint32]{
		"smq":  func() sched.Scheduler[uint32] { return core.NewStealingMQ[uint32](core.Config{Workers: 4}) },
		"obim": func() sched.Scheduler[uint32] { return obim.New[uint32](obim.Config{Workers: 4}) },
	} {
		got, res := ResidualPageRank(g, cfg, mk())
		// Residual propagation truncates at epsilon; both runs carry
		// total truncation error <= n*eps/(1-d) in L1.
		tol := float64(g.N) * cfg.Epsilon / (1 - cfg.Damping) * 2
		if d := L1Diff(got, want); d > tol {
			t.Fatalf("%s: PageRank L1 diff %g > tol %g", sname, d, tol)
		}
		if res.Tasks == 0 {
			t.Fatalf("%s: no tasks recorded", sname)
		}
	}
}

func TestSSSPSingleWorker(t *testing.T) {
	g := graph.GenerateRoadGrid(12, 12, 2)
	want, seq := DijkstraSeq(g, 0)
	got, res := SSSP(g, 0, core.NewStealingMQ[uint32](core.Config{Workers: 1}))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	// A single worker with an exact-ish queue should do work comparable
	// to sequential Dijkstra (within the SMQ's bounded rank relaxation).
	if res.WorkIncrease(seq.Tasks) > 3 {
		t.Fatalf("single-worker work increase %.2f unexpectedly high", res.WorkIncrease(seq.Tasks))
	}
}

func TestWorkIncreaseZeroBaseline(t *testing.T) {
	if (Result{Tasks: 5}).WorkIncrease(0) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestUnreachableVerticesStayInf(t *testing.T) {
	// src in one component; other component must stay Unreachable.
	g := graph.MustBuild(4, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1},
		{U: 2, V: 3, W: 1}, {U: 3, V: 2, W: 1},
	}, nil)
	got, _ := SSSP(g, 0, core.NewStealingMQ[uint32](core.Config{Workers: 2}))
	if got[2] != Unreachable || got[3] != Unreachable {
		t.Fatalf("unreachable vertices got distances: %v", got)
	}
	if got[1] != 1 {
		t.Fatalf("dist[1] = %d", got[1])
	}
}

func TestDijkstraSeqKnownGraph(t *testing.T) {
	//      0 -1-> 1 -2-> 2, plus direct 0 -7-> 2 (shortcut loses).
	g := graph.MustBuild(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 7},
	}, nil)
	dist, res := DijkstraSeq(g, 0)
	if dist[0] != 0 || dist[1] != 1 || dist[2] != 3 {
		t.Fatalf("dist = %v", dist)
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks counted")
	}
}

func TestKruskalKnownGraph(t *testing.T) {
	// Triangle with weights 1,2,3: MST = 1+2.
	g := graph.MustBuild(3, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1},
		{U: 1, V: 2, W: 2}, {U: 2, V: 1, W: 2},
		{U: 0, V: 2, W: 3}, {U: 2, V: 0, W: 3},
	}, nil)
	w, e := KruskalMST(g)
	if w != 3 || e != 2 {
		t.Fatalf("Kruskal = (%d,%d), want (3,2)", w, e)
	}
}
