// knn: parallel k-nearest-neighbour graph construction and exact
// Euclidean MST over a generated point set, driven by relaxed
// schedulers (task priority = quantized distance, so dense regions
// resolve first), verified against the sequential O(n^2) Prim baseline.
package main

import (
	"flag"
	"fmt"
	"runtime"

	smq "repro"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	dim := flag.Int("dim", 2, "point dimension")
	k := flag.Int("k", 8, "neighbors per point")
	clusters := flag.Int("clusters", 0, "Gaussian clusters (0 = uniform cube)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	flag.Parse()

	var ps *smq.PointSet
	if *clusters > 0 {
		ps = smq.GenerateGaussianClusters(*n, *dim, *clusters, 0.02, 7)
		fmt.Printf("%d points in %d Gaussian clusters (dim %d), k=%d, %d workers\n\n",
			*n, *clusters, *dim, *k, *workers)
	} else {
		ps = smq.GenerateUniformPoints(*n, *dim, 7)
		fmt.Printf("%d uniform points (dim %d), k=%d, %d workers\n\n", *n, *dim, *k, *workers)
	}

	wantW, wantE := smq.EuclideanMSTSeq(ps)
	fmt.Printf("sequential Prim baseline: weight=%d edges=%d\n\n", wantW, wantE)

	for _, e := range []struct {
		name string
		mk   func() smq.Scheduler[uint32]
	}{
		{"SMQ", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"MultiQueue", func() smq.Scheduler[uint32] {
			return smq.NewClassicMultiQueue[uint32](*workers, 4)
		}},
		{"EMQ", func() smq.Scheduler[uint32] {
			return smq.NewEngineeredMQ[uint32](smq.EMQConfig{Workers: *workers})
		}},
	} {
		g, res := smq.KNNGraph(ps, *k, e.mk())
		fmt.Printf("%-12s k-NN graph: edges=%-8d time=%-12v tasks=%d\n",
			e.name, g.M(), res.Duration.Round(1000), res.Tasks)

		weight, edges, res := smq.EuclideanMST(ps, *k, e.mk())
		status := "OK"
		if weight != wantW || edges != wantE {
			status = fmt.Sprintf("MISMATCH want (%d, %d)", wantW, wantE)
		}
		fmt.Printf("%-12s EMST:       weight=%-10d edges=%-7d time=%-12v tasks=%d  %s\n",
			e.name, weight, edges, res.Duration.Round(1000), res.Tasks, status)
	}
}
