package algos

import (
	"reflect"
	"testing"

	"repro/internal/geom"
)

// testPointSets covers the regular and degenerate geometric inputs:
// uniform, clustered, duplicate-heavy, collinear, and n < k.
func testPointSets() map[string]*geom.PointSet {
	duplicates := &geom.PointSet{Dim: 2}
	for i := 0; i < 90; i++ {
		x := float64(i % 30)
		duplicates.Coords = append(duplicates.Coords, x*0.04, x*0.02)
	}
	collinear := &geom.PointSet{Dim: 2}
	for i := 0; i < 64; i++ {
		t := float64(i) * 0.015
		collinear.Coords = append(collinear.Coords, t, 3*t)
	}
	return map[string]*geom.PointSet{
		"uniform":   geom.UniformCube(400, 2, 21),
		"uniform3d": geom.UniformCube(250, 3, 22),
		"gauss":     geom.GaussianClusters(300, 2, 6, 0.015, 23),
		"dups":      duplicates,
		"collinear": collinear,
		"tiny":      geom.UniformCube(5, 2, 24), // n < k below
	}
}

const testK = 8

func TestKNNGraphMatchesSequentialAllSchedulers(t *testing.T) {
	for pname, ps := range testPointSets() {
		want, _ := KNNGraphSeq(ps, testK)
		for sname, mk := range schedulers(4) {
			got, res := KNNGraph(ps, testK, mk())
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: parallel k-NN graph differs from sequential reference", pname, sname)
			}
			if res.Tasks < uint64(ps.N()) {
				t.Fatalf("%s/%s: %d tasks for %d vertices", pname, sname, res.Tasks, ps.N())
			}
		}
	}
}

func TestEuclideanMSTMatchesPrimAllSchedulers(t *testing.T) {
	for pname, ps := range testPointSets() {
		wantW, wantE := PrimEMSTSeq(ps)
		for sname, mk := range schedulers(4) {
			gotW, gotE, res := EuclideanMST(ps, testK, mk())
			if gotW != wantW || gotE != wantE {
				t.Fatalf("%s/%s: EMST = (%d, %d), want (%d, %d)", pname, sname, gotW, gotE, wantW, wantE)
			}
			if ps.N() > 1 && res.Tasks == 0 {
				t.Fatalf("%s/%s: no tasks recorded", pname, sname)
			}
		}
	}
}

func TestEuclideanMSTDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		ps := geom.UniformCube(n, 2, uint64(31+n))
		wantW, wantE := PrimEMSTSeq(ps)
		gotW, gotE, _ := EuclideanMST(ps, 4, schedulers(2)["smq"]())
		if gotW != wantW || gotE != wantE {
			t.Fatalf("n=%d: EMST = (%d, %d), want (%d, %d)", n, gotW, gotE, wantW, wantE)
		}
		if wantE != max(0, n-1) {
			t.Fatalf("n=%d: Prim edge count %d", n, wantE)
		}
	}
}

func TestKNNGraphDegenerateSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		ps := geom.UniformCube(n, 2, uint64(41+n))
		want, _ := KNNGraphSeq(ps, 4)
		got, _ := KNNGraph(ps, 4, schedulers(2)["mq_classic"]())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: parallel k-NN graph differs from sequential", n)
		}
		if want.N != n || want.M() != n*max(0, n-1) {
			t.Fatalf("n=%d: unexpected shape |V|=%d |E|=%d", n, want.N, want.M())
		}
	}
}

// TestKNNGraphStructure sanity-checks the k-NN graph invariants the
// EMST phase relies on: out-degree min(k, n-1), rows sorted by weight,
// and first neighbor = nearest point.
func TestKNNGraphStructure(t *testing.T) {
	ps := geom.UniformCube(200, 2, 51)
	g, _ := KNNGraphSeq(ps, testK)
	for u := 0; u < g.N; u++ {
		ts, ws := g.Neighbors(uint32(u))
		if len(ts) != testK {
			t.Fatalf("vertex %d has out-degree %d, want %d", u, len(ts), testK)
		}
		for i := 1; i < len(ws); i++ {
			if ws[i] < ws[i-1] {
				t.Fatalf("vertex %d: weights not sorted", u)
			}
		}
		nearest := geom.BruteKNN(ps, u, 1)
		if ts[0] != uint32(nearest[0].Idx) {
			t.Fatalf("vertex %d: first neighbor %d, want %d", u, ts[0], nearest[0].Idx)
		}
	}
	if g.Coords == nil {
		t.Fatal("2-dimensional point sets should carry coordinates")
	}
}
