package algos

import (
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sched"
)

// PageRankConfig parameterizes ResidualPageRank.
type PageRankConfig struct {
	// Damping is the PageRank damping factor. Default 0.85.
	Damping float64
	// Epsilon is the residual threshold below which a vertex is settled.
	// Default 1e-6.
	Epsilon float64
}

func (c *PageRankConfig) normalize() {
	if c.Damping <= 0 || c.Damping >= 1 {
		c.Damping = 0.85
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
}

// ResidualPageRank computes PageRank by residual propagation ("push"
// style) over a relaxed priority scheduler. This is the paper's §6
// extension direction — iterative machine-learning-style algorithms under
// relaxed scheduling (cf. Aksenov et al. [2]): processing high-residual
// vertices first converges with less total work, so the scheduler's rank
// quality translates directly into fewer tasks.
//
// Priorities order vertices by descending residual (quantized), so a
// better scheduler drains large residuals sooner.
func ResidualPageRank(g *graph.CSR, cfg PageRankConfig, s sched.Scheduler[uint32]) ([]float64, Result) {
	cfg.normalize()
	n := g.N
	rank := make([]atomic.Uint64, n)  // float64 bits
	resid := make([]atomic.Uint64, n) // float64 bits
	queued := make([]atomic.Bool, n)

	base := 1 - cfg.Damping
	for i := 0; i < n; i++ {
		rank[i].Store(math.Float64bits(0))
		resid[i].Store(math.Float64bits(base))
	}

	var pending sched.Pending
	// Seed every vertex (all start with residual 1-d >= eps).
	pending.Inc(int64(n))
	for i := 0; i < n; i++ {
		queued[i].Store(true)
		s.Worker(i%s.Workers()).Push(residPriority(base), uint32(i))
	}

	addFloat := func(a *atomic.Uint64, delta float64) float64 {
		for {
			old := a.Load()
			nv := math.Float64frombits(old) + delta
			if a.CompareAndSwap(old, math.Float64bits(nv)) {
				return nv
			}
		}
	}

	tasks, wasted, elapsed := drive(s, &pending,
		func(_ int, out *taskSink[uint32], _ uint64, u uint32) bool {
			queued[u].Store(false)
			r := math.Float64frombits(resid[u].Swap(math.Float64bits(0)))
			if r < cfg.Epsilon {
				return true // settled in the meantime
			}
			addFloat(&rank[u], r)
			deg := g.OutDegree(u)
			if deg == 0 {
				return false // dangling vertex: mass is dropped, as in push-PageRank
			}
			share := cfg.Damping * r / float64(deg)
			ts, _ := g.Neighbors(u)
			for _, v := range ts {
				nr := addFloat(&resid[v], share)
				if nr >= cfg.Epsilon && queued[v].CompareAndSwap(false, true) {
					out.Push(residPriority(nr), v)
				}
			}
			return false
		})

	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(rank[i].Load()) + math.Float64frombits(resid[i].Load())
	}
	return out, Result{Tasks: tasks, Wasted: wasted, Duration: elapsed, Sched: s.Stats()}
}

// residPriority maps a residual to a priority: larger residuals first.
func residPriority(r float64) uint64 {
	if r <= 0 {
		return uint64(1) << 62
	}
	// -log2(r) grows as r shrinks; scale for resolution.
	p := math.Log2(1/r) * 1024
	if p < 0 {
		p = 0
	}
	return uint64(p)
}
