package serve

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/perfbench"
)

// BenchConfig parameterizes a serving-trajectory run: one open-loop
// service run per scheduler, reported as the serve section of a
// schema-versioned perfbench report.
type BenchConfig struct {
	// Schedulers names the lineup subset to run; empty means Lineup().
	Schedulers []string
	// Rate / Tasks / Tenants / Skew / Burst / cost knobs parameterize
	// the load generator (see LoadConfig). Zeros take LoadConfig
	// defaults, except Rate (100000/s) and Tasks (200000).
	Rate                        float64
	Tasks                       int
	Tenants                     int
	Skew                        float64
	Burst                       int
	CostMin, CostMax, CostAlpha float64
	// Workers / MinWorkers / watermarks / Policy parameterize the
	// Service (see Config). Workers 0 means 4.
	Workers    int
	MinWorkers int
	HighWater  int64
	LowWater   int64
	Policy     Policy
	// IdleWindow, when positive, measures the service's idle CPU
	// fraction over that window (service up, zero offered load) before
	// the load starts. Zero skips the measurement (-1 in the report).
	IdleWindow time.Duration
	Seed       uint64
	// GeneratedBy labels the report ("smqserve", "smqbench -serve").
	GeneratedBy string
}

func (c *BenchConfig) normalize() {
	if len(c.Schedulers) == 0 {
		c.Schedulers = Lineup()
	}
	if c.Rate == 0 {
		c.Rate = 100000
	}
	if c.Tasks == 0 {
		c.Tasks = 200000
	}
	if c.Tenants == 0 {
		c.Tenants = 2
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GeneratedBy == "" {
		c.GeneratedBy = "serve.RunBench"
	}
}

// MeasureIdleCPU runs the process for window and returns the CPU
// fraction it consumed (CPU-seconds per wall-second), or -1 when the
// platform cannot measure it. Call with the service started and no
// load offered: the result is what the idle service costs.
func MeasureIdleCPU(window time.Duration) float64 {
	before, ok := processCPU()
	if !ok {
		return -1
	}
	start := time.Now()
	time.Sleep(window)
	after, _ := processCPU()
	wall := time.Since(start)
	if wall <= 0 {
		return -1
	}
	return float64(after-before) / float64(wall)
}

// RunBench runs one open-loop service per configured scheduler and
// assembles the serving trajectory report (validated before return).
func RunBench(cfg BenchConfig) (*perfbench.Report, error) {
	cfg.normalize()
	report := &perfbench.Report{
		SchemaVersion: perfbench.SchemaVersion,
		GeneratedBy:   cfg.GeneratedBy,
		Host:          perfbench.CollectHost(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          cfg.Seed,
	}
	for _, name := range cfg.Schedulers {
		sr, err := runOne(name, cfg)
		if err != nil {
			return nil, err
		}
		report.Serve = append(report.Serve, sr)
	}
	if err := perfbench.Validate(report); err != nil {
		return nil, fmt.Errorf("serve: generated report fails validation: %w", err)
	}
	return report, nil
}

func runOne(name string, cfg BenchConfig) (perfbench.ServeResult, error) {
	s, err := Build(name, cfg.Workers, cfg.Seed)
	if err != nil {
		return perfbench.ServeResult{}, err
	}
	svc, err := New(s, Config{
		Workers:    cfg.Workers,
		MinWorkers: cfg.MinWorkers,
		Tenants:    cfg.Tenants,
		HighWater:  cfg.HighWater,
		LowWater:   cfg.LowWater,
		Policy:     cfg.Policy,
	})
	if err != nil {
		return perfbench.ServeResult{}, err
	}
	svc.Start()
	idle := -1.0
	if cfg.IdleWindow > 0 {
		idle = MeasureIdleCPU(cfg.IdleWindow)
	}
	loadStart := time.Now()
	_, err = Generate(svc.In(), svc.Epoch(), LoadConfig{
		Rate: cfg.Rate, Tasks: cfg.Tasks, Tenants: cfg.Tenants, Skew: cfg.Skew,
		Burst: cfg.Burst, CostMin: cfg.CostMin, CostMax: cfg.CostMax,
		CostAlpha: cfg.CostAlpha, Seed: cfg.Seed,
	})
	close(svc.In())
	if err != nil {
		svc.Wait() // drain whatever was sent before the config error
		return perfbench.ServeResult{}, err
	}
	st := svc.Wait()
	// The measured window is load start to quiescence, excluding the
	// idle window, so throughput is honest about the loaded phase.
	dur := time.Since(loadStart)
	sv := svc.cfg // normalized
	sr := perfbench.ServeResult{
		Scheduler:         name,
		OfferedRatePerSec: cfg.Rate,
		Workers:           sv.Workers,
		MinWorkers:        sv.MinWorkers,
		Tenants:           sv.Tenants,
		TenantSkew:        cfg.Skew,
		Ingested:          st.Ingested,
		Completed:         st.Completed,
		Shed:              st.Shed,
		DurationNs:        dur.Nanoseconds(),
		Stalls:            st.Stalls,
		StallNs:           st.StallDur.Nanoseconds(),
		Parks:             st.Parks,
		Unparks:           st.Unparks,
		MeanActiveWorkers: st.MeanActiveWorkers,
		IdleCPUFrac:       idle,
	}
	if dur > 0 {
		sr.ThroughputTasksPerSec = float64(st.Completed) / dur.Seconds()
	}
	for t := range st.PerTenant {
		ts := &st.PerTenant[t]
		sr.PerTenant = append(sr.PerTenant, perfbench.TenantServeResult{
			Tenant:    t,
			Completed: ts.Completed,
			Shed:      ts.Shed,
			P50Ns:     float64(ts.Latency.Quantile(0.50)),
			P99Ns:     float64(ts.Latency.Quantile(0.99)),
			P999Ns:    float64(ts.Latency.Quantile(0.999)),
		})
	}
	return sr, nil
}
