package desim

import (
	"fmt"
	"runtime"

	"repro/internal/perfbench"
	"repro/internal/zoo"
)

// BenchConfig parameterizes a desim trajectory run: each named
// scheduler simulates each requested model with a fresh model instance
// and a safe-lookahead window derived from the scheduler's own
// rank-error bound.
type BenchConfig struct {
	// Workers is the worker count (scheduler slots and goroutines).
	// 0 means GOMAXPROCS.
	Workers int
	// Schedulers restricts the zoo lineup; nil runs DefaultLineup().
	Schedulers []string
	// Models restricts the model set ("cluster", "dag"); nil runs both.
	Models []string
	// Events is the approximate event count per cluster run (exact
	// count rounds to the station grid). 0 means 2_000_000.
	Events int
	// Stations / Tenants shape the cluster model. Zeros mean the
	// ClusterConfig defaults.
	Stations, Tenants int
	// Layers / Width shape the DAG model. Zeros mean the DAGConfig
	// defaults.
	Layers, Width int
	// Seed makes every simulation reproducible. 0 means 1.
	Seed uint64
	// GeneratedBy labels the report ("" means "smqbench -desim").
	GeneratedBy string
}

func (c *BenchConfig) normalize() error {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Schedulers) == 0 {
		c.Schedulers = DefaultLineup()
	}
	if len(c.Models) == 0 {
		c.Models = []string{"cluster", "dag"}
	}
	if c.Events <= 0 {
		c.Events = 2_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GeneratedBy == "" {
		c.GeneratedBy = "smqbench -desim"
	}
	for _, m := range c.Models {
		if m != "cluster" && m != "dag" {
			return fmt.Errorf("desim: unknown model %q (known: cluster, dag)", m)
		}
	}
	return nil
}

// DefaultLineup is the trajectory's default scheduler slate: the full
// zoo registry, exact baseline first.
func DefaultLineup() []string { return zoo.Names() }

// model unifies the built-in models behind the extra accessors the
// report needs beyond the Model interface.
type model interface {
	Model
	Events() uint64
}

// buildModel constructs a fresh instance of the named model.
func (c *BenchConfig) buildModel(name string) (model, error) {
	switch name {
	case "cluster":
		stations := c.Stations
		if stations <= 0 {
			stations = 64
		}
		per := c.Events / (2 * stations)
		return NewCluster(ClusterConfig{
			Stations:           stations,
			ArrivalsPerStation: per,
			Tenants:            c.Tenants,
			Workers:            c.Workers,
			Seed:               c.Seed,
		})
	case "dag":
		return NewDAG(DAGConfig{
			Layers:  c.Layers,
			Width:   c.Width,
			Workers: c.Workers,
			Seed:    c.Seed,
		})
	}
	return nil, fmt.Errorf("desim: unknown model %q", name)
}

// BoundSource labels the provenance of a simulation's causality
// window for the report: "exact" for a worst-case rank-bound
// guarantee, "expectation" for an expectation-scale estimate, and
// "unchecked" for a lookahead of −1 (no usable bound, no claim).
func BoundSource(bound int64, exact bool) string {
	switch {
	case bound < 0:
		return "unchecked"
	case exact:
		return "exact"
	default:
		return "expectation"
	}
}

// RunOne simulates one model on one named scheduler. The lookahead
// window is the scheduler's RankBound at this worker count; schedulers
// without a usable bound run unchecked (lookahead −1), so the result
// records throughput but makes no causality claim — BoundSource labels
// that distinction explicitly in the artifact.
func RunOne(name, modelName string, cfg BenchConfig) (perfbench.DesimResult, error) {
	if err := cfg.normalize(); err != nil {
		return perfbench.DesimResult{}, err
	}
	spec, ok := zoo.Lookup[Event](name)
	if !ok {
		return perfbench.DesimResult{}, fmt.Errorf("desim: unknown scheduler %q (known: %v)", name, zoo.Names())
	}
	m, err := cfg.buildModel(modelName)
	if err != nil {
		return perfbench.DesimResult{}, err
	}
	bound, exact := spec.RankBound(cfg.Workers)
	lookahead := bound
	if bound < 0 {
		lookahead = -1
	}
	s := spec.Build(cfg.Workers, cfg.Seed)
	stats, err := Run(s, m, Config{Workers: cfg.Workers, Lookahead: lookahead})
	if err != nil {
		return perfbench.DesimResult{}, err
	}
	if want := m.Events(); stats.Events != want {
		return perfbench.DesimResult{}, fmt.Errorf("desim: %s/%s executed %d events, model defines %d (lost or duplicated events)",
			name, modelName, stats.Events, want)
	}
	dr := perfbench.DesimResult{
		Scheduler:    name,
		Model:        m.Name(),
		Workers:      cfg.Workers,
		Seed:         cfg.Seed,
		Events:       stats.Events,
		DurationNs:   stats.Duration.Nanoseconds(),
		EventsPerSec: float64(stats.Events) / stats.Duration.Seconds(),
		RankBound:    bound,
		BoundExact:   exact,
		Lookahead:    lookahead,
		BoundSource:  BoundSource(bound, exact),
		Violations:   stats.Violations,
		MaxLead:      stats.MaxLead,
		MeanLead:     stats.MeanLead,
		Checksum:     m.Checksum(),
	}
	if cl, ok := m.(*Cluster); ok {
		dr.PerTenant = cl.PerTenant()
	}
	return dr, nil
}

// RunBench runs the configured scheduler × model grid and assembles a
// validated schema-versioned report. Beyond per-run validation it enforces the
// cross-run contract the models promise: every scheduler simulating the
// same model must report the same checksum as the first.
func RunBench(cfg BenchConfig) (*perfbench.Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &perfbench.Report{
		SchemaVersion: perfbench.SchemaVersion,
		GeneratedBy:   cfg.GeneratedBy,
		Host:          perfbench.CollectHost(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       cfg.Workers,
		Seed:          cfg.Seed,
	}
	want := make(map[string]uint64, len(cfg.Models))
	for _, modelName := range cfg.Models {
		for _, name := range cfg.Schedulers {
			dr, err := RunOne(name, modelName, cfg)
			if err != nil {
				return nil, err
			}
			if w, ok := want[modelName]; !ok {
				want[modelName] = dr.Checksum
			} else if dr.Checksum != w {
				return nil, fmt.Errorf("desim: %s/%s checksum %#x diverges from %s baseline %#x",
					name, modelName, dr.Checksum, cfg.Schedulers[0], w)
			}
			r.Desim = append(r.Desim, dr)
		}
	}
	if err := perfbench.Validate(r); err != nil {
		return nil, fmt.Errorf("desim: generated report failed validation: %w", err)
	}
	return r, nil
}
