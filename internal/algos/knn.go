package algos

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/sched"
)

// KNNGraph builds the directed k-nearest-neighbour graph of a point set
// over a relaxed scheduler: vertex v's adjacency lists its k nearest
// points sorted by (distance, index), with edge weights quantized by
// geom.Weight.
//
// Each task is "resolve vertex v's k-th neighbour at the current search
// radius": processing runs a bounded-radius kd-tree query and either
// finalizes v's row (>= k candidates found) or doubles the radius and
// re-enqueues v with priority equal to the quantized radius — a lower
// bound on v's k-th-neighbour distance. Lower priorities run sooner, so
// points in dense regions (small k-th distance) resolve first and the
// expansion sweeps outward by distance, the task-generation pattern of
// the classic relaxed-PQ k-NN workload (Rihani et al. 2014). The result
// is deterministic — identical to KNNGraphSeq — for every scheduler.
func KNNGraph(ps *geom.PointSet, k int, s sched.Scheduler[uint32]) (*graph.CSR, Result) {
	rows, _, res := knnRows(ps, k, s)
	return knnCSR(ps, rows), res
}

// knnRows runs the parallel k-NN resolution and returns the per-vertex
// sorted neighbor rows plus the kd-tree (for callers that keep
// querying, like EuclideanMST's widen-radius fallback).
func knnRows(ps *geom.PointSet, k int, s sched.Scheduler[uint32]) ([][]geom.Neighbor, *geom.KDTree, Result) {
	n := ps.N()
	tree := geom.NewKDTree(ps)
	if k > n-1 {
		k = n - 1
	}
	rows := make([][]geom.Neighbor, n)
	if n == 0 || k <= 0 {
		return rows, tree, Result{Sched: s.Stats()}
	}

	// Initial radius from the mean point density (a ball expected to
	// hold ~k+1 points), shrunk 4x: starting below the uniform estimate
	// costs sparse points a couple of cheap extra widening rounds, while
	// starting above it makes every point of a dense cluster collect and
	// sort the whole cluster in one oversized query. Coincident point
	// sets (zero extent) resolve at any radius because all other points
	// sit at distance zero.
	r0 := ps.Extent() * math.Pow(float64(k+1)/float64(n), 1/float64(ps.Dim)) / 4
	if r0 <= 0 {
		r0 = 1
	}
	// radius[v] is v's current search radius. It is only accessed by the
	// holder of v's task; the scheduler's push/pop handoff orders the
	// accesses of consecutive task generations (same discipline as the
	// per-component state in BoruvkaMST).
	radius := make([]float64, n)
	for i := range radius {
		radius[i] = r0
	}

	var pending sched.Pending
	pending.Inc(int64(n))
	p0 := uint64(geom.Weight(r0 * r0))
	for i := 0; i < n; i++ {
		s.Worker(i%s.Workers()).Push(p0, uint32(i))
	}

	// Per-worker scratch buffers for radius-query results.
	scratch := make([][]geom.Neighbor, s.Workers())

	tasks, wasted, elapsed := drive(s, &pending,
		func(wid int, out *taskSink[uint32], _ uint64, v uint32) bool {
			r := radius[v]
			cand := tree.AppendWithin(ps.At(int(v)), r*r, int32(v), scratch[wid][:0])
			scratch[wid] = cand
			if len(cand) < k {
				// Too few neighbors inside the ball: widen and retry
				// later, after the still-cheap dense tasks.
				r *= 2
				radius[v] = r
				out.Push(uint64(geom.Weight(r*r)), v)
				return false
			}
			sort.Slice(cand, func(a, b int) bool {
				if cand[a].D2 != cand[b].D2 {
					return cand[a].D2 < cand[b].D2
				}
				return cand[a].Idx < cand[b].Idx
			})
			rows[v] = append([]geom.Neighbor(nil), cand[:k]...)
			return false
		})
	return rows, tree, Result{Tasks: tasks, Wasted: wasted, Duration: elapsed, Sched: s.Stats()}
}

// knnCSR assembles the adjacency rows into a CSR graph, attaching
// planar coordinates for 2-dimensional point sets.
func knnCSR(ps *geom.PointSet, rows [][]geom.Neighbor) *graph.CSR {
	n := ps.N()
	if n == 0 {
		return &graph.CSR{N: 0, Offsets: make([]int64, 1)}
	}
	edges := make([]graph.Edge, 0, n*len(rows[0]))
	for v := range rows {
		for _, nb := range rows[v] {
			edges = append(edges, graph.Edge{U: uint32(v), V: uint32(nb.Idx), W: geom.Weight(nb.D2)})
		}
	}
	var coords []graph.Coord
	if ps.Dim == 2 {
		coords = make([]graph.Coord, n)
		for i := range coords {
			p := ps.At(i)
			coords[i] = graph.Coord{X: p[0], Y: p[1]}
		}
	}
	return graph.MustBuild(n, edges, coords)
}
