// Package shard is the runner layer of the experiment pipeline: it
// executes a subset of an experiment plan's cells — in-process or by
// re-exec'ing the benchmark binary per cell — under per-cell wall-clock
// timeouts with bounded retry, and packages the outcomes as a perfbench
// schema-v4 fragment. Fragments from different shards (processes,
// machines, CI matrix jobs) recombine with perfbench.Merge; the merged
// artifact feeds back into the plan's assembly to regenerate the paper
// tables, byte-identical (modulo timing fields) to an in-process run.
//
// The shape follows the per-cell process model of Doppel's benchmark
// driver (one process per grid cell, explicit core lists) and the
// mandatory-timeout harness discipline of the inference-sim plan: a
// hung cell is recorded as status=timeout and the rest of the grid
// proceeds.
package shard

import (
	"bytes"
	"fmt"
	"os/exec"
	"time"

	"repro/internal/harness"
	"repro/internal/perfbench"
)

// Options configures a shard run.
type Options struct {
	// Shard / Of select the strided slice: cells with Index % Of ==
	// Shard. Of <= 1 selects everything (one shard).
	Shard, Of int
	// Cells, when non-nil, overrides the stride with an explicit cell
	// index list (still filtered to valid indices).
	Cells []int
	// Timeout is the per-cell wall-clock budget; 0 means no timeout.
	Timeout time.Duration
	// Retries is how many extra attempts a timed-out cell gets before
	// being recorded as status=timeout. Errors are not retried — they
	// are deterministic (validation failures), not flakes.
	Retries int
	// Exec, when set, runs each cell in a subprocess instead of
	// in-process: it must return a ready-to-run command (typically the
	// current binary re-exec'd with -cells <index> -fragment -, wrapped
	// in numactl/taskset if desired) whose stdout is a one-cell
	// perfbench fragment report. On timeout the process is killed.
	Exec func(index int) *exec.Cmd
}

// Select returns the plan's cell indices this shard owns, in
// enumeration order.
func Select(p *harness.Plan, opts Options) []int {
	if opts.Cells != nil {
		var out []int
		for _, i := range opts.Cells {
			if i >= 0 && i < len(p.Cells) {
				out = append(out, i)
			}
		}
		return out
	}
	if opts.Of <= 1 {
		out := make([]int, len(p.Cells))
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for i := range p.Cells {
		if i%opts.Of == opts.Shard%opts.Of {
			out = append(out, i)
		}
	}
	return out
}

// Run executes the shard's cells and returns their results in
// enumeration order. Every selected cell yields exactly one result —
// ok, timeout or error — so a hung or failing cell cannot take the
// rest of the grid down with it.
func Run(p *harness.Plan, opts Options) []harness.CellResult {
	idxs := Select(p, opts)
	out := make([]harness.CellResult, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, runCell(p, i, opts))
	}
	return out
}

// runCell runs one cell under the timeout/retry policy.
func runCell(p *harness.Plan, i int, opts Options) harness.CellResult {
	attempts := 0
	for {
		attempts++
		var res harness.CellResult
		if opts.Exec != nil {
			res = runSubprocess(p, i, opts)
		} else {
			res = runInProcess(p, i, opts.Timeout)
		}
		res.Attempts = attempts
		if res.Status == harness.CellTimeout && attempts <= opts.Retries {
			continue
		}
		return res
	}
}

// runInProcess executes the cell on a fresh goroutine and abandons it
// if the timeout expires. The abandoned goroutine keeps running until
// its workload finishes — Go cannot kill it — so its result is
// discarded on arrival; callers needing hard isolation use Exec
// subprocess mode, where the process is killed outright.
func runInProcess(p *harness.Plan, i int, timeout time.Duration) harness.CellResult {
	if timeout <= 0 {
		return p.RunCell(i)
	}
	done := make(chan harness.CellResult, 1)
	start := time.Now()
	go func() { done <- p.RunCell(i) }()
	select {
	case res := <-done:
		return res
	case <-time.After(timeout):
		return harness.CellResult{
			Cell:      p.Cells[i],
			Status:    harness.CellTimeout,
			Error:     fmt.Sprintf("cell exceeded %v wall-clock budget", timeout),
			ElapsedNs: time.Since(start).Nanoseconds(),
		}
	}
}

// runSubprocess executes the cell in its own process and parses the
// one-cell fragment the child prints on stdout. The child is killed on
// timeout, so even a livelocked scheduler cannot outlive its budget.
func runSubprocess(p *harness.Plan, i int, opts Options) harness.CellResult {
	c := p.Cells[i]
	fail := func(status, msg string, elapsed time.Duration) harness.CellResult {
		return harness.CellResult{Cell: c, Status: status, Error: msg,
			ElapsedNs: elapsed.Nanoseconds()}
	}

	cmd := opts.Exec(i)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	start := time.Now()
	if err := cmd.Start(); err != nil {
		return fail(harness.CellError, fmt.Sprintf("start subprocess: %v", err), time.Since(start))
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	var waitErr error
	if opts.Timeout > 0 {
		select {
		case waitErr = <-done:
		case <-time.After(opts.Timeout):
			_ = cmd.Process.Kill()
			<-done // reap
			return fail(harness.CellTimeout,
				fmt.Sprintf("subprocess killed after %v wall-clock budget", opts.Timeout), time.Since(start))
		}
	} else {
		waitErr = <-done
	}
	elapsed := time.Since(start)
	if waitErr != nil {
		return fail(harness.CellError,
			fmt.Sprintf("subprocess: %v (stderr: %s)", waitErr, truncate(stderr.String(), 300)), elapsed)
	}

	rep, err := perfbench.Parse(stdout.Bytes())
	if err != nil {
		return fail(harness.CellError, fmt.Sprintf("parse subprocess fragment: %v", err), elapsed)
	}
	for _, frag := range rep.Experiments {
		if frag.Experiment != p.Experiment || frag.Config != p.Config.Fingerprint() {
			continue
		}
		for _, rec := range frag.Cells {
			if rec.Index == i {
				res := FromRecord(rec)
				res.Cell = c // trust our own enumeration over the child's echo
				res.ElapsedNs = elapsed.Nanoseconds()
				return res
			}
		}
	}
	return fail(harness.CellError,
		fmt.Sprintf("subprocess fragment does not contain cell %d of %s", i, p.Experiment), elapsed)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// ---------------------------------------------------------------------------
// Conversions between the harness result type and the perfbench
// artifact record. They live here because harness must not depend on
// perfbench (the serving bench already imports perfbench from inside
// harness's dependency cone).

// ToRecord converts a cell result into its artifact form.
func ToRecord(r harness.CellResult) perfbench.CellRecord {
	return perfbench.CellRecord{
		Index:      r.Index,
		Key:        r.Key,
		Kind:       r.Kind,
		Workload:   r.Workload,
		Scheduler:  r.Scheduler,
		Params:     r.Params,
		Threads:    r.Threads,
		Reps:       r.Reps,
		Seed:       r.Seed,
		Status:     r.Status,
		Error:      r.Error,
		Attempts:   r.Attempts,
		DurationNs: r.DurationNs,
		ElapsedNs:  r.ElapsedNs,
		Tasks:      r.Tasks,
		Wasted:     r.Wasted,
		Remote:     r.Remote,
		Values:     r.Values,
	}
}

// FromRecord is the inverse of ToRecord.
func FromRecord(c perfbench.CellRecord) harness.CellResult {
	return harness.CellResult{
		Cell: harness.Cell{
			Index:     c.Index,
			Key:       c.Key,
			Kind:      c.Kind,
			Workload:  c.Workload,
			Scheduler: c.Scheduler,
			Params:    c.Params,
			Threads:   c.Threads,
			Reps:      c.Reps,
			Seed:      c.Seed,
		},
		Status:     c.Status,
		Error:      c.Error,
		Attempts:   c.Attempts,
		DurationNs: c.DurationNs,
		ElapsedNs:  c.ElapsedNs,
		Tasks:      c.Tasks,
		Wasted:     c.Wasted,
		Remote:     c.Remote,
		Values:     c.Values,
	}
}

// Fragment packages a shard's results as a self-contained perfbench
// report carrying one experiment fragment. shardInfo may be nil for
// full single-process runs.
func Fragment(p *harness.Plan, results []harness.CellResult, shardInfo *perfbench.ShardInfo, generatedBy string) *perfbench.Report {
	host := perfbench.CollectHost()
	frag := perfbench.ExperimentFragment{
		Experiment: p.Experiment,
		Config:     p.Config.Fingerprint(),
		TotalCells: len(p.Cells),
		Shard:      shardInfo,
		Host:       host.Hostname,
	}
	for _, r := range results {
		frag.Cells = append(frag.Cells, ToRecord(r))
	}
	return &perfbench.Report{
		SchemaVersion: perfbench.SchemaVersion,
		GeneratedBy:   generatedBy,
		Host:          host,
		GoVersion:     host.GoVer,
		Experiments:   []perfbench.ExperimentFragment{frag},
	}
}

// AssembleFragment renders the experiment's tables from a (merged)
// report fragment, after checking the fragment actually belongs to the
// plan: same experiment, same config fingerprint, same cell count, and
// every record's key matching the plan's enumeration. This is the
// cross-process integrity check — two binaries that disagree on the
// enumeration fail here instead of producing silently misattributed
// tables.
func AssembleFragment(p *harness.Plan, rep *perfbench.Report) ([]harness.Table, error) {
	want := p.Config.Fingerprint()
	for i := range rep.Experiments {
		frag := &rep.Experiments[i]
		if frag.Experiment != p.Experiment || frag.Config != want {
			continue
		}
		if frag.TotalCells != len(p.Cells) {
			return nil, fmt.Errorf("shard: %s: fragment has %d total cells, plan enumerates %d",
				p.Experiment, frag.TotalCells, len(p.Cells))
		}
		if !frag.Complete() {
			return nil, fmt.Errorf("shard: %s: fragment covers %d of %d cells (merge the remaining shards first)",
				p.Experiment, len(frag.Cells), frag.TotalCells)
		}
		rs := make([]harness.CellResult, len(p.Cells))
		seen := make([]bool, len(p.Cells))
		for _, rec := range frag.Cells {
			if rec.Index < 0 || rec.Index >= len(p.Cells) || seen[rec.Index] {
				return nil, fmt.Errorf("shard: %s: fragment cell index %d invalid or duplicated", p.Experiment, rec.Index)
			}
			if rec.Key != p.Cells[rec.Index].Key {
				return nil, fmt.Errorf("shard: %s: cell %d key mismatch: fragment %q, plan %q (enumeration drift between binaries?)",
					p.Experiment, rec.Index, rec.Key, p.Cells[rec.Index].Key)
			}
			seen[rec.Index] = true
			rs[rec.Index] = FromRecord(rec)
		}
		return p.Assemble(rs)
	}
	return nil, fmt.Errorf("shard: report carries no fragment for %s with config %q", p.Experiment, want)
}
