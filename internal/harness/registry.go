package harness

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/graph"
	"repro/internal/mq"
	"repro/internal/ranksim"
	"repro/internal/sched"
)

// RunConfig controls an experiment run's scale and sweep dimensions.
// It fully determines the cell enumeration (see Experiment.Cells):
// two processes with equal configs agree on every cell.
type RunConfig struct {
	// Scale multiplies graph sizes (1 = laptop-small; the paper's inputs
	// are far larger — see DESIGN.md substitutions).
	Scale int
	// Threads is the thread sweep for comparison experiments.
	Threads []int
	// MaxThreads is the fixed thread count for ablation grids (the paper
	// runs those at the machine's maximum).
	MaxThreads int
	// Reps repeats every measurement, keeping the fastest run.
	Reps int
	// Validate checks every run's output against sequential baselines.
	Validate bool
	// Seed is the base RNG seed; each cell derives its own as
	// CellSeed(Seed, index), so a cell reproduces identically whether
	// run in-process, in a shard, or alone. 0 means 1.
	Seed uint64
}

func (c *RunConfig) normalize() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4}
	}
	if c.MaxThreads < 1 {
		c.MaxThreads = c.Threads[len(c.Threads)-1]
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Experiment regenerates one paper artifact. Internally it is a plan
// builder: Plan enumerates the deterministic cell list and the
// assembly, Run executes everything in-process (the legacy behavior),
// and internal/shard executes subsets of the same plan across
// processes.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper this regenerates
	Desc  string

	plan func(cfg RunConfig) (*Plan, error)
}

// Plan enumerates the experiment's cells and assembly for the config.
func (e Experiment) Plan(cfg RunConfig) (*Plan, error) {
	if e.plan == nil {
		return nil, fmt.Errorf("harness: experiment %q has no plan", e.ID)
	}
	return e.plan(cfg)
}

// Cells returns the experiment's deterministic cell enumeration — a
// pure function of cfg, tested for determinism in cells_test.go.
func (e Experiment) Cells(cfg RunConfig) ([]Cell, error) {
	p, err := e.Plan(cfg)
	if err != nil {
		return nil, err
	}
	return p.Cells, nil
}

// Run executes the whole experiment in this process: enumerate, run
// every cell sequentially, assemble.
func (e Experiment) Run(cfg RunConfig) ([]Table, error) {
	p, err := e.Plan(cfg)
	if err != nil {
		return nil, err
	}
	return p.Assemble(p.RunAll())
}

// Registry lists every experiment, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table 1", Desc: "input graph inventory (substituted generators)", plan: planTable1},
		{ID: "table2", Paper: "Tables 2-3", Desc: "classic Multi-Queue speedup for C in 2..8", plan: planTable2},
		{ID: "fig1", Paper: "Figure 1 (+ Figs 17-18, Tables 12-13)", Desc: "SMQ-heap psteal × steal-size ablation", plan: planFig1Heap},
		{ID: "fig19", Paper: "Figures 19-20, Tables 14-15", Desc: "SMQ-skiplist psteal × steal-size ablation", plan: planFig19Skip},
		{ID: "fig2", Paper: "Figure 2 (+ Figs 21-22)", Desc: "main scheduler comparison across 12 benchmarks", plan: planFig2},
		{ID: "fig3", Paper: "Figures 3-6", Desc: "OBIM and PMOD delta × chunk tuning", plan: planFig3},
		{ID: "fig7", Paper: "Figures 7-8, Tables 4-5", Desc: "MQ insert=TL × delete=TL grid", plan: planFig7},
		{ID: "fig9", Paper: "Figures 9-10, Tables 6-7", Desc: "MQ insert=TL × delete=batch grid", plan: planFig9},
		{ID: "fig11", Paper: "Figures 11-12, Tables 8-9", Desc: "MQ insert=batch × delete=TL grid", plan: planFig11},
		{ID: "fig13", Paper: "Figures 13-14, Tables 10-11", Desc: "MQ insert=batch × delete=batch grid", plan: planFig13},
		{ID: "fig15", Paper: "Figures 15-16", Desc: "best MQ optimization combinations side by side", plan: planFig15},
		{ID: "emq", Paper: "Williams et al. 2021 (follow-up baseline)", Desc: "engineered MultiQueue stickiness × buffer-size ablation", plan: planEMQ},
		{ID: "klsm", Paper: "Wimmer et al. 2015 (k-LSM baseline)", Desc: "k-LSM relaxation ablation (local-LSM bound k sweep)", plan: planKLSM},
		{ID: "geom", Paper: "Rihani et al. 2014 (scenario extension)", Desc: "k-NN graph + Euclidean MST over point sets, schedulers × distributions", plan: planGeom},
		{ID: "numa", Paper: "Tables 16-27", Desc: "NUMA weight K sweep for MQ and SMQ variants", plan: planNUMA},
		{ID: "serve", Paper: "extension (open-loop serving)", Desc: "offered-load × scheduler grid through the streaming service front-end", plan: planServe},
		{ID: "desim", Paper: "extension (conservative PDES over rank bounds)", Desc: "scheduler × simulation-model grid with safe-lookahead causality accounting", plan: planDesim},
		{ID: "theory", Paper: "Theorem 1 (§3)", Desc: "rank bounds of the SMQ process vs the (1+β) coupling", plan: planTheory},
		{ID: "rankprobe", Paper: "§5 (wasted-work mechanism)", Desc: "empirical rank relaxation of every scheduler implementation", plan: planRankProbe},
	}
}

// Find locates an experiment by id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared helpers

// fm formats a float compactly.
func fm(v float64) string { return fmt.Sprintf("%.2f", v) }

// speedupCell renders "speedup/workIncrease", the format of the paper's
// ablation heatmaps.
func speedupCell(speedup, work float64) string {
	return fmt.Sprintf("%.2f/%.2f", speedup, work)
}

func safeRatio(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// addClassicBaselines appends one classic-MQ (C=4) baseline cell per
// workload at the given thread count — the ablation experiments'
// reference point — returning one cell ref per workload.
func addClassicBaselines(p *Plan, ws []*Workload, threads int) []int {
	spec := SchedulerSpec{Name: "MQ Classic", Params: "C=4", Make: ClassicMQBaseline}
	refs := make([]int, len(ws))
	for i, w := range ws {
		refs[i] = p.addMeasure(w, spec, threads, "")
	}
	return refs
}

// ---------------------------------------------------------------------------
// table1

func planTable1(cfg RunConfig) (*Plan, error) {
	p := NewPlan("table1", cfg)
	gs := graph.StandardInputs(p.Config.Scale)
	desc := map[string]string{
		"USA":     "road grid standing in for full USA roads",
		"WEST":    "road grid standing in for western USA roads",
		"TWITTER": "RMAT power-law graph standing in for Twitter follows",
		"WEB":     "RMAT power-law graph standing in for the .sk web crawl",
	}
	names := []string{"USA", "WEST", "TWITTER", "WEB"}
	refs := make([]int, len(names))
	for i, name := range names {
		g := gs[name]
		refs[i] = p.AddCell(Cell{
			Kind:     "graphstat",
			Key:      "graphstat/" + name,
			Workload: name,
		}, func(c Cell) (CellResult, error) {
			s := g.Stat(c.Workload)
			coords := 0.0
			if s.HasCoords {
				coords = 1
			}
			return CellResult{Values: map[string]float64{
				"n": float64(s.N), "m": float64(s.M),
				"maxdeg": float64(s.MaxDeg), "avgdeg": s.AvgDeg,
				"coords": coords,
			}}, nil
		})
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		t := Table{
			Title:  "Table 1 — input graphs (synthetic substitutes; see DESIGN.md §2)",
			Header: []string{"Graph", "|V|", "|E|", "MaxDeg", "AvgDeg", "Coords", "Description"},
		}
		for i, name := range names {
			v := rs[refs[i]].Values
			t.AddRow(name,
				strconv.Itoa(int(v["n"])), strconv.Itoa(int(v["m"])),
				strconv.Itoa(int(v["maxdeg"])), fm(v["avgdeg"]),
				strconv.FormatBool(v["coords"] != 0), desc[name])
		}
		return []Table{t}, nil
	})
	return p, nil
}

// graphSuffix extracts the graph name from a workload name.
func graphSuffix(workload string) string {
	for i := len(workload) - 1; i >= 0; i-- {
		if workload[i] == ' ' {
			return workload[i+1:]
		}
	}
	return workload
}

// ---------------------------------------------------------------------------
// table2: classic MQ with C in 2..8

func planTable2(cfg RunConfig) (*Plan, error) {
	p := NewPlan("table2", cfg)
	ws := StandardWorkloads(p.Config.Scale)
	type row struct {
		seq   int
		cells []int
	}
	rows := make([]row, len(ws))
	for i, w := range ws {
		rows[i].seq = p.addSeq(w)
		for c := 2; c <= 8; c++ {
			c := c
			spec := SchedulerSpec{
				Name:   "MQ",
				Params: fmt.Sprintf("C=%d", c),
				Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
					cc := mq.Classic(workers, c)
					cc.Seed = seed
					return mq.New[uint32](cc)
				},
			}
			rows[i].cells = append(rows[i].cells, p.addMeasure(w, spec, p.Config.MaxThreads, ""))
		}
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		t := Table{
			Title:  fmt.Sprintf("Tables 2-3 — classic Multi-Queue speedup vs sequential baseline (%d threads)", p.Config.MaxThreads),
			Header: []string{"Benchmark", "C=2", "C=3", "C=4", "C=5", "C=6", "C=7", "C=8"},
		}
		for i, w := range ws {
			seqDur := cellDur(rs[rows[i].seq])
			out := []string{w.Name}
			for _, ref := range rows[i].cells {
				out = append(out, fm(safeRatio(seqDur, cellDur(rs[ref]))))
			}
			t.AddRow(out...)
		}
		return []Table{t}, nil
	})
	return p, nil
}

// ---------------------------------------------------------------------------
// fig1 / fig19: SMQ ablations

var ablationStealProbs = []struct {
	label string
	p     float64
}{
	{"1/2", 0.5}, {"1/4", 0.25}, {"1/8", 0.125}, {"1/16", 0.0625}, {"1/32", 0.03125}, {"1/64", 0.015625},
}

var ablationStealSizes = []int{1, 2, 4, 8, 16, 64}

func ablationLabels() (rows, cols []string) {
	rows = make([]string, len(ablationStealProbs))
	for i, sp := range ablationStealProbs {
		rows[i] = sp.label
	}
	cols = make([]string, len(ablationStealSizes))
	for i, sz := range ablationStealSizes {
		cols[i] = fmt.Sprint(sz)
	}
	return rows, cols
}

// planOneGrid wraps the dominant single-grid experiment shape.
func planOneGrid(id, title, rowName string, rows []string, colName string, cols []string,
	cfg RunConfig, mk func(ri, ci int) SchedulerSpec) (*Plan, error) {
	p := NewPlan(id, cfg)
	ws := QuickWorkloads(p.Config.Scale)
	g := addGridSection(p, title, rowName, rows, colName, cols, ws, mk)
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		return g.tables(rs), nil
	})
	return p, nil
}

func planFig1Heap(cfg RunConfig) (*Plan, error) {
	rows, cols := ablationLabels()
	return planOneGrid("fig1", "Figure 1 — SMQ (d-ary heaps)", "psteal", rows, "stealSize", cols, cfg,
		func(ri, ci int) SchedulerSpec {
			return SMQSpec("SMQ", ablationStealSizes[ci], ablationStealProbs[ri].p, 0)
		})
}

func planFig19Skip(cfg RunConfig) (*Plan, error) {
	rows, cols := ablationLabels()
	return planOneGrid("fig19", "Figures 19-20 — SMQ (skip lists)", "psteal", rows, "stealSize", cols, cfg,
		func(ri, ci int) SchedulerSpec {
			pr := ablationStealProbs[ri].p
			sz := ablationStealSizes[ci]
			return SchedulerSpec{
				Name:   "SMQ SkipList",
				Params: fmt.Sprintf("steal=%d psteal=%.3g", sz, pr),
				Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
					return core.NewStealingMQSkipList[uint32](core.Config{
						Workers: workers, StealSize: sz, StealProb: pr, Seed: seed})
				},
			}
		})
}

// ---------------------------------------------------------------------------
// fig2: the main comparison

func planFig2(cfg RunConfig) (*Plan, error) {
	p := NewPlan("fig2", cfg)
	ws := StandardWorkloads(p.Config.Scale)
	specs := StandardSchedulers()
	baseSpec := SchedulerSpec{Name: "MQ Classic", Params: "C=4", Make: ClassicMQBaseline}

	type panel struct {
		seq, base int
		cells     []int // specs-major, threads-minor
	}
	panels := make([]panel, len(ws))
	for i, w := range ws {
		panels[i].seq = p.addSeq(w)
		// Paper baseline: classic Multi-Queue on one thread.
		panels[i].base = p.addMeasure(w, baseSpec, 1, "baseline(fig2)")
		for _, spec := range specs {
			for _, th := range p.Config.Threads {
				panels[i].cells = append(panels[i].cells, p.addMeasure(w, spec, th, ""))
			}
		}
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		var tables []Table
		for i, w := range ws {
			seqTasks := rs[panels[i].seq].Tasks
			base := rs[panels[i].base]
			t := Table{
				Title:  fmt.Sprintf("Figure 2 — %s (speedup vs classic MQ on 1 thread; work vs sequential)", w.Name),
				Header: []string{"Scheduler", "Threads", "Time", "Speedup", "WorkIncrease", "RemoteFrac"},
			}
			for _, ref := range panels[i].cells {
				m := rs[ref]
				t.AddRow(m.Scheduler, fmt.Sprint(m.Threads),
					cellDur(m).Round(time.Microsecond).String(),
					fm(safeRatio(cellDur(base), cellDur(m))),
					fm(safeDiv(float64(m.Tasks), float64(seqTasks))),
					fm(m.Remote))
			}
			tables = append(tables, t)
		}
		return tables, nil
	})
	return p, nil
}

// ---------------------------------------------------------------------------
// fig3: OBIM / PMOD tuning

func planFig3(cfg RunConfig) (*Plan, error) {
	deltas := []uint32{2, 4, 8, 12, 16}
	chunks := []int{1, 8, 32, 64, 256}
	rows := make([]string, len(deltas))
	for i, d := range deltas {
		rows[i] = fmt.Sprint(d)
	}
	cols := make([]string, len(chunks))
	for i, c := range chunks {
		cols[i] = fmt.Sprint(c)
	}
	p := NewPlan("fig3", cfg)
	ws := QuickWorkloads(p.Config.Scale)
	obimSec := addGridSection(p, "Figures 3/5 — OBIM tuning", "delta", rows, "chunk", cols, ws,
		func(ri, ci int) SchedulerSpec {
			return OBIMSpec("OBIM", deltas[ri], chunks[ci], false)
		})
	pmodSec := addGridSection(p, "Figures 4/6 — PMOD tuning", "delta", rows, "chunk", cols, ws,
		func(ri, ci int) SchedulerSpec {
			return OBIMSpec("PMOD", deltas[ri], chunks[ci], true)
		})
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		return append(obimSec.tables(rs), pmodSec.tables(rs)...), nil
	})
	return p, nil
}

// ---------------------------------------------------------------------------
// fig7..fig13: classic MQ optimization grids

var tlProbs = []struct {
	label string
	p     float64
}{
	{"1/1", 1}, {"1/4", 0.25}, {"1/16", 0.0625}, {"1/64", 0.015625}, {"1/256", 1.0 / 256}, {"1/1024", 1.0 / 1024},
}

var batchSizes = []int{2, 8, 32, 128, 512}

func tlLabels() []string {
	out := make([]string, len(tlProbs))
	for i, t := range tlProbs {
		out[i] = t.label
	}
	return out
}

func batchLabels() []string {
	out := make([]string, len(batchSizes))
	for i, b := range batchSizes {
		out[i] = fmt.Sprint(b)
	}
	return out
}

func mqSpec(name string, c mq.Config) SchedulerSpec {
	return SchedulerSpec{
		Name: name,
		Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
			c2 := c
			c2.Workers = workers
			c2.Seed = seed
			return mq.New[uint32](c2)
		},
	}
}

func planFig7(cfg RunConfig) (*Plan, error) {
	return planOneGrid("fig7", "Figures 7-8 — MQ insert=TL, delete=TL", "pinsert", tlLabels(), "pdelete", tlLabels(), cfg,
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ TL/TL", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: tlProbs[ri].p,
				Delete: mq.DeleteTemporalLocality, PDeleteChange: tlProbs[ci].p})
		})
}

func planFig9(cfg RunConfig) (*Plan, error) {
	return planOneGrid("fig9", "Figures 9-10 — MQ insert=TL, delete=batch", "pinsert", tlLabels(), "batchDelete", batchLabels(), cfg,
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ TL/B", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: tlProbs[ri].p,
				Delete: mq.DeleteBatch, BatchDelete: batchSizes[ci]})
		})
}

func planFig11(cfg RunConfig) (*Plan, error) {
	return planOneGrid("fig11", "Figures 11-12 — MQ insert=batch, delete=TL", "batchInsert", batchLabels(), "pdelete", tlLabels(), cfg,
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ B/TL", mq.Config{C: 4,
				Insert: mq.InsertBatch, BatchInsert: batchSizes[ri],
				Delete: mq.DeleteTemporalLocality, PDeleteChange: tlProbs[ci].p})
		})
}

func planFig13(cfg RunConfig) (*Plan, error) {
	return planOneGrid("fig13", "Figures 13-14 — MQ insert=batch, delete=batch", "batchInsert", batchLabels(), "batchDelete", batchLabels(), cfg,
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ B/B", mq.Config{C: 4,
				Insert: mq.InsertBatch, BatchInsert: batchSizes[ri],
				Delete: mq.DeleteBatch, BatchDelete: batchSizes[ci]})
		})
}

// planFig15 compares a representative good configuration of each MQ
// optimization combination (the paper compares each combo's best).
func planFig15(cfg RunConfig) (*Plan, error) {
	p := NewPlan("fig15", cfg)
	ws := QuickWorkloads(p.Config.Scale)
	base := addClassicBaselines(p, ws, p.Config.MaxThreads)
	comboNames := []string{"TL/TL", "TL/B", "B/TL", "B/B"}
	combos := []SchedulerSpec{
		mqSpec("TL/TL", mq.Config{C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64}),
		mqSpec("TL/B", mq.Config{C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteBatch, BatchDelete: 8}),
		mqSpec("B/TL", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64}),
		mqSpec("B/B", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteBatch, BatchDelete: 8}),
	}
	cells := make([][]int, len(ws))
	for i, w := range ws {
		for _, spec := range combos {
			cells[i] = append(cells[i], p.addMeasure(w, spec, p.Config.MaxThreads, "combo="+spec.Name))
		}
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		t := Table{
			Title:  fmt.Sprintf("Figures 15-16 — MQ optimization combos (speedup/work vs classic MQ, %d threads)", p.Config.MaxThreads),
			Header: append([]string{"Benchmark"}, comboNames...),
		}
		for i, w := range ws {
			b := rs[base[i]]
			row := []string{w.Name}
			for _, ref := range cells[i] {
				m := rs[ref]
				row = append(row, speedupCell(safeRatio(cellDur(b), cellDur(m)),
					safeDiv(float64(m.Tasks), float64(b.Tasks))))
			}
			t.AddRow(row...)
		}
		return []Table{t}, nil
	})
	return p, nil
}

// ---------------------------------------------------------------------------
// emq: engineered MultiQueue ablation (Williams et al. 2021)

// emqStickiness and emqBuffers span the two engineering knobs of the
// engineered MultiQueue. Stickiness 1 with buffer 1 degenerates to the
// classic per-operation Multi-Queue discipline, so the grid's corner
// doubles as a sanity anchor against the classic-MQ baseline.
var (
	emqStickiness = []int{1, 4, 16, 64}
	emqBuffers    = []int{1, 4, 16, 64}
)

func planEMQ(cfg RunConfig) (*Plan, error) {
	rows := make([]string, len(emqStickiness))
	for i, s := range emqStickiness {
		rows[i] = fmt.Sprint(s)
	}
	cols := make([]string, len(emqBuffers))
	for i, b := range emqBuffers {
		cols[i] = fmt.Sprint(b)
	}
	return planOneGrid("emq", "Engineered MultiQueue — Williams et al. 2021", "stickiness", rows, "buffer", cols, cfg,
		func(ri, ci int) SchedulerSpec {
			return EMQSpec("EMQ", emqStickiness[ri], emqBuffers[ci], 0)
		})
}

// ---------------------------------------------------------------------------
// klsm: k-LSM relaxation ablation (Wimmer et al. 2015)

// klsmRelaxations is the relaxation sweep of the klsm experiment: the
// local-LSM capacity k spans strict-ish (4) to strongly relaxed (4096),
// bracketing the k-LSM paper's headline k = 256.
var klsmRelaxations = []int{4, 64, 256, 1024, 4096}

// planKLSM measures the k-LSM across its relaxation sweep on the quick
// workload set, one row per workload, cells speedup/work-increase
// against the classic MQ baseline — the same normalization as the other
// ablation grids, so the k-LSM columns are directly comparable to the
// emq and fig1 tables.
func planKLSM(cfg RunConfig) (*Plan, error) {
	p := NewPlan("klsm", cfg)
	ws := QuickWorkloads(p.Config.Scale)
	base := addClassicBaselines(p, ws, p.Config.MaxThreads)
	cells := make([][]int, len(ws))
	for i, w := range ws {
		for _, k := range klsmRelaxations {
			cells[i] = append(cells[i], p.addMeasure(w, KLSMSpec("kLSM", k), p.Config.MaxThreads, ""))
		}
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		header := []string{"Benchmark"}
		for _, k := range klsmRelaxations {
			header = append(header, fmt.Sprintf("k=%d", k))
		}
		t := Table{
			Title: fmt.Sprintf("k-LSM (Wimmer et al. 2015) — relaxation sweep (cells: speedup/work-increase vs classic MQ, %d threads)",
				p.Config.MaxThreads),
			Header: header,
		}
		for i, w := range ws {
			b := rs[base[i]]
			row := []string{w.Name}
			for _, ref := range cells[i] {
				m := rs[ref]
				row = append(row, speedupCell(safeRatio(cellDur(b), cellDur(m)),
					safeDiv(float64(m.Tasks), float64(b.Tasks))))
			}
			t.AddRow(row...)
		}
		return []Table{t}, nil
	})
	return p, nil
}

// ---------------------------------------------------------------------------
// numa: Tables 16-27

func planNUMA(cfg RunConfig) (*Plan, error) {
	p := NewPlan("numa", cfg)
	ws := QuickWorkloads(p.Config.Scale)
	base := addClassicBaselines(p, ws, p.Config.MaxThreads)
	ks := []float64{1, 2, 8, 64, 256, 1024}
	variants := []struct {
		name string
		mk   func(k float64) SchedulerSpec
	}{
		{"MQ B/B", func(k float64) SchedulerSpec {
			return mqSpec("MQ B/B", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
				Delete: mq.DeleteBatch, BatchDelete: 8, NUMANodes: 2, NUMAWeightK: k})
		}},
		{"MQ TL/TL", func(k float64) SchedulerSpec {
			return mqSpec("MQ TL/TL", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
				Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64,
				NUMANodes: 2, NUMAWeightK: k})
		}},
		{"SMQ heap", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "SMQ", Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return core.NewStealingMQ[uint32](core.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k, Seed: seed})
			}}
		}},
		{"SMQ skiplist", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "SMQ skip", Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return core.NewStealingMQSkipList[uint32](core.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k, Seed: seed})
			}}
		}},
		{"EMQ", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "EMQ", Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return emq.New[uint32](emq.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k, Seed: seed})
			}}
		}},
	}
	// cells[variant][workload][kIndex]
	cells := make([][][]int, len(variants))
	for vi, v := range variants {
		cells[vi] = make([][]int, len(ws))
		for wi, w := range ws {
			for _, k := range ks {
				keyParams := fmt.Sprintf("variant=%s,K=%g", v.name, k)
				cells[vi][wi] = append(cells[vi][wi], p.addMeasure(w, v.mk(k), p.Config.MaxThreads, keyParams))
			}
		}
	}
	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		var tables []Table
		for vi, v := range variants {
			t := Table{
				Title:  fmt.Sprintf("Tables 16-27 — %s with NUMA weight K (cells: speedup/remote-fraction, %d threads, 2 virtual nodes)", v.name, p.Config.MaxThreads),
				Header: append([]string{"Benchmark"}, kLabels(ks)...),
			}
			for wi, w := range ws {
				b := rs[base[wi]]
				row := []string{w.Name}
				for _, ref := range cells[vi][wi] {
					m := rs[ref]
					row = append(row, fmt.Sprintf("%.2f/%.2f", safeRatio(cellDur(b), cellDur(m)), m.Remote))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
		return tables, nil
	})
	return p, nil
}

func kLabels(ks []float64) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("K=%g", k)
	}
	return out
}

// ---------------------------------------------------------------------------
// theory: Theorem 1 validation

// addSimCell appends one discrete rank-model simulation cell; the
// simulation's RNG seed is the cell's derived seed, so any shard (or a
// solo re-run) reproduces the exact same statistics.
func addSimCell(p *Plan, key string, mk func(seed uint64) (values map[string]float64)) int {
	return p.AddCell(Cell{Kind: "sim", Key: key, Threads: 1}, func(c Cell) (CellResult, error) {
		return CellResult{Values: mk(c.Seed)}, nil
	})
}

func planTheory(cfg RunConfig) (*Plan, error) {
	p := NewPlan("theory", cfg)
	elements := 200000 * p.Config.Scale
	steps := 50000 * p.Config.Scale

	// (a) rank vs number of queues.
	ns := []int{4, 8, 16, 32, 64}
	aRefs := make([]int, len(ns))
	for i, n := range ns {
		n := n
		aRefs[i] = addSimCell(p, fmt.Sprintf("sim/a/n=%d", n), func(seed uint64) map[string]float64 {
			res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
				Queues: n, Elements: elements, StealProb: 0.125, Batch: 1, Seed: seed})
			return map[string]float64{
				"meanrank": res.MeanRemovedRank, "maxrank": float64(res.MaxRemovedRank),
				"bound": ranksim.TheoremBound(n, 1, 0.125, 0)}
		})
	}

	// (b) rank vs stealing probability.
	probs := []float64{0.5, 0.25, 0.125, 0.0625, 0.03125}
	bRefs := make([]int, len(probs))
	for i, pr := range probs {
		pr := pr
		bRefs[i] = addSimCell(p, fmt.Sprintf("sim/b/psteal=%.3g", pr), func(seed uint64) map[string]float64 {
			res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
				Queues: 16, Elements: elements, StealProb: pr, Batch: 1, Seed: seed})
			return map[string]float64{
				"meanrank": res.MeanRemovedRank, "maxrank": float64(res.MaxRemovedRank),
				"bound": ranksim.TheoremBound(16, 1, pr, 0)}
		})
	}

	// (c) rank vs batch size.
	batches := []int{1, 2, 4, 8, 16}
	cRefs := make([]int, len(batches))
	for i, b := range batches {
		b := b
		cRefs[i] = addSimCell(p, fmt.Sprintf("sim/c/B=%d", b), func(seed uint64) map[string]float64 {
			res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
				Queues: 16, Elements: elements, StealProb: 0.125, Batch: b, Seed: seed})
			return map[string]float64{
				"meanrank": res.MeanRemovedRank, "maxrank": float64(res.MaxRemovedRank),
				"bound": ranksim.TheoremBound(16, b, 0.125, 0)}
		})
	}

	// (d) unfair scheduling within the theorem's condition.
	gammas := []float64{0, 0.005, 0.015, 0.03}
	dRefs := make([]int, len(gammas))
	for i, g := range gammas {
		g := g
		dRefs[i] = addSimCell(p, fmt.Sprintf("sim/d/gamma=%.3g", g), func(seed uint64) map[string]float64 {
			res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
				Queues: 16, Elements: elements, StealProb: 0.5, Batch: 1, Gamma: g, Seed: seed})
			return map[string]float64{
				"meanrank": res.MeanRemovedRank, "maxrank": float64(res.MaxRemovedRank),
				"bound": ranksim.TheoremBound(16, 1, 0.5, g)}
		})
	}

	// (d2) classic Multi-Queue rank vs queue count. Setting p_steal = 1
	// makes the Listing-3 process pick a second uniform queue on every
	// delete and take the better top — exactly the classic Multi-Queue's
	// two-choice delete — so the same simulator covers the O(m) result
	// of Alistarh et al. that the paper builds on.
	mqs := []int{8, 16, 32, 64}
	mqRefs := make([]int, len(mqs))
	for i, m := range mqs {
		m := m
		mqRefs[i] = addSimCell(p, fmt.Sprintf("sim/mq/m=%d", m), func(seed uint64) map[string]float64 {
			res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
				Queues: m, Elements: elements, StealProb: 1, Batch: 1, Seed: seed})
			return map[string]float64{
				"meanrank": res.MeanRemovedRank, "maxrank": float64(res.MaxRemovedRank)}
		})
	}

	// (e) continuous SMQ process vs its (1+β) coupling: one cell per
	// psteal runs both coupled processes from the same seed.
	eProbs := []float64{0.5, 0.25, 0.125}
	eRefs := make([]int, len(eProbs))
	for i, pr := range eProbs {
		pr := pr
		eRefs[i] = addSimCell(p, fmt.Sprintf("sim/e/psteal=%.3g", pr), func(seed uint64) map[string]float64 {
			smq := ranksim.RunContinuousSMQ(ranksim.ContinuousConfig{
				Bins: 16, Steps: steps, StealProb: pr, Seed: seed})
			beta := ranksim.RunOnePlusBeta(ranksim.ContinuousConfig{
				Bins: 16, Steps: steps, Beta: pr / 2, Seed: seed})
			return map[string]float64{
				"smqavg": smq.MeanTopAvg, "smqmax": smq.MeanTopMax,
				"betaavg": beta.MeanTopAvg, "betamax": beta.MeanTopMax}
		})
	}

	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		ta := Table{
			Title:  "Theorem 1(a) — mean removed rank vs queues n (psteal=1/8, B=1)",
			Header: []string{"n", "MeanRank", "MaxRank", "TheoremBound"},
		}
		for i, n := range ns {
			v := rs[aRefs[i]].Values
			ta.AddRow(fmt.Sprint(n), fm(v["meanrank"]), fmt.Sprint(int(v["maxrank"])), fm(v["bound"]))
		}
		tb := Table{
			Title:  "Theorem 1(b) — mean removed rank vs psteal (n=16, B=1)",
			Header: []string{"psteal", "MeanRank", "MaxRank", "TheoremBound"},
		}
		for i, pr := range probs {
			v := rs[bRefs[i]].Values
			tb.AddRow(fmt.Sprintf("%.3g", pr), fm(v["meanrank"]), fmt.Sprint(int(v["maxrank"])), fm(v["bound"]))
		}
		tc := Table{
			Title:  "Theorem 1(c) — mean removed rank vs batch B (n=16, psteal=1/8)",
			Header: []string{"B", "MeanRank", "MaxRank", "TheoremBound"},
		}
		for i, b := range batches {
			v := rs[cRefs[i]].Values
			tc.AddRow(fmt.Sprint(b), fm(v["meanrank"]), fmt.Sprint(int(v["maxrank"])), fm(v["bound"]))
		}
		td := Table{
			Title:  "Theorem 1(d) — scheduler unfairness γ (n=16, psteal=1/2, B=1)",
			Header: []string{"gamma", "MeanRank", "MaxRank", "TheoremBound"},
		}
		for i, g := range gammas {
			v := rs[dRefs[i]].Values
			td.AddRow(fmt.Sprintf("%.3g", g), fm(v["meanrank"]), fmt.Sprint(int(v["maxrank"])), fm(v["bound"]))
		}
		tmq := Table{
			Title:  "Classic Multi-Queue (= SMQ process at psteal=1) — mean removed rank vs m",
			Header: []string{"m", "MeanRank", "MaxRank", "O(m) reference"},
		}
		for i, m := range mqs {
			v := rs[mqRefs[i]].Values
			tmq.AddRow(fmt.Sprint(m), fm(v["meanrank"]), fmt.Sprint(int(v["maxrank"])), fmt.Sprint(m))
		}
		te := Table{
			Title:  "Appendix A — continuous SMQ vs (1+β) coupling (n=16, stationary top ranks)",
			Header: []string{"psteal", "SMQ avg", "SMQ max", "β=p/2 avg", "β=p/2 max"},
		}
		for i, pr := range eProbs {
			v := rs[eRefs[i]].Values
			te.AddRow(fmt.Sprintf("%.3g", pr), fm(v["smqavg"]), fm(v["smqmax"]),
				fm(v["betaavg"]), fm(v["betamax"]))
		}
		return []Table{ta, tb, tc, td, tmq, te}, nil
	})
	return p, nil
}
