package perfbench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements the scheduler-by-scheduler comparison behind
// `benchcheck diff`: given two validated reports (typically the
// previous committed BENCH_*.json and a freshly generated one), it
// pairs up the sections they share and flags relative changes beyond a
// threshold. The diff is informational by design — benchmark numbers
// from different machines or CI runs are not comparable as pass/fail
// gates — but a flagged 3× throughput drop on one scheduler while its
// neighbours hold steady is exactly the regression signal a human
// should see before committing a new trajectory artifact.

// DiffEntry is one (scheduler, metric) comparison between two reports.
type DiffEntry struct {
	// Scheduler names the paired entry; desim rows use
	// "scheduler/model" keys.
	Scheduler string
	// Metric is the compared quantity ("throughput_ops_per_sec",
	// "batched_throughput_ops_per_sec", "hold_throughput_ops_per_sec",
	// "eliminations", "combines", "pop_latency_p99_ns",
	// "serve_throughput_tasks_per_sec", "desim_events_per_sec",
	// "desim_causality_violations").
	Metric string
	// Old and New are the two values; Delta is (new−old)/old.
	Old, New, Delta float64
	// Regression marks a flagged change in the harmful direction
	// (throughput down, latency up); Flagged marks any change beyond
	// the threshold, improvements included.
	Flagged, Regression bool
	// Hard marks a correctness-grade regression that no threshold or
	// informational mode may wave through: today, causality violations
	// increasing on a desim run whose lookahead window rests on an
	// exact rank bound. benchcheck exits nonzero on any hard entry
	// regardless of -fail.
	Hard bool
}

// DiffReport is the full comparison of two reports.
type DiffReport struct {
	// Threshold is the relative-change flag level the diff ran with.
	Threshold float64
	// Entries holds every paired comparison, flagged or not, sorted by
	// scheduler then metric.
	Entries []DiffEntry
	// OnlyOld / OnlyNew list section keys present in one report but
	// not the other (lineup drift — e.g. a new scheduler tier joining
	// the trajectory).
	OnlyOld, OnlyNew []string
}

// Flagged returns the entries whose relative change exceeds the
// threshold.
func (d *DiffReport) Flagged() []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Flagged {
			out = append(out, e)
		}
	}
	return out
}

// Regressions returns the flagged entries whose change points the
// harmful way (throughput down, latency up).
func (d *DiffReport) Regressions() []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Regression {
			out = append(out, e)
		}
	}
	return out
}

// HardErrors returns the entries marked Hard — regressions that remain
// fatal even in informational diff mode.
func (d *DiffReport) HardErrors() []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Hard {
			out = append(out, e)
		}
	}
	return out
}

// lowerIsBetter reports whether a metric improves downward rather than
// upward (throughputs, elimination hits). Latencies improve downward,
// and so do the combining and violation counters: combines count
// below-head inserts that missed the elimination fast path and had to
// be merged structurally, so on the same workload more of them means
// the fast path absorbed less.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "combines", "desim_causality_violations":
		return true
	}
	return strings.HasSuffix(metric, "_ns")
}

// metricWorkload maps a metric to the workload facet that produced it,
// the key the -workload diff filter matches against.
func metricWorkload(metric string) string {
	switch metric {
	case "throughput_ops_per_sec":
		return "scalar"
	case "batched_throughput_ops_per_sec":
		return "batched"
	case "hold_throughput_ops_per_sec", "eliminations", "combines":
		return "hold"
	case "pop_latency_p99_ns":
		return "latency"
	}
	switch {
	case strings.HasPrefix(metric, "serve_"):
		return "serve"
	case strings.HasPrefix(metric, "desim_"):
		return "desim"
	}
	return ""
}

// Workloads lists the facet names FilterWorkload accepts.
func Workloads() []string {
	return []string{"scalar", "batched", "hold", "latency", "serve", "desim"}
}

// FilterWorkload narrows the diff to the entries of one workload facet
// (see Workloads). The drift lists are preserved — lineup drift is
// facet-independent. Unknown names yield an empty entry list, which the
// caller should reject against Workloads up front.
func (d *DiffReport) FilterWorkload(workload string) *DiffReport {
	out := &DiffReport{Threshold: d.Threshold, OnlyOld: d.OnlyOld, OnlyNew: d.OnlyNew}
	for _, e := range d.Entries {
		if metricWorkload(e.Metric) == workload {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// DefaultDiffThreshold is the relative change (25%) at which a paired
// metric is flagged. Microbenchmark noise across runs of the same code
// sits well under this on an idle machine; same-machine regressions
// worth a look sit well over it.
const DefaultDiffThreshold = 0.25

// Diff compares two validated reports section by section. A threshold
// <= 0 selects DefaultDiffThreshold. Sections missing from either
// report are skipped entirely (a desim-only artifact diffed against a
// microbenchmark artifact produces no entries, only OnlyOld/OnlyNew
// keys), so the diff never manufactures comparisons the data cannot
// support.
func Diff(old, new_ *Report, threshold float64) *DiffReport {
	if threshold <= 0 {
		threshold = DefaultDiffThreshold
	}
	d := &DiffReport{Threshold: threshold}

	add := func(key, metric string, ov, nv float64) {
		if ov <= 0 || nv <= 0 {
			return // section/schema gap, not a measurement
		}
		delta := (nv - ov) / ov
		e := DiffEntry{Scheduler: key, Metric: metric, Old: ov, New: nv, Delta: delta}
		if math.Abs(delta) > threshold {
			e.Flagged = true
			if lowerIsBetter(metric) {
				e.Regression = delta > 0
			} else {
				e.Regression = delta < 0
			}
		}
		d.Entries = append(d.Entries, e)
	}

	// Pair each section on its natural key; record lineup drift.
	pair := func(section string, oldKeys, newKeys []string, emit func(key string)) {
		on := make(map[string]bool, len(oldKeys))
		for _, k := range oldKeys {
			on[k] = true
		}
		nn := make(map[string]bool, len(newKeys))
		for _, k := range newKeys {
			nn[k] = true
			if on[k] {
				emit(k)
			} else {
				d.OnlyNew = append(d.OnlyNew, section+":"+k)
			}
		}
		for _, k := range oldKeys {
			if !nn[k] {
				d.OnlyOld = append(d.OnlyOld, section+":"+k)
			}
		}
	}

	oldRes := make(map[string]*Result, len(old.Results))
	newRes := make(map[string]*Result, len(new_.Results))
	for i := range old.Results {
		oldRes[old.Results[i].Scheduler] = &old.Results[i]
	}
	for i := range new_.Results {
		newRes[new_.Results[i].Scheduler] = &new_.Results[i]
	}
	pair("results", keys(oldRes), keys(newRes), func(k string) {
		o, n := oldRes[k], newRes[k]
		add(k, "throughput_ops_per_sec", o.ThroughputOpsPerSec, n.ThroughputOpsPerSec)
		add(k, "batched_throughput_ops_per_sec", o.BatchedThroughputOpsPerSec, n.BatchedThroughputOpsPerSec)
		add(k, "hold_throughput_ops_per_sec", o.HoldThroughputOpsPerSec, n.HoldThroughputOpsPerSec)
		// The elimination/combining counters compare only when both
		// artifacts carry them (add skips zero values), i.e. both runs
		// recorded the hold facet on a scheduler with the layer.
		add(k, "eliminations", float64(o.Eliminations), float64(n.Eliminations))
		add(k, "combines", float64(o.Combines), float64(n.Combines))
		add(k, "pop_latency_p99_ns", o.PopP99Ns, n.PopP99Ns)
	})

	oldServe := make(map[string]*ServeResult, len(old.Serve))
	newServe := make(map[string]*ServeResult, len(new_.Serve))
	for i := range old.Serve {
		oldServe[old.Serve[i].Scheduler] = &old.Serve[i]
	}
	for i := range new_.Serve {
		newServe[new_.Serve[i].Scheduler] = &new_.Serve[i]
	}
	pair("serve", keys(oldServe), keys(newServe), func(k string) {
		add(k, "serve_throughput_tasks_per_sec", oldServe[k].ThroughputTasksPerSec, newServe[k].ThroughputTasksPerSec)
	})

	oldDesim := make(map[string]*DesimResult, len(old.Desim))
	newDesim := make(map[string]*DesimResult, len(new_.Desim))
	for i := range old.Desim {
		dr := &old.Desim[i]
		oldDesim[dr.Scheduler+"/"+dr.Model] = dr
	}
	for i := range new_.Desim {
		dr := &new_.Desim[i]
		newDesim[dr.Scheduler+"/"+dr.Model] = dr
	}
	pair("desim", keys(oldDesim), keys(newDesim), func(k string) {
		o, n := oldDesim[k], newDesim[k]
		add(k, "desim_events_per_sec", o.EventsPerSec, n.EventsPerSec)
		// Causality violations increasing under an exact rank bound is
		// not a performance delta, it is a broken safety claim: the diff
		// reports it as a hard error regardless of threshold or -fail
		// (Validate rejects such artifacts when the window covers the
		// bound; the diff catches the window-below-bound configurations
		// Validate cannot judge).
		if n.BoundSource == "exact" && n.Violations > o.Violations {
			delta := math.Inf(1)
			if o.Violations > 0 {
				delta = (float64(n.Violations) - float64(o.Violations)) / float64(o.Violations)
			}
			d.Entries = append(d.Entries, DiffEntry{
				Scheduler: k, Metric: "desim_causality_violations",
				Old: float64(o.Violations), New: float64(n.Violations),
				Delta:   delta,
				Flagged: true, Regression: true, Hard: true,
			})
		}
	})

	sort.Slice(d.Entries, func(i, j int) bool {
		a, b := d.Entries[i], d.Entries[j]
		if a.Scheduler != b.Scheduler {
			return a.Scheduler < b.Scheduler
		}
		return a.Metric < b.Metric
	})
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// keys returns a map's keys in arbitrary order (pair sorts drift lists
// and Diff sorts entries at the end).
func keys[V any](m map[string]*V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Format renders the diff as an aligned text table: flagged rows carry
// a "!" marker ("!!" for regressions, "!!!" for hard errors), lineup
// drift is listed at the end. onlyFlagged restricts the table to
// flagged rows.
func (d *DiffReport) Format(onlyFlagged bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-16s %-32s %14s %14s %8s\n", "", "scheduler", "metric", "old", "new", "delta")
	rows := 0
	for _, e := range d.Entries {
		if onlyFlagged && !e.Flagged {
			continue
		}
		mark := ""
		switch {
		case e.Hard:
			mark = "!!!"
		case e.Regression:
			mark = "!!"
		case e.Flagged:
			mark = "!"
		}
		fmt.Fprintf(&b, "%-3s %-16s %-32s %14.4g %14.4g %+7.1f%%\n",
			mark, e.Scheduler, e.Metric, e.Old, e.New, 100*e.Delta)
		rows++
	}
	if rows == 0 {
		fmt.Fprintf(&b, "   (no %scomparable entries)\n", map[bool]string{true: "flagged ", false: ""}[onlyFlagged])
	}
	for _, k := range d.OnlyOld {
		fmt.Fprintf(&b, "-  %s only in old report\n", k)
	}
	for _, k := range d.OnlyNew {
		fmt.Fprintf(&b, "+  %s only in new report\n", k)
	}
	return b.String()
}
