package obim

import (
	"testing"

	"repro/internal/benchutil"
)

func BenchmarkThroughput_OBIM(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4, Delta: 8, ChunkSize: 32}), 1<<12)
}

func BenchmarkThroughput_PMOD(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4, Delta: 8, ChunkSize: 32,
		Adaptive: true, AdaptInterval: 1024}), 1<<12)
}
