// Package emq implements the engineered MultiQueue of Williams, Sanders
// and Dementiev, "Engineering MultiQueues: Fast Relaxed Concurrent
// Priority Queues" (2021) — the strongest published follow-up to the
// classic Multi-Queue of Rihani, Sanders and Dementiev (2015) that the
// SMQ paper compares against.
//
// The engineered MultiQueue keeps the classic layout — m = C·Workers
// sequential heaps, each behind a try-lock, two-choice delete — and adds
// two orthogonal engineering optimisations:
//
//   - Queue stickiness: instead of sampling fresh queues on every
//     operation, each worker holds a pair of sticky queue indices that
//     persist for Stickiness consecutive operations (pushes and pops).
//     Insertions flush to a member of the pair; deletions run the
//     two-choice comparison between the pair's cached tops. On expiry —
//     or on a failed try-lock, which signals contention — the indices
//     are resampled. Stickiness trades rank quality for locality: the
//     same heaps stay cache-hot and the same locks stay uncontended.
//
//   - Operation buffers: each worker owns a bounded insertion buffer,
//     flushed into a sticky queue under a single lock acquisition when
//     it overflows or stickiness expires, and a deletion buffer that
//     pre-pops a batch of DeleteBuffer tasks from the locked winner of
//     the two-choice comparison and then serves them lock-free.
//
// Queue sampling reuses the weighted NUMA distribution of internal/numa
// (§4 of the SMQ paper), so the NUMA scenario carries over: with
// NUMANodes > 1 sticky resampling prefers node-local queues with weight
// divisor NUMAWeightK and Stats().Remote counts off-node accesses.
//
// # Relaxation and liveness
//
// Pop serves the deletion buffer before touching any shared state, so a
// worker can never abandon pre-popped tasks (their Pending entries keep
// the computation alive until they are served). When the sticky pair
// looks empty, Pop first publishes the worker's own insertion buffer and
// then falls back to a full sweep of all queues, so it returns ok=false
// only when every queue was observed empty — spurious emptiness remains
// possible (tasks may hide in other workers' buffers), exactly the
// relaxation the sched.Pending protocol is designed for.
package emq

import (
	"fmt"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/numa"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Config parameterizes the engineered MultiQueue. The zero value of each
// field selects a default close to the original paper's recommended
// configuration (c = 2, stickiness and buffers of moderate size, 8-ary
// heaps).
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// C is the queues-per-worker multiplier; m = C·Workers. Default 2
	// (the engineered MultiQueue's recommended factor — stickiness makes
	// the larger C of the classic Multi-Queue unnecessary).
	C int
	// Stickiness is the number of operations (pushes + pops) a worker
	// keeps its sticky queue pair before resampling. 1 degenerates to
	// the classic fresh-sample-per-operation behaviour. Default 16.
	Stickiness int
	// InsertBuffer is the insertion buffer capacity: pushes accumulate
	// locally and are flushed under one lock acquisition when the buffer
	// fills or stickiness expires. 1 disables buffering. Default 16.
	InsertBuffer int
	// DeleteBuffer is the deletion buffer capacity: a refill pre-pops up
	// to this many tasks from the locked two-choice winner and serves
	// them lock-free. 1 disables buffering. Default 16.
	DeleteBuffer int
	// HeapArity is the per-queue heap fan-out. Default 8 (the engineered
	// MultiQueue favours wider heaps than the classic MQ's 4: buffered
	// bulk operations amortize the deeper comparisons).
	HeapArity int
	// Seed makes runs reproducible.
	Seed uint64
	// NUMANodes > 1 enables weighted queue sampling over virtual NUMA
	// nodes with divisor NUMAWeightK (§4 of the SMQ paper).
	NUMANodes   int
	NUMAWeightK float64
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive and every set field within its documented
// domain (zero values select defaults). New panics with exactly this
// error on an invalid configuration, so callers that must not panic
// validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("emq: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.C < 0 {
		return fmt.Errorf("emq: Config.C = %d, must be >= 0", c.C)
	}
	if c.Stickiness < 0 {
		return fmt.Errorf("emq: Config.Stickiness = %d, must be >= 0", c.Stickiness)
	}
	if c.InsertBuffer < 0 {
		return fmt.Errorf("emq: Config.InsertBuffer = %d, must be >= 0", c.InsertBuffer)
	}
	if c.DeleteBuffer < 0 {
		return fmt.Errorf("emq: Config.DeleteBuffer = %d, must be >= 0", c.DeleteBuffer)
	}
	if c.HeapArity < 0 || c.HeapArity == 1 {
		return fmt.Errorf("emq: Config.HeapArity = %d, must be 0 (default) or >= 2", c.HeapArity)
	}
	if c.NUMANodes < 0 {
		return fmt.Errorf("emq: Config.NUMANodes = %d, must be >= 0", c.NUMANodes)
	}
	if c.NUMAWeightK < 0 {
		return fmt.Errorf("emq: Config.NUMAWeightK = %g, must be >= 0", c.NUMAWeightK)
	}
	return nil
}

// withDefaults returns a copy with every zero-valued field replaced by
// its documented default. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 2
	}
	if c.Stickiness == 0 {
		c.Stickiness = 16
	}
	if c.InsertBuffer == 0 {
		c.InsertBuffer = 16
	}
	if c.DeleteBuffer == 0 {
		c.DeleteBuffer = 16
	}
	if c.HeapArity == 0 {
		c.HeapArity = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NUMAWeightK == 0 {
		c.NUMAWeightK = 8
	}
	return c
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	*c = c.withDefaults()
}

// lockQueue is one of the m sequential heaps behind a try-lock. The
// cached top is maintained under the lock and read lock-free by the
// sticky two-choice comparison (the engineered MultiQueue never locks a
// queue just to inspect its top).
//
// The queues live in one contiguous slice, hand-padded to exactly one
// cache line (mu 4B + 4B alignment + heap pointer 8B + top 8B = 24B,
// plus 40B pad) so adjacent queues' lock words and cached tops never
// share a line; see TestLockQueuePadding.
type lockQueue[T any] struct {
	mu   contend.Lock
	heap *pq.DHeap[T]
	top  atomic.Uint64 // cached heap top (InfPriority when empty)
	_    [contend.CacheLineSize - 24]byte
}

// The helpers below must be called with q.mu held; they keep the cached
// top coherent with the heap. The engineered MultiQueue always operates
// in bulk (buffer flushes and batch refills), so the atomic top store —
// a full fence on amd64 — is paid once per batch, not once per task,
// and only when the top actually changed.

func (q *lockQueue[T]) pushAll(items []pq.Item[T]) {
	for _, it := range items {
		q.heap.PushItem(it)
	}
	q.syncTop()
}

func (q *lockQueue[T]) popBatch(k int, dst []pq.Item[T]) []pq.Item[T] {
	dst = q.heap.PopBatch(k, dst)
	q.syncTop()
	return dst
}

// syncTop refreshes the lock-free cached top, skipping the (fencing)
// atomic store when the heap top is unchanged — e.g. a flushed batch
// whose best task is worse than the resident top.
func (q *lockQueue[T]) syncTop() {
	if t := q.heap.Top(); t != q.top.Load() {
		q.top.Store(t)
	}
}

// EMQ is the engineered MultiQueue scheduler.
type EMQ[T any] struct {
	cfg      Config
	topo     numa.Topology
	queues   []lockQueue[T] // contiguous, each element one padded cache line
	workers  []worker[T]
	counters []sched.Counters
}

// New builds an engineered MultiQueue with the given configuration.
func New[T any](cfg Config) *EMQ[T] {
	cfg.normalize()
	s := &EMQ[T]{
		cfg:      cfg,
		topo:     numa.New(cfg.Workers, max(cfg.NUMANodes, 1), cfg.C),
		queues:   make([]lockQueue[T], cfg.Workers*cfg.C),
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	for i := range s.queues {
		s.queues[i].heap = pq.NewDHeapCap[T](cfg.HeapArity, 64)
		s.queues[i].top.Store(pq.InfPriority)
	}
	k := 1.0
	if cfg.NUMANodes > 1 {
		k = cfg.NUMAWeightK
	}
	for i := range s.workers {
		w := &s.workers[i]
		w.s = s
		w.id = i
		w.rng.Seed(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		w.smp = *numa.NewSampler(s.topo, i, k, &w.rng)
		w.c = &s.counters[i]
		w.insBuf = make([]pq.Item[T], 0, cfg.InsertBuffer)
		w.delBuf = make([]pq.Item[T], 0, cfg.DeleteBuffer)
		w.resample()
		w.stick = cfg.Stickiness
	}
	return s
}

// Workers reports the number of worker slots.
func (s *EMQ[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w. Each handle must be used by a
// single goroutine.
func (s *EMQ[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("emq: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce.
func (s *EMQ[T]) Stats() sched.Stats {
	for i := range s.workers {
		s.counters[i].Remote = s.workers[i].smp.Remote
	}
	return sched.SumCounters(s.counters)
}

// worker is the per-goroutine handle with all thread-local state. The
// RNG and NUMA sampler are embedded by value: both mutate on every
// operation, and as separate heap allocations two workers' generators
// could share a cache line; inside the padded worker struct they cannot.
type worker[T any] struct {
	s   *EMQ[T]
	id  int
	rng xrand.Rand
	smp numa.Sampler
	c   *sched.Counters

	sticky [2]int // the sticky queue pair
	stick  int    // operations left before resampling

	insBuf []pq.Item[T] // insertion buffer
	delBuf []pq.Item[T] // deletion buffer (served front to back)
	delIdx int

	sweepSkip []int // queues the sweep's try-lock pass skipped (reused)

	// Workers sit in one contiguous slice and mutate stick/delIdx on
	// every operation; a trailing cache line keeps those hot words off
	// the neighbouring worker's line.
	_ [contend.CacheLineSize]byte
}

// resample draws a fresh sticky queue pair (NUMA-weighted when
// configured).
func (w *worker[T]) resample() {
	w.sticky[0] = w.smp.Sample()
	if w.s.topo.NumQueues() > 1 {
		w.sticky[1] = w.smp.SampleOther(w.sticky[0])
	} else {
		w.sticky[1] = w.sticky[0]
	}
}

// resampleSlot replaces one member of the sticky pair after a failed
// try-lock (contention means another worker is stuck to that queue).
func (w *worker[T]) resampleSlot(slot int) {
	if w.s.topo.NumQueues() > 1 {
		w.sticky[slot] = w.smp.SampleOther(w.sticky[1-slot])
	}
}

// tick retires one operation from the stickiness budget; on expiry the
// insertion buffer is published and the sticky pair resampled.
func (w *worker[T]) tick() { w.tickN(1) }

// tickN retires n operations from the stickiness budget at once — a
// batched PushN/PopN is one decision point, so it spends its whole
// size in one subtraction instead of n decrements.
func (w *worker[T]) tickN(n int) {
	w.stick -= n
	if w.stick > 0 {
		return
	}
	w.flushInserts()
	w.resample()
	w.stick = w.s.cfg.Stickiness
}

// Push appends to the insertion buffer, flushing to a sticky queue when
// the buffer reaches capacity.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: v})
	if len(w.insBuf) >= w.s.cfg.InsertBuffer {
		w.flushInserts()
	}
	w.tick()
}

// flushInserts publishes the whole insertion buffer into a sticky queue
// under a single lock acquisition. A failed try-lock resamples that
// sticky slot and retries with the replacement.
func (w *worker[T]) flushInserts() {
	if len(w.insBuf) == 0 {
		return
	}
	slot := 0
	if w.rng.OneIn(2) {
		slot = 1
	}
	for {
		q := &w.s.queues[w.sticky[slot]]
		if q.mu.TryLock() {
			q.pushAll(w.insBuf)
			q.mu.Unlock()
			clear(w.insBuf)
			w.insBuf = w.insBuf[:0]
			return
		}
		w.c.LockFails++
		w.resampleSlot(slot)
	}
}

// PushN routes a whole batch through the insertion buffer — the
// engineered MultiQueue's own mechanism — flushing at each capacity
// crossing (one locked pushAll per InsertBuffer tasks) and spending
// the batch's stickiness budget in one tickN.
func (w *worker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	for i, p := range ps {
		w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: vs[i]})
		if len(w.insBuf) >= w.s.cfg.InsertBuffer {
			w.flushInserts()
		}
	}
	w.tickN(len(ps))
}

// PopN is the batched delete: leftover deletion-buffer tasks are served
// first (one copy), then a single two-choice refill extracts up to the
// rest of dst directly from the locked winner — the deletion-buffer
// mechanism with the caller's slice as the buffer, skipping the
// intermediate copy entirely, including on the sweep fallback.
func (w *worker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	n := 0
	if w.delIdx < len(w.delBuf) {
		k := copy(dst, w.delBuf[w.delIdx:])
		clear(w.delBuf[w.delIdx : w.delIdx+k])
		w.delIdx += k
		n = k
	}
	flushed := false
	for n < len(dst) {
		got := w.refillInto(dst[n:])
		if got > 0 {
			n += got
			break
		}
		if !flushed && len(w.insBuf) > 0 {
			// Our unflushed insertion buffer may hold the only remaining
			// tasks; publish it and retry so tasks can never strand.
			w.flushInserts()
			flushed = true
			continue
		}
		break
	}
	if n > 0 {
		w.c.Pops += uint64(n)
	} else {
		w.c.EmptyPops++
	}
	w.tickN(max(n, 1))
	return n
}

// Pop serves the deletion buffer, refilling it from the sticky pair (or,
// failing that, a global sweep) when it runs dry.
func (w *worker[T]) Pop() (uint64, T, bool) {
	for round := 0; ; round++ {
		if w.delIdx < len(w.delBuf) {
			it := w.delBuf[w.delIdx]
			var zero pq.Item[T]
			w.delBuf[w.delIdx] = zero
			w.delIdx++
			w.c.Pops++
			w.tick()
			return it.P, it.V, true
		}
		if w.refill() {
			continue
		}
		if round == 0 && len(w.insBuf) > 0 {
			// Our unflushed insertion buffer may hold the only remaining
			// tasks; publish it and retry so tasks can never strand.
			w.flushInserts()
			continue
		}
		w.c.EmptyPops++
		w.tick()
		var zero T
		return pq.InfPriority, zero, false
	}
}

// refill pre-pops a batch into the deletion buffer; it is the scalar
// wrapper over refillInto with the worker-owned buffer as the target.
func (w *worker[T]) refill() bool {
	got := w.refillInto(w.delBuf[:w.s.cfg.DeleteBuffer])
	w.delBuf = w.delBuf[:got]
	w.delIdx = 0
	return got > 0
}

// refillInto extracts up to len(dst) tasks into dst from the two-choice
// winner of the sticky pair, comparing the pair's cached tops without
// locking either queue and popping the whole run under the winner's
// single lock acquisition. Lock failures resample the contended slot;
// empty pairs resample both. After bounded attempts it falls back to a
// full sweep so spurious emptiness is rare. Returns the task count.
func (w *worker[T]) refillInto(dst []pq.Item[T]) int {
	for attempt := 0; attempt < 4; attempt++ {
		slot := 0
		if w.s.queues[w.sticky[1]].top.Load() < w.s.queues[w.sticky[0]].top.Load() {
			slot = 1
		}
		q := &w.s.queues[w.sticky[slot]]
		if q.top.Load() == pq.InfPriority {
			// Both cached tops are infinite: the pair looks drained.
			w.resample()
			continue
		}
		if !q.mu.TryLock() {
			w.c.LockFails++
			w.resampleSlot(slot)
			continue
		}
		got := len(q.popBatch(len(dst), dst[:0]))
		q.mu.Unlock()
		if got > 0 {
			return got
		}
		w.resample()
	}
	return w.sweepRefillInto(dst)
}

// sweepRefillInto scans every queue once from a random start and fills
// dst from the first non-empty one. It returns 0 only when every queue
// was observed empty.
//
// The first pass uses try-locks (counting failures in LockFails) so the
// cold path never blocks behind a queue busy serving other workers;
// queues skipped by the first pass are re-visited with a blocking lock,
// preserving the every-queue-observed guarantee.
func (w *worker[T]) sweepRefillInto(dst []pq.Item[T]) int {
	m := len(w.s.queues)
	start := w.rng.Intn(m)
	w.sweepSkip = w.sweepSkip[:0]
	for off := 0; off < m; off++ {
		qi := start + off
		if qi >= m {
			qi -= m
		}
		q := &w.s.queues[qi]
		if !q.mu.TryLock() {
			w.c.LockFails++
			w.sweepSkip = append(w.sweepSkip, qi)
			continue
		}
		got := len(q.popBatch(len(dst), dst[:0]))
		q.mu.Unlock()
		if got > 0 {
			return got
		}
	}
	for _, qi := range w.sweepSkip {
		q := &w.s.queues[qi]
		q.mu.Lock()
		got := len(q.popBatch(len(dst), dst[:0]))
		q.mu.Unlock()
		if got > 0 {
			return got
		}
	}
	return 0
}
