//go:build !race

// testing.AllocsPerRun under the race detector measures the
// instrumentation's allocations, not the scheduler's; CI runs these
// through a dedicated non-race step.

package klsm

import (
	"testing"

	"repro/internal/xrand"
)

// TestSteadyStateNearAllocFree pins the slab-pool win in the merge
// path: before block recycling the k-LSM allocated ~3 times per insert
// (singleton block + slice, plus merge outputs); with the per-LSM pools
// the steady state is near-zero. A small tolerance remains because a
// merge cascade occasionally needs a slab larger than any pooled one.
func TestSteadyStateNearAllocFree(t *testing.T) {
	s := New[int](Config{Workers: 1})
	w := s.Worker(0)
	rng := xrand.New(42)
	for i := 0; i < 4096; i++ {
		w.Push(uint64(rng.Intn(1<<20)), i)
	}
	for i := 0; i < 2048; i++ {
		w.Pop()
	}
	allocs := testing.AllocsPerRun(4000, func() {
		p, v, ok := w.Pop()
		if !ok {
			w.Push(uint64(rng.Intn(1<<20)), 0)
			return
		}
		w.Push(p+uint64(rng.Intn(64)), v)
	})
	if allocs > 0.05 {
		t.Fatalf("steady-state pop+push allocates %.3f allocs/op, want <= 0.05 (slab pool regressed)", allocs)
	}
}
