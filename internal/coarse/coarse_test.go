package coarse

import (
	"sync"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/sched"
)

func TestExactOrderSingleWorker(t *testing.T) {
	s := New[int](Config{Workers: 1})
	w := s.Worker(0)
	for i := 100; i >= 1; i-- {
		w.Push(uint64(i), i)
	}
	for i := 1; i <= 100; i++ {
		p, v, ok := w.Pop()
		if !ok || p != uint64(i) || v != i {
			t.Fatalf("Pop %d = (%d,%d,%v)", i, p, v, ok)
		}
	}
	if _, _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
}

func TestNoLostTasksConcurrent(t *testing.T) {
	s := New[int](Config{Workers: 4})
	const perWorker = 5000
	total := 4 * perWorker
	var pending sched.Pending
	pending.Inc(int64(total))
	seen := make([]int32, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wid := 0; wid < 4; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			for i := 0; i < perWorker; i++ {
				v := wid*perWorker + i
				w.Push(uint64(v%991), v)
			}
			var b sched.Backoff
			for !pending.Done() {
				_, v, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				mu.Lock()
				seen[v]++
				mu.Unlock()
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("task %d seen %d times", v, c)
		}
	}
	if st := s.Stats(); st.Pops != uint64(total) {
		t.Fatalf("Pops = %d, want %d", st.Pops, total)
	}
}

func TestWorkerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 did not panic")
		}
	}()
	New[int](Config{})
}

func BenchmarkThroughput_CoarseLock(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4}), 1<<12)
}
