package algos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obim"
	"repro/internal/sched"
)

func TestSSSPDeltaMatchesDijkstra(t *testing.T) {
	g := graph.GenerateRoadGrid(20, 20, 17)
	src := uint32(0)
	want, _ := DijkstraSeq(g, src)
	for _, shift := range []uint{0, 2, 6, 10, 20} {
		for sname, mk := range map[string]func() sched.Scheduler[uint32]{
			"smq":  func() sched.Scheduler[uint32] { return core.NewStealingMQ[uint32](core.Config{Workers: 4}) },
			"obim": func() sched.Scheduler[uint32] { return obim.New[uint32](obim.Config{Workers: 4}) },
		} {
			got, res := SSSPDelta(g, src, shift, mk())
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("shift=%d %s: dist[%d] = %d, want %d", shift, sname, v, got[v], want[v])
				}
			}
			if res.Tasks == 0 {
				t.Fatalf("shift=%d %s: no tasks", shift, sname)
			}
		}
	}
}

func TestSSSPDeltaCoarserShiftMoreWork(t *testing.T) {
	// Coarser buckets destroy priority order inside a bucket, which can
	// only increase (or keep) wasted work for a priority-respecting
	// scheduler with a single worker.
	g := graph.GenerateRoadGrid(40, 40, 19)
	_, fineRes := SSSPDelta(g, 0, 0, core.NewStealingMQ[uint32](core.Config{Workers: 1}))
	_, coarseRes := SSSPDelta(g, 0, 16, core.NewStealingMQ[uint32](core.Config{Workers: 1}))
	if coarseRes.Tasks < fineRes.Tasks {
		t.Fatalf("coarse buckets did less work: %d < %d", coarseRes.Tasks, fineRes.Tasks)
	}
}

func TestSSSPDeltaShiftClamped(t *testing.T) {
	g := graph.GenerateRoadGrid(5, 5, 21)
	want, _ := DijkstraSeq(g, 0)
	got, _ := SSSPDelta(g, 0, 200, core.NewStealingMQ[uint32](core.Config{Workers: 2}))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
