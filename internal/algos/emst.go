package algos

import (
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/sched"
)

// EuclideanMST computes the exact minimum spanning tree of a point set
// under quantized Euclidean distances (geom.Weight), returning the
// total weight, the edge count (always n-1 for n >= 1: the implicit
// complete graph is connected), and the combined accounting of both
// parallel phases.
//
// Phase 1 builds the k-NN candidate rows with the scheduler-driven
// radius expansion of KNNGraph. Phase 2 runs Boruvka-style component
// contraction over the *implicit complete graph*: a component's minimum
// outgoing edge is found by advancing each member point's cursor
// through its sorted candidate row past intra-component entries
// (components only grow, so skipped entries stay internal forever).
// When a point exhausts its row with every candidate internal, the
// widen-radius fallback runs a component-filtered kd-tree nearest query
// whose search radius shrinks as candidates are found, so the first
// external candidate is always the point's true nearest outside point.
// Every contraction therefore commits a cut-minimal edge of the
// complete graph, which makes the result the exact EMST — matching the
// sequential O(n^2) Prim baseline (PrimEMSTSeq) in weight and edge
// count, since all minimum spanning trees of a graph share the same
// total weight.
//
// Task priorities in phase 2 are component sizes (small components
// merge first), mirroring BoruvkaMST's degree-based priorities.
func EuclideanMST(ps *geom.PointSet, k int, s sched.Scheduler[uint32]) (uint64, int, Result) {
	n := ps.N()
	rows, tree, knnRes := knnRows(ps, k, s)
	if n <= 1 {
		return 0, 0, knnRes
	}

	parent := make([]atomic.Uint32, n)
	locks := make([]sync.Mutex, n)
	// Per-point cursor state into the candidate rows. cand[i] and pos[i]
	// are only touched while holding the lock of point i's current
	// component root.
	cand := rows
	pos := make([]int, n)
	// members[r] chains the point ids of the component rooted at r; only
	// accessed while holding locks[r].
	members := make([]*memberChain, n)
	for i := 0; i < n; i++ {
		parent[i].Store(uint32(i))
		members[i] = &memberChain{ids: []uint32{uint32(i)}, size: 1}
		members[i].tail = members[i]
	}

	find := func(x uint32) uint32 {
		for {
			p := parent[x].Load()
			if p == x {
				return x
			}
			gp := parent[p].Load()
			if gp != p {
				parent[x].CompareAndSwap(p, gp) // path halving
			}
			x = p
		}
	}

	// nearestExternal returns point i's closest neighbor outside the
	// component rooted at root. The phase-1 k-NN row serves as a cheap
	// cache: its cursor advances past intra-component entries, which
	// stay internal forever because components only grow. Once the row
	// is exhausted, the widen-radius fallback runs a component-filtered
	// kd-tree nearest query — exact by the same (distance, index) order
	// — and caches the result as a one-entry row, re-queried only after
	// the cached point itself gets absorbed. ok=false means no external
	// point exists (the component spans the whole set) — unreachable in
	// practice because whole-set components short-circuit before the
	// member scan, but kept for safety.
	isInternal := func(root uint32) func(int32) bool {
		return func(j int32) bool { return find(uint32(j)) == root }
	}
	nearestExternal := func(i int, root uint32) (geom.Neighbor, bool) {
		row := cand[i]
		for pos[i] < len(row) && find(uint32(row[pos[i]].Idx)) == root {
			pos[i]++
		}
		if pos[i] < len(row) {
			return row[pos[i]], true
		}
		nb, ok := tree.NearestFiltered(ps.At(i), int32(i), isInternal(root))
		if !ok {
			return geom.Neighbor{}, false
		}
		cand[i] = append(cand[i][:0], nb)
		pos[i] = 0
		return nb, true
	}

	// minOut scans the component rooted at r for its minimum outgoing
	// edge of the complete graph. Must be called with locks[r] held; the
	// cut {component} vs rest is then stable, so the choice stays
	// cut-minimal until the lock is released. Cursor advances persist,
	// so the scan is amortized O(members) per call.
	minOut := func(r uint32) (best geom.Neighbor, bestW uint32, found bool) {
		var bestSrc uint32
		for link := members[r]; link != nil; link = link.next {
			for _, i := range link.ids {
				nb, ok := nearestExternal(int(i), r)
				if !ok {
					continue
				}
				nw := geom.Weight(nb.D2)
				if !found || nw < bestW || (nw == bestW && (nb.Idx < best.Idx || (nb.Idx == best.Idx && i < bestSrc))) {
					best, bestSrc, bestW, found = nb, i, nw, true
				}
			}
		}
		return best, bestW, found
	}

	var totalWeight atomic.Uint64
	var totalEdges atomic.Int64

	var pending sched.Pending
	pending.Inc(int64(n))
	for i := 0; i < n; i++ {
		s.Worker(i%s.Workers()).Push(1, uint32(i))
	}

	// Contraction locking differs from BoruvkaMST's try-lock-and-requeue
	// discipline: the minimum-outgoing scans here are long enough that
	// requeue-on-contention degenerates into retry storms — two large
	// components whose minimum edges point at each other re-enqueue
	// against each other's held locks in lockstep (especially under the
	// SMQ, whose local queues replay the retry instantly). Instead both
	// root locks are taken blocking in increasing root-id order, which
	// is deadlock-free, and every re-acquisition re-validates roots and
	// recomputes the minimum edge, so each loop iteration either commits
	// a merge or observes another worker's committed merge — global
	// progress without a single scheduler retry.
	tasks, wasted, elapsed := drive(s, &pending,
		func(_ int, out *taskSink[uint32], _ uint64, r uint32) bool {
			if find(r) != r {
				return true // component was absorbed; task is stale
			}
			locks[r].Lock()
			if find(r) != r {
				locks[r].Unlock()
				return true // absorbed while waiting for our own lock
			}
			for {
				if members[r].size == n {
					// The component spans the whole point set: the
					// spanning tree is complete. Short-circuiting avoids
					// widening every member's candidate row to saturation
					// just to discover that no external point exists.
					locks[r].Unlock()
					return false
				}
				best, bestW, found := minOut(r)
				if !found {
					locks[r].Unlock()
					return false
				}
				t := find(uint32(best.Idx))
				if t > r {
					locks[t].Lock()
					if find(uint32(best.Idx)) != t {
						// t was absorbed elsewhere in the meantime (global
						// progress); re-derive the target.
						locks[t].Unlock()
						continue
					}
				} else {
					// Re-acquire in increasing order. While r is unlocked
					// it may itself be absorbed (task turns stale) or may
					// absorb others (its minimum edge may change), so
					// everything is re-validated afterwards.
					locks[r].Unlock()
					locks[t].Lock()
					locks[r].Lock()
					if find(r) != r {
						locks[t].Unlock()
						locks[r].Unlock()
						return true
					}
					if find(uint32(best.Idx)) != t {
						locks[t].Unlock()
						continue
					}
					best2, bestW2, found2 := minOut(r)
					if !found2 || find(uint32(best2.Idx)) != t {
						// The minimum moved to another component while r
						// was unlocked; drop t and start over.
						locks[t].Unlock()
						continue
					}
					bestW = bestW2
				}
				// Contract: r absorbs t (both roots locked, as in
				// BoruvkaMST); the committed edge is cut-minimal for r's
				// component at commit time.
				parent[t].Store(r)
				members[r].meld(members[t])
				members[t] = nil
				totalWeight.Add(uint64(bestW))
				totalEdges.Add(1)
				locks[t].Unlock()
				mergedSize := uint64(members[r].size)
				locks[r].Unlock()
				out.Push(mergedSize, r)
				return false
			}
		})

	res := Result{
		Tasks:    knnRes.Tasks + tasks,
		Wasted:   knnRes.Wasted + wasted,
		Duration: knnRes.Duration + elapsed,
		Sched:    s.Stats(),
	}
	return totalWeight.Load(), int(totalEdges.Load()), res
}

// memberChain is a meldable list of component member point ids, the
// geometric counterpart of BoruvkaMST's edgeChain. Only head links keep
// size and tail current; melded-in heads go stale, which is fine
// because a chain is only ever entered through its component's head.
type memberChain struct {
	ids  []uint32
	next *memberChain
	tail *memberChain // last link (maintained on heads only)
	size int          // total ids across the chain
}

// meld appends other's chain to c in O(1) via the tail pointer.
func (c *memberChain) meld(other *memberChain) {
	if other == nil {
		return
	}
	c.tail.next = other
	c.tail = other.tail
	c.size += other.size
}
