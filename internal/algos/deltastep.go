package algos

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sched"
)

// SSSPDelta is delta-stepping-style SSSP: task priorities are bucketized
// distances (dist >> shift), matching the Galois SSSP implementation the
// paper benchmarks ("The Galois implementation of SSSP based on
// delta-stepping", §5). Coarser buckets (larger shift) admit more
// parallelism inside a bucket at the cost of extra wasted work — the same
// trade-off OBIM's Δ exposes, but expressed in the task priorities so any
// scheduler can run it.
//
// shift = 0 degenerates to plain SSSP priorities.
func SSSPDelta(g *graph.CSR, src uint32, shift uint, s sched.Scheduler[uint32]) ([]uint64, Result) {
	if shift > 63 {
		shift = 63
	}
	dist := make([]atomic.Uint64, g.N)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[src].Store(0)

	var pending sched.Pending
	pending.Inc(1)
	s.Worker(0).Push(0, src)

	tasks, wasted, elapsed := drive(s, &pending,
		func(_ int, out *taskSink[uint32], p uint64, u uint32) bool {
			du := dist[u].Load()
			if du == Unreachable || p > du>>shift {
				return true // stale: u was improved past this bucket
			}
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				nd := du + uint64(ws[i])
				if relaxMin(&dist[v], nd) {
					out.Push(nd>>shift, v)
				}
			}
			return false
		})

	out := make([]uint64, g.N)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return out, Result{Tasks: tasks, Wasted: wasted, Duration: elapsed, Sched: s.Stats()}
}
