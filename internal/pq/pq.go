// Package pq provides the sequential priority-queue building blocks used
// by every scheduler in this repository.
//
// Throughout the module, priorities are uint64 values where a LOWER value
// means a HIGHER priority (distance-like semantics, matching the SSSP/BFS/
// A* workloads of the paper). The paper's SMQ uses sequential d-ary heaps
// (d = 4) as thread-local queues (§4); the classic Multi-Queue wraps one
// sequential heap per lock-protected queue (§2.1, Listing 1).
package pq

import "math"

// InfPriority is the priority reported for empty queues: no real task may
// use it. It compares greater than (i.e. worse than) every valid priority.
const InfPriority = math.MaxUint64

// Item is a prioritized task: a priority paired with an opaque value.
type Item[T any] struct {
	P uint64 // priority; lower is better
	V T      // payload
}

// Queue is the minimal sequential priority-queue interface shared by the
// heap implementations in this package. Implementations are NOT safe for
// concurrent use; schedulers add their own synchronization.
type Queue[T any] interface {
	// Push inserts a task.
	Push(p uint64, v T)
	// Pop removes and returns the minimum-priority task.
	// ok is false when the queue is empty.
	Pop() (p uint64, v T, ok bool)
	// Top returns the minimum priority without removing it, or
	// InfPriority when empty.
	Top() uint64
	// Len reports the number of queued tasks.
	Len() int
}
