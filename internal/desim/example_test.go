package desim_test

import (
	"fmt"

	smq "repro"
	"repro/internal/desim"
)

// Example mirrors examples/desim: look a scheduler up by name through
// the public Spec API, simulate a small cluster with the causality
// window set to the scheduler's rank bound, and read the
// order-independent results. Every value printed here is deterministic
// by construction — model outcomes do not depend on the scheduler, the
// worker count, or execution interleaving — so the output is pinned.
func Example() {
	const workers = 4
	spec, _ := smq.LookupSpec[desim.Event]("coarse")
	bound, exact := spec.RankBound(workers)

	model, err := desim.NewCluster(desim.ClusterConfig{
		Stations:           8,
		ArrivalsPerStation: 250,
		Workers:            workers,
		Seed:               7,
	})
	if err != nil {
		panic(err)
	}
	stats, err := desim.Run(spec.Build(workers, 7), model, desim.Config{
		Workers:   workers,
		Lookahead: bound,
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("events=%d violations=%d bound=%d exact=%v\n",
		stats.Events, stats.Violations, bound, exact)
	t0 := model.PerTenant()[0]
	fmt.Printf("tenant 0: completed=%d p50=%d\n", t0.Completed, t0.P50)
	// Output:
	// events=4000 violations=0 bound=0 exact=true
	// tenant 0: completed=713 p50=28
}
