// Package spray implements the SprayList scheduler of Alistarh, Kopinsky,
// Li and Shavit [6], one of the relaxed priority queues the paper
// benchmarks against (§5).
//
// The SprayList is a single shared concurrent skip list whose deleteMin
// is replaced by a "spray": a random descent with bounded forward jumps
// that lands, with high probability, on one of the first O(p·polylog p)
// elements. All p threads share the one structure — there is no queue
// affinity — so the SprayList trades cache locality for a tight rank
// bound, which is exactly the trade-off the SMQ's evaluation explores.
package spray

import (
	"fmt"

	"repro/internal/contend"
	"repro/internal/cskiplist"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Config parameterizes the SprayList.
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// Params tunes the spray walk; the zero value derives the paper's
	// recommendation from Workers.
	Params cskiplist.SprayParams
	// Seed makes runs reproducible.
	Seed uint64
}

// Sched is the SprayList scheduler.
type Sched[T any] struct {
	cfg      Config
	list     *cskiplist.SkipList[T]
	workers  []contend.Padded[worker[T]]
	counters []sched.Counters
}

// worker embeds its RNG by value: the spray walk draws from it on every
// descent step, and separately heap-allocated generators of adjacent
// workers could share a cache line. The workers slice wraps each handle
// in contend.Padded so neighbours cannot share one either.
type worker[T any] struct {
	s   *Sched[T]
	rng xrand.Rand
	c   *sched.Counters
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive. New panics with exactly this error on an
// invalid configuration, so callers that must not panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("spray: Config.Workers = %d, must be positive", c.Workers)
	}
	return nil
}

// withDefaults returns a copy with the zero Seed and zero Params
// replaced by their documented defaults (seed 1, the paper's
// recommended spray parameters for Workers). Construction applies it
// after Validate.
func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	zero := cskiplist.SprayParams{}
	if c.Params == zero {
		c.Params = cskiplist.DefaultSprayParams(c.Workers)
	}
	return c
}

// New builds a SprayList scheduler.
func New[T any](cfg Config) *Sched[T] {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.withDefaults()
	s := &Sched[T]{
		cfg:      cfg,
		list:     cskiplist.New[T](cfg.Seed),
		workers:  make([]contend.Padded[worker[T]], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	for i := range s.workers {
		w := &s.workers[i].Value
		w.s = s
		w.rng.Seed(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		w.c = &s.counters[i]
	}
	return s
}

// Workers reports the number of worker slots.
func (s *Sched[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w.
func (s *Sched[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("spray: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w].Value
}

// Stats aggregates counters; call only after workers quiesce.
func (s *Sched[T]) Stats() sched.Stats { return sched.SumCounters(s.counters) }

// Len reports the approximate number of queued tasks.
func (s *Sched[T]) Len() int { return s.list.Len() }

// Push inserts into the shared skip list.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.s.list.Insert(p, v)
}

// PushN / PopN use the generic scalar fallbacks: the SprayList has no
// per-operation lock or sampling step to amortize — every insert and
// spray walks the one shared structure regardless of batching.
func (w *worker[T]) PushN(ps []uint64, vs []T) { sched.PushNLoop[T](w, ps, vs) }

func (w *worker[T]) PopN(dst []sched.Task[T]) int { return sched.PopNLoop[T](w, dst) }

// Pop sprays a near-minimal element from the shared skip list.
func (w *worker[T]) Pop() (uint64, T, bool) {
	p, v, ok := w.s.list.Spray(w.s.cfg.Params, &w.rng)
	if ok {
		w.c.Pops++
	} else {
		w.c.EmptyPops++
		p = pq.InfPriority
	}
	return p, v, ok
}
