package core

import (
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestInsertBatchVisibleToOwnPop(t *testing.T) {
	// Fewer buffered pushes than the batch size must still be poppable:
	// Pop flushes the insert buffer first.
	s := NewStealingMQ[int](Config{Workers: 1, InsertBatch: 64})
	w := s.Worker(0)
	w.Push(5, 50)
	w.Push(3, 30)
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		_, v, ok := w.Pop()
		if !ok {
			t.Fatalf("Pop %d failed with buffered inserts", i)
		}
		got[v] = true
	}
	if !got[30] || !got[50] {
		t.Fatalf("wrong values: %v", got)
	}
	if _, _, ok := w.Pop(); ok {
		t.Fatal("extra task appeared")
	}
}

func TestInsertBatchNoLostTasks(t *testing.T) {
	for _, mkName := range []string{"heap", "skiplist"} {
		mk := NewStealingMQ[int]
		if mkName == "skiplist" {
			mk = NewStealingMQSkipList[int]
		}
		s := mk(Config{Workers: 4, InsertBatch: 8, StealProb: 0.25})
		const perWorker = 4000
		total := 4 * perWorker
		var pending sched.Pending
		pending.Inc(int64(total))
		seen := make([]int32, total)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for wid := 0; wid < 4; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				for i := 0; i < perWorker; i++ {
					v := wid*perWorker + i
					w.Push(uint64(v%769), v)
				}
				var b sched.Backoff
				for !pending.Done() {
					_, v, ok := w.Pop()
					if !ok {
						b.Wait()
						continue
					}
					b.Reset()
					mu.Lock()
					seen[v]++
					mu.Unlock()
					pending.Dec()
				}
			}(wid)
		}
		wg.Wait()
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("%s: task %d seen %d times", mkName, v, c)
			}
		}
	}
}

func TestInsertBatchDefaultOff(t *testing.T) {
	c := Config{Workers: 1}
	c.normalize()
	if c.InsertBatch != 1 {
		t.Fatalf("InsertBatch default = %d, want 1 (off)", c.InsertBatch)
	}
}
