// Command benchcheck parses and schema-validates perf-trajectory JSON
// files (the BENCH_PR<n>.json artifacts written by `smqbench -json`).
//
// Usage:
//
//	benchcheck BENCH_PR5.json [more.json ...]
//
// `smqbench -json` already validates the report it is about to write;
// benchcheck closes the remaining gap by re-reading the bytes actually
// on disk, so CI fails if the serialized artifact stops parsing or
// drifts from the schema (including the committed trajectory history).
// Exit status is non-zero on the first invalid file.
package main

import (
	"fmt"
	"os"

	"repro/internal/perfbench"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <trajectory.json> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(path, err)
		}
		r, err := perfbench.Parse(data)
		if err != nil {
			fail(path, err)
		}
		if err := perfbench.Validate(r); err != nil {
			fail(path, err)
		}
		fmt.Printf("%s: ok (schema %d, %d bench results, %d serve runs)\n",
			path, r.SchemaVersion, len(r.Results), len(r.Serve))
	}
}

func fail(path string, err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
	os.Exit(1)
}
