// Command smqbench regenerates the paper's tables and figures, and
// records the repository's performance trajectory.
//
// Usage:
//
//	smqbench -list
//	smqbench -exp fig2 -scale 1 -threads 1,2,4 -reps 3
//	smqbench -exp emq -scale 1
//	smqbench -exp klsm -scale 1 -maxthreads 4
//	smqbench -exp geom -scale 2 -maxthreads 4 -format tsv
//	smqbench -exp all -format tsv > results.tsv
//	smqbench -json BENCH_PR4.json
//	smqbench -json - -benchworkers 2 -benchops 50000
//	smqbench -json - -serve -benchschedulers smq,coarse
//	smqbench -exp fig2 -cpuprofile fig2.prof -memprofile fig2.mprof
//
// The -json mode runs the contended uniform-priority microbenchmark of
// internal/perfbench over the whole scheduler lineup and writes a
// schema-versioned JSON report to the given path ("-" for stdout):
// scalar throughput, batched (PushN/PopN) throughput at -benchbatch
// tasks per operation, pop-latency percentiles (p50/p99/p99.9 from a
// log-bucketed histogram), lock failures, allocs/op and GC pause
// totals per scheduler. Committed as BENCH_PR<n>.json, these reports
// form the repo's recorded perf trajectory; internal/perfbench.Validate
// gates their schema in CI.
//
// -cpuprofile and -memprofile write pprof profiles covering the run
// (any mode), so hot-path claims in optimisation PRs can be verified
// with `go tool pprof` instead of taken on faith; the heap profile is
// written at exit after a final GC.
//
// Every experiment prints the same row/series structure as the paper
// artifact it reproduces (speedups and work increases per cell); see
// DESIGN.md §4 for the experiment ↔ artifact mapping and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons. The emq experiment covers
// the engineered MultiQueue follow-up baseline (Williams et al. 2021)
// with its stickiness × buffer-size grid; the klsm experiment sweeps
// the k-LSM's relaxation bound (Wimmer et al. 2015, k = 4..4096), the
// strongest non-Multi-Queue baseline of the paper's Figure 2 lineup,
// which both experiments' schedulers also join. The geom experiment runs the
// geometric workload family — parallel k-NN graph construction and
// exact Euclidean MST over generated point sets (uniform cube, Gaussian
// clusters) — across the full scheduler lineup, one TSV row per
// scheduler × distribution; Euclidean MST results are always verified
// against the sequential O(n^2) Prim baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/perfbench"
	"repro/internal/serve"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Int("scale", 1, "graph scale factor (1 = laptop-small)")
		threads  = flag.String("threads", "1,2,4", "comma-separated thread counts for comparison sweeps")
		maxTh    = flag.Int("maxthreads", 0, "thread count for ablation grids (default: last of -threads)")
		reps     = flag.Int("reps", 1, "repetitions per measurement (fastest kept)")
		validate = flag.Bool("validate", false, "verify every run against sequential baselines")
		format   = flag.String("format", "text", "output format: text or tsv")

		jsonOut   = flag.String("json", "", "write the perf-trajectory JSON report to this path ('-' for stdout) instead of running experiments")
		serveMode = flag.Bool("serve", false, "-json: record the open-loop serving trajectory (internal/serve) instead of the microbenchmark; cmd/smqserve exposes the full parameter set")
		benchWrk  = flag.Int("benchworkers", 0, "-json: worker goroutines (default GOMAXPROCS)")
		benchOps  = flag.Int("benchops", 0, "-json: pop+push pairs per worker (default 200000)")
		benchPre  = flag.Int("benchprefill", 0, "-json: prefilled tasks (default 4096)")
		benchSch  = flag.String("benchschedulers", "", "-json: comma-separated scheduler subset (default: full lineup)")
		benchReps = flag.Int("benchreps", 1, "-json: repetitions per scheduler (fastest kept)")
		benchBat  = flag.Int("benchbatch", 0, "-json: PushN/PopN batch size for the batched mode (default 8)")
		benchLat  = flag.Int("benchlatops", 0, "-json: individually timed pops per worker for the latency percentiles (default min(benchops, 50000))")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		benchSeed = flag.Uint64("benchseed", 1, "-json: RNG seed")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *jsonOut != "" {
		var schedulers []string
		for _, s := range strings.Split(*benchSch, ",") {
			if s = strings.TrimSpace(s); s != "" {
				schedulers = append(schedulers, s)
			}
		}
		if *serveMode {
			if err := runServeJSON(*jsonOut, schedulers, *benchSeed); err != nil {
				fatal(err)
			}
			return
		}
		if err := runJSON(*jsonOut, perfbench.Config{
			Workers:      *benchWrk,
			Prefill:      *benchPre,
			OpsPerWorker: *benchOps,
			Seed:         *benchSeed,
			Reps:         *benchReps,
			Schedulers:   schedulers,
			BatchSize:    *benchBat,
			LatencyOps:   *benchLat,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("Available experiments (smqbench -exp <id>):")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-8s %-40s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ths, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	cfg := harness.RunConfig{
		Scale:      *scale,
		Threads:    ths,
		MaxThreads: *maxTh,
		Reps:       *reps,
		Validate:   *validate,
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Paper)
		tables, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", e.ID, err))
		}
		if err := harness.WriteTables(os.Stdout, tables, *format); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "done %s in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runServeJSON records the serving trajectory at internal/serve's
// defaults — smqbench just offers the mode for symmetry with -json;
// cmd/smqserve is the full-parameter driver.
func runServeJSON(path string, schedulers []string, seed uint64) error {
	fmt.Fprintln(os.Stderr, "running open-loop serving trajectory...")
	start := time.Now()
	report, err := serve.RunBench(serve.BenchConfig{
		Schedulers:  schedulers,
		Seed:        seed,
		GeneratedBy: "smqbench -serve",
	})
	if err != nil {
		return err
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done %d schedulers in %v\n", len(report.Serve), time.Since(start).Round(time.Millisecond))
	return nil
}

// runJSON runs the perf-trajectory microbenchmark, validates the report
// against the schema, and writes it to path ("-" for stdout).
func runJSON(path string, cfg perfbench.Config) error {
	fmt.Fprintf(os.Stderr, "running perf-trajectory microbench (workers=%d)...\n", cfg.Workers)
	start := time.Now()
	report, err := perfbench.Run(cfg)
	if err != nil {
		return err
	}
	if err := perfbench.Validate(report); err != nil {
		return fmt.Errorf("generated report fails schema validation: %w", err)
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done %d schedulers in %v\n", len(report.Results), time.Since(start).Round(time.Millisecond))
	return nil
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smqbench:", err)
	os.Exit(1)
}
