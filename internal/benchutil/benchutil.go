// Package benchutil holds the shared scheduler micro-benchmark loop used
// by the per-scheduler *_test.go benchmark files. It is only imported
// from test files, so it never links into the library or tools.
package benchutil

import (
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/xrand"
)

// Throughput is the standard Multi-Queue-literature throughput loop: the
// scheduler is prefilled, then every worker runs pop→push pairs with
// random priority increments (a random-walk workload that keeps queue
// sizes stationary). It reports ns per pop+push pair.
func Throughput(b *testing.B, s sched.Scheduler[int], prefill int) {
	b.Helper()
	workers := s.Workers()
	for i := 0; i < prefill; i++ {
		s.Worker(i%workers).Push(uint64(i*2654435761%1_000_000), i)
	}
	per := b.N/workers + 1
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Worker(w)
			rng := xrand.New(uint64(w + 1))
			for i := 0; i < per; i++ {
				p, v, ok := h.Pop()
				if !ok {
					// Queue ran locally dry; reseed to keep the walk
					// going (counts as the push half of the pair).
					h.Push(uint64(rng.Intn(1_000_000)), i)
					continue
				}
				h.Push(p+uint64(rng.Intn(64)), v)
			}
		}(w)
	}
	wg.Wait()
}
