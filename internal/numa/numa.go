// Package numa implements the paper's NUMA-aware weighted queue sampling
// (§4, "NUMA-Awareness") over a virtual node topology.
//
// The paper assigns each of N NUMA nodes T_i threads and gives a thread's
// own-node queues weight 1 while all remote queues get weight 1/K, K > 1.
// Larger K keeps more traffic node-local at the cost of global fairness;
// the expected fraction of node-internal accesses is E_int ≈ T·(1 − 1/K)
// when K > N.
//
// Real NUMA hardware is not required (and not assumed): this package
// reproduces the sampling distribution and counts remote accesses, which
// is the algorithmically relevant part of the mechanism (see DESIGN.md
// §2, substitutions). Workers are striped over nodes in contiguous
// blocks, and each worker's C queues inherit its node, so every node owns
// a contiguous block of queue indices — which makes weighted sampling a
// constant-time operation.
package numa

import "repro/internal/xrand"

// Topology describes a virtual machine layout: Workers worker slots
// striped over Nodes virtual NUMA nodes, with QueuesPerWorker queues each
// (the Multi-Queue's C constant; 1 for the SMQ).
type Topology struct {
	Workers         int
	Nodes           int
	QueuesPerWorker int

	// nodeQueueLo[j], nodeQueueHi[j] bound node j's queue block.
	nodeQueueLo []int
	nodeQueueHi []int
}

// New validates and precomputes a topology. Nodes is clamped to
// [1, Workers] so every node has at least one worker.
func New(workers, nodes, queuesPerWorker int) Topology {
	if workers < 1 {
		panic("numa: need at least one worker")
	}
	if queuesPerWorker < 1 {
		panic("numa: need at least one queue per worker")
	}
	if nodes < 1 {
		nodes = 1
	}
	if nodes > workers {
		nodes = workers
	}
	t := Topology{Workers: workers, Nodes: nodes, QueuesPerWorker: queuesPerWorker}
	t.nodeQueueLo = make([]int, nodes)
	t.nodeQueueHi = make([]int, nodes)
	for j := 0; j < nodes; j++ {
		t.nodeQueueLo[j] = t.firstWorkerOfNode(j) * queuesPerWorker
		t.nodeQueueHi[j] = t.firstWorkerOfNode(j+1) * queuesPerWorker
	}
	return t
}

// firstWorkerOfNode returns the first worker index of node j (or Workers
// for j == Nodes). Workers are striped in contiguous, near-equal blocks;
// this is the ceiling inverse of NodeOfWorker: worker w is on node j iff
// floor(w·Nodes/Workers) == j, so node j starts at ceil(j·Workers/Nodes).
func (t Topology) firstWorkerOfNode(j int) int {
	return (j*t.Workers + t.Nodes - 1) / t.Nodes
}

// NumQueues reports the total queue count m = Workers · QueuesPerWorker.
func (t Topology) NumQueues() int { return t.Workers * t.QueuesPerWorker }

// NodeOfWorker maps worker w to its virtual node.
func (t Topology) NodeOfWorker(w int) int {
	return w * t.Nodes / t.Workers
}

// NodeOfQueue maps queue q to the node of its owning worker.
func (t Topology) NodeOfQueue(q int) int {
	return t.NodeOfWorker(q / t.QueuesPerWorker)
}

// QueueRangeOfNode returns the half-open queue index range owned by node j.
func (t Topology) QueueRangeOfNode(j int) (lo, hi int) {
	return t.nodeQueueLo[j], t.nodeQueueHi[j]
}

// Sampler draws queue indices for one worker under the weighted NUMA
// distribution. It is owned by a single goroutine.
type Sampler struct {
	m       int // total queues
	ownLo   int
	ownHi   int
	pOwn    float64 // probability of sampling an own-node queue
	uniform bool    // true when the distribution degenerates to uniform
	rng     *xrand.Rand

	// Remote counts samples that landed on another node.
	Remote uint64
	// Total counts all samples.
	Total uint64
}

// NewSampler builds the sampler for the given worker. K is the remote
// weight divisor (remote queues get weight 1/K); K <= 1 or a single node
// yields the uniform distribution of the non-NUMA-aware algorithms.
func NewSampler(t Topology, worker int, k float64, rng *xrand.Rand) *Sampler {
	m := t.NumQueues()
	s := &Sampler{m: m, rng: rng}
	if t.Nodes == 1 || k <= 1 {
		s.uniform = true
		// Still track remoteness for reporting when Nodes > 1.
		if t.Nodes > 1 {
			lo, hi := t.QueueRangeOfNode(t.NodeOfWorker(worker))
			s.ownLo, s.ownHi = lo, hi
		} else {
			s.ownLo, s.ownHi = 0, m
		}
		return s
	}
	node := t.NodeOfWorker(worker)
	lo, hi := t.QueueRangeOfNode(node)
	own := float64(hi - lo)
	remote := float64(m-(hi-lo)) / k
	s.ownLo, s.ownHi = lo, hi
	s.pOwn = own / (own + remote)
	return s
}

// Sample draws one queue index from the weighted distribution.
func (s *Sampler) Sample() int {
	s.Total++
	if s.uniform {
		q := s.rng.Intn(s.m)
		if q < s.ownLo || q >= s.ownHi {
			s.Remote++
		}
		return q
	}
	if s.rng.Float64() < s.pOwn {
		return s.ownLo + s.rng.Intn(s.ownHi-s.ownLo)
	}
	s.Remote++
	r := s.rng.Intn(s.m - (s.ownHi - s.ownLo))
	if r >= s.ownLo {
		r += s.ownHi - s.ownLo
	}
	return r
}

// SampleOther draws a queue index distinct from avoid. It requires m >= 2.
func (s *Sampler) SampleOther(avoid int) int {
	for {
		q := s.Sample()
		if q != avoid {
			return q
		}
	}
}

// DefaultK returns the paper's recommendation for the remote-weight
// divisor: K grows linearly with the worker count so that the internal-
// access ratio E_int ≈ T(1−1/K) stays controlled as threads scale (§4).
// The paper's default configuration uses K = 8.
func DefaultK(workers int) float64 {
	k := float64(workers) / 4
	if k < 8 {
		k = 8
	}
	return k
}
