// Command smqbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smqbench -list
//	smqbench -exp fig2 -scale 1 -threads 1,2,4 -reps 3
//	smqbench -exp emq -scale 1
//	smqbench -exp klsm -scale 1 -maxthreads 4
//	smqbench -exp geom -scale 2 -maxthreads 4 -format tsv
//	smqbench -exp all -format tsv > results.tsv
//
// Every experiment prints the same row/series structure as the paper
// artifact it reproduces (speedups and work increases per cell); see
// DESIGN.md §4 for the experiment ↔ artifact mapping and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons. The emq experiment covers
// the engineered MultiQueue follow-up baseline (Williams et al. 2021)
// with its stickiness × buffer-size grid; the klsm experiment sweeps
// the k-LSM's relaxation bound (Wimmer et al. 2015, k = 4..4096), the
// strongest non-Multi-Queue baseline of the paper's Figure 2 lineup,
// which both experiments' schedulers also join. The geom experiment runs the
// geometric workload family — parallel k-NN graph construction and
// exact Euclidean MST over generated point sets (uniform cube, Gaussian
// clusters) — across the full scheduler lineup, one TSV row per
// scheduler × distribution; Euclidean MST results are always verified
// against the sequential O(n^2) Prim baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Int("scale", 1, "graph scale factor (1 = laptop-small)")
		threads  = flag.String("threads", "1,2,4", "comma-separated thread counts for comparison sweeps")
		maxTh    = flag.Int("maxthreads", 0, "thread count for ablation grids (default: last of -threads)")
		reps     = flag.Int("reps", 1, "repetitions per measurement (fastest kept)")
		validate = flag.Bool("validate", false, "verify every run against sequential baselines")
		format   = flag.String("format", "text", "output format: text or tsv")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments (smqbench -exp <id>):")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-8s %-40s %s\n", e.ID, e.Paper, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ths, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	cfg := harness.RunConfig{
		Scale:      *scale,
		Threads:    ths,
		MaxThreads: *maxTh,
		Reps:       *reps,
		Validate:   *validate,
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Paper)
		tables, err := e.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", e.ID, err))
		}
		if err := harness.WriteTables(os.Stdout, tables, *format); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "done %s in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smqbench:", err)
	os.Exit(1)
}
