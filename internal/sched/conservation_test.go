package sched_test

// Count-conservation stress for the whole zoo, added with the lock-free
// tier: a concurrent mixed scalar/batch workload (Push, Pop, PushN,
// PopN interleaved per worker) followed by a Pending-driven drain must
// end with every pushed task popped exactly once —
// pushed == popped + remaining, and remaining == 0 after the drain.
// The scalar conformance suite already checks lost/duplicated tasks for
// scalar traffic; this suite mixes the batch fast paths into the same
// run (a batch reservation that leaks or double-publishes slots is
// invisible to scalar-only traffic) and adds an oversubscribed variant
// (more runnable threads than GOMAXPROCS) so threads get preempted
// inside publication windows — the progress-sensitive interleavings a
// spinlock scheduler never exhibits.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// conserveMixed runs the mixed workload over one scheduler and checks
// conservation. Each worker publishes perWorker tasks (alternating
// scalar pushes and PushN batches), pops opportunistically along the
// way (alternating Pop and PopN), then drains via Pending.
func conserveMixed(t *testing.T, s sched.Scheduler[uint32], workers, perWorker int) {
	t.Helper()
	total := workers * perWorker
	seen := make([]atomic.Int32, total)
	var pending sched.Pending
	pending.Inc(int64(total))
	var popped atomic.Int64

	record := func(t_ *testing.T, v uint32) {
		if int(v) >= total {
			t_.Errorf("implausible task id %d", v)
			return
		}
		if seen[v].Add(1) != 1 {
			t_.Errorf("task %d popped more than once", v)
		}
		popped.Add(1)
		pending.Dec()
	}

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			next := 0
			step := 0
			dst := make([]sched.Task[uint32], 7)
			ps := make([]uint64, 0, 5)
			vs := make([]uint32, 0, 5)
			var b sched.Backoff
			for {
				if next < perWorker {
					if step%2 == 0 {
						v := uint32(wid*perWorker + next)
						w.Push(uint64(v%509), v)
						next++
					} else {
						n := min(5, perWorker-next)
						ps, vs = ps[:0], vs[:0]
						for j := 0; j < n; j++ {
							v := uint32(wid*perWorker + next)
							ps = append(ps, uint64(v%509))
							vs = append(vs, v)
							next++
						}
						w.PushN(ps, vs)
					}
				}
				step++
				var got bool
				if step%2 == 0 {
					if n := w.PopN(dst); n > 0 {
						for _, it := range dst[:n] {
							record(t, it.V)
						}
						got = true
					}
				} else if _, v, ok := w.Pop(); ok {
					record(t, v)
					got = true
				}
				if got {
					b.Reset()
					continue
				}
				if next < perWorker {
					continue // still have our own tasks to publish
				}
				if pending.Done() {
					return
				}
				b.Wait()
			}
		}(wid)
	}
	wg.Wait()

	// remaining == 0 by Pending.Done; conservation is then
	// pushed == popped exactly.
	if got := popped.Load(); got != int64(total) {
		t.Fatalf("conservation: pushed %d, popped %d", total, got)
	}
	for v := range seen {
		if seen[v].Load() != 1 {
			t.Fatalf("task %d popped %d times", v, seen[v].Load())
		}
	}
	st := s.Stats()
	if st.Pushes != uint64(total) || st.Pops != uint64(total) {
		t.Fatalf("stats conservation: pushes=%d pops=%d, want %d each", st.Pushes, st.Pops, total)
	}
}

// TestConservationMixedBatch runs the mixed scalar+batch conservation
// workload over every zoo configuration.
func TestConservationMixedBatch(t *testing.T) {
	workers := 4
	perWorker := 3000
	if testing.Short() {
		perWorker = 400
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveMixed(t, tc.mk(workers), workers, perWorker)
		})
	}
}

// conserveHold runs the decremental "hold" pattern over one scheduler
// and checks conservation by totals: every worker seeds perWorker
// tasks, then repeatedly pops a minimum and re-inserts it just above
// the popped priority — the below-head re-insert every SSSP/A*-style
// relaxation generates, and the pattern the CBPQ elimination layer
// exists for. Re-pushed tasks are popped again, so conservation here is
// total pushes == total pops after a Pending-driven drain (the per-task
// exactly-once check lives in conserveMixed). A PopN/PushN round is
// mixed in so the batch paths see the same pattern.
func conserveHold(t *testing.T, s sched.Scheduler[uint32], workers, perWorker, rounds int) {
	t.Helper()
	var pushed, popped atomic.Int64
	var pending sched.Pending

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			for i := 0; i < perWorker; i++ {
				pending.Inc(1)
				pushed.Add(1)
				w.Push(uint64(1<<20+wid*perWorker+i), uint32(wid*perWorker+i))
			}
			dst := make([]sched.Task[uint32], 4)
			ps := make([]uint64, 0, 4)
			vs := make([]uint32, 0, 4)
			var b sched.Backoff
			for i := 0; i < rounds; i++ {
				if i%8 == 7 {
					n := w.PopN(dst)
					if n == 0 {
						b.Wait()
						continue
					}
					popped.Add(int64(n))
					for j := 0; j < n; j++ {
						pending.Dec()
					}
					ps, vs = ps[:0], vs[:0]
					for _, it := range dst[:n] {
						ps = append(ps, it.P+uint64(it.V%64))
						vs = append(vs, it.V)
					}
					pending.Inc(int64(n))
					pushed.Add(int64(n))
					w.PushN(ps, vs)
					b.Reset()
					continue
				}
				p, v, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				popped.Add(1)
				pending.Dec()
				pending.Inc(1)
				pushed.Add(1)
				w.Push(p+uint64(v%64), v)
				b.Reset()
			}
			// Drain: a failed Pop is not termination for relaxed
			// schedulers, so spin on Pending like the algorithms do.
			for {
				if _, _, ok := w.Pop(); ok {
					popped.Add(1)
					pending.Dec()
					b.Reset()
					continue
				}
				if pending.Done() {
					return
				}
				b.Wait()
			}
		}(wid)
	}
	wg.Wait()

	if pushed.Load() != popped.Load() {
		t.Fatalf("hold conservation: pushed %d, popped %d", pushed.Load(), popped.Load())
	}
	st := s.Stats()
	if st.Pushes != uint64(pushed.Load()) || st.Pops != uint64(popped.Load()) {
		t.Fatalf("stats conservation: pushes=%d pops=%d, want %d/%d",
			st.Pushes, st.Pops, pushed.Load(), popped.Load())
	}
}

// TestConservationHold runs the hold pattern over every zoo
// configuration at tier-1 sizes; the stress build soaks it (see
// stress_test.go).
func TestConservationHold(t *testing.T) {
	workers := 4
	perWorker, rounds := 500, 2000
	if testing.Short() {
		perWorker, rounds = 100, 400
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveHold(t, tc.mk(workers), workers, perWorker, rounds)
		})
	}
}

// TestConservationOversubscribed reruns the mixed workload with more
// worker goroutines than GOMAXPROCS, so workers are preempted inside
// critical windows (between a slot reservation and its publication, or
// while holding a spinlock). Progress bugs of that shape never surface
// when every worker owns a core.
func TestConservationOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	workers := 8
	perWorker := 800
	if testing.Short() {
		perWorker = 200
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveMixed(t, tc.mk(workers), workers, perWorker)
		})
	}
}
