// Command zoogate is the CI gate that keeps the scheduler zoo honest:
// ROADMAP.md requires every scheduler constructor to be exercised by
// the cross-scheduler conformance suite, and this tool enforces that
// mechanically instead of by convention.
//
// It parses the root package's source for exported New* functions that
// return a Scheduler, parses the rootConstructorsCovered list out of
// internal/sched/conformance_test.go, and fails (exit 1) on any
// mismatch in either direction:
//
//   - a root scheduler constructor missing from the coverage list means
//     a scheduler could land untested — the gate's reason to exist;
//   - a stale coverage entry with no matching root constructor means
//     the list has drifted from the API and would mask the first case.
//
// It applies the same two-sided diff to the internal/zoo Spec registry
// (the source of truth behind smq.Lineup and every by-name consumer):
// a root constructor with no registered Spec would be invisible to the
// harness, serving lineup, and simulator, and a Spec naming a
// constructor the root package no longer exports is registry drift.
//
// The in-package test TestZooGateCoverageConsistent closes the loop on
// the other side: every name in rootConstructorsCovered must be claimed
// by a conformance case's covers field, so the list cannot be padded
// without a real conformance entry behind it.
//
// Usage (from the repository root, as .github/workflows/ci.yml does):
//
//	go run ./cmd/zoogate
//	go run ./cmd/zoogate -root /path/to/repo
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/zoo"
)

// conformancePath is where the coverage list lives, relative to the
// repository root.
const conformancePath = "internal/sched/conformance_test.go"

// coverageListName is the variable in the conformance suite that names
// the root constructors it exercises.
const coverageListName = "rootConstructorsCovered"

func main() {
	root := flag.String("root", ".", "repository root (the directory holding the root Go package)")
	flag.Parse()

	constructors, err := schedulerConstructorsInDir(*root)
	if err != nil {
		fatal(err)
	}
	if len(constructors) == 0 {
		fatal(fmt.Errorf("no exported New* scheduler constructors found under %s — wrong -root?", *root))
	}
	covered, err := coveredConstructorsInFile(filepath.Join(*root, conformancePath))
	if err != nil {
		fatal(err)
	}

	missing, stale := diffCoverage(constructors, covered)
	unspecced, drifted := diffSpecs(constructors, zoo.Constructors())
	if len(missing) == 0 && len(stale) == 0 && len(unspecced) == 0 && len(drifted) == 0 {
		fmt.Printf("zoogate: OK — %d scheduler constructors, all in the conformance lineup (%s) and the zoo Spec registry\n",
			len(constructors), conformancePath)
		return
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr,
			"zoogate: %s is exported by the root package but missing from %s in %s — "+
				"add a conformance case covering it\n",
			name, coverageListName, conformancePath)
	}
	for _, name := range stale {
		fmt.Fprintf(os.Stderr,
			"zoogate: %s is listed in %s but the root package exports no such constructor — "+
				"remove the stale entry\n",
			name, coverageListName)
	}
	for _, name := range unspecced {
		fmt.Fprintf(os.Stderr,
			"zoogate: %s is exported by the root package but no internal/zoo Spec wraps it — "+
				"register a Spec so the constructor is reachable by name (smq.Lineup, harness, smqsim)\n",
			name)
	}
	for _, d := range drifted {
		fmt.Fprintf(os.Stderr,
			"zoogate: zoo Spec %q claims constructor %s, which the root package does not export — "+
				"fix the registry entry\n",
			d.spec, d.constructor)
	}
	os.Exit(1)
}

// specDrift names a registry entry whose claimed constructor no longer
// exists in the root package.
type specDrift struct{ spec, constructor string }

// diffSpecs compares the exported constructor set against the zoo Spec
// registry's constructor claims: unspecced constructors have no Spec
// wrapping them, drifted entries claim a constructor that is gone. A
// spec with an empty Constructor wraps an internal-only scheduler (the
// coarse strawman) and makes no claim either way.
func diffSpecs(constructors []string, specs map[string]string) (unspecced []string, drifted []specDrift) {
	exported := map[string]bool{}
	for _, c := range constructors {
		exported[c] = true
	}
	wrapped := map[string]bool{}
	for name, ctor := range specs {
		if ctor == "" {
			continue
		}
		wrapped[ctor] = true
		if !exported[ctor] {
			drifted = append(drifted, specDrift{spec: name, constructor: ctor})
		}
	}
	for _, c := range constructors {
		if !wrapped[c] {
			unspecced = append(unspecced, c)
		}
	}
	sort.Strings(unspecced)
	sort.Slice(drifted, func(i, j int) bool { return drifted[i].spec < drifted[j].spec })
	return unspecced, drifted
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zoogate:", err)
	os.Exit(1)
}

// schedulerConstructorsInDir parses every non-test .go file directly in
// dir (the root package) and returns the exported scheduler
// constructors, sorted.
func schedulerConstructorsInDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		names = append(names, schedulerConstructors(f)...)
	}
	sort.Strings(names)
	return names, nil
}

// schedulerConstructors extracts from one parsed file the exported
// top-level New* functions whose first result type mentions Scheduler —
// the shape of every scheduler constructor in the root package. Helpers
// returning graphs, point sets or results are ignored.
func schedulerConstructors(f *ast.File) []string {
	var out []string
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv != nil || !fd.Name.IsExported() {
			continue
		}
		if !strings.HasPrefix(fd.Name.Name, "New") {
			continue
		}
		if returnsScheduler(fd.Type) {
			out = append(out, fd.Name.Name)
		}
	}
	return out
}

// returnsScheduler reports whether the function's first result type
// references an identifier named Scheduler (covers Scheduler[T],
// sched.Scheduler[T] and plain Scheduler).
func returnsScheduler(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	found := false
	ast.Inspect(ft.Results.List[0].Type, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "Scheduler" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// coveredConstructorsInFile parses the conformance suite and returns the
// string entries of the rootConstructorsCovered list, sorted.
func coveredConstructorsInFile(path string) ([]string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return coveredConstructors(f)
}

// coveredConstructors extracts the coverage list from a parsed
// conformance file.
func coveredConstructors(f *ast.File) ([]string, error) {
	var lit *ast.CompositeLit
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range vs.Names {
			if name.Name != coverageListName || i >= len(vs.Values) {
				continue
			}
			if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
				lit = cl
				return false
			}
		}
		return true
	})
	if lit == nil {
		return nil, fmt.Errorf("no %s literal found in %s", coverageListName, f.Name.Name)
	}
	var out []string
	for _, elt := range lit.Elts {
		bl, ok := elt.(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			return nil, fmt.Errorf("%s has a non-string element %v", coverageListName, elt)
		}
		s, err := strconv.Unquote(bl.Value)
		if err != nil {
			return nil, fmt.Errorf("%s element %s: %w", coverageListName, bl.Value, err)
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// diffCoverage compares the exported constructor set against the
// coverage list, returning constructors missing from the list and stale
// list entries with no matching constructor.
func diffCoverage(constructors, covered []string) (missing, stale []string) {
	have := map[string]bool{}
	for _, c := range covered {
		have[c] = true
	}
	exported := map[string]bool{}
	for _, c := range constructors {
		exported[c] = true
		if !have[c] {
			missing = append(missing, c)
		}
	}
	for _, c := range covered {
		if !exported[c] {
			stale = append(stale, c)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	return missing, stale
}
