package perfbench

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBucketIndexMonotoneAndInvertible checks the two properties the
// percentile math rests on: bucket indices never decrease with the
// value, and bucketLow(i) is the smallest value mapping to bucket i.
func TestBucketIndexMonotoneAndInvertible(t *testing.T) {
	values := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1023, 1024,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)}
	prev := -1
	for _, v := range values {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		if low := bucketLow(i); low > v {
			t.Fatalf("bucketLow(%d) = %d exceeds member value %d", i, low, v)
		}
		prev = i
	}
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(bucketLow(i)); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", i, got)
		}
	}
}

// TestQuantileApproximatesExact feeds a known distribution and checks
// the histogram quantiles land within one sub-bucket (≈6% relative) of
// the exact order statistics.
func TestQuantileApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	var h Histogram
	samples := make([]uint64, n)
	for i := range samples {
		// Log-uniform over ~3 decades, like real pop latencies.
		v := uint64(50 * (1 + rng.ExpFloat64()*200))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	for _, q := range []float64{0.5, 0.99, 0.999} {
		exact := float64(samples[int(q*float64(n))-1])
		got := float64(h.Quantile(q))
		if got > exact || got < exact*(1-2.0/histSubBuckets) {
			t.Errorf("Quantile(%v) = %v, exact %v (allowed [%v, %v])",
				q, got, exact, exact*(1-2.0/histSubBuckets), exact)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
	h.Record(7)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 7", q, got)
		}
	}
	var a, b Histogram
	a.Record(10)
	b.Record(1000)
	a.Merge(&b)
	if a.count != 2 {
		t.Fatalf("merged count = %d, want 2", a.count)
	}
	if got := a.Quantile(1); got < 900 {
		t.Fatalf("merged max quantile = %d, want ~1000", got)
	}
}
