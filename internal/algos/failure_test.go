package algos

// Failure-injection tests (DESIGN.md §5): the algorithms must stay exact
// under adversarial scheduler behaviour — spurious Pop failures, forced
// goroutine interleaving, and maximally relaxed pop order — because the
// scheduler contract explicitly permits all three.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// flakySched wraps a scheduler and injects spurious Pop failures with
// probability failProb — exercising the termination protocol's tolerance
// for relaxed emptiness.
type flakySched struct {
	inner    sched.Scheduler[uint32]
	failProb float64
	workers  []flakyWorker
}

type flakyWorker struct {
	inner sched.Worker[uint32]
	s     *flakySched
	rng   *xrand.Rand
}

func newFlaky(inner sched.Scheduler[uint32], failProb float64) *flakySched {
	s := &flakySched{inner: inner, failProb: failProb}
	s.workers = make([]flakyWorker, inner.Workers())
	for i := range s.workers {
		s.workers[i] = flakyWorker{inner: inner.Worker(i), s: s, rng: xrand.New(uint64(i + 77))}
	}
	return s
}

func (s *flakySched) Workers() int { return s.inner.Workers() }
func (s *flakySched) Worker(w int) sched.Worker[uint32] {
	return &s.workers[w]
}
func (s *flakySched) Stats() sched.Stats { return s.inner.Stats() }

func (w *flakyWorker) Push(p uint64, v uint32) { w.inner.Push(p, v) }

func (w *flakyWorker) PushN(ps []uint64, vs []uint32) { w.inner.PushN(ps, vs) }

func (w *flakyWorker) Pop() (uint64, uint32, bool) {
	if w.rng.Bernoulli(w.s.failProb) {
		return pq.InfPriority, 0, false // spurious failure
	}
	return w.inner.Pop()
}

func (w *flakyWorker) PopN(dst []sched.Task[uint32]) int {
	if w.rng.Bernoulli(w.s.failProb) {
		return 0 // spurious batch-wide failure
	}
	return w.inner.PopN(dst)
}

// yieldSched forces a goroutine yield around every operation, shaking
// out interleavings the Go scheduler would rarely produce on few cores.
type yieldSched struct {
	inner   sched.Scheduler[uint32]
	workers []yieldWorker
}

type yieldWorker struct {
	inner sched.Worker[uint32]
}

func newYield(inner sched.Scheduler[uint32]) *yieldSched {
	s := &yieldSched{inner: inner}
	s.workers = make([]yieldWorker, inner.Workers())
	for i := range s.workers {
		s.workers[i] = yieldWorker{inner: inner.Worker(i)}
	}
	return s
}

func (s *yieldSched) Workers() int { return s.inner.Workers() }
func (s *yieldSched) Worker(w int) sched.Worker[uint32] {
	return &s.workers[w]
}
func (s *yieldSched) Stats() sched.Stats { return s.inner.Stats() }

func (w *yieldWorker) Push(p uint64, v uint32) {
	runtime.Gosched()
	w.inner.Push(p, v)
}

func (w *yieldWorker) PushN(ps []uint64, vs []uint32) {
	runtime.Gosched()
	w.inner.PushN(ps, vs)
}

func (w *yieldWorker) Pop() (uint64, uint32, bool) {
	runtime.Gosched()
	return w.inner.Pop()
}

func (w *yieldWorker) PopN(dst []sched.Task[uint32]) int {
	runtime.Gosched()
	return w.inner.PopN(dst)
}

// lifoSched is the adversarially relaxed scheduler: it ignores
// priorities entirely and serves tasks LIFO from a shared stack. Any
// algorithm that is correct only for near-priority-order pops would
// break here; ours must merely waste more work.
type lifoSched struct {
	mu      sync.Mutex
	stack   []pq.Item[uint32]
	workers int
}

func (s *lifoSched) Workers() int { return s.workers }
func (s *lifoSched) Worker(w int) sched.Worker[uint32] {
	return &lifoWorker{s: s}
}
func (s *lifoSched) Stats() sched.Stats { return sched.Stats{} }

type lifoWorker struct{ s *lifoSched }

func (w *lifoWorker) Push(p uint64, v uint32) {
	w.s.mu.Lock()
	w.s.stack = append(w.s.stack, pq.Item[uint32]{P: p, V: v})
	w.s.mu.Unlock()
}

func (w *lifoWorker) Pop() (uint64, uint32, bool) {
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	n := len(w.s.stack)
	if n == 0 {
		return pq.InfPriority, 0, false
	}
	it := w.s.stack[n-1]
	w.s.stack = w.s.stack[:n-1]
	return it.P, it.V, true
}

// The adversarial LIFO queue exercises the generic batch fallbacks.
func (w *lifoWorker) PushN(ps []uint64, vs []uint32) { sched.PushNLoop[uint32](w, ps, vs) }

func (w *lifoWorker) PopN(dst []sched.Task[uint32]) int { return sched.PopNLoop[uint32](w, dst) }

func TestSSSPWithSpuriousFailures(t *testing.T) {
	g := graph.GenerateRoadGrid(20, 20, 3)
	want, _ := DijkstraSeq(g, 0)
	for _, failProb := range []float64{0.2, 0.8} {
		inner := core.NewStealingMQ[uint32](core.Config{Workers: 4})
		got, _ := SSSP(g, 0, newFlaky(inner, failProb))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("failProb=%v: dist[%d] = %d, want %d", failProb, v, got[v], want[v])
			}
		}
	}
}

func TestMSTWithSpuriousFailures(t *testing.T) {
	g := graph.GenerateRoadGrid(12, 12, 5)
	wantW, wantE := KruskalMST(g)
	inner := core.NewStealingMQ[uint32](core.Config{Workers: 4})
	gotW, gotE, _ := BoruvkaMST(g, newFlaky(inner, 0.5))
	if gotW != wantW || gotE != wantE {
		t.Fatalf("MST = (%d,%d), want (%d,%d)", gotW, gotE, wantW, wantE)
	}
}

func TestSSSPWithForcedYields(t *testing.T) {
	g := graph.GenerateRoadGrid(16, 16, 7)
	want, _ := DijkstraSeq(g, 0)
	inner := core.NewStealingMQ[uint32](core.Config{Workers: 4, StealProb: 0.5})
	got, _ := SSSP(g, 0, newYield(inner))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestAlgorithmsUnderMaximallyRelaxedOrder(t *testing.T) {
	// LIFO order: correctness must hold; only wasted work may grow.
	g := graph.GenerateRoadGrid(14, 14, 9)
	want, seq := DijkstraSeq(g, 0)
	got, res := SSSP(g, 0, &lifoSched{workers: 2})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if res.Tasks < seq.Tasks {
		t.Fatalf("LIFO cannot do less work than the exact order: %d < %d", res.Tasks, seq.Tasks)
	}
	t.Logf("LIFO work increase: %.2fx", res.WorkIncrease(seq.Tasks))

	levels, _ := BFS(g, 0, &lifoSched{workers: 2})
	wantLvl := BFSSeq(g, 0)
	for v := range wantLvl {
		if levels[v] != wantLvl[v] {
			t.Fatalf("level[%d] = %d, want %d", v, levels[v], wantLvl[v])
		}
	}
}

func TestSSSPPropertyRandomGraphs(t *testing.T) {
	// Property: on arbitrary random graphs, parallel SSSP over the SMQ
	// equals Dijkstra.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		m := int(mRaw%300) + 1
		g := graph.GenerateUniformRandom(n, m, 100, seed)
		want, _ := DijkstraSeq(g, 0)
		s := core.NewStealingMQ[uint32](core.Config{Workers: 3, Seed: seed + 1})
		got, _ := SSSP(g, 0, s)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(11)),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMSTPropertyRandomGrids(t *testing.T) {
	// Property: Boruvka over the SMQ equals Kruskal on arbitrary grids.
	f := func(seed uint64, r, c uint8) bool {
		g := graph.GenerateRoadGrid(int(r%10)+2, int(c%10)+2, seed)
		wantW, wantE := KruskalMST(g)
		gotW, gotE, _ := BoruvkaMST(g, core.NewStealingMQ[uint32](core.Config{Workers: 3, Seed: seed + 1}))
		return gotW == wantW && gotE == wantE
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(13)),
	}); err != nil {
		t.Fatal(err)
	}
}
