package harness

import (
	"fmt"
	"time"

	"repro/internal/serve"
)

// planServe is the open-loop serving experiment: an offered-load ×
// scheduler grid through internal/serve, reporting delivered
// throughput, tail sojourn latency, backpressure and elastic-pool
// activity. It extends the paper's closed-loop run-to-completion
// evaluation with the serving shape the schedulers would face in a
// task-queue deployment: the queue drains between bursts, so the run
// exercises the quiescence termination protocol and worker parking
// rather than raw drain throughput.
func planServe(cfg RunConfig) (*Plan, error) {
	p := NewPlan("serve", cfg)
	schedulers := []string{"coarse", "mq", "emq", "smq", "klsm"}
	rates := []float64{25000, 100000, 400000}
	workers := p.Config.MaxThreads + 1 // +1: the ingest worker rides along
	if workers < 2 {
		workers = 2
	}
	tasksPerRate := 20000 * p.Config.Scale

	var refs []int
	for _, name := range schedulers {
		for _, rate := range rates {
			name, rate := name, rate
			refs = append(refs, p.AddCell(Cell{
				Kind:      "serve",
				Key:       fmt.Sprintf("serve/%s/rate=%.0f", name, rate),
				Scheduler: name,
				Params:    fmt.Sprintf("rate=%.0f", rate),
				Threads:   workers,
			}, func(c Cell) (CellResult, error) {
				rep, err := serve.RunBench(serve.BenchConfig{
					Schedulers:  []string{name},
					Rate:        rate,
					Tasks:       tasksPerRate,
					Tenants:     4,
					Skew:        0.99,
					Workers:     workers,
					Seed:        c.Seed,
					GeneratedBy: "harness serve",
				})
				if err != nil {
					return CellResult{}, err
				}
				sr := rep.Serve[0]
				t0 := sr.PerTenant[0]
				return CellResult{
					Tasks: uint64(sr.Completed),
					Values: map[string]float64{
						"served":     sr.ThroughputTasksPerSec,
						"completed":  float64(sr.Completed),
						"stalls":     float64(sr.Stalls),
						"parks":      float64(sr.Parks),
						"meanactive": sr.MeanActiveWorkers,
						"t0p50ns":    t0.P50Ns,
						"t0p99ns":    t0.P99Ns,
						"t0p999ns":   t0.P999Ns,
					},
				}, nil
			}))
		}
	}

	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		t := Table{
			Title: fmt.Sprintf("Open-loop serving — offered load × scheduler (%d workers incl. ingest, 4 tenants, Zipf 0.99, PolicyStall)",
				workers),
			Header: []string{"Scheduler", "Offered/s", "Served/s", "Completed", "Stalls", "Parks",
				"MeanActive", "t0 p50", "t0 p99", "t0 p99.9"},
		}
		i := 0
		for _, name := range schedulers {
			for _, rate := range rates {
				v := rs[refs[i]].Values
				i++
				t.AddRow(name, fmt.Sprintf("%.0f", rate),
					fmt.Sprintf("%.0f", v["served"]),
					fmt.Sprint(int64(v["completed"])), fmt.Sprint(int64(v["stalls"])), fmt.Sprint(int64(v["parks"])),
					fm(v["meanactive"]),
					durCell(v["t0p50ns"]), durCell(v["t0p99ns"]), durCell(v["t0p999ns"]))
			}
		}
		return []Table{t}, nil
	})
	return p, nil
}

func durCell(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
