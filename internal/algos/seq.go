package algos

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pq"
)

// SeqResult reports a sequential baseline's task count (heap pops,
// including stale lazy-deletion entries) so parallel runs can compute
// work increase against it.
type SeqResult struct {
	Tasks uint64
}

// DijkstraSeq is the sequential priority-queue baseline of the paper's
// Tables 2–3 ("sequential priority queue execution on a single thread"):
// Dijkstra with lazy deletion on a binary heap.
func DijkstraSeq(g *graph.CSR, src uint32) ([]uint64, SeqResult) {
	return dijkstraSeq(g, src, false)
}

// BFSSeqPQ runs the unit-weight variant through the same priority queue,
// matching how the paper's BFS benchmark drives schedulers.
func BFSSeqPQ(g *graph.CSR, src uint32) ([]uint64, SeqResult) {
	return dijkstraSeq(g, src, true)
}

func dijkstraSeq(g *graph.CSR, src uint32, unitWeights bool) ([]uint64, SeqResult) {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	h := pq.NewDHeapCap[uint32](2, 1024)
	h.Push(0, src)
	tasks := uint64(0)
	for {
		d, u, ok := h.Pop()
		if !ok {
			break
		}
		tasks++
		if d > dist[u] {
			continue // stale entry
		}
		ts, ws := g.Neighbors(u)
		for i, v := range ts {
			wt := uint64(ws[i])
			if unitWeights {
				wt = 1
			}
			if nd := d + wt; nd < dist[v] {
				dist[v] = nd
				h.Push(nd, v)
			}
		}
	}
	return dist, SeqResult{Tasks: tasks}
}

// BFSSeq computes exact hop levels with a plain FIFO queue — used by
// tests as ground truth for the parallel BFS.
func BFSSeq(g *graph.CSR, src uint32) []uint64 {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			if dist[v] == Unreachable {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AStarSeq is the sequential A* baseline, returning the src→target
// distance (Unreachable when no path exists).
func AStarSeq(g *graph.CSR, src, target uint32) (uint64, SeqResult) {
	dist := make([]uint64, g.N)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	h := pq.NewDHeapCap[uint32](2, 1024)
	h.Push(g.Heuristic(src, target), src)
	tasks := uint64(0)
	for {
		f, u, ok := h.Pop()
		if !ok {
			break
		}
		tasks++
		gu := dist[u]
		if f > gu+g.Heuristic(u, target) {
			continue
		}
		if u == target {
			return gu, SeqResult{Tasks: tasks}
		}
		ts, ws := g.Neighbors(u)
		for i, v := range ts {
			if nd := gu + uint64(ws[i]); nd < dist[v] {
				dist[v] = nd
				h.Push(nd+g.Heuristic(v, target), v)
			}
		}
	}
	return dist[target], SeqResult{Tasks: tasks}
}

// KruskalMST is the exact reference for BoruvkaMST: minimum spanning
// forest weight and edge count via sorted edges + union-find. Each
// undirected edge may appear in both directions; the second occurrence
// forms a cycle and is skipped, so no deduplication is needed.
func KruskalMST(g *graph.CSR) (uint64, int) {
	type edge struct {
		w    uint32
		u, v uint32
	}
	edges := make([]edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		ts, ws := g.Neighbors(uint32(u))
		for i, v := range ts {
			edges = append(edges, edge{w: ws[i], u: uint32(u), v: v})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]uint32, g.N)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	total := uint64(0)
	count := 0
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		total += uint64(e.w)
		count++
	}
	return total, count
}

// KNNGraphSeq is the sequential reference for KNNGraph: one kd-tree
// k-NN query per vertex. Both produce the same deterministic CSR
// (neighbors sorted by distance then index, geom.Weight edge weights),
// so parallel runs can be compared structurally, and Tasks = n gives
// the work-increase baseline.
func KNNGraphSeq(ps *geom.PointSet, k int) (*graph.CSR, SeqResult) {
	n := ps.N()
	if k > n-1 {
		k = n - 1
	}
	rows := make([][]geom.Neighbor, n)
	if n > 0 && k > 0 {
		tree := geom.NewKDTree(ps)
		var buf []geom.Neighbor
		for i := 0; i < n; i++ {
			buf = tree.KNN(ps.At(i), k, int32(i), buf)
			rows[i] = append([]geom.Neighbor(nil), buf...)
		}
	}
	return knnCSR(ps, rows), SeqResult{Tasks: uint64(n)}
}

// PrimEMSTSeq is the exact sequential baseline for EuclideanMST: O(n^2)
// Prim over the implicit complete graph with geom.Weight-quantized edge
// weights, returning total weight and edge count (n-1 for n >= 1).
// Because every minimum spanning tree of a weighted graph has the same
// total weight, the parallel EMST must match both values exactly.
func PrimEMSTSeq(ps *geom.PointSet) (uint64, int) {
	n := ps.N()
	if n <= 1 {
		return 0, 0
	}
	const unvisited = uint32(math.MaxUint32)
	bestW := make([]uint32, n)
	inTree := make([]bool, n)
	for i := range bestW {
		bestW[i] = unvisited
	}
	inTree[0] = true
	for j := 1; j < n; j++ {
		bestW[j] = geom.Weight(ps.Dist2(0, j))
	}
	total := uint64(0)
	for added := 1; added < n; added++ {
		next, nextW := -1, unvisited
		for j := 0; j < n; j++ {
			if !inTree[j] && bestW[j] < nextW {
				next, nextW = j, bestW[j]
			}
		}
		if next < 0 {
			// unvisited is MaxUint32, which geom.Weight can legitimately
			// produce for saturating distances; fall back to the first
			// out-of-tree vertex so such edges still get added.
			for j := 0; j < n; j++ {
				if !inTree[j] {
					next, nextW = j, bestW[j]
					break
				}
			}
		}
		inTree[next] = true
		total += uint64(nextW)
		for j := 0; j < n; j++ {
			if !inTree[j] {
				if w := geom.Weight(ps.Dist2(next, j)); w < bestW[j] {
					bestW[j] = w
				}
			}
		}
	}
	return total, n - 1
}

// PageRankSeq runs the same residual-push PageRank sequentially with a
// FIFO worklist — the deterministic reference for ResidualPageRank.
func PageRankSeq(g *graph.CSR, cfg PageRankConfig) []float64 {
	cfg.normalize()
	n := g.N
	rank := make([]float64, n)
	resid := make([]float64, n)
	queued := make([]bool, n)
	queue := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		resid[i] = 1 - cfg.Damping
		queued[i] = true
		queue = append(queue, uint32(i))
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		queued[u] = false
		r := resid[u]
		resid[u] = 0
		if r < cfg.Epsilon {
			continue
		}
		rank[u] += r
		deg := g.OutDegree(u)
		if deg == 0 {
			continue
		}
		share := cfg.Damping * r / float64(deg)
		ts, _ := g.Neighbors(u)
		for _, v := range ts {
			resid[v] += share
			if resid[v] >= cfg.Epsilon && !queued[v] {
				queued[v] = true
				queue = append(queue, v)
			}
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rank[i] + resid[i]
	}
	return out
}

// L1Diff returns the L1 distance between two vectors, for PageRank
// verification.
func L1Diff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	total := 0.0
	for i := range a {
		total += math.Abs(a[i] - b[i])
	}
	return total
}
