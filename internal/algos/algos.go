// Package algos implements the paper's benchmark workloads (§5) as
// scheduler-driven parallel algorithms — SSSP, BFS, A*, Boruvka MST — and
// a residual PageRank extension, plus the sequential baselines used for
// speedup and wasted-work accounting.
//
// All parallel algorithms follow the same shape: tasks carry a priority
// (lower = sooner) and a vertex payload; workers loop popping tasks from
// a relaxed scheduler, perform the algorithm step, and push follow-on
// tasks. Because the schedulers are relaxed, a popped task may be stale —
// superseded by a better value written concurrently. Stale pops are
// counted as wasted work, which is exactly the metric the paper uses to
// explain scheduler quality differences ("work increase").
//
// Termination uses a global in-flight counter (sched.Pending): a Pop
// failure is never treated as completion on its own, because tasks may be
// buried in other workers' local buffers.
package algos

import (
	"sync"
	"time"

	"repro/internal/sched"
)

// Result captures a parallel run's cost accounting.
type Result struct {
	// Tasks is the number of tasks processed (useful + wasted).
	Tasks uint64
	// Wasted is the number of stale tasks (popped but superseded).
	Wasted uint64
	// Duration is the wall-clock time of the parallel phase.
	Duration time.Duration
	// Sched holds the scheduler's own counters for the run.
	Sched sched.Stats
}

// WorkIncrease is the paper's wasted-work metric: tasks executed divided
// by the baseline task count (typically the sequential algorithm's).
func (r Result) WorkIncrease(baselineTasks uint64) float64 {
	if baselineTasks == 0 {
		return 0
	}
	return float64(r.Tasks) / float64(baselineTasks)
}

// workerTally holds per-worker task counts, padded against false sharing.
type workerTally struct {
	tasks  uint64
	wasted uint64
	_      [48]byte
}

// drive runs one goroutine per scheduler worker. Each pops tasks and
// invokes process until pending reaches zero; process performs the
// algorithm step and reports whether the task was stale. All pushes made
// inside process must increment pending first; drive decrements once per
// processed task.
func drive[T any](
	s sched.Scheduler[T],
	pending *sched.Pending,
	process func(wid int, w sched.Worker[T], p uint64, v T) (stale bool),
) (tasks, wasted uint64, elapsed time.Duration) {
	n := s.Workers()
	tallies := make([]workerTally, n)
	start := time.Now()
	var wg sync.WaitGroup
	for wid := 0; wid < n; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			tally := &tallies[wid]
			var b sched.Backoff
			for {
				p, v, ok := w.Pop()
				if !ok {
					if pending.Done() {
						return
					}
					b.Wait()
					continue
				}
				b.Reset()
				tally.tasks++
				if process(wid, w, p, v) {
					tally.wasted++
				}
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for i := range tallies {
		tasks += tallies[i].tasks
		wasted += tallies[i].wasted
	}
	return tasks, wasted, elapsed
}
