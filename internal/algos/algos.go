// Package algos implements the paper's benchmark workloads (§5) as
// scheduler-driven parallel algorithms — SSSP, BFS, A*, Boruvka MST — and
// a residual PageRank extension, plus the sequential baselines used for
// speedup and wasted-work accounting.
//
// All parallel algorithms follow the same shape: tasks carry a priority
// (lower = sooner) and a vertex payload; workers loop popping tasks from
// a relaxed scheduler, perform the algorithm step, and push follow-on
// tasks. Because the schedulers are relaxed, a popped task may be stale —
// superseded by a better value written concurrently. Stale pops are
// counted as wasted work, which is exactly the metric the paper uses to
// explain scheduler quality differences ("work increase").
//
// Termination uses a global in-flight counter (sched.Pending): a Pop
// failure is never treated as completion on its own, because tasks may be
// buried in other workers' local buffers.
package algos

import (
	"sync"
	"time"

	"repro/internal/contend"
	"repro/internal/sched"
)

// Result captures a parallel run's cost accounting.
type Result struct {
	// Tasks is the number of tasks processed (useful + wasted).
	Tasks uint64
	// Wasted is the number of stale tasks (popped but superseded).
	Wasted uint64
	// Duration is the wall-clock time of the parallel phase.
	Duration time.Duration
	// Sched holds the scheduler's own counters for the run.
	Sched sched.Stats
}

// WorkIncrease is the paper's wasted-work metric: tasks executed divided
// by the baseline task count (typically the sequential algorithm's).
func (r Result) WorkIncrease(baselineTasks uint64) float64 {
	if baselineTasks == 0 {
		return 0
	}
	return float64(r.Tasks) / float64(baselineTasks)
}

// tally is one worker's task counts. drive keeps them in a slice of
// contend.Padded elements so adjacent workers' increments never share a
// cache line; the padding is derived from contend.CacheLineSize instead
// of a hand-coded byte count, which silently under-padded the moment
// the counter block changed size (layout pinned in layout_test.go).
type tally struct {
	tasks  uint64
	wasted uint64
}

// workerTally is the padded per-worker element type.
type workerTally = contend.Padded[tally]

// driveBatch is the driver's pop-batch capacity: how many tasks a
// worker takes from the scheduler per PopN and how many expansions'
// follow-on pushes it coalesces into one PushN. The setting is a rank
// trade, not just a throughput knob: a popped batch commits the worker
// to its tasks before it looks at the queues again, and for the
// Multi-Queue family the whole batch comes from ONE two-choice winner,
// so large batches inflate wasted work on rank-sensitive workloads
// (road-graph SSSP through the classic MQ runs ~30% more tasks at 64
// than at 8). 8 matches the scale of the schedulers' own relaxation
// units (steal size 4, operation buffers 8..16), keeping measured work
// increase within a few percent of the scalar driver while still
// amortizing the fixed costs 8-fold.
const driveBatch = 8

// taskSink collects the follow-on tasks one batch of expansions
// produces, as parallel priority/value runs ready for a single PushN.
// It is the only way process callbacks push work: the driver owns the
// Pending accounting (delta-batched — see sched.Pending), so workloads
// just emit.
type taskSink[T any] struct {
	ps []uint64
	vs []T
}

// Push buffers one follow-on task. The driver publishes the whole
// batch (and registers it with Pending) after the current batch of
// popped tasks has been processed; relaxed schedulers may delay
// visibility anyway, so algorithms must already tolerate the window.
func (o *taskSink[T]) Push(p uint64, v T) {
	o.ps = append(o.ps, p)
	o.vs = append(o.vs, v)
}

// reset clears the sink for the next batch, zeroing the value run so
// pointerful payloads are not retained across batches.
func (o *taskSink[T]) reset() {
	o.ps = o.ps[:0]
	clear(o.vs)
	o.vs = o.vs[:0]
}

// drive runs one goroutine per scheduler worker. Each worker pops up
// to driveBatch tasks per PopN, invokes process for each, coalesces
// every follow-on task the batch emitted into one PushN, and folds the
// whole batch's Pending accounting into a single atomic add (+emitted
// −processed, issued before the PushN so the counter can never dip to
// zero while buffered work exists). process performs the algorithm
// step, emits follow-on tasks through the sink, and reports whether the
// popped task was stale.
//
// drive is the run-to-completion shape of the worker loop: the caller
// registers every seed task before calling, so drive closes the pending
// stream on entry and workers exit on Quiesced() — drained and closed.
// The open-loop counterpart, where ingestion keeps the stream open and
// workers park instead of exiting, is internal/serve.
func drive[T any](
	s sched.Scheduler[T],
	pending *sched.Pending,
	process func(wid int, out *taskSink[T], p uint64, v T) (stale bool),
) (tasks, wasted uint64, elapsed time.Duration) {
	// All external tasks (the seeds) are registered; from here on only
	// workers create tasks, as follow-ons. Quiesced() is now stable.
	pending.Close()
	n := s.Workers()
	tallies := make([]workerTally, n)
	start := time.Now()
	var wg sync.WaitGroup
	for wid := 0; wid < n; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			tally := &tallies[wid].Value
			popBuf := make([]sched.Task[T], driveBatch)
			var out taskSink[T]
			var b sched.Backoff
			for {
				k := w.PopN(popBuf)
				if k == 0 {
					if pending.Quiesced() {
						return
					}
					b.Wait()
					continue
				}
				b.Reset()
				tally.tasks += uint64(k)
				for i := 0; i < k; i++ {
					if process(wid, &out, popBuf[i].P, popBuf[i].V) {
						tally.wasted++
					}
				}
				clear(popBuf[:k])
				if delta := int64(len(out.ps)) - int64(k); delta != 0 {
					pending.Inc(delta)
				}
				if len(out.ps) > 0 {
					w.PushN(out.ps, out.vs)
					out.reset()
				}
			}
		}(wid)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for i := range tallies {
		tasks += tallies[i].Value.tasks
		wasted += tallies[i].Value.wasted
	}
	return tasks, wasted, elapsed
}
