// Package cbpq implements a CAS-based chunked priority queue in the
// style of Braginsky, Cohen and Petrank ("CBPQ: High Performance
// Lock-Free Priority Queue", Euro-Par 2016): the queue is a short
// sequence of fixed-capacity chunks partitioned by priority range, the
// first chunk is sorted and consumed by a fetch-and-add on its delete
// index (no lock and no CAS retry loop on the hot pop path), inserts
// CAS-publish into the interior chunk owning their range, and a full or
// contended chunk is frozen and split/rebuilt rather than mutated in
// place.
//
// Unlike every other scheduler in the zoo, no operation ever takes a
// lock (the Stats().LockFails counter reports CAS failures instead).
// CBPQ is also exact — Pop returns the minimum of all linearized
// entries — which makes it the zoo's lock-free rank-bound-0 baseline:
// the rank regression asserts zero displacement, and desim drives it at
// lookahead 0 expecting zero causality violations.
//
// # Structure
//
// All shared state hangs off a single atomic root pointer to an
// immutable spine:
//
//		spine{ head, buf, live[] }
//
//	  - head is the sorted first chunk. Pop is one fetch-and-add on
//	    head.idx, and the returned index IS the claim — there is no
//	    per-slot state. A rebuild freezes the head through the same
//	    word (one Or setting a high freeze bit), so the count the Or
//	    observes is a clean cut: every smaller index was handed to a
//	    popper before the freeze and is an already-linearized pop,
//	    while no index at or above the cut can ever be claimed because
//	    later fetch-and-adds return the freeze bit. The survivor set
//	    items[cut:n] is therefore exact — a pop can never return slot i
//	    while a smaller unclaimed slot stays in the queue.
//	  - live[] are the interior chunks, ascending by their range lower
//	    bound min; an insert with priority p targets the last chunk with
//	    min <= p and CAS-bumps its count word, then release-publishes the
//	    slot's ready flag.
//	  - buf is the insertion buffer for priorities below live[0].min
//	    (i.e. inside the head's own range). The head is immutable, so
//	    such inserts append to buf and then drive a rebuild; the entry
//	    only linearizes when a rebuild merges buf into a new sorted head,
//	    and Push returns only after observing that merge. This is how
//	    exactness survives concurrent small-priority inserts.
//
// # Freeze / split / rebuild
//
// Structural changes never mutate a published chunk's membership; they
// freeze it with one atomic Or — on the ctl word of a live chunk or
// buf (then wait out in-flight publication windows), on the idx word
// of the head (the observed count is the claim cut, published for
// helpers) — build replacement chunks privately, and CAS the root to a
// new spine. The CAS is the single linearization
// point; losers recycle their never-published candidate chunks into a
// per-worker freelist (published chunks are never pooled, so the root
// CAS cannot ABA) and retry against the new spine. A full interior
// chunk splits into two halves around its median; a rebuild replaces
// the head with one freshly sorted from its frozen survivors plus the
// frozen buf, pulling in whole interior chunks until the new head is
// full. Any thread can help: after a
// complete freeze the frozen membership is identical for all helpers,
// so all candidates are equivalent and whichever CAS wins is correct.
//
// # Lock-free batches
//
// PopN claims a run of n consecutive sorted slots with one
// fetch-and-add on head.idx. PushN sorts the batch once into a
// per-worker scratch and publishes each same-chunk run with a single
// count-word CAS on the owning chunk — one CAS per touched chunk, not
// per element. This is the chunk-granular answer to "what does PushN
// mean without a lock": the reservation is the atomic, the copy is
// plain stores, and the ready flags make the slots visible.
//
// # Progress and allocation
//
// Every CAS failure implies another operation succeeded, so pushes,
// pops and structural changes are lock-free; the only unbounded waits
// are publication windows — between a count reservation and its ready
// flag, and between the winning head-freeze Or and its cut store —
// which a frozen-chunk reader spins out with Gosched (bounded by the
// publishing thread being scheduled, as in the original CBPQ's
// frozenness wait). Steady-state allocation is amortized O(1/ChunkCap)
// chunks per operation: rebuilds allocate a handful of chunks per
// ChunkCap pops, CAS losers recycle through the per-worker freelist,
// and popped or recycled slots are zeroed so the queue retains no
// payload memory (see the retention test).
package cbpq

import (
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/pq"
	"repro/internal/sched"
)

// DefaultChunkCap is the chunk capacity used when Config.ChunkCap is 0.
// 64 keeps a chunk's items inside a few cache lines while amortizing a
// rebuild over 64 pops.
const DefaultChunkCap = 64

// maxFreeChunks bounds the per-worker freelist of recycled candidate
// chunks (CAS losers); beyond this they are dropped for the GC.
const maxFreeChunks = 8

// Live-chunk slot flags: a reserved slot moves free → ready when its
// item has been published. Head chunks carry no per-slot state at all —
// the pop fetch-and-add is the claim, and freezing goes through the idx
// word (see freezeHead).
const (
	slotFree  uint32 = 0
	slotReady uint32 = 1
)

// headFrozen is the freeze bit of a head chunk's idx word: once a
// rebuild ORs it in, every later fetch-and-add returns it and claims
// nothing. cutValid marks the head's cut word as published by the
// freezer that won the Or.
const (
	headFrozen = uint64(1) << 63
	cutValid   = uint64(1) << 63
)

// ctl packs a live chunk's state into one word: the freeze bit on top
// of the published-reservation count.
const (
	ctlFreeze = uint64(1) << 63
	ctlCount  = ctlFreeze - 1
)

// Config parameterizes a CBPQ.
type Config struct {
	// Workers is the number of worker handles (required, >= 1).
	Workers int
	// ChunkCap is the fixed chunk capacity. 0 means DefaultChunkCap;
	// otherwise it must be in [4, 65536].
	ChunkCap int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("cbpq: Workers must be >= 1, got %d", c.Workers)
	}
	if c.ChunkCap != 0 && (c.ChunkCap < 4 || c.ChunkCap > 1<<16) {
		return fmt.Errorf("cbpq: ChunkCap must be 0 (default) or in [4, 65536], got %d", c.ChunkCap)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.ChunkCap == 0 {
		c.ChunkCap = DefaultChunkCap
	}
	return c
}

// chunk is a fixed-capacity run of items. A head chunk uses the sorted
// prefix items[:n] and idx as the pop fetch-and-add cursor doubling as
// the freeze word (high bit), with cut holding the frozen claim cut
// once published. A live chunk uses ctl as its freeze|count word and
// flags as per-slot publication (ready) bits; min is the inclusive
// lower bound of its priority range.
type chunk[T any] struct {
	min uint64
	n   int

	idx atomic.Uint64
	cut atomic.Uint64
	_   [contend.CacheLineSize - 16]byte
	ctl atomic.Uint64
	_   [contend.CacheLineSize - 8]byte

	items []pq.Item[T]
	flags []atomic.Uint32
}

// spine is the immutable root snapshot: the sorted head, the head-range
// insertion buffer, and the interior chunks ascending by min. Every
// structural change installs a fresh spine with one CAS.
type spine[T any] struct {
	head *chunk[T]
	buf  *chunk[T]
	live []*chunk[T]
}

// targetIdx returns the index in live of the chunk owning priority p
// (the last chunk with min <= p), or -1 when p belongs to the head
// range and must go through buf.
func (s *spine[T]) targetIdx(p uint64) int {
	live := s.live
	if len(live) == 0 || p < live[0].min {
		return -1
	}
	lo, hi := 0, len(live)
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].min <= p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Queue is a lock-free chunked priority queue. Create with New, then
// hand each goroutine its own Worker.
type Queue[T any] struct {
	cfg  Config
	root atomic.Pointer[spine[T]]
	_    [contend.CacheLineSize]byte

	workers  []worker[T]
	counters []sched.Counters
}

type worker[T any] struct {
	q *Queue[T]
	c *sched.Counters

	// batch holds PushN's sorted copy; merge is the rebuild/split
	// scratch (distinct because PushN drives rebuilds mid-batch).
	batch []pq.Item[T]
	merge []pq.Item[T]

	// built tracks the candidate chunks of the current structural
	// attempt; free pools recycled CAS losers.
	built []*chunk[T]
	free  []*chunk[T]

	_ [contend.CacheLineSize]byte
}

// New builds a CBPQ. It panics if cfg is invalid (see Config.Validate).
func New[T any](cfg Config) *Queue[T] {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.withDefaults()
	q := &Queue[T]{
		cfg:      cfg,
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	for i := range q.workers {
		q.workers[i] = worker[T]{q: q, c: &q.counters[i]}
	}
	w := &q.workers[0]
	q.root.Store(&spine[T]{head: w.getChunk(), buf: w.getChunk()})
	w.commitBuilt()
	return q
}

// Workers returns the number of worker handles.
func (q *Queue[T]) Workers() int { return q.cfg.Workers }

// Worker returns the handle for worker w. Each handle must be used by
// at most one goroutine at a time.
func (q *Queue[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= q.cfg.Workers {
		panic(fmt.Sprintf("cbpq: worker index %d out of range [0,%d)", w, q.cfg.Workers))
	}
	return &q.workers[w]
}

// Stats aggregates the per-worker counters. LockFails counts CAS
// failures (there are no locks to fail).
func (q *Queue[T]) Stats() sched.Stats { return sched.SumCounters(q.counters) }

// Push inserts one task.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.push1(p, v)
}

func (w *worker[T]) push1(p uint64, v T) {
	q := w.q
	for {
		s := q.root.Load()
		if k := s.targetIdx(p); k >= 0 {
			c := s.live[k]
			if c.tryAppend(w, p, v) {
				return
			}
			q.split(w, s, k)
			continue
		}
		b := s.buf
		if b.tryAppend(w, p, v) {
			// The entry linearizes when a rebuild merges b into a
			// sorted head; drive rebuilds until one does.
			for {
				cur := q.root.Load()
				if cur.buf != b {
					return
				}
				q.rebuild(w, cur)
			}
		}
		q.rebuild(w, s)
	}
}

// Pop removes and returns a minimum-priority task, or ok=false when the
// queue is empty. The hot path is one fetch-and-add — the returned
// index is the claim, with no per-slot CAS: an index handed out before
// the head's freeze is owned unconditionally, and one handed out after
// carries the freeze bit and claims nothing (see freezeHead).
func (w *worker[T]) Pop() (uint64, T, bool) {
	q := w.q
	var zero T
	for {
		s := q.root.Load()
		h := s.head
		v := h.idx.Load()
		if v&headFrozen == 0 && v < uint64(h.n) {
			i := h.idx.Add(1) - 1
			if i&headFrozen != 0 {
				// The head was frozen between the load and the claim;
				// help the rebuild and retry against the new spine.
				w.c.LockFails++
				q.rebuild(w, s)
				continue
			}
			if i < uint64(h.n) {
				it := h.items[i]
				h.items[i].V = zero
				w.c.Pops++
				return it.P, it.V, true
			}
			v = i // drained, and observed unfrozen
		}
		// Report empty only from a consistent snapshot: the head was
		// observed drained with the freeze bit clear (so every head
		// item belongs to a pop that linearized before now), and
		// buf.ctl == 0 rules out both pending buf entries and an
		// in-flight rebuild of s (a rebuild freezes buf — making ctl
		// nonzero forever — before it touches the head or the root),
		// so s was still the published spine and s.live authoritative
		// at the moment of that load, which is the linearization point.
		if v&headFrozen == 0 && s.buf.ctl.Load() == 0 && len(s.live) == 0 {
			w.c.EmptyPops++
			return 0, zero, false
		}
		q.rebuild(w, s)
	}
}

// PushN inserts a batch (see sched.Worker). The batch is sorted once;
// each run of entries owned by the same chunk is published with a
// single count-word CAS (or lands in buf and is merged by one rebuild).
func (w *worker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	q := w.q
	batch := w.batch[:0]
	for i, p := range ps {
		batch = append(batch, pq.Item[T]{P: p, V: vs[i]})
	}
	slices.SortFunc(batch, itemCmp)
	w.batch = batch

	var lastBuf *chunk[T]
	i := 0
	for i < len(batch) {
		s := q.root.Load()
		p := batch[i].P
		if k := s.targetIdx(p); k >= 0 {
			c := s.live[k]
			hi := uint64(1<<64 - 1)
			if k+1 < len(s.live) {
				hi = s.live[k+1].min
			}
			j := i + 1
			for j < len(batch) && batch[j].P < hi {
				j++
			}
			if n := c.tryAppendRun(w, batch[i:j]); n > 0 {
				i += n
				continue
			}
			q.split(w, s, k)
			continue
		}
		hi := uint64(1<<64 - 1)
		if len(s.live) > 0 {
			hi = s.live[0].min
		}
		j := i + 1
		for j < len(batch) && batch[j].P < hi {
			j++
		}
		if n := s.buf.tryAppendRun(w, batch[i:j]); n > 0 {
			lastBuf = s.buf
			i += n
			continue
		}
		q.rebuild(w, s)
	}
	if lastBuf != nil {
		for {
			cur := q.root.Load()
			if cur.buf != lastBuf {
				break
			}
			q.rebuild(w, cur)
		}
	}
	clear(w.batch)
	w.batch = w.batch[:0]
}

// PopN claims up to len(dst) tasks with one fetch-and-add on the head's
// delete index; the claimed run is consecutive sorted slots, so the
// result is ascending by priority. As in Pop, the fetch-and-add is the
// claim: a run reserved before the head's freeze is owned whole — a
// racing freeze cuts strictly above it, never inside it — so the run
// can never be returned with a smaller slot missing.
func (w *worker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	q := w.q
	var zero T
	for {
		s := q.root.Load()
		h := s.head
		v := h.idx.Load()
		if v&headFrozen == 0 && v < uint64(h.n) {
			want := uint64(len(dst))
			start := h.idx.Add(want) - want
			if start&headFrozen != 0 {
				w.c.LockFails++
				q.rebuild(w, s)
				continue
			}
			if start < uint64(h.n) {
				end := min(start+want, uint64(h.n))
				n := int(end - start)
				for i := start; i < end; i++ {
					dst[i-start] = h.items[i]
					h.items[i].V = zero
				}
				w.c.Pops += uint64(n)
				return n
			}
			v = start // drained, and observed unfrozen
		}
		// Same consistent-snapshot emptiness argument as Pop.
		if v&headFrozen == 0 && s.buf.ctl.Load() == 0 && len(s.live) == 0 {
			w.c.EmptyPops++
			return 0
		}
		q.rebuild(w, s)
	}
}

// tryAppend reserves one slot in a live chunk with a count-word CAS and
// publishes the item behind its ready flag. It fails (false) when the
// chunk is frozen or full.
func (c *chunk[T]) tryAppend(w *worker[T], p uint64, v T) bool {
	for {
		ctl := c.ctl.Load()
		if ctl&ctlFreeze != 0 {
			return false
		}
		n := int(ctl & ctlCount)
		if n >= len(c.items) {
			return false
		}
		if c.ctl.CompareAndSwap(ctl, ctl+1) {
			c.items[n] = pq.Item[T]{P: p, V: v}
			c.flags[n].Store(slotReady)
			return true
		}
		w.c.LockFails++
	}
}

// tryAppendRun reserves space for as much of run as fits with a single
// count-word CAS, publishes the copied items, and returns how many were
// taken (0 when frozen or full).
func (c *chunk[T]) tryAppendRun(w *worker[T], run []pq.Item[T]) int {
	for {
		ctl := c.ctl.Load()
		if ctl&ctlFreeze != 0 {
			return 0
		}
		n := int(ctl & ctlCount)
		r := min(len(c.items)-n, len(run))
		if r == 0 {
			return 0
		}
		if c.ctl.CompareAndSwap(ctl, ctl+uint64(r)) {
			copy(c.items[n:n+r], run[:r])
			for i := n; i < n+r; i++ {
				c.flags[i].Store(slotReady)
			}
			return r
		}
		w.c.LockFails++
	}
}

// freezeLive sets the chunk's freeze bit and waits out in-flight
// publications; afterwards items[:count] is stable and fully visible.
// Returns the frozen count.
func freezeLive[T any](c *chunk[T]) int {
	n := int(c.ctl.Or(ctlFreeze) & ctlCount)
	for i := 0; i < n; i++ {
		for spins := 0; c.flags[i].Load() != slotReady; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
		}
	}
	return n
}

// freezeHead freezes a head chunk atomically through its idx word: one
// Or sets the freeze bit, and the count that Or observed is the claim
// cut — every index below it was handed out by a fetch-and-add that
// preceded the freeze (an owned, already-linearized pop), and no index
// at or above it can ever be claimed, because every later fetch-and-add
// returns the freeze bit. The freeze is therefore a single linearization
// cut: the survivors items[cut:n] are exactly the entries still in the
// queue, with no per-slot window in which a popper could claim slot i
// while an unclaimed smaller slot is frozen. The winning freezer
// publishes the cut through h.cut (post-freeze fetch-and-adds keep
// inflating the count, so losers of the Or cannot recompute it); the
// wait for that publication is bounded by the winner being scheduled
// across two instructions, like freezeLive's ready-flag wait.
func freezeHead[T any](h *chunk[T]) int {
	v := h.idx.Or(headFrozen)
	if v&headFrozen == 0 {
		cut := min(v, uint64(h.n))
		h.cut.Store(cut | cutValid)
		return int(cut)
	}
	for spins := 0; ; spins++ {
		if c := h.cut.Load(); c&cutValid != 0 {
			return int(c &^ cutValid)
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// rebuild replaces spine s with one whose head is freshly sorted from
// the head's unclaimed survivors plus the frozen buf — pulling in whole
// interior chunks until the head is full — plus spill chunks for the
// overflow and an empty buf. Safe to call from any thread at any time;
// helpers build equivalent candidates and exactly one root CAS wins.
func (q *Queue[T]) rebuild(w *worker[T], s *spine[T]) {
	if q.root.Load() != s {
		return
	}
	bn := freezeLive(s.buf)
	h := s.head
	cut := freezeHead(h)
	m := w.merge[:0]
	m = append(m, h.items[cut:h.n]...)
	m = append(m, s.buf.items[:bn]...)
	// Pull in whole interior chunks until the new head is full: always
	// rebuilding to a full sorted head is what keeps the amortization
	// (one rebuild per ~ChunkCap pops) — promoting only on a fully
	// drained head would let heads shrink and rebuilds cascade. The
	// rule is a deterministic function of the frozen counts, so
	// concurrent helpers still build equivalent candidates.
	cap_ := q.cfg.ChunkCap
	live := s.live
	for len(m) < cap_ && len(live) > 0 {
		ln := freezeLive(live[0])
		m = append(m, live[0].items[:ln]...)
		live = live[1:]
	}
	slices.SortFunc(m, itemCmp)

	nh := min(len(m), cap_)
	head2 := w.getChunk()
	head2.n = nh
	copy(head2.items[:nh], m[:nh])

	rest := m[nh:]
	newLive := make([]*chunk[T], 0, (len(rest)+cap_/2)/max(1, cap_/2)+len(live))
	for len(rest) > 0 {
		r := min(len(rest), max(1, cap_/2))
		newLive = append(newLive, w.prefill(rest[0].P, rest[:r]))
		rest = rest[r:]
	}
	newLive = append(newLive, live...)

	s2 := &spine[T]{head: head2, buf: w.getChunk(), live: newLive}
	if q.root.CompareAndSwap(s, s2) {
		w.commitBuilt()
	} else {
		w.c.LockFails++
		w.recycleBuilt()
	}
	clear(m)
	w.merge = m[:0]
}

// split replaces the frozen (or about-to-freeze) live chunk s.live[k]
// with two halves around its median — or a single thawed copy when it
// holds fewer than two entries. Like rebuild, any thread can help and
// one root CAS wins.
func (q *Queue[T]) split(w *worker[T], s *spine[T], k int) {
	if q.root.Load() != s {
		return
	}
	c := s.live[k]
	n := freezeLive(c)
	m := w.merge[:0]
	m = append(m, c.items[:n]...)
	slices.SortFunc(m, itemCmp)

	var repl []*chunk[T]
	if len(m) < 2 {
		repl = []*chunk[T]{w.prefill(c.min, m)}
	} else {
		mid := len(m) / 2
		repl = []*chunk[T]{w.prefill(c.min, m[:mid]), w.prefill(m[mid].P, m[mid:])}
	}
	newLive := make([]*chunk[T], 0, len(s.live)+1)
	newLive = append(newLive, s.live[:k]...)
	newLive = append(newLive, repl...)
	newLive = append(newLive, s.live[k+1:]...)

	s2 := &spine[T]{head: s.head, buf: s.buf, live: newLive}
	if q.root.CompareAndSwap(s, s2) {
		w.commitBuilt()
	} else {
		w.c.LockFails++
		w.recycleBuilt()
	}
	clear(m)
	w.merge = m[:0]
}

// prefill builds a fully published live chunk holding items, with range
// lower bound min.
func (w *worker[T]) prefill(min uint64, items []pq.Item[T]) *chunk[T] {
	c := w.getChunk()
	c.min = min
	copy(c.items, items)
	for i := range items {
		c.flags[i].Store(slotReady)
	}
	c.ctl.Store(uint64(len(items)))
	return c
}

// getChunk takes a chunk from the per-worker freelist (or allocates
// one) and records it as part of the current structural attempt.
func (w *worker[T]) getChunk() *chunk[T] {
	var c *chunk[T]
	if n := len(w.free); n > 0 {
		c = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	} else {
		c = &chunk[T]{
			items: make([]pq.Item[T], w.q.cfg.ChunkCap),
			flags: make([]atomic.Uint32, w.q.cfg.ChunkCap),
		}
	}
	w.built = append(w.built, c)
	return c
}

// commitBuilt forgets the candidates of a won CAS: they are published
// now and must never return to the pool (that would ABA the root CAS).
func (w *worker[T]) commitBuilt() { w.built = w.built[:0] }

// recycleBuilt returns the candidates of a lost CAS — memory no other
// thread has ever seen — to the freelist, zeroed so the pool retains no
// task payloads.
func (w *worker[T]) recycleBuilt() {
	for _, c := range w.built {
		if len(w.free) < maxFreeChunks {
			c.min, c.n = 0, 0
			c.idx.Store(0)
			c.cut.Store(0)
			c.ctl.Store(0)
			clear(c.items)
			clear(c.flags)
			w.free = append(w.free, c)
		}
	}
	clear(w.built)
	w.built = w.built[:0]
}

func itemCmp[T any](a, b pq.Item[T]) int {
	switch {
	case a.P < b.P:
		return -1
	case a.P > b.P:
		return 1
	}
	return 0
}
