package contend

import (
	"sync"
	"testing"
)

// These microbenchmarks test the premise of the sync.Mutex → contend.Lock
// swap in the scheduler queue headers: the spinlock must win (or at least
// tie) on the uncontended acquire/release pair that dominates Multi-Queue
// hot paths, and must not collapse under the moderate contention the
// two-choice discipline produces.

// benchLocker measures exactly `goroutines` goroutines hammering one
// lock (RunParallel+SetParallelism would multiply by GOMAXPROCS, making
// "2-way" mean 2×cores and the measured operating point machine-
// dependent).
func benchLocker(b *testing.B, l sync.Locker, goroutines int) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N/goroutines + 1
	b.ResetTimer()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Lock()
				l.Unlock()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkContend_Lock_Uncontended(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		l.Lock()
		l.Unlock()
	}
}

func BenchmarkContend_Mutex_Uncontended(b *testing.B) {
	var mu sync.Mutex
	for i := 0; i < b.N; i++ {
		mu.Lock()
		mu.Unlock()
	}
}

func BenchmarkContend_TryLock_Uncontended(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		if l.TryLock() {
			l.Unlock()
		}
	}
}

func BenchmarkContend_MutexTryLock_Uncontended(b *testing.B) {
	var mu sync.Mutex
	for i := 0; i < b.N; i++ {
		if mu.TryLock() {
			mu.Unlock()
		}
	}
}

func BenchmarkContend_Lock_Contended2(b *testing.B) {
	var l Lock
	benchLocker(b, &l, 2)
}

func BenchmarkContend_Mutex_Contended2(b *testing.B) {
	var mu sync.Mutex
	benchLocker(b, &mu, 2)
}

func BenchmarkContend_Lock_Contended8(b *testing.B) {
	var l Lock
	benchLocker(b, &l, 8)
}

func BenchmarkContend_Mutex_Contended8(b *testing.B) {
	var mu sync.Mutex
	benchLocker(b, &mu, 8)
}
