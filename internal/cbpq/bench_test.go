package cbpq

import (
	"fmt"
	"testing"

	"repro/internal/benchutil"
	"repro/internal/sched"
	"repro/internal/xrand"
)

func BenchmarkCBPQ_Throughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchutil.Throughput(b, New[int](Config{Workers: workers}), 1<<12)
		})
	}
}

// BenchmarkCBPQ_Batch runs PopN→PushN pairs: one index-word CAS claims
// the pop run, one count-word CAS per touched chunk publishes the push
// batch. Reports ns per batch pair.
func BenchmarkCBPQ_Batch(b *testing.B) {
	const batch = 8
	q := New[int](Config{Workers: 1})
	w := q.Worker(0)
	rng := xrand.New(1)
	for i := 0; i < 1<<12; i++ {
		w.Push(uint64(rng.Intn(1_000_000)), i)
	}
	dst := make([]sched.Task[int], batch)
	ps := make([]uint64, batch)
	vs := make([]int, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := w.PopN(dst)
		for j := 0; j < batch; j++ {
			base := uint64(rng.Intn(1_000_000))
			if j < n {
				base = dst[j].P + uint64(rng.Intn(64))
			}
			ps[j], vs[j] = base, j
		}
		w.PushN(ps, vs)
	}
}

// BenchmarkCBPQ_Pop measures the hot pop path alone (one claiming CAS
// on the packed index word, rebuild amortized over ChunkCap pops),
// refilling outside the timer whenever the queue drains.
func BenchmarkCBPQ_Pop(b *testing.B) {
	q := New[int](Config{Workers: 1})
	w := q.Worker(0)
	rng := xrand.New(1)
	refill := func() {
		b.StopTimer()
		for i := 0; i < 1<<14; i++ {
			w.Push(uint64(rng.Intn(1_000_000)), i)
		}
		b.StartTimer()
	}
	refill()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := w.Pop(); !ok {
			refill()
		}
	}
}

// BenchmarkCBPQ_Hold runs the decremental hold pattern — pop the
// minimum, push it back slightly above the old head — the workload the
// elimination + combining layer exists for: immediately-minimal pushes
// meet pops in exchange slots, and the rest park (exchange or buf)
// until a blocked pop absorbs the whole pending set in one deferred
// rebuild. The noelim variant routes everything through the combining
// buf alone. Reports ns per pop+push pair.
func BenchmarkCBPQ_Hold(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"elim", Config{Workers: 1}},
		{"noelim", Config{Workers: 1, DisableElimination: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			q := New[int](tc.cfg)
			w := q.Worker(0)
			rng := xrand.New(1)
			for i := 0; i < 1<<12; i++ {
				w.Push(1<<20+uint64(rng.Intn(1_000_000)), i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, v, ok := w.Pop()
				if !ok {
					b.Fatal("queue drained")
				}
				w.Push(p+uint64(rng.Intn(64)), v)
			}
		})
	}
}
