package algos

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sched"
)

// AStar computes the shortest distance from src to target guided by the
// admissible coordinate heuristic (the paper's A* benchmark, which uses
// the equirectangular approximation on road graphs). It returns
// Unreachable when no path exists.
//
// Task priorities are f = g + h values. Two pruning rules bound the
// wasted work: a popped task whose f exceeds the vertex's current g + h
// is stale, and any task whose f is not below the best known distance to
// the target cannot improve the answer.
func AStar(g *graph.CSR, src, target uint32, s sched.Scheduler[uint32]) (uint64, Result) {
	dist := make([]atomic.Uint64, g.N)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[src].Store(0)
	var best atomic.Uint64 // best known complete path weight
	best.Store(Unreachable)

	var pending sched.Pending
	pending.Inc(1)
	s.Worker(0).Push(g.Heuristic(src, target), src)

	tasks, wasted, elapsed := drive(s, &pending,
		func(_ int, out *taskSink[uint32], f uint64, u uint32) bool {
			gu := dist[u].Load()
			if gu == Unreachable {
				return true
			}
			hu := g.Heuristic(u, target)
			if f > gu+hu {
				return true // stale: u was improved after this push
			}
			if gu+hu >= best.Load() {
				return true // cannot beat the best complete path
			}
			if u == target {
				relaxMin(&best, gu)
				return false
			}
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				nd := gu + uint64(ws[i])
				if nd >= best.Load() {
					continue
				}
				if relaxMin(&dist[v], nd) {
					fv := nd + g.Heuristic(v, target)
					if fv < best.Load() || v == target {
						out.Push(fv, v)
					}
				}
			}
			return false
		})

	res := Result{Tasks: tasks, Wasted: wasted, Duration: elapsed, Sched: s.Stats()}
	d := dist[target].Load()
	return d, res
}
