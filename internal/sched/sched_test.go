package sched

import (
	"sync"
	"testing"
	"unsafe"
)

func TestStatsAdd(t *testing.T) {
	a := Stats{Pushes: 1, Pops: 2, EmptyPops: 3, Steals: 4, StolenTask: 5, StealFails: 6, LockFails: 7, Remote: 8}
	b := Stats{Pushes: 10, Pops: 20, EmptyPops: 30, Steals: 40, StolenTask: 50, StealFails: 60, LockFails: 70, Remote: 80}
	a.Add(b)
	want := Stats{Pushes: 11, Pops: 22, EmptyPops: 33, Steals: 44, StolenTask: 55, StealFails: 66, LockFails: 77, Remote: 88}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestSumCounters(t *testing.T) {
	cs := make([]Counters, 4)
	for i := range cs {
		cs[i].Pushes = uint64(i + 1)
		cs[i].Pops = uint64(2 * (i + 1))
	}
	got := SumCounters(cs)
	if got.Pushes != 10 || got.Pops != 20 {
		t.Fatalf("SumCounters = %+v", got)
	}
}

func TestCountersCacheLinePadding(t *testing.T) {
	sz := unsafe.Sizeof(Counters{})
	if sz%64 != 0 {
		t.Fatalf("Counters size %d is not a multiple of 64", sz)
	}
}

func TestPendingLifecycle(t *testing.T) {
	var p Pending
	if !p.Done() {
		t.Fatal("fresh Pending not Done")
	}
	p.Inc(3)
	if p.Done() || p.Load() != 3 {
		t.Fatalf("after Inc(3): Load=%d Done=%v", p.Load(), p.Done())
	}
	p.Dec()
	p.Dec()
	p.Dec()
	if !p.Done() {
		t.Fatal("Pending not Done after matching Decs")
	}
}

func TestPendingConcurrent(t *testing.T) {
	var p Pending
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Inc(1)
				p.Dec()
			}
		}()
	}
	wg.Wait()
	if !p.Done() {
		t.Fatalf("Pending = %d after balanced concurrent updates", p.Load())
	}
}

func TestBackoffProgresses(t *testing.T) {
	var b Backoff
	for i := 0; i < 100; i++ {
		b.Wait() // must not hang or panic
	}
	b.Reset()
	if b.spins != 0 {
		t.Fatal("Reset did not clear spins")
	}
}
