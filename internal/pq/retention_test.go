package pq

import (
	"runtime"
	"testing"
)

// These regression tests pin the zero-alloc-steady-state contract's
// other half: popping a task must actually RELEASE its payload. A heap
// that truncates its slice without zeroing the vacated slot keeps every
// popped pointerful payload reachable through the backing array — a
// real leak for schedulers that stay alive across workloads.
//
// Detection uses runtime.AddCleanup on a pointer payload: after the
// structure pops (and drops all its own references to) the payload, a
// forced GC must run the cleanup. The structure itself is kept alive
// across the GC so the only way the cleanup can run is the structure
// having genuinely cleared its slot.

// popAll is implemented by every sequential queue under test.
type popAll interface {
	Push(p uint64, v *[64]byte)
	Pop() (uint64, *[64]byte, bool)
	Len() int
}

func testPayloadReleased(t *testing.T, name string, q popAll) {
	t.Helper()
	const n = 50
	released := make(chan int, n)
	for i := 0; i < n; i++ {
		payload := &[64]byte{byte(i)}
		runtime.AddCleanup(payload, func(i int) { released <- i }, i)
		q.Push(uint64(i), payload)
	}
	for i := 0; i < n; i++ {
		if _, _, ok := q.Pop(); !ok {
			t.Fatalf("%s: Pop %d failed", name, i)
		}
	}
	// Every payload is now popped and no longer referenced by the test;
	// only a retained slot inside q could keep one alive. Cleanups run
	// asynchronously after GC, so allow a few cycles.
	got := 0
	for attempt := 0; attempt < 20 && got < n; attempt++ {
		runtime.GC()
		for len(released) > 0 {
			<-released
			got++
		}
	}
	runtime.KeepAlive(q)
	if got != n {
		t.Fatalf("%s retained %d of %d popped payloads (vacated slots not zeroed)", name, n-got, n)
	}
}

func TestDHeapReleasesPoppedPayloads(t *testing.T) {
	testPayloadReleased(t, "DHeap", NewDHeap[*[64]byte](4))
}

func TestSeqSkipListReleasesPoppedPayloads(t *testing.T) {
	testPayloadReleased(t, "SeqSkipList", NewSeqSkipList[*[64]byte](1))
}

func TestPairingHeapReleasesPoppedPayloads(t *testing.T) {
	testPayloadReleased(t, "PairingHeap", NewPairingHeap[*[64]byte]())
}

// TestDHeapPopBatchReleasesSlots covers the batched extraction path the
// schedulers actually use (PopBatch → Pop), with the batch destination
// cleared by the caller as the scheduler buffers do.
func TestDHeapPopBatchReleasesSlots(t *testing.T) {
	h := NewDHeap[*[64]byte](4)
	const n = 32
	released := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		payload := &[64]byte{byte(i)}
		runtime.AddCleanup(payload, func(struct{}) { released <- struct{}{} }, struct{}{})
		h.Push(uint64(i), payload)
	}
	dst := h.PopBatch(n, nil)
	if len(dst) != n {
		t.Fatalf("PopBatch returned %d items, want %d", len(dst), n)
	}
	clear(dst) // what mq/emq delete buffers do as entries are served
	got := 0
	for attempt := 0; attempt < 20 && got < n; attempt++ {
		runtime.GC()
		for len(released) > 0 {
			<-released
			got++
		}
	}
	runtime.KeepAlive(h)
	if got != n {
		t.Fatalf("DHeap+PopBatch retained %d of %d payloads", n-got, n)
	}
}
