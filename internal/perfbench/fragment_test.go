package perfbench

import (
	"bytes"
	"strings"
	"testing"
)

func mkFragReport(frag ExperimentFragment, host string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		GeneratedBy:   "test",
		GoVersion:     "go-test",
		Host:          &HostInfo{Hostname: host, OS: "linux", Arch: "amd64", NumCPU: 4},
		Experiments:   []ExperimentFragment{frag},
	}
}

func cell(i int, status string) CellRecord {
	c := CellRecord{Index: i, Key: "cell/" + string(rune('a'+i)), Kind: "measure",
		Status: status, Seed: uint64(i + 1), Attempts: 1, Tasks: uint64(100 + i)}
	if status != CellStatusOK {
		c.Error = "deadline exceeded"
	}
	return c
}

func TestValidateFragment(t *testing.T) {
	good := ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 4,
		Shard: &ShardInfo{Index: 0, Total: 2}, Cells: []CellRecord{cell(0, CellStatusOK), cell(2, CellStatusTimeout)}}
	if err := validateFragment(&good); err != nil {
		t.Fatalf("good fragment rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(f *ExperimentFragment)
		want string
	}{
		{"empty experiment", func(f *ExperimentFragment) { f.Experiment = "" }, "empty experiment"},
		{"empty config", func(f *ExperimentFragment) { f.Config = "" }, "config"},
		{"zero total", func(f *ExperimentFragment) { f.TotalCells = 0 }, "total_cells"},
		{"no cells", func(f *ExperimentFragment) { f.Cells = nil }, "no cells"},
		{"dup index", func(f *ExperimentFragment) { f.Cells = []CellRecord{cell(1, CellStatusOK), cell(1, CellStatusOK)} }, "duplicate"},
		{"out of range", func(f *ExperimentFragment) { f.Cells = []CellRecord{cell(9, CellStatusOK)} }, "outside"},
		{"bad status", func(f *ExperimentFragment) { f.Cells[0].Status = "meh" }, "unknown status"},
		{"timeout without error", func(f *ExperimentFragment) { f.Cells[1].Error = "" }, "without error message"},
		{"bad shard", func(f *ExperimentFragment) { f.Shard = &ShardInfo{Index: 2, Total: 2} }, "out of range"},
	}
	for _, tc := range cases {
		f := good
		f.Cells = append([]CellRecord(nil), good.Cells...)
		tc.mut(&f)
		err := validateFragment(&f)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateReportWithFragment(t *testing.T) {
	r := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 2,
		Cells: []CellRecord{cell(0, CellStatusOK), cell(1, CellStatusError)}}, "h1")
	if err := Validate(r); err != nil {
		t.Fatalf("fragment report rejected: %v", err)
	}
	r.SchemaVersion = 3
	if err := Validate(r); err == nil {
		t.Fatal("schema-3 report with experiments accepted")
	}
}

// TestMergeCommutative is the order-independence contract: merging the
// same fragments in any order yields byte-identical artifacts.
func TestMergeCommutative(t *testing.T) {
	a := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 4,
		Shard: &ShardInfo{Index: 0, Total: 2},
		Cells: []CellRecord{cell(0, CellStatusOK), cell(2, CellStatusOK)}}, "hostB")
	b := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 4,
		Shard: &ShardInfo{Index: 1, Total: 2},
		Cells: []CellRecord{cell(1, CellStatusTimeout), cell(3, CellStatusOK)}}, "hostA")

	ab, err := Merge([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge([]*Report{b, a})
	if err != nil {
		t.Fatal(err)
	}
	abBytes, err := Marshal(ab)
	if err != nil {
		t.Fatal(err)
	}
	baBytes, err := Marshal(ba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(abBytes, baBytes) {
		t.Fatalf("merge not commutative:\n--- A,B ---\n%s\n--- B,A ---\n%s", abBytes, baBytes)
	}

	if len(ab.Experiments) != 1 || len(ab.Experiments[0].Cells) != 4 {
		t.Fatalf("merged fragment wrong shape: %+v", ab.Experiments)
	}
	for i, c := range ab.Experiments[0].Cells {
		if c.Index != i {
			t.Fatalf("merged cells not in index order: %d at %d", c.Index, i)
		}
	}
	if ab.Experiments[0].Cells[1].Status != CellStatusTimeout {
		t.Fatal("timeout status lost in merge")
	}
	if len(ab.Hosts) != 2 || ab.Hosts[0].Hostname != "hostA" {
		t.Fatalf("hosts not unioned/sorted: %+v", ab.Hosts)
	}
	if ab.Host != nil {
		t.Fatal("merged report must clear the single-host fingerprint")
	}
	if ab.MergedFrom != 2 {
		t.Fatalf("merged_from = %d", ab.MergedFrom)
	}
	if err := Validate(ab); err != nil {
		t.Fatalf("merged report invalid: %v", err)
	}
}

func TestMergeRejectsOverlapAndGaps(t *testing.T) {
	a := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 3,
		Cells: []CellRecord{cell(0, CellStatusOK), cell(1, CellStatusOK)}}, "h")
	dup := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 3,
		Cells: []CellRecord{cell(1, CellStatusOK), cell(2, CellStatusOK)}}, "h")
	if _, err := Merge([]*Report{a, dup}); err == nil || !strings.Contains(err.Error(), "multiple fragments") {
		t.Fatalf("overlap not rejected: %v", err)
	}

	gap := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 3,
		Cells: []CellRecord{cell(2, CellStatusOK)}}, "h")
	if _, err := Merge([]*Report{a}); err == nil {
		t.Fatal("incomplete grid not rejected")
	}
	merged, err := Merge([]*Report{a, gap})
	if err != nil {
		t.Fatalf("complete grid rejected: %v", err)
	}
	if !merged.Experiments[0].Complete() {
		t.Fatal("merged fragment not marked complete")
	}
}

func TestMergeKeepsDifferentConfigsApart(t *testing.T) {
	a := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c1", TotalCells: 1,
		Cells: []CellRecord{cell(0, CellStatusOK)}}, "h")
	b := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c2", TotalCells: 1,
		Cells: []CellRecord{cell(0, CellStatusOK)}}, "h")
	m, err := Merge([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Experiments) != 2 {
		t.Fatalf("different configs collapsed: %+v", m.Experiments)
	}
}

func TestMergeRejectsTotalCellsMismatch(t *testing.T) {
	a := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 2,
		Cells: []CellRecord{cell(0, CellStatusOK)}}, "h")
	b := mkFragReport(ExperimentFragment{Experiment: "fig1", Config: "c", TotalCells: 3,
		Cells: []CellRecord{cell(1, CellStatusOK)}}, "h")
	if _, err := Merge([]*Report{a, b}); err == nil || !strings.Contains(err.Error(), "total_cells") {
		t.Fatalf("total_cells mismatch not rejected: %v", err)
	}
}

func TestMergeRejectsDuplicateSchedulerResults(t *testing.T) {
	mk := func() *Report {
		return &Report{SchemaVersion: SchemaVersion, GeneratedBy: "t", GoVersion: "g",
			Workers: 1, Prefill: 1, OpsPerWorker: 1, BatchSize: 1,
			Results: []Result{{Scheduler: "smq", ThroughputOpsPerSec: 1, NsPerOp: 1,
				BatchedThroughputOpsPerSec: 1, BatchedNsPerOp: 1,
				HoldThroughputOpsPerSec: 1, HoldNsPerOp: 1,
				PopP50Ns: 1, PopP99Ns: 2, PopP999Ns: 3}}}
	}
	if _, err := Merge([]*Report{mk(), mk()}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate result not rejected: %v", err)
	}
}

func TestCollectHost(t *testing.T) {
	h := CollectHost()
	if h.Hostname == "" || h.OS == "" || h.Arch == "" || h.NumCPU < 1 {
		t.Fatalf("incomplete host fingerprint: %+v", h)
	}
}
