// Package perfbench produces the repository's recorded performance
// trajectory: a schema-versioned JSON report of scheduler throughput,
// contention and allocation behaviour on a fixed contended
// uniform-priority microbenchmark, emitted by `smqbench -json` and
// committed as BENCH_PR<n>.json so that every optimisation PR extends a
// measured history instead of a claimed one.
//
// The workload is the throughput benchmark of the Multi-Queue
// literature (Rihani et al. 2014; Williams et al. 2021; §5 of the SMQ
// paper): prefill the queue, then every worker runs pop→push pairs with
// uniformly random priorities, keeping the queue size stationary while
// all workers contend on the shared structure. Reported per scheduler:
// throughput, lock failures (contention), allocations per operation
// (steady-state allocation discipline) and total GC pause accumulated
// during the run.
package perfbench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/xrand"
	"repro/internal/zoo"
)

// SchemaVersion identifies the report layout. Bump it when fields
// change meaning or disappear; additions are backward compatible.
// Version history:
//
//	1 — scalar throughput / contention / allocation metrics.
//	2 — adds the batched (PushN/PopN) throughput mode and pop-latency
//	    percentiles (p50/p99/p99.9 from a log-bucketed histogram).
//	3 — adds the open-loop serving trajectory (the "serve" section:
//	    per-scheduler runs of internal/serve with per-tenant latency
//	    percentiles, admission/shedding accounting, elastic-pool
//	    activity and idle-service CPU). A version-3 report may carry
//	    the microbenchmark results, the serve section, or both.
//	4 — adds the sharded experiment artifact layer: a host fingerprint
//	    ("host"/"hosts"), experiment fragments ("experiments" — per-cell
//	    records with status ok/timeout/error and shard metadata), and
//	    "merged_from" on reports produced by `benchcheck merge`. A
//	    version-4 report may carry any non-empty combination of
//	    Results / Serve / Experiments.
//	5 — adds the discrete-event simulation trajectory (the "desim"
//	    section: per-scheduler internal/desim runs with event
//	    throughput, the safe-lookahead window derived from the
//	    scheduler's rank-error bound, causality-violation counts and
//	    per-tenant simulated sojourn percentiles). A version-5 report
//	    may carry any non-empty combination of
//	    Results / Serve / Experiments / Desim.
//	6 — adds "bound_source" on desim runs (exact / expectation /
//	    unchecked), making the provenance of the causality window
//	    explicit: an unchecked run records throughput but makes no
//	    safety claim, and the label must agree with the
//	    rank_bound/lookahead fields it summarizes.
//	7 — adds the decremental-hold microbenchmark facet
//	    ("hold_throughput_ops_per_sec" / "hold_ns_per_op"): pop the
//	    minimum, re-insert just above it — the below-head access
//	    pattern SSSP/A*/delta-stepping relaxations generate, and the
//	    worst case of the exact tiers. Also adds the
//	    "eliminations"/"combines" counters captured from that run for
//	    schedulers with an elimination/combining layer (CBPQ).
//
// Validate is version-gated: committed version-1 through version-6
// trajectory files (BENCH_PR9.json and earlier) remain valid without
// the newer fields.
const SchemaVersion = 7

// Report is the top-level JSON document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GeneratedBy   string `json:"generated_by"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Workers       int    `json:"workers"`
	Prefill       int    `json:"prefill"`
	OpsPerWorker  int    `json:"ops_per_worker"`
	Seed          uint64 `json:"seed"`
	Reps          int    `json:"reps,omitempty"`
	// BatchSize is the PushN/PopN batch size of the batched mode
	// (schema >= 2).
	BatchSize int `json:"batch_size,omitempty"`
	// LatencyOps is the number of individually timed pops per worker
	// behind the latency percentiles (schema >= 2).
	LatencyOps int `json:"latency_ops,omitempty"`

	Results []Result `json:"results,omitempty"`

	// Serve is the open-loop serving trajectory (schema >= 3): one
	// entry per scheduler run through internal/serve's fixed-rate load
	// generator. May be empty for microbenchmark-only reports; a
	// version-3 report must carry at least one of Results / Serve.
	Serve []ServeResult `json:"serve,omitempty"`

	// Host fingerprints the machine that produced this report (schema
	// >= 4). Merged reports clear it and list every contributing
	// machine in Hosts instead.
	Host  *HostInfo  `json:"host,omitempty"`
	Hosts []HostInfo `json:"hosts,omitempty"`

	// Experiments holds sharded experiment fragments (schema >= 4):
	// per-cell records of harness experiment grids, produced by
	// `smqbench -fragment` shards and combined by `benchcheck merge`.
	Experiments []ExperimentFragment `json:"experiments,omitempty"`

	// Desim is the discrete-event simulation trajectory (schema >= 5):
	// one entry per (scheduler, model) run of internal/desim's
	// scheduler-driven event loop with a safe-lookahead window.
	Desim []DesimResult `json:"desim,omitempty"`

	// MergedFrom counts the fragments a merged report was built from
	// (0 for reports written directly by a benchmark run).
	MergedFrom int `json:"merged_from,omitempty"`
}

// DesimResult is one scheduler's discrete-event simulation run (schema
// >= 5): a simulation model's event population pushed through the
// scheduler at priority = timestamp, with pops outside the
// safe-lookahead window counted as causality violations. For a
// scheduler whose rank-error bound is exact (k-LSM, coarse) and whose
// window covers the bound, violations must be zero — Validate enforces
// exactly that, so a committed artifact is a machine-checked safety
// claim, not a report of a lucky run.
type DesimResult struct {
	Scheduler string `json:"scheduler"`
	// Model names the simulation model ("cluster" or "dag").
	Model   string `json:"model"`
	Workers int    `json:"workers"`
	Seed    uint64 `json:"seed"`
	// Events is the number of simulation events executed.
	Events       uint64  `json:"events"`
	DurationNs   int64   `json:"duration_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// RankBound is the scheduler's rank-error bound at this worker
	// count (-1 = no usable bound); BoundExact says whether it is a
	// worst-case guarantee or an expectation-scale estimate.
	RankBound  int64 `json:"rank_bound"`
	BoundExact bool  `json:"bound_exact"`
	// Lookahead is the safe-lookahead window the run was checked
	// against, in rank units (-1 = unchecked).
	Lookahead int64 `json:"lookahead"`
	// BoundSource labels where the window came from (schema >= 6):
	// "exact" (worst-case rank-bound guarantee — zero violations is a
	// hard validation rule), "expectation" (expectation-scale estimate
	// — violations are informative, not fatal), or "unchecked"
	// (lookahead −1: no usable bound, no causality claim).
	BoundSource string `json:"bound_source,omitempty"`
	// Violations counts pops that ran ahead of the window while
	// smaller-timestamp events were still pending.
	Violations uint64 `json:"causality_violations"`
	// MaxLead / MeanLead describe observed lookahead occupancy: how
	// many smaller-timestamp events were pending at pop time.
	MaxLead  int64   `json:"max_lead"`
	MeanLead float64 `json:"mean_lead"`
	// Checksum is the model's order-independent state digest; equal
	// checksums across schedulers certify identical simulated outcomes.
	Checksum uint64 `json:"checksum"`
	// PerTenant is the cluster model's per-tenant simulated-sojourn
	// breakdown (empty for models without tenants).
	PerTenant []TenantDesimResult `json:"per_tenant,omitempty"`
}

// TenantDesimResult is one tenant's slice of a cluster simulation.
// Sojourn percentiles are in simulated time units (ticks), not
// nanoseconds: they describe the modelled system, so they must be
// identical across schedulers, not merely close.
type TenantDesimResult struct {
	Tenant    int    `json:"tenant"`
	Completed uint64 `json:"completed"`
	P50       uint64 `json:"sojourn_p50"`
	P99       uint64 `json:"sojourn_p99"`
	P999      uint64 `json:"sojourn_p999"`
}

// ServeResult is one scheduler's open-loop serving run (schema >= 3):
// a fixed offered rate of Zipf-skewed tenant traffic with
// bounded-Pareto service costs pushed through internal/serve's
// admission control and elastic worker pool.
type ServeResult struct {
	Scheduler string `json:"scheduler"`
	// OfferedRatePerSec is the load generator's target arrival rate.
	OfferedRatePerSec float64 `json:"offered_rate_per_sec"`
	// Workers is the scheduler's worker-slot count (ingest worker
	// included); MinWorkers is the elastic pool's floor.
	Workers    int `json:"workers"`
	MinWorkers int `json:"min_workers"`
	// Tenants and TenantSkew describe the Zipf tenant mix.
	Tenants    int     `json:"tenants"`
	TenantSkew float64 `json:"tenant_skew"`
	// Ingested = Completed + Shed is the zero-lost-tasks ledger:
	// Validate rejects any run where it does not balance.
	Ingested  uint64 `json:"ingested"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	// DurationNs covers first arrival to quiescence.
	DurationNs            int64   `json:"duration_ns"`
	ThroughputTasksPerSec float64 `json:"throughput_tasks_per_sec"`
	// Stalls / StallNs account backpressure: how often and for how
	// long ingestion was paused at the admission high watermark.
	Stalls  uint64 `json:"stalls"`
	StallNs int64  `json:"stall_ns"`
	// Parks / Unparks / MeanActiveWorkers describe the elastic pool's
	// activity over the run.
	Parks             uint64  `json:"parks"`
	Unparks           uint64  `json:"unparks"`
	MeanActiveWorkers float64 `json:"mean_active_workers"`
	// IdleCPUFrac is the process CPU fraction (CPU-seconds per
	// wall-second) measured over an idle window with the service up
	// and zero offered load (before the load generator starts) — the
	// busy-spin regression
	// metric: the pre-fix Backoff burned ~1.0 per spinning worker.
	// Negative means the platform could not measure it.
	IdleCPUFrac float64 `json:"idle_cpu_frac"`
	// PerTenant is the per-tenant latency/shedding breakdown, indexed
	// by tenant id (tenant 0 = highest priority class).
	PerTenant []TenantServeResult `json:"per_tenant"`
}

// TenantServeResult is one tenant's slice of a serving run. Latency is
// scheduled-arrival to completion (sojourn: admission + queueing +
// service), from the same log-bucketed histogram as the pop-latency
// percentiles, so coordinated omission cannot hide backpressure stalls.
type TenantServeResult struct {
	Tenant    int     `json:"tenant"`
	Completed uint64  `json:"completed"`
	Shed      uint64  `json:"shed"`
	P50Ns     float64 `json:"latency_p50_ns"`
	P99Ns     float64 `json:"latency_p99_ns"`
	P999Ns    float64 `json:"latency_p999_ns"`
}

// Result is one scheduler's measurement.
type Result struct {
	Scheduler string `json:"scheduler"`
	// ThroughputOpsPerSec counts completed pop→push pairs per second
	// summed over all workers.
	ThroughputOpsPerSec float64 `json:"throughput_ops_per_sec"`
	NsPerOp             float64 `json:"ns_per_op"`
	// LockFails and EmptyPops come from the scheduler's own counters.
	LockFails uint64 `json:"lock_fails"`
	EmptyPops uint64 `json:"empty_pops"`
	// AllocsPerOp / BytesPerOp are heap-allocation deltas over the
	// timed section divided by total operations (steady state should
	// be ~0 for the buffered schedulers).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// GCPauseTotalNs is the stop-the-world pause time accumulated
	// during the timed section.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`

	// BatchedThroughputOpsPerSec / BatchedNsPerOp measure the same
	// stationary pop→push workload moved through PopN/PushN batches of
	// Report.BatchSize tasks (schema >= 2). The ratio to the scalar
	// throughput is the amortization win of the bulk fast paths.
	BatchedThroughputOpsPerSec float64 `json:"batched_throughput_ops_per_sec,omitempty"`
	BatchedNsPerOp             float64 `json:"batched_ns_per_op,omitempty"`

	// PopP50Ns / PopP99Ns / PopP999Ns are scalar-Pop latency
	// percentiles from a log-bucketed histogram over a separate timed
	// pass of Report.LatencyOps pops per worker (schema >= 2). They
	// include ~timer-call overhead (two monotonic clock reads per
	// sample), which is identical across schedulers, so the numbers
	// compare within a report; the tail percentiles expose lock convoys
	// and sweep fallbacks that throughput averages hide.
	PopP50Ns  float64 `json:"pop_latency_p50_ns,omitempty"`
	PopP99Ns  float64 `json:"pop_latency_p99_ns,omitempty"`
	PopP999Ns float64 `json:"pop_latency_p999_ns,omitempty"`

	// HoldThroughputOpsPerSec / HoldNsPerOp measure the decremental
	// "hold" workload (schema >= 7): pop the minimum and re-insert just
	// above the popped priority, so every push lands below the current
	// head range. This is the access pattern SSSP/A*/delta-stepping
	// relaxations generate and the structural worst case of the exact
	// tiers — the facet the CBPQ elimination + combining layer exists
	// for. Ops are pop→push pairs, as in the scalar pass.
	HoldThroughputOpsPerSec float64 `json:"hold_throughput_ops_per_sec,omitempty"`
	HoldNsPerOp             float64 `json:"hold_ns_per_op,omitempty"`

	// Eliminations / Combines are the scheduler's own counters from the
	// hold run (schema >= 7): pops served directly from an elimination
	// layer, and inserts merged in bulk by a combining rebuild. Zero
	// (omitted) for schedulers without such a layer.
	Eliminations uint64 `json:"eliminations,omitempty"`
	Combines     uint64 `json:"combines,omitempty"`
}

// Config parameterizes a perfbench run.
type Config struct {
	// Workers is the number of worker goroutines (and scheduler worker
	// slots). 0 means GOMAXPROCS.
	Workers int
	// Prefill is the number of tasks inserted before the timed section.
	// 0 means 4096.
	Prefill int
	// OpsPerWorker is the number of pop→push pairs each worker runs.
	// 0 means 200000.
	OpsPerWorker int
	// Seed makes the priority streams reproducible. 0 means 1.
	Seed uint64
	// Reps is the number of repetitions per scheduler; the fastest is
	// reported (the harness convention — the minimum is the least noisy
	// estimator of the achievable rate). 0 means 1.
	Reps int
	// Schedulers restricts the lineup to the named subset; nil runs
	// everything in Lineup order.
	Schedulers []string
	// BatchSize is the PushN/PopN batch size for the batched mode.
	// 0 means DefaultBatchSize.
	BatchSize int
	// LatencyOps is the number of individually timed pops per worker
	// for the latency pass. 0 derives min(OpsPerWorker, 50000).
	LatencyOps int
}

// DefaultBatchSize is the batched-mode PushN/PopN batch size when
// Config.BatchSize is zero — large enough that lock amortization
// dominates, small enough to stay within the schedulers' own buffer
// scale.
const DefaultBatchSize = 8

func (c *Config) normalize() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Prefill <= 0 {
		c.Prefill = 4096
	}
	if c.OpsPerWorker <= 0 {
		c.OpsPerWorker = 200000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.LatencyOps <= 0 {
		c.LatencyOps = min(c.OpsPerWorker, 50000)
	}
}

// Lineup returns the scheduler names measured by default, in report
// order: the exact baselines (lock-based coarse, then the lock-free
// CBPQ), the Multi-Queue family, the SMQ, and the non-Multi-Queue
// relaxed baselines.
func Lineup() []string {
	return []string{"coarse", "cbpq", "mq", "mq-batch", "emq", "smq", "klsm", "obim", "spray"}
}

// build constructs the named scheduler for w workers via the zoo
// registry — the single name→factory table the whole repository shares.
func build(name string, workers int, seed uint64) (sched.Scheduler[int], error) {
	spec, ok := zoo.Lookup[int](name)
	if !ok {
		return nil, fmt.Errorf("perfbench: unknown scheduler %q (known: %v)", name, zoo.Names())
	}
	return spec.Build(workers, seed), nil
}

// prioBits bounds the uniform priority domain; ~1M distinct priorities
// keeps heaps deep enough to be interesting without overflow concerns.
const prioBits = 20

// Run executes the microbenchmark for every configured scheduler and
// assembles the report.
func Run(cfg Config) (*Report, error) {
	cfg.normalize()
	names := cfg.Schedulers
	if len(names) == 0 {
		names = Lineup()
	}
	r := &Report{
		SchemaVersion: SchemaVersion,
		GeneratedBy:   "smqbench -json",
		Host:          CollectHost(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       cfg.Workers,
		Prefill:       cfg.Prefill,
		OpsPerWorker:  cfg.OpsPerWorker,
		Seed:          cfg.Seed,
		Reps:          cfg.Reps,
		BatchSize:     cfg.BatchSize,
		LatencyOps:    cfg.LatencyOps,
	}
	for _, name := range names {
		best, err := runOne(name, cfg)
		if err != nil {
			return nil, err
		}
		for rep := 1; rep < cfg.Reps; rep++ {
			res, err := runOne(name, cfg)
			if err != nil {
				return nil, err
			}
			mergeBest(&best, res)
		}
		r.Results = append(r.Results, best)
	}
	return r, nil
}

// mergeBest folds one repetition into the kept result, fastest-kept per
// mode: the scalar metrics travel together (they come from one timed
// section), the batched throughput is kept at its own best repetition,
// and the latency percentiles take the field-wise minimum — within a
// repetition p50 <= p99 <= p99.9, and a field-wise minimum over such
// triples stays monotone.
func mergeBest(best *Result, res Result) {
	if res.ThroughputOpsPerSec > best.ThroughputOpsPerSec {
		scalarBatched := best.BatchedThroughputOpsPerSec
		scalarBatchedNs := best.BatchedNsPerOp
		hold, holdNs := best.HoldThroughputOpsPerSec, best.HoldNsPerOp
		elim, comb := best.Eliminations, best.Combines
		p50, p99, p999 := best.PopP50Ns, best.PopP99Ns, best.PopP999Ns
		*best = res
		best.BatchedThroughputOpsPerSec = scalarBatched
		best.BatchedNsPerOp = scalarBatchedNs
		best.HoldThroughputOpsPerSec, best.HoldNsPerOp = hold, holdNs
		best.Eliminations, best.Combines = elim, comb
		best.PopP50Ns, best.PopP99Ns, best.PopP999Ns = p50, p99, p999
	}
	if res.BatchedThroughputOpsPerSec > best.BatchedThroughputOpsPerSec {
		best.BatchedThroughputOpsPerSec = res.BatchedThroughputOpsPerSec
		best.BatchedNsPerOp = res.BatchedNsPerOp
	}
	if res.HoldThroughputOpsPerSec > best.HoldThroughputOpsPerSec {
		best.HoldThroughputOpsPerSec = res.HoldThroughputOpsPerSec
		best.HoldNsPerOp = res.HoldNsPerOp
		// The counters travel with the hold run they were observed in.
		best.Eliminations = res.Eliminations
		best.Combines = res.Combines
	}
	best.PopP50Ns = min(best.PopP50Ns, res.PopP50Ns)
	best.PopP99Ns = min(best.PopP99Ns, res.PopP99Ns)
	best.PopP999Ns = min(best.PopP999Ns, res.PopP999Ns)
}

// runOne measures one scheduler: the scalar throughput pass, the
// batched (PushN/PopN) throughput pass, and the individually timed
// latency pass, each on a freshly built and prefilled scheduler.
func runOne(name string, cfg Config) (Result, error) {
	res, err := runScalar(name, cfg)
	if err != nil {
		return Result{}, err
	}
	bThr, bNs, err := runBatched(name, cfg)
	if err != nil {
		return Result{}, err
	}
	res.BatchedThroughputOpsPerSec = bThr
	res.BatchedNsPerOp = bNs
	p50, p99, p999, err := runLatency(name, cfg)
	if err != nil {
		return Result{}, err
	}
	res.PopP50Ns, res.PopP99Ns, res.PopP999Ns = p50, p99, p999
	hThr, hNs, elim, comb, err := runHold(name, cfg)
	if err != nil {
		return Result{}, err
	}
	res.HoldThroughputOpsPerSec = hThr
	res.HoldNsPerOp = hNs
	res.Eliminations = elim
	res.Combines = comb
	return res, nil
}

// runHold measures the decremental hold workload: each worker pops a
// minimum and re-inserts it at popped-priority + small uniform delta,
// keeping the queue size stationary while the resident set drifts
// upward — every push is below the head range of an exact scheduler.
// A locally dry pop reseeds with a fresh uniform priority, as in the
// scalar pass.
func runHold(name string, cfg Config) (throughput, nsPerOp float64, eliminations, combines uint64, err error) {
	s, err := prefilled(name, cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Worker(w)
			rng := xrand.New(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			for i := 0; i < cfg.OpsPerWorker; i++ {
				p, v, ok := h.Pop()
				if !ok {
					h.Push(rng.Uint64()>>(64-prioBits), i)
					continue
				}
				h.Push(p+rng.Uint64()%64, v)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalOps := float64(cfg.Workers) * float64(cfg.OpsPerWorker)
	st := s.Stats()
	return totalOps / elapsed.Seconds(),
		float64(elapsed.Nanoseconds()) / totalOps,
		st.Eliminations, st.Combines, nil
}

// prefilled builds the named scheduler and prefills it sequentially
// through the worker handles (handles are not concurrency-safe, but
// sequential multiplexed use is fine).
func prefilled(name string, cfg Config) (sched.Scheduler[int], error) {
	s, err := build(name, cfg.Workers, cfg.Seed)
	if err != nil {
		return nil, err
	}
	seedRng := xrand.New(cfg.Seed ^ 0xa5a5a5a5)
	for i := 0; i < cfg.Prefill; i++ {
		s.Worker(i%cfg.Workers).Push(seedRng.Uint64()>>(64-prioBits), i)
	}
	return s, nil
}

func runScalar(name string, cfg Config) (Result, error) {
	s, err := prefilled(name, cfg)
	if err != nil {
		return Result{}, err
	}

	// Warm the allocator and GC state so the measured deltas reflect
	// the scheduler, not runtime lazy initialisation.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Worker(w)
			rng := xrand.New(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			for i := 0; i < cfg.OpsPerWorker; i++ {
				_, v, ok := h.Pop()
				if !ok {
					// Locally dry (relaxed schedulers may hide tasks in
					// other workers' buffers): reseed to keep the queue
					// size stationary; this is the push half of the pair.
					h.Push(rng.Uint64()>>(64-prioBits), i)
					continue
				}
				h.Push(rng.Uint64()>>(64-prioBits), v)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	totalOps := float64(cfg.Workers) * float64(cfg.OpsPerWorker)
	st := s.Stats()
	return Result{
		Scheduler:           name,
		ThroughputOpsPerSec: totalOps / elapsed.Seconds(),
		NsPerOp:             float64(elapsed.Nanoseconds()) / totalOps,
		LockFails:           st.LockFails,
		EmptyPops:           st.EmptyPops,
		AllocsPerOp:         float64(after.Mallocs-before.Mallocs) / totalOps,
		BytesPerOp:          float64(after.TotalAlloc-before.TotalAlloc) / totalOps,
		GCPauseTotalNs:      after.PauseTotalNs - before.PauseTotalNs,
	}, nil
}

// padCount is a per-worker operation counter padded against false
// sharing (the batched pass completes a variable number of pairs per
// worker, so the exact total must be summed afterwards).
type padCount struct {
	n uint64
	_ [56]byte
}

// runBatched measures the stationary pop→push workload moved through
// the bulk operations: each worker drains up to BatchSize tasks per
// PopN and re-inserts the whole batch with fresh random priorities in
// one PushN. Ops are pop→push pairs, as in the scalar pass.
func runBatched(name string, cfg Config) (throughput, nsPerOp float64, err error) {
	s, err := prefilled(name, cfg)
	if err != nil {
		return 0, 0, err
	}
	counts := make([]padCount, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Worker(w)
			rng := xrand.New(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			buf := make([]sched.Task[int], cfg.BatchSize)
			ps := make([]uint64, 0, cfg.BatchSize)
			vs := make([]int, 0, cfg.BatchSize)
			done := 0
			for done < cfg.OpsPerWorker {
				k := h.PopN(buf)
				if k == 0 {
					// Locally dry: reseed one whole batch to keep the
					// queue size stationary (the push half of the pairs).
					k = cfg.BatchSize
					ps, vs = ps[:0], vs[:0]
					for i := 0; i < k; i++ {
						ps = append(ps, rng.Uint64()>>(64-prioBits))
						vs = append(vs, done+i)
					}
					h.PushN(ps, vs)
					done += k
					continue
				}
				ps, vs = ps[:0], vs[:0]
				for i := 0; i < k; i++ {
					ps = append(ps, rng.Uint64()>>(64-prioBits))
					vs = append(vs, buf[i].V)
				}
				h.PushN(ps, vs)
				done += k
			}
			counts[w].n = uint64(done)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var totalOps uint64
	for i := range counts {
		totalOps += counts[i].n
	}
	return float64(totalOps) / elapsed.Seconds(),
		float64(elapsed.Nanoseconds()) / float64(totalOps), nil
}

// runLatency times every scalar Pop individually into per-worker
// log-bucketed histograms and reports merged percentiles. The sample
// includes two monotonic clock reads (identical across schedulers);
// empty pops are timed too — a sweep that scans every queue before
// reporting emptiness is real tail latency, not noise.
func runLatency(name string, cfg Config) (p50, p99, p999 float64, err error) {
	s, err := prefilled(name, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	hists := make([]Histogram, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.Worker(w)
			hist := &hists[w]
			rng := xrand.New(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			for i := 0; i < cfg.LatencyOps; i++ {
				t0 := time.Now()
				_, v, ok := h.Pop()
				// Clamp below-clock-resolution samples to 1ns: a pop
				// faster than the monotonic tick must still count as a
				// positive latency, or coarse-timer platforms would
				// emit p50 = 0 and fail schema validation.
				d := uint64(time.Since(t0))
				if d == 0 {
					d = 1
				}
				hist.Record(d)
				if !ok {
					h.Push(rng.Uint64()>>(64-prioBits), i)
					continue
				}
				h.Push(rng.Uint64()>>(64-prioBits), v)
			}
		}(w)
	}
	wg.Wait()
	var merged Histogram
	for i := range hists {
		merged.Merge(&hists[i])
	}
	return float64(merged.Quantile(0.50)),
		float64(merged.Quantile(0.99)),
		float64(merged.Quantile(0.999)), nil
}

// Validate checks a report against the schema contract. CI runs it over
// the freshly generated artifact, and the unit tests run it over the
// committed BENCH_*.json files, so a drifting writer fails the build.
func Validate(r *Report) error {
	if r == nil {
		return fmt.Errorf("perfbench: nil report")
	}
	// Version-gated: committed version-1 through version-3 trajectory
	// files remain valid without the later fields; anything else must be
	// the current schema.
	if r.SchemaVersion < 1 || r.SchemaVersion > SchemaVersion {
		return fmt.Errorf("perfbench: schema_version = %d, want 1..%d", r.SchemaVersion, SchemaVersion)
	}
	if r.GoVersion == "" || r.GeneratedBy == "" {
		return fmt.Errorf("perfbench: missing go_version / generated_by")
	}
	if len(r.Serve) > 0 && r.SchemaVersion < 3 {
		return fmt.Errorf("perfbench: serve section requires schema >= 3, got %d", r.SchemaVersion)
	}
	if (len(r.Experiments) > 0 || r.Host != nil || len(r.Hosts) > 0) && r.SchemaVersion < 4 {
		return fmt.Errorf("perfbench: experiments/host sections require schema >= 4, got %d", r.SchemaVersion)
	}
	if len(r.Desim) > 0 && r.SchemaVersion < 5 {
		return fmt.Errorf("perfbench: desim section requires schema >= 5, got %d", r.SchemaVersion)
	}
	if len(r.Results) == 0 && len(r.Serve) == 0 && len(r.Experiments) == 0 && len(r.Desim) == 0 {
		return fmt.Errorf("perfbench: no results")
	}
	if len(r.Results) > 0 {
		if r.Workers <= 0 || r.Prefill <= 0 || r.OpsPerWorker <= 0 {
			return fmt.Errorf("perfbench: non-positive run parameters: %+v", r)
		}
		if r.SchemaVersion >= 2 && r.BatchSize <= 0 {
			return fmt.Errorf("perfbench: schema >= 2 report without batch_size")
		}
	}
	seen := make(map[string]bool, len(r.Results))
	for _, res := range r.Results {
		if res.Scheduler == "" {
			return fmt.Errorf("perfbench: result with empty scheduler name")
		}
		if seen[res.Scheduler] {
			return fmt.Errorf("perfbench: duplicate scheduler %q", res.Scheduler)
		}
		seen[res.Scheduler] = true
		if res.ThroughputOpsPerSec <= 0 || res.NsPerOp <= 0 {
			return fmt.Errorf("perfbench: %s: non-positive throughput", res.Scheduler)
		}
		if res.AllocsPerOp < 0 || res.BytesPerOp < 0 {
			return fmt.Errorf("perfbench: %s: negative allocation rate", res.Scheduler)
		}
		if r.SchemaVersion >= 2 {
			if res.BatchedThroughputOpsPerSec <= 0 || res.BatchedNsPerOp <= 0 {
				return fmt.Errorf("perfbench: %s: non-positive batched throughput", res.Scheduler)
			}
			if res.PopP50Ns <= 0 || res.PopP99Ns <= 0 || res.PopP999Ns <= 0 {
				return fmt.Errorf("perfbench: %s: missing pop-latency percentiles", res.Scheduler)
			}
			if res.PopP50Ns > res.PopP99Ns || res.PopP99Ns > res.PopP999Ns {
				return fmt.Errorf("perfbench: %s: non-monotone pop-latency percentiles (p50=%g p99=%g p99.9=%g)",
					res.Scheduler, res.PopP50Ns, res.PopP99Ns, res.PopP999Ns)
			}
		}
		if r.SchemaVersion >= 7 {
			if res.HoldThroughputOpsPerSec <= 0 || res.HoldNsPerOp <= 0 {
				return fmt.Errorf("perfbench: %s: non-positive hold throughput", res.Scheduler)
			}
		} else if res.Eliminations != 0 || res.Combines != 0 || res.HoldThroughputOpsPerSec != 0 {
			return fmt.Errorf("perfbench: %s: hold-facet fields require schema >= 7, got %d", res.Scheduler, r.SchemaVersion)
		}
	}
	seenServe := make(map[string]bool, len(r.Serve))
	for _, sr := range r.Serve {
		if err := validateServe(&sr); err != nil {
			return err
		}
		if seenServe[sr.Scheduler] {
			return fmt.Errorf("perfbench: duplicate serve scheduler %q", sr.Scheduler)
		}
		seenServe[sr.Scheduler] = true
	}
	for i := range r.Experiments {
		if err := validateFragment(&r.Experiments[i]); err != nil {
			return err
		}
	}
	seenDesim := make(map[string]bool, len(r.Desim))
	for i := range r.Desim {
		dr := &r.Desim[i]
		if err := validateDesim(dr, r.SchemaVersion); err != nil {
			return err
		}
		key := dr.Scheduler + "/" + dr.Model
		if seenDesim[key] {
			return fmt.Errorf("perfbench: duplicate desim run %q", key)
		}
		seenDesim[key] = true
	}
	return nil
}

// validateDesim checks one simulation run's internal consistency. The
// load-bearing rule is the safety claim: a scheduler with an exact
// rank-error bound, checked with a window at least that bound, must
// report zero causality violations — a violation there means either the
// scheduler or the window derivation is wrong, and the artifact must
// not be committable.
func validateDesim(dr *DesimResult, schemaVersion int) error {
	if dr.Scheduler == "" || dr.Model == "" {
		return fmt.Errorf("perfbench: desim result with empty scheduler/model name")
	}
	tag := dr.Scheduler + "/" + dr.Model
	// BoundSource (schema >= 6) must exist and agree with the fields it
	// summarizes; version-5 artifacts legitimately predate it.
	if schemaVersion >= 6 || dr.BoundSource != "" {
		switch dr.BoundSource {
		case "exact":
			if !dr.BoundExact || dr.RankBound < 0 || dr.Lookahead < 0 {
				return fmt.Errorf("perfbench: desim %s: bound_source exact contradicts bound_exact=%t rank_bound=%d lookahead=%d",
					tag, dr.BoundExact, dr.RankBound, dr.Lookahead)
			}
		case "expectation":
			if dr.BoundExact || dr.Lookahead < 0 {
				return fmt.Errorf("perfbench: desim %s: bound_source expectation contradicts bound_exact=%t lookahead=%d",
					tag, dr.BoundExact, dr.Lookahead)
			}
		case "unchecked":
			if dr.Lookahead >= 0 {
				return fmt.Errorf("perfbench: desim %s: bound_source unchecked but lookahead %d >= 0", tag, dr.Lookahead)
			}
		default:
			return fmt.Errorf("perfbench: desim %s: bound_source %q, want exact/expectation/unchecked", tag, dr.BoundSource)
		}
	}
	if dr.Workers < 1 {
		return fmt.Errorf("perfbench: desim %s: workers = %d", tag, dr.Workers)
	}
	if dr.Events == 0 {
		return fmt.Errorf("perfbench: desim %s: empty run", tag)
	}
	if dr.DurationNs <= 0 || dr.EventsPerSec <= 0 {
		return fmt.Errorf("perfbench: desim %s: non-positive duration/throughput", tag)
	}
	if dr.RankBound < -1 || dr.Lookahead < -1 {
		return fmt.Errorf("perfbench: desim %s: rank_bound/lookahead below -1", tag)
	}
	if dr.Lookahead >= 0 {
		if dr.MaxLead < 0 || dr.MeanLead < 0 {
			return fmt.Errorf("perfbench: desim %s: negative lookahead occupancy", tag)
		}
		if float64(dr.MaxLead) < dr.MeanLead {
			return fmt.Errorf("perfbench: desim %s: max_lead %d below mean_lead %g", tag, dr.MaxLead, dr.MeanLead)
		}
	} else if dr.Violations != 0 {
		return fmt.Errorf("perfbench: desim %s: violations reported by an unchecked run", tag)
	}
	if dr.BoundExact && dr.RankBound >= 0 && dr.Lookahead >= dr.RankBound && dr.Violations > 0 {
		return fmt.Errorf("perfbench: desim %s: %d causality violations with lookahead %d >= exact bound %d",
			tag, dr.Violations, dr.Lookahead, dr.RankBound)
	}
	for i, ten := range dr.PerTenant {
		if ten.Tenant != i {
			return fmt.Errorf("perfbench: desim %s: per_tenant[%d] has tenant id %d", tag, i, ten.Tenant)
		}
		if ten.Completed > 0 {
			if ten.P50 == 0 || ten.P99 == 0 || ten.P999 == 0 {
				return fmt.Errorf("perfbench: desim %s: tenant %d: missing sojourn percentiles", tag, i)
			}
			if ten.P50 > ten.P99 || ten.P99 > ten.P999 {
				return fmt.Errorf("perfbench: desim %s: tenant %d: non-monotone sojourn percentiles (p50=%d p99=%d p99.9=%d)",
					tag, i, ten.P50, ten.P99, ten.P999)
			}
		}
	}
	return nil
}

// validateServe checks one serving run's internal consistency — most
// importantly the zero-lost-tasks ledger (ingested = completed + shed):
// a committed trajectory artifact is thereby a machine-checked claim
// that the service dropped nothing it admitted.
func validateServe(sr *ServeResult) error {
	if sr.Scheduler == "" {
		return fmt.Errorf("perfbench: serve result with empty scheduler name")
	}
	if sr.OfferedRatePerSec <= 0 {
		return fmt.Errorf("perfbench: serve %s: non-positive offered rate", sr.Scheduler)
	}
	if sr.Workers < 2 {
		return fmt.Errorf("perfbench: serve %s: workers = %d, want >= 2 (ingest worker + pool)", sr.Scheduler, sr.Workers)
	}
	if sr.MinWorkers < 1 || sr.MinWorkers > sr.Workers-1 {
		return fmt.Errorf("perfbench: serve %s: min_workers = %d outside [1, %d]", sr.Scheduler, sr.MinWorkers, sr.Workers-1)
	}
	if sr.Tenants < 1 {
		return fmt.Errorf("perfbench: serve %s: tenants = %d", sr.Scheduler, sr.Tenants)
	}
	if sr.TenantSkew < 0 {
		return fmt.Errorf("perfbench: serve %s: negative tenant skew", sr.Scheduler)
	}
	if sr.Ingested != sr.Completed+sr.Shed {
		return fmt.Errorf("perfbench: serve %s: LOST TASKS: ingested %d != completed %d + shed %d",
			sr.Scheduler, sr.Ingested, sr.Completed, sr.Shed)
	}
	if sr.Ingested == 0 {
		return fmt.Errorf("perfbench: serve %s: empty run", sr.Scheduler)
	}
	if sr.DurationNs <= 0 || (sr.Completed > 0 && sr.ThroughputTasksPerSec <= 0) {
		return fmt.Errorf("perfbench: serve %s: non-positive duration/throughput", sr.Scheduler)
	}
	if sr.StallNs < 0 {
		return fmt.Errorf("perfbench: serve %s: negative stall time", sr.Scheduler)
	}
	if sr.MeanActiveWorkers < 0 || sr.MeanActiveWorkers > float64(sr.Workers) {
		return fmt.Errorf("perfbench: serve %s: mean_active_workers = %g outside [0, %d]",
			sr.Scheduler, sr.MeanActiveWorkers, sr.Workers)
	}
	if len(sr.PerTenant) != sr.Tenants {
		return fmt.Errorf("perfbench: serve %s: %d per-tenant entries for %d tenants",
			sr.Scheduler, len(sr.PerTenant), sr.Tenants)
	}
	var sumCompleted, sumShed uint64
	for i, ten := range sr.PerTenant {
		if ten.Tenant != i {
			return fmt.Errorf("perfbench: serve %s: per_tenant[%d] has tenant id %d", sr.Scheduler, i, ten.Tenant)
		}
		sumCompleted += ten.Completed
		sumShed += ten.Shed
		if ten.Completed > 0 {
			if ten.P50Ns <= 0 || ten.P99Ns <= 0 || ten.P999Ns <= 0 {
				return fmt.Errorf("perfbench: serve %s: tenant %d: missing latency percentiles", sr.Scheduler, i)
			}
			if ten.P50Ns > ten.P99Ns || ten.P99Ns > ten.P999Ns {
				return fmt.Errorf("perfbench: serve %s: tenant %d: non-monotone latency percentiles (p50=%g p99=%g p99.9=%g)",
					sr.Scheduler, i, ten.P50Ns, ten.P99Ns, ten.P999Ns)
			}
		}
	}
	if sumCompleted != sr.Completed || sumShed != sr.Shed {
		return fmt.Errorf("perfbench: serve %s: per-tenant totals (%d completed, %d shed) do not sum to run totals (%d, %d)",
			sr.Scheduler, sumCompleted, sumShed, sr.Completed, sr.Shed)
	}
	return nil
}

// Marshal renders the report as indented JSON with a trailing newline,
// the exact bytes committed as BENCH_*.json.
func Marshal(r *Report) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse is the inverse of Marshal, used by the schema tests.
func Parse(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: %w", err)
	}
	return &r, nil
}
