package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// makers enumerates every sequential queue implementation so each test
// exercises all of them identically.
func makers() map[string]func() Queue[int] {
	return map[string]func() Queue[int]{
		"dheap2":   func() Queue[int] { return NewDHeap[int](2) },
		"dheap4":   func() Queue[int] { return NewDHeap[int](4) },
		"dheap8":   func() Queue[int] { return NewDHeap[int](8) },
		"pairing":  func() Queue[int] { return NewPairingHeap[int]() },
		"skiplist": func() Queue[int] { return NewSeqSkipList[int](1) },
	}
}

func TestEmptyQueue(t *testing.T) {
	for name, mk := range makers() {
		q := mk()
		if q.Len() != 0 {
			t.Errorf("%s: new queue Len = %d", name, q.Len())
		}
		if q.Top() != InfPriority {
			t.Errorf("%s: empty Top = %d, want InfPriority", name, q.Top())
		}
		if _, _, ok := q.Pop(); ok {
			t.Errorf("%s: Pop on empty returned ok", name)
		}
	}
}

func TestSingleElement(t *testing.T) {
	for name, mk := range makers() {
		q := mk()
		q.Push(42, 7)
		if q.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", name, q.Len())
		}
		if q.Top() != 42 {
			t.Errorf("%s: Top = %d, want 42", name, q.Top())
		}
		p, v, ok := q.Pop()
		if !ok || p != 42 || v != 7 {
			t.Errorf("%s: Pop = (%d,%d,%v), want (42,7,true)", name, p, v, ok)
		}
		if _, _, ok := q.Pop(); ok {
			t.Errorf("%s: second Pop returned ok", name)
		}
	}
}

func TestSortedExtraction(t *testing.T) {
	for name, mk := range makers() {
		q := mk()
		rng := rand.New(rand.NewSource(99))
		const n = 2000
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			p := uint64(rng.Intn(500)) // force many duplicates
			want[i] = p
			q.Push(p, i)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := 0; i < n; i++ {
			if got := q.Top(); got != want[i] {
				t.Fatalf("%s: Top at step %d = %d, want %d", name, i, got, want[i])
			}
			p, _, ok := q.Pop()
			if !ok || p != want[i] {
				t.Fatalf("%s: Pop at step %d = (%d,%v), want %d", name, i, p, ok, want[i])
			}
		}
		if q.Len() != 0 {
			t.Errorf("%s: Len after draining = %d", name, q.Len())
		}
	}
}

func TestInterleavedPushPop(t *testing.T) {
	for name, mk := range makers() {
		q := mk()
		ref := NewDHeap[int](2) // reference
		if name == "dheap2" {
			ref = NewDHeap[int](4)
		}
		rng := rand.New(rand.NewSource(7))
		for step := 0; step < 5000; step++ {
			if rng.Intn(3) != 0 || q.Len() == 0 {
				p := uint64(rng.Intn(1000))
				q.Push(p, step)
				ref.Push(p, step)
			} else {
				gp, _, gok := q.Pop()
				wp, _, wok := ref.Pop()
				if gok != wok || gp != wp {
					t.Fatalf("%s: step %d: Pop = (%d,%v), want (%d,%v)", name, step, gp, gok, wp, wok)
				}
			}
			if q.Len() != ref.Len() {
				t.Fatalf("%s: Len mismatch %d vs %d", name, q.Len(), ref.Len())
			}
		}
	}
}

func TestQuickSortedProperty(t *testing.T) {
	for name, mk := range makers() {
		f := func(ps []uint16) bool {
			q := mk()
			for i, p := range ps {
				q.Push(uint64(p), i)
			}
			prev := uint64(0)
			for range ps {
				p, _, ok := q.Pop()
				if !ok || p < prev {
					return false
				}
				prev = p
			}
			_, _, ok := q.Pop()
			return !ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValuesPreserved(t *testing.T) {
	// Each (priority, value) pair pushed must come back exactly once.
	for name, mk := range makers() {
		q := mk()
		const n = 500
		for i := 0; i < n; i++ {
			q.Push(uint64(i%37), i)
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			_, v, ok := q.Pop()
			if !ok {
				t.Fatalf("%s: queue drained early at %d", name, i)
			}
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("%s: value %d duplicated or out of range", name, v)
			}
			seen[v] = true
		}
	}
}

func TestDHeapPopBatch(t *testing.T) {
	h := NewDHeap[int](4)
	for i := 20; i > 0; i-- {
		h.Push(uint64(i), i)
	}
	got := h.PopBatch(5, nil)
	if len(got) != 5 {
		t.Fatalf("PopBatch returned %d items", len(got))
	}
	for i, it := range got {
		if it.P != uint64(i+1) {
			t.Errorf("batch[%d].P = %d, want %d", i, it.P, i+1)
		}
	}
	if h.Len() != 15 {
		t.Errorf("Len after batch = %d, want 15", h.Len())
	}
	// Batch larger than remaining drains without error.
	rest := h.PopBatch(100, nil)
	if len(rest) != 15 {
		t.Errorf("final batch = %d items, want 15", len(rest))
	}
}

func TestPairingPopBatchAndReuse(t *testing.T) {
	h := NewPairingHeap[string]()
	h.Push(3, "c")
	h.Push(1, "a")
	h.Push(2, "b")
	got := h.PopBatch(2, nil)
	if len(got) != 2 || got[0].V != "a" || got[1].V != "b" {
		t.Fatalf("PopBatch = %v", got)
	}
	// Freelist reuse must not corrupt subsequent pushes.
	h.Push(0, "z")
	p, v, ok := h.Pop()
	if !ok || p != 0 || v != "z" {
		t.Fatalf("after reuse Pop = (%d,%q,%v)", p, v, ok)
	}
	p, v, ok = h.Pop()
	if !ok || p != 3 || v != "c" {
		t.Fatalf("final Pop = (%d,%q,%v)", p, v, ok)
	}
}

func TestDHeapClear(t *testing.T) {
	h := NewDHeapCap[int](4, 64)
	for i := 0; i < 50; i++ {
		h.Push(uint64(i), i)
	}
	h.Clear()
	if h.Len() != 0 || h.Top() != InfPriority {
		t.Fatal("Clear did not empty the heap")
	}
	h.Push(9, 9)
	if p, v, ok := h.Pop(); !ok || p != 9 || v != 9 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestDHeapArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDHeap(1) did not panic")
		}
	}()
	NewDHeap[int](1)
}

func TestSkipListManyLevels(t *testing.T) {
	s := NewSeqSkipList[int](123)
	const n = 10000
	for i := n; i > 0; i-- {
		s.Push(uint64(i), i)
	}
	for i := 1; i <= n; i++ {
		p, v, ok := s.Pop()
		if !ok || p != uint64(i) || v != i {
			t.Fatalf("Pop %d = (%d,%d,%v)", i, p, v, ok)
		}
	}
}

func benchQueue(b *testing.B, mk func() Queue[int]) {
	q := mk()
	const window = 1024
	for i := 0; i < window; i++ {
		q.Push(uint64(i*2654435761)%100000, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, v, _ := q.Pop()
		q.Push(p+uint64(i%64), v)
	}
}

// BenchmarkLocalQueue_* is the §4 "optimal local data structure" ablation:
// it measures the push/pop cycle cost of each candidate thread-local queue.
func BenchmarkLocalQueue_DHeap2(b *testing.B) {
	benchQueue(b, func() Queue[int] { return NewDHeap[int](2) })
}
func BenchmarkLocalQueue_DHeap4(b *testing.B) {
	benchQueue(b, func() Queue[int] { return NewDHeap[int](4) })
}
func BenchmarkLocalQueue_DHeap8(b *testing.B) {
	benchQueue(b, func() Queue[int] { return NewDHeap[int](8) })
}
func BenchmarkLocalQueue_Pairing(b *testing.B) {
	benchQueue(b, func() Queue[int] { return NewPairingHeap[int]() })
}
func BenchmarkLocalQueue_SkipList(b *testing.B) {
	benchQueue(b, func() Queue[int] { return NewSeqSkipList[int](1) })
}
