// Package sched defines the interfaces and shared plumbing implemented by
// every priority scheduler in this repository: the Stealing Multi-Queue
// (internal/core), the classic Multi-Queue family and RELD (internal/mq),
// OBIM/PMOD (internal/obim) and the SprayList (internal/spray).
//
// # Model
//
// A Scheduler is created for a fixed number of workers. Each worker
// goroutine obtains its own Worker handle once, up front, and then uses
// only that handle; handles carry all thread-local state (local queues,
// stolen-task buffers, insert/delete batches, RNG) and are not safe for
// concurrent use. This mirrors the paper's thread-affinity model without
// requiring OS-thread pinning.
//
// # Relaxation contract
//
// Pop is allowed to be relaxed in two ways: it may return a task that is
// not the global minimum (bounded in expectation by the paper's rank
// theorems for SMQ), and it may return ok=false even though tasks exist
// elsewhere (they may be buried in another worker's local buffer).
// Algorithms therefore must not treat a single failed Pop as termination;
// see the Pending counter.
package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/contend"
	"repro/internal/pq"
)

// Task is a prioritized task as surfaced by the bulk operations: the
// priority paired with the opaque payload. It aliases the internal
// pq.Item so scheduler fast paths can move batches between worker
// scratch buffers and their heaps without copying field by field.
type Task[T any] = pq.Item[T]

// Worker is a per-goroutine handle into a scheduler.
// Priorities are uint64 with lower = higher priority.
//
// # Bulk operations
//
// PushN and PopN are the batched counterparts of Push and Pop. They
// carry the same relaxation contract per task, but amortize the
// scheduler's fixed per-operation costs (queue sampling, lock
// acquisition, atomic counter traffic) over the whole batch — the
// lever behind both the SMQ's steal buffers and the engineered
// MultiQueue's operation buffers. A batch may be placed as a unit
// (one sampled queue, one lock acquisition), so the rank relaxation
// of a batched operation grows with the batch size; callers trade
// rank for throughput exactly as with the schedulers' internal
// buffers.
type Worker[T any] interface {
	// Push inserts a task.
	Push(p uint64, v T)
	// Pop removes some high-priority task. ok=false means this worker
	// found no task right now; it does NOT imply global emptiness.
	Pop() (p uint64, v T, ok bool)
	// PushN inserts a batch: ps[i] is the priority of vs[i]. The two
	// slices must have equal length; an empty batch is a no-op. The
	// scheduler does not retain either slice.
	PushN(ps []uint64, vs []T)
	// PopN removes up to len(dst) tasks into dst[:n] and returns n.
	// n == 0 with a non-empty dst means the same as a failed Pop: this
	// worker found nothing right now, NOT global emptiness. Tasks are
	// not guaranteed to arrive in priority order (each is individually
	// as relaxed as a scalar Pop).
	PopN(dst []Task[T]) int
}

// CheckPushN validates a PushN batch's parallel-slice lengths; every
// implementation calls it first so a mismatched call fails loudly at
// the boundary instead of corrupting a queue.
func CheckPushN(np, nv int) {
	if np != nv {
		panic(fmt.Sprintf("sched: PushN slice lengths differ: %d priorities, %d values", np, nv))
	}
}

// PushNLoop is the generic PushN fallback for schedulers without a
// batched insert fast path (OBIM already chunks internally, the
// SprayList has no per-operation lock to amortize): it simply loops
// the scalar Push, preserving the scalar counters and semantics.
func PushNLoop[T any](w Worker[T], ps []uint64, vs []T) {
	CheckPushN(len(ps), len(vs))
	for i, p := range ps {
		w.Push(p, vs[i])
	}
}

// PopNLoop is the generic PopN fallback: scalar Pops until dst is full
// or the worker comes up empty.
func PopNLoop[T any](w Worker[T], dst []Task[T]) int {
	n := 0
	for n < len(dst) {
		p, v, ok := w.Pop()
		if !ok {
			break
		}
		dst[n] = Task[T]{P: p, V: v}
		n++
	}
	return n
}

// Scheduler is a relaxed concurrent priority scheduler for a fixed set of
// workers.
type Scheduler[T any] interface {
	// Workers reports the number of worker slots.
	Workers() int
	// Worker returns the handle for worker w in [0, Workers()).
	// Each handle must be claimed by exactly one goroutine.
	Worker(w int) Worker[T]
	// Stats aggregates per-worker counters. It must only be called once
	// all worker goroutines have quiesced (e.g. after a WaitGroup join).
	Stats() Stats
}

// Stats aggregates scheduler-level counters across workers. All counts are
// totals since scheduler creation.
type Stats struct {
	Pushes     uint64 // tasks inserted
	Pops       uint64 // tasks successfully removed
	EmptyPops  uint64 // Pop calls that returned ok=false
	Steals     uint64 // successful steal operations (batches, not tasks)
	StolenTask uint64 // tasks obtained via stealing
	StealFails uint64 // steal attempts that found nothing to take
	LockFails  uint64 // failed try-lock acquisitions (lock-based schedulers)
	Remote     uint64 // queue accesses to a different (virtual) NUMA node

	// Eliminations counts pops served directly from an elimination
	// layer: a below-minimum insert and a concurrent pop met in an
	// exchange slot and cancelled out without touching the structure
	// (CBPQ's exchange array). Zero for schedulers without one.
	Eliminations uint64
	// Combines counts inserts that were merged into the structure in
	// bulk by a single combining rebuild instead of one structural
	// operation each (CBPQ's insertion buffer plus parked exchange
	// entries). Zero for schedulers without a combining path.
	Combines uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Pushes += other.Pushes
	s.Pops += other.Pops
	s.EmptyPops += other.EmptyPops
	s.Steals += other.Steals
	s.StolenTask += other.StolenTask
	s.StealFails += other.StealFails
	s.LockFails += other.LockFails
	s.Remote += other.Remote
	s.Eliminations += other.Eliminations
	s.Combines += other.Combines
}

// Counters is the per-worker, unsynchronized statistics block. Workers
// update their own Counters without atomics (each is owned by a single
// goroutine); Stats() reads them after quiescence. Trailing padding
// rounds each block up to a whole number of cache lines plus one, so
// adjacent workers' counters in the schedulers' contiguous counter
// slices never share a line: every Push/Pop increments one of these
// fields, and without the pad those increments would false-share —
// exactly the layout cost the contend package exists to eliminate.
type Counters struct {
	Stats
	_ [2*contend.CacheLineSize - unsafe.Sizeof(Stats{})%contend.CacheLineSize]byte
}

// SumCounters aggregates a slice of per-worker counters.
func SumCounters(cs []Counters) Stats {
	var total Stats
	for i := range cs {
		total.Add(cs[i].Stats)
	}
	return total
}

// Pending counts in-flight tasks for termination detection: algorithms
// increment before pushing a task and decrement after fully processing a
// popped task (including its follow-on pushes). The schedulers themselves
// never touch it. When Pending reaches zero no task exists anywhere — not
// in a queue, not in a local buffer, not being executed.
//
// # Emptiness vs quiescence
//
// A zero count alone means only EMPTINESS: no task exists RIGHT NOW.
// Whether that is also the end of the run depends on who can still
// create tasks. Pending therefore distinguishes two conditions:
//
//   - Done() — momentarily idle. Correct as a termination signal only
//     for run-to-completion workloads, where every task descends from
//     seeds registered before workers start: once the count hits zero
//     no source of new work remains. The graph drivers in
//     internal/algos are this shape.
//   - Quiesced() — drained AND closed. An open-loop service ingests
//     tasks from outside the worker set, so the count legitimately
//     hits zero between arrival bursts; a worker that exits on Done()
//     there abandons the stream early. The ingestion side must call
//     Close() after registering (Inc'ing) its final task, and workers
//     exit only on Quiesced(). internal/serve is this shape.
//
// Close() is a promise about future Incs from OUTSIDE the worker set:
// after Close, only workers may register new tasks, and only as
// follow-ons of tasks they are currently processing (the Inc of a
// follow-on precedes the parent's Dec, so the count cannot touch zero
// while such work exists). Under that protocol Quiesced() is stable:
// once it reports true no task exists and none can ever be created.
//
// # Delta batching
//
// Batched drivers may fold a whole batch's accounting into one atomic
// add: after popping k tasks, processing all of them, and collecting m
// follow-on tasks in a local buffer, a single Inc(m−k) immediately
// before the PushN that publishes the m tasks is equivalent to m
// scalar Incs and k scalar Decs. The direction of each half stays
// safe: the +m registers the collected tasks while they are still
// buffered (they count as in-flight the whole time), and the −k only
// retires tasks whose processing — including buffering their
// follow-ons — has fully completed. Pending therefore never dips to
// zero while work exists, at the cost of transiently over-counting,
// which merely makes idle workers re-poll.
type Pending struct {
	n      atomic.Int64
	closed atomic.Bool
}

// Inc registers delta new in-flight tasks.
func (p *Pending) Inc(delta int64) { p.n.Add(delta) }

// Dec retires one in-flight task.
func (p *Pending) Dec() { p.n.Add(-1) }

// Load returns the current in-flight count.
func (p *Pending) Load() int64 { return p.n.Load() }

// Done reports emptiness: no task exists right now. This is NOT a
// termination signal for streaming workloads — see the type docs.
func (p *Pending) Done() bool { return p.n.Load() == 0 }

// Close records that no further tasks will be registered from outside
// the worker set. It must be called after the Inc of the final external
// task (run-to-completion drivers close immediately after seeding).
// Closing is idempotent.
func (p *Pending) Close() { p.closed.Store(true) }

// Closed reports whether the external task stream has been closed.
func (p *Pending) Closed() bool { return p.closed.Load() }

// Quiesced reports termination for streaming workloads: the external
// stream is closed and no task remains anywhere. The closed flag is
// read first, so a true result cannot race with a late external Inc
// (Close happens after the final external Inc by contract).
func (p *Pending) Quiesced() bool { return p.closed.Load() && p.n.Load() == 0 }

// Backoff tier boundaries. The first few failed polls busy-pause
// (another worker is likely mid-push), the next tier yields the
// processor, and sustained idleness graduates to bounded sleeps so an
// idle worker costs ~0 CPU instead of burning a core. The sleep cap
// bounds the wake-up latency a sleeping worker adds when work arrives.
const (
	backoffSpinTier  = 6  // steps 1..6: busy pause, 2^step loads
	backoffYieldTier = 24 // steps 7..24: runtime.Gosched
	backoffSleepMin  = 20 * time.Microsecond
	backoffSleepMax  = time.Millisecond
)

// Backoff is a three-tier spin/yield/sleep backoff used by worker loops
// when Pop fails but Pending is nonzero. The zero value is ready.
//
// Earlier revisions spun on an empty `for { _ = i }` body — which the
// compiler is entitled to eliminate, making the spin tier back off by
// nothing — and degenerated to a bare Gosched loop past 8 steps,
// pinning a core at 100% whenever queues stayed empty (fatal for a
// long-running service between arrival bursts). The spin tier now
// issues atomic loads the compiler must keep, and sustained idleness
// sleeps with exponentially growing, bounded durations.
type Backoff struct {
	spins int
	// pause is the spin tier's load target: atomic loads of an own
	// field are real memory operations the compiler will not dead-code
	// eliminate, and the field sits in backoff-owner memory so the
	// spin touches no shared cache line.
	pause atomic.Uint64
}

// Wait performs one backoff step.
func (b *Backoff) Wait() {
	b.spins++
	switch {
	case b.spins <= backoffSpinTier:
		for i := 0; i < 1<<b.spins; i++ {
			_ = b.pause.Load()
		}
	case b.spins <= backoffYieldTier:
		runtime.Gosched()
	default:
		shift := b.spins - backoffYieldTier - 1
		d := backoffSleepMax
		if shift < 6 { // 20µs << 6 exceeds the 1ms cap
			d = min(backoffSleepMin<<shift, backoffSleepMax)
		}
		time.Sleep(d)
	}
}

// Sleeping reports whether the backoff has escalated to the sleep tier
// — the signal elastic worker pools use to consider parking a slot
// entirely instead of paying the wake-up latency tax per task burst.
func (b *Backoff) Sleeping() bool { return b.spins > backoffYieldTier }

// Reset clears the backoff after a successful Pop.
func (b *Backoff) Reset() { b.spins = 0 }
