package smq_test

import (
	"sync/atomic"
	"testing"

	smq "repro"
)

func TestProcessVisitsEveryTask(t *testing.T) {
	s := smq.NewStealingMQ[int](smq.SMQConfig{Workers: 4})
	const n = 5000
	var visited atomic.Int64
	smq.Process(s,
		func(w smq.Worker[int]) {
			for i := 0; i < n; i++ {
				w.Push(uint64(i), i)
			}
		},
		func(_ int, _ smq.Worker[int], _ *smq.Pending, _ uint64, _ int) {
			visited.Add(1)
		})
	if visited.Load() != n {
		t.Fatalf("visited %d tasks, want %d", visited.Load(), n)
	}
}

func TestProcessFollowOnTasks(t *testing.T) {
	// A binary expansion: each task below the cutoff spawns two children;
	// the total must be exactly 2^(depth+1)-1.
	s := smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: 4})
	const depth = 12
	var visited atomic.Int64
	smq.Process(s,
		func(w smq.Worker[uint32]) {
			w.Push(0, 1) // root at id 1, level = bit length
		},
		func(_ int, w smq.Worker[uint32], pending *smq.Pending, p uint64, id uint32) {
			visited.Add(1)
			if id < 1<<depth {
				pending.Inc(1)
				w.Push(p+1, id*2)
				pending.Inc(1)
				w.Push(p+1, id*2+1)
			}
		})
	want := int64(1<<(depth+1)) - 1
	if visited.Load() != want {
		t.Fatalf("visited %d nodes, want %d", visited.Load(), want)
	}
}

func TestProcessEmptySeed(t *testing.T) {
	s := smq.NewStealingMQ[int](smq.SMQConfig{Workers: 2})
	done := false
	smq.Process(s,
		func(w smq.Worker[int]) {},
		func(_ int, _ smq.Worker[int], _ *smq.Pending, _ uint64, _ int) {
			done = true
		})
	if done {
		t.Fatal("callback fired with no tasks")
	}
}
