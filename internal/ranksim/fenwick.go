package ranksim

// Fenwick is a binary indexed tree over [0, n) used to compute element
// ranks in the discrete SMQ process: present elements contribute 1, and
// the rank of a value is the count of smaller present values.
type Fenwick struct {
	tree []int
}

// NewFenwick returns a tree of size n with all counts zero.
func NewFenwick(n int) *Fenwick {
	return &Fenwick{tree: make([]int, n+1)}
}

// Add adds delta at index i (0-based).
func (f *Fenwick) Add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum over [0, i] (0-based, inclusive).
// PrefixSum(-1) is 0.
func (f *Fenwick) PrefixSum(i int) int {
	total := 0
	for i++; i > 0; i -= i & (-i) {
		total += f.tree[i]
	}
	return total
}

// RankOf returns the number of present elements strictly smaller than v.
func (f *Fenwick) RankOf(v int) int { return f.PrefixSum(v - 1) }
