// A*: corner-to-corner pathfinding on a synthetic road network with the
// coordinate heuristic, comparing the SMQ against the classic
// Multi-Queue. The heuristic makes priority order matter even more than
// in SSSP, which is where rank guarantees shine (paper §5).
package main

import (
	"flag"
	"fmt"
	"runtime"

	smq "repro"
)

func main() {
	side := flag.Int("side", 160, "grid side length")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	flag.Parse()

	g := smq.GenerateRoadGrid(*side, *side, 7)
	src, target := uint32(0), uint32(g.N-1)
	fmt.Printf("A* on %dx%d road grid (%d vertices), %d workers\n\n", *side, *side, g.N, *workers)

	// Ground truth from sequential Dijkstra.
	want := smq.DijkstraSeq(g, src)[target]

	for _, e := range []struct {
		name string
		mk   func() smq.Scheduler[uint32]
	}{
		{"SMQ", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"MultiQueue", func() smq.Scheduler[uint32] {
			return smq.NewClassicMultiQueue[uint32](*workers, 4)
		}},
		{"OBIM", func() smq.Scheduler[uint32] {
			return smq.NewOBIM[uint32](smq.OBIMConfig{Workers: *workers})
		}},
	} {
		d, res := smq.AStar(g, src, target, e.mk())
		status := "OK"
		if d != want {
			status = fmt.Sprintf("WRONG (want %d)", want)
		}
		fmt.Printf("%-12s distance=%-8d time=%-12v tasks=%-8d wasted=%-6d %s\n",
			e.name, d, res.Duration.Round(1000), res.Tasks, res.Wasted, status)
	}
}
