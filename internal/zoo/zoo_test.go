package zoo

import (
	"testing"
)

// TestLineupBuildsEverySpec constructs every registered scheduler at a
// small worker count, seeded and unseeded, and runs a push/pop smoke
// through worker 0.
func TestLineupBuildsEverySpec(t *testing.T) {
	for _, spec := range Lineup[int]() {
		for _, seed := range []uint64{0, 42} {
			s := spec.Build(2, seed)
			if s.Workers() != 2 {
				t.Fatalf("%s: Workers() = %d, want 2", spec.Name, s.Workers())
			}
			w := s.Worker(0)
			w.Push(7, 1)
			p, v, ok := w.Pop()
			if !ok || p != 7 || v != 1 {
				t.Fatalf("%s: pop = (%d,%d,%t), want (7,1,true)", spec.Name, p, v, ok)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup[int]("no-such-scheduler"); ok {
		t.Fatal("Lookup found a scheduler that does not exist")
	}
	sp, ok := Lookup[uint32]("klsm")
	if !ok || sp.Name != "klsm" {
		t.Fatalf("Lookup(klsm) = (%q, %t)", sp.Name, ok)
	}
}

func TestNamesUniqueAndOrdered(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty lineup")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" {
			t.Fatal("spec with empty name")
		}
		if seen[n] {
			t.Fatalf("duplicate spec name %q", n)
		}
		seen[n] = true
	}
	// The perfbench/serve default lineup order starts with the exact
	// baseline; keep that anchor stable for the recorded trajectory.
	if names[0] != "coarse" {
		t.Fatalf("lineup starts with %q, want coarse", names[0])
	}
}

// TestRankBounds pins the rank-bound contract: the coarse queue is
// exactly ordered, the k-LSM has the (P−1)·k+P worst case, the
// expectation-bound schedulers report a positive inexact bound, and the
// unbounded ones report -1.
func TestRankBounds(t *testing.T) {
	const w = 4
	bounds := map[string]struct {
		want  int64
		exact bool
	}{
		"coarse":    {0, true},
		"cbpq":      {0, true},
		"cbpq-elim": {0, true},
		"klsm":      {3*256 + 4, true},
		"obim":      {-1, false},
		"pmod":      {-1, false},
		"reld":      {-1, false},
	}
	for _, spec := range Lineup[int]() {
		b, exact := spec.RankBound(w)
		if want, ok := bounds[spec.Name]; ok {
			if b != want.want || exact != want.exact {
				t.Errorf("%s: RankBound(%d) = (%d, %t), want (%d, %t)",
					spec.Name, w, b, exact, want.want, want.exact)
			}
			continue
		}
		// Everything else carries a positive expectation-scale bound.
		if b <= 0 || exact {
			t.Errorf("%s: RankBound(%d) = (%d, %t), want positive inexact", spec.Name, w, b, exact)
		}
	}
	var none Spec[int]
	if b, exact := none.RankBound(1); b != -1 || exact {
		t.Errorf("nil Bound: RankBound = (%d, %t), want (-1, false)", b, exact)
	}
}

// TestConstructorsCoverConformanceList mirrors the zoogate check from
// the registry side: every constructor named by a spec is non-empty
// except the coarse strawman's.
func TestConstructorsCoverConformanceList(t *testing.T) {
	cons := Constructors()
	for name, c := range cons {
		if name == "coarse" {
			if c != "" {
				t.Errorf("coarse should wrap no root constructor, got %q", c)
			}
			continue
		}
		if c == "" {
			t.Errorf("spec %q names no root constructor", name)
		}
	}
}
