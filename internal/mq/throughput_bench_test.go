package mq

import (
	"fmt"
	"testing"

	"repro/internal/benchutil"
)

func BenchmarkThroughput_Classic(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchutil.Throughput(b, New[int](Classic(workers, 4)), 1<<12)
		})
	}
}

func BenchmarkThroughput_BatchBatch(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4, C: 4,
		Insert: InsertBatch, BatchInsert: 8,
		Delete: DeleteBatch, BatchDelete: 8}), 1<<12)
}

func BenchmarkThroughput_TemporalLocality(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4, C: 4,
		Insert: InsertTemporalLocality, PInsertChange: 1.0 / 64,
		Delete: DeleteTemporalLocality, PDeleteChange: 1.0 / 64}), 1<<12)
}

func BenchmarkThroughput_PeekTops(b *testing.B) {
	benchutil.Throughput(b, New[int](Config{Workers: 4, C: 4, PeekTops: true}), 1<<12)
}

func BenchmarkThroughput_RELD(b *testing.B) {
	benchutil.Throughput(b, New[int](RELD(4)), 1<<12)
}
