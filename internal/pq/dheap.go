package pq

// DHeap is a sequential d-ary min-heap. The paper's SMQ uses d = 4
// thread-local heaps (§4): a wider fan-out shortens the sift-down path and
// keeps more of each level in one cache line, which is why it outperforms
// the binary heap for scheduler-sized workloads (see the ablation benches).
//
// The zero value is not usable; construct with NewDHeap.
type DHeap[T any] struct {
	d     int
	items []Item[T]
}

// DefaultArity is the heap fan-out used by the paper's implementation.
const DefaultArity = 4

// NewDHeap returns an empty d-ary heap. It panics if d < 2.
func NewDHeap[T any](d int) *DHeap[T] {
	if d < 2 {
		panic("pq: heap arity must be >= 2")
	}
	return &DHeap[T]{d: d}
}

// NewDHeapCap returns an empty d-ary heap with preallocated capacity.
func NewDHeapCap[T any](d, capacity int) *DHeap[T] {
	h := NewDHeap[T](d)
	h.items = make([]Item[T], 0, capacity)
	return h
}

// Len reports the number of queued tasks.
func (h *DHeap[T]) Len() int { return len(h.items) }

// Top returns the minimum priority, or InfPriority when empty.
func (h *DHeap[T]) Top() uint64 {
	if len(h.items) == 0 {
		return InfPriority
	}
	return h.items[0].P
}

// Push inserts a task.
func (h *DHeap[T]) Push(p uint64, v T) {
	h.items = append(h.items, Item[T]{P: p, V: v})
	h.siftUp(len(h.items) - 1)
}

// PushItem inserts a prepared Item.
func (h *DHeap[T]) PushItem(it Item[T]) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum-priority task.
func (h *DHeap[T]) Pop() (p uint64, v T, ok bool) {
	if len(h.items) == 0 {
		return InfPriority, v, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	// Clear the vacated slot so payloads don't pin garbage.
	var zero Item[T]
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.siftDown(0)
	}
	return top.P, top.V, true
}

// PopBatch removes up to k minimum-priority tasks in priority order,
// appending them to dst, and returns the extended slice. This is the
// extractTopB / steal(k) primitive of Listings 3 and 4.
func (h *DHeap[T]) PopBatch(k int, dst []Item[T]) []Item[T] {
	for i := 0; i < k; i++ {
		p, v, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, Item[T]{P: p, V: v})
	}
	return dst
}

// Clear removes all tasks, retaining capacity.
func (h *DHeap[T]) Clear() {
	clear(h.items)
	h.items = h.items[:0]
}

func (h *DHeap[T]) siftUp(i int) {
	it := h.items[i]
	for i > 0 {
		parent := (i - 1) / h.d
		if h.items[parent].P <= it.P {
			break
		}
		h.items[i] = h.items[parent]
		i = parent
	}
	h.items[i] = it
}

func (h *DHeap[T]) siftDown(i int) {
	n := len(h.items)
	it := h.items[i]
	for {
		first := i*h.d + 1
		if first >= n {
			break
		}
		best := first
		end := first + h.d
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.items[c].P < h.items[best].P {
				best = c
			}
		}
		if h.items[best].P >= it.P {
			break
		}
		h.items[i] = h.items[best]
		i = best
	}
	h.items[i] = it
}

var _ Queue[int] = (*DHeap[int])(nil)
