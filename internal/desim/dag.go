package desim

import (
	"fmt"
	"sync/atomic"
)

// DAGConfig parameterizes the task-DAG workload.
type DAGConfig struct {
	// Layers and Width shape the layered DAG: Layers·Width tasks, one
	// event each. Zeros mean 256 layers of 256 tasks.
	Layers, Width int
	// Degree is each task's predecessor count in the previous layer
	// (edges chosen pseudo-randomly from Seed; duplicates allowed and
	// counted as parallel edges). 0 means 3.
	Degree int
	// Workers must match the Config.Workers of the run. Required.
	Workers int
	// Seed makes the DAG shape and task weights reproducible. 0 means 1.
	Seed uint64
}

func (c *DAGConfig) normalize() error {
	if c.Workers <= 0 {
		return fmt.Errorf("desim: DAGConfig.Workers = %d, must be positive", c.Workers)
	}
	if c.Layers <= 0 {
		c.Layers = 256
	}
	if c.Width <= 0 {
		c.Width = 256
	}
	if c.Degree <= 0 {
		c.Degree = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// dagShard is one worker's slice of the commutative outputs.
type dagShard struct {
	checksum uint64
	_        [56]byte
}

// DAG simulates a task graph: a layered DAG where a task becomes ready
// when its last predecessor finishes, and an event's priority is its
// critical-path depth (its layer) — the priority function the paper's
// task-scheduling discussion motivates: run the frontier in depth order
// and the makespan computation parallelizes.
//
// Order-independence is by construction: a task's event is pushed only
// after every predecessor has published its finish time (atomic-max
// into the task's ready cell, then an atomic in-degree decrement whose
// final decrement releases the event — the Go memory model's
// sequentially consistent atomics give the needed happens-before). The
// computed finish times, and therefore the makespan and checksum, are
// identical whatever order a relaxed scheduler executes ready tasks in.
type DAG struct {
	cfg DAGConfig
	// succ[v] lists v's successor task ids; indeg counts (multi-)edges
	// into each task; ready holds max predecessor finish; finish holds
	// the task's computed finish time.
	succ   [][]uint32
	indeg  []atomic.Int32
	ready  []atomic.Uint64
	finish []uint64
	shards []dagShard
	span   atomic.Uint64
}

// NewDAG builds a DAG model. Single-use, like Cluster.
func NewDAG(cfg DAGConfig) (*DAG, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	n := cfg.Layers * cfg.Width
	d := &DAG{
		cfg:    cfg,
		succ:   make([][]uint32, n),
		indeg:  make([]atomic.Int32, n),
		ready:  make([]atomic.Uint64, n),
		finish: make([]uint64, n),
		shards: make([]dagShard, cfg.Workers),
	}
	for l := 1; l < cfg.Layers; l++ {
		for i := 0; i < cfg.Width; i++ {
			v := l*cfg.Width + i
			for j := 0; j < cfg.Degree; j++ {
				p := (l-1)*cfg.Width + int(mix64(cfg.Seed^uint64(v)<<20^uint64(j))%uint64(cfg.Width))
				d.succ[p] = append(d.succ[p], uint32(v))
				d.indeg[v].Add(1)
			}
		}
	}
	return d, nil
}

func (d *DAG) Name() string { return "dag" }

// Horizon: event timestamps are layers, 0..Layers-1.
func (d *DAG) Horizon() uint64 { return uint64(d.cfg.Layers) }

// Events reports the exact event count: one per task.
func (d *DAG) Events() uint64 { return uint64(len(d.finish)) }

// weight is the task's deterministic execution cost in [1, 256].
func (d *DAG) weight(v int) uint64 {
	return mix64(d.cfg.Seed^0xd1b54a32d192ed03^uint64(v))%256 + 1
}

// Seed pushes every layer-0 task at depth 0.
func (d *DAG) Seed(push Pusher) {
	for i := 0; i < d.cfg.Width; i++ {
		push(Event{T: 0, Kind: evTask, A: uint32(i)})
	}
}

// Handle runs one task: finish = max(pred finishes) + weight, then
// publish to successors and release the ones whose in-degree hits zero
// at depth+1.
func (d *DAG) Handle(worker int, ev Event, push Pusher) {
	if ev.Kind != evTask {
		panic(fmt.Sprintf("desim: dag got unknown event kind %d", ev.Kind))
	}
	v := int(ev.A)
	f := d.ready[v].Load() + d.weight(v)
	d.finish[v] = f
	d.shards[worker].checksum += mix64(f ^ uint64(v))
	atomicMax(&d.span, f)
	for _, s := range d.succ[v] {
		atomicMax(&d.ready[s], f)
		if d.indeg[s].Add(-1) == 0 {
			push(Event{T: ev.T + 1, Kind: evTask, A: s})
		}
	}
}

func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Makespan is the DAG's critical-path completion time; identical across
// schedulers, it doubles as a human-auditable correctness witness next
// to the checksum.
func (d *DAG) Makespan() uint64 { return d.span.Load() }

// Checksum digests every task's finish time commutatively.
func (d *DAG) Checksum() uint64 {
	var sum uint64
	for i := range d.shards {
		sum += d.shards[i].checksum
	}
	return mix64(sum ^ d.span.Load())
}
