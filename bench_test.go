package smq

// Benchmarks regenerating every table and figure of the paper at
// laptop scale (one testing.B target per artifact; full parameter grids
// live behind `go run ./cmd/smqbench`). Each benchmark iteration runs a
// complete workload (e.g. one SSSP traversal), so ns/op is end-to-end
// time; the shape comparisons — who wins and by roughly what factor —
// are recorded against the paper in EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/algos"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/pq"
	"repro/internal/ranksim"
	"repro/internal/sched"
)

const benchWorkers = 4

var (
	benchGraphsOnce sync.Once
	benchRoad       *graph.CSR
	benchRMAT       *graph.CSR
)

func benchGraphs() (*graph.CSR, *graph.CSR) {
	benchGraphsOnce.Do(func() {
		benchRoad = graph.GenerateRoadGrid(128, 64, 42)
		benchRMAT = graph.GenerateRMAT(12, 16, graph.DefaultRMATParams(), 44)
	})
	return benchRoad, benchRMAT
}

func benchSSSP(b *testing.B, mk func() sched.Scheduler[uint32], g *graph.CSR) {
	b.Helper()
	src := g.MaxOutDegreeVertex()
	b.ReportAllocs()
	b.ResetTimer()
	var tasks uint64
	for i := 0; i < b.N; i++ {
		_, res := SSSP(g, src, mk())
		tasks += res.Tasks
	}
	b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
}

// --- Table 1 -----------------------------------------------------------

// BenchmarkTable1_Graphs measures generation of the four benchmark
// inputs (the Table 1 substitutes).
func BenchmarkTable1_Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gs := graph.StandardInputs(1)
		if len(gs) != 4 {
			b.Fatal("wrong input count")
		}
	}
}

// --- Tables 2-3 --------------------------------------------------------

// BenchmarkTable2_ClassicMQ_C sweeps the classic Multi-Queue's C
// multiplier on SSSP (Tables 2-3's dimension).
func BenchmarkTable2_ClassicMQ_C(b *testing.B) {
	road, _ := benchGraphs()
	for _, c := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("C=%d", c), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Classic(benchWorkers, c))
			}, road)
		})
	}
}

// --- Figure 1 / Figures 17-18 ------------------------------------------

// BenchmarkFig1_SMQ_Ablation sweeps the SMQ-heap's psteal × stealSize
// (Figure 1's two axes) on SSSP.
func BenchmarkFig1_SMQ_Ablation(b *testing.B) {
	road, _ := benchGraphs()
	for _, p := range []float64{0.5, 0.125, 0.03125} {
		for _, size := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("psteal=%.3g/steal=%d", p, size), func(b *testing.B) {
				benchSSSP(b, func() sched.Scheduler[uint32] {
					return core.NewStealingMQ[uint32](core.Config{
						Workers: benchWorkers, StealProb: p, StealSize: size})
				}, road)
			})
		}
	}
}

// --- Figures 19-20 ------------------------------------------------------

// BenchmarkFig19_SMQSkip_Ablation sweeps the skip-list SMQ variant.
func BenchmarkFig19_SMQSkip_Ablation(b *testing.B) {
	road, _ := benchGraphs()
	for _, p := range []float64{0.25, 0.0625} {
		for _, size := range []int{4, 16} {
			b.Run(fmt.Sprintf("psteal=%.3g/steal=%d", p, size), func(b *testing.B) {
				benchSSSP(b, func() sched.Scheduler[uint32] {
					return core.NewStealingMQSkipList[uint32](core.Config{
						Workers: benchWorkers, StealProb: p, StealSize: size})
				}, road)
			})
		}
	}
}

// --- Figure 2 / Figures 21-22 ------------------------------------------

// BenchmarkFig2_Comparison is the headline comparison: every scheduler on
// SSSP over the road and RMAT inputs.
func BenchmarkFig2_Comparison(b *testing.B) {
	road, rmat := benchGraphs()
	for _, spec := range harness.StandardSchedulers() {
		spec := spec
		b.Run("SSSP_road/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, road)
		})
		b.Run("SSSP_rmat/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, rmat)
		})
	}
}

// BenchmarkFig2_BFS covers the BFS panels of Figure 2 for the headline
// schedulers.
func BenchmarkFig2_BFS(b *testing.B) {
	road, rmat := benchGraphs()
	for _, spec := range harness.StandardSchedulers()[:4] {
		spec := spec
		for _, tc := range []struct {
			name string
			g    *graph.CSR
		}{{"road", road}, {"rmat", rmat}} {
			b.Run(tc.name+"/"+spec.Name, func(b *testing.B) {
				src := tc.g.MaxOutDegreeVertex()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					BFS(tc.g, src, spec.Make(benchWorkers, 0))
				}
			})
		}
	}
}

// BenchmarkFig2_AStar covers the A* panels.
func BenchmarkFig2_AStar(b *testing.B) {
	road, _ := benchGraphs()
	for _, spec := range harness.StandardSchedulers()[:4] {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				AStar(road, 0, uint32(road.N-1), spec.Make(benchWorkers, 0))
			}
		})
	}
}

// BenchmarkFig2_MST covers the MST panels.
func BenchmarkFig2_MST(b *testing.B) {
	road, _ := benchGraphs()
	for _, spec := range harness.StandardSchedulers()[:4] {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BoruvkaMST(road, spec.Make(benchWorkers, 0))
			}
		})
	}
}

// --- Figures 3-6 ---------------------------------------------------------

// BenchmarkFig3_OBIM_Tuning sweeps OBIM's delta and chunk size; the PMOD
// row shows the adaptive variant against the same grid.
func BenchmarkFig3_OBIM_Tuning(b *testing.B) {
	road, _ := benchGraphs()
	for _, delta := range []uint32{4, 10, 16} {
		for _, chunk := range []int{8, 64} {
			b.Run(fmt.Sprintf("OBIM/delta=%d/chunk=%d", delta, chunk), func(b *testing.B) {
				benchSSSP(b, func() sched.Scheduler[uint32] {
					return harness.OBIMSpec("OBIM", delta, chunk, false).Make(benchWorkers, 0)
				}, road)
			})
		}
	}
	b.Run("PMOD/adaptive", func(b *testing.B) {
		benchSSSP(b, func() sched.Scheduler[uint32] {
			return harness.OBIMSpec("PMOD", 10, 64, true).Make(benchWorkers, 0)
		}, road)
	})
}

// --- Figures 7-14 (Tables 4-11) -----------------------------------------

// BenchmarkFig7_MQ_TL_TL: temporal locality on both operations.
func BenchmarkFig7_MQ_TL_TL(b *testing.B) {
	road, _ := benchGraphs()
	for _, p := range []float64{1, 1.0 / 64, 1.0 / 1024} {
		b.Run(fmt.Sprintf("p=%.4g", p), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Config{Workers: benchWorkers, C: 4,
					Insert: mq.InsertTemporalLocality, PInsertChange: p,
					Delete: mq.DeleteTemporalLocality, PDeleteChange: p})
			}, road)
		})
	}
}

// BenchmarkFig9_MQ_TL_B: temporal-locality insert, batched delete.
func BenchmarkFig9_MQ_TL_B(b *testing.B) {
	road, _ := benchGraphs()
	for _, batch := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Config{Workers: benchWorkers, C: 4,
					Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
					Delete: mq.DeleteBatch, BatchDelete: batch})
			}, road)
		})
	}
}

// BenchmarkFig11_MQ_B_TL: batched insert, temporal-locality delete.
func BenchmarkFig11_MQ_B_TL(b *testing.B) {
	road, _ := benchGraphs()
	for _, batch := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Config{Workers: benchWorkers, C: 4,
					Insert: mq.InsertBatch, BatchInsert: batch,
					Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64})
			}, road)
		})
	}
}

// BenchmarkFig13_MQ_B_B: batching on both operations.
func BenchmarkFig13_MQ_B_B(b *testing.B) {
	road, _ := benchGraphs()
	for _, batch := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Config{Workers: benchWorkers, C: 4,
					Insert: mq.InsertBatch, BatchInsert: batch,
					Delete: mq.DeleteBatch, BatchDelete: batch})
			}, road)
		})
	}
}

// BenchmarkFig15_MQ_Best compares the four optimization combinations at
// their representative good settings (Figures 15-16).
func BenchmarkFig15_MQ_Best(b *testing.B) {
	road, _ := benchGraphs()
	combos := map[string]mq.Config{
		"TL_TL": {Workers: benchWorkers, C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64},
		"TL_B": {Workers: benchWorkers, C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteBatch, BatchDelete: 8},
		"B_TL": {Workers: benchWorkers, C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64},
		"B_B": {Workers: benchWorkers, C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteBatch, BatchDelete: 8},
	}
	for name, cfg := range combos {
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return mq.New[uint32](cfg) }, road)
		})
	}
}

// --- Engineered MultiQueue (Williams et al. 2021) -------------------------

// BenchmarkEMQ_Ablation sweeps the engineered MultiQueue's two
// engineering knobs — stickiness period and operation-buffer capacity —
// on SSSP (the `emq` experiment's axes). The stick=1/buf=1 corner
// degenerates to the classic per-operation Multi-Queue discipline.
func BenchmarkEMQ_Ablation(b *testing.B) {
	road, _ := benchGraphs()
	for _, stick := range []int{1, 16, 64} {
		for _, buf := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("stick=%d/buf=%d", stick, buf), func(b *testing.B) {
				benchSSSP(b, func() sched.Scheduler[uint32] {
					return emq.New[uint32](emq.Config{Workers: benchWorkers,
						Stickiness: stick, InsertBuffer: buf, DeleteBuffer: buf})
				}, road)
			})
		}
	}
}

// BenchmarkEMQ_Throughput compares the engineered MultiQueue's default
// configuration against the classic MQ and the SMQ on both graph shapes
// (the EMQ series added to the Figure 2 comparison).
func BenchmarkEMQ_Throughput(b *testing.B) {
	road, rmat := benchGraphs()
	specs := []harness.SchedulerSpec{
		harness.EMQSpec("EMQ", 16, 16, 0),
		{Name: "MQ Classic", Make: harness.ClassicMQBaseline},
		harness.SMQSpec("SMQ", 4, 1.0/8, 0),
	}
	for _, spec := range specs {
		spec := spec
		b.Run("SSSP_road/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, road)
		})
		b.Run("SSSP_rmat/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, rmat)
		})
	}
}

// --- k-LSM (Wimmer et al. 2015) --------------------------------------------

// BenchmarkKLSM_Ablation sweeps the k-LSM's relaxation bound k — the
// local-LSM capacity, its single knob and the `klsm` experiment's axis —
// on SSSP. Small k means constant spilling and global-lock traffic;
// large k trades rank quality for local, synchronization-free pops.
func BenchmarkKLSM_Ablation(b *testing.B) {
	road, _ := benchGraphs()
	for _, k := range []int{4, 64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return klsm.New[uint32](klsm.Config{Workers: benchWorkers, Relaxation: k})
			}, road)
		})
	}
}

// BenchmarkKLSM_Throughput compares the k-LSM's default configuration
// (k=256) against the classic MQ and the SMQ on both graph shapes — the
// paper's Figure 2 head-to-head with its strongest non-Multi-Queue
// baseline.
func BenchmarkKLSM_Throughput(b *testing.B) {
	road, rmat := benchGraphs()
	specs := []harness.SchedulerSpec{
		harness.KLSMSpec("kLSM", 256),
		{Name: "MQ Classic", Make: harness.ClassicMQBaseline},
		harness.SMQSpec("SMQ", 4, 1.0/8, 0),
	}
	for _, spec := range specs {
		spec := spec
		b.Run("SSSP_road/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, road)
		})
		b.Run("SSSP_rmat/"+spec.Name, func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] { return spec.Make(benchWorkers, 0) }, rmat)
		})
	}
}

// --- Geometric workloads (k-NN graph construction, Euclidean MST) ---------

const (
	benchPointCount = 10000
	benchKNN        = 8
)

var (
	benchPointsOnce sync.Once
	benchPtsUniform *PointSet
	benchPtsGauss   *PointSet
)

func benchPoints() (*PointSet, *PointSet) {
	benchPointsOnce.Do(func() {
		benchPtsUniform = GenerateUniformPoints(benchPointCount, 2, 46)
		benchPtsGauss = GenerateGaussianClusters(benchPointCount, 2, 16, 0.02, 47)
	})
	return benchPtsUniform, benchPtsGauss
}

// BenchmarkGeom_KNNGraph measures parallel k-NN graph construction —
// the first non-CSR workload family — for the headline schedulers on
// both point distributions.
func BenchmarkGeom_KNNGraph(b *testing.B) {
	uniform, gauss := benchPoints()
	for _, spec := range harness.StandardSchedulers()[:4] {
		spec := spec
		for _, tc := range []struct {
			name string
			ps   *PointSet
		}{{"uniform", uniform}, {"gauss", gauss}} {
			b.Run(tc.name+"/"+spec.Name, func(b *testing.B) {
				b.ReportAllocs()
				var tasks uint64
				for i := 0; i < b.N; i++ {
					_, res := KNNGraph(tc.ps, benchKNN, spec.Make(benchWorkers, 0))
					tasks += res.Tasks
				}
				b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
			})
		}
	}
}

// BenchmarkGeom_EMST measures the exact Euclidean MST (k-NN candidates
// + Boruvka contraction with the widen-radius fallback) end to end.
func BenchmarkGeom_EMST(b *testing.B) {
	uniform, gauss := benchPoints()
	wantUW, _ := EuclideanMSTSeq(uniform)
	wantGW, _ := EuclideanMSTSeq(gauss)
	for _, spec := range harness.StandardSchedulers()[:4] {
		spec := spec
		for _, tc := range []struct {
			name string
			ps   *PointSet
			want uint64
		}{{"uniform", uniform, wantUW}, {"gauss", gauss, wantGW}} {
			b.Run(tc.name+"/"+spec.Name, func(b *testing.B) {
				var tasks uint64
				for i := 0; i < b.N; i++ {
					w, _, res := EuclideanMST(tc.ps, benchKNN, spec.Make(benchWorkers, 0))
					if w != tc.want {
						b.Fatalf("EMST weight %d, want %d", w, tc.want)
					}
					tasks += res.Tasks
				}
				b.ReportMetric(float64(tasks)/float64(b.N), "tasks/op")
			})
		}
	}
}

// BenchmarkGeom_SeqBaselines records the sequential reference costs the
// parallel geometric runs are compared against.
func BenchmarkGeom_SeqBaselines(b *testing.B) {
	uniform, _ := benchPoints()
	b.Run("KNNGraphSeq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.KNNGraphSeq(uniform, benchKNN)
		}
	})
	b.Run("PrimEMSTSeq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			algos.PrimEMSTSeq(uniform)
		}
	})
}

// --- Tables 16-27 --------------------------------------------------------

// BenchmarkNUMA_K sweeps the virtual-NUMA weight divisor K for the SMQ.
func BenchmarkNUMA_K(b *testing.B) {
	road, _ := benchGraphs()
	for _, k := range []float64{1, 8, 256} {
		b.Run(fmt.Sprintf("K=%g", k), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return core.NewStealingMQ[uint32](core.Config{
					Workers: benchWorkers, NUMANodes: 2, NUMAWeightK: k})
			}, road)
		})
	}
}

// --- Theorem 1 ------------------------------------------------------------

// BenchmarkTheory_RankBounds runs the §3 discrete rank model across
// stealing probabilities, reporting the measured mean rank as a metric.
func BenchmarkTheory_RankBounds(b *testing.B) {
	for _, p := range []float64{0.5, 0.125} {
		b.Run(fmt.Sprintf("psteal=%.3g", p), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
					Queues: 32, Elements: 100000, StealProb: p, Batch: 1, Seed: uint64(i + 1)})
				mean = res.MeanRemovedRank
			}
			b.ReportMetric(mean, "meanRank")
		})
	}
}

// --- Design ablations (DESIGN.md §3) --------------------------------------

// BenchmarkAblation_HeapArity compares local-heap fan-outs inside the
// full SMQ (design decision 4: d = 4).
func BenchmarkAblation_HeapArity(b *testing.B) {
	road, _ := benchGraphs()
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			benchSSSP(b, func() sched.Scheduler[uint32] {
				return core.NewStealingMQ[uint32](core.Config{Workers: benchWorkers, HeapArity: d})
			}, road)
		})
	}
}

// mutexBuffer is the obvious lock-based alternative to the epoch/CAS
// stealing buffer, used only by the ablation benchmark below.
type mutexBuffer struct {
	mu    sync.Mutex
	items []pq.Item[int]
}

func (m *mutexBuffer) fill(items []pq.Item[int]) {
	m.mu.Lock()
	m.items = append(m.items[:0], items...)
	m.mu.Unlock()
}

func (m *mutexBuffer) steal(dst []pq.Item[int]) []pq.Item[int] {
	m.mu.Lock()
	dst = append(dst, m.items...)
	m.items = m.items[:0]
	m.mu.Unlock()
	return dst
}

// BenchmarkAblation_StealBuffer compares the paper's single-word
// (epoch, stolen) publication protocol against a mutex-guarded buffer on
// the publish→claim cycle (design decision 3). The epoch protocol pays
// one allocation per publish but never blocks thieves behind the owner.
func BenchmarkAblation_StealBuffer(b *testing.B) {
	batch := []pq.Item[int]{{P: 1, V: 1}, {P: 2, V: 2}, {P: 3, V: 3}, {P: 4, V: 4}}
	b.Run("epochCAS", func(b *testing.B) {
		q := core.NewBenchQueue(4)
		dst := make([]pq.Item[int], 0, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Refill(batch) // owner publishes
			dst = q.Steal(dst[:0])
			if len(dst) == 0 {
				b.Fatal("steal failed")
			}
		}
	})
	b.Run("mutex", func(b *testing.B) {
		var q mutexBuffer
		dst := make([]pq.Item[int], 0, 8)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.fill(batch)
			dst = q.steal(dst[:0])
			if len(dst) == 0 {
				b.Fatal("steal failed")
			}
		}
	})
}
