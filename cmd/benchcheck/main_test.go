package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestBenchcheckEndToEnd builds the tool and runs it over a valid and
// an invalid artifact, pinning both exit paths.
func TestBenchcheckEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	good := filepath.Join(dir, "good.json")
	goodJSON := `{
  "schema_version": 1,
  "generated_by": "test",
  "go_version": "go",
  "gomaxprocs": 1,
  "workers": 1,
  "prefill": 1,
  "ops_per_worker": 1,
  "results": [{"scheduler": "mq", "throughput_ops_per_sec": 1, "ns_per_op": 1}]
}`
	if err := os.WriteFile(good, []byte(goodJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, good).CombinedOutput(); err != nil {
		t.Fatalf("valid file rejected: %v\n%s", err, out)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, bad).Run(); err == nil {
		t.Fatal("invalid file accepted")
	}
}
