package core

import (
	"repro/internal/cskiplist"
	"repro/internal/pq"
)

// skipQueue adapts a concurrent skip list to the stealQueue contract for
// the SMQ-via-skip-lists variant (§4, Appendix D.3/D.4). Unlike the heap
// variant there is no separate stealing buffer: the list itself is safe
// for concurrent access, the thief-visible top is the true top, and a
// steal is a batched DeleteMin on the victim's list. The trade-off
// (measured in the Appendix D benchmarks) is synchronization cost on
// every local operation.
type skipQueue[T any] struct {
	list      *cskiplist.SkipList[T]
	stealSize int
}

func newSkipQueue[T any](seed uint64, stealSize int) *skipQueue[T] {
	return &skipQueue[T]{
		list:      cskiplist.New[T](seed),
		stealSize: stealSize,
	}
}

func (q *skipQueue[T]) PushLocal(p uint64, v T) { q.list.Insert(p, v) }

// PushLocalBatch has no cheaper primitive than repeated inserts: the
// list synchronizes per node regardless, so the batch win here is only
// the caller's amortized bookkeeping.
func (q *skipQueue[T]) PushLocalBatch(items []pq.Item[T]) {
	for _, it := range items {
		q.list.Insert(it.P, it.V)
	}
}

func (q *skipQueue[T]) PopLocal() (uint64, T, bool) { return q.list.DeleteMin() }

func (q *skipQueue[T]) PopLocalBatch(k int, dst []pq.Item[T]) []pq.Item[T] {
	return q.list.DeleteMinBatch(k, dst)
}

func (q *skipQueue[T]) TopLocal() uint64 { return q.list.Top() }

func (q *skipQueue[T]) Top() uint64 { return q.list.Top() }

func (q *skipQueue[T]) Steal(dst []pq.Item[T]) []pq.Item[T] {
	return q.list.DeleteMinBatch(q.stealSize, dst)
}

var _ stealQueue[int] = (*skipQueue[int])(nil)
