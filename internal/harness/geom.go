package harness

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/algos"
	"repro/internal/geom"
	"repro/internal/graph"
)

// The geom experiment: the geometric workload family (k-NN graph
// construction and Euclidean MST over point sets) run across the full
// scheduler lineup × point-distribution grid. These are the classic
// relaxed-priority-queue workloads of Rihani, Sanders and Dementiev
// (2014) — distance-priority expansion over an implicit graph — and the
// first non-CSR task-generation pattern in the harness.

// geomK is the neighbour count of the experiment's k-NN workloads.
const geomK = 8

// geomPointSet is one named point distribution of the grid.
type geomPointSet struct {
	Name string
	PS   *geom.PointSet
}

// geomDistributions builds the experiment's point-set grid at the given
// scale, seeded reproducibly like graph.StandardInputs.
func geomDistributions(scale int) []geomPointSet {
	if scale < 1 {
		scale = 1
	}
	n := 1500 * scale
	return []geomPointSet{
		{"UNIFORM", geom.UniformCube(n, 2, 46)},
		{"GAUSS", geom.GaussianClusters(n, 2, 16, 0.02, 47)},
		{"CUBE3D", geom.UniformCube(2*n/3, 3, 48)},
	}
}

// geomBaseline memoizes one distribution's sequential references so
// that, in-process, the expensive O(n^2) Prim runs once per
// distribution even though several cells need its answer. A shard
// running a single cell recomputes it — cells stay self-contained.
type geomBaseline struct {
	once    sync.Once
	knnWant *graph.CSR
	wantW   uint64
	wantE   int
}

func (b *geomBaseline) ensure(ps *geom.PointSet) {
	b.once.Do(func() {
		b.knnWant, _ = algos.KNNGraphSeq(ps, geomK)
		b.wantW, b.wantE = algos.PrimEMSTSeq(ps)
	})
}

// planGeom measures every standard scheduler on both geometric
// workloads over every distribution, one table per workload with a row
// per scheduler × distribution. Speedups are against the sequential
// baselines (kd-tree k-NN build, O(n^2) Prim); Euclidean MST results
// are always checked exactly against Prim (weight and edge count), and
// with cfg.Validate the k-NN graphs are also compared structurally
// against the sequential reference.
func planGeom(cfg RunConfig) (*Plan, error) {
	p := NewPlan("geom", cfg)
	dists := geomDistributions(p.Config.Scale)
	specs := StandardSchedulers()
	threads := p.Config.MaxThreads
	validate := p.Config.Validate

	type distRefs struct {
		seqKNN, seqPrim int
		knn, mst        []int
	}
	refs := make([]distRefs, len(dists))
	bases := make([]*geomBaseline, len(dists))
	for di := range dists {
		bases[di] = &geomBaseline{}
	}
	for di, d := range dists {
		d, base := d, bases[di]
		refs[di].seqKNN = p.AddCell(Cell{
			Kind: "seq", Key: "seq/knn/" + d.Name, Workload: "kNN " + d.Name, Threads: 1,
		}, func(Cell) (CellResult, error) {
			start := time.Now()
			base.ensure(d.PS) // timed: the kd-tree k-NN build dominates this cell
			return CellResult{DurationNs: time.Since(start).Nanoseconds()}, nil
		})
		refs[di].seqPrim = p.AddCell(Cell{
			Kind: "seq", Key: "seq/prim/" + d.Name, Workload: "EMST " + d.Name, Threads: 1,
		}, func(Cell) (CellResult, error) {
			start := time.Now()
			wantW, _ := algos.PrimEMSTSeq(d.PS)
			dur := time.Since(start)
			base.ensure(d.PS)
			return CellResult{DurationNs: dur.Nanoseconds(),
				Values: map[string]float64{"weight": float64(wantW)}}, nil
		})
		for _, spec := range specs {
			spec := spec
			refs[di].knn = append(refs[di].knn, p.AddCell(Cell{
				Kind: "measure", Key: measureKey("knn", d.Name, spec.Name, spec.Params, threads),
				Workload: "kNN " + d.Name, Scheduler: spec.Name, Params: spec.Params, Threads: threads,
			}, func(c Cell) (CellResult, error) {
				var best algos.Result
				for r := 0; r < c.Reps; r++ {
					got, res := algos.KNNGraph(d.PS, geomK, spec.Build(c.Threads, repSeed(c.Seed, r)))
					if validate {
						base.ensure(d.PS)
						if !reflect.DeepEqual(got, base.knnWant) {
							return CellResult{}, fmt.Errorf("geom: %s/%s: k-NN graph differs from sequential reference", d.Name, spec.Name)
						}
					}
					if r == 0 || res.Duration < best.Duration {
						best = res
					}
				}
				return CellResult{DurationNs: best.Duration.Nanoseconds(), Tasks: best.Tasks,
					Values: map[string]float64{"work": best.WorkIncrease(uint64(d.PS.N()))}}, nil
			}))
			refs[di].mst = append(refs[di].mst, p.AddCell(Cell{
				Kind: "measure", Key: measureKey("mst", d.Name, spec.Name, spec.Params, threads),
				Workload: "EMST " + d.Name, Scheduler: spec.Name, Params: spec.Params, Threads: threads,
			}, func(c Cell) (CellResult, error) {
				base.ensure(d.PS) // exactness check is unconditional for EMST
				var best algos.Result
				for r := 0; r < c.Reps; r++ {
					gotW, gotE, res := algos.EuclideanMST(d.PS, geomK, spec.Build(c.Threads, repSeed(c.Seed, r)))
					if gotW != base.wantW || gotE != base.wantE {
						return CellResult{}, fmt.Errorf("geom: %s/%s: EMST = (%d, %d), want (%d, %d)",
							d.Name, spec.Name, gotW, gotE, base.wantW, base.wantE)
					}
					if r == 0 || res.Duration < best.Duration {
						best = res
					}
				}
				return CellResult{DurationNs: best.Duration.Nanoseconds(), Tasks: best.Tasks,
					Values: map[string]float64{"work": best.WorkIncrease(uint64(2 * d.PS.N()))}}, nil
			}))
		}
	}

	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		knnTable := Table{
			Title: fmt.Sprintf("Geometric workloads — parallel k-NN graph construction (k=%d, %d threads; speedup vs sequential kd-tree build)",
				geomK, threads),
			Header: []string{"Distribution", "Scheduler", "Threads", "Time", "Speedup", "WorkIncrease"},
		}
		mstTable := Table{
			Title: fmt.Sprintf("Geometric workloads — Euclidean MST (k=%d candidates, %d threads; speedup vs sequential O(n^2) Prim)",
				geomK, threads),
			Header: []string{"Distribution", "Scheduler", "Threads", "Time", "Speedup", "WorkIncrease"},
		}
		for di, d := range dists {
			knnSeq := cellDur(rs[refs[di].seqKNN])
			primSeq := cellDur(rs[refs[di].seqPrim])
			for si, spec := range specs {
				k := rs[refs[di].knn[si]]
				knnTable.AddRow(d.Name, spec.Name, fmt.Sprint(threads),
					cellDur(k).Round(time.Microsecond).String(),
					fm(safeRatio(knnSeq, cellDur(k))), fm(k.Values["work"]))
				m := rs[refs[di].mst[si]]
				mstTable.AddRow(d.Name, spec.Name, fmt.Sprint(threads),
					cellDur(m).Round(time.Microsecond).String(),
					fm(safeRatio(primSeq, cellDur(m))), fm(m.Values["work"]))
			}
		}
		return []Table{knnTable, mstTable}, nil
	})
	return p, nil
}

// repSeed derives the seed of repetition r from the cell seed (rep 0
// uses the cell seed itself, matching single-rep runs).
func repSeed(seed uint64, r int) uint64 {
	if r == 0 || seed == 0 {
		return seed
	}
	return CellSeed(seed, r)
}
