package klsm

import (
	"testing"
	"unsafe"
)

// TestGlobalLSMLayout checks that the global LSM's two cross-worker
// contention points — the lock word and the peeked top — cannot share a
// cache line with each other, with the LSM body, or with the fields
// preceding the embedded globalLSM in KLSM (cfg.Relaxation is read by
// every Push; a spill's lock CAS must not invalidate it).
func TestGlobalLSMLayout(t *testing.T) {
	var k KLSM[int]
	cfgEnd := unsafe.Offsetof(k.cfg) + unsafe.Sizeof(k.cfg)
	muOff := unsafe.Offsetof(k.global) + unsafe.Offsetof(k.global.mu)
	topOff := unsafe.Offsetof(k.global) + unsafe.Offsetof(k.global.top)
	lOff := unsafe.Offsetof(k.global) + unsafe.Offsetof(k.global.l)
	if muOff-cfgEnd < 64 {
		t.Fatalf("global lock word only %d bytes past cfg, want >= 64", muOff-cfgEnd)
	}
	if topOff-muOff < 64 {
		t.Fatalf("peeked top only %d bytes past the lock word, want >= 64", topOff-muOff)
	}
	if lOff-topOff < 64 {
		t.Fatalf("LSM body only %d bytes past the peeked top, want >= 64", lOff-topOff)
	}
}
