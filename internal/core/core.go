// Package core implements the paper's primary contribution: the Stealing
// Multi-Queue (SMQ), a cache-efficient relaxed concurrent priority
// scheduler with probabilistic rank guarantees (§2.2, §4, Theorem 1).
//
// # Design
//
// Each worker owns one thread-local priority queue. Insertions are always
// local (queue affinity). Deletions are usually local too, but with
// probability StealProb the worker compares the top of a randomly chosen
// victim queue against its own top and, if the victim's is better, steals
// a whole batch of StealSize tasks (task batching). The surplus of a
// stolen batch is kept in a worker-local buffer and consumed before any
// further queue access. Theorem 1 shows this process keeps the expected
// rank of removed tasks at O(nB(1+γ)/p_steal · log((1+γ)/p_steal)).
//
// Two local-queue implementations are provided, as in §4:
//
//   - NewStealingMQ: sequential d-ary heaps with an attached stealing
//     buffer published through a single (epoch, stolen) atomic word
//     (Listing 4). The owner works on its heap; the buffer holds the
//     current top batch for thieves and is reclaimed by the owner when
//     its heap runs dry.
//   - NewStealingMQSkipList: concurrent skip lists as local queues;
//     stealing is a batched DeleteMin on the victim's list.
//
// # Memory-model note
//
// The paper's Listing 4 reads the steal buffer non-atomically and
// validates with an epoch afterwards (a seqlock). Under the Go memory
// model that read is a data race, so this implementation publishes each
// buffer refill as an immutable slice behind an atomic.Pointer and lets
// the (epoch, stolen) CAS confer ownership of the whole slice. The
// protocol is otherwise identical: one claimant per epoch, owner refills
// only after observing the stolen bit.
package core

import (
	"fmt"

	"repro/internal/contend"
	"repro/internal/numa"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Config parameterizes both SMQ variants. The zero value of each field
// selects the paper's default.
type Config struct {
	// Workers is the number of worker slots (and local queues). Required.
	Workers int
	// StealSize is the batch size for steals (STEAL_SIZE). Default 4.
	StealSize int
	// StealProb is p_steal, the probability that a delete first attempts
	// a steal. Default 1/8. Set negative for 0 (never steal eagerly;
	// stealing still happens when the local queue is empty).
	StealProb float64
	// HeapArity is the local heap fan-out d. Default 4. Ignored by the
	// skip-list variant.
	HeapArity int
	// Seed makes runs reproducible. Default derives per-worker seeds
	// from 1.
	Seed uint64
	// NUMANodes > 1 enables the virtual-NUMA weighted victim sampling of
	// §4 with weight divisor NUMAWeightK.
	NUMANodes int
	// NUMAWeightK is the remote-queue weight divisor K. Default 8 (the
	// paper's default configuration); only used when NUMANodes > 1.
	NUMAWeightK float64
	// StealTries bounds the number of victims probed when the local
	// queue is empty before Pop reports failure. Default 2·Workers.
	StealTries int
	// InsertBatch > 1 enables the paper's insert-buffering optimization
	// (§2.1 Opt. 1, also applied to the SMQ in §5): consecutive pushes
	// accumulate in a thread-local buffer that is flushed into the local
	// queue in bulk — at the latest at the worker's next Pop, so the
	// worker never misses its own work. Default 1 (off).
	InsertBatch int
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive and every set field within its documented
// domain (zero values select defaults; a negative StealProb is the
// documented "never steal eagerly" setting). New panics with exactly
// this error on an invalid configuration, so callers that must not
// panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.StealSize < 0 {
		return fmt.Errorf("core: Config.StealSize = %d, must be >= 0", c.StealSize)
	}
	if c.StealProb > 1 {
		return fmt.Errorf("core: Config.StealProb = %g, must be a probability <= 1", c.StealProb)
	}
	if c.HeapArity < 0 || c.HeapArity == 1 {
		return fmt.Errorf("core: Config.HeapArity = %d, must be 0 (default) or >= 2", c.HeapArity)
	}
	if c.NUMANodes < 0 {
		return fmt.Errorf("core: Config.NUMANodes = %d, must be >= 0", c.NUMANodes)
	}
	if c.NUMAWeightK < 0 {
		return fmt.Errorf("core: Config.NUMAWeightK = %g, must be >= 0", c.NUMAWeightK)
	}
	if c.StealTries < 0 {
		return fmt.Errorf("core: Config.StealTries = %d, must be >= 0", c.StealTries)
	}
	if c.InsertBatch < 0 {
		return fmt.Errorf("core: Config.InsertBatch = %d, must be >= 0", c.InsertBatch)
	}
	return nil
}

// withDefaults returns a copy with every zero-valued field replaced by
// its documented default. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.StealSize == 0 {
		c.StealSize = 4
	}
	if c.StealProb == 0 {
		c.StealProb = 1.0 / 8
	}
	if c.StealProb < 0 {
		c.StealProb = 0
	}
	if c.HeapArity == 0 {
		c.HeapArity = pq.DefaultArity
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NUMAWeightK == 0 {
		c.NUMAWeightK = 8
	}
	if c.StealTries == 0 {
		c.StealTries = 2 * c.Workers
	}
	if c.InsertBatch < 1 {
		c.InsertBatch = 1
	}
	return c
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	*c = c.withDefaults()
}

// stealQueue is the contract between the generic SMQ worker logic and the
// two local-queue implementations.
type stealQueue[T any] interface {
	// PushLocal inserts a task. Owner only.
	PushLocal(p uint64, v T)
	// PushLocalBatch inserts a whole run of tasks, paying the steal-
	// buffer replenish check once for the batch. Owner only; the slice
	// is not retained.
	PushLocalBatch(items []pq.Item[T])
	// PopLocal removes the owner-visible best local task, reclaiming the
	// owner's own steal buffer if the main structure is empty. Owner only.
	PopLocal() (uint64, T, bool)
	// PopLocalBatch appends up to k owner-visible tasks to dst (priority
	// order), reclaiming the owner's own steal buffer if the main
	// structure is empty. Owner only.
	PopLocalBatch(k int, dst []pq.Item[T]) []pq.Item[T]
	// TopLocal returns the owner's view of its best local priority.
	TopLocal() uint64
	// Top returns the priority visible to thieves (racy snapshot).
	Top() uint64
	// Steal attempts to take a batch, appending to dst. Any thread.
	Steal(dst []pq.Item[T]) []pq.Item[T]
}

// SMQ is the Stealing Multi-Queue scheduler. Construct with NewStealingMQ
// or NewStealingMQSkipList.
type SMQ[T any] struct {
	cfg      Config
	topo     numa.Topology
	queues   []stealQueue[T]
	workers  []smqWorker[T]
	counters []sched.Counters
}

// smqWorker is the per-goroutine handle. The RNG and NUMA sampler are
// embedded by value: both mutate on every operation, and as separate
// heap allocations two workers' generators could share a cache line;
// inside the padded worker struct they cannot.
type smqWorker[T any] struct {
	s   *SMQ[T]
	id  int
	q   stealQueue[T]
	rng xrand.Rand
	smp numa.Sampler
	c   *sched.Counters

	// stolen holds surplus tasks from the last stolen batch, consumed
	// front to back (they arrive in ascending priority order).
	stolen    []pq.Item[T]
	stolenIdx int

	// insBuf accumulates local pushes when InsertBatch > 1.
	insBuf []pq.Item[T]

	// bulk is the PushN zip scratch (priority/value pairs assembled
	// before the single PushLocalBatch); owned by the worker, reused in
	// place, zeroed after each batch so payloads are not retained.
	bulk []pq.Item[T]

	// Workers sit in one contiguous slice and mutate stolenIdx and the
	// buffer headers on every operation; a trailing cache line keeps
	// those hot words off the neighbouring worker's line.
	_ [contend.CacheLineSize]byte
}

// NewStealingMQ builds the heap-based SMQ (the paper's headline variant).
func NewStealingMQ[T any](cfg Config) *SMQ[T] {
	cfg.normalize()
	s := newSMQ[T](cfg)
	for i := range s.queues {
		s.queues[i] = newHeapQueue[T](cfg.HeapArity, cfg.StealSize)
	}
	s.initWorkers()
	return s
}

// NewStealingMQSkipList builds the skip-list SMQ variant (§4, App. D).
func NewStealingMQSkipList[T any](cfg Config) *SMQ[T] {
	cfg.normalize()
	s := newSMQ[T](cfg)
	for i := range s.queues {
		s.queues[i] = newSkipQueue[T](cfg.Seed+uint64(i)*0x9e37, cfg.StealSize)
	}
	s.initWorkers()
	return s
}

func newSMQ[T any](cfg Config) *SMQ[T] {
	return &SMQ[T]{
		cfg:      cfg,
		topo:     numa.New(cfg.Workers, max(cfg.NUMANodes, 1), 1),
		queues:   make([]stealQueue[T], cfg.Workers),
		workers:  make([]smqWorker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
}

func (s *SMQ[T]) initWorkers() {
	k := 1.0
	if s.cfg.NUMANodes > 1 {
		k = s.cfg.NUMAWeightK
	}
	for i := range s.workers {
		w := &s.workers[i]
		w.s = s
		w.id = i
		w.q = s.queues[i]
		w.rng.Seed(s.cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		w.smp = *numa.NewSampler(s.topo, i, k, &w.rng)
		w.c = &s.counters[i]
	}
}

// Workers reports the number of worker slots.
func (s *SMQ[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w. Each handle must be used by a
// single goroutine.
func (s *SMQ[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("core: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce. Remote
// counts are collected from the NUMA samplers.
func (s *SMQ[T]) Stats() sched.Stats {
	for i := range s.workers {
		s.counters[i].Remote = s.workers[i].smp.Remote
	}
	return sched.SumCounters(s.counters)
}

// Push inserts into the worker's local queue (Listing 2: insert is always
// local — queue affinity is what makes the SMQ cache-friendly). With
// InsertBatch > 1, pushes accumulate locally and enter the queue in bulk.
func (w *smqWorker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	if w.s.cfg.InsertBatch > 1 {
		w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: v})
		if len(w.insBuf) >= w.s.cfg.InsertBatch {
			w.flushInserts()
		}
		return
	}
	w.q.PushLocal(p, v)
}

// flushInserts drains the insert buffer into the local queue.
func (w *smqWorker[T]) flushInserts() {
	w.q.PushLocalBatch(w.insBuf)
	clear(w.insBuf)
	w.insBuf = w.insBuf[:0]
}

// PushN inserts a whole batch into the local queue (insert affinity is
// unchanged — the batch just pays the queue bookkeeping once): the
// pairs are zipped into the worker's scratch run and handed to the
// local queue as one PushLocalBatch. With InsertBatch > 1 the batch
// routes through the insert buffer instead, flushing at capacity.
func (w *smqWorker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	if w.s.cfg.InsertBatch > 1 {
		for i, p := range ps {
			w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: vs[i]})
		}
		if len(w.insBuf) >= w.s.cfg.InsertBatch {
			w.flushInserts()
		}
		return
	}
	w.bulk = w.bulk[:0]
	for i, p := range ps {
		w.bulk = append(w.bulk, pq.Item[T]{P: p, V: vs[i]})
	}
	w.q.PushLocalBatch(w.bulk)
	clear(w.bulk)
	w.bulk = w.bulk[:0]
}

// Pop implements Listing 2's delete():
//  1. drain previously stolen surplus tasks;
//  2. with probability p_steal, try to steal a better batch;
//  3. otherwise (or if the steal found nothing better) take locally;
//  4. if the local queue is empty, fall back to stealing anything.
func (w *smqWorker[T]) Pop() (uint64, T, bool) {
	if len(w.insBuf) > 0 {
		// Make our own buffered inserts visible before popping, so a
		// worker can never miss (or strand) its own work.
		w.flushInserts()
	}
	if w.stolenIdx < len(w.stolen) {
		it := w.stolen[w.stolenIdx]
		var zero pq.Item[T]
		w.stolen[w.stolenIdx] = zero
		w.stolenIdx++
		w.c.Pops++
		return it.P, it.V, true
	}
	if w.s.cfg.StealProb > 0 && w.rng.Bernoulli(w.s.cfg.StealProb) {
		if p, v, ok := w.trySteal(); ok {
			w.c.Pops++
			return p, v, true
		}
	}
	if p, v, ok := w.q.PopLocal(); ok {
		w.c.Pops++
		return p, v, true
	}
	// Local queue exhausted: scan for any victim with work. With a
	// single worker there is no victim to scan — randomVictim would
	// return our own id and every stealFrom would be a guaranteed no-op,
	// so skip straight to the failure report.
	if w.s.cfg.Workers > 1 {
		for try := 0; try < w.s.cfg.StealTries; try++ {
			if p, v, ok := w.stealFrom(w.randomVictim(), false); ok {
				w.c.Pops++
				return p, v, true
			}
		}
	}
	w.c.EmptyPops++
	var zero T
	return pq.InfPriority, zero, false
}

// PopN is the batched delete: previously stolen surplus is drained in
// one copy, the local heap is drained through a single PopLocalBatch
// that pays the steal-buffer replenish check once, and only when all
// of that comes up empty does the scalar fallback victim scan run.
//
// The steal coin keeps the SCALAR rate: one Bernoulli(p_steal) trial
// per delete slot not served from surplus, stopping at the first
// success (whose stolen batch then fills the following slots, exactly
// as the scalar loop's surplus does). Flipping once per batch instead
// would cut the steal rate by the batch size, and the steal comparison
// is the only mechanism pulling a worker off a locally-good but
// globally-stale frontier — measured on road-graph SSSP, a
// batch-level coin doubles the wasted work while the per-slot coin
// stays within a few percent of the scalar driver. The coin is two
// RNG multiplies; the costs worth amortizing (atomic loads, buffer
// checks, call layers) are all elsewhere.
func (w *smqWorker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	if len(w.insBuf) > 0 {
		w.flushInserts()
	}
	n := w.drainStolen(dst, 0)
	if n < len(dst) && w.s.cfg.StealProb > 0 {
		for i := n; i < len(dst); i++ {
			if !w.rng.Bernoulli(w.s.cfg.StealProb) {
				continue
			}
			if p, v, ok := w.trySteal(); ok {
				dst[n] = pq.Item[T]{P: p, V: v}
				n = w.drainStolen(dst, n+1)
				break // surplus serves the remaining slots
			}
			// Failed probe (victim's top not better): that slot is
			// served locally, and the later slots keep their own coin
			// trials, as in the scalar loop.
		}
	}
	if n < len(dst) {
		got := w.q.PopLocalBatch(len(dst)-n, dst[:n])
		if len(got) > n {
			// A reclaimed steal batch larger than the remaining capacity
			// can grow the append onto a fresh backing array; copy back
			// into the caller's slice (a no-op when nothing moved).
			copy(dst[n:], got[n:])
			n = len(got)
		}
	}
	if n == 0 && w.s.cfg.Workers > 1 {
		for try := 0; try < w.s.cfg.StealTries; try++ {
			if p, v, ok := w.stealFrom(w.randomVictim(), false); ok {
				dst[0] = pq.Item[T]{P: p, V: v}
				n = w.drainStolen(dst, 1)
				break
			}
		}
	}
	if n > 0 {
		w.c.Pops += uint64(n)
	} else {
		w.c.EmptyPops++
	}
	return n
}

// drainStolen copies stolen-surplus tasks into dst[n:], zeroing the
// vacated buffer slots, and returns the new fill count.
func (w *smqWorker[T]) drainStolen(dst []pq.Item[T], n int) int {
	if w.stolenIdx < len(w.stolen) {
		k := copy(dst[n:], w.stolen[w.stolenIdx:])
		clear(w.stolen[w.stolenIdx : w.stolenIdx+k])
		w.stolenIdx += k
		n += k
	}
	return n
}

// randomVictim samples a victim queue (NUMA-weighted when configured),
// excluding the worker's own queue.
func (w *smqWorker[T]) randomVictim() int {
	if w.s.cfg.Workers == 1 {
		return w.id
	}
	return w.smp.SampleOther(w.id)
}

// trySteal is Listing 2's trySteal(): probe one random victim and take a
// batch only if its visible top beats the local top.
func (w *smqWorker[T]) trySteal() (uint64, T, bool) {
	if w.s.cfg.Workers == 1 {
		return 0, *new(T), false
	}
	return w.stealFrom(w.randomVictim(), true)
}

// stealFrom takes a batch from victim. When compare is set, the steal
// only proceeds if the victim's top is strictly better than the local
// top (the two-choice discipline that drives the rank guarantee).
func (w *smqWorker[T]) stealFrom(victim int, compare bool) (uint64, T, bool) {
	if victim == w.id {
		return 0, *new(T), false
	}
	vq := w.s.queues[victim]
	if compare && vq.Top() >= w.q.TopLocal() {
		w.c.StealFails++
		return 0, *new(T), false
	}
	w.stolen = vq.Steal(w.stolen[:0]) // reuse backing array
	w.stolenIdx = 0
	if len(w.stolen) == 0 {
		w.c.StealFails++
		return 0, *new(T), false
	}
	w.c.Steals++
	w.c.StolenTask += uint64(len(w.stolen))
	it := w.stolen[0]
	w.stolenIdx = 1
	return it.P, it.V, true
}
