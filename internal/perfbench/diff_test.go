package perfbench

import (
	"strings"
	"testing"
)

func diffFixtures() (*Report, *Report) {
	old := &Report{
		SchemaVersion: SchemaVersion,
		Results: []Result{
			{Scheduler: "coarse", ThroughputOpsPerSec: 1000, BatchedThroughputOpsPerSec: 4000, PopP99Ns: 800},
			{Scheduler: "smq", ThroughputOpsPerSec: 8000, BatchedThroughputOpsPerSec: 20000, PopP99Ns: 300},
			{Scheduler: "obim", ThroughputOpsPerSec: 5000},
		},
		Desim: []DesimResult{
			{Scheduler: "coarse", Model: "cluster", EventsPerSec: 1e6},
		},
	}
	new_ := &Report{
		SchemaVersion: SchemaVersion,
		Results: []Result{
			// Throughput down 50% (regression), p99 up 3x (regression).
			{Scheduler: "coarse", ThroughputOpsPerSec: 500, BatchedThroughputOpsPerSec: 4100, PopP99Ns: 2400},
			// All within noise.
			{Scheduler: "smq", ThroughputOpsPerSec: 8200, BatchedThroughputOpsPerSec: 19000, PopP99Ns: 310},
			// New tier, absent from the old report.
			{Scheduler: "cbpq", ThroughputOpsPerSec: 900, BatchedThroughputOpsPerSec: 3000, PopP99Ns: 900},
		},
		Desim: []DesimResult{
			// 2x faster — flagged, but an improvement, not a regression.
			{Scheduler: "coarse", Model: "cluster", EventsPerSec: 2e6},
		},
	}
	return old, new_
}

func TestDiffFlagsAndDirections(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0.25)

	get := func(sched, metric string) DiffEntry {
		t.Helper()
		for _, e := range d.Entries {
			if e.Scheduler == sched && e.Metric == metric {
				return e
			}
		}
		t.Fatalf("no entry for %s/%s", sched, metric)
		return DiffEntry{}
	}

	if e := get("coarse", "throughput_ops_per_sec"); !e.Flagged || !e.Regression || e.Delta > -0.49 {
		t.Errorf("halved throughput not flagged as regression: %+v", e)
	}
	if e := get("coarse", "pop_latency_p99_ns"); !e.Flagged || !e.Regression {
		t.Errorf("tripled p99 not flagged as regression: %+v", e)
	}
	if e := get("coarse", "batched_throughput_ops_per_sec"); e.Flagged {
		t.Errorf("2.5%% batched change flagged: %+v", e)
	}
	if e := get("smq", "throughput_ops_per_sec"); e.Flagged {
		t.Errorf("2.5%% change flagged: %+v", e)
	}
	// Faster desim is flagged (big change) but not a regression.
	if e := get("coarse/cluster", "desim_events_per_sec"); !e.Flagged || e.Regression {
		t.Errorf("2x desim speedup misclassified: %+v", e)
	}

	// obim's old entry lacks the schema>=2 fields: only the scalar
	// throughput pairs, and only until the scheduler leaves the lineup.
	if got := len(d.OnlyOld); got != 1 || d.OnlyOld[0] != "results:obim" {
		t.Errorf("OnlyOld = %v, want [results:obim]", d.OnlyOld)
	}
	if got := len(d.OnlyNew); got != 1 || d.OnlyNew[0] != "results:cbpq" {
		t.Errorf("OnlyNew = %v, want [results:cbpq]", d.OnlyNew)
	}

	if got, want := len(d.Regressions()), 2; got != want {
		t.Errorf("got %d regressions, want %d: %+v", got, want, d.Regressions())
	}
	if got := len(d.Flagged()); got != 3 {
		t.Errorf("got %d flagged entries, want 3: %+v", got, d.Flagged())
	}
}

func TestDiffDefaultThresholdAndSorting(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0)
	if d.Threshold != DefaultDiffThreshold {
		t.Fatalf("threshold = %g, want default %g", d.Threshold, DefaultDiffThreshold)
	}
	for i := 1; i < len(d.Entries); i++ {
		a, b := d.Entries[i-1], d.Entries[i]
		if a.Scheduler > b.Scheduler || (a.Scheduler == b.Scheduler && a.Metric > b.Metric) {
			t.Fatalf("entries not sorted: %v before %v", a, b)
		}
	}
}

// TestDiffDisjointSections: a desim-only artifact against a
// microbenchmark-only artifact has nothing to pair — the diff must
// report lineup drift, not invent comparisons.
func TestDiffDisjointSections(t *testing.T) {
	old := &Report{Desim: []DesimResult{{Scheduler: "coarse", Model: "dag", EventsPerSec: 1e6}}}
	new_ := &Report{Results: []Result{{Scheduler: "coarse", ThroughputOpsPerSec: 1000}}}
	d := Diff(old, new_, 0)
	if len(d.Entries) != 0 {
		t.Fatalf("disjoint sections produced entries: %+v", d.Entries)
	}
	if len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("drift lists = %v / %v, want one key each", d.OnlyOld, d.OnlyNew)
	}
	out := d.Format(false)
	if !strings.Contains(out, "no comparable entries") {
		t.Fatalf("Format of empty diff missing placeholder:\n%s", out)
	}
}

func TestDiffFormat(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0.25)
	full := d.Format(false)
	for _, want := range []string{
		"!!  coarse", "pop_latency_p99_ns", "+200.0%",
		"-  results:obim only in old report",
		"+  results:cbpq only in new report",
	} {
		if !strings.Contains(full, want) {
			t.Errorf("Format missing %q:\n%s", want, full)
		}
	}
	flagged := d.Format(true)
	if strings.Contains(flagged, "smq") {
		t.Errorf("flagged-only format includes unflagged smq rows:\n%s", flagged)
	}
	if !strings.Contains(flagged, "coarse/cluster") {
		t.Errorf("flagged-only format missing flagged desim row:\n%s", flagged)
	}
}

// TestDiffHoldAndCounters: the hold facet pairs like the other
// throughputs, and the elimination/combining counters compare only when
// both artifacts carry them — with eliminations improving upward and
// combines improving downward.
func TestDiffHoldAndCounters(t *testing.T) {
	old := &Report{Results: []Result{{
		Scheduler: "cbpq", ThroughputOpsPerSec: 1000,
		HoldThroughputOpsPerSec: 400000, Eliminations: 1000, Combines: 4000,
	}}}
	new_ := &Report{Results: []Result{{
		Scheduler: "cbpq", ThroughputOpsPerSec: 1000,
		HoldThroughputOpsPerSec: 4_200_000, Eliminations: 390000, Combines: 900,
	}}}
	d := Diff(old, new_, 0.25)
	get := func(metric string) DiffEntry {
		t.Helper()
		for _, e := range d.Entries {
			if e.Metric == metric {
				return e
			}
		}
		t.Fatalf("no entry for %s", metric)
		return DiffEntry{}
	}
	if e := get("hold_throughput_ops_per_sec"); !e.Flagged || e.Regression {
		t.Errorf("10x hold speedup misclassified: %+v", e)
	}
	if e := get("eliminations"); !e.Flagged || e.Regression {
		t.Errorf("elimination-hit growth misclassified: %+v", e)
	}
	if e := get("combines"); !e.Flagged || e.Regression {
		t.Errorf("combining-miss drop misclassified: %+v", e)
	}
	// Reversed direction: counters regress.
	rev := Diff(new_, old, 0.25)
	var elimReg, combReg bool
	for _, e := range rev.Regressions() {
		switch e.Metric {
		case "eliminations":
			elimReg = true
		case "combines":
			combReg = true
		}
	}
	if !elimReg || !combReg {
		t.Errorf("reversed counters not regressions: %+v", rev.Regressions())
	}
	// Counters missing from one side pair nothing.
	noCounters := &Report{Results: []Result{{Scheduler: "cbpq", ThroughputOpsPerSec: 1000}}}
	for _, e := range Diff(noCounters, new_, 0.25).Entries {
		if e.Metric == "eliminations" || e.Metric == "combines" {
			t.Errorf("counter entry manufactured from one-sided data: %+v", e)
		}
	}
}

// TestDiffHardViolationRule: causality violations increasing on an
// exact-bound desim run is a hard error, present regardless of
// threshold and surfaced by HardErrors.
func TestDiffHardViolationRule(t *testing.T) {
	old := &Report{Desim: []DesimResult{{
		Scheduler: "cbpq", Model: "dag", EventsPerSec: 1e6,
		BoundSource: "exact", Violations: 0,
	}}}
	new_ := &Report{Desim: []DesimResult{{
		Scheduler: "cbpq", Model: "dag", EventsPerSec: 1e6,
		BoundSource: "exact", Violations: 3,
	}}}
	d := Diff(old, new_, 0.25)
	hard := d.HardErrors()
	if len(hard) != 1 || hard[0].Metric != "desim_causality_violations" || !hard[0].Regression {
		t.Fatalf("HardErrors = %+v, want one desim_causality_violations regression", hard)
	}
	if !strings.Contains(d.Format(true), "!!!") {
		t.Errorf("hard entry not marked in Format:\n%s", d.Format(true))
	}
	// Expectation-scale bounds stay informational: violations there are
	// expected behaviour, not broken claims.
	new_.Desim[0].BoundSource = "expectation"
	if h := Diff(old, new_, 0.25).HardErrors(); len(h) != 0 {
		t.Errorf("expectation-bound violations marked hard: %+v", h)
	}
	// No increase, no entry.
	new_.Desim[0].BoundSource = "exact"
	new_.Desim[0].Violations = 0
	if h := Diff(old, new_, 0.25).HardErrors(); len(h) != 0 {
		t.Errorf("unchanged violations marked hard: %+v", h)
	}
}

// TestDiffFilterWorkload: the -workload filter keeps exactly the
// facet's entries and preserves lineup drift.
func TestDiffFilterWorkload(t *testing.T) {
	old, new_ := diffFixtures()
	old.Results[0].HoldThroughputOpsPerSec = 100
	new_.Results[0].HoldThroughputOpsPerSec = 500
	d := Diff(old, new_, 0.25)
	f := d.FilterWorkload("hold")
	if len(f.Entries) != 1 || f.Entries[0].Metric != "hold_throughput_ops_per_sec" {
		t.Fatalf("hold filter kept %+v", f.Entries)
	}
	if len(f.OnlyOld) != len(d.OnlyOld) || len(f.OnlyNew) != len(d.OnlyNew) {
		t.Fatalf("filter dropped drift lists")
	}
	if f := d.FilterWorkload("desim"); len(f.Entries) != 1 || f.Entries[0].Metric != "desim_events_per_sec" {
		t.Fatalf("desim filter kept %+v", f.Entries)
	}
	if f := d.FilterWorkload("scalar"); len(f.Entries) != 2 {
		t.Fatalf("scalar filter kept %d entries, want 2: %+v", len(f.Entries), f.Entries)
	}
	for _, w := range Workloads() {
		if metricWorkload("nonesuch") == w {
			t.Fatalf("unknown metric mapped to %q", w)
		}
	}
}
