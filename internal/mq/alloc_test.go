//go:build !race

// testing.AllocsPerRun under the race detector measures the
// instrumentation's allocations, not the scheduler's; CI runs these
// through a dedicated non-race step.

package mq

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/xrand"
)

// warmWalk grows every internal structure to steady-state size: push a
// working set, drain half, so the random-walk pairs below never grow a
// heap or buffer again.
func warmWalk(w sched.Worker[int], rng *xrand.Rand) {
	for i := 0; i < 4096; i++ {
		w.Push(uint64(rng.Intn(1<<20)), i)
	}
	for i := 0; i < 2048; i++ {
		w.Pop()
	}
}

// TestSteadyStateAllocFree asserts the zero-alloc steady state for the
// Multi-Queue family: after warm-up, pop→push pairs must not touch the
// allocator at all — the cache-efficiency story of the paper (§4)
// assumes the hot path is heap-operation bound, and any per-op
// allocation would also defeat the padded layout by churning lines.
func TestSteadyStateAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"classic":     Classic(1, 4),
		"reld":        RELD(1),
		"batch_batch": {Workers: 1, C: 4, Insert: InsertBatch, Delete: DeleteBatch},
		"temporal":    {Workers: 1, C: 4, PInsertChange: 1.0 / 16, PDeleteChange: 1.0 / 16},
		"peek":        {Workers: 1, C: 4, PeekTops: true},
	} {
		t.Run(name, func(t *testing.T) {
			s := New[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			warmWalk(w, rng)
			allocs := testing.AllocsPerRun(2000, func() {
				p, v, ok := w.Pop()
				if !ok {
					w.Push(uint64(rng.Intn(1<<20)), 0)
					return
				}
				w.Push(p+uint64(rng.Intn(64)), v)
			})
			if allocs != 0 {
				t.Fatalf("steady-state pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestSteadyStateBatchAllocFree asserts the zero-alloc steady state of
// the Multi-Queue bulk operations across every delete policy: a
// PopN→PushN pair must not touch the allocator once the worker-owned
// zip scratch has grown (reused in place, vacated slots zeroed).
func TestSteadyStateBatchAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"classic":     Classic(1, 4),
		"reld":        RELD(1),
		"batch_batch": {Workers: 1, C: 4, Insert: InsertBatch, Delete: DeleteBatch},
		"peek":        {Workers: 1, C: 4, PeekTops: true},
	} {
		t.Run(name, func(t *testing.T) {
			s := New[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			warmWalk(w, rng)
			const batch = 16
			dst := make([]sched.Task[int], batch)
			ps := make([]uint64, 0, batch)
			vs := make([]int, 0, batch)
			runBatchPair(w, dst, &ps, &vs, rng) // warm the zip scratch
			allocs := testing.AllocsPerRun(2000, func() {
				runBatchPair(w, dst, &ps, &vs, rng)
			})
			if allocs != 0 {
				t.Fatalf("steady-state batch pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// runBatchPair is one steady-state PopN→PushN round: re-insert every
// popped task with a fresh priority, reseeding on an empty batch.
func runBatchPair(w sched.Worker[int], dst []sched.Task[int], ps *[]uint64, vs *[]int, rng *xrand.Rand) {
	k := w.PopN(dst)
	*ps, *vs = (*ps)[:0], (*vs)[:0]
	if k == 0 {
		*ps = append(*ps, uint64(rng.Intn(1<<20)))
		*vs = append(*vs, 0)
	} else {
		for i := 0; i < k; i++ {
			*ps = append(*ps, uint64(rng.Intn(1<<20)))
			*vs = append(*vs, dst[i].V)
		}
	}
	w.PushN(*ps, *vs)
}
