//go:build stress

package cskiplist

// Long-running -race stress for the concurrent skip list, gated behind
// the stress build tag (CI runs it in a dedicated job alongside the
// cbpq stress suite; it is too slow for the default -short test pass).
// The workload mixes Insert, DeleteMin, DeleteMinBatch and Spray from
// many goroutines and checks count conservation: everything inserted is
// deleted exactly once, and the final drain is empty.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pq"
	"repro/internal/xrand"
)

func stressRun(t *testing.T, goroutines, perG int) {
	t.Helper()
	s := New[uint64](7)
	total := goroutines * perG
	seen := make([]atomic.Int32, total)
	var inserted, deleted atomic.Int64

	record := func(v uint64) {
		if v >= uint64(total) {
			t.Errorf("implausible value %d", v)
			return
		}
		if seen[v].Add(1) != 1 {
			t.Errorf("value %d deleted more than once", v)
		}
		deleted.Add(1)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.New(uint64(g + 1))
			params := DefaultSprayParams(goroutines)
			dst := make([]pq.Item[uint64], 0, 9)
			next := 0
			for next < perG {
				switch rng.Intn(4) {
				case 0, 1: // keep inserts ahead of deletes on average
					v := uint64(g*perG + next)
					s.Insert(uint64(rng.Intn(1<<20)), v)
					inserted.Add(1)
					next++
				case 2:
					if _, v, ok := s.DeleteMin(); ok {
						record(v)
					}
				case 3:
					if rng.Intn(2) == 0 {
						dst = s.DeleteMinBatch(1+rng.Intn(9), dst[:0])
						for _, it := range dst {
							record(it.V)
						}
					} else if _, v, ok := s.Spray(params, rng); ok {
						record(v)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := inserted.Load(); got != int64(total) {
		t.Fatalf("inserted %d, want %d", got, total)
	}
	// Single-threaded drain of the survivors; priorities must come out
	// ascending.
	prev := uint64(0)
	for {
		p, v, ok := s.DeleteMin()
		if !ok {
			break
		}
		if p < prev {
			t.Fatalf("drain out of order: %d after %d", p, prev)
		}
		prev = p
		record(v)
	}
	if got := deleted.Load(); got != int64(total) {
		t.Fatalf("conservation: inserted %d, deleted %d", total, got)
	}
	for v := range seen {
		if seen[v].Load() != 1 {
			t.Fatalf("value %d deleted %d times", v, seen[v].Load())
		}
	}
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("drained list not empty: Len=%d", s.Len())
	}
}

func TestStressMixed(t *testing.T) {
	goroutines := runtime.GOMAXPROCS(0)
	if goroutines < 4 {
		goroutines = 4
	}
	stressRun(t, goroutines, 40000)
}

// TestStressOversubscribed squeezes many goroutines onto two Ps so they
// get preempted while holding node locks mid-unlink — interleavings an
// unoversubscribed run rarely produces.
func TestStressOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	stressRun(t, 3*prev+2, 15000)
}
