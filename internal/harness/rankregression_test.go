package harness

import (
	"math"
	"testing"

	"repro/internal/algos"
	"repro/internal/graph"
	"repro/internal/klsm"
)

// emqRankErrorBound documents the rank-quality envelope we hold the
// engineered MultiQueue to in lockstep (γ=0) mode. The EMQ's relaxation
// comes from three multiplicative sources: the two-choice sampling over
// m = C·workers queues (expected displacement O(m), as for the classic
// Multi-Queue), the deletion buffer (a refill locks in a run of up to
// DeleteBuffer tasks, delaying cross-queue re-comparison), and
// stickiness (up to Stickiness operations reuse a stale queue pair).
// The product m·DeleteBuffer·Stickiness bounds the window of tasks a
// worker can run ahead of the global minimum; the constant in front is
// empirical headroom (measured lockstep means sit well below a tenth of
// this at the probe's scale — see TestRankErrorRegression).
func emqRankErrorBound(workers, c, deleteBuffer, stickiness int) float64 {
	return float64(c*workers) * float64(deleteBuffer) * float64(stickiness)
}

// klsmRankErrorBound is the k-LSM's structural rank-error envelope in
// lockstep (γ=0) mode: a relaxed DeleteMin takes the local minimum only
// when it beats the global LSM's cached top, so the tasks it can skip
// are confined to the other P−1 workers' local LSMs — at most k each —
// plus up to P tasks already removed but still in flight. This is the
// (P−1)·k + P bound documented in the internal/klsm package comment,
// and unlike the EMQ envelope it is exact rather than empirical
// headroom: the local-capacity invariant is enforced on every Push
// (see klsm.TestRelaxationBoundHolds).
func klsmRankErrorBound(workers, k int) float64 {
	return float64((workers-1)*k + workers)
}

// TestRankErrorRegression pins the relative rank quality of the
// scheduler lineup on a fixed-seed lockstep workload so future scheduler
// refactors cannot silently destroy it:
//
//   - the EMQ's mean rank error must be finite and inside the documented
//     emqRankErrorBound envelope;
//   - the SMQ's mean rank error at steal batch B=1 must stay at or
//     below the classic Multi-Queue's. B=1 is the apples-to-apples
//     comparison: both schedulers then remove a single task per
//     two-choice decision, so the assertion compares the sampling
//     disciplines rather than batching (Theorem 1's bound scales
//     linearly in B; at the default B=4 the lockstep rank error is
//     legitimately ~4× the B=1 value and can exceed the classic MQ's).
//
// ProbeRankLockstep is deterministic for a fixed spec (single goroutine,
// seeded RNGs), so the assertions are stable.
func TestRankErrorRegression(t *testing.T) {
	const (
		workers = 4
		tasks   = 20000
	)

	const (
		emqStick = 16
		emqBuf   = 16
		emqC     = 2 // emq.Config default
	)
	emqStats := ProbeRankLockstep(EMQSpec("EMQ", emqStick, emqBuf, 0), workers, tasks)
	if math.IsNaN(emqStats.MeanDisplacement) || math.IsInf(emqStats.MeanDisplacement, 0) {
		t.Fatalf("EMQ mean rank error is not finite: %v", emqStats.MeanDisplacement)
	}
	bound := emqRankErrorBound(workers, emqC, emqBuf, emqStick)
	if emqStats.MeanDisplacement > bound {
		t.Errorf("EMQ mean rank error %.2f exceeds documented bound %.0f",
			emqStats.MeanDisplacement, bound)
	}
	if emqStats.MeanDisplacement <= 0 {
		t.Errorf("EMQ mean rank error %.2f should be positive (it is a relaxed queue)",
			emqStats.MeanDisplacement)
	}

	const klsmK = 256
	klsmStats := ProbeRankLockstep(KLSMSpec("kLSM", klsmK), workers, tasks)
	if math.IsNaN(klsmStats.MeanDisplacement) || math.IsInf(klsmStats.MeanDisplacement, 0) {
		t.Fatalf("k-LSM mean rank error is not finite: %v", klsmStats.MeanDisplacement)
	}
	klsmBound := klsmRankErrorBound(workers, klsmK)
	if klsmStats.MeanDisplacement > klsmBound {
		t.Errorf("k-LSM mean rank error %.2f exceeds structural bound %.0f",
			klsmStats.MeanDisplacement, klsmBound)
	}
	// The worst single pop is covered by the same structural argument.
	if float64(klsmStats.MaxDisplacement) > klsmBound {
		t.Errorf("k-LSM max rank error %d exceeds structural bound %.0f",
			klsmStats.MaxDisplacement, klsmBound)
	}

	// Strict mode (k=0) must be an exact queue: in lockstep the drain
	// comes out perfectly sorted, matching the coarse-locked baseline.
	strictStats := ProbeRankLockstep(KLSMSpec("kLSM strict", klsm.Strict), workers, tasks)
	if strictStats.MeanDisplacement != 0 || strictStats.MaxDisplacement != 0 ||
		strictStats.InversionFrac != 0 {
		t.Errorf("strict k-LSM is not exact: %+v", strictStats)
	}

	// The lock-free CBPQ claims linearizable exactness (rank bound 0):
	// a lockstep drain must come out perfectly sorted, at the default
	// and at a tiny chunk capacity that forces constant freeze/split
	// and first-chunk rebuilds.
	for _, chunkCap := range []int{0, 8} {
		cbpqStats := ProbeRankLockstep(CBPQSpec("CBPQ", chunkCap), workers, tasks)
		if cbpqStats.MeanDisplacement != 0 || cbpqStats.MaxDisplacement != 0 ||
			cbpqStats.InversionFrac != 0 {
			t.Errorf("CBPQ (chunk=%d) is not exact: %+v", chunkCap, cbpqStats)
		}
	}

	smqStats := ProbeRankLockstep(SMQSpec("SMQ", 1, 1.0/8, 0), workers, tasks)
	mqStats := ProbeRankLockstep(SchedulerSpec{Name: "MQ Classic", Make: ClassicMQBaseline},
		workers, tasks)
	if smqStats.MeanDisplacement > mqStats.MeanDisplacement {
		t.Errorf("SMQ mean rank error %.2f exceeds classic MQ's %.2f",
			smqStats.MeanDisplacement, mqStats.MeanDisplacement)
	}

	t.Logf("lockstep mean rank error: EMQ=%.2f (bound %.0f) kLSM=%.2f (bound %.0f) SMQ=%.2f MQ=%.2f",
		emqStats.MeanDisplacement, bound, klsmStats.MeanDisplacement, klsmBound,
		smqStats.MeanDisplacement, mqStats.MeanDisplacement)
}

// TestRankErrorRegressionBatched runs the lockstep probe through the
// bulk operations (PushN/PopN). A batch is taken as a unit, so each
// envelope gains a batch-sized term relative to the scalar bounds:
//
//   - the EMQ's refill serves up to batch tasks from one locked winner
//     — the same window its DeleteBuffer already opens, so with
//     batch <= DeleteBuffer the scalar envelope applies unchanged;
//   - the k-LSM may drain up to batch tasks from the global LSM under
//     one lock while each drained task can skip the usual
//     (P−1)·k tasks hiding in other locals, adding at most batch−1 to
//     the scalar bound per pop;
//   - the strict k-LSM (k = 0) must stay EXACT even through batches:
//     a batched pop from the global LSM under one lock is a prefix of
//     the true priority order, so the drain comes out perfectly
//     sorted — batching must never relax an exact configuration.
func TestRankErrorRegressionBatched(t *testing.T) {
	const (
		workers = 4
		tasks   = 20000
		batch   = 8
	)

	const (
		emqStick = 16
		emqBuf   = 16
		emqC     = 2
	)
	emqStats := ProbeRankLockstepBatched(EMQSpec("EMQ", emqStick, emqBuf, 0), workers, tasks, batch)
	if math.IsNaN(emqStats.MeanDisplacement) || math.IsInf(emqStats.MeanDisplacement, 0) {
		t.Fatalf("batched EMQ mean rank error is not finite: %v", emqStats.MeanDisplacement)
	}
	if bound := emqRankErrorBound(workers, emqC, emqBuf, emqStick); emqStats.MeanDisplacement > bound {
		t.Errorf("batched EMQ mean rank error %.2f exceeds documented bound %.0f",
			emqStats.MeanDisplacement, bound)
	}

	const klsmK = 256
	klsmStats := ProbeRankLockstepBatched(KLSMSpec("kLSM", klsmK), workers, tasks, batch)
	klsmBound := klsmRankErrorBound(workers, klsmK) + float64(batch-1)
	if klsmStats.MeanDisplacement > klsmBound {
		t.Errorf("batched k-LSM mean rank error %.2f exceeds structural bound %.0f",
			klsmStats.MeanDisplacement, klsmBound)
	}
	if float64(klsmStats.MaxDisplacement) > klsmBound {
		t.Errorf("batched k-LSM max rank error %d exceeds structural bound %.0f",
			klsmStats.MaxDisplacement, klsmBound)
	}

	strictStats := ProbeRankLockstepBatched(KLSMSpec("kLSM strict", klsm.Strict), workers, tasks, batch)
	if strictStats.MeanDisplacement != 0 || strictStats.MaxDisplacement != 0 ||
		strictStats.InversionFrac != 0 {
		t.Errorf("strict k-LSM is not exact through batches: %+v", strictStats)
	}

	// CBPQ must stay exact through the batch fast paths too: PopN's
	// single fetch-and-add claims a consecutive sorted run, so batching
	// adds no relaxation at all (unlike the k-LSM, whose batched bound
	// gains a batch-1 term).
	for _, chunkCap := range []int{0, 8} {
		cbpqStats := ProbeRankLockstepBatched(CBPQSpec("CBPQ", chunkCap), workers, tasks, batch)
		if cbpqStats.MeanDisplacement != 0 || cbpqStats.MaxDisplacement != 0 ||
			cbpqStats.InversionFrac != 0 {
			t.Errorf("batched CBPQ (chunk=%d) is not exact: %+v", chunkCap, cbpqStats)
		}
	}

	t.Logf("batched lockstep mean rank error: EMQ=%.2f kLSM=%.2f (bound %.0f)",
		emqStats.MeanDisplacement, klsmStats.MeanDisplacement, klsmBound)
}

// TestRankRegressionBatchedDriver runs a real workload end to end
// through the batched driver (algos.drive pops PopN batches, coalesces
// pushes into PushN, and delta-batches the Pending accounting) and
// pins its exactness: whatever the schedulers relax, SSSP must still
// equal Dijkstra for every lineup member.
func TestRankRegressionBatchedDriver(t *testing.T) {
	g := graph.GenerateRoadGrid(40, 40, 17)
	want, _ := algos.DijkstraSeq(g, 0)
	for _, spec := range AllSchedulers() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got, _ := algos.SSSP(g, 0, spec.Make(4, 0))
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
				}
			}
		})
	}
}
