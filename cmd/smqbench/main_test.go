package main

import "testing"

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{"8", []int{8}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"two", nil, true},
		{",,", nil, true},
	}
	for _, tc := range cases {
		got, err := parseThreads(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%q: expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
