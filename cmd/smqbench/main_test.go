package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/perfbench"
)

// TestRunJSONWritesValidReport drives the -json code path end to end on
// a tiny configuration: the written file must parse and satisfy the
// perfbench schema (the same validation CI applies to its artifact).
func TestRunJSONWritesValidReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := runJSON(path, perfbench.Config{
		Workers: 1, Prefill: 128, OpsPerWorker: 500,
		Schedulers: []string{"mq", "emq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := perfbench.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := perfbench.Validate(r); err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(r.Results))
	}
}

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{"8", []int{8}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"two", nil, true},
		{",,", nil, true},
	}
	for _, tc := range cases {
		got, err := parseThreads(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%q: expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}
