// Package obim implements the OBIM (Ordered By Integer Metric) scheduler
// of Nguyen, Lenharth and Pingali [20] and its adaptive PMOD extension by
// Yesil et al. [27] — the two scheduling heuristics the paper compares
// the SMQ against (§5, Appendix B).
//
// # OBIM
//
// Tasks are grouped into priority "bags": all tasks whose priority maps
// to the same bucket (priority >> Delta) are unordered relative to each
// other. A bag holds chunks — fixed-size task batches — on one stack per
// virtual NUMA node. Workers fill a thread-local push chunk and publish
// it to the bag for its bucket; they drain a thread-local pop chunk taken
// from the lowest non-empty bag, preferring their own node's stack and
// stealing chunks from other nodes otherwise. A global "minimum bucket"
// hint steers workers toward the best available priority class.
//
// OBIM's weakness — the reason the paper's SMQ beats it on SSSP-like
// workloads — is that Delta is workload-specific: too coarse wastes work
// on priority inversions, too fine empties the bags and serializes
// workers on the global map (Appendix B's Δ×chunk grids).
//
// # PMOD
//
// PMOD adapts Delta at runtime: when bags observed at refill time are
// nearly empty it merges priority classes (Delta+1); when bags grow far
// beyond the chunk size it splits them (Delta−1). Bags are keyed by the
// *range start* of their priority interval, (p>>Δ)<<Δ, so keys remain
// mutually ordered as Δ changes and old bags drain naturally.
//
// Neither scheduler provides rank guarantees; both are included as
// faithful-in-structure baselines for the evaluation harness.
package obim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// Config parameterizes OBIM and PMOD.
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// Delta is the priority shift defining buckets (bucket = p >> Delta).
	// Default 10; Appendix B sweeps it per benchmark.
	Delta uint32
	// ChunkSize is the number of tasks per chunk. Default 64 (Galois).
	ChunkSize int
	// Adaptive enables PMOD's dynamic Delta adjustment.
	Adaptive bool
	// AdaptInterval is the number of pops between PMOD adaptation checks
	// on the leader worker. Default 2048.
	AdaptInterval int
	// NUMANodes is the number of virtual sockets for per-node chunk
	// stacks. Default 1.
	NUMANodes int
	// PruneBags bounds the global bag map: when the number of bags
	// reaches this threshold, drained bags are retired and removed so
	// long runs (or PMOD's shifting Δ) cannot leak memory. Default 4096.
	PruneBags int
	// Seed makes runs reproducible.
	Seed uint64
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive, Delta a shift within a 64-bit priority
// (<= 63), and every set field within its documented domain (zero
// values select defaults). New panics with exactly this error on an
// invalid configuration, so callers that must not panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("obim: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.Delta > 63 {
		return fmt.Errorf("obim: Config.Delta = %d, must be <= 63 (a 64-bit priority shift)", c.Delta)
	}
	if c.ChunkSize < 0 {
		return fmt.Errorf("obim: Config.ChunkSize = %d, must be >= 0", c.ChunkSize)
	}
	if c.AdaptInterval < 0 {
		return fmt.Errorf("obim: Config.AdaptInterval = %d, must be >= 0", c.AdaptInterval)
	}
	if c.NUMANodes < 0 {
		return fmt.Errorf("obim: Config.NUMANodes = %d, must be >= 0", c.NUMANodes)
	}
	if c.PruneBags < 0 || c.PruneBags == 1 {
		return fmt.Errorf("obim: Config.PruneBags = %d, must be 0 (default) or >= 2", c.PruneBags)
	}
	return nil
}

// withDefaults returns a copy with every zero-valued field replaced by
// its documented default. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.Delta == 0 {
		c.Delta = 10
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 64
	}
	if c.AdaptInterval == 0 {
		c.AdaptInterval = 2048
	}
	if c.NUMANodes < 1 {
		c.NUMANodes = 1
	}
	if c.PruneBags == 0 {
		c.PruneBags = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	*c = c.withDefaults()
}

// chunk is a batch of same-bucket tasks. Chunks move between workers as a
// unit; items are drained LIFO (order inside a bag is irrelevant).
type chunk[T any] struct {
	items []pq.Item[T]
	next  *chunk[T]
}

// chunkStack is one NUMA node's stack of a bag's chunks.
type chunkStack[T any] struct {
	mu  sync.Mutex
	top *chunk[T]
	_   [40]byte
}

func (s *chunkStack[T]) pop() *chunk[T] {
	s.mu.Lock()
	c := s.top
	if c != nil {
		s.top = c.next
		c.next = nil
	}
	s.mu.Unlock()
	return c
}

// bag holds every task of one priority class.
type bag[T any] struct {
	key    uint64 // priority-range start: (p>>Δ)<<Δ at creation time
	stacks []chunkStack[T]
	size   atomic.Int64 // approximate task count, drives PMOD
	// retired is set (under all stack locks) when the pruner removes
	// the bag from the global map; no chunk may be added afterwards.
	retired atomic.Bool
}

// pushChunk links c onto the bag's stack for node, unless the bag has
// been retired — the check happens under the stack lock, which is the
// same lock the pruner holds while retiring, so a chunk can never land
// in a dropped bag.
func (b *bag[T]) pushChunk(node int, c *chunk[T]) bool {
	st := &b.stacks[node]
	st.mu.Lock()
	if b.retired.Load() {
		st.mu.Unlock()
		return false
	}
	c.next = st.top
	st.top = c
	st.mu.Unlock()
	return true
}

// Sched is the OBIM/PMOD scheduler.
type Sched[T any] struct {
	cfg  Config
	topo numa.Topology

	mu   sync.RWMutex
	bags map[uint64]*bag[T]
	keys []uint64 // sorted bag keys

	minHint atomic.Uint64 // lower bound candidate for lowest non-empty key
	delta   atomic.Uint32 // current Δ (mutable only when Adaptive)

	// PMOD statistics window.
	refills    atomic.Uint64
	sumBagSize atomic.Uint64
	deltaUps   atomic.Uint64
	deltaDowns atomic.Uint64
	pruned     atomic.Uint64

	workers  []worker[T]
	counters []sched.Counters
}

// New builds an OBIM scheduler (or PMOD when cfg.Adaptive).
func New[T any](cfg Config) *Sched[T] {
	cfg.normalize()
	s := &Sched[T]{
		cfg:      cfg,
		topo:     numa.New(cfg.Workers, cfg.NUMANodes, 1),
		bags:     make(map[uint64]*bag[T]),
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	s.delta.Store(cfg.Delta)
	s.minHint.Store(^uint64(0))
	for i := range s.workers {
		s.workers[i] = worker[T]{
			s:    s,
			id:   i,
			node: s.topo.NodeOfWorker(i),
			rng:  xrand.New(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15),
			c:    &s.counters[i],
			bags: make(map[uint64]*bag[T]),
		}
	}
	return s
}

// Workers reports the number of worker slots.
func (s *Sched[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w.
func (s *Sched[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("obim: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce.
func (s *Sched[T]) Stats() sched.Stats { return sched.SumCounters(s.counters) }

// Delta returns the current bucket shift (changes over time under PMOD).
func (s *Sched[T]) Delta() uint32 { return s.delta.Load() }

// DeltaAdjustments reports how often PMOD merged (up) and split (down).
func (s *Sched[T]) DeltaAdjustments() (up, down uint64) {
	return s.deltaUps.Load(), s.deltaDowns.Load()
}

// bucketKey maps a priority to its bag key under the current Δ.
func (s *Sched[T]) bucketKey(p uint64) uint64 {
	d := s.delta.Load()
	return p >> d << d
}

// bagFor returns (creating if needed) the bag for key.
func (s *Sched[T]) bagFor(key uint64) *bag[T] {
	s.mu.RLock()
	b := s.bags[key]
	s.mu.RUnlock()
	if b != nil {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b = s.bags[key]; b != nil {
		return b
	}
	if len(s.bags) >= s.cfg.PruneBags {
		s.pruneLocked()
	}
	b = &bag[T]{key: key, stacks: make([]chunkStack[T], s.topo.Nodes)}
	s.bags[key] = b
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= key })
	s.keys = append(s.keys, 0)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	return b
}

// pruneLocked retires and removes every fully drained bag. Caller holds
// the write lock. For each candidate, all of its stack locks are taken;
// only if every stack is empty is the bag retired — pushChunk checks the
// retired flag under the same stack lock, so no task can slip into a
// retired bag.
func (s *Sched[T]) pruneLocked() {
	keep := s.keys[:0]
	for _, key := range s.keys {
		b := s.bags[key]
		for i := range b.stacks {
			b.stacks[i].mu.Lock()
		}
		empty := true
		for i := range b.stacks {
			if b.stacks[i].top != nil {
				empty = false
				break
			}
		}
		if empty {
			b.retired.Store(true)
			delete(s.bags, key)
			s.pruned.Add(1)
		} else {
			keep = append(keep, key)
		}
		for i := len(b.stacks) - 1; i >= 0; i-- {
			b.stacks[i].mu.Unlock()
		}
	}
	// keep reuses s.keys' backing array; clear the tail for GC hygiene.
	tail := s.keys[len(keep):]
	for i := range tail {
		tail[i] = 0
	}
	s.keys = keep
}

// PrunedBags reports how many drained bags have been removed.
func (s *Sched[T]) PrunedBags() uint64 { return s.pruned.Load() }

// BagCount reports the current number of live bags.
func (s *Sched[T]) BagCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.bags)
}

// lowerHint lowers the global minimum-bucket hint to key if it improves it.
func (s *Sched[T]) lowerHint(key uint64) {
	for {
		cur := s.minHint.Load()
		if key >= cur || s.minHint.CompareAndSwap(cur, key) {
			return
		}
	}
}

// raiseHint raises the hint from the previously observed value — only if
// nobody lowered it meanwhile (a failed CAS means new better work exists).
func (s *Sched[T]) raiseHint(from, to uint64) {
	if to > from {
		s.minHint.CompareAndSwap(from, to)
	}
}

// worker is the per-goroutine handle.
type worker[T any] struct {
	s    *Sched[T]
	id   int
	node int
	rng  *xrand.Rand
	c    *sched.Counters

	bags map[uint64]*bag[T] // thread-local bag cache (mirrors the global map)

	pushKey   uint64
	pushChunk []pq.Item[T]

	popKey   uint64
	popChunk []pq.Item[T]

	popsSinceAdapt int
}

// Push buffers the task in the worker's current push chunk, publishing
// the chunk when the bucket changes or the chunk fills up.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	key := w.s.bucketKey(p)
	if len(w.pushChunk) > 0 && (key != w.pushKey || len(w.pushChunk) >= w.s.cfg.ChunkSize) {
		w.flushPush()
	}
	if len(w.pushChunk) == 0 {
		w.pushKey = key
		if w.pushChunk == nil {
			w.pushChunk = make([]pq.Item[T], 0, w.s.cfg.ChunkSize)
		}
	}
	w.pushChunk = append(w.pushChunk, pq.Item[T]{P: p, V: v})
	if len(w.pushChunk) >= w.s.cfg.ChunkSize {
		w.flushPush()
	}
}

// PushN / PopN use the generic scalar fallbacks: OBIM already moves
// tasks in chunk-sized batches internally (the push chunk is flushed
// per bucket, the pop chunk is refilled per bag grab), so an extra
// batching layer on top would only re-buffer already-buffered work.
func (w *worker[T]) PushN(ps []uint64, vs []T) { sched.PushNLoop[T](w, ps, vs) }

func (w *worker[T]) PopN(dst []sched.Task[T]) int { return sched.PopNLoop[T](w, dst) }

// cachedBag resolves a bag key through the thread-local mirror first
// (OBIM's "global map mirrored locally for cache efficiency"), dropping
// entries the pruner has retired.
func (w *worker[T]) cachedBag(key uint64) *bag[T] {
	if b, ok := w.bags[key]; ok {
		if !b.retired.Load() {
			return b
		}
		delete(w.bags, key)
	}
	b := w.s.bagFor(key)
	if len(w.bags) >= w.s.cfg.PruneBags {
		// The thread-local mirror must not outgrow the global map.
		clear(w.bags)
	}
	w.bags[key] = b
	return b
}

// flushPush publishes the open push chunk to its bag, retrying through
// the global map if the cached bag was retired under us.
func (w *worker[T]) flushPush() {
	if len(w.pushChunk) == 0 {
		return
	}
	c := &chunk[T]{items: w.pushChunk}
	for {
		b := w.cachedBag(w.pushKey)
		if b.pushChunk(w.node, c) {
			b.size.Add(int64(len(c.items)))
			break
		}
		// Retired between lookup and push: refresh and retry.
		delete(w.bags, w.pushKey)
	}
	w.s.lowerHint(w.pushKey)
	w.pushChunk = make([]pq.Item[T], 0, w.s.cfg.ChunkSize)
}

// Pop drains the worker's pop chunk, refilling it from the lowest
// non-empty bag when exhausted.
func (w *worker[T]) Pop() (uint64, T, bool) {
	if w.s.cfg.Adaptive {
		w.maybeAdapt()
	}
	for {
		if n := len(w.popChunk); n > 0 {
			it := w.popChunk[n-1]
			var zero pq.Item[T]
			w.popChunk[n-1] = zero
			w.popChunk = w.popChunk[:n-1]
			w.c.Pops++
			return it.P, it.V, true
		}
		if !w.refill(false) {
			// Our own unpublished push chunk may hold the only work.
			if len(w.pushChunk) > 0 {
				w.flushPush()
				continue
			}
			// Full scan ignoring the hint: the hint may legitimately
			// have been raised past a racing push (see raiseHint).
			if !w.refill(true) {
				w.c.EmptyPops++
				var zero T
				return pq.InfPriority, zero, false
			}
		}
	}
}

// refill grabs a chunk from the lowest non-empty bag, scanning keys in
// ascending order starting from the hint (or from zero when full is set).
func (w *worker[T]) refill(full bool) bool {
	s := w.s
	start := uint64(0)
	if !full {
		start = s.minHint.Load()
	}
	hintBefore := s.minHint.Load()

	s.mu.RLock()
	keys := s.keys
	idx := sort.Search(len(keys), func(i int) bool { return keys[i] >= start })
	for ; idx < len(keys); idx++ {
		b := s.bags[keys[idx]]
		c := b.stacks[w.node].pop()
		if c == nil {
			// Steal a chunk from another node's stack.
			for off := 1; off < len(b.stacks); off++ {
				n := w.node + off
				if n >= len(b.stacks) {
					n -= len(b.stacks)
				}
				if c = b.stacks[n].pop(); c != nil {
					w.c.Steals++
					w.c.StolenTask += uint64(len(c.items))
					w.c.Remote++
					break
				}
			}
		}
		if c != nil {
			// Capture the key before unlocking: bagFor mutates the keys
			// backing array in place under the write lock.
			key := keys[idx]
			s.mu.RUnlock()
			b.size.Add(-int64(len(c.items)))
			// Record the observed bag occupancy at refill time; these
			// samples drive PMOD's merge/split decisions.
			w.popKey = key
			s.refills.Add(1)
			sz := b.size.Load()
			if sz < 0 {
				sz = 0
			}
			s.sumBagSize.Add(uint64(sz) + uint64(len(c.items)))
			w.popChunk = c.items
			s.raiseHint(hintBefore, key)
			return true
		}
	}
	s.mu.RUnlock()
	return false
}

// maybeAdapt runs PMOD's Δ adjustment on the leader worker: merge
// (Δ+1) when refilled bags are nearly empty — workers are starving on
// fine-grained priority classes — and split (Δ−1) when bags balloon far
// beyond the chunk size, which destroys priority order.
func (w *worker[T]) maybeAdapt() {
	w.popsSinceAdapt++
	if w.id != 0 || w.popsSinceAdapt < w.s.cfg.AdaptInterval {
		return
	}
	w.popsSinceAdapt = 0
	s := w.s
	refills := s.refills.Swap(0)
	sum := s.sumBagSize.Swap(0)
	if refills == 0 {
		return
	}
	avg := float64(sum) / float64(refills)
	chunk := float64(s.cfg.ChunkSize)
	d := s.delta.Load()
	switch {
	case avg < chunk && d < 62:
		// Bags drain in under one chunk: classes too fine → merge.
		s.delta.Store(d + 1)
		s.deltaUps.Add(1)
	case avg > chunk*64 && d > 0:
		// Bags far exceed a chunk: classes too coarse → split.
		s.delta.Store(d - 1)
		s.deltaDowns.Add(1)
	}
}
