// Package sched defines the interfaces and shared plumbing implemented by
// every priority scheduler in this repository: the Stealing Multi-Queue
// (internal/core), the classic Multi-Queue family and RELD (internal/mq),
// OBIM/PMOD (internal/obim) and the SprayList (internal/spray).
//
// # Model
//
// A Scheduler is created for a fixed number of workers. Each worker
// goroutine obtains its own Worker handle once, up front, and then uses
// only that handle; handles carry all thread-local state (local queues,
// stolen-task buffers, insert/delete batches, RNG) and are not safe for
// concurrent use. This mirrors the paper's thread-affinity model without
// requiring OS-thread pinning.
//
// # Relaxation contract
//
// Pop is allowed to be relaxed in two ways: it may return a task that is
// not the global minimum (bounded in expectation by the paper's rank
// theorems for SMQ), and it may return ok=false even though tasks exist
// elsewhere (they may be buried in another worker's local buffer).
// Algorithms therefore must not treat a single failed Pop as termination;
// see the Pending counter.
package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/pq"
)

// Task is a prioritized task as surfaced by the bulk operations: the
// priority paired with the opaque payload. It aliases the internal
// pq.Item so scheduler fast paths can move batches between worker
// scratch buffers and their heaps without copying field by field.
type Task[T any] = pq.Item[T]

// Worker is a per-goroutine handle into a scheduler.
// Priorities are uint64 with lower = higher priority.
//
// # Bulk operations
//
// PushN and PopN are the batched counterparts of Push and Pop. They
// carry the same relaxation contract per task, but amortize the
// scheduler's fixed per-operation costs (queue sampling, lock
// acquisition, atomic counter traffic) over the whole batch — the
// lever behind both the SMQ's steal buffers and the engineered
// MultiQueue's operation buffers. A batch may be placed as a unit
// (one sampled queue, one lock acquisition), so the rank relaxation
// of a batched operation grows with the batch size; callers trade
// rank for throughput exactly as with the schedulers' internal
// buffers.
type Worker[T any] interface {
	// Push inserts a task.
	Push(p uint64, v T)
	// Pop removes some high-priority task. ok=false means this worker
	// found no task right now; it does NOT imply global emptiness.
	Pop() (p uint64, v T, ok bool)
	// PushN inserts a batch: ps[i] is the priority of vs[i]. The two
	// slices must have equal length; an empty batch is a no-op. The
	// scheduler does not retain either slice.
	PushN(ps []uint64, vs []T)
	// PopN removes up to len(dst) tasks into dst[:n] and returns n.
	// n == 0 with a non-empty dst means the same as a failed Pop: this
	// worker found nothing right now, NOT global emptiness. Tasks are
	// not guaranteed to arrive in priority order (each is individually
	// as relaxed as a scalar Pop).
	PopN(dst []Task[T]) int
}

// CheckPushN validates a PushN batch's parallel-slice lengths; every
// implementation calls it first so a mismatched call fails loudly at
// the boundary instead of corrupting a queue.
func CheckPushN(np, nv int) {
	if np != nv {
		panic(fmt.Sprintf("sched: PushN slice lengths differ: %d priorities, %d values", np, nv))
	}
}

// PushNLoop is the generic PushN fallback for schedulers without a
// batched insert fast path (OBIM already chunks internally, the
// SprayList has no per-operation lock to amortize): it simply loops
// the scalar Push, preserving the scalar counters and semantics.
func PushNLoop[T any](w Worker[T], ps []uint64, vs []T) {
	CheckPushN(len(ps), len(vs))
	for i, p := range ps {
		w.Push(p, vs[i])
	}
}

// PopNLoop is the generic PopN fallback: scalar Pops until dst is full
// or the worker comes up empty.
func PopNLoop[T any](w Worker[T], dst []Task[T]) int {
	n := 0
	for n < len(dst) {
		p, v, ok := w.Pop()
		if !ok {
			break
		}
		dst[n] = Task[T]{P: p, V: v}
		n++
	}
	return n
}

// Scheduler is a relaxed concurrent priority scheduler for a fixed set of
// workers.
type Scheduler[T any] interface {
	// Workers reports the number of worker slots.
	Workers() int
	// Worker returns the handle for worker w in [0, Workers()).
	// Each handle must be claimed by exactly one goroutine.
	Worker(w int) Worker[T]
	// Stats aggregates per-worker counters. It must only be called once
	// all worker goroutines have quiesced (e.g. after a WaitGroup join).
	Stats() Stats
}

// Stats aggregates scheduler-level counters across workers. All counts are
// totals since scheduler creation.
type Stats struct {
	Pushes     uint64 // tasks inserted
	Pops       uint64 // tasks successfully removed
	EmptyPops  uint64 // Pop calls that returned ok=false
	Steals     uint64 // successful steal operations (batches, not tasks)
	StolenTask uint64 // tasks obtained via stealing
	StealFails uint64 // steal attempts that found nothing to take
	LockFails  uint64 // failed try-lock acquisitions (lock-based schedulers)
	Remote     uint64 // queue accesses to a different (virtual) NUMA node
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Pushes += other.Pushes
	s.Pops += other.Pops
	s.EmptyPops += other.EmptyPops
	s.Steals += other.Steals
	s.StolenTask += other.StolenTask
	s.StealFails += other.StealFails
	s.LockFails += other.LockFails
	s.Remote += other.Remote
}

// Counters is the per-worker, unsynchronized statistics block. Workers
// update their own Counters without atomics (each is owned by a single
// goroutine); Stats() reads them after quiescence. A full trailing cache
// line of padding separates adjacent workers' counters in the schedulers'
// contiguous counter slices: every Push/Pop increments one of these
// fields, and without the pad those increments would false-share —
// exactly the layout cost the contend package exists to eliminate.
type Counters struct {
	Stats
	_ [contend.CacheLineSize]byte
}

// SumCounters aggregates a slice of per-worker counters.
func SumCounters(cs []Counters) Stats {
	var total Stats
	for i := range cs {
		total.Add(cs[i].Stats)
	}
	return total
}

// Pending counts in-flight tasks for termination detection: algorithms
// increment before pushing a task and decrement after fully processing a
// popped task (including its follow-on pushes). The schedulers themselves
// never touch it. When Pending reaches zero no task exists anywhere — not
// in a queue, not in a local buffer, not being executed — so workers may
// exit.
//
// # Delta batching
//
// Batched drivers may fold a whole batch's accounting into one atomic
// add: after popping k tasks, processing all of them, and collecting m
// follow-on tasks in a local buffer, a single Inc(m−k) immediately
// before the PushN that publishes the m tasks is equivalent to m
// scalar Incs and k scalar Decs. The direction of each half stays
// safe: the +m registers the collected tasks while they are still
// buffered (they count as in-flight the whole time), and the −k only
// retires tasks whose processing — including buffering their
// follow-ons — has fully completed. Pending therefore never dips to
// zero while work exists, at the cost of transiently over-counting,
// which merely makes idle workers re-poll.
type Pending struct {
	n atomic.Int64
}

// Inc registers delta new in-flight tasks.
func (p *Pending) Inc(delta int64) { p.n.Add(delta) }

// Dec retires one in-flight task.
func (p *Pending) Dec() { p.n.Add(-1) }

// Load returns the current in-flight count.
func (p *Pending) Load() int64 { return p.n.Load() }

// Done reports whether no tasks remain anywhere.
func (p *Pending) Done() bool { return p.n.Load() == 0 }

// Backoff is a bounded exponential spin/yield backoff used by worker
// loops when Pop fails but Pending is nonzero. The zero value is ready.
type Backoff struct {
	spins int
}

// Wait performs one backoff step.
func (b *Backoff) Wait() {
	b.spins++
	if b.spins < 8 {
		// A few busy spins: another worker is likely mid-push.
		for i := 0; i < 1<<b.spins; i++ {
			_ = i
		}
		return
	}
	runtime.Gosched()
}

// Reset clears the backoff after a successful Pop.
func (b *Backoff) Reset() { b.spins = 0 }
