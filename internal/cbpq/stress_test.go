//go:build stress

// Elevated-iteration soak tests for the lock-free interleavings, run
// by CI's dedicated stress job (`go test -race -tags stress`) so the
// main test job stays fast. See .github/workflows/ci.yml.

package cbpq

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// stressRun hammers one queue with a mixed scalar/batch workload and
// verifies conservation (pushed == popped + remaining) plus exact
// ascending order on the final drain.
func stressRun(t *testing.T, workers, perWorker, chunkCap int) {
	t.Helper()
	q := New[uint64](Config{Workers: workers, ChunkCap: chunkCap})
	var pushed, popped atomic.Uint64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := q.Worker(wi)
			rng := rand.New(rand.NewSource(int64(wi)*2654435761 + 1))
			dst := make([]sched.Task[uint64], 17)
			ps := make([]uint64, 0, 13)
			vs := make([]uint64, 0, 13)
			for i := 0; i < perWorker; i++ {
				switch rng.Intn(4) {
				case 0:
					w.Push(uint64(rng.Intn(1<<14)), uint64(i))
					pushed.Add(1)
				case 1:
					n := 1 + rng.Intn(13)
					ps, vs = ps[:0], vs[:0]
					for j := 0; j < n; j++ {
						ps = append(ps, uint64(rng.Intn(1<<14)))
						vs = append(vs, uint64(i*100+j))
					}
					w.PushN(ps, vs)
					pushed.Add(uint64(n))
				case 2:
					if _, _, ok := w.Pop(); ok {
						popped.Add(1)
					}
				default:
					popped.Add(uint64(w.PopN(dst[:1+rng.Intn(17)])))
				}
			}
		}(wi)
	}
	wg.Wait()

	w := q.Worker(0)
	prev := uint64(0)
	remaining := uint64(0)
	for {
		p, _, ok := w.Pop()
		if !ok {
			break
		}
		if p < prev {
			t.Fatalf("final drain out of order: %d after %d", p, prev)
		}
		prev = p
		remaining++
	}
	if pushed.Load() != popped.Load()+remaining {
		t.Fatalf("conservation: pushed=%d popped=%d remaining=%d",
			pushed.Load(), popped.Load(), remaining)
	}
	st := q.Stats()
	if st.Pushes != pushed.Load() || st.Pops != popped.Load()+remaining {
		t.Fatalf("stats drifted: %+v vs pushed=%d popped=%d", st, pushed.Load(), popped.Load()+remaining)
	}
}

// TestStressMixed soaks the default and a split-heavy tiny chunk
// capacity at full parallelism.
func TestStressMixed(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, cap_ := range []int{0, 8} {
		stressRun(t, workers, 60000, cap_)
	}
}

// TestStressOversubscribed runs more workers than GOMAXPROCS so
// preempted publication windows and helper races actually happen —
// progress bugs the spinlock schedulers never hit.
func TestStressOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	stressRun(t, 3*prev+2, 20000, 8)
}

// TestStressExactness soaks the timestamped displacement checker
// (exactnessRun, cbpq_test.go): concurrent pops must observe exact
// priority order while below-head inserts force freeze/rebuild races
// against partially drained heads. This is the concurrent counterpart
// of the single-threaded rank regression — it would catch a freeze
// protocol that lets a pop claim a slot while a smaller unclaimed slot
// is frozen and republished.
func TestStressExactness(t *testing.T) {
	poppers := runtime.GOMAXPROCS(0)
	if poppers < 4 {
		poppers = 4
	}
	for round := 0; round < 6; round++ {
		for _, cap_ := range []int{8, 64} {
			exactnessRun(t, poppers, 30000, 2, 15000, cap_, int64(round*100+cap_))
		}
	}
}

// TestStressElimination soaks the exchange layer specifically: every
// worker runs the decremental hold pattern (pop the minimum, reinsert
// just above it — always below-head), so pushes and pops collide in the
// exchange array constantly, with slot recycling, withdraw-on-freeze,
// reservation flaps, and combining rebuilds all racing. Conservation is
// checked at the end, and the run asserts the elimination path actually
// fired — a protocol change that silently routed everything through buf
// would soak nothing.
func TestStressElimination(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, cap_ := range []int{8, 0} {
		q := New[uint64](Config{Workers: workers, ChunkCap: cap_})
		var pushed, popped atomic.Uint64
		seed := q.Worker(0)
		for i := 0; i < 4096; i++ {
			seed.Push(uint64(100000+i*7), uint64(i))
			pushed.Add(1)
		}
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := q.Worker(wi)
				rng := rand.New(rand.NewSource(int64(wi)*40503 + 3))
				for i := 0; i < 40000; i++ {
					p, v, ok := w.Pop()
					if !ok {
						continue
					}
					popped.Add(1)
					// Re-insert just above the popped minimum: below the
					// (risen) head minimum with high probability.
					w.Push(p+uint64(rng.Intn(64)), v)
					pushed.Add(1)
				}
			}(wi)
		}
		wg.Wait()

		w := q.Worker(0)
		remaining := uint64(0)
		prev := uint64(0)
		for {
			p, _, ok := w.Pop()
			if !ok {
				break
			}
			if p < prev {
				t.Fatalf("final drain out of order: %d after %d", p, prev)
			}
			prev = p
			remaining++
		}
		if pushed.Load() != popped.Load()+remaining {
			t.Fatalf("conservation: pushed=%d popped=%d remaining=%d",
				pushed.Load(), popped.Load(), remaining)
		}
		if st := q.Stats(); st.Eliminations == 0 {
			t.Fatalf("hold soak recorded zero eliminations (stats: %+v)", st)
		}
	}
}
