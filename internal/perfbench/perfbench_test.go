package perfbench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps test runs to a few milliseconds per scheduler.
func tinyConfig() Config {
	return Config{Workers: 2, Prefill: 256, OpsPerWorker: 2000, Seed: 7}
}

func TestRunProducesValidReport(t *testing.T) {
	r, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(r); err != nil {
		t.Fatalf("freshly generated report fails validation: %v", err)
	}
	if len(r.Results) != len(Lineup()) {
		t.Fatalf("got %d results, want the full lineup of %d", len(r.Results), len(Lineup()))
	}
}

func TestRunSubsetAndUnknown(t *testing.T) {
	cfg := tinyConfig()
	cfg.Schedulers = []string{"mq", "emq"}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 2 || r.Results[0].Scheduler != "mq" || r.Results[1].Scheduler != "emq" {
		t.Fatalf("subset run = %+v", r.Results)
	}
	cfg.Schedulers = []string{"nonesuch"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "nonesuch") {
		t.Fatalf("unknown scheduler error = %v", err)
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.Schedulers = []string{"mq"}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(back); err != nil {
		t.Fatalf("round-tripped report invalid: %v", err)
	}
	if back.Results[0].Scheduler != "mq" || back.SchemaVersion != SchemaVersion {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestValidateRejectsBadReports(t *testing.T) {
	good := &Report{
		SchemaVersion: SchemaVersion, GeneratedBy: "test", GoVersion: "go",
		Workers: 1, Prefill: 1, OpsPerWorker: 1,
		Results: []Result{{Scheduler: "mq", ThroughputOpsPerSec: 1, NsPerOp: 1}},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("baseline good report rejected: %v", err)
	}
	cases := map[string]func(r *Report){
		"nil results":      func(r *Report) { r.Results = nil },
		"bad version":      func(r *Report) { r.SchemaVersion = SchemaVersion + 1 },
		"no go version":    func(r *Report) { r.GoVersion = "" },
		"zero workers":     func(r *Report) { r.Workers = 0 },
		"empty name":       func(r *Report) { r.Results[0].Scheduler = "" },
		"zero throughput":  func(r *Report) { r.Results[0].ThroughputOpsPerSec = 0 },
		"negative allocs":  func(r *Report) { r.Results[0].AllocsPerOp = -1 },
		"duplicate result": func(r *Report) { r.Results = append(r.Results, r.Results[0]) },
	}
	for name, mutate := range cases {
		r := *good
		r.Results = append([]Result(nil), good.Results...)
		mutate(&r)
		if err := Validate(&r); err == nil {
			t.Errorf("%s: Validate accepted a bad report", name)
		}
	}
	if err := Validate(nil); err == nil {
		t.Error("Validate accepted nil")
	}
}

// TestCommittedTrajectoryFilesValidate parses every BENCH_*.json at the
// repository root: the recorded perf trajectory must always satisfy the
// current schema, so a schema change forces regenerating the history
// consciously rather than silently orphaning it.
func TestCommittedTrajectoryFilesValidate(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed BENCH_*.json files yet")
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Parse(data)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := Validate(r); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
