package core

// An exhaustive interleaving check ("mini model checker") for the
// (epoch, stolen) steal-buffer protocol of Listing 4. The protocol is
// abstracted to its atomic steps and ALL interleavings of one owner and
// two thieves over several epochs are enumerated; in every execution each
// published batch must be claimed exactly once (no duplication, no loss,
// no cross-epoch claim). This complements the stress tests: stress finds
// probable bugs, enumeration finds all bugs within the bounded scope.

import "testing"

// modelState is the shared state: the packed word and the published
// batch pointer (represented by its epoch; item content is irrelevant).
type modelState struct {
	state    uint64 // epoch<<1 | stolen
	bufEpoch uint64 // epoch carried by the published batch; 0 = nil
	// accounting
	published int // batches published
	claims    map[uint64]int
}

// thief is the step machine of Steal(): load state → load buf →
// CAS(state, state|1).
type thief struct {
	pc      int
	s       uint64 // loaded state
	b       uint64 // loaded buf epoch
	claimed []uint64
}

// step advances the thief one atomic action. done=true when the thief
// finished its (single) steal attempt.
func (t *thief) step(m *modelState) (done bool) {
	switch t.pc {
	case 0: // load state
		t.s = m.state
		if t.s&1 == 1 {
			return true // stolen bit set: give up
		}
		t.pc = 1
	case 1: // load buf
		t.b = m.bufEpoch
		if t.b == 0 || t.b != t.s>>1 {
			// Retry from the start (bounded by epochs in the model).
			t.pc = 0
			return false
		}
		t.pc = 2
	case 2: // CAS state -> state|1
		if m.state == t.s {
			m.state = t.s | 1
			t.claimed = append(t.claimed, t.b)
			m.claims[t.b]++
		}
		return true
	}
	return false
}

// owner is the step machine of fillBuffer(): (precondition stolen bit) →
// store buf{epoch+1} → store state(epoch+1)<<1. Each call publishes one
// batch. The heap interaction is irrelevant to the protocol and elided.
type owner struct {
	pc       int
	newEpoch uint64
	rounds   int // remaining publishes
}

func (o *owner) step(m *modelState) (done bool) {
	switch o.pc {
	case 0: // check stolen bit (owner refills only after a steal)
		if m.state&1 == 0 {
			return false // nothing to do; stay at pc 0
		}
		o.newEpoch = m.state>>1 + 1
		o.pc = 1
	case 1: // store buf
		m.bufEpoch = o.newEpoch
		o.pc = 2
	case 2: // store state (publishes, clears stolen bit)
		m.state = o.newEpoch << 1
		m.published++
		o.rounds--
		o.pc = 0
		return o.rounds == 0
	}
	return false
}

// explore enumerates every interleaving via DFS over scheduler choices.
func explore(t *testing.T, m modelState, ow owner, th []thief, active []bool, depth int) {
	if depth > 64 {
		t.Fatal("model exceeded depth bound (livelock in protocol?)")
	}
	if m.claims == nil {
		m.claims = map[uint64]int{}
	}
	anyActive := ow.rounds > 0
	for i := range th {
		if active[i] {
			anyActive = true
		}
	}
	if !anyActive {
		// Terminal state: validate.
		for epoch, c := range m.claims {
			if c != 1 {
				t.Fatalf("epoch %d claimed %d times", epoch, c)
			}
			if epoch == 0 || epoch > uint64(m.published) {
				t.Fatalf("claim of unpublished epoch %d (published %d)", epoch, m.published)
			}
		}
		return
	}
	// Schedule the owner.
	if ow.rounds > 0 {
		m2 := m
		m2.claims = copyClaims(m.claims)
		ow2 := ow
		if done := ow2.step(&m2); done {
			ow2.rounds = 0
		}
		// Progress guard: owner at pc 0 with no stolen bit spins; only
		// recurse if something changed or a thief can still act.
		if ow2 != ow || m2.state != m.state || m2.bufEpoch != m.bufEpoch {
			explore(t, m2, ow2, copyThieves(th), copyActive(active), depth+1)
		}
	}
	// Schedule each active thief.
	for i := range th {
		if !active[i] {
			continue
		}
		m2 := m
		m2.claims = copyClaims(m.claims)
		th2 := copyThieves(th)
		act2 := copyActive(active)
		if done := th2[i].step(&m2); done {
			act2[i] = false
		}
		explore(t, m2, ow2Noop(ow), th2, act2, depth+1)
	}
}

func ow2Noop(o owner) owner { return o }

func copyClaims(in map[uint64]int) map[uint64]int {
	out := make(map[uint64]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func copyThieves(in []thief) []thief {
	out := make([]thief, len(in))
	for i := range in {
		out[i] = in[i]
		out[i].claimed = append([]uint64(nil), in[i].claimed...)
	}
	return out
}

func copyActive(in []bool) []bool {
	return append([]bool(nil), in...)
}

func TestStealBufferProtocolAllInterleavings(t *testing.T) {
	// Initial state: epoch 1 published (owner filled once), two thieves
	// each attempting one steal, owner willing to republish twice more.
	m := modelState{state: 1 << 1, bufEpoch: 1, published: 1}
	ow := owner{rounds: 2}
	thieves := []thief{{}, {}}
	active := []bool{true, true}
	explore(t, m, ow, thieves, active, 0)
}

func TestStealBufferProtocolThreeThieves(t *testing.T) {
	// Three thieves racing for a single published epoch: exactly one may
	// win; the owner republishes once.
	m := modelState{state: 1 << 1, bufEpoch: 1, published: 1}
	ow := owner{rounds: 1}
	thieves := []thief{{}, {}, {}}
	active := []bool{true, true, true}
	explore(t, m, ow, thieves, active, 0)
}
