package perfbench

import "math/bits"

// Histogram is a log-bucketed latency histogram: values are binned by
// their power-of-two magnitude, linearly subdivided into histSubBuckets
// per octave (the HdrHistogram layout with 4 significant bits). Across
// the nanosecond range a pop latency can plausibly occupy (1ns..~17s)
// the relative quantization error is bounded by 1/histSubBuckets ≈ 6%,
// which is far below run-to-run noise, while recording stays two shifts
// and an increment — cheap enough to sit inside a timed pop loop.
//
// It backs the pop-latency percentiles of this package's microbenchmark
// and the per-tenant service-latency percentiles of internal/serve —
// any consumer needing cheap in-loop percentile recording can use it.
//
// The zero value is ready to use. It is not safe for concurrent use;
// workers record into private histograms that are Merge'd afterwards.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
}

const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // linear sub-buckets per octave
	// Values below histSubBuckets get exact unit buckets; above, one
	// bucket group per octave. 64-bit values need (64-histSubBits)
	// groups on top of the exact region.
	histBuckets = (64 - histSubBits + 1) * histSubBuckets
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSubBuckets {
		return int(v) // exact unit buckets
	}
	top := bits.Len64(v) - 1 // >= histSubBits
	group := top - histSubBits + 1
	sub := int((v >> (top - histSubBits)) & (histSubBuckets - 1))
	return group*histSubBuckets + sub
}

// bucketLow returns the smallest value mapped to bucket i (the
// conservative percentile estimate: reported latency never exceeds the
// true value by more than one sub-bucket width).
func bucketLow(i int) uint64 {
	if i < histSubBuckets {
		return uint64(i)
	}
	group := i / histSubBuckets
	sub := uint64(i % histSubBuckets)
	top := group + histSubBits - 1
	return 1<<top | sub<<(top-histSubBits)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketIndex(v)]++
	h.count++
}

// Merge accumulates other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
}

// Quantile returns the value at quantile q in [0,1] (lower bucket
// bound), or 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-quantile observation, 1-based ceiling so that
	// Quantile(1) is the maximum recorded bucket.
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			return bucketLow(i)
		}
	}
	return bucketLow(histBuckets - 1)
}
