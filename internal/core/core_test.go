package core

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/pq"
	"repro/internal/sched"
)

// variants enumerates the two SMQ flavours for shared tests.
func variants() map[string]func(cfg Config) *SMQ[int] {
	return map[string]func(cfg Config) *SMQ[int]{
		"heap":     NewStealingMQ[int],
		"skiplist": NewStealingMQSkipList[int],
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{Workers: 2}
	c.normalize()
	if c.StealSize != 4 || c.StealProb != 0.125 || c.HeapArity != 4 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = Config{Workers: 2, StealProb: -1}
	c.normalize()
	if c.StealProb != 0 {
		t.Fatalf("negative StealProb should normalize to 0, got %v", c.StealProb)
	}
}

func TestZeroWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 did not panic")
		}
	}()
	NewStealingMQ[int](Config{})
}

func TestWorkerIndexPanics(t *testing.T) {
	s := NewStealingMQ[int](Config{Workers: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Worker did not panic")
		}
	}()
	s.Worker(2)
}

func TestSingleWorkerDrainSorted(t *testing.T) {
	// With one worker and no stealing possible, the SMQ must behave as an
	// exact priority queue (modulo the buffer holding the top batch: the
	// owner pops heap-first, so order can deviate by at most StealSize).
	for name, mk := range variants() {
		s := mk(Config{Workers: 1, StealSize: 4})
		w := s.Worker(0)
		const n = 1000
		for i := n; i > 0; i-- {
			w.Push(uint64(i), i)
		}
		got := make([]uint64, 0, n)
		for {
			p, _, ok := w.Pop()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != n {
			t.Fatalf("%s: popped %d, want %d", name, len(got), n)
		}
		// All values must be present exactly once.
		sorted := append([]uint64(nil), got...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, p := range sorted {
			if p != uint64(i+1) {
				t.Fatalf("%s: multiset mismatch at %d: %d", name, i, p)
			}
		}
		// Rank relaxation bound: element k may appear at most StealSize
		// positions early/late for the single-worker heap variant.
		for i, p := range got {
			if d := int(p) - (i + 1); d > 2*4+1 || d < -(2*4+1) {
				t.Errorf("%s: rank displacement %d at position %d too large", name, d, i)
			}
		}
	}
}

func TestNoLostTasksConcurrent(t *testing.T) {
	// The fundamental scheduler invariant: every pushed task is popped
	// exactly once, across workers, with stealing active.
	for name, mk := range variants() {
		for _, workers := range []int{2, 4, 8} {
			s := mk(Config{Workers: workers, StealProb: 0.25, StealSize: 4, Seed: uint64(workers)})
			const perWorker = 5000
			total := workers * perWorker
			var pending sched.Pending
			pending.Inc(int64(total))
			seen := make([]int32, total)
			var mu sync.Mutex
			dup := false
			var wg sync.WaitGroup
			for wid := 0; wid < workers; wid++ {
				wg.Add(1)
				go func(wid int) {
					defer wg.Done()
					w := s.Worker(wid)
					for i := 0; i < perWorker; i++ {
						v := wid*perWorker + i
						w.Push(uint64(v%977), v)
					}
					var b sched.Backoff
					for !pending.Done() {
						_, v, ok := w.Pop()
						if !ok {
							b.Wait()
							continue
						}
						b.Reset()
						mu.Lock()
						seen[v]++
						if seen[v] > 1 {
							dup = true
						}
						mu.Unlock()
						pending.Dec()
					}
				}(wid)
			}
			wg.Wait()
			if dup {
				t.Fatalf("%s/%d: duplicated task", name, workers)
			}
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("%s/%d: task %d seen %d times", name, workers, v, c)
				}
			}
			st := s.Stats()
			if st.Pushes != uint64(total) || st.Pops != uint64(total) {
				t.Fatalf("%s/%d: stats %+v, want %d pushes/pops", name, workers, st, total)
			}
		}
	}
}

func TestStealingHappens(t *testing.T) {
	// Load all tasks into worker 0's queue; worker 1 must obtain tasks
	// exclusively by stealing. Worker 0 yields every few pops: on a
	// single-CPU machine (especially under -race instrumentation) it
	// would otherwise drain all its work in one scheduler slice, leaving
	// worker 1 no overlap in which a published steal buffer exists.
	for name, mk := range variants() {
		s := mk(Config{Workers: 2, StealProb: 0.5, StealSize: 4})
		w0 := s.Worker(0)
		const n = 4000
		for i := 0; i < n; i++ {
			w0.Push(uint64(i), i)
		}
		var pending sched.Pending
		pending.Inc(n)
		var wg sync.WaitGroup
		popped := make([]int, 2)
		for wid := 0; wid < 2; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				var b sched.Backoff
				for !pending.Done() {
					_, _, ok := w.Pop()
					if !ok {
						b.Wait()
						continue
					}
					b.Reset()
					popped[wid]++
					pending.Dec()
					if wid == 0 && popped[0]%64 == 0 {
						runtime.Gosched()
					}
				}
			}(wid)
		}
		wg.Wait()
		if popped[0]+popped[1] != n {
			t.Fatalf("%s: popped %d+%d, want %d", name, popped[0], popped[1], n)
		}
		if popped[1] == 0 {
			t.Errorf("%s: worker 1 never stole any task", name)
		}
		st := s.Stats()
		if st.Steals == 0 {
			t.Errorf("%s: stats report zero steals: %+v", name, st)
		}
		if st.StolenTask < st.Steals {
			t.Errorf("%s: StolenTask %d < Steals %d", name, st.StolenTask, st.Steals)
		}
	}
}

func TestStealProbZeroStillTerminates(t *testing.T) {
	// With StealProb=0, stealing only happens on empty local queues; the
	// system must still drain fully (work-stealing fallback).
	for name, mk := range variants() {
		s := mk(Config{Workers: 4, StealProb: -1})
		w0 := s.Worker(0)
		const n = 2000
		for i := 0; i < n; i++ {
			w0.Push(uint64(i), i)
		}
		var pending sched.Pending
		pending.Inc(n)
		var wg sync.WaitGroup
		for wid := 0; wid < 4; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				var b sched.Backoff
				for !pending.Done() {
					if _, _, ok := w.Pop(); ok {
						pending.Dec()
						b.Reset()
					} else {
						b.Wait()
					}
				}
			}(wid)
		}
		wg.Wait()
		if got := s.Stats().Pops; got != n {
			t.Fatalf("%s: %d pops, want %d", name, got, n)
		}
	}
}

func TestNUMAVariantCorrect(t *testing.T) {
	for name, mk := range variants() {
		s := mk(Config{Workers: 4, NUMANodes: 2, NUMAWeightK: 8, StealProb: 0.5})
		var pending sched.Pending
		const n = 4000
		pending.Inc(n)
		var wg sync.WaitGroup
		var popped [4]int
		for wid := 0; wid < 4; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				for i := 0; i < n/4; i++ {
					w.Push(uint64(i), i)
				}
				var b sched.Backoff
				for !pending.Done() {
					if _, _, ok := w.Pop(); ok {
						popped[wid]++
						pending.Dec()
						b.Reset()
					} else {
						b.Wait()
					}
				}
			}(wid)
		}
		wg.Wait()
		total := popped[0] + popped[1] + popped[2] + popped[3]
		if total != n {
			t.Fatalf("%s: popped %d, want %d", name, total, n)
		}
	}
}

func TestHeapQueueBufferProtocol(t *testing.T) {
	q := newHeapQueue[int](4, 4)
	if q.Top() != pq.InfPriority {
		t.Fatal("empty queue advertises a top")
	}
	if got := q.Steal(nil); len(got) != 0 {
		t.Fatalf("steal from empty returned %v", got)
	}
	// The first push publishes immediately (the buffer was "stolen" at
	// construction): the buffer holds just task 1, the rest go to the
	// heap.
	for i := 1; i <= 10; i++ {
		q.PushLocal(uint64(i), i)
	}
	if q.Top() != 1 {
		t.Fatalf("Top = %d, want 1 (first published task)", q.Top())
	}
	// First steal takes the published batch (the singleton [1]).
	got := q.Steal(nil)
	if len(got) != 1 || got[0].P != 1 {
		t.Fatalf("stole %v, want [1]", got)
	}
	// Second steal fails until the owner refills.
	if got := q.Steal(nil); len(got) != 0 {
		t.Fatalf("double steal returned %v", got)
	}
	// The owner's next pop refills the buffer with the top batch (2..5)
	// and pops the next heap task (6): the owner runs at most one batch
	// behind the thieves' view — the rank relaxation the analysis' B
	// accounts for.
	p, _, ok := q.PopLocal()
	if !ok {
		t.Fatal("PopLocal failed with tasks in heap")
	}
	if p != 6 {
		t.Fatalf("owner popped %d, want 6 (buffer holds 2..5)", p)
	}
	if q.Top() != 2 {
		t.Fatalf("published top = %d, want 2", q.Top())
	}
	// The refilled batch is a full steal batch this time.
	got = q.Steal(nil)
	if len(got) != 4 || got[0].P != 2 || got[3].P != 5 {
		t.Fatalf("second steal = %v, want [2 3 4 5]", got)
	}
}

func TestHeapQueueOwnerReclaimsBuffer(t *testing.T) {
	q := newHeapQueue[int](4, 4)
	for i := 1; i <= 4; i++ {
		q.PushLocal(uint64(i), i)
	}
	// The first push publishes task 1 into the buffer (the heap held
	// only that task at fill time); 2..4 stay in the heap. The owner
	// pops the heap first and must then reclaim the buffered task — no
	// task may strand.
	got := map[uint64]bool{}
	for {
		p, _, ok := q.PopLocal()
		if !ok {
			break
		}
		if got[p] {
			t.Fatalf("task %d reclaimed twice", p)
		}
		got[p] = true
	}
	if len(got) != 4 {
		t.Fatalf("owner reclaimed %d tasks, want 4 (buffer stranded)", len(got))
	}
	for i := uint64(1); i <= 4; i++ {
		if !got[i] {
			t.Errorf("task %d lost", i)
		}
	}
}

func TestHeapQueueSingleClaimantPerEpoch(t *testing.T) {
	// Hammer one queue with concurrent thieves; each published epoch must
	// be claimed at most once (no task duplication).
	q := newHeapQueue[int](4, 4)
	const rounds = 3000
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := map[int]int{}
	stop := make(chan struct{})
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, it := range q.Steal(nil) {
					mu.Lock()
					seen[it.V]++
					mu.Unlock()
				}
			}
		}()
	}
	// Owner: keep pushing tasks; refills happen inside PushLocal.
	for i := 0; i < rounds; i++ {
		q.PushLocal(uint64(i), i)
	}
	// Drain the rest as the owner.
	for {
		_, v, ok := q.PopLocal()
		if !ok {
			break
		}
		mu.Lock()
		seen[v]++
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	// One final owner drain in case thieves stopped mid-claim cycle.
	for {
		_, v, ok := q.PopLocal()
		if !ok {
			break
		}
		seen[v]++
	}
	if len(seen) != rounds {
		t.Fatalf("saw %d distinct tasks, want %d", len(seen), rounds)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("task %d extracted %d times", v, c)
		}
	}
}

func TestStatsRemoteCounting(t *testing.T) {
	s := NewStealingMQ[int](Config{Workers: 4, NUMANodes: 2, NUMAWeightK: 8, StealProb: 1})
	w := s.Worker(0).(*smqWorker[int])
	for i := 0; i < 100; i++ {
		w.Push(uint64(i), i)
		w.Pop()
	}
	st := s.Stats()
	if st.Pops != 100 {
		t.Fatalf("Pops = %d", st.Pops)
	}
	// Remote is whatever the sampler saw; just ensure wiring works (the
	// sampler Total must be >= Remote).
	if w.smp.Remote > w.smp.Total {
		t.Fatalf("sampler Remote %d > Total %d", w.smp.Remote, w.smp.Total)
	}
}

// TestSingleWorkerEmptyPopSkipsStealFallback: with one worker there is
// no victim, so an empty Pop must not spin through the StealTries
// fallback loop (every stealFrom against our own id is a no-op). The
// failure must be reported immediately with no steal attempts counted.
func TestSingleWorkerEmptyPopSkipsStealFallback(t *testing.T) {
	for name, mk := range map[string]func() *SMQ[int]{
		"heap":     func() *SMQ[int] { return NewStealingMQ[int](Config{Workers: 1, StealProb: 1}) },
		"skiplist": func() *SMQ[int] { return NewStealingMQSkipList[int](Config{Workers: 1, StealProb: 1}) },
	} {
		s := mk()
		w := s.Worker(0)
		w.Push(3, 30)
		if _, v, ok := w.Pop(); !ok || v != 30 {
			t.Fatalf("%s: lost the single worker's own task", name)
		}
		for i := 0; i < 50; i++ {
			if _, _, ok := w.Pop(); ok {
				t.Fatalf("%s: popped from an empty scheduler", name)
			}
		}
		st := s.Stats()
		if st.EmptyPops != 50 {
			t.Fatalf("%s: EmptyPops = %d, want 50", name, st.EmptyPops)
		}
		if st.Steals != 0 || st.StealFails != 0 || st.StolenTask != 0 {
			t.Fatalf("%s: single-worker pops attempted steals: %+v", name, st)
		}
	}
}
