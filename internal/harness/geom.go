package harness

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/algos"
	"repro/internal/geom"
)

// The geom experiment: the geometric workload family (k-NN graph
// construction and Euclidean MST over point sets) run across the full
// scheduler lineup × point-distribution grid. These are the classic
// relaxed-priority-queue workloads of Rihani, Sanders and Dementiev
// (2014) — distance-priority expansion over an implicit graph — and the
// first non-CSR task-generation pattern in the harness.

// geomK is the neighbour count of the experiment's k-NN workloads.
const geomK = 8

// geomPointSet is one named point distribution of the grid.
type geomPointSet struct {
	Name string
	PS   *geom.PointSet
}

// geomDistributions builds the experiment's point-set grid at the given
// scale, seeded reproducibly like graph.StandardInputs.
func geomDistributions(scale int) []geomPointSet {
	if scale < 1 {
		scale = 1
	}
	n := 1500 * scale
	return []geomPointSet{
		{"UNIFORM", geom.UniformCube(n, 2, 46)},
		{"GAUSS", geom.GaussianClusters(n, 2, 16, 0.02, 47)},
		{"CUBE3D", geom.UniformCube(2*n/3, 3, 48)},
	}
}

// runGeom measures every standard scheduler on both geometric workloads
// over every distribution, one table per workload with a row per
// scheduler × distribution. Speedups are against the sequential
// baselines (kd-tree k-NN build, O(n^2) Prim); Euclidean MST results
// are always checked exactly against Prim (weight and edge count), and
// with cfg.Validate the k-NN graphs are also compared structurally
// against the sequential reference.
func runGeom(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	knnTable := Table{
		Title: fmt.Sprintf("Geometric workloads — parallel k-NN graph construction (k=%d, %d threads; speedup vs sequential kd-tree build)",
			geomK, cfg.MaxThreads),
		Header: []string{"Distribution", "Scheduler", "Threads", "Time", "Speedup", "WorkIncrease"},
	}
	mstTable := Table{
		Title: fmt.Sprintf("Geometric workloads — Euclidean MST (k=%d candidates, %d threads; speedup vs sequential O(n^2) Prim)",
			geomK, cfg.MaxThreads),
		Header: []string{"Distribution", "Scheduler", "Threads", "Time", "Speedup", "WorkIncrease"},
	}
	for _, d := range geomDistributions(cfg.Scale) {
		n := d.PS.N()

		start := time.Now()
		knnWant, _ := algos.KNNGraphSeq(d.PS, geomK)
		knnSeqDur := time.Since(start)

		start = time.Now()
		wantW, wantE := algos.PrimEMSTSeq(d.PS)
		primDur := time.Since(start)

		for _, spec := range StandardSchedulers() {
			var knnBest, mstBest algos.Result
			for r := 0; r < cfg.Reps; r++ {
				got, res := algos.KNNGraph(d.PS, geomK, spec.Make(cfg.MaxThreads))
				if cfg.Validate && !reflect.DeepEqual(got, knnWant) {
					return nil, fmt.Errorf("geom: %s/%s: k-NN graph differs from sequential reference", d.Name, spec.Name)
				}
				if r == 0 || res.Duration < knnBest.Duration {
					knnBest = res
				}

				gotW, gotE, mres := algos.EuclideanMST(d.PS, geomK, spec.Make(cfg.MaxThreads))
				if gotW != wantW || gotE != wantE {
					return nil, fmt.Errorf("geom: %s/%s: EMST = (%d, %d), want (%d, %d)",
						d.Name, spec.Name, gotW, gotE, wantW, wantE)
				}
				if r == 0 || mres.Duration < mstBest.Duration {
					mstBest = mres
				}
			}
			knnTable.AddRow(d.Name, spec.Name, fmt.Sprint(cfg.MaxThreads),
				knnBest.Duration.Round(time.Microsecond).String(),
				fm(safeRatio(knnSeqDur, knnBest.Duration)),
				fm(knnBest.WorkIncrease(uint64(n))))
			mstTable.AddRow(d.Name, spec.Name, fmt.Sprint(cfg.MaxThreads),
				mstBest.Duration.Round(time.Microsecond).String(),
				fm(safeRatio(primDur, mstBest.Duration)),
				fm(mstBest.WorkIncrease(uint64(2*n))))
		}
	}
	return []Table{knnTable, mstTable}, nil
}
