// Quickstart: create a Stealing Multi-Queue, seed it with prioritized
// jobs, and drain it with several workers. The output shows the two
// defining behaviours of the SMQ: work spreads from the seeding worker to
// the others by batch stealing, and consumption follows priority order
// closely — but not exactly, because bounded relaxation is what buys the
// scalability.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	smq "repro"
)

func main() {
	const workers = 4
	const jobs = 20000

	s := smq.NewStealingMQ[int](smq.SMQConfig{Workers: workers})

	// Seed every job at worker 0: inserts are always local in the SMQ
	// (queue affinity), so the other workers will obtain work by
	// stealing batches whose tops beat their own queues.
	seeder := s.Worker(0)
	for j := 0; j < jobs; j++ {
		seeder.Push(uint64(j), j)
	}

	// Pending tracks in-flight jobs: with a relaxed scheduler a failed
	// Pop is NOT proof of global emptiness, so workers only exit when
	// the counter reaches zero.
	var pending smq.Pending
	pending.Inc(jobs)

	order := make([]uint64, jobs)
	perWorker := make([]int, workers)
	var slot atomic.Int64

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := s.Worker(i)
			var b smq.Backoff
			for !pending.Done() {
				p, _, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				order[slot.Add(1)-1] = p
				perWorker[i]++
				pending.Dec()
			}
		}(i)
	}
	wg.Wait()

	// How relaxed was the consumption order?
	sumDisplacement := 0.0
	maxDisplacement := 0
	for i, p := range order {
		d := int(p) - i
		if d < 0 {
			d = -d
		}
		sumDisplacement += float64(d)
		if d > maxDisplacement {
			maxDisplacement = d
		}
	}
	st := s.Stats()
	fmt.Printf("consumed %d jobs with %d workers: %v\n", len(order), workers, perWorker)
	fmt.Printf("steals: %d batches (%d tasks), %d failed probes\n",
		st.Steals, st.StolenTask, st.StealFails)
	fmt.Printf("mean rank displacement: %.1f positions (max %d of %d)\n",
		sumDisplacement/float64(len(order)), maxDisplacement, jobs)
	fmt.Println("\nbounded displacement with near-linear task spreading is the SMQ trade-off:")
	fmt.Println("strict priority order is relaxed slightly in exchange for local, almost")
	fmt.Println("synchronization-free queue access (see Theorem 1 in the paper).")
}
