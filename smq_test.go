package smq

import (
	"sync"
	"testing"
)

// TestPublicAPISchedulers exercises every public constructor through the
// facade, verifying the worker-handle contract end to end.
func TestPublicAPISchedulers(t *testing.T) {
	makers := map[string]func() Scheduler[int]{
		"smq":      func() Scheduler[int] { return NewStealingMQ[int](SMQConfig{Workers: 2}) },
		"smq_skip": func() Scheduler[int] { return NewStealingMQSkipList[int](SMQConfig{Workers: 2}) },
		"mq":       func() Scheduler[int] { return NewClassicMultiQueue[int](2, 4) },
		"mq_cfg": func() Scheduler[int] {
			return NewMultiQueue[int](MQConfig{Workers: 2, Insert: InsertBatch, Delete: DeleteBatch})
		},
		"reld": func() Scheduler[int] { return NewRELD[int](2) },
		"klsm": func() Scheduler[int] { return NewKLSM[int](KLSMConfig{Workers: 2}) },
		"klsm_strict": func() Scheduler[int] {
			return NewKLSM[int](KLSMConfig{Workers: 2, Relaxation: KLSMStrict})
		},
		"cbpq":  func() Scheduler[int] { return NewCBPQ[int](CBPQConfig{Workers: 2}) },
		"obim":  func() Scheduler[int] { return NewOBIM[int](OBIMConfig{Workers: 2}) },
		"pmod":  func() Scheduler[int] { return NewPMOD[int](OBIMConfig{Workers: 2}) },
		"spray": func() Scheduler[int] { return NewSprayList[int](SprayConfig{Workers: 2}) },
	}
	for name, mk := range makers {
		s := mk()
		if s.Workers() != 2 {
			t.Fatalf("%s: Workers = %d", name, s.Workers())
		}
		const n = 2000
		var pending Pending
		pending.Inc(n)
		var wg sync.WaitGroup
		seen := make([]bool, n)
		var mu sync.Mutex
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				w := s.Worker(i)
				for j := i; j < n; j += 2 {
					w.Push(uint64(j%101), j)
				}
				var b Backoff
				for !pending.Done() {
					_, v, ok := w.Pop()
					if !ok {
						b.Wait()
						continue
					}
					b.Reset()
					mu.Lock()
					if seen[v] {
						t.Errorf("%s: duplicate %d", name, v)
					}
					seen[v] = true
					mu.Unlock()
					pending.Dec()
				}
			}(i)
		}
		wg.Wait()
		st := s.Stats()
		if st.Pops != n {
			t.Fatalf("%s: Pops = %d, want %d", name, st.Pops, n)
		}
	}
}

func TestPublicAPIGraphAndAlgorithms(t *testing.T) {
	g := GenerateRoadGrid(16, 16, 1)
	if g.N != 256 {
		t.Fatalf("N = %d", g.N)
	}
	want := DijkstraSeq(g, 0)
	s := NewStealingMQ[uint32](SMQConfig{Workers: 2})
	dist, res := SSSP(g, 0, s)
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
	if res.Tasks == 0 {
		t.Fatal("no tasks recorded")
	}

	levels, _ := BFS(g, 0, NewStealingMQ[uint32](SMQConfig{Workers: 2}))
	if levels[0] != 0 || levels[1] == Unreachable {
		t.Fatalf("BFS levels wrong: %v", levels[:4])
	}

	d, _ := AStar(g, 0, uint32(g.N-1), NewStealingMQ[uint32](SMQConfig{Workers: 2}))
	if d != want[g.N-1] {
		t.Fatalf("A* = %d, want %d", d, want[g.N-1])
	}

	w, e, _ := BoruvkaMST(g, NewStealingMQ[uint32](SMQConfig{Workers: 2}))
	if e != g.N-1 || w == 0 {
		t.Fatalf("MST = (%d, %d)", w, e)
	}
}

func TestPublicAPIBuildGraph(t *testing.T) {
	g, err := BuildGraph(2, []GraphEdge{{U: 0, V: 1, W: 5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d", g.M())
	}
	if _, err := BuildGraph(0, nil, nil); err == nil {
		t.Fatal("BuildGraph(0) accepted")
	}
}

func TestPublicAPIRMAT(t *testing.T) {
	g := GenerateRMAT(8, 4, 3)
	if g.N != 256 || g.M() == 0 {
		t.Fatalf("RMAT: N=%d M=%d", g.N, g.M())
	}
}

func TestPublicAPIPageRank(t *testing.T) {
	g := GenerateRMAT(7, 4, 9)
	pr, res := ResidualPageRank(g, PageRankConfig{}, NewStealingMQ[uint32](SMQConfig{Workers: 2}))
	if len(pr) != g.N || res.Tasks == 0 {
		t.Fatalf("PageRank: len=%d tasks=%d", len(pr), res.Tasks)
	}
	for _, v := range pr {
		if v < 0 {
			t.Fatal("negative rank")
		}
	}
}

func TestPublicAPIRankModel(t *testing.T) {
	res := RunRankModel(RankModelConfig{Queues: 8, Elements: 20000, StealProb: 0.25})
	if res.Removed == 0 {
		t.Fatal("model removed nothing")
	}
	if RankTheoremBound(8, 1, 0.25, 0) <= 0 {
		t.Fatal("bound not positive")
	}
}
