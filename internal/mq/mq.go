// Package mq implements the classic Multi-Queue scheduler (§2.1,
// Listing 1) and the paper's two optimisations — task batching and
// temporal locality (§2.1, Appendix C) — in all four insert×delete
// combinations, plus the RELD (random-enqueue local-dequeue) baseline
// from Jeffrey et al. [14].
//
// The classic Multi-Queue keeps m = C·T sequential heaps, each behind a
// try-lock. insert picks a uniformly random queue; delete picks two
// distinct random queues and removes the better top ("power of two
// choices"), which is what yields the O(m) expected rank bound of
// Alistarh et al.
//
// Temporal locality (policy *TemporalLocality) reuses the previous
// operation's queue and only re-randomizes with a configured probability;
// the classic behaviour is the p=1 special case. Task batching (policy
// *Batch) moves whole batches through a thread-local buffer, trading rank
// for synchronization. Both match Appendix C's parameter grids.
package mq

import (
	"fmt"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/numa"
	"repro/internal/pq"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// InsertPolicy selects how Push chooses target queues.
type InsertPolicy int

const (
	// InsertTemporalLocality reuses the last insertion queue and
	// re-randomizes with probability PInsertChange. PInsertChange = 1
	// reproduces the classic uniformly-random insert.
	InsertTemporalLocality InsertPolicy = iota
	// InsertBatch accumulates BatchInsert tasks in a thread-local buffer
	// and flushes them to one random queue under a single lock.
	InsertBatch
)

// DeletePolicy selects how Pop chooses source queues.
type DeletePolicy int

const (
	// DeleteTemporalLocality reuses the last deletion queue and performs
	// a fresh two-choice pick with probability PDeleteChange.
	// PDeleteChange = 1 reproduces the classic two-choice delete.
	DeleteTemporalLocality DeletePolicy = iota
	// DeleteBatch performs a two-choice pick and extracts BatchDelete
	// tasks at once into a thread-local buffer.
	DeleteBatch
	// DeleteLocal always pops from the worker's own queue block (the
	// RELD discipline [14]); it falls back to a global sweep when the
	// local block is empty so tasks cannot strand.
	DeleteLocal
)

// Config parameterizes the Multi-Queue family.
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// C is the queues-per-worker multiplier; m = C·Workers. Default 4
	// (the paper's ablation baseline configuration).
	C int
	// Insert / Delete select the operation policies (defaults are the
	// classic random policies via the zero-value + default params).
	Insert InsertPolicy
	Delete DeletePolicy
	// PInsertChange is the probability that a temporal-locality insert
	// picks a new queue. Default 1 (classic).
	PInsertChange float64
	// PDeleteChange is the probability that a temporal-locality delete
	// performs a fresh two-choice pick. Default 1 (classic).
	PDeleteChange float64
	// BatchInsert / BatchDelete are the batch sizes for the batching
	// policies. Default 8.
	BatchInsert int
	BatchDelete int
	// HeapArity is the per-queue heap fan-out. Default 4.
	HeapArity int
	// PeekTops enables the lock-free top-peeking optimization used by
	// the Galois Multi-Queue: each queue caches its top priority in an
	// atomic word, and the two-choice delete compares the cached tops
	// WITHOUT locking both queues, locking only the winner. The cached
	// top can be momentarily stale — another (benign) relaxation.
	PeekTops bool
	// Seed makes runs reproducible.
	Seed uint64
	// NUMANodes > 1 enables weighted queue sampling with divisor
	// NUMAWeightK (§4).
	NUMANodes   int
	NUMAWeightK float64
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive, policies must be known, and every set field
// within its documented domain (zero values select defaults). New
// panics with exactly this error on an invalid configuration, so
// callers that must not panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("mq: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.C < 0 {
		return fmt.Errorf("mq: Config.C = %d, must be >= 0", c.C)
	}
	if c.Insert < InsertTemporalLocality || c.Insert > InsertBatch {
		return fmt.Errorf("mq: unknown InsertPolicy %d", c.Insert)
	}
	if c.Delete < DeleteTemporalLocality || c.Delete > DeleteLocal {
		return fmt.Errorf("mq: unknown DeletePolicy %d", c.Delete)
	}
	if c.PInsertChange < 0 || c.PInsertChange > 1 {
		return fmt.Errorf("mq: Config.PInsertChange = %g, must be a probability in [0, 1]", c.PInsertChange)
	}
	if c.PDeleteChange < 0 || c.PDeleteChange > 1 {
		return fmt.Errorf("mq: Config.PDeleteChange = %g, must be a probability in [0, 1]", c.PDeleteChange)
	}
	if c.BatchInsert < 0 {
		return fmt.Errorf("mq: Config.BatchInsert = %d, must be >= 0", c.BatchInsert)
	}
	if c.BatchDelete < 0 {
		return fmt.Errorf("mq: Config.BatchDelete = %d, must be >= 0", c.BatchDelete)
	}
	if c.HeapArity < 0 || c.HeapArity == 1 {
		return fmt.Errorf("mq: Config.HeapArity = %d, must be 0 (default) or >= 2", c.HeapArity)
	}
	if c.NUMANodes < 0 {
		return fmt.Errorf("mq: Config.NUMANodes = %d, must be >= 0", c.NUMANodes)
	}
	if c.NUMAWeightK < 0 {
		return fmt.Errorf("mq: Config.NUMAWeightK = %g, must be >= 0", c.NUMAWeightK)
	}
	return nil
}

// withDefaults returns a copy with every zero-valued field replaced by
// its documented default. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 4
	}
	if c.PInsertChange == 0 {
		c.PInsertChange = 1
	}
	if c.PDeleteChange == 0 {
		c.PDeleteChange = 1
	}
	if c.BatchInsert == 0 {
		c.BatchInsert = 8
	}
	if c.BatchDelete == 0 {
		c.BatchDelete = 8
	}
	if c.HeapArity == 0 {
		c.HeapArity = pq.DefaultArity
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NUMAWeightK == 0 {
		c.NUMAWeightK = 8
	}
	return c
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	*c = c.withDefaults()
}

// Classic returns the configuration of Listing 1: uniformly random
// insert, two-choice delete, m = C·workers lock-protected heaps.
func Classic(workers, c int) Config {
	return Config{Workers: workers, C: c}
}

// RELD returns the random-enqueue local-dequeue configuration of [14]:
// one queue per worker, random insert, local delete.
func RELD(workers int) Config {
	return Config{Workers: workers, C: 1, Delete: DeleteLocal}
}

// lockQueue is one of the m sequential heaps behind a try-lock. The
// cached top is maintained under the lock and read lock-free by the
// PeekTops delete path.
//
// The queues live in one contiguous slice (pointer-free indexing on the
// two-choice hot path), so the header is hand-padded to exactly one
// cache line: mu (4B) + peek (1B) + 3B alignment + heap pointer (8B) +
// top (8B) = 24B, plus 40B of pad. Adjacent queues' lock words and
// cached tops — the two words every worker hammers — therefore never
// share a line. TestLockQueuePadding pins the arithmetic.
type lockQueue[T any] struct {
	mu   contend.Lock
	peek bool // maintain the cached top? (Config.PeekTops)
	heap *pq.DHeap[T]
	top  atomic.Uint64 // cached heap top (InfPriority when empty)
	_    [contend.CacheLineSize - 24]byte
}

// The following helpers must be called with q.mu held; they keep the
// cached top coherent with the heap. Only the PeekTops delete path ever
// reads the cached top, so non-peek configurations skip the maintenance
// entirely — an atomic store is a full fence (XCHG on amd64) and paying
// one per heap operation for an unused cache is measurable.

func (q *lockQueue[T]) push(p uint64, v T) {
	q.heap.Push(p, v)
	if q.peek {
		q.top.Store(q.heap.Top())
	}
}

func (q *lockQueue[T]) pushAll(items []pq.Item[T]) {
	for _, it := range items {
		q.heap.PushItem(it)
	}
	if q.peek {
		q.top.Store(q.heap.Top())
	}
}

func (q *lockQueue[T]) pop() (uint64, T, bool) {
	p, v, ok := q.heap.Pop()
	if q.peek {
		q.top.Store(q.heap.Top())
	}
	return p, v, ok
}

func (q *lockQueue[T]) popBatch(k int, dst []pq.Item[T]) []pq.Item[T] {
	dst = q.heap.PopBatch(k, dst)
	if q.peek {
		q.top.Store(q.heap.Top())
	}
	return dst
}

// MQ is the Multi-Queue scheduler family.
type MQ[T any] struct {
	cfg      Config
	topo     numa.Topology
	queues   []lockQueue[T] // contiguous, each element one padded cache line
	workers  []mqWorker[T]
	counters []sched.Counters
}

// New builds a Multi-Queue with the given configuration.
func New[T any](cfg Config) *MQ[T] {
	cfg.normalize()
	s := &MQ[T]{
		cfg:      cfg,
		topo:     numa.New(cfg.Workers, max(cfg.NUMANodes, 1), cfg.C),
		queues:   make([]lockQueue[T], cfg.Workers*cfg.C),
		workers:  make([]mqWorker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	for i := range s.queues {
		s.queues[i].heap = pq.NewDHeapCap[T](cfg.HeapArity, 64)
		s.queues[i].peek = cfg.PeekTops
		s.queues[i].top.Store(pq.InfPriority)
	}
	k := 1.0
	if cfg.NUMANodes > 1 {
		k = cfg.NUMAWeightK
	}
	for i := range s.workers {
		w := &s.workers[i]
		w.s = s
		w.id = i
		w.rng.Seed(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
		w.smp = *numa.NewSampler(s.topo, i, k, &w.rng)
		w.c = &s.counters[i]
		w.lastIns = -1
		w.lastDel = -1
	}
	return s
}

// Workers reports the number of worker slots.
func (s *MQ[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w.
func (s *MQ[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("mq: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce.
func (s *MQ[T]) Stats() sched.Stats {
	for i := range s.workers {
		s.counters[i].Remote = s.workers[i].smp.Remote
	}
	return sched.SumCounters(s.counters)
}

// mqWorker is the per-goroutine handle with all thread-local state. The
// RNG and NUMA sampler are embedded by value: both mutate on every
// operation, and as separate heap allocations two workers' generators
// could share a cache line; inside the padded worker struct they cannot.
type mqWorker[T any] struct {
	s   *MQ[T]
	id  int
	rng xrand.Rand
	smp numa.Sampler
	c   *sched.Counters

	lastIns int // temporal-locality insert queue
	lastDel int // temporal-locality delete queue

	insBuf []pq.Item[T] // batching insert buffer
	delBuf []pq.Item[T] // batching delete buffer
	delIdx int

	// bulk is the PushN zip scratch (pairs assembled before the single
	// locked pushAll); reused in place, zeroed after each batch.
	bulk []pq.Item[T]

	sweepSkip []int // queues the sweep's try-lock pass skipped (reused)

	// Workers sit in one contiguous slice and mutate lastIns/lastDel/
	// delIdx on every operation; a trailing cache line keeps those hot
	// words off the neighbouring worker's line.
	_ [contend.CacheLineSize]byte
}

// Push inserts a task according to the configured insert policy.
func (w *mqWorker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	switch w.s.cfg.Insert {
	case InsertBatch:
		w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: v})
		if len(w.insBuf) >= w.s.cfg.BatchInsert {
			w.flushInsertBuffer()
		}
	default: // InsertTemporalLocality (classic when PInsertChange == 1)
		if w.lastIns < 0 || w.rng.Bernoulli(w.s.cfg.PInsertChange) {
			w.lastIns = w.smp.Sample()
		}
		for {
			q := &w.s.queues[w.lastIns]
			if q.mu.TryLock() {
				q.push(p, v)
				q.mu.Unlock()
				return
			}
			w.c.LockFails++
			w.lastIns = w.smp.Sample()
		}
	}
}

// PushN inserts a whole batch under a single lock acquisition: the
// pairs are zipped into the worker's scratch run and pushed with one
// pushAll on one target queue (the temporal-locality queue choice is
// made once per batch — placing a batch on one queue is the same
// relaxation-for-synchronization trade the InsertBatch policy makes).
// Under the InsertBatch policy the batch routes through the insert
// buffer, flushing at each capacity crossing.
func (w *mqWorker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	if w.s.cfg.Insert == InsertBatch {
		for i, p := range ps {
			w.insBuf = append(w.insBuf, pq.Item[T]{P: p, V: vs[i]})
			if len(w.insBuf) >= w.s.cfg.BatchInsert {
				w.flushInsertBuffer()
			}
		}
		return
	}
	w.bulk = w.bulk[:0]
	for i, p := range ps {
		w.bulk = append(w.bulk, pq.Item[T]{P: p, V: vs[i]})
	}
	if w.lastIns < 0 || w.rng.Bernoulli(w.s.cfg.PInsertChange) {
		w.lastIns = w.smp.Sample()
	}
	for {
		q := &w.s.queues[w.lastIns]
		if q.mu.TryLock() {
			q.pushAll(w.bulk)
			q.mu.Unlock()
			break
		}
		w.c.LockFails++
		w.lastIns = w.smp.Sample()
	}
	clear(w.bulk)
	w.bulk = w.bulk[:0]
}

// flushInsertBuffer moves the whole insert batch into one random queue
// under a single lock acquisition.
func (w *mqWorker[T]) flushInsertBuffer() {
	if len(w.insBuf) == 0 {
		return
	}
	for {
		qi := w.smp.Sample()
		q := &w.s.queues[qi]
		if !q.mu.TryLock() {
			w.c.LockFails++
			continue
		}
		q.pushAll(w.insBuf)
		q.mu.Unlock()
		clear(w.insBuf)
		w.insBuf = w.insBuf[:0]
		return
	}
}

// Pop removes a task according to the configured delete policy.
func (w *mqWorker[T]) Pop() (uint64, T, bool) {
	p, v, ok := w.popPolicy()
	if !ok && len(w.insBuf) > 0 {
		// Our unflushed insert batch may hold the only remaining tasks;
		// publish it and retry so tasks can never strand (liveness).
		w.flushInsertBuffer()
		p, v, ok = w.popPolicy()
	}
	if ok {
		w.c.Pops++
	} else {
		w.c.EmptyPops++
	}
	return p, v, ok
}

// PopN is the batched delete: one two-choice decision and one lock
// acquisition serve the whole batch, extracting up to len(dst) tasks
// from the winning queue in a single popBatch (the DeleteBatch policy's
// trade, generalized to every delete policy and to caller-sized
// batches). Leftovers in the DeleteBatch thread-local buffer are served
// first so scalar and batched pops interleave without reordering the
// buffered run.
func (w *mqWorker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	n := w.popNInto(dst)
	if n == 0 && len(w.insBuf) > 0 {
		// Our unflushed insert batch may hold the only remaining tasks;
		// publish it and retry so tasks can never strand (liveness).
		w.flushInsertBuffer()
		n = w.popNInto(dst)
	}
	if n > 0 {
		w.c.Pops += uint64(n)
	} else {
		w.c.EmptyPops++
	}
	return n
}

func (w *mqWorker[T]) popNInto(dst []pq.Item[T]) int {
	n := 0
	if w.delIdx < len(w.delBuf) {
		k := copy(dst, w.delBuf[w.delIdx:])
		clear(w.delBuf[w.delIdx : w.delIdx+k])
		w.delIdx += k
		n = k
		if n == len(dst) {
			return n
		}
	}
	if w.s.cfg.Delete == DeleteLocal {
		return w.popNLocal(dst, n)
	}
	// Temporal locality carries over to batches: with probability
	// 1−PDeleteChange the whole batch drains from the previous delete
	// queue (the same reuse the scalar popTemporalLocality applies per
	// task), falling through to a fresh two-choice pick on a miss.
	if w.lastDel >= 0 && !w.rng.Bernoulli(w.s.cfg.PDeleteChange) {
		q := &w.s.queues[w.lastDel]
		if q.mu.TryLock() {
			got := q.popBatch(len(dst)-n, dst[:n])
			q.mu.Unlock()
			if len(got) > n {
				return len(got)
			}
		} else {
			w.c.LockFails++
		}
	}
	return w.popNRandom2(dst, n)
}

// popNRandom2 extracts up to len(dst)-n tasks from the winner of one
// two-choice pick into dst[n:], honouring PeekTops. The scalar sweep
// remains the cold-path fallback so spurious emptiness stays rare.
func (w *mqWorker[T]) popNRandom2(dst []pq.Item[T], n int) int {
	m := len(w.s.queues)
	for attempt := 0; attempt < 4; attempt++ {
		var (
			q  *lockQueue[T]
			qi int
		)
		if w.s.cfg.PeekTops {
			i1 := w.smp.Sample()
			i2 := i1
			if m > 1 {
				i2 = w.smp.SampleOther(i1)
			}
			qi = i1
			if w.s.queues[i2].top.Load() < w.s.queues[i1].top.Load() {
				qi = i2
			}
			q = &w.s.queues[qi]
			if !q.mu.TryLock() {
				w.c.LockFails++
				continue
			}
		} else {
			i1 := w.smp.Sample()
			i2 := i1
			if m > 1 {
				i2 = w.smp.SampleOther(i1)
			}
			q1, q2 := &w.s.queues[i1], &w.s.queues[i2]
			if !q1.mu.TryLock() {
				w.c.LockFails++
				continue
			}
			if i2 != i1 && !q2.mu.TryLock() {
				q1.mu.Unlock()
				w.c.LockFails++
				continue
			}
			qi, q = i1, q1
			if i2 != i1 {
				loser := q2
				if q2.heap.Top() < q1.heap.Top() {
					qi, q = i2, q2
					loser = q1
				}
				loser.mu.Unlock()
			}
		}
		got := q.popBatch(len(dst)-n, dst[:n])
		q.mu.Unlock()
		if len(got) > n {
			w.lastDel = qi
			return len(got)
		}
	}
	if n > 0 {
		// Tasks already in hand (delete-buffer leftovers): don't pay a
		// full-lineup sweep for a top-up that may legitimately fail.
		return n
	}
	if p, v, ok := w.sweep(); ok {
		dst[n] = pq.Item[T]{P: p, V: v}
		return n + 1
	}
	return n
}

// popNLocal is the RELD batched delete: drain the worker's own queue
// block, one lock acquisition per non-empty queue, sweeping globally
// only when the block is empty.
func (w *mqWorker[T]) popNLocal(dst []pq.Item[T], n int) int {
	base := w.id * w.s.cfg.C
	for off := 0; off < w.s.cfg.C && n < len(dst); off++ {
		q := &w.s.queues[base+off]
		q.mu.Lock()
		got := q.popBatch(len(dst)-n, dst[:n])
		q.mu.Unlock()
		n = len(got)
	}
	if n > 0 {
		return n
	}
	if p, v, ok := w.sweep(); ok {
		dst[n] = pq.Item[T]{P: p, V: v}
		return n + 1
	}
	return n
}

func (w *mqWorker[T]) popPolicy() (uint64, T, bool) {
	switch w.s.cfg.Delete {
	case DeleteBatch:
		return w.popBatch()
	case DeleteLocal:
		return w.popLocal()
	default:
		return w.popTemporalLocality()
	}
}

// popTemporalLocality reuses the previous queue with probability
// 1−PDeleteChange; otherwise (and on any miss) it performs the classic
// two-choice pick.
func (w *mqWorker[T]) popTemporalLocality() (uint64, T, bool) {
	if w.lastDel >= 0 && !w.rng.Bernoulli(w.s.cfg.PDeleteChange) {
		q := &w.s.queues[w.lastDel]
		if q.mu.TryLock() {
			p, v, ok := q.pop()
			q.mu.Unlock()
			if ok {
				return p, v, true
			}
		} else {
			w.c.LockFails++
		}
	}
	return w.popRandom2(1)
}

// popBatch refills the thread-local delete buffer with a two-choice batch
// extraction when empty.
func (w *mqWorker[T]) popBatch() (uint64, T, bool) {
	if w.delIdx < len(w.delBuf) {
		it := w.delBuf[w.delIdx]
		var zero pq.Item[T]
		w.delBuf[w.delIdx] = zero
		w.delIdx++
		return it.P, it.V, true
	}
	return w.popRandom2(w.s.cfg.BatchDelete)
}

// popLocal implements RELD: always delete from the worker's own queue
// block; sweep globally only when it is empty.
func (w *mqWorker[T]) popLocal() (uint64, T, bool) {
	base := w.id * w.s.cfg.C
	for off := 0; off < w.s.cfg.C; off++ {
		q := &w.s.queues[base+off]
		q.mu.Lock()
		p, v, ok := q.pop()
		q.mu.Unlock()
		if ok {
			return p, v, true
		}
	}
	return w.sweep()
}

// popRandom2 is Listing 1's delete: lock two distinct random queues,
// extract batch tasks from the one with the better top. batch == 1 gives
// the classic single-task delete. After bounded failed attempts it falls
// back to a full sweep so that spurious emptiness is rare.
func (w *mqWorker[T]) popRandom2(batch int) (uint64, T, bool) {
	if w.s.cfg.PeekTops {
		return w.popRandom2Peek(batch)
	}
	m := len(w.s.queues)
	for attempt := 0; attempt < 4; attempt++ {
		i1 := w.smp.Sample()
		i2 := i1
		if m > 1 {
			i2 = w.smp.SampleOther(i1)
		}
		q1, q2 := &w.s.queues[i1], &w.s.queues[i2]
		if !q1.mu.TryLock() {
			w.c.LockFails++
			continue
		}
		if i2 != i1 && !q2.mu.TryLock() {
			q1.mu.Unlock()
			w.c.LockFails++
			continue
		}
		qi, q := i1, q1
		if i2 != i1 {
			// Release the loser right after the top comparison (Listing 1
			// only needs both locks for the comparison itself); holding it
			// across the winner's extraction would serialize unrelated
			// workers against the loser queue under contention.
			loser := q2
			if q2.heap.Top() < q1.heap.Top() {
				qi, q = i2, q2
				loser = q1
			}
			loser.mu.Unlock()
		}
		var (
			p  uint64
			v  T
			ok bool
		)
		if batch <= 1 {
			p, v, ok = q.pop()
		} else {
			w.delBuf = q.popBatch(batch, w.delBuf[:0])
			w.delIdx = 0
			if len(w.delBuf) > 0 {
				it := w.delBuf[0]
				w.delIdx = 1
				p, v, ok = it.P, it.V, true
			}
		}
		q.mu.Unlock()
		if ok {
			w.lastDel = qi
			return p, v, true
		}
	}
	return w.sweep()
}

// popRandom2Peek is the PeekTops variant of the two-choice delete: it
// compares the queues' atomically cached tops without taking either
// lock, then locks only the winner. Staleness of the cached top is a
// benign extra relaxation (the popped task is still a recent top).
func (w *mqWorker[T]) popRandom2Peek(batch int) (uint64, T, bool) {
	m := len(w.s.queues)
	for attempt := 0; attempt < 4; attempt++ {
		i1 := w.smp.Sample()
		i2 := i1
		if m > 1 {
			i2 = w.smp.SampleOther(i1)
		}
		qi := i1
		if w.s.queues[i2].top.Load() < w.s.queues[i1].top.Load() {
			qi = i2
		}
		q := &w.s.queues[qi]
		if !q.mu.TryLock() {
			w.c.LockFails++
			continue
		}
		var (
			p  uint64
			v  T
			ok bool
		)
		if batch <= 1 {
			p, v, ok = q.pop()
		} else {
			w.delBuf = q.popBatch(batch, w.delBuf[:0])
			w.delIdx = 0
			if len(w.delBuf) > 0 {
				it := w.delBuf[0]
				w.delIdx = 1
				p, v, ok = it.P, it.V, true
			}
		}
		q.mu.Unlock()
		if ok {
			w.lastDel = qi
			return p, v, true
		}
	}
	return w.sweep()
}

// sweep scans every queue once from a random start, popping the first
// task found. It returns false only when every queue was observed empty,
// which makes spurious Pop failures rare (they can still happen — the
// contract allows it).
//
// The first pass uses try-locks (counting failures in LockFails) so a
// sweeping worker never stalls behind a queue that is busy serving
// others; only queues skipped by the first pass are re-visited with a
// blocking lock, preserving the every-queue-observed guarantee.
func (w *mqWorker[T]) sweep() (uint64, T, bool) {
	m := len(w.s.queues)
	start := w.rng.Intn(m)
	w.sweepSkip = w.sweepSkip[:0]
	for off := 0; off < m; off++ {
		qi := start + off
		if qi >= m {
			qi -= m
		}
		q := &w.s.queues[qi]
		if !q.mu.TryLock() {
			w.c.LockFails++
			w.sweepSkip = append(w.sweepSkip, qi)
			continue
		}
		p, v, ok := q.pop()
		q.mu.Unlock()
		if ok {
			w.lastDel = qi
			return p, v, true
		}
	}
	for _, qi := range w.sweepSkip {
		q := &w.s.queues[qi]
		q.mu.Lock()
		p, v, ok := q.pop()
		q.mu.Unlock()
		if ok {
			w.lastDel = qi
			return p, v, true
		}
	}
	var zero T
	return pq.InfPriority, zero, false
}
