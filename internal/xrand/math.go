package xrand

import "math"

// mathLog is math.Log, isolated so xrand.go stays free of direct imports
// in its hot-path file.
func mathLog(x float64) float64 { return math.Log(x) }
