// Package harness assembles workloads, schedulers and baselines into the
// paper's experiments (§5, Appendices B–F). Every table and figure has a
// registered experiment (see registry.go) that regenerates its rows; the
// cmd/smqbench tool and the repository-root benchmarks drive them.
package harness

import (
	"fmt"
	"time"

	"repro/internal/algos"
	"repro/internal/cbpq"
	"repro/internal/coarse"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/graph"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/sched"
	"repro/internal/spray"
	"repro/internal/zoo"
)

// AlgoKind names a benchmark algorithm.
type AlgoKind string

// Benchmark algorithms (the paper's §5 set plus the PageRank extension).
const (
	AlgoSSSP     AlgoKind = "sssp"
	AlgoBFS      AlgoKind = "bfs"
	AlgoAStar    AlgoKind = "astar"
	AlgoMST      AlgoKind = "mst"
	AlgoPageRank AlgoKind = "pagerank"
)

// Workload is one benchmark: an algorithm on a graph.
type Workload struct {
	Name   string // e.g. "SSSP USA"
	Algo   AlgoKind
	Graph  *graph.CSR
	Src    uint32
	Target uint32 // A* only

	// Lazily computed baselines.
	seqTasks    uint64
	seqDuration time.Duration
	seqDist     []uint64 // expected SSSP/BFS result for validation
	seqReady    bool
}

// Run executes the workload on the given scheduler and optionally
// validates the result against the sequential baseline.
func (w *Workload) Run(s sched.Scheduler[uint32], validate bool) (algos.Result, error) {
	if validate {
		w.ensureBaseline()
	}
	switch w.Algo {
	case AlgoSSSP, AlgoBFS:
		var dist []uint64
		var res algos.Result
		if w.Algo == AlgoSSSP {
			dist, res = algos.SSSP(w.Graph, w.Src, s)
		} else {
			dist, res = algos.BFS(w.Graph, w.Src, s)
		}
		if validate {
			for v := range dist {
				if dist[v] != w.seqDist[v] {
					return res, fmt.Errorf("%s: dist[%d]=%d, want %d", w.Name, v, dist[v], w.seqDist[v])
				}
			}
		}
		return res, nil
	case AlgoAStar:
		d, res := algos.AStar(w.Graph, w.Src, w.Target, s)
		if validate && d != w.seqDist[w.Target] {
			return res, fmt.Errorf("%s: distance %d, want %d", w.Name, d, w.seqDist[w.Target])
		}
		return res, nil
	case AlgoMST:
		wt, _, res := algos.BoruvkaMST(w.Graph, s)
		if validate {
			wantW, _ := algos.KruskalMST(w.Graph)
			if wt != wantW {
				return res, fmt.Errorf("%s: MST weight %d, want %d", w.Name, wt, wantW)
			}
		}
		return res, nil
	case AlgoPageRank:
		cfg := algos.PageRankConfig{}
		pr, res := algos.ResidualPageRank(w.Graph, cfg, s)
		if validate {
			want := algos.PageRankSeq(w.Graph, cfg)
			tol := float64(w.Graph.N) * 1e-6 / 0.15 * 2
			if d := algos.L1Diff(pr, want); d > tol {
				return res, fmt.Errorf("%s: PageRank L1 diff %g > %g", w.Name, d, tol)
			}
		}
		return res, nil
	default:
		return algos.Result{}, fmt.Errorf("harness: unknown algorithm %q", w.Algo)
	}
}

// ensureBaseline computes the sequential reference lazily, once.
func (w *Workload) ensureBaseline() {
	if w.seqReady {
		return
	}
	start := time.Now()
	switch w.Algo {
	case AlgoSSSP:
		dist, res := algos.DijkstraSeq(w.Graph, w.Src)
		w.seqDist, w.seqTasks = dist, res.Tasks
	case AlgoBFS:
		dist, res := algos.BFSSeqPQ(w.Graph, w.Src)
		w.seqDist, w.seqTasks = dist, res.Tasks
	case AlgoAStar:
		// A* validation needs the true distance; reuse Dijkstra.
		dist, _ := algos.DijkstraSeq(w.Graph, w.Src)
		w.seqDist = dist
		_, res := algos.AStarSeq(w.Graph, w.Src, w.Target)
		w.seqTasks = res.Tasks
	case AlgoMST:
		_, edges := algos.KruskalMST(w.Graph)
		w.seqTasks = uint64(edges) + uint64(w.Graph.N)
	case AlgoPageRank:
		algos.PageRankSeq(w.Graph, algos.PageRankConfig{})
		w.seqTasks = uint64(w.Graph.N)
	}
	w.seqDuration = time.Since(start)
	w.seqReady = true
}

// SeqBaseline returns the sequential task count and duration, computing
// them on first use.
func (w *Workload) SeqBaseline() (uint64, time.Duration) {
	w.ensureBaseline()
	return w.seqTasks, w.seqDuration
}

// StandardWorkloads builds the paper's 12 benchmarks (Figure 2's panels)
// at the given scale: SSSP and BFS on USA/WEST/TWITTER/WEB, A* and MST on
// the road graphs.
func StandardWorkloads(scale int) []*Workload {
	gs := graph.StandardInputs(scale)
	var ws []*Workload
	for _, name := range []string{"USA", "WEST", "TWITTER", "WEB"} {
		g := gs[name]
		src := g.MaxOutDegreeVertex()
		ws = append(ws, &Workload{Name: "SSSP " + name, Algo: AlgoSSSP, Graph: g, Src: src})
	}
	for _, name := range []string{"USA", "WEST", "TWITTER", "WEB"} {
		g := gs[name]
		src := g.MaxOutDegreeVertex()
		ws = append(ws, &Workload{Name: "BFS " + name, Algo: AlgoBFS, Graph: g, Src: src})
	}
	for _, name := range []string{"USA", "WEST"} {
		g := gs[name]
		ws = append(ws, &Workload{Name: "A* " + name, Algo: AlgoAStar, Graph: g,
			Src: 0, Target: uint32(g.N - 1)})
	}
	for _, name := range []string{"USA", "WEST"} {
		g := gs[name]
		ws = append(ws, &Workload{Name: "MST " + name, Algo: AlgoMST, Graph: g})
	}
	return ws
}

// QuickWorkloads is a reduced benchmark set (one per algorithm) for the
// ablation grids, mirroring the paper's Figure 1 subset.
func QuickWorkloads(scale int) []*Workload {
	gs := graph.StandardInputs(scale)
	usa, twitter := gs["USA"], gs["TWITTER"]
	return []*Workload{
		{Name: "SSSP USA", Algo: AlgoSSSP, Graph: usa, Src: usa.MaxOutDegreeVertex()},
		{Name: "BFS TWITTER", Algo: AlgoBFS, Graph: twitter, Src: twitter.MaxOutDegreeVertex()},
		{Name: "A* USA", Algo: AlgoAStar, Graph: usa, Src: 0, Target: uint32(usa.N - 1)},
		{Name: "MST USA", Algo: AlgoMST, Graph: usa},
	}
}

// SchedulerSpec is a named scheduler factory over uint32 payloads: the
// zoo's public Spec instantiated at the graph-vertex payload type. The
// experiment lineups below construct parameterized variants (tuned
// steal sizes, NUMA placements) of the registry's schedulers; the
// canonical default-configured specs live in internal/zoo and are
// re-exported at the repository root as smq.Spec / smq.Lineup.
type SchedulerSpec = zoo.Spec[uint32]

// StandardSchedulers is the Figure 2 lineup — SMQ default + tuned, the
// skip-list SMQ, the optimized NUMA-aware classic MQ, OBIM, PMOD,
// SprayList and RELD — extended with the engineered MultiQueue of
// Williams et al. (2021) and the k-LSM of Wimmer et al. (2015) as
// additional comparison series.
func StandardSchedulers() []SchedulerSpec {
	return []SchedulerSpec{
		// The first four entries are the headline lineup; root benchmarks
		// slice them with [:4], so new series must be appended after
		// "MQ Classic" below.
		SMQSpec("SMQ (Default)", 4, 1.0/8, 0),
		SMQSpec("SMQ (Tuned)", 8, 1.0/4, 0),
		{
			Name:   "SMQ SkipList",
			Params: "steal=4 psteal=1/8",
			Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return core.NewStealingMQSkipList[uint32](core.Config{Workers: workers, Seed: seed})
			},
		},
		{
			Name:   "MQ Optimized",
			Params: "C=4 ins=batch8 del=batch8 numa",
			Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return mq.New[uint32](mq.Config{Workers: workers, C: 4,
					Insert: mq.InsertBatch, BatchInsert: 8,
					Delete: mq.DeleteBatch, BatchDelete: 8,
					NUMANodes: 2, NUMAWeightK: 8, Seed: seed})
			},
		},
		{
			Name:   "MQ Classic",
			Params: "C=4",
			Make:   ClassicMQBaseline,
		},
		EMQSpec("EMQ", 16, 16, 0),
		KLSMSpec("kLSM", 256),
		OBIMSpec("OBIM", 10, 64, false),
		OBIMSpec("PMOD", 10, 64, true),
		{
			Name:   "SprayList",
			Params: "default spray",
			Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				return spray.New[uint32](spray.Config{Workers: workers, Seed: seed})
			},
		},
		{
			Name:   "RELD",
			Params: "local dequeue",
			Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
				c := mq.RELD(workers)
				c.Seed = seed
				return mq.New[uint32](c)
			},
		},
	}
}

// AllSchedulers is StandardSchedulers plus the two exact reference
// points outside the paper's Figure 2 lineup (so fig2 stays faithful):
// the coarse-locked global heap strawman — exact priority order, zero
// scalability — and the lock-free CBPQ, exact with no lock at all. The
// rank-probe and rank-regression experiments use both as
// zero-relaxation references.
func AllSchedulers() []SchedulerSpec {
	return append(StandardSchedulers(),
		SchedulerSpec{
			Name:   "CoarseLock",
			Params: "single global heap",
			Make: func(workers int, _ uint64) sched.Scheduler[uint32] {
				return coarse.New[uint32](coarse.Config{Workers: workers})
			},
			Bound: func(int) (int64, bool) { return 0, true },
		},
		SchedulerSpec{
			Name:   "CBPQ",
			Params: "chunk=64 lock-free",
			Make: func(workers int, _ uint64) sched.Scheduler[uint32] {
				return cbpq.New[uint32](cbpq.Config{Workers: workers})
			},
			Bound: func(int) (int64, bool) { return 0, true },
		})
}

// SMQSpec builds a heap-SMQ spec with the given parameters.
func SMQSpec(name string, stealSize int, stealProb float64, numaNodes int) SchedulerSpec {
	return SchedulerSpec{
		Name:   name,
		Params: fmt.Sprintf("steal=%d psteal=%.3g numa=%d", stealSize, stealProb, numaNodes),
		Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
			return core.NewStealingMQ[uint32](core.Config{
				Workers: workers, StealSize: stealSize, StealProb: stealProb,
				NUMANodes: numaNodes, Seed: seed,
			})
		},
	}
}

// EMQSpec builds an engineered-MultiQueue spec with the given stickiness
// period and operation-buffer capacity (used for both the insertion and
// the deletion buffer, as in the emq ablation grid).
func EMQSpec(name string, stickiness, buffer, numaNodes int) SchedulerSpec {
	return SchedulerSpec{
		Name:   name,
		Params: fmt.Sprintf("stick=%d buf=%d numa=%d", stickiness, buffer, numaNodes),
		Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{
				Workers: workers, Stickiness: stickiness,
				InsertBuffer: buffer, DeleteBuffer: buffer,
				NUMANodes: numaNodes, Seed: seed,
			})
		},
	}
}

// KLSMSpec builds a k-LSM spec with the given relaxation bound k (the
// local-LSM capacity; klsm.Strict selects the exact k = 0 queue). The
// Params label reports the effective k after klsm's normalization, so
// the zero value is labelled with the default it actually runs.
// CBPQSpec builds a SchedulerSpec for the lock-free chunk-based
// priority queue. CBPQ is exact, so its rank bound is 0 regardless of
// chunk capacity (chunkCap 0 selects the default).
func CBPQSpec(name string, chunkCap int) SchedulerSpec {
	params := "lock-free"
	if chunkCap != 0 {
		params = fmt.Sprintf("chunk=%d lock-free", chunkCap)
	}
	return SchedulerSpec{
		Name:   name,
		Params: params,
		Make: func(workers int, _ uint64) sched.Scheduler[uint32] {
			return cbpq.New[uint32](cbpq.Config{Workers: workers, ChunkCap: chunkCap})
		},
		Bound: func(int) (int64, bool) { return 0, true },
	}
}

func KLSMSpec(name string, relaxation int) SchedulerSpec {
	effective := relaxation
	if effective == 0 {
		effective = klsm.DefaultRelaxation
	} else if effective == klsm.Strict {
		effective = 0
	}
	return SchedulerSpec{
		Name:   name,
		Params: fmt.Sprintf("k=%d", effective),
		Make: func(workers int, _ uint64) sched.Scheduler[uint32] {
			return klsm.New[uint32](klsm.Config{Workers: workers, Relaxation: relaxation})
		},
		Bound: func(workers int) (int64, bool) {
			return int64(workers-1)*int64(effective) + int64(workers), true
		},
	}
}

// OBIMSpec builds an OBIM/PMOD spec.
func OBIMSpec(name string, delta uint32, chunk int, adaptive bool) SchedulerSpec {
	return SchedulerSpec{
		Name:   name,
		Params: fmt.Sprintf("delta=%d chunk=%d", delta, chunk),
		Make: func(workers int, seed uint64) sched.Scheduler[uint32] {
			return obim.New[uint32](obim.Config{Workers: workers, Delta: delta,
				ChunkSize: chunk, Adaptive: adaptive, Seed: seed})
		},
	}
}

// ClassicMQBaseline is the ablation experiments' baseline scheduler (the
// classic Multi-Queue with C=4, as in Figures 1 and 3–20). Seed 0 keeps
// the scheduler's default seeding.
func ClassicMQBaseline(workers int, seed uint64) sched.Scheduler[uint32] {
	c := mq.Classic(workers, 4)
	c.Seed = seed
	return mq.New[uint32](c)
}

// Measurement is one measured cell of an experiment.
type Measurement struct {
	Experiment string
	Workload   string
	Scheduler  string
	Params     string
	Threads    int
	Duration   time.Duration
	Tasks      uint64
	Wasted     uint64
	// Speedup is relative to the experiment's declared baseline.
	Speedup float64
	// WorkIncrease is Tasks relative to the baseline's tasks.
	WorkIncrease float64
	// Remote is the fraction of queue accesses leaving the virtual node.
	Remote float64
}

// Measure runs spec on workload with the given thread count, repeating
// and keeping the best time (the paper reports averages of 10 runs; reps
// configure that).
func Measure(w *Workload, spec SchedulerSpec, threads, reps int, validate bool) (Measurement, error) {
	return MeasureSeeded(w, spec, threads, reps, validate, 0)
}

// MeasureSeeded is Measure with an explicit scheduler RNG seed (0 =
// the scheduler's default seeding). Repetitions derive distinct
// sub-seeds from it, so a multi-rep cell is as reproducible as a
// single-rep one.
func MeasureSeeded(w *Workload, spec SchedulerSpec, threads, reps int, validate bool, seed uint64) (Measurement, error) {
	if reps < 1 {
		reps = 1
	}
	var best algos.Result
	for r := 0; r < reps; r++ {
		res, err := w.Run(spec.Build(threads, repSeed(seed, r)), validate)
		if err != nil {
			return Measurement{}, err
		}
		if r == 0 || res.Duration < best.Duration {
			best = res
		}
	}
	m := Measurement{
		Workload:  w.Name,
		Scheduler: spec.Name,
		Params:    spec.Params,
		Threads:   threads,
		Duration:  best.Duration,
		Tasks:     best.Tasks,
		Wasted:    best.Wasted,
	}
	total := best.Sched.Pushes + best.Sched.Pops
	if total > 0 {
		m.Remote = float64(best.Sched.Remote) / float64(total)
	}
	return m, nil
}
