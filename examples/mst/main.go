// MST: parallel Boruvka over a relaxed scheduler (task priority = the
// component's candidate edge count, following the paper's degree-based
// priorities), verified against Kruskal.
package main

import (
	"flag"
	"fmt"
	"runtime"

	smq "repro"
)

func main() {
	rows := flag.Int("rows", 128, "road grid rows")
	cols := flag.Int("cols", 128, "road grid cols")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	flag.Parse()

	g := smq.GenerateRoadGrid(*rows, *cols, 11)
	fmt.Printf("MST of %d-vertex road graph (%d edges), %d workers\n\n", g.N, g.M(), *workers)

	for _, e := range []struct {
		name string
		mk   func() smq.Scheduler[uint32]
	}{
		{"SMQ", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"MultiQueue", func() smq.Scheduler[uint32] {
			return smq.NewClassicMultiQueue[uint32](*workers, 4)
		}},
		{"RELD", func() smq.Scheduler[uint32] {
			return smq.NewRELD[uint32](*workers)
		}},
	} {
		weight, edges, res := smq.BoruvkaMST(g, e.mk())
		fmt.Printf("%-12s weight=%-10d edges=%-7d time=%-12v tasks=%d\n",
			e.name, weight, edges, res.Duration.Round(1000), res.Tasks)
	}
}
