package pq

import "repro/internal/xrand"

// SeqSkipList is a sequential skip-list priority queue. It exists for the
// local-queue ablation (§4 investigated both skip lists and d-ary heaps as
// thread-local structures) and as the reference model for the concurrent
// skip list in internal/cskiplist. Duplicate priorities are allowed; ties
// pop in LIFO order of insertion.
type SeqSkipList[T any] struct {
	head   *seqSkipNode[T]
	levels int
	n      int
	rng    *xrand.Rand
}

const seqSkipMaxLevel = 24

type seqSkipNode[T any] struct {
	item Item[T]
	next [seqSkipMaxLevel]*seqSkipNode[T]
}

// NewSeqSkipList returns an empty skip list seeded for level coin flips.
func NewSeqSkipList[T any](seed uint64) *SeqSkipList[T] {
	return &SeqSkipList[T]{
		head:   &seqSkipNode[T]{},
		levels: 1,
		rng:    xrand.New(seed),
	}
}

// Len reports the number of queued tasks.
func (s *SeqSkipList[T]) Len() int { return s.n }

// Top returns the minimum priority, or InfPriority when empty.
func (s *SeqSkipList[T]) Top() uint64 {
	if s.head.next[0] == nil {
		return InfPriority
	}
	return s.head.next[0].item.P
}

func (s *SeqSkipList[T]) randomLevel() int {
	lvl := 1
	// Geometric with p = 1/2, capped at seqSkipMaxLevel.
	for lvl < seqSkipMaxLevel && s.rng.Uint64()&1 == 0 {
		lvl++
	}
	return lvl
}

// Push inserts a task.
func (s *SeqSkipList[T]) Push(p uint64, v T) {
	var preds [seqSkipMaxLevel]*seqSkipNode[T]
	cur := s.head
	for lvl := s.levels - 1; lvl >= 0; lvl-- {
		for cur.next[lvl] != nil && cur.next[lvl].item.P < p {
			cur = cur.next[lvl]
		}
		preds[lvl] = cur
	}
	lvl := s.randomLevel()
	for s.levels < lvl {
		preds[s.levels] = s.head
		s.levels++
	}
	node := &seqSkipNode[T]{item: Item[T]{P: p, V: v}}
	for i := 0; i < lvl; i++ {
		node.next[i] = preds[i].next[i]
		preds[i].next[i] = node
	}
	s.n++
}

// Pop removes and returns the minimum-priority task. The unlinked
// node's item and forward pointers are zeroed: a caller observing the
// returned value through an interface, or any stray reference to the
// node (iterator, debugger, heap dump), must not keep the payload — or
// a chain of successor nodes — reachable.
func (s *SeqSkipList[T]) Pop() (p uint64, v T, ok bool) {
	first := s.head.next[0]
	if first == nil {
		return InfPriority, v, false
	}
	for lvl := 0; lvl < s.levels; lvl++ {
		if s.head.next[lvl] == first {
			s.head.next[lvl] = first.next[lvl]
		}
	}
	for s.levels > 1 && s.head.next[s.levels-1] == nil {
		s.levels--
	}
	s.n--
	p, v = first.item.P, first.item.V
	var zero seqSkipNode[T]
	*first = zero
	return p, v, true
}

// PopBatch removes up to k minimum-priority tasks in priority order,
// appending them to dst.
func (s *SeqSkipList[T]) PopBatch(k int, dst []Item[T]) []Item[T] {
	for i := 0; i < k; i++ {
		p, v, ok := s.Pop()
		if !ok {
			break
		}
		dst = append(dst, Item[T]{P: p, V: v})
	}
	return dst
}

var _ Queue[int] = (*SeqSkipList[int])(nil)
