// Package cbpq implements a CAS-based chunked priority queue in the
// style of Braginsky, Cohen and Petrank ("CBPQ: High Performance
// Lock-Free Priority Queue", Euro-Par 2016), extended with an
// elimination + combining layer in the Hendler-Shavit style: the queue
// is a short sequence of fixed-capacity chunks partitioned by priority
// range, the first chunk is sorted and consumed through a single packed
// claim word, inserts CAS-publish into the interior chunk owning their
// range, below-head inserts meet pops in a small exchange array, and a
// full or contended chunk is frozen and split/rebuilt rather than
// mutated in place.
//
// Unlike every other scheduler in the zoo, no operation ever takes a
// lock (the Stats().LockFails counter reports CAS failures instead).
// CBPQ is also exact — Pop returns the minimum of all linearized
// entries — which makes it the zoo's lock-free rank-bound-0 baseline:
// the rank regression asserts zero displacement, and desim drives it at
// lookahead 0 expecting zero causality violations.
//
// # Structure
//
// All shared state hangs off a single atomic root pointer to an
// immutable spine, plus a per-queue exchange array:
//
//		spine{ head, buf, live[] }
//
//	  - head is the sorted first chunk. Its idx word packs three fields:
//	    a freeze bit (bit 63), an exchange publish counter, and the pop
//	    index (low bits). Pop claims the next sorted slot with one CAS
//	    on this word; the CAS succeeds only if no exchange publish has
//	    landed since the pop scanned the exchange array, which is what
//	    keeps head claims exact in the presence of eliminated inserts
//	    (see below). A rebuild freezes the head through the same word
//	    (one Or setting the freeze bit); the index the Or observes is a
//	    clean claim cut, and because every claim is a CAS that fails
//	    against a frozen word, the word is immutable after the freeze
//	    and all helpers read the same cut from it directly.
//	  - live[] are the interior chunks, ascending by their range lower
//	    bound min; an insert with priority p targets the last chunk with
//	    min <= p and CAS-bumps its count word, then release-publishes the
//	    slot's ready flag.
//	  - the exchange array (exg) absorbs below-head inserts: a Push
//	    whose priority falls inside the head's own range parks its
//	    entry in a free slot and linearizes it by bumping the publish
//	    counter in the head's packed word; a pop that finds the entry
//	    to be a global minimum takes it straight from the slot. See
//	    "Elimination and combining".
//	  - buf is the overflow insertion buffer for below-head inserts the
//	    exchange cannot absorb. An append folds its priority into buf's
//	    monotone minimum (bmin) and linearizes by bumping the same
//	    publish counter an exchange publish bumps; Push then returns.
//	    Pops fold bmin into their scan limit, so a buf entry that is
//	    the global minimum blocks head claims, and the first pop it
//	    blocks drives the rebuild that merges buf into a new sorted
//	    head — buf entries above the head minimum cost nothing until
//	    then.
//
// # Elimination and combining
//
// Below-head inserts are the structure's worst case: the head is
// immutable, so without help every one of them would force a full
// freeze->merge->republish head rebuild — the decremental-key pattern
// (pop the minimum, reinsert slightly above it) that SSSP/A*/
// delta-stepping relaxations generate degenerates to one rebuild per
// pair. Two layers in front of buf remove almost all of that cost:
//
//   - Elimination. A below-head Push claims a free exchange slot
//     (empty -> busy), writes its entry, and linearizes it with one CAS
//     that bumps the publish counter packed into the head's
//     freeze|publishes|index word. A Pop scans the exchange after
//     loading that word; if a published entry is no greater than every
//     other possibly-present entry and the head minimum, the pop
//     reserves the slot (ready -> claimed) and validates with one load
//     of the packed word: unfrozen and an unchanged publish counter
//     prove that the set of published entries at that instant is
//     exactly the scanned set and that the head minimum has only
//     grown, so the reserved entry is a true minimum and the take
//     linearizes at that load. Push and Pop meet in the slot; neither
//     touches the spine and no rebuild happens. Symmetrically, a head
//     claim succeeds only if the publish counter is unchanged since
//     the scan, so a claim can never overtake a smaller entry parked
//     in the exchange. Reservations are revocable (claimed -> ready)
//     until the validating load, so a failed validation never
//     un-linearizes anything.
//   - Combining. Entries the exchange cannot absorb — every slot
//     parked, or the head frozen mid-publish — append to buf and
//     linearize through the publish counter like an exchange publish
//     (see the buf bullet above). They stay parked there until one of
//     them becomes the global minimum and blocks a pop; that pop's
//     rebuild then merges the entire frozen buf plus every parked
//     exchange entry in one freeze->merge->republish cycle: N misses
//     cost one deferred rebuild, not N. The combiner is elected by the
//     root CAS itself (whichever helper's candidate wins), which keeps
//     combining lock-free, unlike a flat-combining lock.
//
// The consistent-emptiness snapshot extends accordingly: a pop reports
// empty only after observing a drained unfrozen head, no exchange
// entry, an untouched buf and no interior chunks, and then re-reading
// the packed word unchanged — any publish in between would have bumped
// the publish counter, so the second read is the linearization point
// of the failed pop.
//
// # Freeze / split / rebuild
//
// Structural changes never mutate a published chunk's membership; they
// freeze it with one atomic Or — on the ctl word of a live chunk or
// buf (then wait out in-flight publication windows), on the packed idx
// word of the head — wait for the exchange array to settle against the
// frozen head, build replacement chunks privately, and CAS the root to
// a new spine. The CAS is the single linearization point; losers
// recycle their never-published candidate chunks into a per-worker
// freelist (published chunks are never pooled, so the root CAS cannot
// ABA) and retry against the new spine. A full interior chunk splits
// into two halves around its median; a rebuild replaces the head with
// one freshly sorted from its frozen survivors plus the frozen buf and
// the settled exchange entries, pulling in whole interior chunks until
// the new head is full. Any thread can help: after a complete freeze
// the frozen membership is identical for all helpers, so all
// candidates are equivalent and whichever CAS wins is correct. Only
// the winner resets the merged exchange slots; until it does they are
// inert (their recorded head is frozen, so no pop will take them and
// no push can reuse them).
//
// # Lock-free batches
//
// PopN drains the same decision loop as Pop: each consecutive sorted
// head run is claimed with one CAS on the packed word (bounded so the
// run never overtakes a smaller exchange entry), and exchange takes
// fill single slots of the batch. Because concurrent publishes can
// slip between two individually linearized claims, a batch is
// ascending in the absence of concurrent pushes but globally it is a
// sequence of exact scalar pops, which is the sched.Worker contract.
// PushN sorts the batch once into a per-worker scratch, publishes
// below-head singletons through the exchange, and publishes each
// remaining same-chunk run with a single count-word CAS on the owning
// chunk — one CAS per touched chunk, not per element.
//
// # Progress and allocation
//
// Every CAS failure implies another operation succeeded, so pushes,
// pops and structural changes are lock-free; the only unbounded waits
// are publication windows — between a count reservation and its ready
// flag, and between an exchange slot's reservation and its resolution
// — which a reader spins out with Gosched (bounded by the publishing
// thread being scheduled across a few instructions, as in the original
// CBPQ's frozenness wait). Steady-state allocation is amortized
// O(1/ChunkCap) chunks per operation; on the decremental-key workload
// the exchange absorbs push/pop pairs for one small immutable entry
// allocation each (boxing is what makes concurrent readers of a
// recycling slot race-free) instead of a full rebuild. Rebuilds
// allocate a handful of chunks per ChunkCap pops, CAS losers recycle
// through the per-worker freelist, and popped or recycled slots are
// zeroed so the queue retains no payload memory (see the retention
// test).
package cbpq

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/pq"
	"repro/internal/sched"
)

// DefaultChunkCap is the chunk capacity used when Config.ChunkCap is 0.
// 128 amortizes splits and rebuilds over twice as many operations as
// the original 64 while a chunk's items still fit comfortably in L1;
// measured on the hold and uniform microbenchmarks it beats both 64
// (split churn) and 256 (head-rebuild copy cost scales with the head,
// which is sized as a multiple of ChunkCap).
const DefaultChunkCap = 128

// maxFreeChunks bounds the per-worker freelist of recycled candidate
// chunks (CAS losers); beyond this they are dropped for the GC.
const maxFreeChunks = 8

// Live-chunk slot flags: a reserved slot moves free → ready when its
// item has been published. Head chunks carry no per-slot state at all —
// the claim CAS on the packed idx word is the claim, and freezing goes
// through the same word (see freezeHead).
const (
	slotFree  uint32 = 0
	slotReady uint32 = 1
)

// The head chunk's idx word packs [ freeze:1 | publishes:46 | index:17 ]:
//
//   - headFrozen is the freeze bit: once a rebuild ORs it in, every
//     claim CAS and exchange publish CAS against the word fails, so
//     the word is immutable and the index it holds is the claim cut.
//   - the publish counter (stepped by headSeqOne) counts exchange
//     publishes against this head. It only ever grows, so "counter
//     unchanged across a CAS/load" proves no entry was published in
//     between — the pillar of every exactness argument above. 46 bits
//     cannot overflow within a head's lifetime in any realistic run.
//   - the index occupies the low headIdxBits bits; claims only advance
//     it via CAS while it is below the head count, so it never exceeds
//     ChunkCap (<= 65536, which is why 17 bits suffice).
const (
	headFrozen  = uint64(1) << 63
	headIdxBits = 17
	headIdxMask = uint64(1)<<headIdxBits - 1
	headSeqOne  = uint64(1) << headIdxBits
	headSeqMask = headFrozen - headSeqOne
)

// Exchange slot states. Writers own a slot from the empty→busy CAS to
// their terminal store (ready on a linearized publish, back to empty on
// a withdrawn one); takers own it from the ready→claimed CAS to theirs
// (empty after a validated take, back to ready after a failed one).
// Slot data is a single atomic pointer to an immutable entry, so any
// reader at any time — including a rebuild helper lagging behind the
// winner's slot reset and a concurrent re-publisher — reads a coherent
// (p, h, v) triple; every decision based on a possibly-stale read is
// re-validated against the head's packed word before it linearizes.
const (
	exgEmpty   uint32 = iota
	exgBusy           // writer owns the slot; data being written
	exgStaged         // data valid; publish CAS in flight (possibly already linearized)
	exgReady          // published: linearized and takeable
	exgClaimed        // reserved by a taker; validation pending
)

// maxExgSlots caps the exchange array at the occupancy mask's 64 bits
// (pops scan only slots whose mask bit is set, so idle capacity is
// free); the array never has fewer than minExgSlots so workers can park
// many not-yet-minimal entries instead of overflowing into buf, whose
// entries can only be absorbed by a rebuild.
const (
	maxExgSlots = 64
	minExgSlots = 32
)

// headMult sizes the head chunk relative to ChunkCap: a head is
// consumed once per pop but rebuilt wholesale, so a larger head
// amortizes each drain-driven rebuild (and its allocations) over
// proportionally more pops. Capped so the packed index field can never
// overflow headIdxBits.
const headMult = 2

// ctl packs a live chunk's state into one word: the freeze bit on top
// of the published-reservation count.
const (
	ctlFreeze = uint64(1) << 63
	ctlCount  = ctlFreeze - 1
)

// Config parameterizes a CBPQ.
type Config struct {
	// Workers is the number of worker handles (required, >= 1).
	Workers int
	// ChunkCap is the fixed chunk capacity. 0 means DefaultChunkCap;
	// otherwise it must be in [4, 65536].
	ChunkCap int
	// DisableElimination turns off the exchange-array elimination layer,
	// leaving only the combining (buf + rebuild) path for below-head
	// inserts — the pre-elimination baseline, kept reachable for A/B
	// comparison (the zoo's cbpq-elim spec names the default layered
	// configuration).
	DisableElimination bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("cbpq: Workers must be >= 1, got %d", c.Workers)
	}
	if c.ChunkCap != 0 && (c.ChunkCap < 4 || c.ChunkCap > 1<<16) {
		return fmt.Errorf("cbpq: ChunkCap must be 0 (default) or in [4, 65536], got %d", c.ChunkCap)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.ChunkCap == 0 {
		c.ChunkCap = DefaultChunkCap
	}
	return c
}

// chunk is a fixed-capacity run of items. A head chunk uses the sorted
// prefix items[:n] and idx as the packed freeze|publishes|index word. A
// live chunk uses ctl as its freeze|count word and flags as per-slot
// publication (ready) bits; min is the inclusive lower bound of its
// priority range.
type chunk[T any] struct {
	min uint64
	n   int
	// pre counts the slots filled at build time by prefill. They were
	// written before the chunk was published (the root CAS orders
	// them), so freezeLive need not spin on their ready bits and
	// prefill skips len(items) ordered flag stores.
	pre int

	idx atomic.Uint64
	_   [contend.CacheLineSize - 8]byte
	ctl atomic.Uint64
	_   [contend.CacheLineSize - 8]byte
	// bmin is the minimum priority ever appended while the chunk served
	// as a spine's buf (^0 when unused). A buf append publishes bmin
	// then bumps the head's publish counter, so pops see buf entries
	// without a rebuild; padded because pushers write it while every
	// reader needs the slice headers below.
	bmin atomic.Uint64
	_    [contend.CacheLineSize - 8]byte

	items []pq.Item[T]
	flags []atomic.Uint32
}

// exgEntry is one published exchange entry: the priority/value pair and
// the head chunk whose publish counter linearized it. Entries are
// immutable after publication — a slot swaps whole entries through one
// atomic pointer — which is what lets scans, takes and rebuild helpers
// read them without further synchronization (see the state constants).
type exgEntry[T any] struct {
	p uint64
	h *chunk[T]
	v T
}

// exgSlot is one padded exchange-array slot: the state machine word and
// the current entry. The entry pointer is nil exactly when no payload is
// resident, so releasing a taken or merged entry is one atomic store.
type exgSlot[T any] struct {
	state atomic.Uint32
	// i is the slot's index in the exchange array (fixed at New),
	// letting takers and the rebuild winner clear the right occupancy
	// mask bit without pointer arithmetic.
	i  int32
	_  [contend.CacheLineSize - 8]byte
	it atomic.Pointer[exgEntry[T]]
	_  [contend.CacheLineSize - 8]byte
}

// spine is the immutable root snapshot: the sorted head, the head-range
// insertion buffer, and the interior chunks ascending by min. Every
// structural change installs a fresh spine with one CAS. mins mirrors
// live[i].min in a flat pointer-free array so the per-push binary
// search probes one cache-resident uint64 run instead of chasing a
// chunk pointer per probe.
type spine[T any] struct {
	head *chunk[T]
	buf  *chunk[T]
	live []*chunk[T]
	mins []uint64
}

// targetIdx returns the index in live of the chunk owning priority p
// (the last chunk with min <= p), or -1 when p belongs to the head
// range and must go through the exchange or buf.
func (s *spine[T]) targetIdx(p uint64) int {
	mins := s.mins
	if len(mins) == 0 || p < mins[0] {
		return -1
	}
	lo, hi := 0, len(mins)
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if mins[mid] <= p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Queue is a lock-free chunked priority queue. Create with New, then
// hand each goroutine its own Worker.
type Queue[T any] struct {
	cfg Config
	// headCap is the head chunk capacity (headMult * ChunkCap, capped
	// so the packed index field cannot overflow).
	headCap int
	root    atomic.Pointer[spine[T]]
	_       [contend.CacheLineSize]byte

	// exgMask is the exchange occupancy mask: bit i is set while slot i
	// may hold an entry (set between the empty->busy claim and the
	// entry store, cleared just before a slot returns to empty). It may
	// transiently overstate occupancy — scans re-check slot state — but
	// never understates it, so iterating its set bits visits every
	// present entry.
	exgMask atomic.Uint64
	_       [contend.CacheLineSize - 8]byte

	exg    []exgSlot[T]
	exgAll uint64

	workers  []worker[T]
	counters []sched.Counters
}

type worker[T any] struct {
	q  *Queue[T]
	c  *sched.Counters
	id int

	// batch holds PushN's sorted copy; merge is the rebuild/split
	// scratch (distinct because PushN drives rebuilds mid-batch) and
	// merge2 its partner for the sorted-run merge (the two swap roles);
	// exgTaken is the rebuild's collected-exchange-slot scratch.
	batch    []pq.Item[T]
	merge    []pq.Item[T]
	merge2   []pq.Item[T]
	exgTaken []*exgSlot[T]

	// built tracks the candidate chunks of the current structural
	// attempt; free pools recycled CAS losers (interior/buf chunks) and
	// freeHead the headCap-sized head candidates, which carry no flags
	// and must never be reused as interior chunks.
	built    []*chunk[T]
	free     []*chunk[T]
	freeHead []*chunk[T]

	_ [contend.CacheLineSize]byte
}

// New builds a CBPQ. It panics if cfg is invalid (see Config.Validate).
func New[T any](cfg Config) *Queue[T] {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.withDefaults()
	q := &Queue[T]{
		cfg:      cfg,
		headCap:  min(headMult*cfg.ChunkCap, 1<<16),
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	if !cfg.DisableElimination {
		q.exg = make([]exgSlot[T], min(max(cfg.Workers, minExgSlots), maxExgSlots))
		for i := range q.exg {
			q.exg[i].i = int32(i)
		}
		q.exgAll = ^uint64(0) >> (64 - len(q.exg))
	}
	for i := range q.workers {
		q.workers[i] = worker[T]{q: q, c: &q.counters[i], id: i}
	}
	w := &q.workers[0]
	q.root.Store(&spine[T]{head: w.getHead(), buf: w.getChunk()})
	w.commitBuilt()
	return q
}

// Workers returns the number of worker handles.
func (q *Queue[T]) Workers() int { return q.cfg.Workers }

// Worker returns the handle for worker w. Each handle must be used by
// at most one goroutine at a time.
func (q *Queue[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= q.cfg.Workers {
		panic(fmt.Sprintf("cbpq: worker index %d out of range [0,%d)", w, q.cfg.Workers))
	}
	return &q.workers[w]
}

// Stats aggregates the per-worker counters. LockFails counts CAS
// failures (there are no locks to fail); Eliminations counts pops
// served straight from the exchange array, Combines below-head inserts
// merged in bulk by a combining rebuild.
func (q *Queue[T]) Stats() sched.Stats { return sched.SumCounters(q.counters) }

// Push inserts one task.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.push1(p, v)
}

func (w *worker[T]) push1(p uint64, v T) {
	q := w.q
	for {
		s := q.root.Load()
		if k := s.targetIdx(p); k >= 0 {
			c := s.live[k]
			if c.tryAppend(w, p, v) {
				return
			}
			q.split(w, s, k)
			continue
		}
		if w.exgPublish(s.head, p, v) {
			return
		}
		b := s.buf
		if b.tryAppend(w, p, v) {
			if b.publishBufMin(s.head, p) {
				// Linearized at the counter bump, exactly like an
				// exchange publish: pops fold b's bmin into their limit
				// and the bump invalidates any concurrent head claim.
				return
			}
			// Head froze mid-publish. The append beat buf's freeze (buf
			// freezes before the head does), so the in-flight rebuild's
			// merge set includes this entry and its root CAS linearizes
			// it; drive rebuilds until one lands.
			for {
				cur := q.root.Load()
				if cur.buf != b {
					return
				}
				q.rebuild(w, cur)
			}
		}
		q.rebuild(w, s)
	}
}

// publishBufMin makes a freshly appended buf entry of priority p
// visible to pops: fold p into the buf's monotone minimum, then bump
// h's publish counter — the entry's linearization point, validated by
// every pop's claiming CAS just like an exchange publish. Returns false
// when the head froze first; the caller's entry then rides the
// in-flight rebuild instead (it is already inside the frozen count).
func (c *chunk[T]) publishBufMin(h *chunk[T], p uint64) bool {
	for {
		cur := c.bmin.Load()
		if p >= cur || c.bmin.CompareAndSwap(cur, p) {
			break
		}
	}
	for {
		hw := h.idx.Load()
		if hw&headFrozen != 0 {
			return false
		}
		if h.idx.CompareAndSwap(hw, hw+headSeqOne) {
			return true
		}
	}
}

// exgPublish tries to linearize a below-head insert through the
// exchange array: claim a free slot, write the entry, and bump the
// publish counter in h's packed word with one CAS — the linearization
// point. It fails (false) when elimination is disabled, every slot is
// occupied, or the head froze mid-publish; in the last case the entry
// is withdrawn unobserved (it never linearized) and the caller falls
// back to the combining buf path.
//
// A probe starts at the worker's own slot but may park in any free
// one: parked entries that are not yet minimal simply wait — pops take
// them as the minimum rises, and any rebuild merges them — so the
// array doubles as the combining layer's bounded pending set.
func (w *worker[T]) exgPublish(h *chunk[T], p uint64, v T) bool {
	q := w.q
	if len(q.exg) == 0 || h.idx.Load()&headFrozen != 0 {
		return false
	}
	free := ^q.exgMask.Load() & q.exgAll
	// Prefer free slots at or above the worker's home index so
	// concurrent publishers fan out instead of racing the lowest bit.
	start := uint(w.id) % uint(len(q.exg))
	for _, part := range [2]uint64{free &^ (uint64(1)<<start - 1), free & (uint64(1)<<start - 1)} {
		for ; part != 0; part &= part - 1 {
			sl := &q.exg[bits.TrailingZeros64(part)]
			if sl.state.Load() != exgEmpty || !sl.state.CompareAndSwap(exgEmpty, exgBusy) {
				continue
			}
			// The mask bit is set while the slot is owned and before the
			// entry becomes visible, so a scan ordered after this
			// publish's counter bump cannot miss the slot.
			q.exgMask.Or(uint64(1) << uint(sl.i))
			sl.it.Store(&exgEntry[T]{p: p, h: h, v: v})
			sl.state.Store(exgStaged)
			for {
				hw := h.idx.Load()
				if hw&headFrozen != 0 {
					break
				}
				if h.idx.CompareAndSwap(hw, hw+headSeqOne) {
					// Linearized: the counter bump is what every pop and
					// emptiness snapshot validates against.
					sl.state.Store(exgReady)
					return true
				}
				w.c.LockFails++
			}
			// Head frozen mid-publish: withdraw. No pop can have taken the
			// entry (it was never ready) and no rebuild collects a staged
			// slot, so the entry simply never happened. The bit clears
			// before the slot reopens, so it can't erase a successor's.
			sl.it.Store(nil)
			q.exgMask.And(^(uint64(1) << uint(sl.i)))
			sl.state.Store(exgEmpty)
			return false
		}
	}
	return false
}

// exgView summarizes one scan of the exchange array against head h:
// the minimum takeable (ready) entry, and the minimum over entries
// that may already be present but cannot be taken — staged publishes
// (their counter bump may already have landed) and other pops'
// reservations. Decisions taken from a view are sound only when
// validated against h's packed word afterwards; the caller must have
// loaded that word BEFORE the scan, so that any entry the scan missed
// published after that load and is caught by the counter comparison.
type exgView[T any] struct {
	ready  *exgSlot[T]
	readyP uint64
	pendP  uint64
	any    bool
}

func (q *Queue[T]) exgScan(h *chunk[T]) exgView[T] {
	view := exgView[T]{readyP: ^uint64(0), pendP: ^uint64(0)}
	// The occupancy mask may overstate (bits clear only after a slot's
	// entry is gone) but never understates a published entry: the bit is
	// set before the entry stores, so a scan ordered after the entry's
	// counter bump observes it. Iterating set bits keeps the scan
	// O(occupied) instead of O(len(exg)).
	for set := q.exgMask.Load(); set != 0; set &= set - 1 {
		sl := &q.exg[bits.TrailingZeros64(set)]
		st := sl.state.Load()
		if st == exgEmpty || st == exgBusy {
			continue // busy slots have not linearized yet (their counter bump follows staging)
		}
		e := sl.it.Load()
		if e == nil || e.h != h {
			continue // stale slot of an already-rebuilt head: merged or withdrawn, not present
		}
		view.any = true
		if st == exgReady {
			if view.ready == nil || e.p < view.readyP {
				view.ready, view.readyP = sl, e.p
			}
		} else if e.p < view.pendP {
			view.pendP = e.p
		}
	}
	return view
}

// exgTake attempts to pop the exchange entry in sl, which the caller's
// scan (run under head word hw) found ready with priority no greater
// than every other possibly-present entry and the head minimum. The
// reservation (ready→claimed) is revocable — other pops keep treating
// the entry as present — so the failure paths below never un-linearize
// anything. The take linearizes at the validating load of h's packed
// word: unfrozen with an unchanged publish counter proves the scanned
// minimality still holds at that instant (the head minimum only grows,
// takes only remove entries, and no new entry has published).
func (w *worker[T]) exgTake(h *chunk[T], hw uint64, sl *exgSlot[T]) (uint64, T, bool) {
	var zero T
	if !sl.state.CompareAndSwap(exgReady, exgClaimed) {
		return 0, zero, false
	}
	e := sl.it.Load()
	if e == nil || e.h != h {
		sl.state.Store(exgReady)
		return 0, zero, false
	}
	hw2 := h.idx.Load()
	if hw2&headFrozen != 0 || (hw2^hw)&headSeqMask != 0 {
		sl.state.Store(exgReady)
		return 0, zero, false
	}
	sl.it.Store(nil)
	w.q.exgMask.And(^(uint64(1) << uint(sl.i)))
	sl.state.Store(exgEmpty)
	w.c.Pops++
	w.c.Eliminations++
	return e.p, e.v, true
}

// Pop removes and returns a minimum-priority task, or ok=false when the
// queue is empty. The hot path is one CAS on the head's packed word,
// preceded by an exchange scan; the CAS doubles as the validation that
// no smaller entry was published concurrently (see the package docs'
// elimination section for the linearization argument).
func (w *worker[T]) Pop() (uint64, T, bool) {
	q := w.q
	var zero T
	for {
		s := q.root.Load()
		h := s.head
		hw := h.idx.Load()
		if hw&headFrozen != 0 {
			q.rebuild(w, s)
			continue
		}
		v := hw & headIdxMask
		ex := q.exgScan(h)
		bm := s.buf.bmin.Load()
		limit := min(ex.readyP, ex.pendP, bm)
		if v < uint64(h.n) && h.items[v].P <= limit {
			// Head claim. Success proves the publish counter is
			// unchanged since the scan, so every exchange or buf entry
			// present at this instant was accounted for and has
			// priority >= items[v].P.
			if h.idx.CompareAndSwap(hw, hw+1) {
				it := h.items[v]
				h.items[v].V = zero
				w.c.Pops++
				return it.P, it.V, true
			}
			w.c.LockFails++
			continue
		}
		if ex.ready != nil && ex.readyP <= ex.pendP && ex.readyP <= bm {
			if p, val, ok := w.exgTake(h, hw, ex.ready); ok {
				return p, val, true
			}
			continue
		}
		if ex.any && min(ex.readyP, ex.pendP) < bm {
			// The smallest possibly-present entry is mid-publish or
			// reserved by another pop; both resolve within a few steps
			// of their owner. (A smaller buf entry instead falls through
			// to the rebuild below, which is what surfaces buf.)
			runtime.Gosched()
			continue
		}
		// Report empty only from a consistent snapshot: the head was
		// observed drained with the freeze bit clear, the exchange scan
		// found nothing, buf.ctl == 0 rules out both pending buf
		// entries and an in-flight rebuild of s (a rebuild freezes buf
		// — making ctl nonzero forever — before it touches the head or
		// the root), and re-reading the packed word unchanged proves no
		// exchange publish landed anywhere in the window. That second
		// read is the linearization point.
		if v >= uint64(h.n) && s.buf.ctl.Load() == 0 && len(s.live) == 0 && h.idx.Load() == hw {
			w.c.EmptyPops++
			return 0, zero, false
		}
		q.rebuild(w, s)
	}
}

// PushN inserts a batch (see sched.Worker). The batch is sorted once;
// below-head entries publish through the exchange while it has room,
// and each remaining run of entries owned by the same chunk is
// published with a single count-word CAS (or lands in buf and is
// merged by one combining rebuild).
func (w *worker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	q := w.q
	batch := w.batch[:0]
	for i, p := range ps {
		batch = append(batch, pq.Item[T]{P: p, V: vs[i]})
	}
	slices.SortFunc(batch, itemCmp)
	w.batch = batch

	var lastBuf *chunk[T]
	i := 0
	for i < len(batch) {
		s := q.root.Load()
		p := batch[i].P
		if k := s.targetIdx(p); k >= 0 {
			c := s.live[k]
			hi := uint64(1<<64 - 1)
			if k+1 < len(s.live) {
				hi = s.live[k+1].min
			}
			j := i + 1
			for j < len(batch) && batch[j].P < hi {
				j++
			}
			if n := c.tryAppendRun(w, batch[i:j]); n > 0 {
				i += n
				continue
			}
			q.split(w, s, k)
			continue
		}
		hi := uint64(1<<64 - 1)
		if len(s.live) > 0 {
			hi = s.live[0].min
		}
		j := i + 1
		for j < len(batch) && batch[j].P < hi {
			j++
		}
		for i < j && w.exgPublish(s.head, batch[i].P, batch[i].V) {
			i++
		}
		if i >= j {
			continue
		}
		if n := s.buf.tryAppendRun(w, batch[i:j]); n > 0 {
			// batch is ascending, so batch[i].P is the run's minimum;
			// one counter bump linearizes the whole run unless the head
			// froze first, in which case the run rides the in-flight
			// rebuild (drained after the loop).
			if !s.buf.publishBufMin(s.head, batch[i].P) {
				lastBuf = s.buf
			}
			i += n
			continue
		}
		q.rebuild(w, s)
	}
	if lastBuf != nil {
		for {
			cur := q.root.Load()
			if cur.buf != lastBuf {
				break
			}
			q.rebuild(w, cur)
		}
	}
	clear(w.batch)
	w.batch = w.batch[:0]
}

// PopN removes up to len(dst) tasks. Each consecutive sorted head run
// is claimed with one CAS on the packed word — bounded so the run
// never overtakes a smaller exchange entry — and exchange takes fill
// single batch slots. Every claimed task is individually exact at its
// own linearization point; the batch is ascending in the absence of
// concurrent pushes (see the package docs on batches).
func (w *worker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	q := w.q
	var zero T
	n := 0
	for n < len(dst) {
		s := q.root.Load()
		h := s.head
		hw := h.idx.Load()
		if hw&headFrozen != 0 {
			q.rebuild(w, s)
			continue
		}
		v := hw & headIdxMask
		ex := q.exgScan(h)
		bm := s.buf.bmin.Load()
		limit := min(ex.readyP, ex.pendP, bm)
		if v < uint64(h.n) && h.items[v].P <= limit {
			end := min(v+uint64(len(dst)-n), uint64(h.n))
			for end > v+1 && h.items[end-1].P > limit {
				end--
			}
			if h.idx.CompareAndSwap(hw, hw+(end-v)) {
				for i := v; i < end; i++ {
					dst[n] = h.items[i]
					h.items[i].V = zero
					n++
				}
				w.c.Pops += end - v
				continue
			}
			w.c.LockFails++
			continue
		}
		if ex.ready != nil && ex.readyP <= ex.pendP && ex.readyP <= bm {
			if p, val, ok := w.exgTake(h, hw, ex.ready); ok {
				dst[n] = sched.Task[T]{P: p, V: val}
				n++
			}
			continue
		}
		if ex.any && min(ex.readyP, ex.pendP) < bm {
			runtime.Gosched()
			continue
		}
		// Same consistent-snapshot emptiness argument as Pop.
		if v >= uint64(h.n) && s.buf.ctl.Load() == 0 && len(s.live) == 0 && h.idx.Load() == hw {
			break
		}
		q.rebuild(w, s)
	}
	if n == 0 {
		w.c.EmptyPops++
	}
	return n
}

// tryAppend reserves one slot in a live chunk with a count-word CAS and
// publishes the item behind its ready flag. It fails (false) when the
// chunk is frozen or full.
func (c *chunk[T]) tryAppend(w *worker[T], p uint64, v T) bool {
	for {
		ctl := c.ctl.Load()
		if ctl&ctlFreeze != 0 {
			return false
		}
		n := int(ctl & ctlCount)
		if n >= len(c.items) {
			return false
		}
		if c.ctl.CompareAndSwap(ctl, ctl+1) {
			c.items[n] = pq.Item[T]{P: p, V: v}
			c.flags[n].Store(slotReady)
			return true
		}
		w.c.LockFails++
	}
}

// tryAppendRun reserves space for as much of run as fits with a single
// count-word CAS, publishes the copied items, and returns how many were
// taken (0 when frozen or full).
func (c *chunk[T]) tryAppendRun(w *worker[T], run []pq.Item[T]) int {
	for {
		ctl := c.ctl.Load()
		if ctl&ctlFreeze != 0 {
			return 0
		}
		n := int(ctl & ctlCount)
		r := min(len(c.items)-n, len(run))
		if r == 0 {
			return 0
		}
		if c.ctl.CompareAndSwap(ctl, ctl+uint64(r)) {
			copy(c.items[n:n+r], run[:r])
			for i := n; i < n+r; i++ {
				c.flags[i].Store(slotReady)
			}
			return r
		}
		w.c.LockFails++
	}
}

// freezeLive sets the chunk's freeze bit and waits out in-flight
// publications; afterwards items[:count] is stable and fully visible.
// Returns the frozen count.
func freezeLive[T any](c *chunk[T]) int {
	n := int(c.ctl.Or(ctlFreeze) & ctlCount)
	// Slots below pre were published by the root CAS that installed the
	// chunk; only appended slots carry per-slot ready bits to wait out.
	for i := c.pre; i < n; i++ {
		for spins := 0; c.flags[i].Load() != slotReady; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
		}
	}
	return n
}

// freezeHead freezes a head chunk atomically through its packed word:
// one Or sets the freeze bit, and the index the Or observed is the
// claim cut — every smaller index was advanced by a claim CAS that
// preceded the freeze (an owned, already-linearized pop), and no index
// at or above it can ever be claimed, because every CAS against a
// frozen word fails. The same failure rule covers exchange publishes,
// so the freeze simultaneously stops the exchange's publish counter.
// The word is immutable once frozen (claims are CASes, not
// fetch-and-adds, so nothing inflates it afterwards); every helper
// therefore reads the same cut straight from the Or's return value,
// with no separate cut publication or wait.
func freezeHead[T any](h *chunk[T]) int {
	v := h.idx.Or(headFrozen)
	return int(min(v&headIdxMask, uint64(h.n)))
}

// exgDrain waits for the exchange array to settle against the frozen
// head of s and returns the slots holding its surviving entries. After
// the head freeze no publish can linearize (the counter CAS fails on a
// frozen word) and no take can validate (its load sees the freeze
// bit), so every slot resolves in a bounded number of its owner's
// steps: mid-publish entries withdraw to empty, reservations revert to
// ready, and takes that validated before the freeze finish emptying
// their slot. The settled ready set under this head is then identical
// for every helper, which is what keeps helper candidates equivalent.
// Returns ok=false when the root moved off s while waiting — another
// helper completed the rebuild and this attempt is moot.
func (q *Queue[T]) exgDrain(w *worker[T], s *spine[T]) ([]*exgSlot[T], bool) {
	h := s.head
	out := w.exgTaken[:0]
	for spins := 0; ; spins++ {
		if q.root.Load() != s {
			w.exgTaken = out[:0]
			return nil, false
		}
		out = out[:0]
		settled := true
		for i := range q.exg {
			sl := &q.exg[i]
			switch sl.state.Load() {
			case exgBusy, exgStaged, exgClaimed:
				settled = false
			case exgReady:
				if e := sl.it.Load(); e != nil && e.h == h {
					out = append(out, sl)
				}
			}
			if !settled {
				break
			}
		}
		if settled {
			w.exgTaken = out
			return out, true
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// rebuild replaces spine s with one whose head is freshly sorted from
// the head's unclaimed survivors plus the frozen buf and the settled
// exchange entries — pulling in whole interior chunks until the head
// is full — plus spill chunks for the overflow and an empty buf. This
// is the combining path: however many below-head inserts are pending
// across buf and the exchange, one cycle merges them all. Safe to call
// from any thread at any time; helpers build equivalent candidates and
// exactly one root CAS wins. Only the winner resets the merged
// exchange slots (losers must not: the settled set must stay intact
// until the winning spine is published); until the reset the slots are
// inert, since their recorded head is frozen forever.
func (q *Queue[T]) rebuild(w *worker[T], s *spine[T]) {
	if q.root.Load() != s {
		return
	}
	bn := freezeLive(s.buf)
	h := s.head
	cut := freezeHead(h)
	ex, ok := q.exgDrain(w, s)
	if !ok {
		return
	}
	m := w.merge[:0]
	m = append(m, h.items[cut:h.n]...)
	// The survivors are the head's sorted tail; everything appended
	// after this point (buf, exchange, pulled-in interior chunks) is
	// unordered. Remembering the boundary lets the sort below touch
	// only the unordered part.
	sorted := len(m)
	m = append(m, s.buf.items[:bn]...)
	for _, sl := range ex {
		// Only the winner ever resets these slots, and under a frozen
		// head no take can empty them, so for the eventual winner every
		// collected entry is still resident; a lagging helper may read
		// nil or a re-published entry under a different head here, but
		// its candidate is doomed (the root has already moved) and the
		// pointer swap keeps even that read coherent.
		if e := sl.it.Load(); e != nil && e.h == h {
			m = append(m, pq.Item[T]{P: e.p, V: e.v})
		}
	}
	// Pull in whole interior chunks until the new head is nearly full:
	// always rebuilding to a ~headCap head is what keeps the
	// amortization (one rebuild per ~headCap pops) — promoting only on
	// a fully drained head would let heads shrink and rebuilds cascade.
	// The pull target sits one chunk below the fill target so that a
	// whole-chunk overshoot still lands within headCap, which preserves
	// the head array's slack (see below) for the absorb rebuilds that
	// follow. The rule is a deterministic function of the frozen
	// counts, so concurrent helpers still build equivalent candidates.
	cap_ := q.cfg.ChunkCap
	hcap := q.headCap
	live := s.live
	pullTo := max(hcap-cap_, min(hcap, cap_))
	for len(m) < pullTo && len(live) > 0 {
		ln := freezeLive(live[0])
		m = append(m, live[0].items[:ln]...)
		live = live[1:]
	}
	// In the hold steady state the merge set is dominated by the
	// already-sorted survivor run, so sort only the unordered tail and
	// merge the two runs instead of re-sorting the whole set.
	if sorted < len(m) {
		slices.SortFunc(m[sorted:], itemCmp)
		if sorted > 0 {
			m = w.mergeRuns(m, sorted)
		}
	}

	// Small overflows stay in the head: head arrays carry a full chunk
	// of slack beyond the headCap fill target, so neither a merge set
	// that barely exceeds the target nor a pull-in that overshoots it
	// by part of a chunk sheds a tiny spill chunk. Tiny spills are
	// poison in the hold steady state — each becomes an interior chunk
	// just above the head, they accumulate one per rebuild, and routing
	// plus split churn lands on the decremental fast path — so a
	// rebuild only spills when a chunk's worth of overflow has built
	// up, and the spilled run is then at least half a chunk itself.
	head2 := w.getHead()
	nh := len(m)
	if nh > len(head2.items) {
		nh = hcap
	}
	head2.n = nh
	copy(head2.items[:nh], m[:nh])

	// Spill the overflow in equal-sized runs of at least half a chunk
	// (never a 512,512,57-style remainder: a sub-half spill chunk fills
	// and splits almost immediately).
	rest := m[nh:]
	nspill := max(1, len(rest)/max(1, cap_/2))
	newLive := make([]*chunk[T], 0, nspill+len(live))
	mins2 := make([]uint64, 0, cap(newLive))
	for n := nspill; len(rest) > 0; n-- {
		r := (len(rest) + n - 1) / n
		newLive = append(newLive, w.prefill(rest[0].P, rest[:r]))
		mins2 = append(mins2, rest[0].P)
		rest = rest[r:]
	}
	newLive = append(newLive, live...)
	mins2 = append(mins2, s.mins[len(s.mins)-len(live):]...)

	s2 := &spine[T]{head: head2, buf: w.getChunk(), live: newLive, mins: mins2}
	if q.root.CompareAndSwap(s, s2) {
		w.commitBuilt()
		if bn+len(ex) > 0 {
			w.c.Combines += uint64(bn + len(ex))
		}
		// Reset the merged slots. The nil entry releases the payload and
		// makes the slot invisible to scans (a lagging helper still
		// reading for its doomed candidate just sees the atomic swap);
		// the CAS waits out any transient reservation flap from an
		// old-generation pop about to notice the freeze.
		for _, sl := range ex {
			sl.it.Store(nil)
			q.exgMask.And(^(uint64(1) << uint(sl.i)))
			for !sl.state.CompareAndSwap(exgReady, exgEmpty) {
				runtime.Gosched()
			}
		}
	} else {
		w.c.LockFails++
		w.recycleBuilt()
	}
	// mergeRuns may have swapped the scratch buffers; release payload
	// references held by both so neither retains popped values.
	clear(m)
	w.merge = m[:0]
	clear(w.merge2)
	w.merge2 = w.merge2[:0]
}

// mergeRuns merges the two ascending runs m[:k] and m[k:] into the
// worker's partner scratch buffer, swaps the two buffers' roles, and
// returns the merged slice. rebuild uses it because its merge set is
// mostly the head's already-sorted survivors: sorting only the short
// unordered tail and merging the runs is much cheaper than re-sorting
// the whole set every ~ChunkCap pops.
func (w *worker[T]) mergeRuns(m []pq.Item[T], k int) []pq.Item[T] {
	out := w.merge2[:0]
	i, j := 0, k
	for i < k && j < len(m) {
		if m[j].P < m[i].P {
			out = append(out, m[j])
			j++
		} else {
			out = append(out, m[i])
			i++
		}
	}
	out = append(out, m[i:k]...)
	out = append(out, m[j:]...)
	w.merge2 = m
	return out
}

// split replaces the frozen (or about-to-freeze) live chunk s.live[k]
// with two halves around its median — or a single thawed copy when it
// holds fewer than two entries. Like rebuild, any thread can help and
// one root CAS wins. The head and its exchange entries are untouched:
// a split never changes live[0].min, so "below head" stays below head.
func (q *Queue[T]) split(w *worker[T], s *spine[T], k int) {
	if q.root.Load() != s {
		return
	}
	c := s.live[k]
	n := freezeLive(c)
	m := w.merge[:0]
	m = append(m, c.items[:n]...)

	var repl []*chunk[T]
	if len(m) < 2 {
		repl = []*chunk[T]{w.prefill(c.min, m)}
	} else {
		// A split only needs the median boundary, not sorted halves:
		// interior chunk membership is unordered by design (ordering is
		// established when a rebuild pulls the chunk into a sorted
		// head), so a quickselect partition replaces the full sort.
		mid := partitionMid(m)
		repl = []*chunk[T]{w.prefill(c.min, m[:mid]), w.prefill(m[mid].P, m[mid:])}
	}
	newLive := make([]*chunk[T], 0, len(s.live)+1)
	newLive = append(newLive, s.live[:k]...)
	newLive = append(newLive, repl...)
	newLive = append(newLive, s.live[k+1:]...)
	mins2 := make([]uint64, 0, len(s.mins)+1)
	mins2 = append(mins2, s.mins[:k]...)
	for _, rc := range repl {
		mins2 = append(mins2, rc.min)
	}
	mins2 = append(mins2, s.mins[k+1:]...)

	s2 := &spine[T]{head: s.head, buf: s.buf, live: newLive, mins: mins2}
	if q.root.CompareAndSwap(s, s2) {
		w.commitBuilt()
	} else {
		w.c.LockFails++
		w.recycleBuilt()
	}
	clear(m)
	w.merge = m[:0]
}

// partitionMid reorders m (len >= 2) so that every element of m[:mid]
// is <= every element of m[mid:] and m[mid] holds exactly the value a
// full sort would place at mid, where mid = len(m)/2. Hoare-partition
// quickselect with median-of-three pivots, falling back to a sort once
// the segment straddling mid is small. Deterministic (no randomness),
// so concurrent helpers partitioning identical frozen snapshots still
// build equivalent split candidates; expected O(n) versus the
// O(n log n) full sort it replaces, and n is bounded by ChunkCap.
func partitionMid[T any](m []pq.Item[T]) int {
	mid := len(m) / 2
	lo, hi := 0, len(m)
	for hi-lo > 8 {
		p := med3(m[lo].P, m[(lo+hi)/2].P, m[hi-1].P)
		i, j := lo-1, hi
		for {
			for i++; m[i].P < p; i++ {
			}
			for j--; m[j].P > p; j-- {
			}
			if i >= j {
				break
			}
			m[i], m[j] = m[j], m[i]
		}
		// Hoare invariant: m[lo:j+1] <= p <= m[j+1:hi], and with a
		// median-of-three pivot j lands strictly inside the segment, so
		// narrowing to the side holding mid always makes progress.
		if mid <= j {
			hi = j + 1
		} else {
			lo = j + 1
		}
	}
	slices.SortFunc(m[lo:hi], itemCmp)
	return mid
}

// med3 returns the median of three priorities.
func med3(a, b, c uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	return max(a, b)
}

// prefill builds a fully published live chunk holding items, with range
// lower bound min.
func (w *worker[T]) prefill(min uint64, items []pq.Item[T]) *chunk[T] {
	c := w.getChunk()
	c.min = min
	copy(c.items, items)
	// No per-slot ready bits: the chunk is private until the root CAS
	// publishes it, which orders these plain writes for every reader;
	// pre tells freezeLive the prefix needs no flag spin.
	c.pre = len(items)
	c.ctl.Store(uint64(len(items)))
	return c
}

// getChunk takes a chunk from the per-worker freelist (or allocates
// one) and records it as part of the current structural attempt.
func (w *worker[T]) getChunk() *chunk[T] {
	var c *chunk[T]
	if n := len(w.free); n > 0 {
		c = w.free[n-1]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
	} else {
		c = &chunk[T]{
			items: make([]pq.Item[T], w.q.cfg.ChunkCap),
			flags: make([]atomic.Uint32, w.q.cfg.ChunkCap),
		}
	}
	c.bmin.Store(^uint64(0))
	w.built = append(w.built, c)
	return c
}

// getHead is getChunk for head candidates: items sized headCap plus a
// chunk of spill slack (see rebuild), no flags (heads are
// immutable after their publishing CAS and consumed through the packed
// idx word, so per-slot ready bits are meaningless).
func (w *worker[T]) getHead() *chunk[T] {
	var c *chunk[T]
	if n := len(w.freeHead); n > 0 {
		c = w.freeHead[n-1]
		w.freeHead[n-1] = nil
		w.freeHead = w.freeHead[:n-1]
	} else {
		n := w.q.headCap + w.q.cfg.ChunkCap
		if n > (1<<headIdxBits)-1 {
			n = (1 << headIdxBits) - 1
		}
		c = &chunk[T]{items: make([]pq.Item[T], n)}
	}
	c.bmin.Store(^uint64(0))
	w.built = append(w.built, c)
	return c
}

// commitBuilt forgets the candidates of a won CAS: they are published
// now and must never return to the pool (that would ABA the root CAS).
// The pointers are nilled, not just truncated away: a published chunk
// eventually retires carrying unzeroed survivor copies, and a stale
// pointer in the scratch backing array would pin those payloads.
func (w *worker[T]) commitBuilt() {
	clear(w.built)
	w.built = w.built[:0]
}

// recycleBuilt returns the candidates of a lost CAS — memory no other
// thread has ever seen — to the freelist, zeroed so the pool retains no
// task payloads.
func (w *worker[T]) recycleBuilt() {
	for _, c := range w.built {
		// Head candidates carry no flags and have their own pool: their
		// items are headCap-sized and a flagless chunk must never serve
		// as an interior chunk or buf.
		pool := &w.free
		if c.flags == nil {
			pool = &w.freeHead
		}
		if len(*pool) < maxFreeChunks {
			c.min, c.n, c.pre = 0, 0, 0
			c.idx.Store(0)
			c.ctl.Store(0)
			clear(c.items)
			clear(c.flags)
			*pool = append(*pool, c)
		}
	}
	clear(w.built)
	w.built = w.built[:0]
}

func itemCmp[T any](a, b pq.Item[T]) int {
	switch {
	case a.P < b.P:
		return -1
	case a.P > b.P:
		return 1
	}
	return 0
}
