package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file is the spec layer of the experiment pipeline: every
// experiment declares a deterministic, enumerable list of cells — the
// independently runnable measurement units of its grid — instead of a
// closure that runs the whole grid monolithically. The enumeration is a
// pure function of the RunConfig, so two processes given the same
// config agree on every cell's index, key and derived seed; that
// agreement is what lets internal/shard split one grid across
// processes (or machines) and reassemble the fragments afterwards.

// Cell statuses, recorded per cell by the runner layer and carried into
// the perfbench artifact (schema v4).
const (
	// CellOK marks a cell that ran to completion.
	CellOK = "ok"
	// CellTimeout marks a cell abandoned (or killed, in subprocess
	// mode) after exceeding its wall-clock budget.
	CellTimeout = "timeout"
	// CellError marks a cell whose run function returned an error
	// (validation failure, unknown scheduler, ...).
	CellError = "error"
)

// Cell is one independently runnable unit of an experiment: a
// scheduler spec on a workload at a thread count (or one simulation /
// probe / baseline run), plus the derived per-cell seed. Cells are
// enumeration metadata only — running one requires the Plan that
// declared it.
type Cell struct {
	// Index is the cell's position in the experiment's enumeration
	// order (0-based, dense).
	Index int
	// Key is a stable human-readable identifier, unique within the
	// experiment: kind/workload/scheduler/params/threads.
	Key string
	// Kind classifies the cell: "measure" (scheduler on workload),
	// "seq" (sequential baseline), "sim" (rank-model simulation),
	// "probe" (empirical rank probe), "serve" (open-loop service run),
	// "graphstat" (input inventory).
	Kind string
	// Workload / Scheduler / Params / Threads describe measurement
	// cells; non-measurement kinds fill what applies.
	Workload  string
	Scheduler string
	Params    string
	Threads   int
	// Reps is how many repetitions the cell runs internally (fastest
	// kept), from RunConfig.Reps.
	Reps int
	// Seed is the cell's derived RNG seed: CellSeed(cfg.Seed, Index).
	// A cell reproduces identically whether run in-process, in a
	// shard, or alone, because the seed depends only on the base seed
	// and the (deterministic) enumeration index.
	Seed uint64
}

// CellResult is the outcome of running one cell. The measurement
// fields mirror Measurement; experiment-specific outputs (simulation
// statistics, serve metrics, graph stats) travel in Values.
type CellResult struct {
	Cell
	// Status is CellOK, CellTimeout or CellError.
	Status string
	// Error holds the failure message for non-ok statuses.
	Error string
	// Attempts counts run attempts (>1 after timeout retries).
	Attempts int
	// DurationNs is the measured metric duration (best rep), the
	// timing field excluded from merge byte-identity comparisons.
	DurationNs int64
	// ElapsedNs is the cell's total wall clock including validation
	// and baselines — also a timing field.
	ElapsedNs int64
	Tasks     uint64
	Wasted    uint64
	Remote    float64
	// Values carries experiment-specific scalars keyed by short names
	// (e.g. "meanrank", "p99ns").
	Values map[string]float64
}

// CellSeed derives the deterministic per-cell seed from the
// experiment's base seed and the cell's enumeration index, via two
// rounds of the splitmix64 finalizer. Distinct indices yield
// well-separated streams for any base.
func CellSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // a zero seed means "default" to most scheduler configs
	}
	return z
}

// Plan is a fully enumerated experiment: the deterministic cell list,
// the per-cell run functions, and the assembly that turns a complete
// set of cell results back into the experiment's paper tables.
type Plan struct {
	// Experiment is the owning experiment's registry ID.
	Experiment string
	// Config is the normalized RunConfig the plan was built from.
	Config RunConfig
	// Cells is the enumeration, dense and in index order.
	Cells []Cell

	run      []func(Cell) (CellResult, error)
	assemble func([]CellResult) ([]Table, error)
	keys     map[string]int
}

// NewPlan starts an empty plan for the experiment. The config is
// normalized once here; cells are added with AddCell.
func NewPlan(experiment string, cfg RunConfig) *Plan {
	cfg.normalize()
	return &Plan{Experiment: experiment, Config: cfg, keys: map[string]int{}}
}

// AddCell appends a cell and its run function, assigning the index and
// derived seed, and returns the index (used by assembly closures to
// address the cell's result). Duplicate keys are a registry programming
// bug and panic.
func (p *Plan) AddCell(c Cell, run func(Cell) (CellResult, error)) int {
	if c.Key == "" {
		panic(fmt.Sprintf("harness: %s: cell with empty key", p.Experiment))
	}
	if prev, dup := p.keys[c.Key]; dup {
		panic(fmt.Sprintf("harness: %s: duplicate cell key %q (cells %d and %d)",
			p.Experiment, c.Key, prev, len(p.Cells)))
	}
	c.Index = len(p.Cells)
	c.Seed = CellSeed(p.Config.Seed, c.Index)
	if c.Reps == 0 {
		c.Reps = p.Config.Reps
	}
	p.keys[c.Key] = c.Index
	p.Cells = append(p.Cells, c)
	p.run = append(p.run, run)
	return c.Index
}

// SetAssemble installs the function that builds the experiment's
// tables from a complete, all-ok result set.
func (p *Plan) SetAssemble(f func([]CellResult) ([]Table, error)) {
	p.assemble = f
}

// RunCell executes cell i in this process and returns its result with
// Status, Error and ElapsedNs stamped. It never returns an error: a
// failing run function becomes a CellError result, so one bad cell
// cannot wedge a grid.
func (p *Plan) RunCell(i int) CellResult {
	c := p.Cells[i]
	start := time.Now()
	res, err := p.run[i](c)
	res.Cell = c
	res.ElapsedNs = time.Since(start).Nanoseconds()
	res.Attempts = 1
	if err != nil {
		res.Status = CellError
		res.Error = err.Error()
	} else {
		res.Status = CellOK
	}
	return res
}

// RunAll executes every cell sequentially in enumeration order — the
// in-process path behind Experiment.Run.
func (p *Plan) RunAll() []CellResult {
	out := make([]CellResult, len(p.Cells))
	for i := range p.Cells {
		out[i] = p.RunCell(i)
	}
	return out
}

// Assemble builds the experiment's tables from a complete result set.
// It requires one result per cell, in index order, all with status ok;
// anything else (a sharded subset, a timeout) is reported as an error
// naming the offending cells — partial grids are merged at the
// artifact layer first, not assembled piecemeal.
func (p *Plan) Assemble(rs []CellResult) ([]Table, error) {
	if len(rs) != len(p.Cells) {
		return nil, fmt.Errorf("harness: %s: %d results for %d cells (merge fragments before assembling)",
			p.Experiment, len(rs), len(p.Cells))
	}
	var bad []string
	for i := range rs {
		if rs[i].Index != i {
			return nil, fmt.Errorf("harness: %s: result %d carries index %d (results must be in cell order)",
				p.Experiment, i, rs[i].Index)
		}
		if rs[i].Status != CellOK {
			bad = append(bad, fmt.Sprintf("%s (%s: %s)", rs[i].Key, rs[i].Status, rs[i].Error))
		}
	}
	if len(bad) > 0 {
		return nil, fmt.Errorf("harness: %s: %d of %d cells not ok: %s",
			p.Experiment, len(bad), len(p.Cells), strings.Join(bad, "; "))
	}
	if p.assemble == nil {
		return nil, fmt.Errorf("harness: %s: plan has no assembly", p.Experiment)
	}
	return p.assemble(rs)
}

// Fingerprint canonically serializes the sweep-defining fields of a
// RunConfig. Fragments carry it so that merging rejects results
// produced under different configurations (which would disagree on the
// cell enumeration).
func (c RunConfig) Fingerprint() string {
	c.normalize()
	ths := make([]string, len(c.Threads))
	for i, t := range c.Threads {
		ths[i] = fmt.Sprint(t)
	}
	return fmt.Sprintf("scale=%d threads=%s maxthreads=%d reps=%d validate=%t seed=%d",
		c.Scale, strings.Join(ths, ","), c.MaxThreads, c.Reps, c.Validate, c.Seed)
}

// ---------------------------------------------------------------------------
// Cell constructors shared by the experiment plans

// measureKey builds the canonical key of a measurement-family cell.
func measureKey(kind, workload, scheduler, params string, threads int) string {
	return fmt.Sprintf("%s/%s/%s/%s/t%d", kind, workload, scheduler, params, threads)
}

// addMeasure appends a standard measurement cell: spec on workload at
// the given thread count, cfg.Reps repetitions, validated per
// cfg.Validate, scheduler seeded from the cell seed where the spec
// supports it. keyParams, when non-empty, overrides spec.Params in the
// cell identity (grid experiments key cells by their row/col labels).
func (p *Plan) addMeasure(w *Workload, spec SchedulerSpec, threads int, keyParams string) int {
	params := keyParams
	if params == "" {
		params = spec.Params
	}
	validate := p.Config.Validate
	return p.AddCell(Cell{
		Kind:      "measure",
		Key:       measureKey("measure", w.Name, spec.Name, params, threads),
		Workload:  w.Name,
		Scheduler: spec.Name,
		Params:    params,
		Threads:   threads,
	}, func(c Cell) (CellResult, error) {
		m, err := MeasureSeeded(w, spec, c.Threads, c.Reps, validate, c.Seed)
		if err != nil {
			return CellResult{}, err
		}
		return CellResult{
			DurationNs: m.Duration.Nanoseconds(),
			Tasks:      m.Tasks,
			Wasted:     m.Wasted,
			Remote:     m.Remote,
		}, nil
	})
}

// addSeq appends a sequential-baseline cell for the workload. Its
// DurationNs/Tasks are the sequential reference the assembly divides
// by.
func (p *Plan) addSeq(w *Workload) int {
	return p.AddCell(Cell{
		Kind:     "seq",
		Key:      "seq/" + w.Name,
		Workload: w.Name,
		Threads:  1,
	}, func(Cell) (CellResult, error) {
		tasks, dur := w.SeqBaseline()
		return CellResult{DurationNs: dur.Nanoseconds(), Tasks: tasks}, nil
	})
}

// cellDur reads a result's metric duration.
func cellDur(r CellResult) time.Duration { return time.Duration(r.DurationNs) }

// ---------------------------------------------------------------------------
// Grid sections: the dominant experiment shape (a two-parameter
// scheduler grid per workload, normalized to the classic MQ baseline).

// gridSection holds the cell references of one two-parameter grid so
// its assembly can find them again.
type gridSection struct {
	title            string
	rowName, colName string
	rows, cols       []string
	threads          int
	workloads        []*Workload
	base             []int   // per workload: classic MQ baseline cell
	cells            [][]int // per workload: ri*len(cols)+ci -> cell
}

// addGridSection enumerates one grid into the plan — baseline cells
// for every workload first, then the row×col grid per workload — and
// returns the section for assembly. The enumeration order matches the
// legacy monolithic execution order, so in-process runs measure in the
// same sequence as before the decomposition.
func addGridSection(p *Plan, title, rowName string, rows []string, colName string, cols []string,
	ws []*Workload, mk func(ri, ci int) SchedulerSpec) *gridSection {
	g := &gridSection{
		title: title, rowName: rowName, colName: colName,
		rows: rows, cols: cols,
		threads: p.Config.MaxThreads, workloads: ws,
	}
	baseSpec := SchedulerSpec{Name: "MQ Classic", Params: "C=4", Make: ClassicMQBaseline}
	for _, w := range ws {
		g.base = append(g.base, p.addMeasure(w, baseSpec, g.threads, fmt.Sprintf("baseline(%s)", title)))
	}
	for _, w := range ws {
		refs := make([]int, 0, len(rows)*len(cols))
		for ri, rv := range rows {
			for ci, cv := range cols {
				spec := mk(ri, ci)
				key := fmt.Sprintf("%s=%s,%s=%s", rowName, rv, colName, cv)
				refs = append(refs, p.addMeasure(w, spec, g.threads, key))
			}
		}
		g.cells = append(g.cells, refs)
	}
	return g
}

// tables renders the section: one speedup/work-increase table per
// workload, cells normalized to the classic MQ baseline.
func (g *gridSection) tables(rs []CellResult) []Table {
	var out []Table
	for wi, w := range g.workloads {
		b := rs[g.base[wi]]
		t := Table{
			Title: fmt.Sprintf("%s — %s (cells: speedup/work-increase vs classic MQ, %d threads)",
				g.title, w.Name, g.threads),
			Header: append([]string{g.rowName + `\` + g.colName}, g.cols...),
		}
		for ri, rv := range g.rows {
			row := []string{rv}
			for ci := range g.cols {
				m := rs[g.cells[wi][ri*len(g.cols)+ci]]
				row = append(row, speedupCell(
					safeRatio(cellDur(b), cellDur(m)),
					safeDiv(float64(m.Tasks), float64(b.Tasks))))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}

// sortedValueKeys returns a Values map's keys in deterministic order
// (used by tests and debugging output).
func sortedValueKeys(v map[string]float64) []string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
