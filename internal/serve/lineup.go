package serve

import (
	"fmt"

	"repro/internal/coarse"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/sched"
	"repro/internal/spray"
)

// Lineup returns the scheduler names Build understands — the same zoo,
// same order, and same per-scheduler configurations as the perfbench
// lineup, instantiated at the Request payload.
func Lineup() []string {
	return []string{"coarse", "mq", "mq-batch", "emq", "smq", "klsm", "obim", "spray"}
}

// Build constructs the named scheduler for w worker slots.
func Build(name string, workers int, seed uint64) (sched.Scheduler[Request], error) {
	switch name {
	case "coarse":
		return coarse.New[Request](coarse.Config{Workers: workers}), nil
	case "mq":
		return mq.New[Request](mq.Classic(workers, 4)), nil
	case "mq-batch":
		return mq.New[Request](mq.Config{Workers: workers, C: 4,
			Insert: mq.InsertBatch, Delete: mq.DeleteBatch, Seed: seed}), nil
	case "emq":
		return emq.New[Request](emq.Config{Workers: workers, Seed: seed}), nil
	case "smq":
		return core.NewStealingMQ[Request](core.Config{Workers: workers, Seed: seed}), nil
	case "klsm":
		return klsm.New[Request](klsm.Config{Workers: workers}), nil
	case "obim":
		return obim.New[Request](obim.Config{Workers: workers}), nil
	case "spray":
		return spray.New[Request](spray.Config{Workers: workers, Seed: seed}), nil
	}
	return nil, fmt.Errorf("serve: unknown scheduler %q (known: %v)", name, Lineup())
}
