package harness

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// RankStats summarizes the empirical rank quality of a real concurrent
// scheduler: tasks 0..N-1 are seeded (striped across workers, priority =
// value) and drained concurrently; the displacement of each pop from its
// ideal position measures how relaxed the implementation actually is.
// This is the practical counterpart of Theorem 1's model statistics and
// the mechanism behind the paper's wasted-work differences.
type RankStats struct {
	Scheduler string
	Mode      string // "lockstep" or "freerun"
	Tasks     int
	Workers   int
	// MeanDisplacement is the average |position − priority| over all
	// pops (0 for an exact scheduler drained by one worker).
	MeanDisplacement float64
	// P99Displacement is the 99th percentile displacement.
	P99Displacement int
	// MaxDisplacement is the worst single pop.
	MaxDisplacement int
	// InversionFrac is the fraction of pops smaller than an earlier pop.
	InversionFrac float64
}

// ProbeRankLockstep measures queue-structure relaxation in isolation: a
// single goroutine round-robins over all worker handles, popping one
// task per handle per round. This realizes the analysis' balanced
// scheduling distribution (γ = 0), so the measured displacement reflects
// the data structure's relaxation alone — the quantity Theorem 1 bounds.
func ProbeRankLockstep(spec SchedulerSpec, workers, tasks int) RankStats {
	s := spec.Make(workers, 0)
	seedStriped(s, workers, tasks)
	handles := make([]sched.Worker[uint32], workers)
	for i := range handles {
		handles[i] = s.Worker(i)
	}
	order := make([]uint64, 0, tasks)
	idle := 0
	for len(order) < tasks && idle < 4*workers {
		for _, h := range handles {
			p, _, ok := h.Pop()
			if !ok {
				idle++
				continue
			}
			idle = 0
			order = append(order, p)
		}
	}
	st := rankStatsFromOrder(order)
	st.Scheduler = spec.Name
	st.Mode = "lockstep"
	st.Tasks = tasks
	st.Workers = workers
	return st
}

// ProbeRankLockstepBatched is the bulk-operation variant of
// ProbeRankLockstep: tasks are seeded through PushN in runs of batch
// and drained round-robin through PopN, batch tasks per handle per
// turn. The measured displacement bounds the extra rank relaxation the
// batched fast paths introduce — a batch is taken as a unit, so a
// worker may run up to batch-1 tasks further ahead of the global
// minimum than with scalar pops.
func ProbeRankLockstepBatched(spec SchedulerSpec, workers, tasks, batch int) RankStats {
	if batch < 1 {
		batch = 1
	}
	s := spec.Make(workers, 0)
	for wid := 0; wid < workers; wid++ {
		w := s.Worker(wid)
		ps := make([]uint64, 0, batch)
		vs := make([]uint32, 0, batch)
		for t := wid; t < tasks; t += workers {
			ps = append(ps, uint64(t))
			vs = append(vs, uint32(t))
			if len(ps) == batch {
				w.PushN(ps, vs)
				ps, vs = ps[:0], vs[:0]
			}
		}
		w.PushN(ps, vs)
	}
	handles := make([]sched.Worker[uint32], workers)
	for i := range handles {
		handles[i] = s.Worker(i)
	}
	dst := make([]sched.Task[uint32], batch)
	order := make([]uint64, 0, tasks)
	idle := 0
	for len(order) < tasks && idle < 4*workers {
		for _, h := range handles {
			n := h.PopN(dst)
			if n == 0 {
				idle++
				continue
			}
			idle = 0
			for i := 0; i < n; i++ {
				order = append(order, dst[i].P)
			}
		}
	}
	st := rankStatsFromOrder(order)
	st.Scheduler = spec.Name
	st.Mode = "lockstep-batched"
	st.Tasks = tasks
	st.Workers = workers
	return st
}

// ProbeRank measures RankStats under free-running workers: real goroutine
// scheduling included. On oversubscribed machines OS skew can dominate —
// the SMQ's guarantee explicitly depends on the scheduler's fairness
// (the γ assumption), and this probe shows what happens when it erodes.
func ProbeRank(spec SchedulerSpec, workers, tasks int) RankStats {
	s := spec.Make(workers, 0)
	seedStriped(s, workers, tasks)
	var pending sched.Pending
	pending.Inc(int64(tasks))

	order := make([]uint64, tasks)
	var slot atomic.Int64
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			var b sched.Backoff
			for !pending.Done() {
				p, _, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				order[slot.Add(1)-1] = p
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	st := rankStatsFromOrder(order)
	st.Scheduler = spec.Name
	st.Mode = "freerun"
	st.Tasks = tasks
	st.Workers = workers
	return st
}

// seedStriped pushes tasks 0..tasks-1 striped across workers (priority =
// value), so every local queue holds comparable work.
func seedStriped(s sched.Scheduler[uint32], workers, tasks int) {
	var seedWG sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		seedWG.Add(1)
		go func(wid int) {
			defer seedWG.Done()
			w := s.Worker(wid)
			for t := wid; t < tasks; t += workers {
				w.Push(uint64(t), uint32(t))
			}
		}(wid)
	}
	seedWG.Wait()
}

func rankStatsFromOrder(order []uint64) RankStats {
	tasks := len(order)
	disp := make([]int, tasks)
	inversions := 0
	maxSeen := uint64(0)
	sum := 0.0
	for i, p := range order {
		d := int(p) - i
		if d < 0 {
			d = -d
		}
		disp[i] = d
		sum += float64(d)
		if p < maxSeen {
			inversions++
		} else {
			maxSeen = p
		}
	}
	sort.Ints(disp)
	if tasks == 0 {
		return RankStats{}
	}
	return RankStats{
		MeanDisplacement: sum / float64(tasks),
		P99Displacement:  disp[tasks*99/100],
		MaxDisplacement:  disp[tasks-1],
		InversionFrac:    float64(inversions) / float64(tasks),
	}
}

// rankValues flattens a probe's statistics into a cell's Values map.
func rankValues(st RankStats) map[string]float64 {
	return map[string]float64{
		"meandisp": st.MeanDisplacement,
		"p99disp":  float64(st.P99Displacement),
		"maxdisp":  float64(st.MaxDisplacement),
		"invfrac":  st.InversionFrac,
	}
}

// planRankProbe is the `rankprobe` experiment: empirical rank quality of
// every scheduler implementation, the practical counterpart of the
// `theory` experiment. Each scheduler × probe mode is one cell.
func planRankProbe(cfg RunConfig) (*Plan, error) {
	p := NewPlan("rankprobe", cfg)
	tasks := 100000 * p.Config.Scale
	workers := p.Config.MaxThreads
	specs := AllSchedulers()

	lsRefs := make([]int, len(specs))
	frRefs := make([]int, len(specs))
	for i, spec := range specs {
		spec := spec
		lsRefs[i] = p.AddCell(Cell{
			Kind: "probe", Key: "probe/lockstep/" + spec.Name,
			Scheduler: spec.Name, Params: spec.Params, Threads: workers,
		}, func(c Cell) (CellResult, error) {
			return CellResult{Values: rankValues(ProbeRankLockstep(spec, c.Threads, tasks))}, nil
		})
		frRefs[i] = p.AddCell(Cell{
			Kind: "probe", Key: "probe/freerun/" + spec.Name,
			Scheduler: spec.Name, Params: spec.Params, Threads: workers,
		}, func(c Cell) (CellResult, error) {
			return CellResult{Values: rankValues(ProbeRank(spec, c.Threads, tasks))}, nil
		})
	}

	p.SetAssemble(func(rs []CellResult) ([]Table, error) {
		lockstep := Table{
			Title: fmt.Sprintf("Empirical rank relaxation, lockstep (γ=0 model) — %d tasks, %d worker queues",
				tasks, workers),
			Header: []string{"Scheduler", "MeanDisp", "P99Disp", "MaxDisp", "Inversions%"},
		}
		freerun := Table{
			Title: fmt.Sprintf("Empirical rank relaxation, free-running goroutines — %d tasks, %d workers (includes OS scheduling skew)",
				tasks, workers),
			Header: []string{"Scheduler", "MeanDisp", "P99Disp", "MaxDisp", "Inversions%"},
		}
		for i, spec := range specs {
			v := rs[lsRefs[i]].Values
			lockstep.AddRow(spec.Name, fm(v["meandisp"]), fmt.Sprint(int(v["p99disp"])),
				fmt.Sprint(int(v["maxdisp"])), fm(100*v["invfrac"]))
			v = rs[frRefs[i]].Values
			freerun.AddRow(spec.Name, fm(v["meandisp"]), fmt.Sprint(int(v["p99disp"])),
				fmt.Sprint(int(v["maxdisp"])), fm(100*v["invfrac"]))
		}
		return []Table{lockstep, freerun}, nil
	})
	return p, nil
}
