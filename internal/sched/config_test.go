package sched_test

// The zoo-wide config contract: every scheduler's *Config exposes
// Validate() error and construction applies documented defaults
// uniformly. This table drives invalid values through every Validate
// and asserts they error — instead of panicking or silently clamping —
// and that the valid anchor configuration both validates and builds.

import (
	"testing"

	"repro/internal/cbpq"
	"repro/internal/coarse"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/sched"
	"repro/internal/spray"
)

type validator interface{ Validate() error }

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   validator
		valid bool
		build func() sched.Scheduler[int] // set on the valid anchor rows
	}{
		// SMQ (core)
		{name: "core/valid", cfg: core.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return core.NewStealingMQ[int](core.Config{Workers: 2}) }},
		{name: "core/negative StealProb is documented", cfg: core.Config{Workers: 2, StealProb: -1}, valid: true},
		{name: "core/zero workers", cfg: core.Config{}, valid: false},
		{name: "core/negative workers", cfg: core.Config{Workers: -4}, valid: false},
		{name: "core/StealProb above 1", cfg: core.Config{Workers: 2, StealProb: 1.5}, valid: false},
		{name: "core/negative StealSize", cfg: core.Config{Workers: 2, StealSize: -1}, valid: false},
		{name: "core/HeapArity 1", cfg: core.Config{Workers: 2, HeapArity: 1}, valid: false},
		{name: "core/negative NUMAWeightK", cfg: core.Config{Workers: 2, NUMAWeightK: -8}, valid: false},

		// Classic MQ family
		{name: "mq/valid", cfg: mq.Classic(2, 4), valid: true,
			build: func() sched.Scheduler[int] { return mq.New[int](mq.Classic(2, 4)) }},
		{name: "mq/valid RELD", cfg: mq.RELD(2), valid: true},
		{name: "mq/zero workers", cfg: mq.Config{}, valid: false},
		{name: "mq/negative C", cfg: mq.Config{Workers: 2, C: -1}, valid: false},
		{name: "mq/PInsertChange above 1", cfg: mq.Config{Workers: 2, PInsertChange: 2}, valid: false},
		{name: "mq/negative PDeleteChange", cfg: mq.Config{Workers: 2, PDeleteChange: -0.5}, valid: false},
		{name: "mq/negative BatchDelete", cfg: mq.Config{Workers: 2, BatchDelete: -8}, valid: false},
		{name: "mq/unknown delete policy", cfg: mq.Config{Workers: 2, Delete: 99}, valid: false},

		// Engineered MQ
		{name: "emq/valid", cfg: emq.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return emq.New[int](emq.Config{Workers: 2}) }},
		{name: "emq/zero workers", cfg: emq.Config{}, valid: false},
		{name: "emq/negative Stickiness", cfg: emq.Config{Workers: 2, Stickiness: -16}, valid: false},
		{name: "emq/negative InsertBuffer", cfg: emq.Config{Workers: 2, InsertBuffer: -1}, valid: false},
		{name: "emq/HeapArity 1", cfg: emq.Config{Workers: 2, HeapArity: 1}, valid: false},

		// k-LSM
		{name: "klsm/valid", cfg: klsm.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return klsm.New[int](klsm.Config{Workers: 2}) }},
		{name: "klsm/valid strict sentinel", cfg: klsm.Config{Workers: 2, Relaxation: klsm.Strict}, valid: true},
		{name: "klsm/zero workers", cfg: klsm.Config{}, valid: false},
		{name: "klsm/relaxation below Strict", cfg: klsm.Config{Workers: 2, Relaxation: klsm.Strict - 1}, valid: false},
		{name: "klsm/very negative relaxation", cfg: klsm.Config{Workers: 2, Relaxation: -256}, valid: false},

		// OBIM / PMOD
		{name: "obim/valid", cfg: obim.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return obim.New[int](obim.Config{Workers: 2}) }},
		{name: "obim/zero workers", cfg: obim.Config{}, valid: false},
		{name: "obim/Delta above 63", cfg: obim.Config{Workers: 2, Delta: 64}, valid: false},
		{name: "obim/negative ChunkSize", cfg: obim.Config{Workers: 2, ChunkSize: -1}, valid: false},
		{name: "obim/PruneBags 1", cfg: obim.Config{Workers: 2, PruneBags: 1}, valid: false},

		// SprayList
		{name: "spray/valid", cfg: spray.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return spray.New[int](spray.Config{Workers: 2}) }},
		{name: "spray/zero workers", cfg: spray.Config{}, valid: false},

		// Coarse strawman
		{name: "coarse/valid", cfg: coarse.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return coarse.New[int](coarse.Config{Workers: 2}) }},
		{name: "coarse/zero workers", cfg: coarse.Config{}, valid: false},
		{name: "coarse/HeapArity 1", cfg: coarse.Config{Workers: 2, HeapArity: 1}, valid: false},

		// Lock-free CBPQ
		{name: "cbpq/valid", cfg: cbpq.Config{Workers: 2}, valid: true,
			build: func() sched.Scheduler[int] { return cbpq.New[int](cbpq.Config{Workers: 2}) }},
		{name: "cbpq/valid small chunk", cfg: cbpq.Config{Workers: 2, ChunkCap: 4}, valid: true},
		{name: "cbpq/zero workers", cfg: cbpq.Config{}, valid: false},
		{name: "cbpq/ChunkCap below 4", cfg: cbpq.Config{Workers: 2, ChunkCap: 3}, valid: false},
		{name: "cbpq/ChunkCap above 65536", cfg: cbpq.Config{Workers: 2, ChunkCap: 1 << 17}, valid: false},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.valid && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.valid && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
			if tc.build != nil {
				if s := tc.build(); s.Workers() != 2 {
					t.Fatalf("built scheduler has %d workers, want 2", s.Workers())
				}
			}
		})
	}
}

// TestInvalidConfigPanicsWithValidateError pins the construction-time
// contract: New panics with the Validate error (it cannot return one
// without breaking every construction call site), so Validate-first
// callers never see the panic.
func TestInvalidConfigPanicsWithValidateError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New on an invalid config did not panic")
		}
	}()
	klsm.New[int](klsm.Config{Workers: 2, Relaxation: -7})
}
