package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestBenchcheckEndToEnd builds the tool and runs it over a valid and
// an invalid artifact, pinning both exit paths.
func TestBenchcheckEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	good := filepath.Join(dir, "good.json")
	goodJSON := `{
  "schema_version": 1,
  "generated_by": "test",
  "go_version": "go",
  "gomaxprocs": 1,
  "workers": 1,
  "prefill": 1,
  "ops_per_worker": 1,
  "results": [{"scheduler": "mq", "throughput_ops_per_sec": 1, "ns_per_op": 1}]
}`
	if err := os.WriteFile(good, []byte(goodJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, good).CombinedOutput(); err != nil {
		t.Fatalf("valid file rejected: %v\n%s", err, out)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, bad).Run(); err == nil {
		t.Fatal("invalid file accepted")
	}

	// Default glob: with no arguments the tool validates BENCH_*.json in
	// the working directory, and fails when the glob matches nothing.
	glob := t.TempDir()
	cmd := exec.Command(bin)
	cmd.Dir = glob
	if err := cmd.Run(); err == nil {
		t.Fatal("empty directory accepted without arguments")
	}
	if err := os.WriteFile(filepath.Join(glob, "BENCH_PR1.json"), []byte(goodJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin)
	cmd.Dir = glob
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("default glob failed: %v\n%s", err, out)
	}

	// The bad file must not be picked up: the glob is BENCH_*.json only.
	if err := os.WriteFile(filepath.Join(glob, "other.json"), []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin)
	cmd.Dir = glob
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("non-BENCH json broke default glob: %v\n%s", err, out)
	}
}

// TestBenchcheckMerge drives the merge subcommand over two shard
// fragments and re-validates the merged artifact with the same tool.
func TestBenchcheckMerge(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	frag := func(shardIdx, cellIdx int) string {
		return `{
  "schema_version": 4,
  "generated_by": "test shard",
  "go_version": "go",
  "host": {"hostname": "h", "os": "linux", "arch": "amd64", "num_cpu": 2},
  "experiments": [{
    "experiment": "theory",
    "config": "c",
    "total_cells": 2,
    "shard": {"index": ` + itoa(shardIdx) + `, "total": 2},
    "cells": [{"index": ` + itoa(cellIdx) + `, "key": "k` + itoa(cellIdx) + `", "kind": "sim", "seed": 1, "status": "ok", "attempts": 1}]
  }]
}`
	}
	f0 := filepath.Join(dir, "frag0.json")
	f1 := filepath.Join(dir, "frag1.json")
	merged := filepath.Join(dir, "merged.json")
	if err := os.WriteFile(f0, []byte(frag(0, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f1, []byte(frag(1, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "merge", "-o", merged, f0, f1).CombinedOutput(); err != nil {
		t.Fatalf("merge failed: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, merged).CombinedOutput(); err != nil {
		t.Fatalf("merged artifact invalid: %v\n%s", err, out)
	}

	// An incomplete grid must not merge: one shard alone covers 1 of 2.
	if err := exec.Command(bin, "merge", "-o", filepath.Join(dir, "x.json"), f0).Run(); err == nil {
		t.Fatal("incomplete grid merged")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestBenchcheckDiff drives the diff subcommand over two artifacts with
// a clear regression: informational by default (exit 0), gating with
// -fail, and quiet on a self-diff.
func TestBenchcheckDiff(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	report := func(tput float64) string {
		return `{
  "schema_version": 1,
  "generated_by": "test",
  "go_version": "go",
  "gomaxprocs": 1,
  "workers": 1,
  "prefill": 1,
  "ops_per_worker": 1,
  "results": [{"scheduler": "mq", "throughput_ops_per_sec": ` + strconv.FormatFloat(tput, 'g', -1, 64) + `, "ns_per_op": 1}]
}`
	}
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(report(1000)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(report(400)), 0o644); err != nil {
		t.Fatal(err)
	}

	// Informational: regression printed, exit 0.
	out, err := exec.Command(bin, "diff", oldPath, newPath).CombinedOutput()
	if err != nil {
		t.Fatalf("informational diff exited nonzero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "!!  mq") || !strings.Contains(string(out), "regression") {
		t.Fatalf("diff output missing regression flag:\n%s", out)
	}

	// Gating: -fail turns the regression into a nonzero exit.
	if err := exec.Command(bin, "diff", "-fail", oldPath, newPath).Run(); err == nil {
		t.Fatal("-fail did not gate on a 60% throughput drop")
	}

	// Family gating: -failfamily gates only its allowlisted schedulers.
	if err := exec.Command(bin, "diff", "-failfamily", "mq", oldPath, newPath).Run(); err == nil {
		t.Fatal("-failfamily mq did not gate on mq's throughput drop")
	}
	if out, err := exec.Command(bin, "diff", "-failfamily", "cbpq", oldPath, newPath).CombinedOutput(); err != nil {
		t.Fatalf("-failfamily cbpq gated on an mq regression: %v\n%s", err, out)
	}

	// Workload filter: the latency facet has no entries here; the scalar
	// facet keeps the regression. Unknown facets are usage errors.
	out, err = exec.Command(bin, "diff", "-workload", "latency", oldPath, newPath).CombinedOutput()
	if err != nil || strings.Contains(string(out), "throughput_ops_per_sec") {
		t.Fatalf("latency filter kept scalar rows (err %v):\n%s", err, out)
	}
	out, err = exec.Command(bin, "diff", "-workload", "scalar", oldPath, newPath).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "!!  mq") {
		t.Fatalf("scalar filter lost the regression (err %v):\n%s", err, out)
	}
	if err := exec.Command(bin, "diff", "-workload", "nonesuch", oldPath, newPath).Run(); err == nil {
		t.Fatal("unknown workload accepted")
	}

	// A self-diff has no flags, even with -fail.
	out, err = exec.Command(bin, "diff", "-fail", oldPath, oldPath).CombinedOutput()
	if err != nil {
		t.Fatalf("self-diff flagged: %v\n%s", err, out)
	}

	// Wide threshold absorbs the drop.
	if out, err := exec.Command(bin, "diff", "-fail", "-threshold", "0.9", oldPath, newPath).CombinedOutput(); err != nil {
		t.Fatalf("0.9 threshold still flagged a 60%% drop: %v\n%s", err, out)
	}
}

// TestBenchcheckDiffHardError pins the unconditional exit path: a desim
// run whose causality violations increased under an exact bound fails
// the diff even without -fail or -failfamily. The artifacts keep the
// lookahead window below the bound, the configuration Validate itself
// cannot judge.
func TestBenchcheckDiffHardError(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	report := func(violations int) string {
		return `{
  "schema_version": 7,
  "generated_by": "test",
  "go_version": "go",
  "gomaxprocs": 1,
  "workers": 1,
  "prefill": 1,
  "ops_per_worker": 1,
  "desim": [{"scheduler": "cbpq", "model": "dag", "workers": 1, "seed": 1,
    "events": 100, "duration_ns": 100, "events_per_sec": 1000,
    "rank_bound": 4, "bound_exact": true, "lookahead": 2, "bound_source": "exact",
    "causality_violations": ` + itoa(violations) + `, "max_lead": 0, "mean_lead": 0, "checksum": 1}]
}`
	}
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(report(0)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(report(3)), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "diff", oldPath, newPath).CombinedOutput()
	if err == nil {
		t.Fatalf("increased exact-bound violations exited zero:\n%s", out)
	}
	if !strings.Contains(string(out), "!!!") || !strings.Contains(string(out), "hard error") {
		t.Fatalf("hard error not surfaced:\n%s", out)
	}
	// The same artifacts in the other direction (violations dropping to
	// zero) are fine.
	if out, err := exec.Command(bin, "diff", newPath, oldPath).CombinedOutput(); err != nil {
		t.Fatalf("decreasing violations gated: %v\n%s", err, out)
	}
}
