package desim

import (
	"testing"

	"repro/internal/klsm"
	"repro/internal/zoo"
)

func TestWindowPrefixCounts(t *testing.T) {
	w := newWindow(1 << 12)
	if w.bucketWidth() != 1 {
		t.Fatalf("small horizon should get 1-wide buckets, got %d", w.bucketWidth())
	}
	for _, ts := range []uint64{0, 1, 1, 5, 100, 4096} {
		w.Register(ts)
	}
	cases := []struct {
		t    uint64
		want int64
	}{
		{0, 0},   // own bucket excluded
		{1, 1},   // just ts=0
		{2, 3},   // 0,1,1
		{5, 3},   // own bucket excluded again
		{6, 4},   // 0,1,1,5
		{101, 5}, // all but the horizon event
		// 5000 clamps into the same last bucket as the ts=4096 event,
		// and own-bucket events never count — clamping is lenient.
		{5000, 5},
	}
	for _, c := range cases {
		if got := w.Before(c.t); got != c.want {
			t.Errorf("Before(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	w.Unregister(1)
	if got := w.Before(2); got != 2 {
		t.Errorf("after Unregister(1): Before(2) = %d, want 2", got)
	}
}

func TestWindowCapsBucketCount(t *testing.T) {
	w := newWindow(1 << 40)
	if len(w.tree) > maxWindowBuckets {
		t.Fatalf("tree has %d buckets, cap is %d", len(w.tree), maxWindowBuckets)
	}
	if w.bucketWidth() == 1 {
		t.Fatal("wide horizon should coarsen buckets")
	}
	w.Register(1 << 39)
	if got := w.Before(1 << 41); got != 1 {
		t.Fatalf("Before past horizon = %d, want 1", got)
	}
}

// testCluster builds a small cluster (fresh per call — models are
// single-use).
func testCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Stations: 16, ArrivalsPerStation: 400, Workers: workers, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClusterIdenticalAcrossSchedulers is the engine's core claim: the
// cluster model's outcome — completions, checksum, per-tenant sojourn
// percentiles — is event-for-event identical whatever scheduler runs
// it, because all cross-event state is either chain-sequential or
// commutative. The exact coarse queue is the baseline; every relaxed
// scheduler must match it bit for bit.
func TestClusterIdenticalAcrossSchedulers(t *testing.T) {
	const workers = 4
	base := testCluster(t, workers)
	spec, _ := zoo.Lookup[Event]("coarse")
	st, err := Run(spec.Build(workers, 7), base, Config{Workers: workers, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != base.Events() {
		t.Fatalf("coarse executed %d events, want %d", st.Events, base.Events())
	}
	wantSum := base.Checksum()
	wantTenants := base.PerTenant()

	for _, name := range []string{"cbpq", "smq", "mq", "emq", "klsm", "spray", "obim"} {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testCluster(t, workers)
			spec, ok := zoo.Lookup[Event](name)
			if !ok {
				t.Fatalf("zoo has no %q", name)
			}
			// Unchecked run: this test is about model identity, not
			// the causality window.
			st, err := Run(spec.Build(workers, 7), m, Config{Workers: workers, Lookahead: -1})
			if err != nil {
				t.Fatal(err)
			}
			if st.Events != base.Events() {
				t.Fatalf("executed %d events, want %d", st.Events, base.Events())
			}
			if got := m.Checksum(); got != wantSum {
				t.Fatalf("checksum %#x, want coarse baseline %#x", got, wantSum)
			}
			for i, ten := range m.PerTenant() {
				if ten != wantTenants[i] {
					t.Fatalf("tenant %d = %+v, want %+v", i, ten, wantTenants[i])
				}
			}
		})
	}
}

// TestKLSMWithinWorstCaseBound is the tentpole's safety regression: a
// k-LSM checked with its worst-case window (P−1)·k+P must report ZERO
// causality violations, and the simulated outcome must equal the exact
// baseline. The k-LSM bound is a hard guarantee, not an expectation, so
// any nonzero count here is a bug in the scheduler or the window.
func TestKLSMWithinWorstCaseBound(t *testing.T) {
	const workers = 4
	spec, _ := zoo.Lookup[Event]("klsm")
	bound, exact := spec.RankBound(workers)
	if !exact {
		t.Fatal("klsm bound must be exact")
	}
	if want := int64(workers-1)*int64(klsm.DefaultRelaxation) + int64(workers); bound != want {
		t.Fatalf("klsm bound = %d, want %d", bound, want)
	}

	base := testCluster(t, workers)
	cs, _ := zoo.Lookup[Event]("coarse")
	if _, err := Run(cs.Build(workers, 7), base, Config{Workers: workers, Lookahead: 0}); err != nil {
		t.Fatal(err)
	}

	m := testCluster(t, workers)
	st, err := Run(spec.Build(workers, 7), m, Config{Workers: workers, Lookahead: bound})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("k-LSM reported %d causality violations inside its worst-case window %d (max lead %d)",
			st.Violations, bound, st.MaxLead)
	}
	if m.Checksum() != base.Checksum() {
		t.Fatalf("k-LSM checksum %#x != coarse %#x", m.Checksum(), base.Checksum())
	}
}

// TestCoarseWithinZeroBound: the exact queue with a zero-width window
// must also be violation-free — the threshold slack alone absorbs the
// concurrency blur.
func TestCoarseWithinZeroBound(t *testing.T) {
	const workers = 4
	m := testCluster(t, workers)
	spec, _ := zoo.Lookup[Event]("coarse")
	st, err := Run(spec.Build(workers, 7), m, Config{Workers: workers, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("exact queue reported %d violations (max lead %d)", st.Violations, st.MaxLead)
	}
}

// TestCBPQWithinZeroBound: the lock-free CBPQ claims the same exact
// rank bound (0) as the coarse queue, so a zero-width window must be
// violation-free on both models, and the simulated outcome must be
// bitwise-identical to the coarse baseline — the lock-free tier buys
// progress guarantees, not relaxation.
func TestCBPQWithinZeroBound(t *testing.T) {
	const workers = 4
	spec, ok := zoo.Lookup[Event]("cbpq")
	if !ok {
		t.Fatal("zoo has no cbpq")
	}
	if bound, exact := spec.RankBound(workers); bound != 0 || !exact {
		t.Fatalf("cbpq RankBound = (%d, %t), want (0, true)", bound, exact)
	}

	// Cluster: zero-lookahead run vs the coarse baseline.
	base := testCluster(t, workers)
	cs, _ := zoo.Lookup[Event]("coarse")
	if _, err := Run(cs.Build(workers, 7), base, Config{Workers: workers, Lookahead: 0}); err != nil {
		t.Fatal(err)
	}
	m := testCluster(t, workers)
	st, err := Run(spec.Build(workers, 7), m, Config{Workers: workers, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != base.Events() {
		t.Fatalf("cbpq executed %d events, want %d", st.Events, base.Events())
	}
	if st.Violations != 0 {
		t.Fatalf("cbpq reported %d violations inside its zero window (max lead %d)", st.Violations, st.MaxLead)
	}
	if m.Checksum() != base.Checksum() {
		t.Fatalf("cbpq cluster checksum %#x != coarse %#x", m.Checksum(), base.Checksum())
	}
	for i, ten := range m.PerTenant() {
		if want := base.PerTenant()[i]; ten != want {
			t.Fatalf("tenant %d = %+v, want %+v", i, ten, want)
		}
	}

	// DAG: same zero-window safety claim and outcome identity.
	newDAG := func() *DAG {
		d, err := NewDAG(DAGConfig{Layers: 64, Width: 64, Workers: workers, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	dagBase := newDAG()
	if _, err := Run(cs.Build(workers, 11), dagBase, Config{Workers: workers, Lookahead: 0}); err != nil {
		t.Fatal(err)
	}
	dm := newDAG()
	st, err = Run(spec.Build(workers, 11), dm, Config{Workers: workers, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Fatalf("cbpq DAG run reported %d violations inside its zero window (max lead %d)", st.Violations, st.MaxLead)
	}
	if dm.Makespan() != dagBase.Makespan() || dm.Checksum() != dagBase.Checksum() {
		t.Fatalf("cbpq DAG outcome (makespan %d, checksum %#x) != coarse (%d, %#x)",
			dm.Makespan(), dm.Checksum(), dagBase.Makespan(), dagBase.Checksum())
	}
}

// TestBoundSourceLabels pins the window-provenance labels the reports
// carry (schema >= 6).
func TestBoundSourceLabels(t *testing.T) {
	cases := []struct {
		bound int64
		exact bool
		want  string
	}{
		{-1, false, "unchecked"},
		{0, true, "exact"},
		{1028, true, "exact"},
		{512, false, "expectation"},
	}
	for _, c := range cases {
		if got := BoundSource(c.bound, c.exact); got != c.want {
			t.Errorf("BoundSource(%d, %t) = %q, want %q", c.bound, c.exact, got, c.want)
		}
	}
}

// TestBelowBoundViolationsDetected drives a relaxed scheduler with a
// window far below its actual relaxation and requires the check to
// notice. One worker makes the run deterministic: a classic Multi-Queue
// spreads tasks over C·1 = 4 internal queues and pops from a 2-sample,
// so out-of-window pops are structural, not a race artifact.
func TestBelowBoundViolationsDetected(t *testing.T) {
	m := testCluster(t, 1)
	spec, _ := zoo.Lookup[Event]("mq")
	st, err := Run(spec.Build(1, 7), m, Config{Workers: 1, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations == 0 {
		t.Fatalf("classic MQ with a zero window reported no violations (max lead %d, mean %g) — the causality check is dead",
			st.MaxLead, st.MeanLead)
	}
	// The model contract still holds — relaxation reorders execution,
	// it must not change the simulated outcome.
	base := testCluster(t, 1)
	cs, _ := zoo.Lookup[Event]("coarse")
	if _, err := Run(cs.Build(1, 7), base, Config{Workers: 1, Lookahead: -1}); err != nil {
		t.Fatal(err)
	}
	if m.Checksum() != base.Checksum() {
		t.Fatalf("checksum diverged under relaxation: %#x != %#x", m.Checksum(), base.Checksum())
	}
}

func TestDAGMakespanIdenticalAcrossSchedulers(t *testing.T) {
	const workers = 4
	newDAG := func() *DAG {
		d, err := NewDAG(DAGConfig{Layers: 64, Width: 64, Workers: workers, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := newDAG()
	cs, _ := zoo.Lookup[Event]("coarse")
	st, err := Run(cs.Build(workers, 11), base, Config{Workers: workers, Lookahead: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != base.Events() {
		t.Fatalf("executed %d events, want %d", st.Events, base.Events())
	}
	if base.Makespan() == 0 {
		t.Fatal("zero makespan")
	}
	for _, name := range []string{"smq", "klsm", "obim"} {
		m := newDAG()
		spec, _ := zoo.Lookup[Event](name)
		if _, err := Run(spec.Build(workers, 11), m, Config{Workers: workers, Lookahead: -1}); err != nil {
			t.Fatal(err)
		}
		if m.Makespan() != base.Makespan() {
			t.Fatalf("%s makespan %d != coarse %d", name, m.Makespan(), base.Makespan())
		}
		if m.Checksum() != base.Checksum() {
			t.Fatalf("%s checksum %#x != coarse %#x", name, m.Checksum(), base.Checksum())
		}
	}
}

func TestRunOneUnknownScheduler(t *testing.T) {
	if _, err := RunOne("definitely-not-a-scheduler", "cluster", BenchConfig{Workers: 2}); err == nil {
		t.Fatal("want error for unknown scheduler")
	}
	if _, err := RunOne("smq", "not-a-model", BenchConfig{Workers: 2}); err == nil {
		t.Fatal("want error for unknown model")
	}
}

// TestRunBenchSmoke runs a tiny grid end to end and checks the report
// validates — the same path CI's desim smoke uses.
func TestRunBenchSmoke(t *testing.T) {
	r, err := RunBench(BenchConfig{
		Workers:    2,
		Schedulers: []string{"coarse", "cbpq", "smq", "klsm"},
		Models:     []string{"cluster", "dag"},
		Events:     40_000,
		Layers:     32, Width: 32,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Desim) != 8 {
		t.Fatalf("got %d desim results, want 8", len(r.Desim))
	}
	wantSource := map[string]string{"coarse": "exact", "cbpq": "exact", "smq": "expectation", "klsm": "exact"}
	for _, dr := range r.Desim {
		if (dr.Scheduler == "klsm" || dr.Scheduler == "cbpq") && dr.Violations != 0 {
			t.Fatalf("%s %s run has %d violations", dr.Scheduler, dr.Model, dr.Violations)
		}
		if dr.Scheduler == "coarse" && dr.Model == "cluster" && len(dr.PerTenant) == 0 {
			t.Fatal("cluster run missing per-tenant section")
		}
		if dr.BoundSource != wantSource[dr.Scheduler] {
			t.Fatalf("%s %s bound_source %q, want %q", dr.Scheduler, dr.Model, dr.BoundSource, wantSource[dr.Scheduler])
		}
	}
}
