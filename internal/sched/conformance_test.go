package sched_test

// Cross-scheduler conformance suite: every scheduler registered in this
// repository — whatever its relaxation strategy — must satisfy the same
// concurrency contract, which the graph algorithms and the harness rely
// on:
//
//  1. no task is lost: everything pushed is eventually popped;
//  2. no task is duplicated: each pushed task is popped exactly once;
//  3. Pending-based termination drains all tasks: workers exiting only
//     when Pop fails AND Pending.Done() leave nothing behind in queues
//     or thread-local buffers;
//  4. Stats() accounting is exact after a drain: Pops == Pushes.
//
// The suite runs every constructor through the same concurrent
// push/pop workload (run it with -race to exercise the locking and the
// lock-free publication paths).

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cbpq"
	"repro/internal/coarse"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/sched"
	"repro/internal/spray"
)

// conformanceCase is one scheduler configuration under test. covers
// names the root-package (smq) New* constructors whose implementation
// this case exercises; the union of all covers fields must equal
// rootConstructorsCovered (see TestZooGateCoverageConsistent), which
// cmd/zoogate in turn checks against the exported surface of package
// smq — so a new root scheduler constructor cannot land without a
// conformance entry.
type conformanceCase struct {
	name   string
	covers []string
	mk     func(workers int) sched.Scheduler[uint32]
}

// rootConstructorsCovered lists every exported New* scheduler
// constructor of the root smq package that the conformance lineup
// exercises (via the underlying implementation packages). cmd/zoogate
// parses this literal and fails CI if package smq exports a scheduler
// constructor that is missing here; TestZooGateCoverageConsistent fails
// if an entry has no backing conformance case.
var rootConstructorsCovered = []string{
	"NewStealingMQ",
	"NewStealingMQSkipList",
	"NewMultiQueue",
	"NewClassicMultiQueue",
	"NewRELD",
	"NewEngineeredMQ",
	"NewKLSM",
	"NewOBIM",
	"NewPMOD",
	"NewSprayList",
	"NewCBPQ",
}

// conformanceSchedulers lists every scheduler constructor in the repo,
// covering each distinct code path (policy combinations, buffer and
// stickiness settings, relaxation bounds, NUMA sampling).
func conformanceSchedulers() []conformanceCase {
	return []conformanceCase{
		{"SMQ/heap", []string{"NewStealingMQ"}, func(w int) sched.Scheduler[uint32] {
			return core.NewStealingMQ[uint32](core.Config{Workers: w})
		}},
		{"SMQ/heap-insbatch", nil, func(w int) sched.Scheduler[uint32] {
			return core.NewStealingMQ[uint32](core.Config{Workers: w, InsertBatch: 8})
		}},
		{"SMQ/skiplist", []string{"NewStealingMQSkipList"}, func(w int) sched.Scheduler[uint32] {
			return core.NewStealingMQSkipList[uint32](core.Config{Workers: w})
		}},
		{"MQ/classic", []string{"NewMultiQueue", "NewClassicMultiQueue"}, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Classic(w, 4))
		}},
		{"MQ/temporal", nil, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Config{Workers: w, C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
				Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64})
		}},
		{"MQ/batch", nil, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Config{Workers: w, C: 4,
				Insert: mq.InsertBatch, BatchInsert: 8,
				Delete: mq.DeleteBatch, BatchDelete: 8})
		}},
		{"MQ/peektops", nil, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Config{Workers: w, C: 4, PeekTops: true})
		}},
		{"MQ/numa", nil, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.Config{Workers: w, C: 4, NUMANodes: 2, NUMAWeightK: 8})
		}},
		{"RELD", []string{"NewRELD"}, func(w int) sched.Scheduler[uint32] {
			return mq.New[uint32](mq.RELD(w))
		}},
		{"OBIM", []string{"NewOBIM"}, func(w int) sched.Scheduler[uint32] {
			return obim.New[uint32](obim.Config{Workers: w, Delta: 10, ChunkSize: 64})
		}},
		{"PMOD", []string{"NewPMOD"}, func(w int) sched.Scheduler[uint32] {
			return obim.New[uint32](obim.Config{Workers: w, Delta: 10, ChunkSize: 64, Adaptive: true})
		}},
		{"SprayList", []string{"NewSprayList"}, func(w int) sched.Scheduler[uint32] {
			return spray.New[uint32](spray.Config{Workers: w})
		}},
		{"CoarseLock", nil, func(w int) sched.Scheduler[uint32] {
			return coarse.New[uint32](coarse.Config{Workers: w})
		}},
		{"CBPQ/default", []string{"NewCBPQ"}, func(w int) sched.Scheduler[uint32] {
			return cbpq.New[uint32](cbpq.Config{Workers: w})
		}},
		{"CBPQ/chunk8", nil, func(w int) sched.Scheduler[uint32] {
			// Tiny chunks force constant freeze/split/rebuild races.
			return cbpq.New[uint32](cbpq.Config{Workers: w, ChunkCap: 8})
		}},
		{"CBPQ/noelim", nil, func(w int) sched.Scheduler[uint32] {
			// The pre-elimination baseline: every below-head insert goes
			// through buf + combining rebuild (the default cases above
			// cover the exchange layer at both chunk capacities).
			return cbpq.New[uint32](cbpq.Config{Workers: w, DisableElimination: true})
		}},
		{"CBPQ/noelim-chunk8", nil, func(w int) sched.Scheduler[uint32] {
			return cbpq.New[uint32](cbpq.Config{Workers: w, ChunkCap: 8, DisableElimination: true})
		}},
		{"EMQ/default", []string{"NewEngineeredMQ"}, func(w int) sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: w})
		}},
		{"EMQ/unbuffered", nil, func(w int) sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: w,
				Stickiness: 1, InsertBuffer: 1, DeleteBuffer: 1})
		}},
		{"EMQ/bigbuf", nil, func(w int) sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: w,
				Stickiness: 64, InsertBuffer: 64, DeleteBuffer: 64})
		}},
		{"EMQ/numa", nil, func(w int) sched.Scheduler[uint32] {
			return emq.New[uint32](emq.Config{Workers: w, NUMANodes: 2, NUMAWeightK: 8})
		}},
		{"KLSM/default", []string{"NewKLSM"}, func(w int) sched.Scheduler[uint32] {
			return klsm.New[uint32](klsm.Config{Workers: w})
		}},
		{"KLSM/strict", nil, func(w int) sched.Scheduler[uint32] {
			return klsm.New[uint32](klsm.Config{Workers: w, Relaxation: klsm.Strict})
		}},
		{"KLSM/k4", nil, func(w int) sched.Scheduler[uint32] {
			return klsm.New[uint32](klsm.Config{Workers: w, Relaxation: 4})
		}},
		{"KLSM/k4096", nil, func(w int) sched.Scheduler[uint32] {
			return klsm.New[uint32](klsm.Config{Workers: w, Relaxation: 4096})
		}},
	}
}

// TestZooGateCoverageConsistent keeps rootConstructorsCovered honest
// from the inside: every listed root constructor must be claimed by at
// least one conformance case's covers field, and no case may claim a
// constructor that is not listed. (cmd/zoogate checks the same list
// from the outside against package smq's exported surface.)
func TestZooGateCoverageConsistent(t *testing.T) {
	listed := map[string]bool{}
	for _, name := range rootConstructorsCovered {
		if listed[name] {
			t.Errorf("rootConstructorsCovered lists %s twice", name)
		}
		listed[name] = true
	}
	claimed := map[string]string{}
	for _, tc := range conformanceSchedulers() {
		for _, name := range tc.covers {
			if !listed[name] {
				t.Errorf("case %s claims %s, which is not in rootConstructorsCovered", tc.name, name)
			}
			claimed[name] = tc.name
		}
	}
	var missing []string
	for name := range listed {
		if claimed[name] == "" {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		t.Errorf("rootConstructorsCovered lists %s but no conformance case covers it", name)
	}
}

// drainConcurrently runs the canonical Pending-protocol workload: each
// worker pushes its slice of unique task ids (with colliding priorities
// to exercise tie handling), popping concurrently, and keeps popping
// until Pending reports global emptiness. It returns per-task pop counts.
func drainConcurrently(t *testing.T, s sched.Scheduler[uint32], workers, perWorker int) []int32 {
	t.Helper()
	total := workers * perWorker
	counts := make([]int32, total)
	atomicCounts := make([]atomic.Int32, total)
	var pending sched.Pending
	pending.Inc(int64(total))

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			next := 0
			var b sched.Backoff
			for {
				// Interleave pushes with pops so queues see concurrent
				// traffic in both directions.
				if next < perWorker {
					v := uint32(wid*perWorker + next)
					w.Push(uint64(v%509), v)
					next++
				}
				p, v, ok := w.Pop()
				if ok {
					if p > uint64(total) {
						t.Errorf("implausible priority %d for task %d", p, v)
					}
					atomicCounts[v].Add(1)
					pending.Dec()
					b.Reset()
					continue
				}
				if next < perWorker {
					continue // still have our own tasks to publish
				}
				if pending.Done() {
					return
				}
				b.Wait()
			}
		}(wid)
	}
	wg.Wait()

	if got := pending.Load(); got != 0 {
		t.Fatalf("pending = %d after all workers exited", got)
	}
	for i := range atomicCounts {
		counts[i] = atomicCounts[i].Load()
	}
	return counts
}

// TestConformance drives every registered scheduler through the shared
// concurrent drain and asserts the four contract properties.
func TestConformance(t *testing.T) {
	workers := 4
	perWorker := 4000
	if testing.Short() {
		perWorker = 500
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := tc.mk(workers)
			counts := drainConcurrently(t, s, workers, perWorker)

			lost, duplicated := 0, 0
			for _, c := range counts {
				switch {
				case c == 0:
					lost++
				case c > 1:
					duplicated++
				}
			}
			if lost > 0 {
				t.Errorf("%d of %d tasks lost", lost, len(counts))
			}
			if duplicated > 0 {
				t.Errorf("%d of %d tasks duplicated", duplicated, len(counts))
			}

			total := uint64(workers * perWorker)
			st := s.Stats()
			if st.Pushes != total {
				t.Errorf("Stats.Pushes = %d, want %d", st.Pushes, total)
			}
			if st.Pops != st.Pushes {
				t.Errorf("Stats.Pops = %d, want %d (== Pushes) after drain", st.Pops, st.Pushes)
			}
		})
	}
}

// TestConformanceSingleWorker repeats the contract check degenerately
// with one worker — the configuration where buffered schedulers most
// easily strand tasks in thread-local state.
func TestConformanceSingleWorker(t *testing.T) {
	perWorker := 2000
	if testing.Short() {
		perWorker = 300
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s := tc.mk(1)
			counts := drainConcurrently(t, s, 1, perWorker)
			for v, c := range counts {
				if c != 1 {
					t.Fatalf("task %d popped %d times", v, c)
				}
			}
			st := s.Stats()
			if st.Pops != st.Pushes || st.Pushes != uint64(perWorker) {
				t.Fatalf("stats after drain: %+v", st)
			}
		})
	}
}

// TestConformancePendingSpuriousEmpty checks the relaxation contract's
// other direction: a failed Pop with Pending nonzero must not be treated
// as termination, and retrying must eventually surface the task. One
// worker holds a task in thread-local state while another spins on Pop.
func TestConformancePendingSpuriousEmpty(t *testing.T) {
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk(2)
			var pending sched.Pending

			// Worker 0 pushes one task; depending on the scheduler it may
			// sit in worker 0's local buffer where worker 1 cannot see it.
			pending.Inc(1)
			w0 := s.Worker(0)
			w0.Push(42, 7)

			// Worker 1 may legitimately fail to find it (spurious
			// emptiness, if the task sits in worker 0's local state) or
			// may pop it (globally visible schedulers); either way
			// Pending stays nonzero until the task is processed.
			w1 := s.Worker(1)
			p, v, ok := w1.Pop()
			if pending.Done() {
				t.Fatal("pending must stay nonzero until the task is processed")
			}
			if !ok {
				// Worker 0 itself must always be able to recover its own
				// task — buffered schedulers flush on demand.
				p, v, ok = w0.Pop()
				if !ok {
					t.Fatal("owner could not pop its own pushed task")
				}
			}
			if p != 42 || v != 7 {
				t.Fatalf("popped (%d,%d), want (42,7)", p, v)
			}
			pending.Dec()
			if !pending.Done() {
				t.Fatal("pending should be zero after processing")
			}
		})
	}
}
