// PageRank: the paper's §6 extension direction — iterative algorithms
// under relaxed priority scheduling (cf. relaxed belief propagation).
// Residual PageRank processes high-residual vertices first; a scheduler
// with better rank guarantees settles the graph in fewer tasks.
package main

import (
	"flag"
	"fmt"
	"runtime"

	smq "repro"
)

func main() {
	scale := flag.Int("scale", 13, "RMAT scale (2^scale vertices)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	flag.Parse()

	g := smq.GenerateRMAT(*scale, 16, 3)
	fmt.Printf("residual PageRank on RMAT graph: %d vertices, %d edges, %d workers\n\n",
		g.N, g.M(), *workers)

	cfg := smq.PageRankConfig{Damping: 0.85, Epsilon: 1e-7}
	for _, e := range []struct {
		name string
		mk   func() smq.Scheduler[uint32]
	}{
		{"SMQ (priority = residual)", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"MultiQueue", func() smq.Scheduler[uint32] {
			return smq.NewClassicMultiQueue[uint32](*workers, 4)
		}},
		{"OBIM", func() smq.Scheduler[uint32] {
			return smq.NewOBIM[uint32](smq.OBIMConfig{Workers: *workers, Delta: 2})
		}},
	} {
		pr, res := smq.ResidualPageRank(g, cfg, e.mk())
		var total float64
		for _, v := range pr {
			total += v
		}
		fmt.Printf("%-28s time=%-12v tasks=%-9d mass=%.4f\n",
			e.name, res.Duration.Round(1000), res.Tasks, total/float64(g.N))
	}
}
