package serve

import (
	"testing"
	"time"
)

// runService builds the named scheduler, runs one open-loop load
// through a Service, and returns the run's stats plus the generator's.
func runService(t *testing.T, name string, cfg Config, load LoadConfig) (*Stats, LoadStats) {
	t.Helper()
	s, err := Build(name, cfg.Workers, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ls, err := Generate(svc.In(), svc.Epoch(), load)
	close(svc.In())
	if err != nil {
		t.Fatal(err)
	}
	return svc.Wait(), ls
}

// checkLedger asserts the zero-lost-tasks ledger and the per-tenant
// decomposition of a run.
func checkLedger(t *testing.T, name string, st *Stats, sent int) {
	t.Helper()
	if st.Ingested != uint64(sent) {
		t.Fatalf("%s: ingested %d of %d sent", name, st.Ingested, sent)
	}
	if st.Ingested != st.Completed+st.Shed {
		t.Fatalf("%s: LOST TASKS: ingested %d != completed %d + shed %d",
			name, st.Ingested, st.Completed, st.Shed)
	}
	var sumC, sumS uint64
	for _, ts := range st.PerTenant {
		sumC += ts.Completed
		sumS += ts.Shed
		if ts.Latency.Count() != ts.Completed {
			t.Fatalf("%s: tenant histogram holds %d samples for %d completions",
				name, ts.Latency.Count(), ts.Completed)
		}
	}
	if sumC != st.Completed || sumS != st.Shed {
		t.Fatalf("%s: per-tenant totals (%d, %d) != run totals (%d, %d)",
			name, sumC, sumS, st.Completed, st.Shed)
	}
}

// TestServeSoakZoo is the streaming soak across the whole scheduler
// lineup: bursty Zipf-skewed arrivals whose gaps repeatedly drain the
// queue to empty — exactly the shape that breaks emptiness-based
// termination — then a clean close. Run under -race in CI. Every task
// must be accounted for: the queue hitting zero between bursts must
// neither terminate workers early nor lose the tasks buried in worker-
// local buffers at close time.
func TestServeSoakZoo(t *testing.T) {
	tasks := 30000
	if testing.Short() {
		tasks = 8000
	}
	for _, name := range Lineup() {
		t.Run(name, func(t *testing.T) {
			st, ls := runService(t, name,
				Config{Workers: 4, MinWorkers: 1, Tenants: 3},
				LoadConfig{Rate: 150000, Tasks: tasks, Tenants: 3, Skew: 0.99,
					Burst: 64, CostMin: 20, CostMax: 400, Seed: 7})
			checkLedger(t, name, st, ls.Sent)
			if st.Shed != 0 {
				t.Fatalf("%s: shed %d below the watermark", name, st.Shed)
			}
			if st.Completed != uint64(tasks) {
				t.Fatalf("%s: completed %d of %d", name, st.Completed, tasks)
			}
		})
	}
}

// TestServeShedPolicy forces the high watermark with a tiny admission
// window and slow service, and checks that shedding both engages and
// keeps the ledger balanced.
func TestServeShedPolicy(t *testing.T) {
	st, ls := runService(t, "smq",
		Config{Workers: 2, MinWorkers: 1, Tenants: 2,
			HighWater: 64, LowWater: 16, Policy: PolicyShed},
		LoadConfig{Rate: 500000, Tasks: 20000, Tenants: 2,
			CostMin: 2000, CostMax: 4000, Seed: 3})
	checkLedger(t, "smq", st, ls.Sent)
	if st.Shed == 0 {
		t.Fatal("overloaded run with PolicyShed shed nothing")
	}
	if st.Completed == 0 {
		t.Fatal("overloaded run completed nothing")
	}
}

// TestServeStallPolicy runs the same overload with PolicyStall:
// nothing may be shed, and backpressure episodes must be recorded.
func TestServeStallPolicy(t *testing.T) {
	tasks := 20000
	if testing.Short() {
		tasks = 6000
	}
	st, ls := runService(t, "smq",
		Config{Workers: 2, MinWorkers: 1, Tenants: 2,
			HighWater: 64, LowWater: 16, Policy: PolicyStall},
		LoadConfig{Rate: 500000, Tasks: tasks, Tenants: 2,
			CostMin: 2000, CostMax: 4000, Seed: 3})
	checkLedger(t, "smq", st, ls.Sent)
	if st.Shed != 0 {
		t.Fatalf("PolicyStall shed %d tasks", st.Shed)
	}
	if st.Completed != uint64(tasks) {
		t.Fatalf("completed %d of %d", st.Completed, tasks)
	}
	if st.Stalls == 0 || st.StallDur == 0 {
		t.Fatalf("overloaded run recorded no backpressure (stalls=%d dur=%v)",
			st.Stalls, st.StallDur)
	}
}

// TestServeElasticParking drives a trickle through an oversized pool:
// the surplus workers must park (and the run must still drain cleanly
// through the close-time wakeup).
func TestServeElasticParking(t *testing.T) {
	st, ls := runService(t, "smq",
		Config{Workers: 6, MinWorkers: 1, Tenants: 1},
		LoadConfig{Rate: 2000, Tasks: 400, Tenants: 1,
			CostMin: 20, CostMax: 100, Seed: 5})
	checkLedger(t, "smq", st, ls.Sent)
	if st.Parks == 0 {
		t.Fatal("idle surplus workers never parked")
	}
	if st.MeanActiveWorkers >= float64(5) {
		t.Fatalf("mean active workers %.2f: pool did not shrink under a trickle",
			st.MeanActiveWorkers)
	}
}

// TestServeQuiescesEmpty closes the stream without offering any load:
// the service must shut down cleanly (this deadlocked under any
// protocol that needed at least one task to propagate the close).
func TestServeQuiescesEmpty(t *testing.T) {
	s, err := Build("mq", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(s, Config{Workers: 3, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	close(svc.In())
	done := make(chan *Stats, 1)
	go func() { done <- svc.Wait() }()
	select {
	case st := <-done:
		if st.Ingested != 0 || st.Completed != 0 || st.Shed != 0 {
			t.Fatalf("empty run reports work: %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("empty service did not quiesce")
	}
}

// TestServeIdleCPU pins the satellite bugfix's observable effect: an
// idle service (started, zero offered load) must not busy-spin. The
// pre-fix Backoff degenerated to a bare Gosched loop, pinning ~100% of
// a core per awake worker; with the sleep tier and parking the idle
// fraction sits near zero. The 0.5 bound is deliberately loose for
// noisy CI machines while still rejecting any spin regression.
func TestServeIdleCPU(t *testing.T) {
	if _, ok := processCPU(); !ok {
		t.Skip("no process CPU accounting on this platform")
	}
	s, err := Build("smq", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(s, Config{Workers: 4, Tenants: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	frac := MeasureIdleCPU(200 * time.Millisecond)
	close(svc.In())
	svc.Wait()
	if frac < 0 {
		t.Skip("idle CPU unmeasurable")
	}
	if frac > 0.5 {
		t.Fatalf("idle service burned %.0f%% CPU: busy-spin regression", frac*100)
	}
}

// TestServeRunBench exercises the trajectory glue end to end on a tiny
// run: the generated report must carry a serve section per scheduler
// and pass perfbench validation (RunBench validates internally).
func TestServeRunBench(t *testing.T) {
	rep, err := RunBench(BenchConfig{
		Schedulers: []string{"smq", "coarse"},
		Rate:       100000, Tasks: 5000, Tenants: 2, Skew: 0.99,
		Workers: 3, GeneratedBy: "serve_test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Serve) != 2 {
		t.Fatalf("report carries %d serve entries, want 2", len(rep.Serve))
	}
	for _, sr := range rep.Serve {
		if sr.Completed+sr.Shed != uint64(5000) {
			t.Fatalf("%s: %d accounted of 5000", sr.Scheduler, sr.Completed+sr.Shed)
		}
	}
}
