package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTSVRoundTrip pins the TSV format: write → parse → compare must be
// lossless, both for a synthetic table set and for a real experiment's
// rendered output.
func TestTSVRoundTrip(t *testing.T) {
	tables := []Table{
		{
			Title:  "Synthetic panel (a)",
			Header: []string{"Scheduler", "Threads", "Time", "Speedup"},
			Rows: [][]string{
				{"SMQ SkipList", "4", "1.23ms", "3.8x"},
				{"MQ Classic", "4", "2.00ms", "2.4x"},
			},
		},
		{
			Title:  "Empty data panel",
			Header: []string{"K", "Value"},
		},
	}
	var buf bytes.Buffer
	if err := WriteTables(&buf, tables, "tsv"); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tables) {
		t.Fatalf("round trip changed tables:\n got %+v\nwant %+v", got, tables)
	}
}

func TestTSVRoundTripRealExperiment(t *testing.T) {
	e, ok := Find("theory")
	if !ok {
		t.Fatal("theory experiment missing")
	}
	tables, err := e.Run(RunConfig{Scale: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTables(&buf, tables, "tsv"); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	parsed, err := ParseTSV(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, tables) {
		t.Fatal("parsed tables differ from the experiment's output")
	}
	// Second write of the parsed tables reproduces the bytes exactly.
	var buf2 bytes.Buffer
	if err := WriteTables(&buf2, parsed, "tsv"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-written TSV differs from the original bytes")
	}
}

func TestParseTSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"data outside a table":      "stray\n",
		"missing blank terminator":  "# T\nH1\tH2\n1\t2\n",
		"ragged row":                "# T\nH1\tH2\n1\t2\t3\n\n",
		"table without header":      "# T\n\n",
		"new table inside previous": "# T\nH\n# U\n",
	}
	for name, in := range cases {
		if _, err := ParseTSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}
