package spray

import (
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 did not panic")
		}
	}()
	New[int](Config{})
}

func TestSingleThreadedDrain(t *testing.T) {
	s := New[int](Config{Workers: 1})
	w := s.Worker(0)
	const n = 2000
	for i := 0; i < n; i++ {
		w.Push(uint64(i%301), i)
	}
	seen := make([]bool, n)
	count := 0
	for {
		_, v, ok := w.Pop()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
		count++
	}
	if count != n {
		t.Fatalf("popped %d, want %d", count, n)
	}
	st := s.Stats()
	if st.Pops != n || st.Pushes != n {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNearMinimalReturns(t *testing.T) {
	// A spray must return elements close to the front. With one worker
	// and n elements, every pop should have small rank.
	s := New[int](Config{Workers: 1, Seed: 3})
	w := s.Worker(0)
	const n = 50000
	for i := 0; i < n; i++ {
		w.Push(uint64(i), i)
	}
	worst := 0
	for i := 0; i < 100; i++ {
		_, v, ok := w.Pop()
		if !ok {
			t.Fatal("unexpected empty")
		}
		if v > worst {
			worst = v
		}
	}
	if worst > n/10 {
		t.Fatalf("spray rank %d of %d is not near-minimal", worst, n)
	}
}

func TestNoLostTasksConcurrent(t *testing.T) {
	s := New[int](Config{Workers: 4})
	const perWorker = 3000
	total := 4 * perWorker
	var pending sched.Pending
	pending.Inc(int64(total))
	seen := make([]int32, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wid := 0; wid < 4; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			for i := 0; i < perWorker; i++ {
				v := wid*perWorker + i
				w.Push(uint64(v%997), v)
			}
			var b sched.Backoff
			for !pending.Done() {
				_, v, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				mu.Lock()
				seen[v]++
				mu.Unlock()
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("task %d seen %d times", v, c)
		}
	}
}
