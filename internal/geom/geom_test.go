package geom

import (
	"math"
	"testing"
)

// testSets enumerates point sets covering the regular and degenerate
// shapes the kd-tree must handle: uniform, clustered, duplicate-heavy,
// collinear, and tiny (n <= k).
func testSets() map[string]*PointSet {
	duplicates := &PointSet{Dim: 2}
	for i := 0; i < 60; i++ {
		// 20 distinct locations, each appearing three times.
		x := float64(i % 20)
		duplicates.Coords = append(duplicates.Coords, x*0.05, x*0.03)
	}
	collinear := &PointSet{Dim: 3}
	for i := 0; i < 50; i++ {
		t := float64(i) * 0.02
		collinear.Coords = append(collinear.Coords, t, 2*t, -t)
	}
	return map[string]*PointSet{
		"uniform2d":  UniformCube(300, 2, 1),
		"uniform3d":  UniformCube(200, 3, 2),
		"gauss":      GaussianClusters(300, 2, 5, 0.02, 3),
		"gaussTight": GaussianClusters(128, 3, 4, 0, 4), // stddev 0: 4 duplicate sites
		"duplicates": duplicates,
		"collinear":  collinear,
		"tiny":       UniformCube(3, 2, 5),
		"single":     UniformCube(1, 2, 6),
		"empty":      {Dim: 2},
	}
}

func TestKDTreeKNNMatchesBruteForce(t *testing.T) {
	for name, ps := range testSets() {
		tree := NewKDTree(ps)
		for _, k := range []int{1, 4, 9, ps.N() + 5} { // k > n-1 covered
			var buf []Neighbor
			for q := 0; q < ps.N(); q++ {
				want := BruteKNN(ps, q, k)
				buf = tree.KNN(ps.At(q), k, int32(q), buf)
				if len(buf) != len(want) {
					t.Fatalf("%s k=%d q=%d: got %d neighbors, want %d", name, k, q, len(buf), len(want))
				}
				for i := range want {
					if buf[i] != want[i] {
						t.Fatalf("%s k=%d q=%d: neighbor %d = %+v, want %+v", name, k, q, i, buf[i], want[i])
					}
				}
			}
		}
	}
}

func TestKDTreeWithinMatchesBruteForce(t *testing.T) {
	for name, ps := range testSets() {
		tree := NewKDTree(ps)
		for _, r := range []float64{0, 0.05, 0.3, 10} {
			r2 := r * r
			var buf []Neighbor
			for q := 0; q < ps.N(); q++ {
				got := map[int32]bool{}
				buf = tree.AppendWithin(ps.At(q), r2, int32(q), buf[:0])
				for _, nb := range buf {
					if nb.Idx == int32(q) {
						t.Fatalf("%s r=%g q=%d: query point returned", name, r, q)
					}
					if got[nb.Idx] {
						t.Fatalf("%s r=%g q=%d: point %d returned twice", name, r, q, nb.Idx)
					}
					got[nb.Idx] = true
					if d2 := ps.Dist2(q, int(nb.Idx)); d2 != nb.D2 || d2 > r2 {
						t.Fatalf("%s r=%g q=%d: bad distance for %d", name, r, q, nb.Idx)
					}
				}
				for i := 0; i < ps.N(); i++ {
					if i != q && ps.Dist2(q, i) <= r2 && !got[int32(i)] {
						t.Fatalf("%s r=%g q=%d: point %d within radius but missing", name, r, q, i)
					}
				}
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := UniformCube(500, 3, 42)
	b := UniformCube(500, 3, 42)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("UniformCube not deterministic at %d", i)
		}
	}
	c := UniformCube(500, 3, 43)
	same := 0
	for i := range a.Coords {
		if a.Coords[i] == c.Coords[i] {
			same++
		}
	}
	if same == len(a.Coords) {
		t.Fatal("different seeds produced identical point sets")
	}

	g1 := GaussianClusters(400, 2, 7, 0.05, 9)
	g2 := GaussianClusters(400, 2, 7, 0.05, 9)
	for i := range g1.Coords {
		if g1.Coords[i] != g2.Coords[i] {
			t.Fatalf("GaussianClusters not deterministic at %d", i)
		}
	}
}

func TestGaussianClustersShape(t *testing.T) {
	const clusters = 4
	ps := GaussianClusters(4000, 2, clusters, 0.01, 11)
	if ps.N() != 4000 {
		t.Fatalf("n = %d", ps.N())
	}
	// Points assigned round-robin to the same cluster should be far more
	// concentrated than the global spread.
	within, across := 0.0, 0.0
	for i := 0; i+clusters < 400*clusters; i += clusters {
		within += math.Sqrt(ps.Dist2(i, i+clusters)) // same cluster
		across += math.Sqrt(ps.Dist2(i, i+1))        // different clusters
	}
	if within >= across {
		t.Fatalf("cluster spread %g not smaller than cross-cluster spread %g", within, across)
	}
}

func TestWeightQuantization(t *testing.T) {
	if Weight(0) != 0 {
		t.Fatal("zero distance must quantize to zero")
	}
	if Weight(1) != WeightScale {
		t.Fatalf("unit distance = %d, want %d", Weight(1), WeightScale)
	}
	if Weight(math.Inf(1)) != math.MaxUint32 {
		t.Fatal("infinite distance must saturate")
	}
	// Monotone on a coarse grid.
	prev := uint32(0)
	for d := 0.0; d < 4.0; d += 0.01 {
		w := Weight(d * d)
		if w < prev {
			t.Fatalf("Weight not monotone at %g", d)
		}
		prev = w
	}
}

func TestExtent(t *testing.T) {
	ps := &PointSet{Dim: 2, Coords: []float64{0, 0, 3, 1, 1, 2}}
	if got := ps.Extent(); got != 3 {
		t.Fatalf("Extent = %g, want 3", got)
	}
	if (&PointSet{Dim: 2}).Extent() != 0 {
		t.Fatal("empty set extent must be 0")
	}
}

func TestKDTreeNearestFilteredMatchesBruteForce(t *testing.T) {
	for name, ps := range testSets() {
		tree := NewKDTree(ps)
		// Filters of increasing selectivity, including "everything
		// excluded" (the ok=false path).
		filters := map[string]func(int32) bool{
			"none":  func(int32) bool { return false },
			"evens": func(i int32) bool { return i%2 == 0 },
			"most":  func(i int32) bool { return i%7 != 0 },
			"all":   func(int32) bool { return true },
		}
		for fname, excluded := range filters {
			for q := 0; q < ps.N(); q++ {
				var want Neighbor
				wantOK := false
				for i := 0; i < ps.N(); i++ {
					if i == q || excluded(int32(i)) {
						continue
					}
					nb := Neighbor{Idx: int32(i), D2: ps.Dist2(q, i)}
					if !wantOK || nb.less(want) {
						want, wantOK = nb, true
					}
				}
				got, ok := tree.NearestFiltered(ps.At(q), int32(q), excluded)
				if ok != wantOK {
					t.Fatalf("%s/%s q=%d: ok=%v, want %v", name, fname, q, ok, wantOK)
				}
				if ok && got != want {
					t.Fatalf("%s/%s q=%d: got %+v, want %+v", name, fname, q, got, want)
				}
			}
		}
	}
}
