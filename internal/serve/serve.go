// Package serve is the open-loop serving front-end over the scheduler
// zoo: a long-running priority-task service that ingests a stream of
// requests from outside the worker set, applies admission control at a
// pending-task watermark, and executes tasks on an elastic worker pool
// that parks idle worker slots instead of spinning.
//
// The package exists because the repository's other drivers
// (internal/algos, internal/perfbench) are run-to-completion: all work
// descends from seeds registered before workers start, so a worker may
// exit the moment the in-flight counter touches zero. A service is the
// opposite shape — the queue legitimately drains to empty between
// arrival bursts — which forces three structural changes:
//
//   - Termination switches from emptiness (sched.Pending.Done) to
//     quiescence (Close + Quiesced): workers exit only once the ingest
//     stream is closed AND the count is zero. See the Pending docs.
//   - Ingestion must flow through a worker handle. Scheduler handles
//     are single-goroutine, and several schedulers bury pushed tasks in
//     handle-local structures (the k-LSM's local LSM, the SMQ's local
//     heap, the engineered MultiQueue's insertion buffer) that only the
//     owning worker can drain. A push-only ingester goroutine would
//     therefore strand its own tail of tasks. Worker 0 is instead a
//     hybrid: it alternates channel drains with PopN/process rounds, so
//     whatever its pushes leave in worker-0-local state it processes
//     itself, and it never blocks on the channel.
//   - Idle workers must cost ~0 CPU. The pool parks surplus workers on
//     per-worker wake channels once their backoff reaches the sleep
//     tier, and the ingester unparks them as pending work grows.
//
// A worker only offers to park after its own PopN returned zero, which
// for every scheduler in the zoo implies its handle-local structures
// are empty — so a parked worker can never hold buried tasks, and the
// zero-lost-tasks ledger (ingested = completed + shed) holds at
// shutdown.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perfbench"
	"repro/internal/sched"
)

// Request is one unit of offered load. Priorities are the scheduled
// arrival time, so the service drains in (relaxed) arrival order.
type Request struct {
	// Tenant is the traffic class in [0, Config.Tenants).
	Tenant int
	// Cost is the synthetic service cost in calibrated spin units
	// (roughly nanoseconds; see spinWork).
	Cost uint32
	// Enq is the scheduled arrival time in nanoseconds since the
	// Service epoch. Latency is measured from Enq, not from the moment
	// the request crossed the channel, so generator lag and admission
	// stalls count against the service (no coordinated omission).
	Enq int64
}

// Policy selects what admission control does above the high watermark.
type Policy int

const (
	// PolicyStall pauses ingestion (backpressure up the channel) and
	// lets the ingest worker help drain until the low watermark.
	PolicyStall Policy = iota
	// PolicyShed drops incoming requests (counted per tenant) until
	// pending falls below the low watermark.
	PolicyShed
)

// Config parameterizes a Service.
type Config struct {
	// Workers is the scheduler's total worker-slot count, including
	// worker 0, the hybrid ingest worker. Must be >= 2 and must equal
	// the scheduler's Workers().
	Workers int
	// MinWorkers is the elastic pool's floor: pool workers beyond this
	// many may park. Range [1, Workers-1]; 0 means 1.
	MinWorkers int
	// Tenants is the number of traffic classes. 0 means 1.
	Tenants int
	// HighWater / LowWater are the admission watermarks on the pending
	// in-flight count, with hysteresis: the policy engages above
	// HighWater and disengages below LowWater. 0 means 1<<16 and
	// HighWater/2 respectively.
	HighWater int64
	LowWater  int64
	// Policy is the above-watermark behaviour (default PolicyStall).
	Policy Policy
	// TasksPerWorker is the pool scale-up target: the ingester keeps
	// roughly one unparked pool worker per this many pending tasks.
	// 0 means 256.
	TasksPerWorker int64
	// InBuffer is the ingest channel capacity. 0 means 4096.
	InBuffer int
}

func (c *Config) normalize() error {
	if c.Workers < 2 {
		return fmt.Errorf("serve: Workers = %d, need >= 2 (ingest worker + at least one pool worker)", c.Workers)
	}
	if c.Tenants == 0 {
		c.Tenants = 1
	}
	if c.Tenants < 1 {
		return fmt.Errorf("serve: Tenants = %d", c.Tenants)
	}
	if c.MinWorkers == 0 {
		c.MinWorkers = 1
	}
	if c.MinWorkers < 1 || c.MinWorkers > c.Workers-1 {
		return fmt.Errorf("serve: MinWorkers = %d outside [1, %d]", c.MinWorkers, c.Workers-1)
	}
	if c.HighWater == 0 {
		c.HighWater = 1 << 16
	}
	if c.LowWater == 0 {
		c.LowWater = c.HighWater / 2
	}
	if c.LowWater < 0 || c.LowWater > c.HighWater {
		return fmt.Errorf("serve: LowWater %d outside [0, HighWater=%d]", c.LowWater, c.HighWater)
	}
	if c.TasksPerWorker == 0 {
		c.TasksPerWorker = 256
	}
	if c.InBuffer == 0 {
		c.InBuffer = 4096
	}
	return nil
}

// serveBatch is the PopN batch size of the serving workers, and
// ingestBatch the channel-drain batch the ingester folds into one
// PushN. Both amortize per-operation scheduler costs; the ingest batch
// additionally folds the Pending accounting into one atomic add.
const (
	serveBatch  = 8
	ingestBatch = 64
)

// TenantStats is one tenant's slice of a run.
type TenantStats struct {
	Completed uint64
	Shed      uint64
	// Latency is the sojourn-time histogram (scheduled arrival to
	// completion, nanoseconds).
	Latency perfbench.Histogram
}

// Stats is a completed run's accounting. Ingested = Completed + Shed
// is the zero-lost-tasks ledger: every request taken off the channel
// was either executed or deliberately shed, none lost.
type Stats struct {
	Ingested  uint64
	Completed uint64
	Shed      uint64
	// Stalls / StallDur account PolicyStall backpressure episodes.
	Stalls   uint64
	StallDur time.Duration
	// Parks / Unparks / MeanActiveWorkers describe the elastic pool
	// (MeanActiveWorkers includes the always-active ingest worker).
	Parks             uint64
	Unparks           uint64
	MeanActiveWorkers float64
	// Duration is Start to quiescence.
	Duration  time.Duration
	PerTenant []TenantStats
	Sched     sched.Stats
}

// workerLocal is one worker's private accounting; merged after
// quiescence. The slices are per-tenant and separately allocated per
// worker, so workers never write into shared backing arrays.
type workerLocal struct {
	completed []uint64
	hist      []perfbench.Histogram
}

// ingestStats is owned by the ingest worker; read after quiescence.
type ingestStats struct {
	ingested     uint64
	shed         uint64
	shedByTenant []uint64
	stalls       uint64
	stallNs      int64
}

// Service is an open-loop priority-task service over one scheduler.
// Create with New, feed via In, close In when the stream ends, then
// Wait for quiescence and the run's Stats.
type Service struct {
	cfg     Config
	s       sched.Scheduler[Request]
	in      chan Request
	epoch   time.Time
	pending sched.Pending
	pool    pool
	locals  []workerLocal
	ing     ingestStats
	wg      sync.WaitGroup
	started bool
}

// New builds a Service over s. The scheduler must have been created
// with cfg.Workers worker slots, all of which the Service claims.
func New(s sched.Scheduler[Request], cfg Config) (*Service, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if s.Workers() != cfg.Workers {
		return nil, fmt.Errorf("serve: scheduler has %d worker slots, config says %d", s.Workers(), cfg.Workers)
	}
	sv := &Service{
		cfg:    cfg,
		s:      s,
		in:     make(chan Request, cfg.InBuffer),
		locals: make([]workerLocal, cfg.Workers),
	}
	for i := range sv.locals {
		sv.locals[i].completed = make([]uint64, cfg.Tenants)
		sv.locals[i].hist = make([]perfbench.Histogram, cfg.Tenants)
	}
	sv.ing.shedByTenant = make([]uint64, cfg.Tenants)
	return sv, nil
}

// In returns the ingest channel. The caller closes it to end the
// stream; the Service then drains and quiesces.
func (sv *Service) In() chan<- Request { return sv.in }

// Epoch returns the service time origin Request.Enq is measured from.
// Valid after Start.
func (sv *Service) Epoch() time.Time { return sv.epoch }

// Start launches the ingest worker and the pool workers.
func (sv *Service) Start() {
	if sv.started {
		panic("serve: Start called twice")
	}
	sv.started = true
	sv.epoch = time.Now()
	sv.pool.init(sv.cfg.MinWorkers, sv.cfg.Workers-1, sv.epoch)
	sv.wg.Add(sv.cfg.Workers)
	go func() {
		defer sv.wg.Done()
		sv.runIngest()
	}()
	for wid := 1; wid < sv.cfg.Workers; wid++ {
		go func(wid int) {
			defer sv.wg.Done()
			sv.runPoolWorker(wid)
		}(wid)
	}
}

// Wait blocks until the ingest channel has been closed and every task
// has been executed, then returns the run's accounting.
func (sv *Service) Wait() *Stats {
	sv.wg.Wait()
	end := time.Now()
	st := &Stats{
		Ingested:  sv.ing.ingested,
		Shed:      sv.ing.shed,
		Stalls:    sv.ing.stalls,
		StallDur:  time.Duration(sv.ing.stallNs),
		Duration:  end.Sub(sv.epoch),
		PerTenant: make([]TenantStats, sv.cfg.Tenants),
		Sched:     sv.s.Stats(),
	}
	st.Parks, st.Unparks, st.MeanActiveWorkers = sv.pool.finish(end, sv.epoch)
	for t := 0; t < sv.cfg.Tenants; t++ {
		ts := &st.PerTenant[t]
		ts.Shed = sv.ing.shedByTenant[t]
		for w := range sv.locals {
			ts.Completed += sv.locals[w].completed[t]
			ts.Latency.Merge(&sv.locals[w].hist[t])
		}
		st.Completed += ts.Completed
	}
	return st
}

// spinSink is the calibrated-work load target: an atomic load of a
// package variable is a real memory operation the compiler keeps, and
// concurrent readers do not contend (the line stays shared).
var spinSink atomic.Uint64

// spinWork burns the request's synthetic service cost: one atomic load
// per unit, roughly a nanosecond each.
func spinWork(units uint32) {
	for i := uint32(0); i < units; i++ {
		_ = spinSink.Load()
	}
}

// process executes one popped request and records its sojourn time.
func (sv *Service) process(local *workerLocal, t sched.Task[Request]) {
	spinWork(t.V.Cost)
	soj := time.Since(sv.epoch).Nanoseconds() - t.V.Enq
	if soj < 0 {
		// The generator may run a hair ahead of schedule; clamp.
		soj = 0
	}
	local.hist[t.V.Tenant].Record(uint64(soj))
	local.completed[t.V.Tenant]++
}

// runIngest is worker 0: the hybrid ingest-and-process loop. Each
// round drains up to ingestBatch requests without blocking, applies
// admission control, publishes the admitted batch through its worker
// handle (Inc before PushN, so Pending can never dip to zero while the
// batch is buried in worker-local structures), rescales the pool, and
// then runs one PopN/process round so tasks its own pushes left in
// worker-0-local state cannot strand. When the channel closes it turns
// into a plain worker until quiescence.
func (sv *Service) runIngest() {
	w := sv.s.Worker(0)
	local := &sv.locals[0]
	popBuf := make([]sched.Task[Request], serveBatch)
	ps := make([]uint64, 0, ingestBatch)
	vs := make([]Request, 0, ingestBatch)
	var b sched.Backoff
	open := true
	shedding := false
	for {
		progress := false
		if open {
			ps, vs = ps[:0], vs[:0]
		recv:
			for len(vs) < ingestBatch {
				select {
				case r, ok := <-sv.in:
					if !ok {
						open = false
						break recv
					}
					sv.ing.ingested++
					vs = append(vs, r)
				default:
					break recv
				}
			}
			if len(vs) > 0 {
				progress = true
				vs = sv.admit(w, local, vs, &shedding)
				if len(vs) > 0 {
					for _, r := range vs {
						ps = append(ps, uint64(r.Enq))
					}
					sv.pending.Inc(int64(len(vs)))
					w.PushN(ps, vs)
				}
				sv.pool.scaleTo(sv.desiredWorkers(), time.Now())
			}
			if !open {
				// Final external Inc has been issued; from here only
				// workers create tasks (none do), so Quiesced() is
				// armed. Wake every parked worker so it can observe
				// quiescence and exit; parking is refused after close.
				sv.pending.Close()
				sv.pool.close(time.Now())
			}
		}
		if k := w.PopN(popBuf); k > 0 {
			progress = true
			for i := 0; i < k; i++ {
				sv.process(local, popBuf[i])
			}
			sv.pending.Inc(int64(-k))
		}
		if progress {
			b.Reset()
			continue
		}
		if !open && sv.pending.Quiesced() {
			return
		}
		// PopN may spuriously fail while tasks sit in shared
		// structures, but no task can strand: parking refuses to go
		// below MinWorkers >= 1, so some pool worker is always
		// polling (at worst at the backoff sleep cap's cadence).
		b.Wait()
	}
}

// admit applies the admission policy to a freshly drained batch and
// returns the admitted suffix. PolicyShed drops requests while the
// hysteresis flag is set; PolicyStall blocks ingestion — processing
// all the while — until pending falls to the low watermark, then
// admits the whole batch.
func (sv *Service) admit(w sched.Worker[Request], local *workerLocal, vs []Request, shedding *bool) []Request {
	pend := sv.pending.Load()
	if *shedding && pend <= sv.cfg.LowWater {
		*shedding = false
	}
	if !*shedding && pend <= sv.cfg.HighWater {
		return vs
	}
	if sv.cfg.Policy == PolicyShed {
		*shedding = true
		for _, r := range vs {
			sv.ing.shed++
			sv.ing.shedByTenant[r.Tenant]++
		}
		return vs[:0]
	}
	// PolicyStall: all hands on deck, then help drain. The held batch
	// backpressures the channel, and the channel the generator.
	sv.ing.stalls++
	start := time.Now()
	sv.pool.scaleTo(sv.cfg.Workers-1, start)
	popBuf := make([]sched.Task[Request], serveBatch)
	var b sched.Backoff
	for sv.pending.Load() > sv.cfg.LowWater {
		k := w.PopN(popBuf)
		if k == 0 {
			b.Wait()
			continue
		}
		b.Reset()
		for i := 0; i < k; i++ {
			sv.process(local, popBuf[i])
		}
		sv.pending.Inc(int64(-k))
	}
	sv.ing.stallNs += time.Since(start).Nanoseconds()
	return vs
}

// desiredWorkers is the pool scale target: one active pool worker per
// TasksPerWorker pending tasks, clamped to [MinWorkers, Workers-1].
func (sv *Service) desiredWorkers() int {
	d := int(sv.pending.Load() / sv.cfg.TasksPerWorker)
	if d < sv.cfg.MinWorkers {
		d = sv.cfg.MinWorkers
	}
	if max := sv.cfg.Workers - 1; d > max {
		d = max
	}
	return d
}

// runPoolWorker is workers 1..n-1: pop, process, and — once backoff
// says this slot has been idle long enough to be in the sleep tier —
// offer to park. Parking is only offered after the worker's OWN PopN
// returned zero, which implies its handle-local structures are empty:
// a parked worker can never hold buried tasks.
func (sv *Service) runPoolWorker(wid int) {
	w := sv.s.Worker(wid)
	local := &sv.locals[wid]
	wake := sv.pool.channel(wid)
	popBuf := make([]sched.Task[Request], serveBatch)
	var b sched.Backoff
	for {
		if k := w.PopN(popBuf); k > 0 {
			b.Reset()
			for i := 0; i < k; i++ {
				sv.process(local, popBuf[i])
			}
			sv.pending.Inc(int64(-k))
			continue
		}
		if sv.pending.Quiesced() {
			return
		}
		if b.Sleeping() && sv.pool.tryPark(wid, time.Now()) {
			<-wake
			b.Reset()
			continue
		}
		b.Wait()
	}
}

// pool is the elastic worker pool's shared state: which pool workers
// are parked, how many are active, and the time integral of the active
// count (for MeanActiveWorkers). All transitions happen under mu, so
// the park/unpark handshake has no lost wakeups: a worker is only ever
// woken through a channel it registered while decrementing active, and
// the ingester's scale checks read active under the same lock.
type pool struct {
	mu             sync.Mutex
	wake           []chan struct{} // per pool worker, buffered(1); index = wid-1
	parked         []int           // LIFO stack of parked wids
	active         int
	min            int
	closed         bool
	parks, unparks uint64
	lastT          time.Time
	integralNs     float64 // ∫ (1 + active) dt — the 1 is the ingest worker
}

func (p *pool) init(min, size int, now time.Time) {
	p.min = min
	p.active = size
	p.wake = make([]chan struct{}, size)
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
	}
	p.lastT = now
}

func (p *pool) channel(wid int) chan struct{} { return p.wake[wid-1] }

// note folds the elapsed interval into the active-worker integral.
// Callers hold mu.
func (p *pool) note(now time.Time) {
	if dt := now.Sub(p.lastT); dt > 0 {
		p.integralNs += float64(1+p.active) * float64(dt.Nanoseconds())
		p.lastT = now
	}
}

// tryPark offers to park worker wid. Refused when the pool is at its
// floor or the stream has closed (a post-close parker could sleep
// through shutdown).
func (p *pool) tryPark(wid int, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.active <= p.min {
		return false
	}
	p.note(now)
	p.active--
	p.parks++
	p.parked = append(p.parked, wid)
	return true
}

// scaleTo unparks workers until the active count reaches desired (or
// no parked workers remain). The wake channels are buffered, so the
// send lands even if the worker has not reached its receive yet.
func (p *pool) scaleTo(desired int, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.active < desired && len(p.parked) > 0 {
		p.note(now)
		wid := p.parked[len(p.parked)-1]
		p.parked = p.parked[:len(p.parked)-1]
		p.active++
		p.unparks++
		p.wake[wid-1] <- struct{}{}
	}
}

// close wakes every parked worker and refuses all future parking, so
// each pool worker gets to observe quiescence and exit.
func (p *pool) close(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, wid := range p.parked {
		p.note(now)
		p.active++
		p.unparks++
		p.wake[wid-1] <- struct{}{}
	}
	p.parked = p.parked[:0]
}

// finish closes the integral and reports the pool counters.
func (p *pool) finish(now, epoch time.Time) (parks, unparks uint64, meanActive float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.note(now)
	elapsed := now.Sub(epoch).Nanoseconds()
	if elapsed > 0 {
		meanActive = p.integralNs / float64(elapsed)
	}
	return p.parks, p.unparks, meanActive
}
