package pq

// DHeap is a sequential d-ary min-heap. The paper's SMQ uses d = 4
// thread-local heaps (§4): a wider fan-out shortens the sift-down path and
// keeps more of each level in one cache line, which is why it outperforms
// the binary heap for scheduler-sized workloads (see the ablation benches).
//
// The zero value is not usable; construct with NewDHeap.
type DHeap[T any] struct {
	d     int
	shift uint // log2(d) when d is a power of two, else 0
	items []Item[T]
}

// DefaultArity is the heap fan-out used by the paper's implementation.
const DefaultArity = 4

// NewDHeap returns an empty d-ary heap. It panics if d < 2.
func NewDHeap[T any](d int) *DHeap[T] {
	if d < 2 {
		panic("pq: heap arity must be >= 2")
	}
	h := &DHeap[T]{d: d}
	if d&(d-1) == 0 {
		// Power-of-two arity (the common case: the paper's d = 4 and the
		// engineered MultiQueue's d = 8): parent/child index arithmetic
		// can shift instead of paying a hardware divide in the sift-up
		// loop, which is hot enough for that to matter.
		for 1<<h.shift < d {
			h.shift++
		}
	}
	return h
}

// NewDHeapCap returns an empty d-ary heap with preallocated capacity.
func NewDHeapCap[T any](d, capacity int) *DHeap[T] {
	h := NewDHeap[T](d)
	h.items = make([]Item[T], 0, capacity)
	return h
}

// Len reports the number of queued tasks.
func (h *DHeap[T]) Len() int { return len(h.items) }

// Top returns the minimum priority, or InfPriority when empty.
func (h *DHeap[T]) Top() uint64 {
	if len(h.items) == 0 {
		return InfPriority
	}
	return h.items[0].P
}

// Push inserts a task.
func (h *DHeap[T]) Push(p uint64, v T) {
	h.items = append(h.items, Item[T]{P: p, V: v})
	h.siftUp(len(h.items) - 1)
}

// PushItem inserts a prepared Item.
func (h *DHeap[T]) PushItem(it Item[T]) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

// PushBatch inserts a run of prepared Items. The whole run is appended
// in one grow step and then sifted item by item in index order (each
// sift-up only inspects ancestors, so the not-yet-sifted suffix cannot
// be observed), which replaces per-call append/bounds bookkeeping with
// one slice extension — the batched-insert primitive behind PushN.
func (h *DHeap[T]) PushBatch(items []Item[T]) {
	if len(items) == 0 {
		return
	}
	start := len(h.items)
	h.items = append(h.items, items...)
	for i := start; i < len(h.items); i++ {
		h.siftUp(i)
	}
}

// PushPairs inserts the parallel-slice batch ps[i]/vs[i] — the bulk
// Worker.PushN arrives in exactly this shape, so schedulers whose
// critical section is the insertion itself (the coarse global heap)
// can skip the zip into an Item scratch entirely. Both slices must
// have equal length (the caller validates).
func (h *DHeap[T]) PushPairs(ps []uint64, vs []T) {
	if len(ps) == 0 {
		return
	}
	start := len(h.items)
	for i, p := range ps {
		h.items = append(h.items, Item[T]{P: p, V: vs[i]})
	}
	for i := start; i < len(h.items); i++ {
		h.siftUp(i)
	}
}

// Pop removes and returns the minimum-priority task.
func (h *DHeap[T]) Pop() (p uint64, v T, ok bool) {
	if len(h.items) == 0 {
		return InfPriority, v, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	moved := h.items[last]
	// Clear the vacated slot so payloads don't pin garbage.
	var zero Item[T]
	h.items[last] = zero
	h.items = h.items[:last]
	if last > 0 {
		// Sift the displaced tail element down from the root directly;
		// writing it to items[0] first would just be re-read by the sift.
		h.siftDownItem(0, moved)
	}
	return top.P, top.V, true
}

// PopBatch removes up to k minimum-priority tasks in priority order,
// appending them to dst, and returns the extended slice. This is the
// extractTopB / steal(k) primitive of Listings 3 and 4.
//
// It is a true batch primitive, not a loop of Pop: the heap length is
// tracked in a local across the k extractions (one slice-header store
// at the end instead of one per task) and the vacated tail is zeroed
// in one clear (a memclr) rather than one write per pop. On the
// scheduler batch paths every popped task pays one sift-down either
// way, so these fixed costs are exactly what distinguishes a batched
// delete from k scalar ones.
func (h *DHeap[T]) PopBatch(k int, dst []Item[T]) []Item[T] {
	n := len(h.items)
	if k > n {
		k = n
	}
	if k <= 0 {
		return dst
	}
	items := h.items
	for j := 0; j < k; j++ {
		dst = append(dst, items[0])
		last := n - 1 - j
		if last > 0 {
			h.siftDownItemN(0, items[last], last)
		}
	}
	clear(items[n-k:])
	h.items = items[:n-k]
	return dst
}

// Clear removes all tasks, retaining capacity.
func (h *DHeap[T]) Clear() {
	clear(h.items)
	h.items = h.items[:0]
}

// The sift loops are the hottest code in the repository — the CPU
// profile of the Multi-Queue throughput bench puts ~45% of all cycles
// in siftDown — so both hoist the slice header and arity into locals
// (one bounds-checked load per access instead of re-reading through h)
// and track the best child's priority in a register instead of
// re-loading items[best].P once per comparison.

func (h *DHeap[T]) siftUp(i int) {
	items := h.items
	it := items[i]
	if shift := h.shift; shift != 0 {
		for i > 0 {
			parent := (i - 1) >> shift
			if items[parent].P <= it.P {
				break
			}
			items[i] = items[parent]
			i = parent
		}
	} else {
		d := h.d
		for i > 0 {
			parent := (i - 1) / d
			if items[parent].P <= it.P {
				break
			}
			items[i] = items[parent]
			i = parent
		}
	}
	items[i] = it
}

func (h *DHeap[T]) siftDown(i int) {
	h.siftDownItem(i, h.items[i])
}

// siftDownItem sifts it down from position i. The slot at i is treated
// as vacant: callers either pass items[i] itself (siftDown) or an
// element displaced from elsewhere that logically replaces it (Pop).
func (h *DHeap[T]) siftDownItem(i int, it Item[T]) {
	h.siftDownItemN(i, it, len(h.items))
}

// siftDownItemN is siftDownItem over the logical prefix items[:n] —
// PopBatch shrinks the heap k times without re-slicing the backing
// header per pop, so the live length arrives as an argument.
func (h *DHeap[T]) siftDownItemN(i int, it Item[T], n int) {
	items := h.items
	d := h.d
	for {
		first := i*d + 1
		if first >= n {
			break
		}
		end := first + d
		if end > n {
			end = n
		}
		best := first
		bestP := items[first].P
		for c := first + 1; c < end; c++ {
			if p := items[c].P; p < bestP {
				best, bestP = c, p
			}
		}
		if bestP >= it.P {
			break
		}
		items[i] = items[best]
		i = best
	}
	items[i] = it
}

var _ Queue[int] = (*DHeap[int])(nil)
