package xrand

import (
	"math"
	"testing"
)

// TestZipfPMFIsADistribution checks the analytic mass function sums to
// one and the CDF table is monotone with an exact 1.0 tail.
func TestZipfPMFIsADistribution(t *testing.T) {
	for _, theta := range []float64{0, 0.5, 0.99, 1, 1.5} {
		z := NewZipf(100, theta)
		sum := 0.0
		for k := 0; k < z.N(); k++ {
			p := z.PMF(k)
			if p <= 0 {
				t.Fatalf("theta=%v: PMF(%d) = %v, want > 0", theta, k, p)
			}
			if k > 0 && z.PMF(k) > z.PMF(k-1)+1e-15 {
				t.Fatalf("theta=%v: PMF not non-increasing at %d", theta, k)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("theta=%v: PMF sums to %v", theta, sum)
		}
		if got := z.cdf[z.N()-1]; got != 1 {
			t.Fatalf("theta=%v: cdf tail = %v, want exactly 1", theta, got)
		}
	}
}

// TestZipfEmpiricalMatchesPMF is the satellite's statistical test: a
// large sample's empirical frequencies must match the analytic mass
// function to within binomial sampling noise. The sampler is exact
// inverse-CDF, so a tight per-rank z-bound holds; the seed is fixed, so
// the test is deterministic.
func TestZipfEmpiricalMatchesPMF(t *testing.T) {
	const (
		n       = 64
		samples = 2_000_000
		sigmas  = 6.0
	)
	for _, theta := range []float64{0.6, 0.99, 1.2} {
		z := NewZipf(n, theta)
		r := New(0xfeed + uint64(theta*1000))
		var counts [n]uint64
		for i := 0; i < samples; i++ {
			counts[z.Sample(r)]++
		}
		for k := 0; k < n; k++ {
			p := z.PMF(k)
			exp := p * samples
			if exp < 50 {
				continue // too rare for a z-test; covered by the total below
			}
			sd := math.Sqrt(exp * (1 - p))
			if diff := math.Abs(float64(counts[k]) - exp); diff > sigmas*sd {
				t.Errorf("theta=%v rank %d: observed %d, expected %.0f ± %.0f (%.1fσ)",
					theta, k, counts[k], exp, sd, diff/sd)
			}
		}
		var total uint64
		for _, c := range counts {
			total += c
		}
		if total != samples {
			t.Fatalf("theta=%v: lost samples: %d of %d", theta, total, samples)
		}
	}
}

// TestZipfUniformAtThetaZero checks the θ=0 degenerate case really is
// uniform (every rank within 6σ of samples/n).
func TestZipfUniformAtThetaZero(t *testing.T) {
	const n, samples = 16, 1_000_000
	z := NewZipf(n, 0)
	r := New(42)
	var counts [n]uint64
	for i := 0; i < samples; i++ {
		counts[z.Sample(r)]++
	}
	exp := float64(samples) / n
	sd := math.Sqrt(exp * (1 - 1.0/n))
	for k, c := range counts {
		if math.Abs(float64(c)-exp) > 6*sd {
			t.Errorf("rank %d: observed %d, expected %.0f ± %.0f", k, c, exp, sd)
		}
	}
}

// TestBoundedParetoRangeAndMean checks every sample lands in [L, H] and
// the empirical mean converges to the analytic Mean().
func TestBoundedParetoRangeAndMean(t *testing.T) {
	cases := []struct{ l, h, alpha float64 }{
		{1, 1000, 1.5},
		{50, 5000, 1.1},
		{10, 10, 2}, // degenerate point mass
		{1, 100, 1}, // α = 1 special-cased mean
	}
	for _, c := range cases {
		p := NewBoundedPareto(c.l, c.h, c.alpha)
		r := New(7)
		const samples = 500_000
		sum := 0.0
		for i := 0; i < samples; i++ {
			x := p.Sample(r)
			if x < c.l || x > c.h {
				t.Fatalf("[%v,%v] α=%v: sample %v out of range", c.l, c.h, c.alpha, x)
			}
			sum += x
		}
		mean := sum / samples
		want := p.Mean()
		// The sample mean of a heavy-tailed bounded variable converges
		// slowly; 5% relative tolerance at 500k samples is comfortable
		// for α >= 1 with H/L <= 100x of the mean.
		if math.Abs(mean-want) > 0.05*want {
			t.Errorf("[%v,%v] α=%v: empirical mean %.3f, analytic %.3f", c.l, c.h, c.alpha, mean, want)
		}
	}
}

// TestBoundedParetoTail checks the empirical complementary CDF at a few
// interior points against the analytic form — the tail shape is the
// whole point of using a Pareto cost model.
func TestBoundedParetoTail(t *testing.T) {
	const l, h, alpha = 1.0, 1000.0, 1.5
	p := NewBoundedPareto(l, h, alpha)
	r := New(99)
	const samples = 1_000_000
	probes := []float64{2, 10, 100}
	counts := make([]int, len(probes))
	for i := 0; i < samples; i++ {
		x := p.Sample(r)
		for j, q := range probes {
			if x > q {
				counts[j]++
			}
		}
	}
	la, ratio := math.Pow(l, alpha), math.Pow(l/h, alpha)
	for j, q := range probes {
		want := (la*math.Pow(q, -alpha) - ratio) / (1 - ratio)
		got := float64(counts[j]) / samples
		sd := math.Sqrt(want * (1 - want) / samples)
		if math.Abs(got-want) > 6*sd+1e-6 {
			t.Errorf("P(X > %v): observed %.5f, analytic %.5f (±%.5f)", q, got, want, sd)
		}
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(64, 0.99)
	r := New(1)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += z.Sample(r)
	}
	_ = sink
}

func BenchmarkBoundedParetoSample(b *testing.B) {
	p := NewBoundedPareto(50, 5000, 1.5)
	r := New(1)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.Sample(r)
	}
	_ = sink
}
