package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCoordsRoundTrip(t *testing.T) {
	g := GenerateRoadGrid(6, 8, 3)
	var buf bytes.Buffer
	if err := WriteDIMACSCoords(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2 := MustBuild(g.N, nil, nil)
	if err := ReadDIMACSCoords(&buf, g2); err != nil {
		t.Fatal(err)
	}
	for i := range g.Coords {
		// Integer micro-degree quantization loses up to CoordScale.
		if math.Abs(g.Coords[i].X-g2.Coords[i].X) > 2*CoordScale ||
			math.Abs(g.Coords[i].Y-g2.Coords[i].Y) > 2*CoordScale {
			t.Fatalf("coord %d changed: %+v vs %+v", i, g.Coords[i], g2.Coords[i])
		}
	}
}

func TestCoordsParsing(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1, 1}}, nil)
	in := `c comment
p aux sp co 2
v 1 -73990000 40750000
v 2 -74000000 40700000
`
	if err := ReadDIMACSCoords(strings.NewReader(in), g); err != nil {
		t.Fatal(err)
	}
	if g.Coords == nil || math.Abs(g.Coords[0].X+73.99) > 1e-9 {
		t.Fatalf("coords = %+v", g.Coords)
	}
}

func TestCoordsErrors(t *testing.T) {
	g := MustBuild(2, nil, nil)
	cases := map[string]string{
		"bad header":   "p aux xx co 2\nv 1 0 0\nv 2 0 0\n",
		"wrong count":  "p aux sp co 5\nv 1 0 0\nv 2 0 0\n",
		"bad vertex":   "p aux sp co 2\nv one 0 0\nv 2 0 0\n",
		"out of range": "p aux sp co 2\nv 9 0 0\nv 2 0 0\n",
		"unknown":      "p aux sp co 2\nz\n",
		"missing":      "p aux sp co 2\nv 1 0 0\n",
	}
	for name, in := range cases {
		if err := ReadDIMACSCoords(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestWriteCoordsWithoutCoords(t *testing.T) {
	g := MustBuild(2, nil, nil)
	if err := WriteDIMACSCoords(&bytes.Buffer{}, g); err == nil {
		t.Fatal("writing absent coords should fail")
	}
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p sp 3 2\na 1 2 10\na 2 3 20\n")
	f.Add("c x\np sp 1 0\n")
	f.Add("a 1 2 3\n")
	f.Add("p sp 0 0\n")
	f.Add("p sp 2 1\na 1 2 4294967295\n")
	f.Fuzz(func(t *testing.T, in string) {
		// Must never panic; errors are fine.
		g, err := ReadDIMACS(strings.NewReader(in))
		if err == nil && g != nil {
			// Returned graphs must be structurally valid.
			if g.Offsets[g.N] != int64(g.M()) {
				t.Fatalf("invalid offsets on accepted input %q", in)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	g := GenerateRoadGrid(3, 3, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err == nil && g != nil {
			for _, tgt := range g.Targets {
				if int(tgt) >= g.N {
					t.Fatalf("accepted graph with out-of-range target")
				}
			}
		}
	})
}
