package core

import (
	"fmt"
	"testing"

	"repro/internal/benchutil"
)

// Scheduler-level throughput micro-benchmarks (pop→push random walk),
// complementing the end-to-end workload benches at the repository root.

func BenchmarkThroughput_SMQHeap(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchutil.Throughput(b, NewStealingMQ[int](Config{Workers: workers}), 1<<12)
		})
	}
}

func BenchmarkThroughput_SMQSkipList(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchutil.Throughput(b, NewStealingMQSkipList[int](Config{Workers: workers}), 1<<12)
		})
	}
}

func BenchmarkThroughput_SMQHeap_NUMA(b *testing.B) {
	benchutil.Throughput(b, NewStealingMQ[int](Config{Workers: 4, NUMANodes: 2}), 1<<12)
}

func BenchmarkThroughput_SMQHeap_InsertBatch(b *testing.B) {
	benchutil.Throughput(b, NewStealingMQ[int](Config{Workers: 4, InsertBatch: 8}), 1<<12)
}
