// Command smqbench regenerates the paper's tables and figures, and
// records the repository's performance trajectory.
//
// Usage:
//
//	smqbench -list
//	smqbench -exp fig2 -scale 1 -threads 1,2,4 -reps 3
//	smqbench -exp emq -scale 1
//	smqbench -exp klsm -scale 1 -maxthreads 4
//	smqbench -exp geom -scale 2 -maxthreads 4 -format tsv
//	smqbench -exp all -format tsv > results.tsv
//	smqbench -json BENCH_PR4.json
//	smqbench -json - -benchworkers 2 -benchops 50000
//	smqbench -json - -serve -benchschedulers smq,coarse
//	smqbench -json - -desim -benchschedulers klsm,coarse -desimevents 200000
//	smqbench -exp fig2 -cpuprofile fig2.prof -memprofile fig2.mprof
//
// The -json mode runs the contended uniform-priority microbenchmark of
// internal/perfbench over the whole scheduler lineup and writes a
// schema-versioned JSON report to the given path ("-" for stdout):
// scalar throughput, batched (PushN/PopN) throughput at -benchbatch
// tasks per operation, pop-latency percentiles (p50/p99/p99.9 from a
// log-bucketed histogram), lock failures, allocs/op and GC pause
// totals per scheduler. Committed as BENCH_PR<n>.json, these reports
// form the repo's recorded perf trajectory; internal/perfbench.Validate
// gates their schema in CI.
//
// -cpuprofile and -memprofile write pprof profiles covering the run
// (any mode), so hot-path claims in optimisation PRs can be verified
// with `go tool pprof` instead of taken on faith; the heap profile is
// written at exit after a final GC.
//
// Every experiment prints the same row/series structure as the paper
// artifact it reproduces (speedups and work increases per cell); see
// DESIGN.md §4 for the experiment ↔ artifact mapping and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons. The emq experiment covers
// the engineered MultiQueue follow-up baseline (Williams et al. 2021)
// with its stickiness × buffer-size grid; the klsm experiment sweeps
// the k-LSM's relaxation bound (Wimmer et al. 2015, k = 4..4096), the
// strongest non-Multi-Queue baseline of the paper's Figure 2 lineup,
// which both experiments' schedulers also join. The geom experiment runs the
// geometric workload family — parallel k-NN graph construction and
// exact Euclidean MST over generated point sets (uniform cube, Gaussian
// clusters) — across the full scheduler lineup, one TSV row per
// scheduler × distribution; Euclidean MST results are always verified
// against the sequential O(n^2) Prim baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/desim"
	"repro/internal/harness"
	"repro/internal/perfbench"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Int("scale", 1, "graph scale factor (1 = laptop-small)")
		threads  = flag.String("threads", "1,2,4", "comma-separated thread counts for comparison sweeps")
		maxTh    = flag.Int("maxthreads", 0, "thread count for ablation grids (default: last of -threads)")
		reps     = flag.Int("reps", 1, "repetitions per measurement (fastest kept)")
		validate = flag.Bool("validate", false, "verify every run against sequential baselines")
		format   = flag.String("format", "text", "output format: text or tsv")
		seed     = flag.Uint64("seed", 1, "base RNG seed; every cell derives its own from it")

		shardSpec   = flag.String("shard", "", "run only this slice of the cell grid, as 'i/n' (cells with index %% n == i)")
		cellList    = flag.String("cells", "", "run only these comma-separated cell indices (overrides -shard)")
		listCells   = flag.Bool("listcells", false, "print the experiment's deterministic cell enumeration and exit")
		cellTimeout = flag.Duration("celltimeout", 0, "per-cell wall-clock budget (0 = none); exceeded cells are recorded as status=timeout")
		cellRetries = flag.Int("cellretries", 0, "extra attempts for a timed-out cell before recording the timeout")
		subproc     = flag.Bool("subproc", false, "re-exec this binary once per cell (hard timeout isolation: the child is killed)")
		cellPrefix  = flag.String("cellprefix", "", "command prefix for -subproc children, e.g. 'numactl --cpunodebind=0' or 'taskset -c 0-3'")
		fragOut     = flag.String("fragment", "", "write the shard's perfbench JSON fragment to this path ('-' for stdout) instead of assembling tables")
		assemble    = flag.String("assemble", "", "skip running: assemble tables from these comma-separated fragment/merged JSON files")

		jsonOut     = flag.String("json", "", "write the perf-trajectory JSON report to this path ('-' for stdout) instead of running experiments")
		serveMode   = flag.Bool("serve", false, "-json: record the open-loop serving trajectory (internal/serve) instead of the microbenchmark; cmd/smqserve exposes the full parameter set")
		desimMode   = flag.Bool("desim", false, "-json: record the discrete-event simulation trajectory (internal/desim) instead of the microbenchmark; cmd/smqsim exposes the full parameter set")
		desimEvents = flag.Int("desimevents", 0, "-desim: approximate events per cluster run (default 2000000)")
		desimModels = flag.String("desimmodels", "", "-desim: comma-separated model subset (cluster,dag; default both)")
		benchWrk    = flag.Int("benchworkers", 0, "-json: worker goroutines (default GOMAXPROCS)")
		benchOps    = flag.Int("benchops", 0, "-json: pop+push pairs per worker (default 200000)")
		benchPre    = flag.Int("benchprefill", 0, "-json: prefilled tasks (default 4096)")
		benchSch    = flag.String("benchschedulers", "", "-json: comma-separated scheduler subset (default: full lineup)")
		benchReps   = flag.Int("benchreps", 1, "-json: repetitions per scheduler (fastest kept)")
		benchBat    = flag.Int("benchbatch", 0, "-json: PushN/PopN batch size for the batched mode (default 8)")
		benchLat    = flag.Int("benchlatops", 0, "-json: individually timed pops per worker for the latency percentiles (default min(benchops, 50000))")
		cpuProf     = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf     = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		benchSeed   = flag.Uint64("benchseed", 1, "-json: RNG seed")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *jsonOut != "" {
		var schedulers []string
		for _, s := range strings.Split(*benchSch, ",") {
			if s = strings.TrimSpace(s); s != "" {
				schedulers = append(schedulers, s)
			}
		}
		if *serveMode {
			if err := runServeJSON(*jsonOut, schedulers, *benchSeed); err != nil {
				fatal(err)
			}
			return
		}
		if *desimMode {
			var models []string
			for _, m := range strings.Split(*desimModels, ",") {
				if m = strings.TrimSpace(m); m != "" {
					models = append(models, m)
				}
			}
			if err := runDesimJSON(*jsonOut, desim.BenchConfig{
				Workers:    *benchWrk,
				Schedulers: schedulers,
				Models:     models,
				Events:     *desimEvents,
				Seed:       *benchSeed,
			}); err != nil {
				fatal(err)
			}
			return
		}
		if err := runJSON(*jsonOut, perfbench.Config{
			Workers:      *benchWrk,
			Prefill:      *benchPre,
			OpsPerWorker: *benchOps,
			Seed:         *benchSeed,
			Reps:         *benchReps,
			Schedulers:   schedulers,
			BatchSize:    *benchBat,
			LatencyOps:   *benchLat,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *list || *exp == "" {
		renderExperimentList(os.Stdout)
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ths, err := parseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	cfg := harness.RunConfig{
		Scale:      *scale,
		Threads:    ths,
		MaxThreads: *maxTh,
		Reps:       *reps,
		Validate:   *validate,
		Seed:       *seed,
	}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.Registry()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fatal(fmt.Errorf("unknown experiment %q (try -list)", id))
			}
			exps = append(exps, e)
		}
	}

	if *assemble != "" {
		if err := assembleFragments(exps, cfg, strings.Split(*assemble, ","), *format); err != nil {
			fatal(err)
		}
		return
	}

	opts, shardInfo, mkExec, err := shardOptions(*shardSpec, *cellList, *cellTimeout, *cellRetries, *subproc, *cellPrefix, cfg)
	if err != nil {
		fatal(err)
	}
	shardMode := *fragOut != "" || shardInfo != nil || opts.Cells != nil ||
		opts.Timeout > 0 || mkExec != nil

	var fragReports []*perfbench.Report
	for _, e := range exps {
		p, err := e.Plan(cfg)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", e.ID, err))
		}
		if *listCells {
			printCells(p)
			continue
		}
		start := time.Now()
		if shardMode {
			if mkExec != nil {
				opts.Exec = mkExec(e.ID)
			}
			fmt.Fprintf(os.Stderr, "running %s: %d of %d cells...\n",
				e.ID, len(shard.Select(p, opts)), len(p.Cells))
			results := shard.Run(p, opts)
			summarizeStatuses(e.ID, results)
			if *fragOut != "" {
				fragReports = append(fragReports, shard.Fragment(p, results, shardInfo, "smqbench -fragment"))
			} else {
				// Full in-process coverage: assemble directly.
				tables, err := p.Assemble(results)
				if err != nil {
					fatal(fmt.Errorf("experiment %s: %w", e.ID, err))
				}
				if err := harness.WriteTables(os.Stdout, tables, *format); err != nil {
					fatal(err)
				}
			}
		} else {
			fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Paper)
			tables, err := p.Assemble(p.RunAll())
			if err != nil {
				fatal(fmt.Errorf("experiment %s: %w", e.ID, err))
			}
			if err := harness.WriteTables(os.Stdout, tables, *format); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "done %s in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if len(fragReports) > 0 {
		if err := writeFragments(*fragOut, fragReports); err != nil {
			fatal(err)
		}
	}
}

// shardOptions builds the runner options from the CLI flags, plus the
// shard metadata recorded in emitted fragments and (for -subproc) the
// per-experiment command factory. The -cells list (used by -subproc
// children and targeted re-runs) overrides -shard.
// renderExperimentList writes the -list table of registered
// experiments. A tabwriter keeps the paper-artifact column aligned —
// the fixed %-40s width it replaced overflowed on the longer follow-up
// baselines ("Williams et al. 2021 (follow-up baseline)" is 41 runes)
// and pushed their descriptions out of the column grid.
func renderExperimentList(out io.Writer) {
	fmt.Fprintln(out, "Available experiments (smqbench -exp <id>):")
	tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	for _, e := range harness.Registry() {
		fmt.Fprintf(tw, "  %s\t%s\t%s\n", e.ID, e.Paper, e.Desc)
	}
	tw.Flush()
}

func shardOptions(shardSpec, cellList string, timeout time.Duration, retries int,
	subproc bool, prefix string, cfg harness.RunConfig) (shard.Options, *perfbench.ShardInfo, func(string) func(int) *exec.Cmd, error) {
	opts := shard.Options{Timeout: timeout, Retries: retries}
	var info *perfbench.ShardInfo
	if shardSpec != "" {
		i, n, err := parseShard(shardSpec)
		if err != nil {
			return opts, nil, nil, err
		}
		opts.Shard, opts.Of = i, n
		info = &perfbench.ShardInfo{Index: i, Total: n}
	}
	if cellList != "" {
		idxs, err := parseCells(cellList)
		if err != nil {
			return opts, nil, nil, err
		}
		opts.Cells = idxs
	}
	var mkExec func(string) func(int) *exec.Cmd
	if subproc {
		var err error
		if mkExec, err = subprocessExec(prefix, cfg); err != nil {
			return opts, nil, nil, err
		}
	} else if prefix != "" {
		return opts, nil, nil, fmt.Errorf("-cellprefix requires -subproc")
	}
	return opts, info, mkExec, nil
}

// parseCells parses the comma-separated cell index list (0-based, so
// unlike parseThreads zero is valid).
func parseCells(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -cells index %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cell indices in -cells %q", s)
	}
	return out, nil
}

// subprocessExec re-execs this binary for one cell: the child runs the
// cell in-process (no -subproc recursion) and prints a one-cell
// fragment on stdout, which the parent parses. The prefix wraps the
// invocation for CPU/NUMA pinning (numactl, taskset).
func subprocessExec(prefix string, cfg harness.RunConfig) (func(expID string) func(int) *exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cannot re-exec: %w", err)
	}
	pre := strings.Fields(prefix)
	return func(expID string) func(int) *exec.Cmd {
		return func(i int) *exec.Cmd {
			ths := make([]string, len(cfg.Threads))
			for k, t := range cfg.Threads {
				ths[k] = strconv.Itoa(t)
			}
			argv := append([]string{}, pre...)
			argv = append(argv, self,
				"-exp", expID,
				"-scale", strconv.Itoa(cfg.Scale),
				"-threads", strings.Join(ths, ","),
				"-maxthreads", strconv.Itoa(cfg.MaxThreads),
				"-reps", strconv.Itoa(cfg.Reps),
				"-seed", strconv.FormatUint(cfg.Seed, 10),
				"-cells", strconv.Itoa(i),
				"-fragment", "-")
			if cfg.Validate {
				argv = append(argv, "-validate")
			}
			return exec.Command(argv[0], argv[1:]...)
		}
	}, nil
}

// printCells lists the plan's enumeration, one line per cell.
func printCells(p *harness.Plan) {
	fmt.Printf("# %s: %d cells, config %q\n", p.Experiment, len(p.Cells), p.Config.Fingerprint())
	for _, c := range p.Cells {
		fmt.Printf("%4d  %-10s t=%-3d reps=%d seed=%#016x  %s\n",
			c.Index, c.Kind, c.Threads, c.Reps, c.Seed, c.Key)
	}
}

// summarizeStatuses reports the shard's per-status cell counts; non-ok
// cells are listed individually so CI logs name the failures.
func summarizeStatuses(expID string, rs []harness.CellResult) {
	counts := map[string]int{}
	for _, r := range rs {
		counts[r.Status]++
		if r.Status != harness.CellOK {
			fmt.Fprintf(os.Stderr, "  %s cell %d (%s): %s — %s\n", expID, r.Index, r.Key, r.Status, r.Error)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d ok, %d timeout, %d error\n",
		expID, counts[harness.CellOK], counts[harness.CellTimeout], counts[harness.CellError])
}

// writeFragments writes the shard's fragment report — one experiment
// fragment per -exp entry, all sharing this run's host fingerprint.
func writeFragments(path string, reports []*perfbench.Report) error {
	out := reports[0]
	for _, r := range reports[1:] {
		out.Experiments = append(out.Experiments, r.Experiments...)
	}
	if err := perfbench.Validate(out); err != nil {
		return fmt.Errorf("generated fragment fails schema validation: %w", err)
	}
	data, err := perfbench.Marshal(out)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// assembleFragments renders experiment tables from merged (or
// single-shard, if complete) fragment files, without running anything.
func assembleFragments(exps []harness.Experiment, cfg harness.RunConfig, files []string, format string) error {
	var reports []*perfbench.Report
	for _, f := range files {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		r, err := perfbench.Parse(data)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		reports = append(reports, r)
	}
	if len(reports) == 0 {
		return fmt.Errorf("-assemble: no fragment files")
	}
	merged := reports[0]
	if len(reports) > 1 {
		var err error
		if merged, err = perfbench.Merge(reports); err != nil {
			return err
		}
	}
	for _, e := range exps {
		p, err := e.Plan(cfg)
		if err != nil {
			return err
		}
		tables, err := shard.AssembleFragment(p, merged)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		if err := harness.WriteTables(os.Stdout, tables, format); err != nil {
			return err
		}
	}
	return nil
}

// parseShard parses "i/n".
func parseShard(s string) (int, int, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -shard %q, want i/n", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q, want i/n with 0 <= i < n", s)
	}
	return i, n, nil
}

// runServeJSON records the serving trajectory at internal/serve's
// defaults — smqbench just offers the mode for symmetry with -json;
// cmd/smqserve is the full-parameter driver.
func runServeJSON(path string, schedulers []string, seed uint64) error {
	fmt.Fprintln(os.Stderr, "running open-loop serving trajectory...")
	start := time.Now()
	report, err := serve.RunBench(serve.BenchConfig{
		Schedulers:  schedulers,
		Seed:        seed,
		GeneratedBy: "smqbench -serve",
	})
	if err != nil {
		return err
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done %d schedulers in %v\n", len(report.Serve), time.Since(start).Round(time.Millisecond))
	return nil
}

// runDesimJSON records the discrete-event simulation trajectory: the
// scheduler × model grid of internal/desim with safe-lookahead windows
// derived from each scheduler's rank-error bound. RunBench validates
// the report (including the zero-violations rule for exact bounds and
// cross-scheduler checksum identity) before returning it.
func runDesimJSON(path string, cfg desim.BenchConfig) error {
	fmt.Fprintln(os.Stderr, "running discrete-event simulation trajectory...")
	start := time.Now()
	report, err := desim.RunBench(cfg)
	if err != nil {
		return err
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done %d runs in %v\n", len(report.Desim), time.Since(start).Round(time.Millisecond))
	return nil
}

// runJSON runs the perf-trajectory microbenchmark, validates the report
// against the schema, and writes it to path ("-" for stdout).
func runJSON(path string, cfg perfbench.Config) error {
	fmt.Fprintf(os.Stderr, "running perf-trajectory microbench (workers=%d)...\n", cfg.Workers)
	start := time.Now()
	report, err := perfbench.Run(cfg)
	if err != nil {
		return err
	}
	if err := perfbench.Validate(report); err != nil {
		return fmt.Errorf("generated report fails schema validation: %w", err)
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done %d schedulers in %v\n", len(report.Results), time.Since(start).Round(time.Millisecond))
	return nil
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts in %q", s)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smqbench:", err)
	os.Exit(1)
}
