package contend

import (
	"sync"
	"testing"
	"unsafe"
)

func TestLockTryLock(t *testing.T) {
	var l Lock
	if !l.TryLock() {
		t.Fatal("TryLock failed on a fresh Lock")
	}
	if l.TryLock() {
		t.Fatal("TryLock succeeded on a held Lock")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	l.Unlock()
}

func TestLockIsALocker(t *testing.T) {
	// The swap sites in the schedulers rely on Lock being usable
	// anywhere a sync.Locker is expected.
	var l Lock
	var locker sync.Locker = &l
	locker.Lock()
	locker.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of an unlocked Lock did not panic")
		}
	}()
	var l Lock
	l.Unlock()
}

// TestLockMutualExclusion hammers one lock from many goroutines and
// checks that a plain (non-atomic) counter never loses an increment —
// under -race this also verifies the happens-before story of the
// atomic-based acquire/release.
func TestLockMutualExclusion(t *testing.T) {
	const goroutines = 8
	const perG = 20000
	var l Lock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d (lost increments => broken mutual exclusion)", counter, goroutines*perG)
	}
}

// TestLockMixedTryAndBlocking interleaves TryLock spinners with blocking
// Lock callers, the exact mix the Multi-Queue hot/cold paths produce.
func TestLockMixedTryAndBlocking(t *testing.T) {
	const goroutines = 6
	const perG = 10000
	var l Lock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					for !l.TryLock() {
					}
				} else {
					l.Lock()
				}
				counter++
				l.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d", counter, goroutines*perG)
	}
}

func TestPaddedSeparation(t *testing.T) {
	// Two adjacent slice elements' Values must be at least a cache line
	// apart, whatever the slice's base alignment.
	cells := make([]Padded[uint64], 2)
	a := uintptr(unsafe.Pointer(&cells[0].Value))
	b := uintptr(unsafe.Pointer(&cells[1].Value))
	if b-a < CacheLineSize {
		t.Fatalf("adjacent Padded values only %d bytes apart, want >= %d", b-a, CacheLineSize)
	}
}

func TestLockSize(t *testing.T) {
	// The queue headers hand-pad around Lock; a size change must be
	// noticed there, so pin it.
	if sz := unsafe.Sizeof(Lock{}); sz != 4 {
		t.Fatalf("Lock size = %d, want 4 (queue-header pad arithmetic depends on it)", sz)
	}
}
