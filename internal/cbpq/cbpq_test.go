package cbpq

import (
	"cmp"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// TestSequentialExact drives a single worker through a random push/pop
// mix against a reference model: every pop must return the exact
// minimum of the live set, for both the default and a tiny chunk
// capacity (the latter forces constant splits and rebuilds).
func TestSequentialExact(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 1, ChunkCap: 4},
		{Workers: 1, ChunkCap: 8},
		{Workers: 1, DisableElimination: true},
		{Workers: 1, ChunkCap: 8, DisableElimination: true},
	} {
		cap_ := cfg.ChunkCap
		q := New[int](cfg)
		w := q.Worker(0)
		rng := rand.New(rand.NewSource(42))
		var model []uint64
		for op := 0; op < 20000; op++ {
			if len(model) == 0 || rng.Intn(3) != 0 {
				p := uint64(rng.Intn(1000))
				w.Push(p, int(p))
				model = append(model, p)
			} else {
				mi := 0
				for i, p := range model {
					if p < model[mi] {
						mi = i
					}
				}
				want := model[mi]
				model[mi] = model[len(model)-1]
				model = model[:len(model)-1]
				p, v, ok := w.Pop()
				if !ok {
					t.Fatalf("cap=%d op=%d: Pop empty with %d modeled entries", cap_, op, len(model)+1)
				}
				if p != want {
					t.Fatalf("cap=%d op=%d: Pop = %d, want exact min %d", cap_, op, p, want)
				}
				if uint64(v) != p {
					t.Fatalf("cap=%d op=%d: payload %d does not match priority %d", cap_, op, v, p)
				}
			}
		}
		for range model {
			if _, _, ok := w.Pop(); !ok {
				t.Fatalf("cap=%d: queue drained before the model", cap_)
			}
		}
		if _, _, ok := w.Pop(); ok {
			t.Fatalf("cap=%d: queue still non-empty after the model drained", cap_)
		}
	}
}

// TestBatchExact checks that PushN batches pop back in exact global
// order via PopN, across chunk boundaries and with duplicates.
func TestBatchExact(t *testing.T) {
	q := New[int](Config{Workers: 1, ChunkCap: 8})
	w := q.Worker(0)
	rng := rand.New(rand.NewSource(7))
	const n = 5000
	ps := make([]uint64, n)
	vs := make([]int, n)
	for i := range ps {
		ps[i] = uint64(rng.Intn(300))
		vs[i] = i
	}
	w.PushN(ps[:n/2], vs[:n/2])
	w.PushN(ps[n/2:], vs[n/2:])

	var got []uint64
	dst := make([]sched.Task[int], 64)
	for {
		k := w.PopN(dst)
		if k == 0 {
			break
		}
		for _, it := range dst[:k] {
			got = append(got, it.P)
		}
	}
	if len(got) != n {
		t.Fatalf("popped %d of %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("PopN out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	st := q.Stats()
	if st.Pushes != n || st.Pops != n {
		t.Fatalf("stats: pushes=%d pops=%d, want %d each", st.Pushes, st.Pops, n)
	}
}

// TestEmptyAndEdgeBatches covers the empty queue and the nil-batch
// no-ops.
func TestEmptyAndEdgeBatches(t *testing.T) {
	q := New[string](Config{Workers: 2})
	w := q.Worker(0)
	if _, _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
	w.PushN(nil, nil)
	if n := w.PopN(nil); n != 0 {
		t.Fatalf("PopN(nil) = %d", n)
	}
	st := q.Stats()
	if st.Pushes != 0 || st.Pops != 0 {
		t.Fatalf("nil batches disturbed stats: %+v", st)
	}
	w.Push(9, "x")
	if p, v, ok := q.Worker(1).Pop(); !ok || p != 9 || v != "x" {
		t.Fatalf("cross-worker pop = (%d,%q,%v)", p, v, ok)
	}
}

// TestConfigValidate pins the constructor contract.
func TestConfigValidate(t *testing.T) {
	if err := (Config{Workers: 1}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, bad := range []Config{{}, {Workers: -1}, {Workers: 1, ChunkCap: 3}, {Workers: 1, ChunkCap: 1 << 17}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", bad)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New[int](Config{})
}

// TestConcurrentExactDrain hammers the queue from several goroutines
// with a tiny chunk capacity, then verifies global conservation and
// that a final single-threaded drain comes out sorted.
func TestConcurrentExactDrain(t *testing.T) {
	workers := 4
	perWorker := 3000
	if testing.Short() {
		perWorker = 600
	}
	q := New[uint64](Config{Workers: workers, ChunkCap: 8})
	var popped sync.Map
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := q.Worker(wi)
			rng := rand.New(rand.NewSource(int64(wi)))
			count := 0
			for i := 0; i < perWorker; i++ {
				id := uint64(wi*perWorker + i)
				w.Push(uint64(rng.Intn(500)), id)
				if i%3 == 0 {
					if _, v, ok := w.Pop(); ok {
						if _, dup := popped.LoadOrStore(v, true); dup {
							t.Errorf("duplicate pop of %d", v)
						}
						count++
					}
				}
			}
			_ = count
		}(wi)
	}
	wg.Wait()

	w := q.Worker(0)
	prev := uint64(0)
	for {
		p, v, ok := w.Pop()
		if !ok {
			break
		}
		if p < prev {
			t.Fatalf("final drain out of order: %d after %d", p, prev)
		}
		prev = p
		if _, dup := popped.LoadOrStore(v, true); dup {
			t.Fatalf("duplicate pop of %d", v)
		}
	}
	total := 0
	popped.Range(func(any, any) bool { total++; return true })
	if total != workers*perWorker {
		t.Fatalf("conservation: popped %d unique of %d pushed", total, workers*perWorker)
	}
	if st := q.Stats(); st.Pushes != st.Pops {
		t.Fatalf("stats conservation: pushes=%d pops=%d", st.Pushes, st.Pops)
	}
}

// loPrefill splits the priority space for the exactness runs: prefilled
// items live in [loPrefill, 2*loPrefill), antagonist inserts strictly
// below them so every one lands in the head's range (the buf path) and
// drives a rebuild while the head still holds unclaimed prefilled slots.
const loPrefill = uint64(1) << 20

// popRec is one timestamped pop observation: the shared clock before
// the call, after the return, and the returned priority.
type popRec struct {
	start, end uint64
	p          uint64
}

// exactnessRun empirically checks that concurrent pops are exact (rank
// displacement 0) while rebuilds and eliminations race them. The queue
// is prefilled with priorities >= loPrefill whose pushes complete
// before the concurrent phase; antagonists then push below-head
// priorities — with elimination these land in the exchange array, so
// racing pops must arbitrate takes against head claims, and overflow
// forces combining rebuilds of a partially drained head — and
// interleave pops of their own (the elimination antagonist: a pop
// racing the publish window of a below-head push), while every pop is
// timestamped with a shared atomic clock. Offline it asserts: no pop
// may return a prefilled priority px while a prefilled item with
// priority < px was continuously present across the pop's whole
// interval — that is, an item popped only by an operation that began
// after this pop returned, or never popped at all. Any such pair is a
// linearizability violation (the pop did not return the minimum), and
// it is exactly the observable signature of a freeze/claim race that
// lets a popper take slot i while smaller frozen-but-unclaimed slots
// are republished — or, with elimination, of a head claim or exchange
// take that overlooked a smaller entry resident in an exchange slot.
// The interval analysis covers exchange-slot residency with no extra
// cases: a published exchange entry is linearized queue content, so an
// eliminating take is just a pop with its own interval, and an entry
// parked across another pop's whole interval is exactly the
// "continuously present" witness the suffix-min scan looks for.
func exactnessRun(t *testing.T, poppers, prefill, antagonists, perAntagonist, chunkCap int, seed int64) {
	t.Helper()
	q := New[uint64](Config{Workers: poppers + antagonists + 1, ChunkCap: chunkCap})
	w0 := q.Worker(0)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < prefill; i++ {
		w0.Push(loPrefill+uint64(rng.Intn(1<<20)), uint64(i))
	}

	var clock atomic.Uint64
	recs := make([][]popRec, poppers+antagonists)
	attempts := 2 * (prefill + antagonists*perAntagonist) / poppers
	start := make(chan struct{})
	var wg sync.WaitGroup
	for pi := 0; pi < poppers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			w := q.Worker(1 + pi)
			dst := make([]sched.Task[uint64], 4)
			rs := make([]popRec, 0, attempts)
			<-start
			for a := 0; a < attempts; a++ {
				st := clock.Add(1)
				if a%4 == 3 {
					n := w.PopN(dst)
					en := clock.Add(1)
					for _, it := range dst[:n] {
						rs = append(rs, popRec{st, en, it.P})
					}
					continue
				}
				p, _, ok := w.Pop()
				en := clock.Add(1)
				if ok {
					rs = append(rs, popRec{st, en, p})
				}
			}
			recs[pi] = rs
		}(pi)
	}
	for ai := 0; ai < antagonists; ai++ {
		wg.Add(1)
		go func(ai int) {
			defer wg.Done()
			w := q.Worker(1 + poppers + ai)
			rng := rand.New(rand.NewSource(seed ^ int64(ai+1)*0x9e3779b9))
			rs := make([]popRec, 0, perAntagonist/3+1)
			<-start
			for i := 0; i < perAntagonist; i++ {
				w.Push(uint64(rng.Intn(int(loPrefill))), uint64(1<<40+i))
				if i%3 == 2 {
					// The elimination antagonist: a pop issued right
					// behind a below-head push, racing the exchange
					// publish/take windows. Its observations join the
					// displacement analysis like any popper's.
					st := clock.Add(1)
					p, _, ok := w.Pop()
					en := clock.Add(1)
					if ok {
						rs = append(rs, popRec{st, en, p})
					}
				}
			}
			recs[poppers+ai] = rs
		}(ai)
	}
	close(start)
	wg.Wait()

	// Prefilled items never popped during the phase were continuously
	// present throughout every concurrent pop: give them an infinite
	// pop start so they constrain every pop interval.
	inf := clock.Load() + 1
	type present struct {
		start uint64 // clock at which this item's own pop began
		p     uint64
	}
	var ys []present
	var xs []popRec
	for _, rs := range recs {
		for _, r := range rs {
			if r.p >= loPrefill {
				ys = append(ys, present{r.start, r.p})
				xs = append(xs, r)
			}
		}
	}
	for {
		p, _, ok := w0.Pop()
		if !ok {
			break
		}
		if p >= loPrefill {
			ys = append(ys, present{inf, p})
		}
	}
	slices.SortFunc(ys, func(a, b present) int { return cmp.Compare(a.start, b.start) })
	sufMin := make([]uint64, len(ys)+1)
	sufMin[len(ys)] = ^uint64(0)
	for i := len(ys) - 1; i >= 0; i-- {
		sufMin[i] = min(sufMin[i+1], ys[i].p)
	}
	violations := 0
	for _, x := range xs {
		// First item whose own pop began strictly after x returned.
		idx, _ := slices.BinarySearchFunc(ys, x.end, func(y present, end uint64) int {
			return cmp.Compare(y.start, end)
		})
		for idx < len(ys) && ys[idx].start <= x.end {
			idx++
		}
		if m := sufMin[idx]; m < x.p {
			violations++
			if violations <= 5 {
				t.Errorf("displaced pop: returned %d during [%d,%d] while an item with priority %d was continuously in the queue",
					x.p, x.start, x.end, m)
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d displaced pops of %d prefilled pops — concurrent exactness (rank bound 0) violated", violations, len(xs))
	}
}

// TestConcurrentExactness runs the timestamped displacement check at a
// size the main test job can afford; the stress suite soaks the same
// checker at elevated iterations (see stress_test.go).
func TestConcurrentExactness(t *testing.T) {
	prefill, per := 6000, 3000
	if testing.Short() {
		prefill, per = 1200, 600
	}
	for _, cap_ := range []int{8, 64} {
		exactnessRun(t, 4, prefill, 2, per, cap_, int64(cap_)*31+1)
	}
}

// TestRetention verifies the queue keeps no references to popped
// payloads: chunks zero claimed slots, and recycled candidates are
// scrubbed (same discipline as the pq/klsm pool retention tests).
func TestRetention(t *testing.T) {
	q := New[*[64]byte](Config{Workers: 1, ChunkCap: 8})
	w := q.Worker(0)
	const n = 60
	released := make(chan int, n)
	for i := 0; i < n; i++ {
		payload := &[64]byte{}
		runtime.AddCleanup(payload, func(i int) { released <- i }, i)
		w.Push(uint64(i%7), payload)
	}
	for i := 0; i < n; i++ {
		if _, _, ok := w.Pop(); !ok {
			t.Fatalf("pop %d failed", i)
		}
	}
	got := 0
	for attempt := 0; attempt < 20 && got < n; attempt++ {
		runtime.GC()
		for {
			select {
			case <-released:
				got++
				continue
			default:
			}
			break
		}
	}
	if got != n {
		t.Fatalf("only %d of %d popped payloads were released — the queue retains them", got, n)
	}
	runtime.KeepAlive(q)
}
