package obim

import (
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestDefaults(t *testing.T) {
	c := Config{Workers: 1}
	c.normalize()
	if c.Delta != 10 || c.ChunkSize != 64 || c.NUMANodes != 1 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 did not panic")
		}
	}()
	New[int](Config{})
}

func TestSingleThreadedDrain(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		s := New[int](Config{Workers: 1, Delta: 3, ChunkSize: 8, Adaptive: adaptive})
		w := s.Worker(0)
		const n = 3000
		for i := 0; i < n; i++ {
			w.Push(uint64((i*13)%777), i)
		}
		seen := make([]bool, n)
		count := 0
		for {
			_, v, ok := w.Pop()
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("adaptive=%v: value %d popped twice", adaptive, v)
			}
			seen[v] = true
			count++
		}
		if count != n {
			t.Fatalf("adaptive=%v: popped %d, want %d", adaptive, count, n)
		}
	}
}

func TestBucketOrderingRespected(t *testing.T) {
	// With Delta=4 (buckets of 16) and a single worker, pops must come
	// bucket-by-bucket in ascending order once pushes stop.
	s := New[int](Config{Workers: 1, Delta: 4, ChunkSize: 4})
	w := s.Worker(0)
	const n = 600
	for i := n - 1; i >= 0; i-- {
		w.Push(uint64(i), i)
	}
	prevBucket := uint64(0)
	for i := 0; i < n; i++ {
		p, _, ok := w.Pop()
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		bucket := p >> 4
		if bucket < prevBucket {
			t.Fatalf("bucket inversion: %d after %d", bucket, prevBucket)
		}
		prevBucket = bucket
	}
}

func TestSmallDeltaExactOrder(t *testing.T) {
	// Delta such that each priority is its own bucket and chunk size 1:
	// OBIM degenerates to strict priority order for one worker. Delta=0
	// normalizes to default, so use priorities spaced 2 apart with
	// Delta=1.
	s := New[int](Config{Workers: 1, Delta: 1, ChunkSize: 1})
	w := s.Worker(0)
	for i := 50; i >= 0; i-- {
		w.Push(uint64(i*2), i)
	}
	for i := 0; i <= 50; i++ {
		p, _, ok := w.Pop()
		if !ok || p != uint64(i*2) {
			t.Fatalf("pop %d = (%d,%v), want %d", i, p, ok, i*2)
		}
	}
}

func TestNoLostTasksConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"obim", Config{Workers: 4, Delta: 6, ChunkSize: 16}},
		{"pmod", Config{Workers: 4, Delta: 6, ChunkSize: 16, Adaptive: true, AdaptInterval: 256}},
		{"obim_numa", Config{Workers: 4, Delta: 6, ChunkSize: 16, NUMANodes: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := New[int](tc.cfg)
			const perWorker = 4000
			total := 4 * perWorker
			var pending sched.Pending
			pending.Inc(int64(total))
			seen := make([]int32, total)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for wid := 0; wid < 4; wid++ {
				wg.Add(1)
				go func(wid int) {
					defer wg.Done()
					w := s.Worker(wid)
					for i := 0; i < perWorker; i++ {
						v := wid*perWorker + i
						w.Push(uint64(v%1021), v)
					}
					var b sched.Backoff
					for !pending.Done() {
						_, v, ok := w.Pop()
						if !ok {
							b.Wait()
							continue
						}
						b.Reset()
						mu.Lock()
						seen[v]++
						mu.Unlock()
						pending.Dec()
					}
				}(wid)
			}
			wg.Wait()
			for v, c := range seen {
				if c != 1 {
					t.Fatalf("task %d seen %d times", v, c)
				}
			}
			st := s.Stats()
			if st.Pushes != uint64(total) || st.Pops != uint64(total) {
				t.Fatalf("stats %+v, want %d pushes/pops", st, total)
			}
		})
	}
}

func TestPushChunkFlushOnIdle(t *testing.T) {
	// Fewer tasks than the chunk size must still be poppable.
	s := New[int](Config{Workers: 1, Delta: 4, ChunkSize: 1024})
	w := s.Worker(0)
	w.Push(7, 70)
	w.Push(9, 90)
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		_, v, ok := w.Pop()
		if !ok {
			t.Fatal("Pop failed with tasks buffered in push chunk")
		}
		got[v] = true
	}
	if !got[70] || !got[90] {
		t.Fatalf("wrong values: %v", got)
	}
}

func TestPMODAdaptsDeltaUp(t *testing.T) {
	// Scatter priorities so every bag holds a single task: PMOD must
	// merge (increase Delta).
	s := New[int](Config{Workers: 1, Delta: 1, ChunkSize: 8, Adaptive: true, AdaptInterval: 64})
	w := s.Worker(0)
	d0 := s.Delta()
	for round := 0; round < 40; round++ {
		for i := 0; i < 64; i++ {
			w.Push(uint64(i*1024), i)
		}
		for i := 0; i < 64; i++ {
			w.Pop()
		}
	}
	up, _ := s.DeltaAdjustments()
	if up == 0 || s.Delta() <= d0 {
		t.Fatalf("PMOD never merged: delta %d -> %d (ups=%d)", d0, s.Delta(), up)
	}
}

func TestPMODAdaptsDeltaDown(t *testing.T) {
	// All priorities in one giant bag: PMOD must split (decrease Delta).
	s := New[int](Config{Workers: 1, Delta: 30, ChunkSize: 2, Adaptive: true, AdaptInterval: 64})
	w := s.Worker(0)
	d0 := s.Delta()
	for round := 0; round < 40; round++ {
		for i := 0; i < 512; i++ {
			w.Push(uint64(i), i)
		}
		for i := 0; i < 512; i++ {
			w.Pop()
		}
	}
	_, down := s.DeltaAdjustments()
	if down == 0 || s.Delta() >= d0 {
		t.Fatalf("PMOD never split: delta %d -> %d (downs=%d)", d0, s.Delta(), down)
	}
}

func TestBagPruningBoundsMap(t *testing.T) {
	// Stream through many distinct priority classes, draining each
	// before moving on: without pruning the bag map grows without bound.
	s := New[int](Config{Workers: 1, Delta: 1, ChunkSize: 4, PruneBags: 16})
	w := s.Worker(0)
	const classes = 2000
	for cl := 0; cl < classes; cl++ {
		for i := 0; i < 3; i++ {
			w.Push(uint64(cl)<<8, cl*10+i)
		}
		for i := 0; i < 3; i++ {
			if _, _, ok := w.Pop(); !ok {
				t.Fatalf("class %d: lost task %d", cl, i)
			}
		}
	}
	if got := s.BagCount(); got > 64 {
		t.Fatalf("bag map grew to %d despite pruning (threshold 16)", got)
	}
	if s.PrunedBags() == 0 {
		t.Fatal("pruner never fired")
	}
}

func TestBagPruningNoLostTasksConcurrent(t *testing.T) {
	// Aggressive pruning while 4 workers push/pop across a wide, moving
	// priority range: the retire protocol must never strand a chunk.
	s := New[int](Config{Workers: 4, Delta: 1, ChunkSize: 2, PruneBags: 8})
	const perWorker = 6000
	total := 4 * perWorker
	var pending sched.Pending
	pending.Inc(int64(total))
	seen := make([]int32, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wid := 0; wid < 4; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			for i := 0; i < perWorker; i++ {
				v := wid*perWorker + i
				// Wide spread of priorities to force many bags.
				w.Push(uint64(v)<<4, v)
				if i%3 == 0 {
					if _, got, ok := w.Pop(); ok {
						mu.Lock()
						seen[got]++
						mu.Unlock()
						pending.Dec()
					}
				}
			}
			var b sched.Backoff
			for !pending.Done() {
				_, got, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				mu.Lock()
				seen[got]++
				mu.Unlock()
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("task %d seen %d times", v, c)
		}
	}
}

func TestHintRecoveryAfterRace(t *testing.T) {
	// Regression guard for the raiseHint race: tasks pushed to a low
	// bucket right as a scan raises the hint must still be found via the
	// full-scan fallback.
	s := New[int](Config{Workers: 2, Delta: 2, ChunkSize: 2})
	w0, w1 := s.Worker(0), s.Worker(1)
	for i := 0; i < 100; i++ {
		w0.Push(uint64(1000+i), i)
	}
	// Drain a bit to raise the hint.
	for i := 0; i < 50; i++ {
		w0.Pop()
	}
	// Push low-priority-bucket tasks from the other worker.
	for i := 0; i < 10; i++ {
		w1.Push(uint64(i), 1000+i)
	}
	count := 0
	for {
		_, _, ok0 := w0.Pop()
		_, _, ok1 := w1.Pop()
		if ok0 {
			count++
		}
		if ok1 {
			count++
		}
		if !ok0 && !ok1 {
			break
		}
	}
	if count != 60 {
		t.Fatalf("drained %d, want 60", count)
	}
}
