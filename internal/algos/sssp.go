package algos

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/pq"
	"repro/internal/sched"
)

// Unreachable is the distance reported for vertices not reachable from
// the source.
const Unreachable = pq.InfPriority

// SSSP computes single-source shortest paths over a relaxed scheduler
// (the paper's primary benchmark). Tasks are (tentative distance, vertex)
// pairs; a popped task is stale when the vertex already has a smaller
// distance — the classic wasted-work mode of relaxed priority scheduling.
func SSSP(g *graph.CSR, src uint32, s sched.Scheduler[uint32]) ([]uint64, Result) {
	return shortestPaths(g, src, s, false)
}

// BFS computes hop distances by running the same driver with unit edge
// weights (the paper's BFS benchmark: "the weight of each edge is 1").
func BFS(g *graph.CSR, src uint32, s sched.Scheduler[uint32]) ([]uint64, Result) {
	return shortestPaths(g, src, s, true)
}

func shortestPaths(g *graph.CSR, src uint32, s sched.Scheduler[uint32], unitWeights bool) ([]uint64, Result) {
	dist := make([]atomic.Uint64, g.N)
	for i := range dist {
		dist[i].Store(Unreachable)
	}
	dist[src].Store(0)

	var pending sched.Pending
	pending.Inc(1)
	s.Worker(0).Push(0, src)

	tasks, wasted, elapsed := drive(s, &pending,
		func(_ int, out *taskSink[uint32], p uint64, u uint32) bool {
			du := dist[u].Load()
			if p > du {
				return true // stale: u was improved after this push
			}
			ts, ws := g.Neighbors(u)
			for i, v := range ts {
				wt := uint64(ws[i])
				if unitWeights {
					wt = 1
				}
				nd := du + wt
				if relaxMin(&dist[v], nd) {
					// All relaxations of this expansion leave as one batch;
					// the driver owns the (delta-batched) Pending account.
					out.Push(nd, v)
				}
			}
			return false
		})

	out := make([]uint64, g.N)
	for i := range out {
		out[i] = dist[i].Load()
	}
	return out, Result{Tasks: tasks, Wasted: wasted, Duration: elapsed, Sched: s.Stats()}
}

// relaxMin lowers *d to nd if nd improves it, returning whether it did.
func relaxMin(d *atomic.Uint64, nd uint64) bool {
	for {
		old := d.Load()
		if nd >= old {
			return false
		}
		if d.CompareAndSwap(old, nd) {
			return true
		}
	}
}
