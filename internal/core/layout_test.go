package core

import (
	"testing"
	"unsafe"
)

// TestHeapQueueLayout checks the two-line split of heapQueue: the
// thief-shared words (buf, state) must start a fresh cache line so steal
// CAS traffic never invalidates the owner's heap-pointer line, and the
// whole header must round to a line multiple so adjacent allocations
// cannot bleed in.
func TestHeapQueueLayout(t *testing.T) {
	var q heapQueue[int]
	if off := unsafe.Offsetof(q.buf); off%64 != 0 {
		t.Fatalf("heapQueue.buf at offset %d, want a 64-byte boundary", off)
	}
	if sz := unsafe.Sizeof(q); sz%64 != 0 {
		t.Fatalf("heapQueue size %d is not a multiple of 64; fix the pads", sz)
	}
}

// TestWorkerPadding checks that adjacent workers in the contiguous
// workers slice cannot share a cache line through their hot mutable
// fields (stolenIdx and the buffer headers).
func TestWorkerPadding(t *testing.T) {
	ws := make([]smqWorker[int], 2)
	a := uintptr(unsafe.Pointer(&ws[0].stolenIdx))
	b := uintptr(unsafe.Pointer(&ws[1].stolenIdx))
	if b-a < 64 {
		t.Fatalf("adjacent workers' hot fields only %d bytes apart, want >= 64", b-a)
	}
}
