package perfbench

// BenchmarkBatch_* make the amortization curve of the bulk operations
// visible in `go test -bench` output: for every scheduler in the
// lineup, stationary pop→push pairs are moved either through the
// scalar Push/Pop or through PushN/PopN at batch sizes 1, 8 and 64.
// ns/op is per TASK, so the scalar row is the baseline and the batched
// rows show how much of the fixed per-operation cost (sampling, lock
// round trips, counter traffic) each batch size amortizes away; b1
// exposes the batch API's overhead when it carries a single task.
//
// The loops are single-goroutine on purpose: contention-free runs
// measure exactly the fixed costs the bulk paths exist to amortize,
// and stay stable enough for curve comparisons (the contended picture
// is what `smqbench -json` records).

import (
	"fmt"
	"testing"

	"repro/internal/sched"
	"repro/internal/xrand"
)

const benchPrefill = 4096

func benchScheduler(b *testing.B, name string) sched.Scheduler[int] {
	b.Helper()
	s, err := build(name, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(0xa5a5)
	w := s.Worker(0)
	for i := 0; i < benchPrefill; i++ {
		w.Push(rng.Uint64()>>(64-prioBits), i)
	}
	return s
}

func BenchmarkBatch_Scalar(b *testing.B) {
	for _, name := range Lineup() {
		b.Run(name, func(b *testing.B) {
			s := benchScheduler(b, name)
			w := s.Worker(0)
			rng := xrand.New(7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, v, ok := w.Pop()
				if !ok {
					w.Push(rng.Uint64()>>(64-prioBits), i)
					continue
				}
				w.Push(rng.Uint64()>>(64-prioBits), v)
			}
		})
	}
}

func BenchmarkBatch_Batched(b *testing.B) {
	for _, name := range Lineup() {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/b%d", name, batch), func(b *testing.B) {
				s := benchScheduler(b, name)
				w := s.Worker(0)
				rng := xrand.New(7)
				buf := make([]sched.Task[int], batch)
				ps := make([]uint64, 0, batch)
				vs := make([]int, 0, batch)
				b.ReportAllocs()
				b.ResetTimer()
				for done := 0; done < b.N; {
					k := w.PopN(buf)
					if k == 0 {
						k = batch
						ps, vs = ps[:0], vs[:0]
						for i := 0; i < k; i++ {
							ps = append(ps, rng.Uint64()>>(64-prioBits))
							vs = append(vs, done+i)
						}
						w.PushN(ps, vs)
						done += k
						continue
					}
					ps, vs = ps[:0], vs[:0]
					for i := 0; i < k; i++ {
						ps = append(ps, rng.Uint64()>>(64-prioBits))
						vs = append(vs, buf[i].V)
					}
					w.PushN(ps, vs)
					done += k
				}
			})
		}
	}
}
