// Command smqserve runs the open-loop priority-task service of
// internal/serve: a fixed-rate stream of Zipf-skewed tenant traffic
// with bounded-Pareto service costs, pushed through a scheduler's
// admission control and elastic worker pool until the stream closes
// and the service quiesces.
//
// Usage:
//
//	smqserve -schedulers smq -rate 300000 -tasks 1200000 -tenants 4
//	smqserve -schedulers coarse,mq,emq,smq,klsm -json BENCH_PR6.json
//	smqserve -rate 800000 -tasks 400000 -policy shed -high 4096 -low 1024
//
// Each run prints a human summary — completions, sheds, backpressure
// stalls, elastic-pool activity, idle-service CPU and per-tenant
// p50/p99/p99.9 sojourn latency (scheduled arrival to completion) —
// and -json additionally writes the schema-versioned perfbench report
// (serve section) that CI validates with cmd/benchcheck.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/perfbench"
	"repro/internal/serve"
)

func main() {
	var (
		schedulers = flag.String("schedulers", "smq", "comma-separated scheduler lineup subset, or 'all'")
		rate       = flag.Float64("rate", 300000, "offered arrival rate, tasks/sec")
		tasks      = flag.Int("tasks", 1200000, "total offered tasks")
		tenants    = flag.Int("tenants", 4, "tenant traffic classes")
		skew       = flag.Float64("skew", 0.99, "Zipf skew across tenants (0 = uniform)")
		burst      = flag.Int("burst", 1, "arrivals per burst (1 = smooth)")
		workers    = flag.Int("workers", 4, "scheduler worker slots (ingest worker included)")
		minWorkers = flag.Int("minworkers", 1, "elastic pool floor")
		high       = flag.Int64("high", 0, "admission high watermark on pending tasks (0 = default 65536)")
		low        = flag.Int64("low", 0, "admission low watermark (0 = high/2)")
		policy     = flag.String("policy", "stall", "admission policy above the high watermark: stall or shed")
		costMin    = flag.Float64("costmin", 0, "bounded-Pareto service cost minimum, spin units (0 = default 50)")
		costMax    = flag.Float64("costmax", 0, "bounded-Pareto service cost maximum (0 = default 2000)")
		costAlpha  = flag.Float64("costalpha", 0, "bounded-Pareto tail exponent (0 = default 1.1)")
		idleWin    = flag.Duration("idlewindow", 250*time.Millisecond, "idle-CPU measurement window before load (0 = skip)")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		jsonOut    = flag.String("json", "", "also write the schema-versioned serve trajectory report to this path ('-' for stdout)")
	)
	flag.Parse()

	var names []string
	if *schedulers == "all" {
		names = serve.Lineup()
	} else {
		for _, s := range strings.Split(*schedulers, ",") {
			if s = strings.TrimSpace(s); s != "" {
				names = append(names, s)
			}
		}
	}
	var pol serve.Policy
	switch *policy {
	case "stall":
		pol = serve.PolicyStall
	case "shed":
		pol = serve.PolicyShed
	default:
		fatal(fmt.Errorf("unknown -policy %q (stall or shed)", *policy))
	}

	cfg := serve.BenchConfig{
		Schedulers: names,
		Rate:       *rate,
		Tasks:      *tasks,
		Tenants:    *tenants,
		Skew:       *skew,
		Burst:      *burst,
		CostMin:    *costMin,
		CostMax:    *costMax,
		CostAlpha:  *costAlpha,
		Workers:    *workers,
		MinWorkers: *minWorkers,
		HighWater:  *high,
		LowWater:   *low,
		Policy:     pol,
		IdleWindow: *idleWin,
		Seed:       *seed,
		GeneratedBy: fmt.Sprintf("smqserve -rate %g -tasks %d -tenants %d -skew %g -workers %d -policy %s",
			*rate, *tasks, *tenants, *skew, *workers, *policy),
	}
	start := time.Now()
	report, err := serve.RunBench(cfg)
	if err != nil {
		fatal(err)
	}
	for i := range report.Serve {
		printRun(&report.Serve[i])
	}
	fmt.Fprintf(os.Stderr, "done %d schedulers in %v\n", len(report.Serve), time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		data, err := perfbench.Marshal(report)
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	}
}

func printRun(sr *perfbench.ServeResult) {
	fmt.Printf("%-8s  offered %.0f/s  served %.0f/s  completed %d  shed %d  stalls %d (%.1fms)  parks %d  meanActive %.2f/%d",
		sr.Scheduler, sr.OfferedRatePerSec, sr.ThroughputTasksPerSec,
		sr.Completed, sr.Shed, sr.Stalls, float64(sr.StallNs)/1e6,
		sr.Parks, sr.MeanActiveWorkers, sr.Workers)
	if sr.IdleCPUFrac >= 0 {
		fmt.Printf("  idleCPU %.1f%%", sr.IdleCPUFrac*100)
	}
	fmt.Println()
	for _, ts := range sr.PerTenant {
		fmt.Printf("  tenant %d: completed %-8d shed %-6d p50 %s  p99 %s  p99.9 %s\n",
			ts.Tenant, ts.Completed, ts.Shed,
			ns(ts.P50Ns), ns(ts.P99Ns), ns(ts.P999Ns))
	}
}

func ns(v float64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smqserve:", err)
	os.Exit(1)
}
