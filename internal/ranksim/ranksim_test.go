package ranksim

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestFenwickBasics(t *testing.T) {
	f := NewFenwick(10)
	f.Add(3, 1)
	f.Add(7, 1)
	if f.PrefixSum(2) != 0 || f.PrefixSum(3) != 1 || f.PrefixSum(9) != 2 {
		t.Fatalf("prefix sums wrong: %d %d %d", f.PrefixSum(2), f.PrefixSum(3), f.PrefixSum(9))
	}
	if f.RankOf(7) != 1 || f.RankOf(8) != 2 || f.RankOf(0) != 0 {
		t.Fatal("RankOf wrong")
	}
	f.Add(3, -1)
	if f.RankOf(8) != 1 {
		t.Fatal("removal not reflected")
	}
}

func TestFenwickAgainstNaive(t *testing.T) {
	f := func(ops []int16) bool {
		const n = 256
		fw := NewFenwick(n)
		naive := make([]int, n)
		for _, op := range ops {
			i := int(uint16(op)) % n
			if op%2 == 0 {
				fw.Add(i, 1)
				naive[i]++
			} else {
				sum := 0
				for j := 0; j <= i; j++ {
					sum += naive[j]
				}
				if fw.PrefixSum(i) != sum {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPiUniform(t *testing.T) {
	pi := Pi(8, 0)
	for _, p := range pi {
		if p != 0.125 {
			t.Fatalf("uniform pi wrong: %v", pi)
		}
	}
	if err := ValidatePi(pi, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPiGammaBand(t *testing.T) {
	for _, gamma := range []float64{0.1, 0.25, 0.5} {
		for _, n := range []int{2, 7, 16, 33} {
			pi := Pi(n, gamma)
			if err := ValidatePi(pi, gamma); err != nil {
				t.Errorf("n=%d gamma=%v: %v", n, gamma, err)
			}
		}
	}
}

func TestPiPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Pi(0, 0) },
		func() { Pi(4, 0.7) },
		func() { Pi(4, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSampleCumDistribution(t *testing.T) {
	pi := []float64{0.5, 0.25, 0.25}
	cum := cumulative(pi)
	rng := xrand.New(5)
	counts := make([]int, 3)
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[sampleCum(cum, rng)]++
	}
	for i, p := range pi {
		got := float64(counts[i]) / draws
		if got < p-0.02 || got > p+0.02 {
			t.Errorf("bin %d frequency %v, want %v", i, got, p)
		}
	}
}

func TestDiscreteRemovesInOrderPerQueue(t *testing.T) {
	// Sanity: with 1 queue and no stealing the process is an exact
	// queue, so every removal has rank 0.
	res := RunDiscrete(DiscreteConfig{Queues: 1, Elements: 2000, Steps: 500, StealProb: 0, Batch: 1, Seed: 2})
	if res.MeanRemovedRank != 0 || res.MaxRemovedRank != 0 {
		t.Fatalf("single queue should be exact: %+v", res)
	}
}

func TestDiscreteRankScalesWithQueues(t *testing.T) {
	// Theorem 1: expected rank grows with n (O(n) for constant p_steal).
	mean := func(n int) float64 {
		res := RunDiscrete(DiscreteConfig{
			Queues: n, Elements: 200000, Steps: 40000, StealProb: 0.5, Batch: 1, Seed: 3,
		})
		return res.MeanRemovedRank
	}
	m8, m64 := mean(8), mean(64)
	if m64 < 3*m8 {
		t.Fatalf("rank should grow with queues: n=8 → %.1f, n=64 → %.1f", m8, m64)
	}
}

func TestDiscreteMoreStealingImprovesRank(t *testing.T) {
	mean := func(p float64) float64 {
		res := RunDiscrete(DiscreteConfig{
			Queues: 16, Elements: 200000, Steps: 40000, StealProb: p, Batch: 1, Seed: 4,
		})
		return res.MeanRemovedRank
	}
	low, high := mean(1.0/32), mean(0.5)
	if high >= low {
		t.Fatalf("more stealing should reduce rank: p=1/32 → %.1f, p=1/2 → %.1f", low, high)
	}
}

func TestDiscreteBatchingCostsRank(t *testing.T) {
	mean := func(b int) float64 {
		res := RunDiscrete(DiscreteConfig{
			Queues: 16, Elements: 400000, Steps: 40000 / b, StealProb: 0.25, Batch: b, Seed: 5,
		})
		return res.MeanRemovedRank
	}
	b1, b16 := mean(1), mean(16)
	if b16 < 2*b1 {
		t.Fatalf("batching should cost rank: B=1 → %.1f, B=16 → %.1f", b1, b16)
	}
}

func TestDiscreteGammaWithinTheorem(t *testing.T) {
	// With psteal large and gamma small per the theorem's condition, the
	// mean rank should stay within a constant factor of the bound.
	n := 16
	psteal := 0.5
	gamma := psteal / (4 * float64(n)) // satisfies γ(1/p−1) ≤ 1/(2n)
	res := RunDiscrete(DiscreteConfig{
		Queues: n, Elements: 200000, Steps: 40000, StealProb: psteal, Batch: 1, Gamma: gamma, Seed: 6,
	})
	bound := TheoremBound(n, 1, psteal, gamma)
	if res.MeanRemovedRank > bound {
		t.Fatalf("mean rank %.1f exceeds theorem bound %.1f", res.MeanRemovedRank, bound)
	}
	if res.MeanRemovedRank == 0 {
		t.Fatal("suspiciously exact process")
	}
}

func TestDiscreteSamplesRecorded(t *testing.T) {
	res := RunDiscrete(DiscreteConfig{Queues: 4, Elements: 20000, Steps: 4000, StealProb: 0.25, Seed: 7})
	if len(res.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	for _, s := range res.Samples {
		if s.AvgTopRank < 0 || s.MaxTopRank < 0 {
			t.Fatalf("negative rank in sample %+v", s)
		}
		if float64(s.MaxTopRank) < s.AvgTopRank-1 {
			t.Fatalf("max < avg in sample %+v", s)
		}
	}
}

func TestContinuousSMQStationary(t *testing.T) {
	res := RunContinuousSMQ(ContinuousConfig{Bins: 16, Steps: 60000, StealProb: 0.5, Seed: 8})
	if res.MeanTopAvg <= 0 {
		t.Fatalf("mean top rank %.2f should be positive", res.MeanTopAvg)
	}
	if res.MeanTopMax < res.MeanTopAvg {
		t.Fatalf("max %.1f < avg %.1f", res.MeanTopMax, res.MeanTopAvg)
	}
	// Stationarity: the second half should not blow up; compare first vs
	// last sample loosely.
	first := res.Samples[len(res.Samples)/2]
	last := res.Samples[len(res.Samples)-1]
	if float64(last.MaxTopRank) > 50*float64(first.MaxTopRank+10) {
		t.Fatalf("rank diverging: %+v -> %+v", first, last)
	}
}

func TestContinuousSMQTracksOnePlusBeta(t *testing.T) {
	// The proof couples SMQ with β = p_steal/(2(1+γ)); the SMQ process
	// should have rank statistics within a small factor of that (1+β)
	// process (it is stochastically dominated by it in the proof).
	psteal := 0.5
	smq := RunContinuousSMQ(ContinuousConfig{Bins: 16, Steps: 80000, StealProb: psteal, Seed: 9})
	beta := RunOnePlusBeta(ContinuousConfig{Bins: 16, Steps: 80000, Beta: psteal / 2, Seed: 9})
	if smq.MeanTopAvg > 4*beta.MeanTopAvg+10 {
		t.Fatalf("SMQ (%.1f) should not be far above its (1+β) coupling (%.1f)",
			smq.MeanTopAvg, beta.MeanTopAvg)
	}
}

func TestOnePlusBetaImprovesWithBeta(t *testing.T) {
	weak := RunOnePlusBeta(ContinuousConfig{Bins: 32, Steps: 60000, Beta: 0.1, Seed: 10})
	strong := RunOnePlusBeta(ContinuousConfig{Bins: 32, Steps: 60000, Beta: 0.9, Seed: 10})
	if strong.MeanTopAvg >= weak.MeanTopAvg {
		t.Fatalf("larger beta should improve rank: β=0.1 → %.1f, β=0.9 → %.1f",
			weak.MeanTopAvg, strong.MeanTopAvg)
	}
}

func TestTheoremBoundShape(t *testing.T) {
	// The bound must grow with n and B and shrink with p_steal.
	if TheoremBound(32, 1, 0.5, 0) <= TheoremBound(16, 1, 0.5, 0) {
		t.Error("bound not increasing in n")
	}
	if TheoremBound(16, 4, 0.5, 0) <= TheoremBound(16, 1, 0.5, 0) {
		t.Error("bound not increasing in B")
	}
	if TheoremBound(16, 1, 0.125, 0) <= TheoremBound(16, 1, 0.5, 0) {
		t.Error("bound not decreasing in p_steal")
	}
}

func BenchmarkDiscreteStep(b *testing.B) {
	cfg := DiscreteConfig{Queues: 64, Elements: 1 << 20, Steps: b.N, StealProb: 0.25, Batch: 4, Seed: 1}
	b.ResetTimer()
	RunDiscrete(cfg)
}

func BenchmarkContinuousStep(b *testing.B) {
	cfg := ContinuousConfig{Bins: 64, Steps: b.N, StealProb: 0.25, Batch: 4, Seed: 1}
	b.ResetTimer()
	RunContinuousSMQ(cfg)
}
