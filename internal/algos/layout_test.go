package algos

import (
	"testing"
	"unsafe"

	"repro/internal/contend"
)

// TestWorkerTallyPadding pins the padded tally layout: tallies live in
// a contiguous slice, and the drive loop increments them on every popped
// batch, so adjacent workers' counters must never cohabit a cache line.
// The pad is derived from contend.Padded rather than hand-coded bytes —
// this test guards the derivation, not a magic number: growing the
// counter block can never silently shrink the separation again.
func TestWorkerTallyPadding(t *testing.T) {
	if got, want := unsafe.Sizeof(workerTally{}), unsafe.Sizeof(tally{})+contend.CacheLineSize; got != want {
		t.Fatalf("workerTally size %d, want counters+pad = %d", got, want)
	}
	ts := make([]workerTally, 2)
	a := uintptr(unsafe.Pointer(&ts[0].Value.tasks))
	b := uintptr(unsafe.Pointer(&ts[1].Value.tasks))
	if b-a < contend.CacheLineSize {
		t.Fatalf("adjacent tallies' hot fields only %d bytes apart, want >= %d", b-a, contend.CacheLineSize)
	}
}
