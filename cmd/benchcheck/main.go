// Command benchcheck parses, schema-validates, and merges
// perf-trajectory JSON files (the BENCH_PR<n>.json artifacts written by
// `smqbench -json` and the shard fragments written by
// `smqbench -fragment`).
//
// Usage:
//
//	benchcheck [BENCH_PR5.json ...]
//	benchcheck merge -o merged.json frag0.json frag1.json [...]
//	benchcheck diff [-threshold 0.25] [-flagged] [-fail] old.json new.json
//
// With no arguments, benchcheck validates every BENCH_*.json in the
// current directory — the committed trajectory history — and fails if
// the glob matches nothing.
//
// `smqbench -json` already validates the report it is about to write;
// benchcheck closes the remaining gap by re-reading the bytes actually
// on disk, so CI fails if the serialized artifact stops parsing or
// drifts from the schema (including the committed trajectory history).
// Exit status is non-zero on the first invalid file.
//
// The merge subcommand combines shard fragments from parallel runs
// (different processes, machines, or CI matrix jobs) into one
// self-validating artifact via perfbench.Merge: experiment grids must
// end up complete and non-overlapping, and the output is independent of
// the input file order. Feed the merged file back to
// `smqbench -assemble` to render the tables.
//
// The diff subcommand compares two trajectory artifacts scheduler by
// scheduler (scalar and batched throughput, pop p99 latency, serve
// throughput, desim event rate) and marks relative changes beyond the
// threshold — "!" for any flagged change, "!!" for changes in the
// harmful direction. It is informational by default (exit 0 even with
// regressions: benchmark numbers from different machines are not a
// pass/fail gate); -fail turns harmful-direction flags into a nonzero
// exit for same-machine gating.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/perfbench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	paths := os.Args[1:]
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fail("BENCH_*.json", err)
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "benchcheck: no files given and no BENCH_*.json in the current directory")
			fmt.Fprintln(os.Stderr, "usage: benchcheck [trajectory.json ...] | benchcheck merge -o out.json frag.json ... | benchcheck diff old.json new.json")
			os.Exit(2)
		}
	}
	for _, path := range paths {
		r := load(path)
		fmt.Printf("%s: ok (schema %d, %d bench results, %d serve runs, %d desim runs, %d experiment fragments)\n",
			path, r.SchemaVersion, len(r.Results), len(r.Serve), len(r.Desim), len(r.Experiments))
	}
}

// runMerge implements `benchcheck merge -o out.json frag.json ...`.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "-", "output path for the merged report ('-' for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck merge [-o out.json] frag0.json frag1.json [...]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	reports := make([]*perfbench.Report, 0, fs.NArg())
	for _, path := range fs.Args() {
		reports = append(reports, load(path))
	}
	merged, err := perfbench.Merge(reports)
	if err != nil {
		fail("merge", err)
	}
	data, err := perfbench.Marshal(merged)
	if err != nil {
		fail("merge", err)
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fail("stdout", err)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(*out, err)
	}
	fmt.Fprintf(os.Stderr, "merged %d reports: %d experiment fragments, %d bench results, %d serve runs\n",
		len(reports), len(merged.Experiments), len(merged.Results), len(merged.Serve))
}

// runDiff implements `benchcheck diff [flags] old.json new.json`.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0, "relative change that flags an entry (0 = default 0.25)")
	flagged := fs.Bool("flagged", false, "print only flagged entries")
	failOn := fs.Bool("fail", false, "exit nonzero if any flagged change points the harmful way")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck diff [-threshold 0.25] [-flagged] [-fail] old.json new.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	d := perfbench.Diff(load(oldPath), load(newPath), *threshold)
	fmt.Printf("diff %s -> %s (threshold %.0f%%)\n", oldPath, newPath, 100*d.Threshold)
	fmt.Print(d.Format(*flagged))
	if reg := d.Regressions(); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d flagged regression(s) out of %d compared entries\n",
			len(reg), len(d.Entries))
		if *failOn {
			os.Exit(1)
		}
	}
}

// load reads, parses and schema-validates one report, exiting on error.
func load(path string) *perfbench.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(path, err)
	}
	r, err := perfbench.Parse(data)
	if err != nil {
		fail(path, err)
	}
	if err := perfbench.Validate(r); err != nil {
		fail(path, err)
	}
	return r
}

func fail(path string, err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
	os.Exit(1)
}
