package klsm

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/coarse"
	"repro/internal/pq"
	"repro/internal/sched"
)

// TestConfigDefaults pins the zero-value and sentinel handling of the
// Relaxation knob.
func TestConfigDefaults(t *testing.T) {
	c := Config{Workers: 2}
	c.normalize()
	if c.Relaxation != DefaultRelaxation {
		t.Fatalf("zero Relaxation normalized to %d, want %d", c.Relaxation, DefaultRelaxation)
	}
	c = Config{Workers: 2, Relaxation: Strict}
	c.normalize()
	if c.Relaxation != 0 {
		t.Fatalf("Strict normalized to %d, want 0", c.Relaxation)
	}
	c = Config{Workers: 2, Relaxation: 64}
	c.normalize()
	if c.Relaxation != 64 {
		t.Fatalf("explicit Relaxation mangled to %d", c.Relaxation)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers=0 accepted")
		}
	}()
	New[int](Config{})
}

func TestWorkerIndexOutOfRangePanics(t *testing.T) {
	s := New[int](Config{Workers: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range worker index accepted")
		}
	}()
	s.Worker(2)
}

// TestEmptyPops: pops on an empty k-LSM fail cleanly and are accounted,
// in both the relaxed and the strict configuration.
func TestEmptyPops(t *testing.T) {
	for _, k := range []int{Strict, 4, DefaultRelaxation} {
		s := New[int](Config{Workers: 2, Relaxation: k})
		w := s.Worker(0)
		if _, _, ok := w.Pop(); ok {
			t.Fatalf("k=%d: Pop on empty succeeded", k)
		}
		w.Push(5, 50)
		if p, v, ok := w.Pop(); !ok || p != 5 || v != 50 {
			t.Fatalf("k=%d: Pop = (%d,%d,%v), want (5,50,true)", k, p, v, ok)
		}
		if _, _, ok := w.Pop(); ok {
			t.Fatalf("k=%d: Pop after drain succeeded", k)
		}
		st := s.Stats()
		if st.Pushes != 1 || st.Pops != 1 || st.EmptyPops != 2 {
			t.Fatalf("k=%d: stats %+v, want 1 push / 1 pop / 2 empty", k, st)
		}
	}
}

// TestSingleWorkerSortedDrain: one worker with k >= n never spills, so
// the whole run exercises the local LSM alone and must drain in exact
// priority order (a single-owner LSM is an exact priority queue).
func TestSingleWorkerSortedDrain(t *testing.T) {
	const n = 5000
	s := New[int](Config{Workers: 1, Relaxation: n + 1})
	w := s.Worker(0)
	rng := rand.New(rand.NewSource(1))
	want := make([]uint64, n)
	for i := range want {
		p := uint64(rng.Intn(100000))
		want[i] = p
		w.Push(p, i)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if st := s.Stats(); st.LockFails != 0 {
		t.Fatalf("un-spilled local run took the global lock: %+v", st)
	}
	for i := 0; i < n; i++ {
		p, _, ok := w.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if p != want[i] {
			t.Fatalf("pop %d returned priority %d, want %d", i, p, want[i])
		}
	}
	if _, _, ok := w.Pop(); ok {
		t.Fatal("drained queue still pops")
	}
}

// TestSingleWorkerSpillsSorted: a single worker with a tiny k spills
// almost everything through the global LSM; with only one worker there
// is nowhere for better tasks to hide, so the drain must still be
// exactly sorted.
func TestSingleWorkerSpillsSorted(t *testing.T) {
	const n = 3000
	s := New[int](Config{Workers: 1, Relaxation: 4})
	w := s.Worker(0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		w.Push(uint64(rng.Intn(5000)), i)
	}
	last := uint64(0)
	for i := 0; i < n; i++ {
		p, _, ok := w.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if p < last {
			t.Fatalf("pop %d inverted: %d after %d (single worker must be exact)", i, p, last)
		}
		last = p
	}
	if st := s.Stats(); st.Pops != n || st.Pushes != n {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestStrictMatchesCoarseBaseline: with Relaxation=Strict the k-LSM
// must behave exactly like the coarse-locked global heap — same pop
// sequence for the same pushes (distinct priorities make the order
// unambiguous).
func TestStrictMatchesCoarseBaseline(t *testing.T) {
	const n = 2000
	k := New[int](Config{Workers: 2, Relaxation: Strict})
	c := coarse.New[int](coarse.Config{Workers: 2})
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(n)
	kw := []sched.Worker[int]{k.Worker(0), k.Worker(1)}
	cw := []sched.Worker[int]{c.Worker(0), c.Worker(1)}
	for i, p := range perm {
		kw[i%2].Push(uint64(p), p)
		cw[i%2].Push(uint64(p), p)
	}
	// Interleave pops across both handles; every pop must agree.
	for i := 0; i < n; i++ {
		kp, kv, kok := kw[i%2].Pop()
		cp, cv, cok := cw[i%2].Pop()
		if !kok || !cok {
			t.Fatalf("pop %d: klsm ok=%v coarse ok=%v", i, kok, cok)
		}
		if kp != cp || kv != cv {
			t.Fatalf("pop %d: klsm (%d,%d) != coarse (%d,%d)", i, kp, kv, cp, cv)
		}
		if kp != uint64(i) {
			t.Fatalf("pop %d: strict k-LSM returned priority %d, want %d", i, kp, i)
		}
	}
}

// TestStrictCrossWorkerVisibility: in strict mode nothing is buffered
// locally, so a task pushed by one worker is immediately poppable by
// another.
func TestStrictCrossWorkerVisibility(t *testing.T) {
	s := New[string](Config{Workers: 2, Relaxation: Strict})
	s.Worker(0).Push(7, "x")
	if p, v, ok := s.Worker(1).Pop(); !ok || p != 7 || v != "x" {
		t.Fatalf("Pop = (%d,%q,%v), want (7,x,true)", p, v, ok)
	}
}

// TestOwnerRecoversBufferedTask: a relaxed worker's buffered task is
// invisible to others but must always be recoverable by its owner.
func TestOwnerRecoversBufferedTask(t *testing.T) {
	s := New[int](Config{Workers: 2, Relaxation: 64})
	s.Worker(0).Push(42, 7)
	// The task sits in worker 0's local LSM; worker 1 sees emptiness.
	if _, _, ok := s.Worker(1).Pop(); ok {
		t.Fatal("worker 1 popped a task buried in worker 0's local LSM")
	}
	if p, v, ok := s.Worker(0).Pop(); !ok || p != 42 || v != 7 {
		t.Fatalf("owner Pop = (%d,%d,%v), want (42,7,true)", p, v, ok)
	}
}

// TestRelaxationBoundHolds: the local LSM must never hold more than k
// tasks after a Push returns — the invariant behind the documented
// (P−1)·k rank-error bound.
func TestRelaxationBoundHolds(t *testing.T) {
	for _, k := range []int{0, 1, 4, 64} {
		relax := k
		if relax == 0 {
			relax = Strict
		}
		s := New[int](Config{Workers: 1, Relaxation: relax})
		w := s.Worker(0)
		rng := rand.New(rand.NewSource(int64(k) + 10))
		for i := 0; i < 2000; i++ {
			w.Push(uint64(rng.Intn(1000)), i)
			if got := s.workers[0].local.n; got > k {
				t.Fatalf("k=%d: local LSM holds %d tasks after push %d", k, got, i)
			}
		}
	}
}

// TestGeometricBlockInvariant: local blocks keep geometrically
// decreasing live sizes (each block strictly smaller than its
// predecessor immediately after an insert), which is what bounds the
// per-operation merge and scan costs logarithmically.
func TestGeometricBlockInvariant(t *testing.T) {
	var l lsm[int]
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4096; i++ {
		l.insertItem(uint64(rng.Intn(1<<20)), i)
		for b := 1; b < len(l.blocks); b++ {
			if l.blocks[b].size() >= l.blocks[b-1].size() {
				t.Fatalf("after insert %d: block %d size %d >= block %d size %d",
					i, b, l.blocks[b].size(), b-1, l.blocks[b-1].size())
			}
		}
	}
	if l.n != 4096 {
		t.Fatalf("lsm count %d, want 4096", l.n)
	}
	// The block count must stay logarithmic in n.
	if len(l.blocks) > 13 {
		t.Fatalf("4096 inserts left %d blocks; merge discipline broken", len(l.blocks))
	}
}

// TestLSMPopReleasesPayloads: popped slots are zeroed so payloads do
// not pin garbage (mirrors the DHeap discipline).
func TestLSMPopReleasesPayloads(t *testing.T) {
	var l lsm[*int]
	x := new(int)
	l.insertItem(1, x)
	l.insertItem(2, new(int))
	b := l.blocks[0]
	if _, ok := l.pop(); !ok {
		t.Fatal("pop failed")
	}
	if b.items[0].V != nil {
		t.Fatal("popped slot still references its payload")
	}
}

// TestConcurrentSpillMerge hammers the spill/merge path: many workers,
// tiny relaxation (constant spilling and global popping), colliding
// priorities, run under -race in CI. Every task must be popped exactly
// once and the stats must balance.
func TestConcurrentSpillMerge(t *testing.T) {
	const workers = 8
	perWorker := 4000
	if testing.Short() {
		perWorker = 600
	}
	for _, k := range []int{Strict, 2, 16} {
		s := New[uint32](Config{Workers: workers, Relaxation: k})
		total := workers * perWorker
		var counts []int
		countsCh := make(chan []uint32, workers)
		var pending sched.Pending
		pending.Inc(int64(total))

		var wg sync.WaitGroup
		for wid := 0; wid < workers; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				var popped []uint32
				next := 0
				var b sched.Backoff
				for {
					if next < perWorker {
						v := uint32(wid*perWorker + next)
						w.Push(uint64(v%127), v)
						next++
					}
					if _, v, ok := w.Pop(); ok {
						popped = append(popped, v)
						pending.Dec()
						b.Reset()
						continue
					}
					if next < perWorker {
						continue
					}
					if pending.Done() {
						countsCh <- popped
						return
					}
					b.Wait()
				}
			}(wid)
		}
		wg.Wait()
		close(countsCh)

		counts = make([]int, total)
		for popped := range countsCh {
			for _, v := range popped {
				counts[v]++
			}
		}
		for v, c := range counts {
			if c != 1 {
				t.Fatalf("k=%d: task %d popped %d times", k, v, c)
			}
		}
		st := s.Stats()
		if st.Pushes != uint64(total) || st.Pops != uint64(total) {
			t.Fatalf("k=%d: stats after drain: %+v", k, st)
		}
	}
}

// TestGlobalTopCacheCoherent: the lock-free cached top always reflects
// the global LSM's true minimum once the lock is released.
func TestGlobalTopCacheCoherent(t *testing.T) {
	s := New[int](Config{Workers: 1, Relaxation: Strict})
	w := s.Worker(0)
	if got := s.global.top.Load(); got != pq.InfPriority {
		t.Fatalf("empty global top = %d, want InfPriority", got)
	}
	w.Push(9, 1)
	w.Push(3, 2)
	if got := s.global.top.Load(); got != 3 {
		t.Fatalf("global top = %d, want 3", got)
	}
	w.Pop()
	if got := s.global.top.Load(); got != 9 {
		t.Fatalf("global top after pop = %d, want 9", got)
	}
	w.Pop()
	if got := s.global.top.Load(); got != pq.InfPriority {
		t.Fatalf("drained global top = %d, want InfPriority", got)
	}
}
