package serve

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/zoo"
)

// Lineup returns the scheduler names Build understands — the serving
// benchmark's historical default selection of the zoo registry, in zoo
// order (the lock-free cbpq rides directly after the coarse exact
// baseline). Build accepts any zoo name, including ones outside this
// default slate.
func Lineup() []string {
	return []string{"coarse", "cbpq", "mq", "mq-batch", "emq", "smq", "klsm", "obim", "spray"}
}

// Build constructs the named scheduler for w worker slots, instantiated
// at the Request payload. The factory itself lives in internal/zoo;
// this wrapper only translates a miss into a serve-flavoured error.
func Build(name string, workers int, seed uint64) (sched.Scheduler[Request], error) {
	spec, ok := zoo.Lookup[Request](name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown scheduler %q (known: %v)", name, zoo.Names())
	}
	return spec.Build(workers, seed), nil
}
