package main

import (
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"
)

// columnStarts returns the rune offsets at which a table line's fields
// begin, treating runs of two or more spaces as the column separator
// (single spaces occur inside the params column).
func columnStarts(line string) []int {
	var starts []int
	for _, loc := range regexp.MustCompile(`(?:^|  +)\S`).FindAllStringIndex(line, -1) {
		_, size := utf8.DecodeLastRuneInString(line[loc[0]:loc[1]])
		starts = append(starts, utf8.RuneCountInString(line[:loc[1]-size]))
	}
	return starts
}

// TestRenderSchedulerListAlignment is the golden test for `smqsim
// -list`: every row must place its bound, source, and params fields in
// the same columns as the header. The fixed printf widths this rendering
// replaced drifted as soon as a scheduler name or bound outgrew them.
func TestRenderSchedulerListAlignment(t *testing.T) {
	var b strings.Builder
	renderSchedulerList(&b, 4)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("list too short:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("missing header:\n%s", out)
	}
	header := columnStarts(lines[0])
	if len(header) != 4 {
		t.Fatalf("header has %d columns, want 4: %q", len(header), lines[0])
	}
	for _, line := range lines[1:] {
		starts := columnStarts(line)
		if len(starts) != 4 {
			t.Errorf("row has %d columns, want 4: %q", len(starts), line)
			continue
		}
		for i := range starts {
			if starts[i] != header[i] {
				t.Errorf("column %d starts at rune %d, header at %d: %q", i, starts[i], header[i], line)
			}
		}
	}

	// The lock-free tier rows are pinned: exact bound 0, with and
	// without the elimination layer.
	for _, want := range []*regexp.Regexp{
		regexp.MustCompile(`(?m)^cbpq +0 +exact +chunk=64 lock-free$`),
		regexp.MustCompile(`(?m)^cbpq-elim +0 +exact +chunk=64 lock-free elim\+combining$`),
	} {
		if !want.MatchString(out) {
			t.Errorf("list missing row %v:\n%s", want, out)
		}
	}
}
