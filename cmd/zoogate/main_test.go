package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func parseSrc(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestSchedulerConstructorsExtraction(t *testing.T) {
	f := parseSrc(t, `package smq

type Scheduler[T any] interface{}
type Graph struct{}

// NewFoo is a scheduler constructor.
func NewFoo[T any](w int) Scheduler[T] { return nil }

// NewQualified returns the interface through a package qualifier.
func NewQualified[T any](w int) sched.Scheduler[T] { return nil }

// NewGraph returns something else entirely and must be ignored.
func NewGraph(n int) *Graph { return nil }

// newHidden is unexported and must be ignored.
func newHidden[T any](w int) Scheduler[T] { return nil }

// BuildThing does not start with New.
func BuildThing[T any](w int) Scheduler[T] { return nil }

// NewNothing returns nothing.
func NewNothing() {}

type x struct{}

// NewMethod is a method, not a top-level constructor.
func (x) NewMethod() Scheduler[int] { return nil }
`)
	got := schedulerConstructors(f)
	want := []string{"NewFoo", "NewQualified"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedulerConstructors = %v, want %v", got, want)
	}
}

func TestCoveredConstructorsExtraction(t *testing.T) {
	f := parseSrc(t, `package sched_test

var unrelated = []string{"nope"}

var rootConstructorsCovered = []string{
	"NewB",
	"NewA",
}
`)
	got, err := coveredConstructors(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"NewA", "NewB"} // sorted
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("coveredConstructors = %v, want %v", got, want)
	}
}

func TestCoveredConstructorsMissingList(t *testing.T) {
	f := parseSrc(t, `package sched_test

var somethingElse = []string{"NewA"}
`)
	if _, err := coveredConstructors(f); err == nil {
		t.Fatal("expected an error when the coverage list is absent")
	}
}

func TestDiffCoverage(t *testing.T) {
	missing, stale := diffCoverage(
		[]string{"NewA", "NewB", "NewC"},
		[]string{"NewB", "NewC", "NewGone"})
	if !reflect.DeepEqual(missing, []string{"NewA"}) {
		t.Fatalf("missing = %v, want [NewA]", missing)
	}
	if !reflect.DeepEqual(stale, []string{"NewGone"}) {
		t.Fatalf("stale = %v, want [NewGone]", stale)
	}

	missing, stale = diffCoverage([]string{"NewA"}, []string{"NewA"})
	if len(missing) != 0 || len(stale) != 0 {
		t.Fatalf("clean diff reported missing=%v stale=%v", missing, stale)
	}
}

// TestGateFailsOnUncoveredConstructor runs the gate's pipeline end to
// end against a synthetic repository: a root package exporting an
// unlisted scheduler constructor must be flagged — the exact regression
// the CI step exists to catch.
func TestGateFailsOnUncoveredConstructor(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "root.go"), `package smq

type Scheduler[T any] interface{}

func NewCovered[T any](w int) Scheduler[T] { return nil }
func NewSneaky[T any](w int) Scheduler[T] { return nil }
`)
	writeFile(t, filepath.Join(dir, conformancePath), `package sched_test

var rootConstructorsCovered = []string{"NewCovered"}
`)

	constructors, err := schedulerConstructorsInDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	covered, err := coveredConstructorsInFile(filepath.Join(dir, conformancePath))
	if err != nil {
		t.Fatal(err)
	}
	missing, stale := diffCoverage(constructors, covered)
	if !reflect.DeepEqual(missing, []string{"NewSneaky"}) {
		t.Fatalf("missing = %v, want [NewSneaky]", missing)
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %v, want none", stale)
	}
}

// TestGateAgainstThisRepository runs the real gate against the real
// repository: the root package and the conformance suite must agree, or
// this test (and the CI step) fails.
func TestGateAgainstThisRepository(t *testing.T) {
	root := filepath.Join("..", "..")
	constructors, err := schedulerConstructorsInDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(constructors) == 0 {
		t.Fatal("no scheduler constructors found in the root package")
	}
	covered, err := coveredConstructorsInFile(filepath.Join(root, conformancePath))
	if err != nil {
		t.Fatal(err)
	}
	missing, stale := diffCoverage(constructors, covered)
	if len(missing) != 0 {
		t.Errorf("root constructors missing from the conformance lineup: %v", missing)
	}
	if len(stale) != 0 {
		t.Errorf("stale conformance coverage entries: %v", stale)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
