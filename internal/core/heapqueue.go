package core

import (
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/pq"
)

// heapQueue is Listing 4's HeapWithStealingBufferQueue: a sequential d-ary
// heap owned by one worker, plus a stealing buffer visible to all.
//
// The buffer protocol packs (epoch, stolen) into one atomic word:
//
//	state = epoch<<1 | stolenBit
//
// The owner refills the buffer only after observing stolenBit set, bumps
// the epoch, publishes the new immutable batch, and clears the bit. A
// thief (or the owner reclaiming its own buffer) validates that the batch
// it loaded carries the epoch it saw in state and then CASes the stolen
// bit in; the single successful CAS for an epoch owns the whole batch.
type heapQueue[T any] struct {
	// Owner-only words: the heap pointer and batch size are touched on
	// every local push/pop but never by thieves.
	heap      *pq.DHeap[T]
	stealSize int
	_         [contend.CacheLineSize - 16]byte // owner words get their own line

	// Thief-shared words: every victim probe loads state (and often
	// buf), and every steal CASes state. Isolating the epoch word on its
	// own line means thieves' CAS traffic never invalidates the owner's
	// heap-pointer line, and padding the tail keeps the next queue's
	// header out too.
	buf   atomic.Pointer[stealBatch[T]]
	state atomic.Uint64 // epoch<<1 | stolen
	_     [contend.CacheLineSize - 16]byte
}

// stealBatch is an immutable published batch. items is never mutated
// after the batch is stored in heapQueue.buf.
type stealBatch[T any] struct {
	items []pq.Item[T]
	epoch uint64
}

func newHeapQueue[T any](arity, stealSize int) *heapQueue[T] {
	q := &heapQueue[T]{
		heap:      pq.NewDHeapCap[T](arity, 256),
		stealSize: stealSize,
	}
	q.state.Store(1) // epoch 0, stolen: nothing published yet
	return q
}

// PushLocal adds a task to the heap and replenishes the steal buffer if
// its previous batch was taken.
func (q *heapQueue[T]) PushLocal(p uint64, v T) {
	q.heap.Push(p, v)
	if q.state.Load()&1 == 1 {
		q.fillBuffer()
	}
}

// PushLocalBatch adds a whole run to the heap and checks the steal
// buffer once for the batch — one atomic state load (and at most one
// refill) instead of one per task.
//
// The refill, when due, happens after the FIRST item exactly as in the
// per-item loop, not after the whole batch: a post-batch refill would
// capture the batch's top tasks into the thief buffer, where they are
// invisible to the owner's pops until the heap next runs dry. On
// road-graph SSSP that misordering compounds into repeated re-expansion
// waves — 4x the relaxation work — because the hidden tasks are
// precisely the best frontier vertices.
func (q *heapQueue[T]) PushLocalBatch(items []pq.Item[T]) {
	if len(items) == 0 {
		return
	}
	if q.state.Load()&1 == 1 {
		q.heap.PushItem(items[0])
		q.fillBuffer()
		items = items[1:]
	}
	q.heap.PushBatch(items)
}

// PopLocal takes the heap top; when the heap is empty it reclaims the
// queue's own published buffer (without that, a never-stolen batch would
// strand its tasks). The surplus of a reclaimed batch is pushed back into
// the heap — the owner has cheap private access, unlike a thief.
func (q *heapQueue[T]) PopLocal() (uint64, T, bool) {
	if q.state.Load()&1 == 1 {
		q.fillBuffer()
	}
	if p, v, ok := q.heap.Pop(); ok {
		return p, v, true
	}
	// Heap empty: take back our own buffer if it is still there.
	batch := q.Steal(nil)
	if len(batch) == 0 {
		var zero T
		return pq.InfPriority, zero, false
	}
	for _, it := range batch[1:] {
		q.heap.PushItem(it)
	}
	return batch[0].P, batch[0].V, true
}

// PopLocalBatch drains up to k tasks from the heap into dst under a
// single buffer-replenish check; when the heap is empty it reclaims
// the queue's own published buffer in one epoch transition, keeping at
// most k tasks and pushing the surplus back into the heap (the owner
// has cheap private access, unlike a thief).
func (q *heapQueue[T]) PopLocalBatch(k int, dst []pq.Item[T]) []pq.Item[T] {
	if q.state.Load()&1 == 1 {
		q.fillBuffer()
	}
	n0 := len(dst)
	dst = q.heap.PopBatch(k, dst)
	if len(dst) > n0 {
		return dst
	}
	// Heap empty: take back our own buffer if it is still there.
	dst = q.Steal(dst)
	if extra := len(dst) - (n0 + k); extra > 0 {
		for _, it := range dst[n0+k:] {
			q.heap.PushItem(it)
		}
		clear(dst[n0+k:])
		dst = dst[:n0+k]
	}
	return dst
}

// TopLocal is the owner's view: the better of the heap top and the
// not-yet-stolen buffer top.
func (q *heapQueue[T]) TopLocal() uint64 {
	top := q.heap.Top()
	if bufTop := q.Top(); bufTop < top {
		top = bufTop
	}
	return top
}

// Top returns the thief-visible priority: the published buffer's best
// task, or infinity when the batch is stolen/absent. This is Listing 4's
// top(): load state, check the stolen bit, read, validate epoch.
func (q *heapQueue[T]) Top() uint64 {
	s := q.state.Load()
	if s&1 == 1 {
		return pq.InfPriority
	}
	b := q.buf.Load()
	if b == nil || b.epoch != s>>1 {
		// The owner republished between our two loads; one retry keeps
		// the common case cheap and a miss just reports infinity (the
		// caller will simply not steal — a benign outcome).
		s = q.state.Load()
		b = q.buf.Load()
		if s&1 == 1 || b == nil || b.epoch != s>>1 {
			return pq.InfPriority
		}
	}
	return b.items[0].P
}

// Steal is Listing 4's steal(): claim the published batch for this epoch.
// On success the items are appended to dst; the published slice itself is
// immutable and owned by nobody afterwards.
func (q *heapQueue[T]) Steal(dst []pq.Item[T]) []pq.Item[T] {
	for {
		s := q.state.Load()
		if s&1 == 1 {
			return dst
		}
		b := q.buf.Load()
		if b == nil || b.epoch != s>>1 {
			continue // owner mid-republish; retry from state
		}
		if q.state.CompareAndSwap(s, s|1) {
			return append(dst, b.items...)
		}
		// Lost the CAS to another thief: batch gone.
		return dst
	}
}

// fillBuffer publishes the heap's current top batch. Owner only, and only
// when the stolen bit is set (so no thief holds the previous epoch).
func (q *heapQueue[T]) fillBuffer() {
	if q.heap.Len() == 0 {
		return
	}
	items := q.heap.PopBatch(q.stealSize, make([]pq.Item[T], 0, q.stealSize))
	epoch := q.state.Load()>>1 + 1
	q.buf.Store(&stealBatch[T]{items: items, epoch: epoch})
	q.state.Store(epoch << 1) // clears the stolen bit
}

var _ stealQueue[int] = (*heapQueue[int])(nil)
