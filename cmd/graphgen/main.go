// Command graphgen generates the synthetic benchmark graphs (or converts
// between formats) for use with smqbench and the examples.
//
// Usage:
//
//	graphgen -type road -rows 256 -cols 128 -o usa.bin
//	graphgen -type rmat -rmatscale 16 -ef 16 -o twitter.bin
//	graphgen -in usa.bin -o usa.gr -outformat dimacs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	var (
		typ       = flag.String("type", "road", "generator: road, rmat, uniform")
		rows      = flag.Int("rows", 128, "road grid rows")
		cols      = flag.Int("cols", 128, "road grid cols")
		rmatScale = flag.Int("rmatscale", 14, "RMAT: log2 of vertex count")
		ef        = flag.Int("ef", 16, "RMAT: edges per vertex")
		n         = flag.Int("n", 10000, "uniform: vertex count")
		m         = flag.Int("m", 100000, "uniform: edge count")
		maxW      = flag.Uint("maxw", 255, "uniform: maximum edge weight")
		seed      = flag.Uint64("seed", 42, "generator seed")
		in        = flag.String("in", "", "read an existing graph (bin or dimacs by extension) instead of generating")
		out       = flag.String("o", "", "output path (required)")
		outFormat = flag.String("outformat", "bin", "output format: bin or dimacs")
		stat      = flag.Bool("stat", true, "print graph statistics to stderr")
	)
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-o is required"))
	}

	var g *graph.CSR
	var err error
	if *in != "" {
		g, err = readGraph(*in)
		if err != nil {
			fatal(err)
		}
	} else {
		switch *typ {
		case "road":
			g = graph.GenerateRoadGrid(*rows, *cols, *seed)
		case "rmat":
			g = graph.GenerateRMAT(*rmatScale, *ef, graph.DefaultRMATParams(), *seed)
		case "uniform":
			g = graph.GenerateUniformRandom(*n, *m, uint32(*maxW), *seed)
		default:
			fatal(fmt.Errorf("unknown generator %q", *typ))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *outFormat {
	case "bin":
		err = graph.WriteBinary(f, g)
	case "dimacs":
		err = graph.WriteDIMACS(f, g)
	default:
		err = fmt.Errorf("unknown output format %q", *outFormat)
	}
	if err != nil {
		fatal(err)
	}

	if *stat {
		s := g.Stat(*out)
		fmt.Fprintf(os.Stderr, "%s: |V|=%d |E|=%d maxdeg=%d avgdeg=%.2f coords=%v\n",
			s.Name, s.N, s.M, s.MaxDeg, s.AvgDeg, s.HasCoords)
	}
}

func readGraph(path string) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if len(path) > 3 && path[len(path)-3:] == ".gr" {
		return graph.ReadDIMACS(f)
	}
	return graph.ReadBinary(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
