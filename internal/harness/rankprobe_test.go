package harness

import "testing"

func TestProbeRankLockstepSMQBounded(t *testing.T) {
	// Under balanced (lockstep) scheduling, the SMQ's displacement must
	// be bounded and small relative to the task count — the practical
	// counterpart of Theorem 1's O(n·B) expected rank at constant
	// p_steal. Allow generous slack over the expectation.
	const tasks = 20000
	st := ProbeRankLockstep(SMQSpec("SMQ", 4, 0.125, 0), 4, tasks)
	if st.Tasks != tasks || st.Mode != "lockstep" {
		t.Fatalf("metadata wrong: %+v", st)
	}
	if st.MeanDisplacement > tasks/20 {
		t.Fatalf("SMQ lockstep mean displacement %.1f too large for %d tasks", st.MeanDisplacement, tasks)
	}
}

func TestProbeRankLockstepClassicMQSmall(t *testing.T) {
	const tasks = 20000
	spec := SchedulerSpec{Name: "MQ Classic", Make: ClassicMQBaseline}
	st := ProbeRankLockstep(spec, 4, tasks)
	// The classic MQ's expected rank is O(m); with m=16 queues the mean
	// displacement should be far below the task count.
	if st.MeanDisplacement > 500 {
		t.Fatalf("classic MQ lockstep mean displacement %.1f too large", st.MeanDisplacement)
	}
}

func TestProbeRankFreerunCompletes(t *testing.T) {
	st := ProbeRank(SMQSpec("SMQ", 4, 0.125, 0), 2, 20000)
	if st.Mode != "freerun" || st.Tasks != 20000 {
		t.Fatalf("metadata wrong: %+v", st)
	}
	if st.MaxDisplacement < st.P99Displacement {
		t.Fatalf("stat ordering wrong: %+v", st)
	}
}

func TestRankStatsFromOrderExact(t *testing.T) {
	order := []uint64{0, 1, 2, 3, 4}
	st := rankStatsFromOrder(order)
	if st.MeanDisplacement != 0 || st.MaxDisplacement != 0 || st.InversionFrac != 0 {
		t.Fatalf("exact order should have zero stats: %+v", st)
	}
}

func TestRankStatsFromOrderReversed(t *testing.T) {
	order := []uint64{4, 3, 2, 1, 0}
	st := rankStatsFromOrder(order)
	if st.MaxDisplacement != 4 {
		t.Fatalf("MaxDisp = %d, want 4", st.MaxDisplacement)
	}
	if st.InversionFrac != 0.8 { // all but the first pop are inversions
		t.Fatalf("InversionFrac = %v, want 0.8", st.InversionFrac)
	}
}
