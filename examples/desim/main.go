// Discrete-event simulation through the named-scheduler zoo: the
// internal/desim engine runs a simulated serving cluster on any
// scheduler looked up by name (smq.LookupSpec), with the causality
// window derived from the scheduler's own rank-error bound. Compare
//
//	go run ./examples/desim -scheduler klsm     // exact worst-case bound
//	go run ./examples/desim -scheduler smq      // expectation-scale bound
//	go run ./examples/desim -scheduler obim     // no bound: runs unchecked
//
// Every scheduler must print the same checksum and per-tenant sojourn
// percentiles — relaxation reorders event execution, never simulated
// outcomes — while violations/lead show how hard each scheduler leans
// on its lookahead window.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	smq "repro"
	"repro/internal/desim"
)

func main() {
	name := flag.String("scheduler", "smq", "zoo scheduler name (see smq.SpecNames)")
	stations := flag.Int("stations", 64, "number of service stations")
	arrivals := flag.Int("arrivals", 2000, "arrivals per station")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()

	spec, ok := smq.LookupSpec[desim.Event](*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheduler %q; known: %v\n", *name, smq.SpecNames())
		os.Exit(2)
	}
	bound, exact := spec.RankBound(*workers)

	model, err := desim.NewCluster(desim.ClusterConfig{
		Stations:           *stations,
		ArrivalsPerStation: *arrivals,
		Workers:            *workers,
		Seed:               *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	lookahead := bound // negative bound = unchecked, which Run treats the same way
	stats, err := desim.Run(spec.Build(*workers, *seed), model, desim.Config{
		Workers:   *workers,
		Lookahead: lookahead,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d events, checksum %#x\n", spec.Name, stats.Events, model.Checksum())
	if bound >= 0 {
		kind := "expected"
		if exact {
			kind = "worst-case"
		}
		fmt.Printf("window: %s rank bound %d — %d causality violations, max lead %d, mean lead %.1f\n",
			kind, bound, stats.Violations, stats.MaxLead, stats.MeanLead)
	} else {
		fmt.Println("window: no usable rank bound — ran unchecked")
	}
	for _, t := range model.PerTenant() {
		fmt.Printf("tenant %d: %6d completed, sojourn p50=%d p99=%d p99.9=%d ticks\n",
			t.Tenant, t.Completed, t.P50, t.P99, t.P999)
	}
}
