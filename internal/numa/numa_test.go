package numa

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTopologyBasics(t *testing.T) {
	top := New(8, 2, 4)
	if top.NumQueues() != 32 {
		t.Fatalf("NumQueues = %d", top.NumQueues())
	}
	// Workers 0-3 on node 0, 4-7 on node 1.
	for w := 0; w < 4; w++ {
		if top.NodeOfWorker(w) != 0 {
			t.Errorf("worker %d on node %d, want 0", w, top.NodeOfWorker(w))
		}
	}
	for w := 4; w < 8; w++ {
		if top.NodeOfWorker(w) != 1 {
			t.Errorf("worker %d on node %d, want 1", w, top.NodeOfWorker(w))
		}
	}
	lo, hi := top.QueueRangeOfNode(0)
	if lo != 0 || hi != 16 {
		t.Errorf("node 0 queues [%d,%d), want [0,16)", lo, hi)
	}
	lo, hi = top.QueueRangeOfNode(1)
	if lo != 16 || hi != 32 {
		t.Errorf("node 1 queues [%d,%d), want [16,32)", lo, hi)
	}
}

func TestTopologyClamping(t *testing.T) {
	top := New(2, 16, 1) // more nodes than workers
	if top.Nodes != 2 {
		t.Fatalf("Nodes = %d, want clamped to 2", top.Nodes)
	}
	top = New(4, 0, 1)
	if top.Nodes != 1 {
		t.Fatalf("Nodes = %d, want clamped to 1", top.Nodes)
	}
}

func TestTopologyPartitionProperty(t *testing.T) {
	// Property: node queue ranges partition [0, m) and agree with
	// NodeOfQueue, for arbitrary topologies.
	f := func(w, n, c uint8) bool {
		workers := int(w%16) + 1
		nodes := int(n%8) + 1
		qpw := int(c%4) + 1
		top := New(workers, nodes, qpw)
		covered := 0
		for j := 0; j < top.Nodes; j++ {
			lo, hi := top.QueueRangeOfNode(j)
			if lo != covered {
				return false
			}
			for q := lo; q < hi; q++ {
				if top.NodeOfQueue(q) != j {
					return false
				}
			}
			covered = hi
		}
		return covered == top.NumQueues()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerUniformSingleNode(t *testing.T) {
	top := New(4, 1, 2)
	s := NewSampler(top, 0, 8, xrand.New(1))
	const draws = 80000
	counts := make([]int, top.NumQueues())
	for i := 0; i < draws; i++ {
		counts[s.Sample()]++
	}
	want := float64(draws) / float64(top.NumQueues())
	for q, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("queue %d: %d draws, want ~%.0f", q, c, want)
		}
	}
	if s.Remote != 0 {
		t.Errorf("single node reported %d remote samples", s.Remote)
	}
}

func TestSamplerWeighted(t *testing.T) {
	// 2 nodes, 8 workers, C=1, K=8: own node has 4 queues weight 1,
	// remote 4 queues weight 1/8 → P(own) = 4 / (4 + 0.5) = 8/9.
	top := New(8, 2, 1)
	s := NewSampler(top, 0, 8, xrand.New(2))
	const draws = 200000
	own := 0
	for i := 0; i < draws; i++ {
		q := s.Sample()
		if q < 4 {
			own++
		}
	}
	got := float64(own) / draws
	want := 8.0 / 9.0
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(own) = %v, want %v", got, want)
	}
	if s.Total != draws {
		t.Errorf("Total = %d, want %d", s.Total, draws)
	}
	if s.Remote != uint64(draws-own) {
		t.Errorf("Remote = %d, want %d", s.Remote, draws-own)
	}
}

func TestSamplerRemoteUniformAmongRemotes(t *testing.T) {
	top := New(8, 2, 1)
	s := NewSampler(top, 6, 4, xrand.New(3)) // worker 6 is on node 1: own queues 4..7
	counts := make([]int, 8)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[s.Sample()]++
	}
	// Remote queues 0..3 should each get ~equal share.
	remoteTotal := counts[0] + counts[1] + counts[2] + counts[3]
	for q := 0; q < 4; q++ {
		got := float64(counts[q])
		want := float64(remoteTotal) / 4
		if math.Abs(got-want) > 6*math.Sqrt(want+1) {
			t.Errorf("remote queue %d: %v draws, want ~%v", q, got, want)
		}
	}
	// Own queues should dominate: with K=4, P(own)=4/(4+1)=0.8.
	got := 1 - float64(remoteTotal)/draws
	if math.Abs(got-0.8) > 0.01 {
		t.Errorf("P(own) = %v, want 0.8", got)
	}
}

func TestSampleOther(t *testing.T) {
	top := New(2, 1, 1)
	s := NewSampler(top, 0, 1, xrand.New(4))
	for i := 0; i < 1000; i++ {
		if q := s.SampleOther(0); q != 1 {
			t.Fatalf("SampleOther(0) = %d with m=2", q)
		}
	}
}

func TestSamplerKLessOrEqualOneIsUniform(t *testing.T) {
	top := New(8, 2, 1)
	s := NewSampler(top, 0, 1, xrand.New(5))
	if !s.uniform {
		t.Fatal("K=1 sampler should be uniform")
	}
	const draws = 100000
	remote := 0
	for i := 0; i < draws; i++ {
		if q := s.Sample(); q >= 4 {
			remote++
		}
	}
	got := float64(remote) / draws
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("uniform sampler remote fraction = %v, want 0.5", got)
	}
	if s.Remote != uint64(remote) {
		t.Errorf("Remote counter = %d, want %d", s.Remote, remote)
	}
}

func TestDefaultK(t *testing.T) {
	if k := DefaultK(8); k != 8 {
		t.Errorf("DefaultK(8) = %v, want 8 (paper default)", k)
	}
	if k := DefaultK(256); k != 64 {
		t.Errorf("DefaultK(256) = %v, want 64 (linear in T)", k)
	}
}

func TestInternalAccessRatioMatchesPaperFormula(t *testing.T) {
	// Paper §4: for K ≫ N, E_int/T ≈ 1 − 1/K. Verify empirically that
	// the per-worker own-node probability is ≈ 1 − 1/K for equal nodes.
	const workers, nodes = 16, 2
	k := 64.0
	top := New(workers, nodes, 2)
	var ownTotal, draws float64
	for w := 0; w < workers; w++ {
		s := NewSampler(top, w, k, xrand.New(uint64(w)))
		for i := 0; i < 20000; i++ {
			s.Sample()
		}
		ownTotal += float64(s.Total - s.Remote)
		draws += float64(s.Total)
	}
	got := ownTotal / draws
	// Exact: own/(own + remote/K) with own=m/N, remote=m−m/N:
	own := float64(top.NumQueues()) / nodes
	remote := float64(top.NumQueues()) - own
	want := own / (own + remote/k)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("internal ratio = %v, want %v", got, want)
	}
	// And the paper's K≫N approximation should be close.
	approx := 1 - 1/k
	if math.Abs(want-approx) > 0.01 {
		t.Errorf("exact %v vs paper approx %v differ too much", want, approx)
	}
}
