package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a 9th DIMACS Implementation Challenge shortest-path
// graph ("p sp N M" header, "a U V W" arc lines, 1-based vertex ids) —
// the format of the paper's USA/WEST road inputs. Comments ("c ...") are
// ignored.
func ReadDIMACS(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var n int
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		switch text[0] {
		case 'p':
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("graph: line %d: bad problem line %q", line, text)
			}
			var err error
			n, err = strconv.Atoi(fields[2])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", line, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge count %q", line, fields[3])
			}
			edges = make([]Edge, 0, m)
		case 'a':
			if n == 0 {
				return nil, fmt.Errorf("graph: line %d: arc before problem line", line)
			}
			fields := strings.Fields(text)
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: bad arc line %q", line, text)
			}
			u, err1 := strconv.ParseUint(fields[1], 10, 32)
			v, err2 := strconv.ParseUint(fields[2], 10, 32)
			w, err3 := strconv.ParseUint(fields[3], 10, 32)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: bad arc numbers %q", line, text)
			}
			if u < 1 || v < 1 || int(u) > n || int(v) > n {
				return nil, fmt.Errorf("graph: line %d: vertex out of range", line)
			}
			edges = append(edges, Edge{U: uint32(u - 1), V: uint32(v - 1), W: uint32(w)})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading DIMACS: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return Build(n, edges, nil)
}

// WriteDIMACS emits the graph in DIMACS shortest-path format.
func WriteDIMACS(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.N, g.M()); err != nil {
		return err
	}
	for u := 0; u < g.N; u++ {
		ts, ws := g.Neighbors(uint32(u))
		for i, v := range ts {
			if _, err := fmt.Fprintf(bw, "a %d %d %d\n", u+1, v+1, ws[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

const binMagic = uint32(0x534d5147) // "SMQG"

// WriteBinary serializes the graph (including coordinates) in a compact
// little-endian format for fast reloads by cmd/graphgen consumers.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint64{uint64(binMagic), uint64(g.N), uint64(g.M())}
	hasCoords := uint64(0)
	if g.Coords != nil {
		hasCoords = 1
	}
	hdr = append(hdr, hasCoords)
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Targets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Weights); err != nil {
		return err
	}
	if g.Coords != nil {
		for _, c := range g.Coords {
			if err := binary.Write(bw, binary.LittleEndian, []float64{c.X, c.Y}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading binary header: %w", err)
		}
	}
	if uint32(hdr[0]) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[1]), int(hdr[2])
	if n <= 0 || m < 0 || m > 1<<34 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	g := &CSR{
		N:       n,
		Offsets: make([]int64, n+1),
		Targets: make([]uint32, m),
		Weights: make([]uint32, m),
	}
	if err := binary.Read(br, binary.LittleEndian, g.Offsets); err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Targets); err != nil {
		return nil, fmt.Errorf("graph: reading targets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Weights); err != nil {
		return nil, fmt.Errorf("graph: reading weights: %w", err)
	}
	if hdr[3] == 1 {
		g.Coords = make([]Coord, n)
		buf := make([]float64, 2)
		for i := range g.Coords {
			if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
				return nil, fmt.Errorf("graph: reading coords: %w", err)
			}
			g.Coords[i] = Coord{X: buf[0], Y: buf[1]}
		}
	}
	// Validate structural invariants so corrupt files fail loudly.
	if g.Offsets[0] != 0 || g.Offsets[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt offsets")
	}
	for i := 0; i < n; i++ {
		if g.Offsets[i] > g.Offsets[i+1] {
			return nil, fmt.Errorf("graph: non-monotone offsets at %d", i)
		}
	}
	for _, t := range g.Targets {
		if int(t) >= n {
			return nil, fmt.Errorf("graph: target %d out of range", t)
		}
	}
	return g, nil
}
