package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestStandardWorkloadsShape(t *testing.T) {
	ws := StandardWorkloads(1)
	if len(ws) != 12 {
		t.Fatalf("expected the paper's 12 benchmarks, got %d", len(ws))
	}
	counts := map[AlgoKind]int{}
	for _, w := range ws {
		counts[w.Algo]++
	}
	if counts[AlgoSSSP] != 4 || counts[AlgoBFS] != 4 || counts[AlgoAStar] != 2 || counts[AlgoMST] != 2 {
		t.Fatalf("benchmark mix wrong: %v", counts)
	}
}

func TestWorkloadRunAndValidate(t *testing.T) {
	for _, w := range QuickWorkloads(1) {
		spec := SMQSpec("SMQ", 4, 0.125, 0)
		res, err := w.Run(spec.Make(2, 0), true)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Tasks == 0 {
			t.Fatalf("%s: no tasks", w.Name)
		}
	}
}

func TestSeqBaselineCached(t *testing.T) {
	w := QuickWorkloads(1)[0]
	t1, d1 := w.SeqBaseline()
	t2, d2 := w.SeqBaseline()
	if t1 != t2 || d1 != d2 {
		t.Fatal("baseline not cached")
	}
	if t1 == 0 || d1 <= 0 {
		t.Fatalf("degenerate baseline: %d %v", t1, d1)
	}
}

func TestMeasureRepeatsKeepBest(t *testing.T) {
	w := QuickWorkloads(1)[0]
	spec := SMQSpec("SMQ", 4, 0.125, 0)
	m, err := Measure(w, spec, 2, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration <= 0 || m.Tasks == 0 {
		t.Fatalf("bad measurement: %+v", m)
	}
	if m.Scheduler != "SMQ" || m.Threads != 2 {
		t.Fatalf("metadata wrong: %+v", m)
	}
}

func mustFind(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return e
}

func TestRegistryCoversPaperArtifacts(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Paper == "" || e.plan == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig7", "fig9", "fig11", "fig13", "fig15", "fig19", "emq", "klsm", "numa", "theory", "geom", "rankprobe"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig2"); !ok {
		t.Fatal("fig2 not found")
	}
	if _, ok := Find("nonsense"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestTable1Runs(t *testing.T) {
	tables, err := mustFind(t, "table1").Run(RunConfig{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("table1 should list 4 graphs, got %+v", tables)
	}
}

func TestTheoryExperimentRuns(t *testing.T) {
	tables, err := mustFind(t, "theory").Run(RunConfig{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 6 {
		t.Fatalf("theory should produce 6 tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("empty table %q", tb.Title)
		}
	}
}

func TestSmallComparisonExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiment is slow")
	}
	// Shrink to a single thread count and validation on, to exercise the
	// full fig2 path end to end.
	tables, err := mustFind(t, "fig2").Run(RunConfig{Scale: 1, Threads: []int{2}, Reps: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 12 {
		t.Fatalf("fig2 should emit 12 panels, got %d", len(tables))
	}
}

func TestKLSMExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("klsm ablation experiment is slow")
	}
	tables, err := mustFind(t, "klsm").Run(RunConfig{Scale: 1, Threads: []int{2}, Reps: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("klsm should emit one table, got %d", len(tables))
	}
	tb := tables[0]
	if len(tb.Header) != 1+len(klsmRelaxations) {
		t.Fatalf("klsm header %v should have a column per relaxation", tb.Header)
	}
	if len(tb.Rows) != len(QuickWorkloads(1)) {
		t.Fatalf("klsm table has %d rows, want one per quick workload (%d)",
			len(tb.Rows), len(QuickWorkloads(1)))
	}
}

func TestTableWriters(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "b"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")

	var tsv bytes.Buffer
	if err := tb.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "# demo") || !strings.Contains(tsv.String(), "1\t2") {
		t.Fatalf("bad TSV: %q", tsv.String())
	}

	var txt bytes.Buffer
	if err := tb.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== demo ==") {
		t.Fatalf("bad text: %q", txt.String())
	}

	var both bytes.Buffer
	if err := WriteTables(&both, []Table{tb, tb}, "tsv"); err != nil {
		t.Fatal(err)
	}
	if strings.Count(both.String(), "# demo") != 2 {
		t.Fatal("WriteTables dropped a table")
	}
}

func TestGraphSuffix(t *testing.T) {
	if graphSuffix("SSSP USA") != "USA" || graphSuffix("BFS TWITTER") != "TWITTER" {
		t.Fatal("graphSuffix broken")
	}
}

func TestSpeedupCellFormat(t *testing.T) {
	if got := speedupCell(1.5, 1.07); got != "1.50/1.07" {
		t.Fatalf("cell = %q", got)
	}
}

func TestGeomExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("geom experiment is slow")
	}
	tables, err := mustFind(t, "geom").Run(RunConfig{Scale: 1, Threads: []int{2}, Reps: 1, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("geom should emit k-NN and EMST tables, got %d", len(tables))
	}
	// One TSV row per scheduler × distribution in each table.
	want := len(StandardSchedulers()) * len(geomDistributions(1))
	for _, tb := range tables {
		if len(tb.Rows) != want {
			t.Fatalf("%q has %d rows, want %d", tb.Title, len(tb.Rows), want)
		}
	}
	var tsv bytes.Buffer
	if err := WriteTables(&tsv, tables, "tsv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv.String(), "UNIFORM\tSMQ (Default)") {
		t.Fatalf("TSV missing scheduler × distribution rows:\n%s", tsv.String())
	}
}
