package pq

// PairingHeap is a sequential pairing heap. It is provided as an
// alternative local-queue structure for the ablation study of the SMQ's
// "optimal local data structure" investigation (§4): pairing heaps have
// O(1) amortized insert, which can win on insert-heavy workloads, at the
// cost of pointer chasing on extract.
type PairingHeap[T any] struct {
	root *pairingNode[T]
	n    int
	// free is a small freelist to reduce allocator pressure in the
	// scheduler hot path.
	free *pairingNode[T]
}

type pairingNode[T any] struct {
	item    Item[T]
	child   *pairingNode[T]
	sibling *pairingNode[T]
}

// NewPairingHeap returns an empty pairing heap.
func NewPairingHeap[T any]() *PairingHeap[T] { return &PairingHeap[T]{} }

// Len reports the number of queued tasks.
func (h *PairingHeap[T]) Len() int { return h.n }

// Top returns the minimum priority, or InfPriority when empty.
func (h *PairingHeap[T]) Top() uint64 {
	if h.root == nil {
		return InfPriority
	}
	return h.root.item.P
}

// Push inserts a task.
func (h *PairingHeap[T]) Push(p uint64, v T) {
	node := h.alloc()
	node.item = Item[T]{P: p, V: v}
	h.root = meld(h.root, node)
	h.n++
}

// Pop removes and returns the minimum-priority task.
func (h *PairingHeap[T]) Pop() (p uint64, v T, ok bool) {
	if h.root == nil {
		return InfPriority, v, false
	}
	top := h.root.item
	old := h.root
	h.root = mergePairs(h.root.child)
	h.release(old)
	h.n--
	return top.P, top.V, true
}

// PopBatch removes up to k minimum-priority tasks in priority order,
// appending them to dst.
func (h *PairingHeap[T]) PopBatch(k int, dst []Item[T]) []Item[T] {
	for i := 0; i < k; i++ {
		p, v, ok := h.Pop()
		if !ok {
			break
		}
		dst = append(dst, Item[T]{P: p, V: v})
	}
	return dst
}

// Clear removes all tasks. The node pool is discarded.
func (h *PairingHeap[T]) Clear() {
	h.root = nil
	h.free = nil
	h.n = 0
}

func (h *PairingHeap[T]) alloc() *pairingNode[T] {
	if h.free != nil {
		node := h.free
		h.free = node.sibling
		node.sibling = nil
		return node
	}
	return &pairingNode[T]{}
}

func (h *PairingHeap[T]) release(node *pairingNode[T]) {
	var zero Item[T]
	node.item = zero
	node.child = nil
	node.sibling = h.free
	h.free = node
}

func meld[T any](a, b *pairingNode[T]) *pairingNode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.item.P < a.item.P {
		a, b = b, a
	}
	b.sibling = a.child
	a.child = b
	return a
}

// mergePairs implements the standard two-pass pairing combine.
func mergePairs[T any](first *pairingNode[T]) *pairingNode[T] {
	if first == nil || first.sibling == nil {
		return first
	}
	a := first
	b := first.sibling
	rest := b.sibling
	a.sibling = nil
	b.sibling = nil
	return meld(meld(a, b), mergePairs(rest))
}

var _ Queue[int] = (*PairingHeap[int])(nil)
