package perfbench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
)

// This file is the artifact layer of the sharded experiment pipeline
// (schema version 4): shards of a harness experiment grid emit
// self-contained fragments — per-cell records plus enough metadata
// (experiment id, config fingerprint, total cell count, shard, host) to
// recombine them safely — and Merge folds any set of fragments into one
// validated report, independent of merge order.

// Cell statuses, mirrored from internal/harness (which this package
// must not import — harness depends on perfbench through the serving
// bench).
const (
	CellStatusOK      = "ok"
	CellStatusTimeout = "timeout"
	CellStatusError   = "error"
)

// HostInfo fingerprints the machine a fragment was measured on, so a
// merged multi-machine trajectory records where each shard ran.
type HostInfo struct {
	Hostname string `json:"hostname"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	NumCPU   int    `json:"num_cpu"`
	GoVer    string `json:"go_version,omitempty"`
}

// CollectHost fingerprints the current machine.
func CollectHost() *HostInfo {
	hn, _ := os.Hostname()
	if hn == "" {
		hn = "unknown"
	}
	return &HostInfo{
		Hostname: hn,
		OS:       runtime.GOOS,
		Arch:     runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
		GoVer:    runtime.Version(),
	}
}

// ShardInfo identifies which slice of the cell enumeration a fragment
// covers: cells with Index % Total == Index(shard) under the strided
// assignment, or an explicit cell list.
type ShardInfo struct {
	Index int `json:"index"`
	Total int `json:"total"`
}

// CellRecord is one experiment cell's outcome inside a fragment: the
// cell identity (index, key, kind, workload, scheduler, params,
// threads, seed — all deterministic given the config) plus the runner's
// status and measurements.
type CellRecord struct {
	Index     int    `json:"index"`
	Key       string `json:"key"`
	Kind      string `json:"kind"`
	Workload  string `json:"workload,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Params    string `json:"params,omitempty"`
	Threads   int    `json:"threads,omitempty"`
	Reps      int    `json:"reps,omitempty"`
	Seed      uint64 `json:"seed"`

	// Status is ok / timeout / error; Error carries the message for the
	// non-ok statuses. Attempts counts runs including timeout retries.
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`

	// DurationNs is the cell's metric duration, ElapsedNs its total
	// wall clock — the timing fields excluded from reproducibility
	// comparisons.
	DurationNs int64   `json:"duration_ns,omitempty"`
	ElapsedNs  int64   `json:"elapsed_ns,omitempty"`
	Tasks      uint64  `json:"tasks,omitempty"`
	Wasted     uint64  `json:"wasted,omitempty"`
	Remote     float64 `json:"remote,omitempty"`
	// Values carries experiment-specific scalars (simulation
	// statistics, serve metrics, graph stats).
	Values map[string]float64 `json:"values,omitempty"`
}

// ExperimentFragment is one shard's slice of one experiment grid. A
// fragment is self-contained: Experiment + Config identify the
// enumeration, TotalCells pins its length, and Cells carry their own
// indices — so fragments from different machines merge without access
// to the plan that produced them.
type ExperimentFragment struct {
	// Experiment is the harness registry id (e.g. "fig1").
	Experiment string `json:"experiment"`
	// Config is the RunConfig fingerprint the enumeration was built
	// from; fragments with different fingerprints never merge.
	Config string `json:"config"`
	// TotalCells is the full enumeration length, so merge can tell a
	// complete grid from a still-partial one.
	TotalCells int `json:"total_cells"`
	// Shard identifies the slice (nil for full single-process runs and
	// for merged fragments).
	Shard *ShardInfo `json:"shard,omitempty"`
	// Host is the producing machine's hostname (the full fingerprint
	// lives in the report's host/hosts sections).
	Host  string       `json:"host,omitempty"`
	Cells []CellRecord `json:"cells"`
}

// Complete reports whether the fragment covers its whole enumeration.
func (f *ExperimentFragment) Complete() bool {
	return len(f.Cells) == f.TotalCells
}

func validateFragment(f *ExperimentFragment) error {
	if f.Experiment == "" {
		return fmt.Errorf("perfbench: fragment with empty experiment id")
	}
	if f.Config == "" {
		return fmt.Errorf("perfbench: fragment %s: empty config fingerprint", f.Experiment)
	}
	if f.TotalCells <= 0 {
		return fmt.Errorf("perfbench: fragment %s: total_cells = %d", f.Experiment, f.TotalCells)
	}
	if len(f.Cells) == 0 {
		return fmt.Errorf("perfbench: fragment %s: no cells", f.Experiment)
	}
	if len(f.Cells) > f.TotalCells {
		return fmt.Errorf("perfbench: fragment %s: %d cells exceed total_cells %d",
			f.Experiment, len(f.Cells), f.TotalCells)
	}
	if f.Shard != nil && (f.Shard.Total < 1 || f.Shard.Index < 0 || f.Shard.Index >= f.Shard.Total) {
		return fmt.Errorf("perfbench: fragment %s: shard %d/%d out of range",
			f.Experiment, f.Shard.Index, f.Shard.Total)
	}
	seen := make(map[int]bool, len(f.Cells))
	for _, c := range f.Cells {
		if c.Index < 0 || c.Index >= f.TotalCells {
			return fmt.Errorf("perfbench: fragment %s: cell index %d outside [0, %d)",
				f.Experiment, c.Index, f.TotalCells)
		}
		if seen[c.Index] {
			return fmt.Errorf("perfbench: fragment %s: duplicate cell index %d", f.Experiment, c.Index)
		}
		seen[c.Index] = true
		if c.Key == "" {
			return fmt.Errorf("perfbench: fragment %s: cell %d with empty key", f.Experiment, c.Index)
		}
		switch c.Status {
		case CellStatusOK, CellStatusTimeout, CellStatusError:
		default:
			return fmt.Errorf("perfbench: fragment %s: cell %d (%s): unknown status %q",
				f.Experiment, c.Index, c.Key, c.Status)
		}
		if c.Status != CellStatusOK && c.Error == "" {
			return fmt.Errorf("perfbench: fragment %s: cell %d (%s): status %s without error message",
				f.Experiment, c.Index, c.Key, c.Status)
		}
	}
	return nil
}

// fragGroupKey groups fragments that describe slices of the same grid.
type fragGroupKey struct {
	experiment string
	config     string
}

// Merge combines fragment reports into one validated report. It is
// commutative: the output's canonical ordering (experiments by
// id+config, cells by index, microbenchmark/serve results by scheduler
// name, hosts by hostname) makes Merge(A, B) byte-identical to
// Merge(B, A). Fragments of the same experiment+config must agree on
// TotalCells, must not overlap, and must jointly cover the whole
// enumeration; duplicate scheduler entries across reports are an error
// (re-running a shard produces a replacement fragment, not a mergeable
// one).
func Merge(reports []*Report) (*Report, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("perfbench: merge of zero reports")
	}
	for i, r := range reports {
		if err := Validate(r); err != nil {
			return nil, fmt.Errorf("perfbench: merge input %d: %w", i, err)
		}
	}

	out := &Report{
		SchemaVersion: SchemaVersion,
		GeneratedBy:   "benchcheck merge",
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		MergedFrom:    len(reports),
	}

	// Microbenchmark, serve, and desim sections: union, duplicates
	// rejected.
	seenRes := map[string]bool{}
	seenServe := map[string]bool{}
	seenDesim := map[string]bool{}
	for _, r := range reports {
		for _, res := range r.Results {
			if seenRes[res.Scheduler] {
				return nil, fmt.Errorf("perfbench: merge: duplicate microbenchmark result for %q", res.Scheduler)
			}
			seenRes[res.Scheduler] = true
			out.Results = append(out.Results, res)
			// The run parameters travel with the results; all fragments
			// of one microbenchmark share them.
			if out.Workers == 0 {
				out.Workers, out.Prefill, out.OpsPerWorker = r.Workers, r.Prefill, r.OpsPerWorker
				out.Seed, out.Reps, out.BatchSize, out.LatencyOps = r.Seed, r.Reps, r.BatchSize, r.LatencyOps
			}
		}
		for _, sr := range r.Serve {
			if seenServe[sr.Scheduler] {
				return nil, fmt.Errorf("perfbench: merge: duplicate serve result for %q", sr.Scheduler)
			}
			seenServe[sr.Scheduler] = true
			out.Serve = append(out.Serve, sr)
		}
		for _, dr := range r.Desim {
			key := dr.Scheduler + "\x00" + dr.Model
			if seenDesim[key] {
				return nil, fmt.Errorf("perfbench: merge: duplicate desim result for %q on %q", dr.Scheduler, dr.Model)
			}
			seenDesim[key] = true
			out.Desim = append(out.Desim, dr)
		}
	}
	sort.Slice(out.Results, func(i, j int) bool { return out.Results[i].Scheduler < out.Results[j].Scheduler })
	sort.Slice(out.Serve, func(i, j int) bool { return out.Serve[i].Scheduler < out.Serve[j].Scheduler })
	sort.Slice(out.Desim, func(i, j int) bool {
		a, b := out.Desim[i], out.Desim[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		return a.Scheduler < b.Scheduler
	})

	// Experiment fragments: group by (experiment, config), union cells.
	groups := map[fragGroupKey]*ExperimentFragment{}
	var order []fragGroupKey
	for _, r := range reports {
		for fi := range r.Experiments {
			f := &r.Experiments[fi]
			k := fragGroupKey{f.Experiment, f.Config}
			g, ok := groups[k]
			if !ok {
				g = &ExperimentFragment{Experiment: f.Experiment, Config: f.Config, TotalCells: f.TotalCells}
				groups[k] = g
				order = append(order, k)
			}
			if g.TotalCells != f.TotalCells {
				return nil, fmt.Errorf("perfbench: merge: %s: fragments disagree on total_cells (%d vs %d)",
					f.Experiment, g.TotalCells, f.TotalCells)
			}
			g.Cells = append(g.Cells, f.Cells...)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].experiment != order[j].experiment {
			return order[i].experiment < order[j].experiment
		}
		return order[i].config < order[j].config
	})
	for _, k := range order {
		g := groups[k]
		sort.Slice(g.Cells, func(i, j int) bool { return g.Cells[i].Index < g.Cells[j].Index })
		seen := make(map[int]string, len(g.Cells))
		for _, c := range g.Cells {
			if prev, dup := seen[c.Index]; dup {
				return nil, fmt.Errorf("perfbench: merge: %s: cell %d present in multiple fragments (%s)",
					g.Experiment, c.Index, prev)
			}
			seen[c.Index] = c.Key
		}
		if !g.Complete() {
			var missing []int
			for i := 0; i < g.TotalCells && len(missing) < 8; i++ {
				if _, ok := seen[i]; !ok {
					missing = append(missing, i)
				}
			}
			return nil, fmt.Errorf("perfbench: merge: %s: %d of %d cells covered (missing %v...)",
				g.Experiment, len(g.Cells), g.TotalCells, missing)
		}
		out.Experiments = append(out.Experiments, *g)
	}

	// Host fingerprints: union of every input's host/hosts, deduplicated
	// and sorted.
	hostSeen := map[HostInfo]bool{}
	for _, r := range reports {
		hs := r.Hosts
		if r.Host != nil {
			hs = append([]HostInfo{*r.Host}, hs...)
		}
		for _, h := range hs {
			if !hostSeen[h] {
				hostSeen[h] = true
				out.Hosts = append(out.Hosts, h)
			}
		}
	}
	sort.Slice(out.Hosts, func(i, j int) bool {
		if out.Hosts[i].Hostname != out.Hosts[j].Hostname {
			return out.Hosts[i].Hostname < out.Hosts[j].Hostname
		}
		return out.Hosts[i].NumCPU < out.Hosts[j].NumCPU
	})

	if err := Validate(out); err != nil {
		return nil, fmt.Errorf("perfbench: merged report invalid: %w", err)
	}
	return out, nil
}
