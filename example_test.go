package smq_test

import (
	"fmt"
	"sort"

	smq "repro"
)

// A single worker using the Stealing Multi-Queue as a priority queue.
// With one worker there is nobody to steal from, so the only relaxation
// is the stealing buffer holding the current top batch: the multiset
// popped is always exactly the multiset pushed.
func ExampleNewStealingMQ() {
	s := smq.NewStealingMQ[string](smq.SMQConfig{Workers: 1})
	w := s.Worker(0)
	w.Push(30, "low")
	w.Push(10, "high")
	w.Push(20, "mid")

	var got []uint64
	for {
		p, _, ok := w.Pop()
		if !ok {
			break
		}
		got = append(got, p)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	fmt.Println(got)
	// Output: [10 20 30]
}

// Shortest paths over the SMQ match Dijkstra exactly: relaxation affects
// only how much work is wasted, never the result.
func ExampleSSSP() {
	g, _ := smq.BuildGraph(3, []smq.GraphEdge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 0, V: 2, W: 7}, // the direct road loses to the detour
	}, nil)
	s := smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: 2})
	dist, _ := smq.SSSP(g, 0, s)
	fmt.Println(dist)
	// Output: [0 1 3]
}

// The rank model validates Theorem 1: with constant stealing probability
// the mean removed rank stays within the theorem's O(n/p·log(1/p)) bound.
func ExampleRunRankModel() {
	res := smq.RunRankModel(smq.RankModelConfig{
		Queues:    16,
		Elements:  100000,
		StealProb: 0.25,
		Seed:      1,
	})
	bound := smq.RankTheoremBound(16, 1, 0.25, 0)
	fmt.Println("within bound:", res.MeanRemovedRank < bound)
	// Output: within bound: true
}

// The classic Multi-Queue (Listing 1 of the paper) through the same API.
func ExampleNewClassicMultiQueue() {
	s := smq.NewClassicMultiQueue[int](1, 4)
	w := s.Worker(0)
	for i := 5; i >= 1; i-- {
		w.Push(uint64(i), i)
	}
	sum := 0
	for {
		_, v, ok := w.Pop()
		if !ok {
			break
		}
		sum += v
	}
	fmt.Println(sum)
	// Output: 15
}
