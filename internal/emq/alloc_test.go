//go:build !race

// testing.AllocsPerRun under the race detector measures the
// instrumentation's allocations, not the scheduler's; CI runs these
// through a dedicated non-race step.

package emq

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/xrand"
)

// TestSteadyStateAllocFree asserts the zero-alloc steady state of the
// engineered MultiQueue: with warm insertion/deletion buffers and
// pre-grown heaps, buffered pop→push pairs must never touch the
// allocator (the operation buffers exist precisely to amortize shared
// structure access, and an allocation per op would dwarf what they
// save).
func TestSteadyStateAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":    {Workers: 1},
		"no_buffers": {Workers: 1, Stickiness: 1, InsertBuffer: 1, DeleteBuffer: 1},
		"big":        {Workers: 1, C: 4, Stickiness: 64, InsertBuffer: 64, DeleteBuffer: 64},
	} {
		t.Run(name, func(t *testing.T) {
			s := New[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			for i := 0; i < 4096; i++ {
				w.Push(uint64(rng.Intn(1<<20)), i)
			}
			for i := 0; i < 2048; i++ {
				w.Pop()
			}
			allocs := testing.AllocsPerRun(2000, func() {
				p, v, ok := w.Pop()
				if !ok {
					w.Push(uint64(rng.Intn(1<<20)), 0)
					return
				}
				w.Push(p+uint64(rng.Intn(64)), v)
			})
			if allocs != 0 {
				t.Fatalf("steady-state pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestSteadyStateBatchAllocFree asserts the zero-alloc steady state of
// the engineered MultiQueue bulk operations: PopN fills the caller's
// slice directly through the refill path (no intermediate buffer) and
// PushN rides the insertion buffer, so a warm pair must never allocate.
func TestSteadyStateBatchAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default": {Workers: 1},
		"big":     {Workers: 1, C: 4, Stickiness: 64, InsertBuffer: 64, DeleteBuffer: 64},
	} {
		t.Run(name, func(t *testing.T) {
			s := New[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			for i := 0; i < 4096; i++ {
				w.Push(uint64(rng.Intn(1<<20)), i)
			}
			for i := 0; i < 2048; i++ {
				w.Pop()
			}
			const batch = 16
			dst := make([]sched.Task[int], batch)
			ps := make([]uint64, 0, batch)
			vs := make([]int, 0, batch)
			runBatchPair(w, dst, &ps, &vs, rng) // warm the scratch
			allocs := testing.AllocsPerRun(2000, func() {
				runBatchPair(w, dst, &ps, &vs, rng)
			})
			if allocs != 0 {
				t.Fatalf("steady-state batch pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// runBatchPair is one steady-state PopN→PushN round: re-insert every
// popped task with a fresh priority, reseeding on an empty batch.
func runBatchPair(w sched.Worker[int], dst []sched.Task[int], ps *[]uint64, vs *[]int, rng *xrand.Rand) {
	k := w.PopN(dst)
	*ps, *vs = (*ps)[:0], (*vs)[:0]
	if k == 0 {
		*ps = append(*ps, uint64(rng.Intn(1<<20)))
		*vs = append(*vs, 0)
	} else {
		for i := 0; i < k; i++ {
			*ps = append(*ps, uint64(rng.Intn(1<<20)))
			*vs = append(*vs, dst[i].V)
		}
	}
	w.PushN(*ps, *vs)
}
