package mq

import (
	"testing"
	"unsafe"
)

// TestLockQueuePadding pins the hand-computed pad in lockQueue: queues
// live in a contiguous slice, so the false-sharing-free layout depends
// on the element size being exactly a cache-line multiple.
func TestLockQueuePadding(t *testing.T) {
	if sz := unsafe.Sizeof(lockQueue[int]{}); sz%64 != 0 {
		t.Fatalf("lockQueue size %d is not a multiple of 64; fix the pad array", sz)
	}
}

// TestWorkerPadding checks that adjacent workers in the contiguous
// workers slice cannot share a cache line through their hot mutable
// fields (lastIns/lastDel/delIdx).
func TestWorkerPadding(t *testing.T) {
	ws := make([]mqWorker[int], 2)
	a := uintptr(unsafe.Pointer(&ws[0].lastIns))
	b := uintptr(unsafe.Pointer(&ws[1].lastIns))
	if b-a < 64 {
		t.Fatalf("adjacent workers' hot fields only %d bytes apart, want >= 64", b-a)
	}
}
