package sched_test

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// TestBackoffSleepTierCapsIterationRate proves the idle-CPU fix: a
// worker stuck in Wait must end up sleeping, so a fixed wall-clock
// window admits only a bounded number of backoff steps. The old
// busy-spin/Gosched loop ran millions of iterations in the same window
// (100% of a core); the sleep tier caps it near window/1ms plus the
// spin and yield tiers.
func TestBackoffSleepTierCapsIterationRate(t *testing.T) {
	var b sched.Backoff
	const window = 100 * time.Millisecond
	deadline := time.Now().Add(window)
	iters := 0
	for time.Now().Before(deadline) {
		b.Wait()
		iters++
	}
	// 24 pre-sleep steps + sleep steps at >= 20µs each: the absolute
	// ceiling is ~24 + 100ms/20µs = ~5000, and after the ramp reaches
	// the 1ms cap the steady rate is ~100. Anything remotely spin-like
	// is millions. Assert a comfortable middle bound.
	if iters > 20000 {
		t.Fatalf("Backoff ran %d steps in %v: not sleeping (busy-spin regression)", iters, window)
	}
	if !b.Sleeping() {
		t.Fatalf("Backoff not in sleep tier after %d sustained steps", iters)
	}
}

// TestBackoffResetReturnsToSpinTier checks that a successful pop resets
// the escalation: the first Wait after Reset must be a cheap busy pause,
// not a sleep — otherwise every burst would pay a wake-up tax per task.
func TestBackoffResetReturnsToSpinTier(t *testing.T) {
	var b sched.Backoff
	for i := 0; i < 100; i++ {
		b.Wait()
	}
	if !b.Sleeping() {
		t.Fatal("expected sleep tier after 100 steps")
	}
	b.Reset()
	if b.Sleeping() {
		t.Fatal("Reset did not clear the sleep tier")
	}
	start := time.Now()
	b.Wait()
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("first Wait after Reset took %v: should be a busy pause, not a sleep", d)
	}
}

// TestPendingQuiescenceVsEmptiness pins the split contract: Done is
// emptiness (momentarily idle), Quiesced is drained-and-closed.
func TestPendingQuiescenceVsEmptiness(t *testing.T) {
	var p sched.Pending
	if !p.Done() {
		t.Fatal("zero Pending should report Done (empty)")
	}
	if p.Quiesced() {
		t.Fatal("unclosed Pending must never report Quiesced, even when empty")
	}
	p.Inc(2)
	if p.Done() || p.Quiesced() {
		t.Fatal("in-flight tasks: neither Done nor Quiesced")
	}
	p.Close()
	if !p.Closed() {
		t.Fatal("Closed not visible after Close")
	}
	if p.Quiesced() {
		t.Fatal("closed but undrained Pending must not report Quiesced")
	}
	p.Dec()
	p.Dec()
	if !p.Done() || !p.Quiesced() {
		t.Fatal("closed and drained: both Done and Quiesced must hold")
	}
	// Workers may still register follow-on tasks after Close (Inc
	// before the parent's Dec keeps the count positive in real runs).
	p.Inc(1)
	if p.Quiesced() {
		t.Fatal("follow-on task after Close must suppress Quiesced")
	}
	p.Dec()
	if !p.Quiesced() {
		t.Fatal("drained again: Quiesced must hold")
	}
}
