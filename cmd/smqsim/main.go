// Command smqsim runs discrete-event simulations through the scheduler
// zoo (internal/desim) with the full parameter set, and writes the
// schema-versioned perfbench JSON trajectory.
//
// Usage:
//
//	smqsim -out - -workers 4
//	smqsim -out BENCH_PR8.json -events 2000000 -schedulers coarse,smq,klsm
//	smqsim -out - -models dag -layers 512 -width 512
//	smqsim -list
//
// Every scheduler simulates every requested model with a fresh model
// instance; the causality window is the scheduler's own rank-error
// bound at the chosen worker count (schedulers without a usable bound
// run unchecked). The emitted report is validated before writing — the
// zero-violations rule for exact bounds and the cross-scheduler
// checksum identity are hard failures, not footnotes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/desim"
	"repro/internal/perfbench"
	"repro/internal/zoo"
)

func main() {
	var (
		out        = flag.String("out", "-", "report path ('-' for stdout)")
		list       = flag.Bool("list", false, "list zoo scheduler names with their rank bounds and exit")
		workers    = flag.Int("workers", 0, "simulation workers (default GOMAXPROCS)")
		schedulers = flag.String("schedulers", "", "comma-separated zoo subset (default: full lineup)")
		models     = flag.String("models", "", "comma-separated model subset (cluster,dag; default both)")
		events     = flag.Int("events", 0, "approximate events per cluster run (default 2000000)")
		stations   = flag.Int("stations", 0, "cluster service stations (default 64)")
		tenants    = flag.Int("tenants", 0, "cluster tenants (default 8)")
		layers     = flag.Int("layers", 0, "dag layers (default 256)")
		width      = flag.Int("width", 0, "dag layer width (default 256)")
		seed       = flag.Uint64("seed", 1, "simulation RNG seed")
	)
	flag.Parse()

	if *list {
		w := *workers
		if w <= 0 {
			w = 4
		}
		renderSchedulerList(os.Stdout, w)
		return
	}

	cfg := desim.BenchConfig{
		Workers:     *workers,
		Events:      *events,
		Stations:    *stations,
		Tenants:     *tenants,
		Layers:      *layers,
		Width:       *width,
		Seed:        *seed,
		GeneratedBy: "smqsim",
	}
	for _, s := range strings.Split(*schedulers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			cfg.Schedulers = append(cfg.Schedulers, s)
		}
	}
	for _, m := range strings.Split(*models, ",") {
		if m = strings.TrimSpace(m); m != "" {
			cfg.Models = append(cfg.Models, m)
		}
	}

	start := time.Now()
	report, err := desim.RunBench(cfg)
	if err != nil {
		fatal(err)
	}
	data, err := perfbench.Marshal(report)
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		_, err = os.Stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "smqsim: %d runs in %v\n", len(report.Desim), time.Since(start).Round(time.Millisecond))
}

// renderSchedulerList writes the -list table: every zoo scheduler with
// its rank bound at the given worker count, its bound source, and its
// parameter summary. A tabwriter keeps the columns aligned regardless
// of name length (fixed printf widths silently broke once names like
// "cbpq-elim" and long parameter strings joined the lineup).
func renderSchedulerList(out io.Writer, workers int) {
	tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tbound\tsource\tparams")
	for _, s := range zoo.Lineup[struct{}]() {
		bound, exact := s.RankBound(workers)
		bs := "—"
		if bound >= 0 {
			bs = fmt.Sprint(bound)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", s.Name, bs, desim.BoundSource(bound, exact), s.Params)
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smqsim:", err)
	os.Exit(1)
}
