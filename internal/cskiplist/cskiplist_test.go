package cskiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pq"
	"repro/internal/xrand"
)

func TestEmpty(t *testing.T) {
	s := New[int](1)
	if !s.Empty() {
		t.Fatal("new list not Empty")
	}
	if s.Top() != pq.InfPriority {
		t.Fatalf("Top on empty = %d", s.Top())
	}
	if _, _, ok := s.DeleteMin(); ok {
		t.Fatal("DeleteMin on empty returned ok")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSequentialSortedExtraction(t *testing.T) {
	s := New[int](2)
	rng := rand.New(rand.NewSource(3))
	const n = 3000
	want := make([]uint64, n)
	for i := 0; i < n; i++ {
		p := uint64(rng.Intn(400)) // force duplicates
		want[i] = p
		s.Insert(p, i)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := 0; i < n; i++ {
		if top := s.Top(); top != want[i] {
			t.Fatalf("Top at %d = %d, want %d", i, top, want[i])
		}
		p, _, ok := s.DeleteMin()
		if !ok || p != want[i] {
			t.Fatalf("DeleteMin at %d = (%d,%v), want %d", i, p, ok, want[i])
		}
	}
	if !s.Empty() {
		t.Fatal("list not empty after draining")
	}
}

func TestValuesPreserved(t *testing.T) {
	s := New[int](5)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Insert(uint64(i%13), i)
	}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		_, v, ok := s.DeleteMin()
		if !ok || v < 0 || v >= n || seen[v] {
			t.Fatalf("value %d lost/duplicated (ok=%v)", v, ok)
		}
		seen[v] = true
	}
}

func TestDeleteMinBatch(t *testing.T) {
	s := New[int](7)
	for i := 10; i > 0; i-- {
		s.Insert(uint64(i), i)
	}
	got := s.DeleteMinBatch(4, nil)
	if len(got) != 4 {
		t.Fatalf("batch len = %d", len(got))
	}
	for i, it := range got {
		if it.P != uint64(i+1) {
			t.Errorf("batch[%d].P = %d, want %d", i, it.P, i+1)
		}
	}
	rest := s.DeleteMinBatch(100, nil)
	if len(rest) != 6 {
		t.Fatalf("drain batch len = %d, want 6", len(rest))
	}
}

func TestCollectAscending(t *testing.T) {
	s := New[int](11)
	for _, p := range []uint64{5, 1, 9, 1, 7} {
		s.Insert(p, int(p))
	}
	got := s.CollectAscending(nil)
	if len(got) != 5 {
		t.Fatalf("collected %d items", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].P < got[i-1].P {
			t.Fatalf("not ascending: %v", got)
		}
	}
}

func TestQuickMultisetSemantics(t *testing.T) {
	// Property: DeleteMin drains exactly the inserted multiset in sorted
	// order, for arbitrary inputs.
	f := func(ps []uint16) bool {
		s := New[int](99)
		want := make([]uint64, len(ps))
		for i, p := range ps {
			want[i] = uint64(p)
			s.Insert(uint64(p), i)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			p, _, ok := s.DeleteMin()
			if !ok || p != w {
				return false
			}
		}
		_, _, ok := s.DeleteMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInserts(t *testing.T) {
	s := New[int](13)
	const workers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w))
			for i := 0; i < per; i++ {
				s.Insert(uint64(rng.Intn(1000)), w*per+i)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*per)
	}
	// Drain and verify count + sortedness.
	prev := uint64(0)
	count := 0
	for {
		p, _, ok := s.DeleteMin()
		if !ok {
			break
		}
		if p < prev {
			t.Fatalf("out of order: %d after %d", p, prev)
		}
		prev = p
		count++
	}
	if count != workers*per {
		t.Fatalf("drained %d, want %d", count, workers*per)
	}
}

func TestConcurrentMixed(t *testing.T) {
	// Producers insert; consumers DeleteMin concurrently. Every value
	// must be extracted exactly once.
	s := New[int](17)
	const producers, consumers = 4, 4
	const per = 3000
	total := producers * per
	var wg sync.WaitGroup
	results := make(chan int, total)
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 100))
			for i := 0; i < per; i++ {
				s.Insert(uint64(rng.Intn(5000)), w*per+i)
			}
		}(w)
	}
	var consumed sync.WaitGroup
	var got sync.Map
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		consumed.Add(1)
		go func() {
			defer consumed.Done()
			for {
				_, v, ok := s.DeleteMin()
				if ok {
					if _, dup := got.LoadOrStore(v, true); dup {
						t.Errorf("value %d extracted twice", v)
						return
					}
					results <- v
					continue
				}
				select {
				case <-stop:
					// Final drain after producers are done.
					for {
						_, v, ok := s.DeleteMin()
						if !ok {
							return
						}
						if _, dup := got.LoadOrStore(v, true); dup {
							t.Errorf("value %d extracted twice", v)
							return
						}
						results <- v
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	consumed.Wait()
	close(results)
	count := 0
	for range results {
		count++
	}
	if count != total {
		t.Fatalf("extracted %d values, want %d", count, total)
	}
}

func TestSprayBasic(t *testing.T) {
	s := New[int](19)
	const n = 2000
	for i := 0; i < n; i++ {
		s.Insert(uint64(i), i)
	}
	rng := xrand.New(1)
	params := DefaultSprayParams(8)
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		_, v, ok := s.Spray(params, rng)
		if !ok {
			t.Fatalf("Spray reported empty with %d items left", n-i)
		}
		if seen[v] {
			t.Fatalf("value %d sprayed twice", v)
		}
		seen[v] = true
	}
	if _, _, ok := s.Spray(params, rng); ok {
		t.Fatal("Spray on empty returned ok")
	}
}

func TestSprayNearFront(t *testing.T) {
	// Spray must return elements whose rank is small relative to the
	// list size — that is its entire point. Insert 0..n-1, spray once,
	// and check the removed rank is within the spray window.
	const n = 100000
	s := New[int](23)
	for i := 0; i < n; i++ {
		s.Insert(uint64(i), i)
	}
	rng := xrand.New(7)
	params := DefaultSprayParams(8)
	maxSeen := 0
	for i := 0; i < 200; i++ {
		_, v, ok := s.Spray(params, rng)
		if !ok {
			t.Fatal("unexpected empty")
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	// Window: with height h and jump length h+1 per layer, the walk can
	// pass at most ~(h+1)·2^h... in practice ranks stay tiny vs n. Use a
	// generous bound that still proves near-front behaviour.
	if maxSeen > n/10 {
		t.Fatalf("spray returned rank %d out of %d — not near-front", maxSeen, n)
	}
}

func TestConcurrentSpray(t *testing.T) {
	s := New[int](29)
	const n = 8000
	for i := 0; i < n; i++ {
		s.Insert(uint64(i), i)
	}
	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make([]bool, n)
	count := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w + 500))
			params := DefaultSprayParams(workers)
			for {
				_, v, ok := s.Spray(params, rng)
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("value %d sprayed twice", v)
					return
				}
				seen[v] = true
				count++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if count != n {
		t.Fatalf("sprayed %d values, want %d", count, n)
	}
}

func TestTopTracksMin(t *testing.T) {
	s := New[int](31)
	s.Insert(10, 0)
	s.Insert(5, 1)
	if s.Top() != 5 {
		t.Fatalf("Top = %d, want 5", s.Top())
	}
	s.DeleteMin()
	if s.Top() != 10 {
		t.Fatalf("Top = %d, want 10", s.Top())
	}
}

func BenchmarkInsertDeleteMin(b *testing.B) {
	s := New[int](1)
	for i := 0; i < 1024; i++ {
		s.Insert(uint64(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, v, _ := s.DeleteMin()
		s.Insert(p+64, v)
	}
}

func BenchmarkConcurrentDeleteMin(b *testing.B) {
	s := New[int](1)
	for i := 0; i < b.N+1024; i++ {
		s.Insert(uint64(i), i)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.DeleteMin()
		}
	})
}

func BenchmarkConcurrentSpray(b *testing.B) {
	s := New[int](1)
	for i := 0; i < b.N+1024; i++ {
		s.Insert(uint64(i), i)
	}
	params := DefaultSprayParams(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := xrand.New(42)
		for pb.Next() {
			s.Spray(params, rng)
		}
	})
}
