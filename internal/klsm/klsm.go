// Package klsm implements the k-LSM relaxed priority queue of Wimmer,
// Gruber, Träff and Tsigas ("The Lock-Free k-LSM Relaxed Priority
// Queue", PPoPP 2015) — the strongest published baseline of the SMQ
// paper's lineup that is not a Multi-Queue derivative. Where the
// Multi-Queue family relaxes by sampling among many heaps, the k-LSM
// relaxes by buffering: it is a log-structured merge (LSM) data
// structure whose relaxation is an explicit capacity bound.
//
// # Local/global LSM split
//
// Every worker owns a thread-local LSM: a short list of sorted blocks
// whose live sizes decrease geometrically front to back. An insert
// appends a singleton block and merges trailing blocks while the last
// is at least as large as its predecessor — the classic LSM discipline,
// amortized O(log k) comparisons per insert, entirely lock- and
// atomics-free because the structure is single-owner.
//
// The local LSM may hold at most k = Config.Relaxation tasks. When an
// insert overflows the bound, the largest local blocks are spilled —
// as whole sorted blocks, under one lock acquisition — into the shared
// global LSM, which all workers' overflow feeds. Spilling whole blocks
// is what makes the LSM layout pay off: the global merge consumes a
// sorted run in O(block) instead of re-heapifying item by item. The
// global LSM caches its minimum priority in an atomic word so that
// DeleteMin can compare against it without taking the lock.
//
// # Relaxed DeleteMin and the rank-error bound
//
// Pop inspects the two minima this worker can see: its local LSM's
// minimum and the global LSM's cached minimum. If the local minimum is
// at least as good, it is removed without any synchronization;
// otherwise the global minimum is removed under the global lock. A
// local removal may therefore skip tasks that are globally better but
// live in other workers' local LSMs: at most k per other worker, so a
// returned task is, at removal time, no worse than rank
// (P−1)·k + P with P workers (the additive P covers tasks already
// removed but still being processed). Relaxation = Strict (k = 0)
// forces every insert straight into the global LSM and every delete
// through the global lock, degenerating to an exact, strictly ordered
// queue — the same semantics as the coarse-locked baseline — which
// pins the relaxed configurations' behaviour in tests.
//
// Pop may also spuriously report emptiness while tasks sit in other
// workers' local LSMs; algorithms handle this with the sched.Pending
// protocol, and a worker can always recover its own buffered tasks.
package klsm

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/contend"
	"repro/internal/pq"
	"repro/internal/sched"
)

// Strict is the Relaxation value selecting the exact k = 0
// configuration: no local buffering, every operation on the global LSM,
// strict priority order. (The zero Relaxation value selects the relaxed
// default instead, following this module's zero-value-default
// convention.)
const Strict = -1

// DefaultRelaxation is the local-LSM capacity used when
// Config.Relaxation is zero (k = 256, the k-LSM paper's headline
// configuration).
const DefaultRelaxation = 256

// Config parameterizes the k-LSM scheduler.
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// Relaxation is k, the maximum number of tasks a worker's local LSM
	// may hold — and therefore the per-worker bound on how many better
	// tasks a relaxed DeleteMin may skip. Zero selects
	// DefaultRelaxation; Strict selects the exact k = 0 configuration;
	// any other negative value is invalid.
	Relaxation int
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive and Relaxation must be Strict, zero
// (default) or a positive k. New panics with exactly this error on an
// invalid configuration, so callers that must not panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("klsm: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.Relaxation < Strict {
		return fmt.Errorf("klsm: Config.Relaxation = %d, must be Strict (%d), 0 (default) or positive",
			c.Relaxation, Strict)
	}
	return nil
}

// withDefaults returns a copy with the zero Relaxation replaced by
// DefaultRelaxation and the Strict sentinel resolved to the exact
// k = 0 configuration. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.Relaxation == 0 {
		c.Relaxation = DefaultRelaxation
	}
	if c.Relaxation < 0 {
		c.Relaxation = 0
	}
	return c
}

func (c *Config) normalize() {
	if err := c.Validate(); err != nil {
		panic(err.Error())
	}
	*c = c.withDefaults()
}

// block is one sorted run of an LSM: items[head:] are live, ascending
// by priority.
type block[T any] struct {
	items []pq.Item[T]
	head  int
}

func (b *block[T]) size() int { return len(b.items) - b.head }

func (b *block[T]) top() uint64 {
	if b.head >= len(b.items) {
		return pq.InfPriority
	}
	return b.items[b.head].P
}

// maxFreeBlocks bounds each LSM's block pool. Merging two blocks frees
// two and allocates one, so a small pool absorbs the whole steady-state
// churn; anything beyond it is released to the GC.
const maxFreeBlocks = 8

// lsm is a log-structured merge structure: blocks ordered oldest (and
// largest) first, live sizes decreasing geometrically. It is not
// synchronized; the local LSMs are single-owner and the global LSM
// wraps one behind a mutex.
//
// Merged-away blocks are recycled through a per-LSM slab pool instead
// of being dropped to the allocator: every Push creates a singleton
// block and the merge discipline constantly retires blocks, which made
// the merge path the repository's only steady-state allocation site
// (~3 allocs per insert). Pools are per-LSM, so recycling needs no
// synchronization beyond what already guards the LSM itself.
type lsm[T any] struct {
	blocks []*block[T]
	n      int // total live tasks
	free   []*block[T]
}

// getBlock returns a recycled block whose backing array can hold n
// items, growing a pooled slab if necessary; the returned block has
// head 0 and empty items.
func (l *lsm[T]) getBlock(n int) *block[T] {
	if len(l.free) == 0 {
		return &block[T]{items: make([]pq.Item[T], 0, n)}
	}
	b := l.free[len(l.free)-1]
	l.free[len(l.free)-1] = nil
	l.free = l.free[:len(l.free)-1]
	if cap(b.items) < n {
		b.items = make([]pq.Item[T], 0, n)
	}
	return b
}

// putBlock recycles a block's header and backing array, zeroing every
// slot (including the consumed prefix) so pooled slabs never pin task
// payloads.
func (l *lsm[T]) putBlock(b *block[T]) {
	if len(l.free) >= maxFreeBlocks {
		return
	}
	clear(b.items[:cap(b.items)])
	b.items = b.items[:0]
	b.head = 0
	l.free = append(l.free, b)
}

// mergeBlocks merges the live runs of a and b into a block drawn from
// the pool, recycling both inputs.
func (l *lsm[T]) mergeBlocks(a, b *block[T]) *block[T] {
	nb := l.getBlock(a.size() + b.size())
	out := nb.items
	i, j := a.head, b.head
	for i < len(a.items) && j < len(b.items) {
		if a.items[i].P <= b.items[j].P {
			out = append(out, a.items[i])
			i++
		} else {
			out = append(out, b.items[j])
			j++
		}
	}
	out = append(out, a.items[i:]...)
	out = append(out, b.items[j:]...)
	nb.items = out
	l.putBlock(a)
	l.putBlock(b)
	return nb
}

// insertItem appends a singleton block and restores the geometric size
// invariant by merging trailing blocks.
func (l *lsm[T]) insertItem(p uint64, v T) {
	nb := l.getBlock(1)
	nb.items = append(nb.items, pq.Item[T]{P: p, V: v})
	l.insertBlock(nb)
}

// insertBlock adds a sorted block, then merges while the last block has
// grown to at least its predecessor's size (the LSM merge discipline).
// The block's ownership transfers to l (it may be recycled into l's
// pool by a later merge), so callers must not retain it.
func (l *lsm[T]) insertBlock(nb *block[T]) {
	if nb.size() == 0 {
		return
	}
	l.n += nb.size()
	l.blocks = append(l.blocks, nb)
	for len(l.blocks) >= 2 {
		last := l.blocks[len(l.blocks)-1]
		prev := l.blocks[len(l.blocks)-2]
		if last.size() < prev.size() {
			break
		}
		l.blocks[len(l.blocks)-2] = l.mergeBlocks(prev, last)
		l.blocks[len(l.blocks)-1] = nil
		l.blocks = l.blocks[:len(l.blocks)-1]
	}
}

// min returns the best live priority, or InfPriority when empty. The
// scan is over O(log n) block heads.
func (l *lsm[T]) min() uint64 {
	best := uint64(pq.InfPriority)
	for _, b := range l.blocks {
		if t := b.top(); t < best {
			best = t
		}
	}
	return best
}

// pop removes and returns the minimum-priority task.
func (l *lsm[T]) pop() (pq.Item[T], bool) {
	bi := -1
	best := uint64(pq.InfPriority)
	for i, b := range l.blocks {
		if t := b.top(); t < best {
			best, bi = t, i
		}
	}
	var zero pq.Item[T]
	if bi < 0 {
		return zero, false
	}
	b := l.blocks[bi]
	it := b.items[b.head]
	b.items[b.head] = zero // release the payload for GC
	b.head++
	l.n--
	if b.size() == 0 {
		l.blocks = append(l.blocks[:bi], l.blocks[bi+1:]...)
		l.putBlock(b)
	}
	return it, true
}

// removeLargest detaches the block with the most live tasks (the spill
// unit). Returns nil when empty.
func (l *lsm[T]) removeLargest() *block[T] {
	bi := -1
	size := 0
	for i, b := range l.blocks {
		if b.size() > size {
			size, bi = b.size(), i
		}
	}
	if bi < 0 {
		return nil
	}
	b := l.blocks[bi]
	l.blocks = append(l.blocks[:bi], l.blocks[bi+1:]...)
	l.n -= b.size()
	return b
}

// globalLSM is the shared spill target: one LSM behind a try-first
// spinlock, its minimum priority mirrored in an atomic word for
// lock-free peeking. The lock word and the peeked top are the two
// cross-worker contention points, so each gets its own cache line —
// including a leading pad, so that embedding globalLSM after other
// fields (KLSM.cfg, which every Push reads) cannot put those fields on
// the lock word's line. TestGlobalLSMLayout pins this.
type globalLSM[T any] struct {
	_   [contend.CacheLineSize]byte
	mu  contend.Lock
	_   [contend.CacheLineSize - 4]byte
	top atomic.Uint64
	_   [contend.CacheLineSize - 8]byte
	l   lsm[T]
}

// lock acquires the global lock, counting a failed fast-path try-lock
// as contention in the worker's LockFails.
func (g *globalLSM[T]) lock(c *sched.Counters) {
	if g.mu.TryLock() {
		return
	}
	c.LockFails++
	g.mu.Lock()
}

// insertBlocks merges a batch of spilled blocks under one acquisition.
func (g *globalLSM[T]) insertBlocks(bs []*block[T], c *sched.Counters) {
	g.lock(c)
	for _, b := range bs {
		g.l.insertBlock(b)
	}
	g.top.Store(g.l.min())
	g.mu.Unlock()
}

// pop removes the global minimum under the lock.
func (g *globalLSM[T]) pop(c *sched.Counters) (pq.Item[T], bool) {
	g.lock(c)
	it, ok := g.l.pop()
	g.top.Store(g.l.min())
	g.mu.Unlock()
	return it, ok
}

// popN removes up to len(dst) tasks whose priority beats bound under a
// single lock acquisition — the batched counterpart of the per-task
// local-vs-global race in Pop. The bound keeps the batched delete as
// honest as the scalar one: the moment the global minimum stops
// beating the caller's local minimum, the drain stops and the caller
// re-runs the comparison.
func (g *globalLSM[T]) popN(dst []pq.Item[T], bound uint64, c *sched.Counters) int {
	g.lock(c)
	n := 0
	for n < len(dst) && g.l.min() < bound {
		it, ok := g.l.pop()
		if !ok {
			break
		}
		dst[n] = it
		n++
	}
	g.top.Store(g.l.min())
	g.mu.Unlock()
	return n
}

// KLSM is the k-LSM relaxed priority scheduler.
type KLSM[T any] struct {
	cfg      Config
	global   globalLSM[T]
	workers  []worker[T]
	counters []sched.Counters
}

// New builds a k-LSM with the given configuration.
func New[T any](cfg Config) *KLSM[T] {
	cfg.normalize()
	s := &KLSM[T]{
		cfg:      cfg,
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	s.global.top.Store(pq.InfPriority)
	for i := range s.workers {
		w := &s.workers[i]
		w.s = s
		w.id = i
		w.c = &s.counters[i]
	}
	return s
}

// Workers reports the number of worker slots.
func (s *KLSM[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w. Each handle must be used by a
// single goroutine.
func (s *KLSM[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("klsm: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce.
func (s *KLSM[T]) Stats() sched.Stats {
	return sched.SumCounters(s.counters)
}

// worker is the per-goroutine handle: the thread-local LSM plus
// counters. It needs no RNG — the k-LSM is deterministic per worker.
type worker[T any] struct {
	s     *KLSM[T]
	id    int
	c     *sched.Counters
	local lsm[T]

	spill []*block[T] // reusable scratch for overflow batches

	// Workers sit in one contiguous slice and mutate their local LSM
	// headers on every operation; a trailing cache line keeps them off
	// the neighbouring worker's line.
	_ [contend.CacheLineSize]byte
}

// Push inserts into the local LSM, spilling the largest local blocks to
// the global LSM whenever the relaxation bound k is exceeded. With
// k = 0 the task goes straight to the global LSM.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.local.insertItem(p, v)
	if w.local.n > w.s.cfg.Relaxation {
		w.spillOverflow()
	}
}

// PushN turns the whole batch into ONE sorted block and inserts it
// into the local LSM in a single insertBlock — the per-element
// singleton-block + geometric-merge cascade is skipped entirely, which
// is exactly the LSM's favourite input shape (it consumes sorted runs
// in O(run)). The relaxation bound is enforced once after the batch,
// so at most one spill (one global lock acquisition) per PushN.
func (w *worker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	b := w.local.getBlock(len(ps))
	for i, p := range ps {
		b.items = append(b.items, pq.Item[T]{P: p, V: vs[i]})
	}
	slices.SortFunc(b.items, func(a, b pq.Item[T]) int {
		switch {
		case a.P < b.P:
			return -1
		case a.P > b.P:
			return 1
		}
		return 0
	})
	w.local.insertBlock(b)
	if w.local.n > w.s.cfg.Relaxation {
		w.spillOverflow()
	}
}

// spillOverflow moves whole blocks, largest first, from the local LSM
// into the global LSM until the local holds at most k tasks. The blocks
// are merged into the global under a single lock acquisition.
func (w *worker[T]) spillOverflow() {
	w.spill = w.spill[:0]
	for w.local.n > w.s.cfg.Relaxation {
		b := w.local.removeLargest()
		if b == nil {
			break
		}
		w.spill = append(w.spill, b)
	}
	if len(w.spill) == 0 {
		return
	}
	w.s.global.insertBlocks(w.spill, w.c)
	clear(w.spill)
	w.spill = w.spill[:0]
}

// Pop removes the better of the two minima this worker can see: its
// local LSM's minimum (no synchronization) or the global LSM's (under
// the global lock). The local preference on ties is what makes the
// operation relaxed — up to k better tasks may hide in each other
// worker's local LSM. ok=false means this worker observed both LSMs
// empty; tasks may still sit in other workers' local LSMs (spurious
// emptiness, handled by the sched.Pending protocol).
// PopN fills dst with the batched form of Pop's local-vs-global race:
// each local winner is removed synchronization-free as before, but a
// winning global minimum is drained in one locked popN that keeps
// taking tasks while the global top stays better than the local
// minimum — one lock acquisition where the scalar loop would pay one
// per task.
func (w *worker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	n := 0
	for n < len(dst) {
		localTop := w.local.min()
		globalTop := w.s.global.top.Load()
		if localTop <= globalTop {
			if localTop == pq.InfPriority {
				break
			}
			it, _ := w.local.pop()
			dst[n] = it
			n++
			continue
		}
		got := w.s.global.popN(dst[n:], localTop, w.c)
		if got == 0 {
			// The global drained between the peek and the lock;
			// re-examine both minima.
			continue
		}
		n += got
	}
	if n > 0 {
		w.c.Pops += uint64(n)
	} else {
		w.c.EmptyPops++
	}
	return n
}

func (w *worker[T]) Pop() (uint64, T, bool) {
	for {
		localTop := w.local.min()
		globalTop := w.s.global.top.Load()
		if localTop <= globalTop {
			if localTop == pq.InfPriority {
				w.c.EmptyPops++
				var zero T
				return pq.InfPriority, zero, false
			}
			it, _ := w.local.pop()
			w.c.Pops++
			return it.P, it.V, true
		}
		if it, ok := w.s.global.pop(w.c); ok {
			w.c.Pops++
			return it.P, it.V, true
		}
		// The global drained between the peek and the lock; re-examine.
	}
}
