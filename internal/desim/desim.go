// Package desim runs discrete-event simulations through the scheduler
// zoo: every simulation event is a scheduler task whose priority is its
// timestamp, so "pop the highest-priority task" is "execute the next
// event", and a relaxed scheduler executes a slightly-out-of-order but
// massively parallel event loop.
//
// The correctness story is conservative parallel discrete-event
// simulation translated into rank-error terms. A classic conservative
// PDES engine may execute an event only when no smaller-timestamp event
// can still appear — its lookahead window. Here the window comes from
// the scheduler's own guarantee: a scheduler whose rank error is
// bounded by B never pops an element with more than B smaller-priority
// elements pending, so a model whose events tolerate executing up to B
// ranks early (Lookahead >= B) runs correctly with NO coordination
// beyond the scheduler itself. The engine checks the contract at run
// time: every pop measures how many smaller-timestamp events were
// registered (its lead), and a lead beyond the window — plus a
// documented concurrency slack — is counted as a causality violation.
// For k-LSM the bound is the worst-case (P−1)·k+P of Wimmer et al.;
// for the coarse exact queue it is 0; for Multi-Queue-family schedulers
// it is the expectation-scale bound of Theorem 1 (violations possible
// but rare); OBIM-style schedulers have no usable bound.
//
// Models must make event outcomes independent of execution order within
// the window (the cluster model's per-station FIFO recurrence, the DAG
// model's atomic-max completion propagation); the engine then certifies
// runs by comparing order-independent checksums against the exact
// coarse baseline.
package desim

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/sched"
)

// Event is one simulation event: a timestamp, a kind tag, and two
// model-interpreted payload words. It is deliberately a small value
// type (16 bytes) so millions of events stream through the schedulers'
// buffers without allocation.
type Event struct {
	// T is the simulated timestamp; the engine pushes the event at
	// priority T.
	T    uint64
	Kind uint8
	// A and B are model-defined payload words (station ids, vertex
	// ids, sequence numbers).
	A, B uint32
}

// Pusher schedules a future event. Handle implementations may only
// push events with timestamps >= the event being executed (no
// time travel); the engine registers the event with the causality
// window before it becomes poppable.
type Pusher func(ev Event)

// Model is a simulation model: it seeds the initial event population
// and executes events, possibly scheduling more.
type Model interface {
	// Name labels the model in reports ("cluster", "dag").
	Name() string
	// Horizon is an inclusive upper bound on every event timestamp the
	// model will ever push; the engine sizes the causality window with
	// it.
	Horizon() uint64
	// Seed pushes the initial events. It runs single-threaded before
	// the workers start.
	Seed(push Pusher)
	// Handle executes one event on the given worker, pushing any
	// events it causes. It must be safe for concurrent calls with
	// distinct worker ids, and event outcomes must not depend on
	// execution order within the lookahead window.
	Handle(worker int, ev Event, push Pusher)
	// Checksum digests the terminal simulation state in an
	// order-independent way: two runs that simulated the same system
	// must produce equal checksums regardless of scheduler.
	Checksum() uint64
}

// Config parameterizes a simulation run.
type Config struct {
	// Workers is the number of simulation workers (and scheduler
	// worker slots). Required.
	Workers int
	// Lookahead is the model's tolerance window in rank units: how
	// many smaller-timestamp pending events an executing event may run
	// ahead of. Negative disables the causality check entirely (no
	// window bookkeeping, maximum throughput).
	//
	// The violation threshold is Lookahead plus a slack of 4×Workers:
	// the window counter is read concurrently with other workers'
	// registers and in-flight executions, so even an exact scheduler
	// can observe up to O(Workers) transient smaller-timestamp
	// entries. The slack absorbs exactly that concurrency blur — it is
	// rank-error the scheduler did not cause.
	Lookahead int64
}

// slackFactor scales the per-worker concurrency slack added to the
// violation threshold (see Config.Lookahead).
const slackFactor = 4

// Stats summarizes a run.
type Stats struct {
	// Events is the number of events executed.
	Events uint64
	// Violations counts pops whose lead exceeded Lookahead + slack
	// (always 0 when the check is disabled).
	Violations uint64
	// MaxLead and MeanLead describe lookahead occupancy: the number of
	// registered smaller-timestamp events observed at pop time.
	MaxLead  int64
	MeanLead float64
	// Duration is the wall-clock time of the parallel section.
	Duration time.Duration
}

// workerStats is padded so neighbouring workers' counters do not share
// a cache line.
type workerStats struct {
	events     uint64
	violations uint64
	leadSum    int64
	leadMax    int64
	_          [32]byte
}

// Run drives the model to quiescence on the given scheduler and
// reports event throughput and causality accounting. The scheduler
// must have cfg.Workers worker slots.
func Run(s sched.Scheduler[Event], m Model, cfg Config) (Stats, error) {
	if cfg.Workers <= 0 {
		return Stats{}, fmt.Errorf("desim: Config.Workers = %d, must be positive", cfg.Workers)
	}
	if s.Workers() < cfg.Workers {
		return Stats{}, fmt.Errorf("desim: scheduler has %d worker slots, need %d", s.Workers(), cfg.Workers)
	}
	checked := cfg.Lookahead >= 0
	var win *window
	if checked {
		win = newWindow(m.Horizon())
	}
	threshold := cfg.Lookahead + slackFactor*int64(cfg.Workers)

	var pending sched.Pending
	seedHandle := s.Worker(0)
	m.Seed(func(ev Event) {
		pending.Inc(1)
		if checked {
			win.Register(ev.T)
		}
		seedHandle.Push(ev.T, ev)
	})
	// All external events are registered; only workers add follow-ons
	// from here, so quiescence is a stable termination signal.
	pending.Close()

	stats := make([]workerStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for wid := 0; wid < cfg.Workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			h := s.Worker(wid)
			st := &stats[wid]
			// push registers before pushing: by the time the event is
			// poppable anywhere, the window already counts it.
			push := func(ev Event) {
				pending.Inc(1)
				if checked {
					win.Register(ev.T)
				}
				h.Push(ev.T, ev)
			}
			var b sched.Backoff
			for {
				_, ev, ok := h.Pop()
				if !ok {
					if pending.Quiesced() {
						return
					}
					b.Wait()
					continue
				}
				b.Reset()
				st.events++
				if checked {
					lead := win.Before(ev.T)
					st.leadSum += lead
					if lead > st.leadMax {
						st.leadMax = lead
					}
					if lead > threshold {
						st.violations++
					}
				}
				m.Handle(wid, ev, push)
				// Unregister only after Handle: while an event is
				// executing it still counts as pending for everyone
				// else, which errs on the strict side (covered by the
				// threshold slack), never the lenient one.
				if checked {
					win.Unregister(ev.T)
				}
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := Stats{Duration: elapsed}
	var leadSum int64
	for i := range stats {
		out.Events += stats[i].events
		out.Violations += stats[i].violations
		leadSum += stats[i].leadSum
		if stats[i].leadMax > out.MaxLead {
			out.MaxLead = stats[i].leadMax
		}
	}
	if checked && out.Events > 0 {
		out.MeanLead = float64(leadSum) / float64(out.Events)
	}
	return out, nil
}
