package core

import "repro/internal/pq"

// BenchQueue exposes the heap queue's steal-buffer protocol to the
// repository-root design-ablation benchmarks (BenchmarkAblation_
// StealBuffer). It is not part of the scheduler API: Refill must be
// called from a single owner goroutine, exactly like the real owner.
type BenchQueue struct {
	q *heapQueue[int]
}

// NewBenchQueue returns an empty queue with the given steal batch size.
func NewBenchQueue(stealSize int) *BenchQueue {
	return &BenchQueue{q: newHeapQueue[int](pq.DefaultArity, stealSize)}
}

// Refill pushes items and republishes the steal buffer if it was taken.
func (b *BenchQueue) Refill(items []pq.Item[int]) {
	for _, it := range items {
		b.q.PushLocal(it.P, it.V)
	}
}

// Steal attempts to claim the published batch.
func (b *BenchQueue) Steal(dst []pq.Item[int]) []pq.Item[int] {
	return b.q.Steal(dst)
}

// Drain empties the owner-side heap (between benchmark iterations).
func (b *BenchQueue) Drain() {
	for {
		if _, _, ok := b.q.PopLocal(); !ok {
			return
		}
	}
}
