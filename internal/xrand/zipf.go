package xrand

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with the Zipf(θ) mass function
//
//	P(k) = (k+1)^(-θ) / H_{n,θ},   H_{n,θ} = Σ_{i=1..n} i^(-θ),
//
// the canonical skewed-popularity model for multi-tenant traffic and hot
// keys (YCSB's "zipfian" request distribution uses θ ≈ 0.99). Rank 0 is
// the most popular.
//
// Sampling inverts the exact cumulative distribution with a binary
// search over a precomputed table, so the empirical frequencies match
// the analytic mass function to within pure sampling noise — unlike the
// Gray et al. approximation used when n is huge — at O(log n) per
// sample and zero allocation after construction. The intended domain is
// tenants or key-space buckets (n up to a few million); the table costs
// 8 bytes per rank.
//
// A Zipf is immutable after construction and therefore safe to share
// between goroutines; each caller supplies its own *Rand.
type Zipf struct {
	cdf   []float64 // cdf[k] = P(rank <= k); cdf[n-1] == 1
	theta float64
}

// NewZipf builds a sampler over n ranks with skew theta. It panics if
// n <= 0 or theta < 0 (theta == 0 is the uniform distribution; theta
// may exceed 1, unlike rejection-inversion samplers).
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: NewZipf with n = %d", n))
	}
	if theta < 0 || math.IsNaN(theta) {
		panic(fmt.Sprintf("xrand: NewZipf with theta = %v", theta))
	}
	z := &Zipf{cdf: make([]float64, n), theta: theta}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		z.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range z.cdf {
		z.cdf[k] *= inv
	}
	z.cdf[n-1] = 1 // exact, regardless of rounding
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// PMF returns the analytic probability of rank k — the reference the
// statistical tests (and doc tables) compare empirical frequencies to.
func (z *Zipf) PMF(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws one rank using r.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	// First rank whose cumulative probability exceeds u. The head ranks
	// carry most of the mass under skew, so probe rank 0 before the
	// general search (≈48% of draws at θ=0.99, n=4 return immediately).
	if u < z.cdf[0] {
		return 0
	}
	return sort.SearchFloat64s(z.cdf, u)
}

// BoundedPareto samples service costs from the bounded Pareto
// distribution on [L, H] with tail index α:
//
//	P(X > x) = (L^α x^(-α) - (L/H)^α) / (1 - (L/H)^α),  L <= x <= H.
//
// Heavy-tailed-but-bounded service times are the standard M/G/1-style
// model for request cost skew (most requests cheap, rare requests up to
// H times the floor); the bound keeps a single sample from stalling a
// worker indefinitely. Sampling is exact inverse-CDF: one uniform draw,
// one Pow.
//
// A BoundedPareto is immutable after construction and safe to share;
// each caller supplies its own *Rand.
type BoundedPareto struct {
	l, h, alpha float64
	la, ratio   float64 // L^α and (L/H)^α, precomputed
}

// NewBoundedPareto builds a sampler on [l, h] with tail index alpha.
// It panics unless 0 < l <= h and alpha > 0.
func NewBoundedPareto(l, h, alpha float64) *BoundedPareto {
	if !(l > 0) || !(h >= l) || !(alpha > 0) {
		panic(fmt.Sprintf("xrand: NewBoundedPareto(%v, %v, %v): need 0 < l <= h, alpha > 0", l, h, alpha))
	}
	return &BoundedPareto{
		l: l, h: h, alpha: alpha,
		la:    math.Pow(l, alpha),
		ratio: math.Pow(l/h, alpha),
	}
}

// Sample draws one cost in [L, H] using r.
func (p *BoundedPareto) Sample(r *Rand) float64 {
	if p.l == p.h {
		return p.l
	}
	u := r.Float64()
	// Invert the CDF F(x) = (1 - L^α x^(-α)) / (1 - (L/H)^α):
	// x = (L^α / (1 - u(1 - (L/H)^α)))^(1/α).
	x := math.Pow(p.la/(1-u*(1-p.ratio)), 1/p.alpha)
	// Clamp rounding spill at the endpoints.
	if x < p.l {
		return p.l
	}
	if x > p.h {
		return p.h
	}
	return x
}

// Mean returns the analytic mean of the distribution, used to size
// offered-load budgets from a cost model.
func (p *BoundedPareto) Mean() float64 {
	if p.l == p.h {
		return p.l
	}
	if p.alpha == 1 {
		return p.l * math.Log(p.h/p.l) / (1 - p.l/p.h)
	}
	a := p.alpha
	num := p.la * a / (a - 1) * (math.Pow(p.l, 1-a) - math.Pow(p.h, 1-a))
	return num / (1 - p.ratio)
}
