package shard

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/perfbench"
)

// toyPlan builds a three-cell plan whose middle cell blocks on hang
// until the returned release function is called.
func toyPlan() (*harness.Plan, func()) {
	hang := make(chan struct{})
	p := harness.NewPlan("toy", harness.RunConfig{})
	p.AddCell(harness.Cell{Key: "a"}, func(harness.Cell) (harness.CellResult, error) {
		return harness.CellResult{Tasks: 1}, nil
	})
	p.AddCell(harness.Cell{Key: "hang"}, func(harness.Cell) (harness.CellResult, error) {
		<-hang
		return harness.CellResult{Tasks: 2}, nil
	})
	p.AddCell(harness.Cell{Key: "c"}, func(harness.Cell) (harness.CellResult, error) {
		return harness.CellResult{Tasks: 3}, nil
	})
	var once bool
	return p, func() {
		if !once {
			once = true
			close(hang)
		}
	}
}

func TestSelect(t *testing.T) {
	p, release := toyPlan()
	defer release()
	if got := Select(p, Options{}); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("full selection = %v", got)
	}
	if got := Select(p, Options{Shard: 0, Of: 2}); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("shard 0/2 = %v", got)
	}
	if got := Select(p, Options{Shard: 1, Of: 2}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("shard 1/2 = %v", got)
	}
	if got := Select(p, Options{Cells: []int{2, 0, 99, -1}}); !reflect.DeepEqual(got, []int{2, 0}) {
		t.Fatalf("explicit cells = %v", got)
	}
}

// TestTimeoutDoesNotFailOthers is the acceptance criterion: a cell that
// exceeds its budget is reported as status=timeout while the remaining
// cells complete normally.
func TestTimeoutDoesNotFailOthers(t *testing.T) {
	p, release := toyPlan()
	defer release()
	rs := Run(p, Options{Timeout: 50 * time.Millisecond})
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Status != harness.CellOK || rs[2].Status != harness.CellOK {
		t.Fatalf("healthy cells failed: %+v %+v", rs[0], rs[2])
	}
	if rs[1].Status != harness.CellTimeout {
		t.Fatalf("hung cell status = %q, want timeout", rs[1].Status)
	}
	if rs[1].Attempts != 1 {
		t.Fatalf("attempts = %d without retries", rs[1].Attempts)
	}
	if rs[1].Error == "" {
		t.Fatal("timeout without message")
	}
}

func TestTimeoutRetryThenSuccess(t *testing.T) {
	// The timed-out first attempt's goroutine is abandoned, not killed,
	// so it runs concurrently with the retry: the counter must be atomic.
	var calls atomic.Int32
	p := harness.NewPlan("toy", harness.RunConfig{})
	p.AddCell(harness.Cell{Key: "flaky"}, func(harness.Cell) (harness.CellResult, error) {
		if calls.Add(1) == 1 {
			time.Sleep(time.Second) // first attempt blows the budget
		}
		return harness.CellResult{Tasks: 7}, nil
	})
	rs := Run(p, Options{Timeout: 50 * time.Millisecond, Retries: 2})
	if rs[0].Status != harness.CellOK {
		t.Fatalf("status = %q after retry, want ok (%s)", rs[0].Status, rs[0].Error)
	}
	if rs[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", rs[0].Attempts)
	}
}

func TestTimeoutRetriesExhausted(t *testing.T) {
	p, release := toyPlan()
	defer release()
	rs := Run(p, Options{Cells: []int{1}, Timeout: 20 * time.Millisecond, Retries: 2})
	if rs[0].Status != harness.CellTimeout || rs[0].Attempts != 3 {
		t.Fatalf("status %q attempts %d, want timeout after 3 attempts", rs[0].Status, rs[0].Attempts)
	}
}

func TestErrorsAreNotRetried(t *testing.T) {
	calls := 0
	p := harness.NewPlan("toy", harness.RunConfig{})
	p.AddCell(harness.Cell{Key: "bad"}, func(harness.Cell) (harness.CellResult, error) {
		calls++
		return harness.CellResult{}, fmt.Errorf("validation failed")
	})
	rs := Run(p, Options{Timeout: time.Second, Retries: 3})
	if rs[0].Status != harness.CellError || calls != 1 {
		t.Fatalf("status %q after %d calls, want one non-retried error", rs[0].Status, calls)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := harness.CellResult{
		Cell: harness.Cell{Index: 3, Key: "k", Kind: "measure", Workload: "w",
			Scheduler: "s", Params: "p", Threads: 2, Reps: 2, Seed: 99},
		Status: harness.CellOK, Attempts: 2, DurationNs: 5, ElapsedNs: 7,
		Tasks: 11, Wasted: 13, Remote: 0.5, Values: map[string]float64{"x": 1},
	}
	if got := FromRecord(ToRecord(r)); !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, r)
	}
}

// TestShardedTheoryMatchesDirect is the headline acceptance test: the
// theory grid run as two separate shards, packaged as fragments, merged
// with perfbench.Merge and assembled from the merged artifact renders
// byte-identical TSV to the same grid run in-process (the theory tables
// carry no timing fields, so "modulo timing" is exact identity here).
func TestShardedTheoryMatchesDirect(t *testing.T) {
	e, ok := harness.Find("theory")
	if !ok {
		t.Fatal("theory experiment missing")
	}
	cfg := harness.RunConfig{Scale: 1, Seed: 21}

	direct, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var directTSV bytes.Buffer
	if err := harness.WriteTables(&directTSV, direct, "tsv"); err != nil {
		t.Fatal(err)
	}

	// Two independent plans, as two processes would build them.
	var fragments []*perfbench.Report
	for s := 0; s < 2; s++ {
		p, err := e.Plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs := Run(p, Options{Shard: s, Of: 2, Timeout: time.Minute})
		fragments = append(fragments, Fragment(p, rs, &perfbench.ShardInfo{Index: s, Total: 2}, "test shard"))
	}
	merged, err := perfbench.Merge(fragments)
	if err != nil {
		t.Fatal(err)
	}

	p, err := e.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := AssembleFragment(p, merged)
	if err != nil {
		t.Fatal(err)
	}
	var shardTSV bytes.Buffer
	if err := harness.WriteTables(&shardTSV, tables, "tsv"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(directTSV.Bytes(), shardTSV.Bytes()) {
		t.Fatalf("sharded TSV differs from direct run:\n--- direct ---\n%s\n--- sharded ---\n%s",
			directTSV.String(), shardTSV.String())
	}
}

func TestAssembleFragmentRejectsDrift(t *testing.T) {
	p, release := toyPlan()
	release()
	rs := Run(p, Options{})
	rep := Fragment(p, rs, nil, "test")

	// Wrong experiment.
	other := harness.NewPlan("other", harness.RunConfig{})
	other.AddCell(harness.Cell{Key: "a"}, func(harness.Cell) (harness.CellResult, error) {
		return harness.CellResult{}, nil
	})
	if _, err := AssembleFragment(other, rep); err == nil {
		t.Fatal("foreign fragment accepted")
	}

	// Key drift: same shape, different enumeration.
	rep.Experiments[0].Cells[1].Key = "tampered"
	if _, err := AssembleFragment(p, rep); err == nil {
		t.Fatal("key drift not detected")
	}
}

func TestSubprocessFragment(t *testing.T) {
	p, release := toyPlan()
	release()

	// Fake the child: pre-compute the fragment a real subprocess would
	// print for each cell and cat it from a file.
	dir := t.TempDir()
	files := make([]string, len(p.Cells))
	for i := range p.Cells {
		res := p.RunCell(i)
		rep := Fragment(p, []harness.CellResult{res}, nil, "fake child")
		b, err := perfbench.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		files[i] = filepath.Join(dir, fmt.Sprintf("cell%d.json", i))
		if err := os.WriteFile(files[i], b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rs := Run(p, Options{
		Timeout: 5 * time.Second,
		Exec:    func(i int) *exec.Cmd { return exec.Command("cat", files[i]) },
	})
	for i, r := range rs {
		if r.Status != harness.CellOK {
			t.Fatalf("cell %d via subprocess: %s (%s)", i, r.Status, r.Error)
		}
	}
	if rs[2].Tasks != 3 {
		t.Fatalf("subprocess result lost measurements: %+v", rs[2])
	}
}

func TestSubprocessKilledOnTimeout(t *testing.T) {
	p, release := toyPlan()
	release()
	start := time.Now()
	rs := Run(p, Options{
		Cells:   []int{0},
		Timeout: 100 * time.Millisecond,
		Exec:    func(int) *exec.Cmd { return exec.Command("sleep", "30") },
	})
	if rs[0].Status != harness.CellTimeout {
		t.Fatalf("status = %q, want timeout", rs[0].Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("subprocess not killed promptly (took %v)", elapsed)
	}
}

func TestSubprocessFailureIsCellError(t *testing.T) {
	p, release := toyPlan()
	release()
	rs := Run(p, Options{
		Cells: []int{0},
		Exec:  func(int) *exec.Cmd { return exec.Command("false") },
	})
	if rs[0].Status != harness.CellError {
		t.Fatalf("status = %q, want error", rs[0].Status)
	}
}
