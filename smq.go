// Package smq is a Go implementation of the Stealing Multi-Queue (SMQ),
// the relaxed concurrent priority scheduler of Postnikova, Koval,
// Nadiradze and Alistarh, "Multi-Queues Can Be State-of-the-Art Priority
// Schedulers" (PPoPP 2022), together with every scheduler the paper
// evaluates against (classic Multi-Queue and its batching / temporal-
// locality variants, RELD, OBIM, PMOD, SprayList), the graph workloads of
// its evaluation, and the analytical rank model of its Theorem 1.
//
// Beyond the paper's own lineup, the package also provides the engineered
// MultiQueue (EMQ) of Williams, Sanders and Dementiev, "Engineering
// MultiQueues: Fast Relaxed Concurrent Priority Queues" (2021) — the
// strongest published Multi-Queue follow-up, which augments the classic
// design with queue stickiness and insertion/deletion buffers; see
// NewEngineeredMQ and EMQConfig — and the k-LSM of Wimmer, Gruber, Träff
// and Tsigas, "The Lock-Free k-LSM Relaxed Priority Queue" (PPoPP 2015),
// the strongest non-Multi-Queue baseline of the paper's evaluation: a
// log-structured-merge queue whose relaxation is the explicit capacity
// bound k of each worker's thread-local LSM; see NewKLSM and KLSMConfig.
//
// The workload zoo extends past the paper's CSR-graph benchmarks with a
// geometric family — parallel k-nearest-neighbour graph construction and
// exact Euclidean MST over generated point sets (KNNGraph, EuclideanMST,
// GenerateUniformPoints, GenerateGaussianClusters) — the classic
// relaxed-priority-queue workloads of Rihani, Sanders and Dementiev
// (2014), where tasks expand an implicit metric graph by distance
// priority instead of walking a prebuilt adjacency structure.
//
// # Memory layout & contention
//
// The paper attributes the Multi-Queue family's throughput as much to
// memory discipline as to algorithm (§4): cheap uncontended locking,
// cache-line-conscious layout, and allocation-free steady state. This
// implementation keeps all three, via the internal contend package:
//
//   - Queue headers and the coarse/k-LSM global locks use a padded TATAS
//     try-spinlock (two atomic word operations per uncontended
//     acquire/release, bounded exponential backoff then Gosched when
//     blocking) rather than sync.Mutex — the try-lock discipline means a
//     contended queue is resampled, never waited for, so futex parking
//     is pure overhead on these paths.
//   - Every contiguous hot array is padded to cache-line multiples:
//     lock-queue headers (lock word + cached top per line), per-worker
//     handles (sticky indices, buffer cursors), per-worker statistics
//     counters, and the SMQ steal-buffer epoch word, which lives on its
//     own line so thieves' CAS traffic never invalidates the owner's
//     heap pointer. Worker RNGs and NUMA samplers are embedded by value
//     in the padded handles instead of being separate heap allocations
//     that could share lines between workers.
//   - The steady state allocates nothing: heaps and operation buffers
//     are reused in place and zero vacated slots (so popped pointerful
//     payloads are released to the GC), and the k-LSM merge path
//     recycles retired blocks through per-LSM slab pools. Regression
//     tests assert 0 allocs/op for the SMQ, Multi-Queue and engineered
//     MultiQueue hot paths.
//
// The measured effect of each such change is recorded in the repo's
// perf trajectory: `smqbench -json` benchmarks the whole lineup on a
// contended uniform-priority microbenchmark and emits a
// schema-versioned report (committed as BENCH_PR<n>.json).
//
// # Batching
//
// Every Worker also exposes bulk operations — PushN(ps, vs) and
// PopN(dst) — with scheduler-specific fast paths: the Multi-Queues
// place or extract a whole batch under a single sampled lock, the SMQ
// drains its steal buffer and local heap in one pass, the engineered
// MultiQueue routes batches through its insertion/deletion buffers
// (filling the caller's slice directly), and the k-LSM turns a batch
// into one sorted LSM block, skipping the per-element merge cascade.
// Batches amortize the fixed per-operation costs — queue sampling,
// lock round trips, atomic counter traffic — that dominate once a
// workload relaxes many neighbours per popped task. The trade is the
// same one the schedulers' internal buffers already make: a batch is
// placed (or taken) as a unit, so rank relaxation grows with batch
// size. Batches help whenever one task expansion produces several
// pushes (SSSP relaxations, k-NN candidate updates) and hurt nothing
// when they carry a single task.
//
// Algorithm authors batching Pending accounting should fold a whole
// batch into one atomic: after popping k tasks, processing them, and
// buffering m follow-on tasks, a single pending.Inc(m−k) issued
// BEFORE the PushN that publishes the buffered tasks is equivalent to
// m scalar Incs and k scalar Decs. The +m registers tasks while they
// are still buffered (so Pending cannot hit zero while they exist),
// and the −k retires only fully processed tasks; the transient
// over-count merely makes idle workers re-poll. This is the contract
// the built-in workloads (SSSP, BFS, A*, MST, k-NN, PageRank) run on.
//
// # Serving
//
// Everything above is run-to-completion: all work descends from seeds
// registered before workers start, so the in-flight count hitting zero
// IS termination (Pending.Done, or Close-at-seed + Quiesced as Process
// does). A long-running service is the opposite shape — tasks stream in
// from outside the worker set and the queue legitimately drains to
// empty between arrival bursts — and internal/serve provides that
// front-end over any scheduler in the zoo: channel-fed streaming
// ingestion through a hybrid ingest-and-process worker (scheduler
// handles bury pushed tasks in handle-local buffers, so a push-only
// ingester would strand its tail), admission control with stall or
// shed policies at a pending-task watermark, an elastic worker pool
// that parks idle worker slots on wake channels instead of spinning,
// and per-tenant sojourn-latency histograms. Termination there uses
// Pending.Close + Quiesced — drained AND closed — never Done alone;
// see the sched.Pending documentation for the emptiness-vs-quiescence
// contract. cmd/smqserve drives it from the command line, and the
// "serve" harness experiment records an offered-load × scheduler grid.
//
// # Named schedulers
//
// Every root constructor has a named, default-configured counterpart in
// the Spec registry: Lineup lists the whole zoo (exact coarse baseline
// first) and LookupSpec resolves one name. A Spec bundles the factory
// — Build(workers, seed) — with the scheduler's RankBound, so generic
// drivers (perf trajectory, serving front-end, simulation engine) can
// construct any scheduler by name and reason about its relaxation
// without a hand-maintained switch:
//
//	spec, _ := smq.LookupSpec[string]("klsm")
//	s := spec.Build(8, 42)
//	bound, exact := spec.RankBound(8) // 1799, true
//
// cmd/zoogate fails the build if a root constructor is missing from the
// registry, so the name set cannot silently drift from the API.
//
// # Simulation & safe lookahead
//
// RankBound is what makes a relaxed scheduler a discrete-event
// simulation engine (internal/desim, cmd/smqsim): pushing each event at
// priority = timestamp turns pop-driven workers into a parallel event
// loop, and a rank-error bound B is exactly a conservative-PDES
// lookahead window in rank units — the scheduler never runs an event
// with more than B smaller-timestamp events pending. A model whose
// events tolerate executing up to B ranks early therefore simulates
// correctly with no synchronization beyond the scheduler itself. The
// k-LSM's worst-case (P−1)·k+P and the coarse queue's 0 are hard
// guarantees (RankBound reports exact=true; the desim engine's
// causality check must count zero violations, and the committed
// trajectory artifacts machine-check that claim); the Multi-Queue
// family's Theorem-1 bounds are expectation-scale, so violations are
// possible but counted; OBIM-style schedulers report no usable bound
// and run unchecked.
//
// # Priorities
//
// All schedulers order tasks by a uint64 priority where LOWER means
// HIGHER priority, matching distance-driven workloads such as Dijkstra's
// algorithm. Priority pq-style ties are broken arbitrarily.
//
// # Workers
//
// A Scheduler is created for a fixed number of workers. Each worker
// goroutine claims its handle once via Worker(i) and uses only that
// handle; handles carry thread-local state (local queues, steal buffers,
// batching buffers) and must not be shared:
//
//	s := smq.NewStealingMQ[string](smq.SMQConfig{Workers: 4})
//	var wg sync.WaitGroup
//	for i := 0; i < 4; i++ {
//		wg.Add(1)
//		go func(i int) {
//			defer wg.Done()
//			w := s.Worker(i)
//			w.Push(10, "hello")
//			if p, v, ok := w.Pop(); ok { _ = v; _ = p }
//		}(i)
//	}
//	wg.Wait()
//
// # Relaxation
//
// Pop may return a task that is not the global minimum — for the SMQ the
// expected rank of the returned task is bounded (Theorem 1) — and may
// spuriously report emptiness while tasks sit in other workers' local
// buffers. Algorithms built on these schedulers track in-flight work
// with a Pending counter; see the SSSP and other drivers in this package
// for the canonical pattern.
//
// # Lock-free tier
//
// Every scheduler above serializes somewhere through a spinlock: the
// Multi-Queue family locks the sampled heap (try-lock first, but the
// winner still holds it), the k-LSM locks its global-LSM merges, and
// the coarse baseline is one big lock. Their progress guarantee is
// therefore blocking — a descheduled lock holder stalls every worker
// that samples its queue. NewCBPQ adds the genuinely non-blocking tier:
// a CAS-based chunk-based priority queue (Braginsky, Cohen and
// Petrank, Euro-Par 2016) in which every operation completes in a
// bounded number of steps unless some other operation succeeded — the
// lock-free guarantee — and Stats().LockFails counts CAS failures
// because there is no lock to fail. It is the honest competitor the
// MultiQueue papers position themselves against, and it is exact
// (rank bound 0, like the coarse baseline and the strict k-LSM).
//
// The shape of the structure is a short chain of fixed-capacity chunks
// partitioned by priority range: a sorted first chunk consumed through
// a packed index word (one CAS claims the next sorted slot — the word
// also carries the freeze bit and a publish counter, so a successful
// claim proves the head it read is still the live head), interior
// chunks accepting inserts via a count-word CAS, and an insertion
// buffer for priorities that belong in the first chunk's range. A full
// or contended chunk is never mutated in place: it is frozen (one
// atomic Or on that same word, after which its membership is
// immutable), replacement chunks are built privately, and a single
// root CAS publishes the new structure — split for a full interior
// chunk, first-chunk rebuild for a drained head or a buffered
// small-priority insert. Any thread can help complete a frozen
// structure's replacement, which is what makes the design lock-free.
//
// Bulk operations have chunk-granular meaning without a lock to batch
// under: PopN claims n consecutive sorted slots with ONE CAS on the
// head's index word, and PushN sorts its batch once and publishes each
// same-chunk run with ONE count-word CAS — the reservation is the
// atomic, the element copies are plain stores behind per-slot ready
// flags. The trade-off relative to the lock-based tier is allocation
// and the decremental-key worst case: published chunks cannot be
// pooled without epoch reclamation, and an insert below the first
// chunk's range forces a first-chunk rebuild (see internal/cbpq's
// package documentation and alloc gates for the amortized bounds).
//
// # Elimination and combining
//
// Decremental workloads (Dijkstra/SSSP relaxations, the hold pattern:
// pop the minimum, push it back slightly above the old head) hammer
// exactly that worst case — nearly every push lands below the first
// chunk's range. The CBPQ therefore fronts its head with an
// elimination layer in the Hendler–Shavit style, preserving the exact
// rank bound. A below-head push first publishes its (priority, value)
// pair in a padded per-queue exchange slot as a single immutable
// entry, bumping the head's publish counter; a concurrent pop that
// observes a pending entry at or below the head's minimum takes it
// directly from the slot. Both sides linearize at the exchange CAS —
// the pair meets in the slot, never touching chunk memory, so the pop
// is exact by construction (the taken entry's priority is <= every
// priority still in the head) and no rebuild happens at all.
// Publishes that find no timely partner are not retried per-slot:
// the parked entries form a bounded pending set (overflow beyond the
// exchange linearizes immediately into the insertion buffer through
// the same publish counter, deferring any structural work until an
// entry actually blocks a pop), one thread elects itself combiner via
// the ordinary root CAS, and a single freeze -> merge -> republish
// rebuild absorbs the entire set plus the insertion buffer at once —
// n pushes, one allocation burst, one
// publication. Consistent emptiness still holds: a Pop may report
// empty only after proving the exchange layer was drained while the
// head it inspected was live. Stats().Eliminations and
// Stats().Combines count the two paths; CBPQConfig.DisableElimination
// turns the layer off for A/B measurement (the zoo's "cbpq-elim" spec
// names the default-on configuration).
//
// # Running experiments
//
// cmd/smqbench regenerates the paper's tables and figures. Every
// experiment is a deterministic enumeration of cells — one (scheduler,
// workload, thread count, repetitions) measurement each, with a
// per-cell RNG seed derived from the base -seed — so a grid can be
// listed, split, and re-run cell by cell:
//
//	smqbench -exp fig2 -scale 1 -threads 1,2,4        # run in-process
//	smqbench -exp fig2 -listcells                     # print the enumeration
//	smqbench -exp fig2 -shard 0/2 -fragment f0.json   # run half the cells
//	smqbench -exp fig2 -shard 1/2 -fragment f1.json   # ...the other half
//	benchcheck merge -o merged.json f0.json f1.json   # recombine shards
//	smqbench -exp fig2 -assemble merged.json          # render the tables
//
// Shards may run in different processes, on different machines, or as
// CI matrix jobs: fragments are self-contained schema-versioned JSON
// (internal/perfbench) carrying the experiment id, the run
// configuration fingerprint, a host fingerprint and per-cell status
// (ok, timeout or error), and merging is order-independent. Because
// cell seeds depend only on the base seed and the cell's index, the
// assembled tables are byte-identical (modulo timing fields) to an
// in-process run. -celltimeout bounds each cell's wall clock (with
// -cellretries bounded retry); -subproc re-execs the binary once per
// cell so a hung cell is killed, not abandoned, and -cellprefix wraps
// children in numactl/taskset for pinned measurements.
package smq

import (
	"sync"

	"repro/internal/algos"
	"repro/internal/cbpq"
	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/klsm"
	"repro/internal/mq"
	"repro/internal/obim"
	"repro/internal/ranksim"
	"repro/internal/sched"
	"repro/internal/spray"
	"repro/internal/zoo"
)

// Scheduler is a relaxed concurrent priority scheduler; see the package
// documentation for the worker-handle protocol.
type Scheduler[T any] = sched.Scheduler[T]

// Worker is a per-goroutine scheduler handle.
type Worker[T any] = sched.Worker[T]

// Task is a prioritized task as moved by the bulk operations PushN and
// PopN; see the package documentation's Batching section.
type Task[T any] = sched.Task[T]

// Stats aggregates scheduler counters (pushes, pops, steals, lock
// failures, remote accesses).
type Stats = sched.Stats

// Pending is the in-flight task counter used for termination detection
// with relaxed schedulers.
type Pending = sched.Pending

// Backoff is a bounded spin/yield backoff for worker retry loops.
type Backoff = sched.Backoff

// SMQConfig configures the Stealing Multi-Queue (defaults: StealSize 4,
// StealProb 1/8, 4-ary heaps — the paper's default configuration).
type SMQConfig = core.Config

// MQConfig configures the classic Multi-Queue family, including the task
// batching and temporal-locality optimisations.
type MQConfig = mq.Config

// EMQConfig configures the engineered MultiQueue of Williams et al.
// (queue stickiness and insertion/deletion buffers over m = C·Workers
// lock-protected heaps).
type EMQConfig = emq.Config

// KLSMConfig configures the k-LSM of Wimmer et al. (thread-local LSMs
// of at most Relaxation tasks over a shared global LSM; Relaxation
// KLSMStrict selects the exact k = 0 queue).
type KLSMConfig = klsm.Config

// KLSMStrict is the KLSMConfig.Relaxation value for the strict k = 0
// configuration (exact priority order through the global LSM).
const KLSMStrict = klsm.Strict

// OBIMConfig configures the OBIM and PMOD baselines.
type OBIMConfig = obim.Config

// CBPQConfig configures the lock-free chunk-based priority queue
// (fixed chunk capacity, elimination layer switch; see the Lock-free
// tier and Elimination and combining sections above).
type CBPQConfig = cbpq.Config

// SprayConfig configures the SprayList baseline.
type SprayConfig = spray.Config

// Multi-Queue policy selectors, re-exported for MQConfig.
const (
	InsertTemporalLocality = mq.InsertTemporalLocality
	InsertBatch            = mq.InsertBatch
	DeleteTemporalLocality = mq.DeleteTemporalLocality
	DeleteBatch            = mq.DeleteBatch
	DeleteLocal            = mq.DeleteLocal
)

// NewStealingMQ builds the paper's headline scheduler: thread-local d-ary
// heaps with stealing buffers (§2.2, §4).
func NewStealingMQ[T any](cfg SMQConfig) Scheduler[T] {
	return core.NewStealingMQ[T](cfg)
}

// NewStealingMQSkipList builds the SMQ variant with concurrent skip lists
// as local queues (§4, Appendix D).
func NewStealingMQSkipList[T any](cfg SMQConfig) Scheduler[T] {
	return core.NewStealingMQSkipList[T](cfg)
}

// NewMultiQueue builds a Multi-Queue with explicit configuration
// (classic, batching and temporal-locality policies; §2.1, Appendix C).
func NewMultiQueue[T any](cfg MQConfig) Scheduler[T] {
	return mq.New[T](cfg)
}

// NewClassicMultiQueue builds Listing 1's Multi-Queue: m = c·workers
// lock-protected heaps, random insert, two-choice delete.
func NewClassicMultiQueue[T any](workers, c int) Scheduler[T] {
	return mq.New[T](mq.Classic(workers, c))
}

// NewRELD builds the random-enqueue local-dequeue baseline of Jeffrey et
// al., evaluated in §5.
func NewRELD[T any](workers int) Scheduler[T] {
	return mq.New[T](mq.RELD(workers))
}

// NewEngineeredMQ builds the engineered MultiQueue of Williams, Sanders
// and Dementiev (2021): the classic Multi-Queue layout extended with
// sticky queue indices that persist for a configurable number of
// operations and with bounded per-worker insertion/deletion buffers.
func NewEngineeredMQ[T any](cfg EMQConfig) Scheduler[T] {
	return emq.New[T](cfg)
}

// NewKLSM builds the k-LSM of Wimmer, Gruber, Träff and Tsigas (PPoPP
// 2015): per-worker log-structured-merge queues bounded by
// cfg.Relaxation tasks, spilling whole sorted blocks into a shared
// global LSM, with a relaxed DeleteMin that takes the better of the
// local and global minima and may skip up to k tasks per other worker.
func NewKLSM[T any](cfg KLSMConfig) Scheduler[T] {
	return klsm.New[T](cfg)
}

// NewOBIM builds the Galois OBIM baseline (priority bags keyed by
// priority >> delta, chunked per virtual node).
func NewOBIM[T any](cfg OBIMConfig) Scheduler[T] {
	return obim.New[T](cfg)
}

// NewPMOD builds OBIM with PMOD's dynamic delta adaptation.
func NewPMOD[T any](cfg OBIMConfig) Scheduler[T] {
	cfg.Adaptive = true
	return obim.New[T](cfg)
}

// NewSprayList builds the SprayList baseline.
func NewSprayList[T any](cfg SprayConfig) Scheduler[T] {
	return spray.New[T](cfg)
}

// NewCBPQ builds the lock-free chunk-based priority queue of
// Braginsky, Cohen and Petrank (Euro-Par 2016): fixed-capacity chunks
// partitioned by priority range, a sorted first chunk consumed through
// a packed CAS-claimed index word, CAS-published inserts with a
// freeze/split protocol, chunk-granular lock-free PushN/PopN fast
// paths, and an elimination + combining front end for below-head
// inserts. Exact (rank bound 0) and non-blocking; see the package
// documentation's Lock-free tier and Elimination and combining
// sections.
func NewCBPQ[T any](cfg CBPQConfig) Scheduler[T] {
	return cbpq.New[T](cfg)
}

// Spec is a named scheduler: a factory plus the scheduler's rank-error
// bound. The zoo registry (Lineup, LookupSpec) hands out Specs with
// every scheduler's default configuration; generic drivers build
// schedulers by name through them instead of maintaining their own
// name→constructor switches.
type Spec[T any] = zoo.Spec[T]

// Lineup returns the full named-scheduler zoo at payload type T, exact
// coarse baseline first. The slice is freshly allocated; callers may
// reorder or filter it.
func Lineup[T any]() []Spec[T] { return zoo.Lineup[T]() }

// LookupSpec resolves one zoo scheduler by name (see SpecNames).
func LookupSpec[T any](name string) (Spec[T], bool) { return zoo.Lookup[T](name) }

// SpecNames lists the zoo's scheduler names in Lineup order.
func SpecNames() []string { return zoo.Names() }

// Process runs one goroutine per scheduler worker and invokes fn for
// every task until no work remains. It owns the termination protocol:
// fn receives the worker handle to push follow-on tasks and MUST call
// pending.Inc(1) before each Push; Process decrements once per processed
// task. seed enqueues the initial tasks through worker 0 (pending is
// incremented for them automatically).
//
//	smq.Process(s, func(w smq.Worker[uint32]) {
//	    w.Push(0, root) // seed
//	}, func(wid int, w smq.Worker[uint32], pending *smq.Pending, p uint64, v uint32) {
//	    for _, next := range expand(v) {
//	        pending.Inc(1)
//	        w.Push(next.Priority, next.Value)
//	    }
//	})
func Process[T any](
	s Scheduler[T],
	seed func(w Worker[T]),
	fn func(wid int, w Worker[T], pending *Pending, p uint64, v T),
) {
	var pending Pending
	w0 := s.Worker(0)
	seedCounter := countingWorker[T]{inner: w0, pending: &pending}
	seed(&seedCounter)
	// All external tasks are registered; only workers add follow-ons
	// from here, so quiescence is a stable termination signal.
	pending.Close()

	var wg sync.WaitGroup
	for wid := 0; wid < s.Workers(); wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			var b Backoff
			for {
				p, v, ok := w.Pop()
				if !ok {
					if pending.Quiesced() {
						return
					}
					b.Wait()
					continue
				}
				b.Reset()
				fn(wid, w, &pending, p, v)
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()
}

// countingWorker wraps a Worker so that seed pushes register themselves
// with the pending counter.
type countingWorker[T any] struct {
	inner   Worker[T]
	pending *Pending
}

func (c *countingWorker[T]) Push(p uint64, v T) {
	c.pending.Inc(1)
	c.inner.Push(p, v)
}

func (c *countingWorker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	c.pending.Inc(int64(len(ps)))
	c.inner.PushN(ps, vs)
}

func (c *countingWorker[T]) Pop() (uint64, T, bool) { return c.inner.Pop() }

func (c *countingWorker[T]) PopN(dst []Task[T]) int { return c.inner.PopN(dst) }

// ---------------------------------------------------------------------------
// Graphs

// Graph is a directed weighted graph in CSR form.
type Graph = graph.CSR

// GraphEdge is an edge for BuildGraph.
type GraphEdge = graph.Edge

// Coord is a planar vertex coordinate (enables the A* heuristic).
type Coord = graph.Coord

// BuildGraph assembles a CSR graph from an edge list; coords may be nil.
func BuildGraph(n int, edges []GraphEdge, coords []Coord) (*Graph, error) {
	return graph.Build(n, edges, coords)
}

// GenerateRoadGrid builds a road-network-like planar graph with
// coordinates and admissible A* weights (the paper's USA/WEST stand-in).
func GenerateRoadGrid(rows, cols int, seed uint64) *Graph {
	return graph.GenerateRoadGrid(rows, cols, seed)
}

// GenerateRMAT builds a power-law RMAT graph with uniform [0,255] weights
// (the paper's TWITTER/WEB stand-in).
func GenerateRMAT(scale, edgeFactor int, seed uint64) *Graph {
	return graph.GenerateRMAT(scale, edgeFactor, graph.DefaultRMATParams(), seed)
}

// ---------------------------------------------------------------------------
// Algorithms

// Result reports a parallel run's task accounting (total, wasted) and
// duration.
type Result = algos.Result

// Unreachable is the distance reported for unreachable vertices.
const Unreachable = algos.Unreachable

// SSSP computes single-source shortest paths using the given scheduler.
func SSSP(g *Graph, src uint32, s Scheduler[uint32]) ([]uint64, Result) {
	return algos.SSSP(g, src, s)
}

// BFS computes hop distances using the given scheduler.
func BFS(g *Graph, src uint32, s Scheduler[uint32]) ([]uint64, Result) {
	return algos.BFS(g, src, s)
}

// AStar computes the src→target distance with the coordinate heuristic.
func AStar(g *Graph, src, target uint32, s Scheduler[uint32]) (uint64, Result) {
	return algos.AStar(g, src, target, s)
}

// BoruvkaMST computes the minimum spanning forest weight and edge count.
func BoruvkaMST(g *Graph, s Scheduler[uint32]) (uint64, int, Result) {
	return algos.BoruvkaMST(g, s)
}

// ---------------------------------------------------------------------------
// Geometry

// PointSet is a dense point set in R^d, the input of the geometric
// workloads (k-NN graph construction, Euclidean MST).
type PointSet = geom.PointSet

// GenerateUniformPoints generates n points uniformly in [0,1)^dim,
// reproducibly from the seed.
func GenerateUniformPoints(n, dim int, seed uint64) *PointSet {
	return geom.UniformCube(n, dim, seed)
}

// GenerateGaussianClusters generates n points grouped into Gaussian
// clusters with the given per-coordinate standard deviation,
// reproducibly from the seed.
func GenerateGaussianClusters(n, dim, clusters int, stddev float64, seed uint64) *PointSet {
	return geom.GaussianClusters(n, dim, clusters, stddev, seed)
}

// KNNGraph builds the directed k-nearest-neighbour graph of a point set
// with the given scheduler: each task resolves one vertex's k-th
// neighbour by bounded-radius kd-tree queries, re-enqueued with widened
// radius (priority = quantized current radius) until resolved. The
// result is deterministic for every scheduler.
func KNNGraph(ps *PointSet, k int, s Scheduler[uint32]) (*Graph, Result) {
	return algos.KNNGraph(ps, k, s)
}

// EuclideanMST computes the exact Euclidean minimum spanning tree of a
// point set (k-NN candidate graph + Boruvka contraction with a
// widen-radius fallback), returning total quantized weight and edge
// count. The result matches EuclideanMSTSeq exactly.
func EuclideanMST(ps *PointSet, k int, s Scheduler[uint32]) (uint64, int, Result) {
	return algos.EuclideanMST(ps, k, s)
}

// EuclideanMSTSeq is the sequential O(n^2) Prim baseline for
// EuclideanMST.
func EuclideanMSTSeq(ps *PointSet) (uint64, int) {
	return algos.PrimEMSTSeq(ps)
}

// PageRankConfig configures ResidualPageRank.
type PageRankConfig = algos.PageRankConfig

// ResidualPageRank computes PageRank by prioritized residual propagation.
func ResidualPageRank(g *Graph, cfg PageRankConfig, s Scheduler[uint32]) ([]float64, Result) {
	return algos.ResidualPageRank(g, cfg, s)
}

// DijkstraSeq is the sequential shortest-path baseline.
func DijkstraSeq(g *Graph, src uint32) []uint64 {
	dist, _ := algos.DijkstraSeq(g, src)
	return dist
}

// ---------------------------------------------------------------------------
// Theory

// RankModelConfig configures the §3 discrete SMQ rank model.
type RankModelConfig = ranksim.DiscreteConfig

// RankModelResult is the measured rank statistics of a model run.
type RankModelResult = ranksim.Result

// RunRankModel simulates the sequential SMQ process of the paper's
// analysis and reports removed-element rank statistics (Theorem 1).
func RunRankModel(cfg RankModelConfig) RankModelResult {
	return ranksim.RunDiscrete(cfg)
}

// RankTheoremBound evaluates Theorem 1's scaling for the expected
// average rank: O(nB(1+γ)/p · log((1+γ)/p)).
func RankTheoremBound(queues, batch int, stealProb, gamma float64) float64 {
	return ranksim.TheoremBound(queues, batch, stealProb, gamma)
}
