// Command benchcheck parses, schema-validates, and merges
// perf-trajectory JSON files (the BENCH_PR<n>.json artifacts written by
// `smqbench -json` and the shard fragments written by
// `smqbench -fragment`).
//
// Usage:
//
//	benchcheck [BENCH_PR5.json ...]
//	benchcheck merge -o merged.json frag0.json frag1.json [...]
//	benchcheck diff [-threshold 0.25] [-flagged] [-workload hold] [-fail] [-failfamily cbpq] old.json new.json
//
// With no arguments, benchcheck validates every BENCH_*.json in the
// current directory — the committed trajectory history — and fails if
// the glob matches nothing.
//
// `smqbench -json` already validates the report it is about to write;
// benchcheck closes the remaining gap by re-reading the bytes actually
// on disk, so CI fails if the serialized artifact stops parsing or
// drifts from the schema (including the committed trajectory history).
// Exit status is non-zero on the first invalid file.
//
// The merge subcommand combines shard fragments from parallel runs
// (different processes, machines, or CI matrix jobs) into one
// self-validating artifact via perfbench.Merge: experiment grids must
// end up complete and non-overlapping, and the output is independent of
// the input file order. Feed the merged file back to
// `smqbench -assemble` to render the tables.
//
// The diff subcommand compares two trajectory artifacts scheduler by
// scheduler (scalar, batched and hold throughput, elimination and
// combining counters, pop p99 latency, serve throughput, desim event
// rate) and marks relative changes beyond the threshold — "!" for any
// flagged change, "!!" for changes in the harmful direction, "!!!" for
// hard errors. It is informational by default (exit 0 even with
// regressions: benchmark numbers from different machines are not a
// pass/fail gate); -fail turns harmful-direction flags into a nonzero
// exit for same-machine gating, and -failfamily does the same for an
// opt-in allowlist of scheduler families (so CI can gate the cbpq tier
// it measures on stable runners without gating every scheduler).
// -workload restricts the table to one facet (scalar, batched, hold,
// latency, serve, desim). Two outcomes fail regardless of flags: an
// unparseable/invalid artifact, and a hard error — a desim run whose
// causality-violation count increased while its lookahead window
// claimed an exact rank bound, which is a broken correctness claim
// rather than a performance delta.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"repro/internal/perfbench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		runMerge(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	paths := os.Args[1:]
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fail("BENCH_*.json", err)
		}
		sort.Strings(paths)
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "benchcheck: no files given and no BENCH_*.json in the current directory")
			fmt.Fprintln(os.Stderr, "usage: benchcheck [trajectory.json ...] | benchcheck merge -o out.json frag.json ... | benchcheck diff old.json new.json")
			os.Exit(2)
		}
	}
	for _, path := range paths {
		r := load(path)
		fmt.Printf("%s: ok (schema %d, %d bench results, %d serve runs, %d desim runs, %d experiment fragments)\n",
			path, r.SchemaVersion, len(r.Results), len(r.Serve), len(r.Desim), len(r.Experiments))
	}
}

// runMerge implements `benchcheck merge -o out.json frag.json ...`.
func runMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("o", "-", "output path for the merged report ('-' for stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck merge [-o out.json] frag0.json frag1.json [...]")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fs.Usage()
		os.Exit(2)
	}
	reports := make([]*perfbench.Report, 0, fs.NArg())
	for _, path := range fs.Args() {
		reports = append(reports, load(path))
	}
	merged, err := perfbench.Merge(reports)
	if err != nil {
		fail("merge", err)
	}
	data, err := perfbench.Marshal(merged)
	if err != nil {
		fail("merge", err)
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fail("stdout", err)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(*out, err)
	}
	fmt.Fprintf(os.Stderr, "merged %d reports: %d experiment fragments, %d bench results, %d serve runs\n",
		len(reports), len(merged.Experiments), len(merged.Results), len(merged.Serve))
}

// runDiff implements `benchcheck diff [flags] old.json new.json`.
func runDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0, "relative change that flags an entry (0 = default 0.25)")
	flagged := fs.Bool("flagged", false, "print only flagged entries")
	failOn := fs.Bool("fail", false, "exit nonzero if any flagged change points the harmful way")
	workload := fs.String("workload", "", fmt.Sprintf("restrict the diff to one workload facet (%s)", strings.Join(perfbench.Workloads(), ", ")))
	failFamily := fs.String("failfamily", "", "comma-separated scheduler families: exit nonzero on harmful regressions within them even without -fail (e.g. 'cbpq' covers cbpq, cbpq-elim and cbpq/... desim rows)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcheck diff [-threshold 0.25] [-flagged] [-workload hold] [-fail] [-failfamily cbpq] old.json new.json")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	d := perfbench.Diff(load(oldPath), load(newPath), *threshold)
	if *workload != "" {
		if !slices.Contains(perfbench.Workloads(), *workload) {
			fmt.Fprintf(os.Stderr, "benchcheck: unknown workload %q (known: %s)\n",
				*workload, strings.Join(perfbench.Workloads(), ", "))
			os.Exit(2)
		}
		d = d.FilterWorkload(*workload)
		fmt.Printf("diff %s -> %s (threshold %.0f%%, workload %s)\n", oldPath, newPath, 100*d.Threshold, *workload)
	} else {
		fmt.Printf("diff %s -> %s (threshold %.0f%%)\n", oldPath, newPath, 100*d.Threshold)
	}
	fmt.Print(d.Format(*flagged))

	exit := 0
	// Hard errors (a broken exactness claim, not a performance delta)
	// fail the diff no matter which informational flags are set.
	if hard := d.HardErrors(); len(hard) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d hard error(s) — exactness claims regressed; failing regardless of flags\n", len(hard))
		exit = 1
	}
	if reg := d.Regressions(); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d flagged regression(s) out of %d compared entries\n",
			len(reg), len(d.Entries))
		if *failOn {
			exit = 1
		}
		if fams := splitFamilies(*failFamily); len(fams) > 0 {
			for _, e := range reg {
				if inFamily(e.Scheduler, fams) {
					fmt.Fprintf(os.Stderr, "benchcheck: %s %s regressed %.1f%% (family gate %q)\n",
						e.Scheduler, e.Metric, 100*e.Delta, *failFamily)
					exit = 1
				}
			}
		}
	}
	if exit != 0 {
		os.Exit(exit)
	}
}

// splitFamilies parses the -failfamily list.
func splitFamilies(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// inFamily reports whether a diff entry's scheduler key belongs to one
// of the named families: an exact name match, a dash-suffixed variant
// (cbpq-elim), or a desim "scheduler/model" row of either.
func inFamily(key string, families []string) bool {
	name := key
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	for _, f := range families {
		if name == f || strings.HasPrefix(name, f+"-") {
			return true
		}
	}
	return false
}

// load reads, parses and schema-validates one report, exiting on error.
func load(path string) *perfbench.Report {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(path, err)
	}
	r, err := perfbench.Parse(data)
	if err != nil {
		fail(path, err)
	}
	if err := perfbench.Validate(r); err != nil {
		fail(path, err)
	}
	return r
}

func fail(path string, err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
	os.Exit(1)
}
