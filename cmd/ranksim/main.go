// Command ranksim runs the paper's §3 analytical model: the sequential
// SMQ rank process, its continuous balls-into-bins coupling, and the
// classic (1+β)-choice process, printing rank statistics next to
// Theorem 1's bound.
//
// Usage:
//
//	ranksim -process discrete -queues 16 -psteal 0.125 -batch 4
//	ranksim -process continuous -queues 64 -psteal 0.25
//	ranksim -process beta -queues 64 -beta 0.125
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ranksim"
)

func main() {
	var (
		process  = flag.String("process", "discrete", "discrete, continuous, or beta")
		queues   = flag.Int("queues", 16, "number of queues / bins (n)")
		elements = flag.Int("elements", 200000, "initial insertions (discrete)")
		steps    = flag.Int("steps", 0, "removal steps (0 = auto)")
		psteal   = flag.Float64("psteal", 0.125, "stealing probability")
		beta     = flag.Float64("beta", 0.25, "beta for the (1+β) process")
		batch    = flag.Int("batch", 1, "batch size B")
		gamma    = flag.Float64("gamma", 0, "scheduler unfairness γ in [0, 1/2]")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	switch *process {
	case "discrete":
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: *queues, Elements: *elements, Steps: *steps,
			StealProb: *psteal, Batch: *batch, Gamma: *gamma, Seed: *seed,
		})
		fmt.Printf("discrete SMQ process: n=%d B=%d psteal=%g gamma=%g\n",
			*queues, *batch, *psteal, *gamma)
		fmt.Printf("  removed:           %d elements\n", res.Removed)
		fmt.Printf("  mean removed rank: %.2f\n", res.MeanRemovedRank)
		fmt.Printf("  max removed rank:  %d\n", res.MaxRemovedRank)
		fmt.Printf("  Theorem 1 scaling: %.2f (up to constants)\n",
			ranksim.TheoremBound(*queues, *batch, *psteal, *gamma))
		fmt.Println("  step  avgTopRank  maxTopRank")
		for _, s := range res.Samples {
			fmt.Printf("  %-6d %-11.2f %d\n", s.Step, s.AvgTopRank, s.MaxTopRank)
		}
	case "continuous":
		res := ranksim.RunContinuousSMQ(ranksim.ContinuousConfig{
			Bins: *queues, Steps: *steps, StealProb: *psteal,
			Batch: *batch, Gamma: *gamma, Seed: *seed,
		})
		printContinuous("continuous SMQ coupling", res)
	case "beta":
		res := ranksim.RunOnePlusBeta(ranksim.ContinuousConfig{
			Bins: *queues, Steps: *steps, Beta: *beta, Batch: *batch, Seed: *seed,
		})
		printContinuous(fmt.Sprintf("(1+β) process, β=%g", *beta), res)
	default:
		fmt.Fprintf(os.Stderr, "ranksim: unknown process %q\n", *process)
		os.Exit(2)
	}
}

func printContinuous(name string, res ranksim.ContinuousResult) {
	fmt.Printf("%s\n", name)
	fmt.Printf("  stationary mean top rank (avg): %.2f\n", res.MeanTopAvg)
	fmt.Printf("  stationary mean top rank (max): %.2f\n", res.MeanTopMax)
	fmt.Println("  step  avgTopRank  maxTopRank")
	for _, s := range res.Samples {
		fmt.Printf("  %-6d %-11.2f %d\n", s.Step, s.AvgTopRank, s.MaxTopRank)
	}
}
