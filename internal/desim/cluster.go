package desim

import (
	"fmt"

	"repro/internal/perfbench"
	"repro/internal/xrand"
)

// Event kinds shared by the built-in models.
const (
	evArrival    uint8 = 1
	evCompletion uint8 = 2
	evTask       uint8 = 3
)

// ClusterConfig parameterizes the simulated serving cluster.
type ClusterConfig struct {
	// Stations is the number of service stations (independent FIFO
	// servers). 0 means 64.
	Stations int
	// ArrivalsPerStation is each station's arrival-chain length; the
	// run executes exactly 2·Stations·ArrivalsPerStation events (one
	// arrival + one completion each). 0 means 1024.
	ArrivalsPerStation int
	// Tenants and TenantSkew shape the Zipf tenant mix. 0 means 8
	// tenants at skew 0.99.
	Tenants    int
	TenantSkew float64
	// MeanGap is the mean interarrival gap per station in simulated
	// ticks. 0 means 400.
	MeanGap float64
	// ServiceMin/ServiceMax/ServiceAlpha shape the bounded-Pareto
	// service cost. Zeros mean [16, 4096] ticks at tail index 1.5.
	ServiceMin, ServiceMax float64
	ServiceAlpha           float64
	// Workers must match the Config.Workers of the run (per-worker
	// result shards). Required.
	Workers int
	// Seed makes the whole simulation reproducible. 0 means 1.
	Seed uint64
}

func (c *ClusterConfig) normalize() error {
	if c.Workers <= 0 {
		return fmt.Errorf("desim: ClusterConfig.Workers = %d, must be positive", c.Workers)
	}
	if c.Stations <= 0 {
		c.Stations = 64
	}
	if c.ArrivalsPerStation <= 0 {
		c.ArrivalsPerStation = 1024
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.TenantSkew == 0 {
		c.TenantSkew = 0.99
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 400
	}
	if c.ServiceMin <= 0 {
		c.ServiceMin = 16
	}
	if c.ServiceMax <= c.ServiceMin {
		c.ServiceMax = 4096
	}
	if c.ServiceAlpha <= 0 {
		c.ServiceAlpha = 1.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// station is one FIFO server. Its arrival events are self-chained —
// arrival n pushes arrival n+1 — so exactly one event ever touches a
// station concurrently and the fields need no synchronization: the
// scheduler's push→pop edge orders chain steps.
type station struct {
	rng       xrand.Rand
	busyUntil uint64
	done      int
	_         [24]byte
}

// clusterShard is one worker's slice of the commutative outputs.
type clusterShard struct {
	completed uint64
	checksum  uint64
	_         [48]byte
}

// Cluster simulates an open-loop serving cluster: per-station Poisson
// arrivals carrying Zipf-distributed tenants and bounded-Pareto service
// costs drain through FIFO servers. Every quantity a run reports is
// either per-station sequential state (owned by the arrival chain) or
// commutative (counts, checksums, histogram merges), so the simulated
// outcome — per-tenant completions, sojourn percentiles, checksum — is
// bitwise identical across schedulers and worker counts. What differs
// between schedulers is only how far events run ahead of global
// simulated time, which the engine's causality window measures.
type Cluster struct {
	cfg      ClusterConfig
	zipf     *xrand.Zipf
	pareto   *xrand.BoundedPareto
	stations []station
	shards   []clusterShard
	// hists is Workers×Tenants sojourn histograms, merged per tenant
	// after the run.
	hists []perfbench.Histogram
}

// NewCluster builds a cluster model. The model is single-use: run it,
// read the results, and build a fresh one for the next run.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		zipf:     xrand.NewZipf(cfg.Tenants, cfg.TenantSkew),
		pareto:   xrand.NewBoundedPareto(cfg.ServiceMin, cfg.ServiceMax, cfg.ServiceAlpha),
		stations: make([]station, cfg.Stations),
		shards:   make([]clusterShard, cfg.Workers),
		hists:    make([]perfbench.Histogram, cfg.Workers*cfg.Tenants),
	}
	for i := range c.stations {
		c.stations[i].rng.Seed(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return c, nil
}

func (c *Cluster) Name() string { return "cluster" }

// Horizon over-estimates the largest plausible timestamp. The window
// clamps later timestamps into its last bucket, which only relaxes the
// check for those stragglers, so a generous estimate is safe.
func (c *Cluster) Horizon() uint64 {
	arrivalSpan := float64(c.cfg.ArrivalsPerStation) * c.cfg.MeanGap * 8
	backlog := c.cfg.ServiceMax * 64
	return uint64(arrivalSpan+backlog) + 1024
}

// Events reports the exact event count a full run executes.
func (c *Cluster) Events() uint64 {
	return 2 * uint64(c.cfg.Stations) * uint64(c.cfg.ArrivalsPerStation)
}

// Seed pushes each station's first arrival, staggered by one random
// gap so stations do not start phase-locked.
func (c *Cluster) Seed(push Pusher) {
	for i := range c.stations {
		push(Event{T: c.gap(&c.stations[i]), Kind: evArrival, A: uint32(i)})
	}
}

func (c *Cluster) gap(st *station) uint64 {
	g := uint64(st.rng.ExpFloat64() * c.cfg.MeanGap)
	if g == 0 {
		g = 1
	}
	return g
}

// Handle executes one event. Arrivals run the station's FIFO recurrence
// and schedule both the job's completion and the chain's next arrival;
// completions record the (already decided) sojourn into the handling
// worker's shard.
func (c *Cluster) Handle(worker int, ev Event, push Pusher) {
	switch ev.Kind {
	case evArrival:
		st := &c.stations[ev.A]
		tenant := c.zipf.Sample(&st.rng)
		svc := uint64(c.pareto.Sample(&st.rng))
		if svc == 0 {
			svc = 1
		}
		start := st.busyUntil
		if ev.T > start {
			start = ev.T
		}
		finish := start + svc
		st.busyUntil = finish
		push(Event{T: finish, Kind: evCompletion, A: uint32(tenant), B: uint32(finish - ev.T)})
		st.done++
		if st.done < c.cfg.ArrivalsPerStation {
			push(Event{T: ev.T + c.gap(st), Kind: evArrival, A: ev.A})
		}
	case evCompletion:
		sh := &c.shards[worker]
		sh.completed++
		sh.checksum += mix64(ev.T ^ uint64(ev.A)<<40 ^ uint64(ev.B))
		c.hists[worker*c.cfg.Tenants+int(ev.A)].Record(uint64(ev.B) + 1)
	default:
		panic(fmt.Sprintf("desim: cluster got unknown event kind %d", ev.Kind))
	}
}

// Checksum is the commutative digest of every completion (finish time,
// tenant, sojourn). Two schedulers that simulated the same cluster
// produce the same value; a lost, duplicated or corrupted event breaks
// it with probability ~1.
func (c *Cluster) Checksum() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].checksum
	}
	return mix64(sum ^ c.Completed())
}

// Completed sums completions across worker shards.
func (c *Cluster) Completed() uint64 {
	var n uint64
	for i := range c.shards {
		n += c.shards[i].completed
	}
	return n
}

// PerTenant merges the worker-sharded histograms into per-tenant
// sojourn percentiles (simulated ticks, +1 recording offset removed by
// no one: the offset is identical across schedulers, so the identity
// contract is unaffected).
func (c *Cluster) PerTenant() []perfbench.TenantDesimResult {
	out := make([]perfbench.TenantDesimResult, c.cfg.Tenants)
	for t := 0; t < c.cfg.Tenants; t++ {
		var merged perfbench.Histogram
		for w := 0; w < c.cfg.Workers; w++ {
			merged.Merge(&c.hists[w*c.cfg.Tenants+t])
		}
		out[t] = perfbench.TenantDesimResult{
			Tenant:    t,
			Completed: merged.Count(),
			P50:       merged.Quantile(0.50),
			P99:       merged.Quantile(0.99),
			P999:      merged.Quantile(0.999),
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer — the repository's standard bit
// mixer for checksums and derived seeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
