// Package ranksim implements the analytical model of §3: the simplified
// sequential SMQ process of Listing 3, the continuous balls-into-bins
// coupling of the proof (Appendix A), and the classic (1+β)-choice
// process of Peres, Talwar and Wieder used as the comparison yardstick.
//
// These simulators validate Theorem 1 empirically: for the SMQ process
// with n queues, batch size B, stealing probability p_steal and scheduler
// unfairness γ (with γ(1/p_steal − 1) ≤ 1/(2n)), the expected rank of
// removed elements is O(nB(1+γ)/p_steal · log((1+γ)/p_steal)), uniformly
// over time. The cmd/ranksim tool and the `theory` experiment print the
// measured rank curves next to the theorem's scaling.
package ranksim

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Pi builds a scheduling distribution over n threads with unfairness γ:
// half the threads receive the minimum allowed probability
// 1/(n(1+γ)) and the other half the complementary value, so that
// 1−γ ≤ 1/(π_i·n) ≤ 1+γ holds for every i (the model's assumption).
// γ = 0 yields the uniform distribution.
func Pi(n int, gamma float64) []float64 {
	if n <= 0 {
		panic("ranksim: need at least one thread")
	}
	if gamma < 0 || gamma > 0.5 {
		panic("ranksim: gamma must be in [0, 1/2]")
	}
	pi := make([]float64, n)
	if gamma == 0 || n == 1 {
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		return pi
	}
	lo := 1 / (float64(n) * (1 + gamma))
	half := n / 2
	rest := n - half
	// Remaining mass spread over the other threads; stays within the
	// allowed band because (1+2γ)/(1+γ) ≤ 1/(1−γ) for γ ≥ 0.
	hi := (1 - float64(half)*lo) / float64(rest)
	for i := 0; i < half; i++ {
		pi[i] = lo
	}
	for i := half; i < n; i++ {
		pi[i] = hi
	}
	return pi
}

// ValidatePi checks the model bound 1−γ ≤ 1/(π_i n) ≤ 1+γ.
func ValidatePi(pi []float64, gamma float64) error {
	n := float64(len(pi))
	sum := 0.0
	for i, p := range pi {
		inv := 1 / (p * n)
		const slack = 1e-9
		if inv < 1-gamma-slack || inv > 1+gamma+slack {
			return fmt.Errorf("ranksim: pi[%d]=%g violates band for gamma=%g (1/(pi*n)=%g)", i, p, gamma, inv)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ranksim: pi sums to %g", sum)
	}
	return nil
}

// DiscreteConfig parameterizes the Listing 3 process.
type DiscreteConfig struct {
	Queues    int     // n
	Elements  int     // T: initial insertions, in increasing rank order
	Steps     int     // removal steps; capped so queues stay non-empty
	StealProb float64 // p_steal
	Batch     int     // B: extractTopB size
	Gamma     float64 // scheduler unfairness γ
	Seed      uint64
	// SampleEvery sets how often top-rank statistics are recorded;
	// default max(1, Steps/64).
	SampleEvery int
}

func (c *DiscreteConfig) normalize() {
	if c.Queues <= 0 {
		panic("ranksim: Queues must be positive")
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Elements <= 0 {
		c.Elements = 100000
	}
	maxSteps := c.Elements / (2 * c.Batch)
	if c.Steps <= 0 || c.Steps > maxSteps {
		c.Steps = maxSteps
	}
	if c.StealProb < 0 {
		c.StealProb = 0
	}
	if c.StealProb > 1 {
		c.StealProb = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.Steps/64 + 1
	}
}

// Sample is one time point of rank statistics over the queue tops.
type Sample struct {
	Step       int
	AvgTopRank float64 // mean rank over the Bn top elements
	MaxTopRank int     // max rank among the top elements
}

// Result aggregates a simulation run.
type Result struct {
	Samples []Sample
	// MeanRemovedRank is the average rank (among all remaining elements)
	// of every element removed during the run — the paper's "rank cost".
	MeanRemovedRank float64
	// MaxRemovedRank is the worst single removal.
	MaxRemovedRank int
	// Removed counts removed elements.
	Removed int
}

// RunDiscrete simulates the sequential SMQ process of Listing 3 and
// §3's analytical model: T ranked elements inserted up front (queue
// chosen i.i.d. from π per element), then Steps removal operations, each
// picking a thread from π and stealing with probability p_steal.
func RunDiscrete(cfg DiscreteConfig) Result {
	cfg.normalize()
	rng := xrand.New(cfg.Seed)
	pi := Pi(cfg.Queues, cfg.Gamma)
	cum := cumulative(pi)

	// queues[i] holds ascending element values; head indexes the top.
	queues := make([][]int32, cfg.Queues)
	heads := make([]int, cfg.Queues)
	for t := 0; t < cfg.Elements; t++ {
		i := sampleCum(cum, rng)
		queues[i] = append(queues[i], int32(t))
	}
	present := NewFenwick(cfg.Elements)
	for t := 0; t < cfg.Elements; t++ {
		present.Add(t, 1)
	}

	top := func(i int) int {
		if heads[i] >= len(queues[i]) {
			return cfg.Elements // +inf sentinel
		}
		return int(queues[i][heads[i]])
	}

	res := Result{}
	sumRemoved := 0.0
	for step := 0; step < cfg.Steps; step++ {
		i := sampleCum(cum, rng)
		src := i
		if cfg.StealProb > 0 && rng.Bernoulli(cfg.StealProb) {
			j := rng.Intn(cfg.Queues)
			if top(j) < top(i) {
				src = j
			}
		}
		if top(src) == cfg.Elements {
			// Model assumes non-empty queues; with the step cap this is
			// rare. Fall back to any non-empty queue.
			src = -1
			for k := 0; k < cfg.Queues; k++ {
				if top(k) < cfg.Elements {
					src = k
					break
				}
			}
			if src < 0 {
				break
			}
		}
		for b := 0; b < cfg.Batch && top(src) < cfg.Elements; b++ {
			v := top(src)
			rank := present.RankOf(v)
			sumRemoved += float64(rank)
			if rank > res.MaxRemovedRank {
				res.MaxRemovedRank = rank
			}
			present.Add(v, -1)
			heads[src]++
			res.Removed++
		}
		if step%cfg.SampleEvery == 0 {
			res.Samples = append(res.Samples, sampleTops(cfg, queues, heads, present, step))
		}
	}
	if res.Removed > 0 {
		res.MeanRemovedRank = sumRemoved / float64(res.Removed)
	}
	return res
}

// sampleTops measures the rank of the top B elements of each queue.
func sampleTops(cfg DiscreteConfig, queues [][]int32, heads []int, present *Fenwick, step int) Sample {
	s := Sample{Step: step}
	count := 0
	sum := 0.0
	for i := range queues {
		for b := 0; b < cfg.Batch; b++ {
			idx := heads[i] + b
			if idx >= len(queues[i]) {
				break
			}
			r := present.RankOf(int(queues[i][idx]))
			sum += float64(r)
			if r > s.MaxTopRank {
				s.MaxTopRank = r
			}
			count++
		}
	}
	if count > 0 {
		s.AvgTopRank = sum / float64(count)
	}
	return s
}

func cumulative(pi []float64) []float64 {
	cum := make([]float64, len(pi))
	total := 0.0
	for i, p := range pi {
		total += p
		cum[i] = total
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return cum
}

func sampleCum(cum []float64, rng *xrand.Rand) int {
	x := rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
