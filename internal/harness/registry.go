package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/emq"
	"repro/internal/mq"
	"repro/internal/ranksim"
	"repro/internal/sched"
)

// RunConfig controls an experiment run's scale and sweep dimensions.
type RunConfig struct {
	// Scale multiplies graph sizes (1 = laptop-small; the paper's inputs
	// are far larger — see DESIGN.md substitutions).
	Scale int
	// Threads is the thread sweep for comparison experiments.
	Threads []int
	// MaxThreads is the fixed thread count for ablation grids (the paper
	// runs those at the machine's maximum).
	MaxThreads int
	// Reps repeats every measurement, keeping the fastest run.
	Reps int
	// Validate checks every run's output against sequential baselines.
	Validate bool
}

func (c *RunConfig) normalize() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4}
	}
	if c.MaxThreads < 1 {
		c.MaxThreads = c.Threads[len(c.Threads)-1]
	}
	if c.Reps < 1 {
		c.Reps = 1
	}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper this regenerates
	Desc  string
	Run   func(cfg RunConfig) ([]Table, error)
}

// Registry lists every experiment, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "table1", Paper: "Table 1", Desc: "input graph inventory (substituted generators)", Run: runTable1},
		{ID: "table2", Paper: "Tables 2-3", Desc: "classic Multi-Queue speedup for C in 2..8", Run: runTable2},
		{ID: "fig1", Paper: "Figure 1 (+ Figs 17-18, Tables 12-13)", Desc: "SMQ-heap psteal × steal-size ablation", Run: runFig1Heap},
		{ID: "fig19", Paper: "Figures 19-20, Tables 14-15", Desc: "SMQ-skiplist psteal × steal-size ablation", Run: runFig19Skip},
		{ID: "fig2", Paper: "Figure 2 (+ Figs 21-22)", Desc: "main scheduler comparison across 12 benchmarks", Run: runFig2},
		{ID: "fig3", Paper: "Figures 3-6", Desc: "OBIM and PMOD delta × chunk tuning", Run: runFig3},
		{ID: "fig7", Paper: "Figures 7-8, Tables 4-5", Desc: "MQ insert=TL × delete=TL grid", Run: runFig7},
		{ID: "fig9", Paper: "Figures 9-10, Tables 6-7", Desc: "MQ insert=TL × delete=batch grid", Run: runFig9},
		{ID: "fig11", Paper: "Figures 11-12, Tables 8-9", Desc: "MQ insert=batch × delete=TL grid", Run: runFig11},
		{ID: "fig13", Paper: "Figures 13-14, Tables 10-11", Desc: "MQ insert=batch × delete=batch grid", Run: runFig13},
		{ID: "fig15", Paper: "Figures 15-16", Desc: "best MQ optimization combinations side by side", Run: runFig15},
		{ID: "emq", Paper: "Williams et al. 2021 (follow-up baseline)", Desc: "engineered MultiQueue stickiness × buffer-size ablation", Run: runEMQ},
		{ID: "klsm", Paper: "Wimmer et al. 2015 (k-LSM baseline)", Desc: "k-LSM relaxation ablation (local-LSM bound k sweep)", Run: runKLSM},
		{ID: "geom", Paper: "Rihani et al. 2014 (scenario extension)", Desc: "k-NN graph + Euclidean MST over point sets, schedulers × distributions", Run: runGeom},
		{ID: "numa", Paper: "Tables 16-27", Desc: "NUMA weight K sweep for MQ and SMQ variants", Run: runNUMA},
		{ID: "serve", Paper: "extension (open-loop serving)", Desc: "offered-load × scheduler grid through the streaming service front-end", Run: runServe},
		{ID: "theory", Paper: "Theorem 1 (§3)", Desc: "rank bounds of the SMQ process vs the (1+β) coupling", Run: runTheory},
		{ID: "rankprobe", Paper: "§5 (wasted-work mechanism)", Desc: "empirical rank relaxation of every scheduler implementation", Run: runRankProbe},
	}
}

// Find locates an experiment by id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared helpers

// fm formats a float compactly.
func fm(v float64) string { return fmt.Sprintf("%.2f", v) }

// speedupCell renders "speedup/workIncrease", the format of the paper's
// ablation heatmaps.
func speedupCell(speedup, work float64) string {
	return fmt.Sprintf("%.2f/%.2f", speedup, work)
}

// classicBaselines measures the classic MQ (C=4) on every workload at the
// given thread count — the ablation experiments' reference point.
func classicBaselines(ws []*Workload, threads, reps int, validate bool) (map[string]Measurement, error) {
	spec := SchedulerSpec{Name: "MQ Classic", Params: "C=4", Make: ClassicMQBaseline}
	out := make(map[string]Measurement, len(ws))
	for _, w := range ws {
		m, err := Measure(w, spec, threads, reps, validate)
		if err != nil {
			return nil, err
		}
		out[w.Name] = m
	}
	return out, nil
}

// gridExperiment runs a two-parameter scheduler grid on the quick
// workload set, producing one speedup/work table per workload, relative
// to the classic MQ baseline at the same thread count.
func gridExperiment(
	cfg RunConfig,
	title string,
	rowName string, rowVals []string,
	colName string, colVals []string,
	mk func(row, col int) SchedulerSpec,
) ([]Table, error) {
	cfg.normalize()
	ws := QuickWorkloads(cfg.Scale)
	base, err := classicBaselines(ws, cfg.MaxThreads, cfg.Reps, cfg.Validate)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, w := range ws {
		t := Table{
			Title:  fmt.Sprintf("%s — %s (cells: speedup/work-increase vs classic MQ, %d threads)", title, w.Name, cfg.MaxThreads),
			Header: append([]string{rowName + `\` + colName}, colVals...),
		}
		b := base[w.Name]
		for ri, rv := range rowVals {
			row := []string{rv}
			for ci := range colVals {
				m, err := Measure(w, mk(ri, ci), cfg.MaxThreads, cfg.Reps, cfg.Validate)
				if err != nil {
					return nil, err
				}
				speedup := safeRatio(b.Duration, m.Duration)
				work := safeDiv(float64(m.Tasks), float64(b.Tasks))
				row = append(row, speedupCell(speedup, work))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func safeRatio(base, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(base) / float64(d)
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ---------------------------------------------------------------------------
// table1

func runTable1(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	t := Table{
		Title:  "Table 1 — input graphs (synthetic substitutes; see DESIGN.md §2)",
		Header: []string{"Graph", "|V|", "|E|", "MaxDeg", "AvgDeg", "Coords", "Description"},
	}
	desc := map[string]string{
		"USA":     "road grid standing in for full USA roads",
		"WEST":    "road grid standing in for western USA roads",
		"TWITTER": "RMAT power-law graph standing in for Twitter follows",
		"WEB":     "RMAT power-law graph standing in for the .sk web crawl",
	}
	ws := StandardWorkloads(cfg.Scale)
	seen := map[string]bool{}
	for _, w := range ws {
		name := w.Name[len(w.Name)-len(graphSuffix(w.Name)):]
		if seen[name] {
			continue
		}
		seen[name] = true
		s := w.Graph.Stat(name)
		t.AddRow(s.Name, fmt.Sprint(s.N), fmt.Sprint(s.M), fmt.Sprint(s.MaxDeg),
			fm(s.AvgDeg), fmt.Sprint(s.HasCoords), desc[name])
	}
	return []Table{t}, nil
}

func graphSuffix(workload string) string {
	for i := len(workload) - 1; i >= 0; i-- {
		if workload[i] == ' ' {
			return workload[i+1:]
		}
	}
	return workload
}

// ---------------------------------------------------------------------------
// table2: classic MQ with C in 2..8

func runTable2(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	ws := StandardWorkloads(cfg.Scale)
	t := Table{
		Title:  fmt.Sprintf("Tables 2-3 — classic Multi-Queue speedup vs sequential baseline (%d threads)", cfg.MaxThreads),
		Header: []string{"Benchmark", "C=2", "C=3", "C=4", "C=5", "C=6", "C=7", "C=8"},
	}
	for _, w := range ws {
		_, seqDur := w.SeqBaseline()
		row := []string{w.Name}
		for c := 2; c <= 8; c++ {
			spec := SchedulerSpec{
				Name: fmt.Sprintf("MQ C=%d", c),
				Make: func(workers int) sched.Scheduler[uint32] {
					return mq.New[uint32](mq.Classic(workers, c))
				},
			}
			m, err := Measure(w, spec, cfg.MaxThreads, cfg.Reps, cfg.Validate)
			if err != nil {
				return nil, err
			}
			row = append(row, fm(safeRatio(seqDur, m.Duration)))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------------
// fig1 / fig19: SMQ ablations

var ablationStealProbs = []struct {
	label string
	p     float64
}{
	{"1/2", 0.5}, {"1/4", 0.25}, {"1/8", 0.125}, {"1/16", 0.0625}, {"1/32", 0.03125}, {"1/64", 0.015625},
}

var ablationStealSizes = []int{1, 2, 4, 8, 16, 64}

func runFig1Heap(cfg RunConfig) ([]Table, error) {
	rows := make([]string, len(ablationStealProbs))
	for i, sp := range ablationStealProbs {
		rows[i] = sp.label
	}
	cols := make([]string, len(ablationStealSizes))
	for i, sz := range ablationStealSizes {
		cols[i] = fmt.Sprint(sz)
	}
	return gridExperiment(cfg, "Figure 1 — SMQ (d-ary heaps)", "psteal", rows, "stealSize", cols,
		func(ri, ci int) SchedulerSpec {
			return SMQSpec("SMQ", ablationStealSizes[ci], ablationStealProbs[ri].p, 0)
		})
}

func runFig19Skip(cfg RunConfig) ([]Table, error) {
	rows := make([]string, len(ablationStealProbs))
	for i, sp := range ablationStealProbs {
		rows[i] = sp.label
	}
	cols := make([]string, len(ablationStealSizes))
	for i, sz := range ablationStealSizes {
		cols[i] = fmt.Sprint(sz)
	}
	return gridExperiment(cfg, "Figures 19-20 — SMQ (skip lists)", "psteal", rows, "stealSize", cols,
		func(ri, ci int) SchedulerSpec {
			p := ablationStealProbs[ri].p
			sz := ablationStealSizes[ci]
			return SchedulerSpec{
				Name:   "SMQ SkipList",
				Params: fmt.Sprintf("steal=%d psteal=%.3g", sz, p),
				Make: func(workers int) sched.Scheduler[uint32] {
					return core.NewStealingMQSkipList[uint32](core.Config{
						Workers: workers, StealSize: sz, StealProb: p})
				},
			}
		})
}

// ---------------------------------------------------------------------------
// fig2: the main comparison

func runFig2(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	ws := StandardWorkloads(cfg.Scale)
	specs := StandardSchedulers()

	var tables []Table
	for _, w := range ws {
		seqTasks, _ := w.SeqBaseline()
		// Paper baseline: classic Multi-Queue on one thread.
		baseSpec := SchedulerSpec{Name: "MQ Classic", Params: "C=4", Make: ClassicMQBaseline}
		base, err := Measure(w, baseSpec, 1, cfg.Reps, cfg.Validate)
		if err != nil {
			return nil, err
		}
		t := Table{
			Title:  fmt.Sprintf("Figure 2 — %s (speedup vs classic MQ on 1 thread; work vs sequential)", w.Name),
			Header: []string{"Scheduler", "Threads", "Time", "Speedup", "WorkIncrease", "RemoteFrac"},
		}
		for _, spec := range specs {
			for _, th := range cfg.Threads {
				m, err := Measure(w, spec, th, cfg.Reps, cfg.Validate)
				if err != nil {
					return nil, err
				}
				t.AddRow(spec.Name, fmt.Sprint(th), m.Duration.Round(time.Microsecond).String(),
					fm(safeRatio(base.Duration, m.Duration)),
					fm(safeDiv(float64(m.Tasks), float64(seqTasks))),
					fm(m.Remote))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ---------------------------------------------------------------------------
// fig3: OBIM / PMOD tuning

func runFig3(cfg RunConfig) ([]Table, error) {
	deltas := []uint32{2, 4, 8, 12, 16}
	chunks := []int{1, 8, 32, 64, 256}
	rows := make([]string, len(deltas))
	for i, d := range deltas {
		rows[i] = fmt.Sprint(d)
	}
	cols := make([]string, len(chunks))
	for i, c := range chunks {
		cols[i] = fmt.Sprint(c)
	}
	obimTables, err := gridExperiment(cfg, "Figures 3/5 — OBIM tuning", "delta", rows, "chunk", cols,
		func(ri, ci int) SchedulerSpec {
			return OBIMSpec("OBIM", deltas[ri], chunks[ci], false)
		})
	if err != nil {
		return nil, err
	}
	pmodTables, err := gridExperiment(cfg, "Figures 4/6 — PMOD tuning", "delta", rows, "chunk", cols,
		func(ri, ci int) SchedulerSpec {
			return OBIMSpec("PMOD", deltas[ri], chunks[ci], true)
		})
	if err != nil {
		return nil, err
	}
	return append(obimTables, pmodTables...), nil
}

// ---------------------------------------------------------------------------
// fig7..fig13: classic MQ optimization grids

var tlProbs = []struct {
	label string
	p     float64
}{
	{"1/1", 1}, {"1/4", 0.25}, {"1/16", 0.0625}, {"1/64", 0.015625}, {"1/256", 1.0 / 256}, {"1/1024", 1.0 / 1024},
}

var batchSizes = []int{2, 8, 32, 128, 512}

func tlLabels() []string {
	out := make([]string, len(tlProbs))
	for i, t := range tlProbs {
		out[i] = t.label
	}
	return out
}

func batchLabels() []string {
	out := make([]string, len(batchSizes))
	for i, b := range batchSizes {
		out[i] = fmt.Sprint(b)
	}
	return out
}

func mqSpec(name string, c mq.Config) SchedulerSpec {
	return SchedulerSpec{
		Name: name,
		Make: func(workers int) sched.Scheduler[uint32] {
			c2 := c
			c2.Workers = workers
			return mq.New[uint32](c2)
		},
	}
}

func runFig7(cfg RunConfig) ([]Table, error) {
	return gridExperiment(cfg, "Figures 7-8 — MQ insert=TL, delete=TL", "pinsert", tlLabels(), "pdelete", tlLabels(),
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ TL/TL", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: tlProbs[ri].p,
				Delete: mq.DeleteTemporalLocality, PDeleteChange: tlProbs[ci].p})
		})
}

func runFig9(cfg RunConfig) ([]Table, error) {
	return gridExperiment(cfg, "Figures 9-10 — MQ insert=TL, delete=batch", "pinsert", tlLabels(), "batchDelete", batchLabels(),
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ TL/B", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: tlProbs[ri].p,
				Delete: mq.DeleteBatch, BatchDelete: batchSizes[ci]})
		})
}

func runFig11(cfg RunConfig) ([]Table, error) {
	return gridExperiment(cfg, "Figures 11-12 — MQ insert=batch, delete=TL", "batchInsert", batchLabels(), "pdelete", tlLabels(),
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ B/TL", mq.Config{C: 4,
				Insert: mq.InsertBatch, BatchInsert: batchSizes[ri],
				Delete: mq.DeleteTemporalLocality, PDeleteChange: tlProbs[ci].p})
		})
}

func runFig13(cfg RunConfig) ([]Table, error) {
	return gridExperiment(cfg, "Figures 13-14 — MQ insert=batch, delete=batch", "batchInsert", batchLabels(), "batchDelete", batchLabels(),
		func(ri, ci int) SchedulerSpec {
			return mqSpec("MQ B/B", mq.Config{C: 4,
				Insert: mq.InsertBatch, BatchInsert: batchSizes[ri],
				Delete: mq.DeleteBatch, BatchDelete: batchSizes[ci]})
		})
}

// runFig15 compares a representative good configuration of each MQ
// optimization combination (the paper compares each combo's best).
func runFig15(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	ws := QuickWorkloads(cfg.Scale)
	base, err := classicBaselines(ws, cfg.MaxThreads, cfg.Reps, cfg.Validate)
	if err != nil {
		return nil, err
	}
	combos := []SchedulerSpec{
		mqSpec("TL/TL", mq.Config{C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64}),
		mqSpec("TL/B", mq.Config{C: 4, Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
			Delete: mq.DeleteBatch, BatchDelete: 8}),
		mqSpec("B/TL", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64}),
		mqSpec("B/B", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
			Delete: mq.DeleteBatch, BatchDelete: 8}),
	}
	t := Table{
		Title:  fmt.Sprintf("Figures 15-16 — MQ optimization combos (speedup/work vs classic MQ, %d threads)", cfg.MaxThreads),
		Header: []string{"Benchmark", "TL/TL", "TL/B", "B/TL", "B/B"},
	}
	for _, w := range ws {
		b := base[w.Name]
		row := []string{w.Name}
		for _, spec := range combos {
			m, err := Measure(w, spec, cfg.MaxThreads, cfg.Reps, cfg.Validate)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupCell(safeRatio(b.Duration, m.Duration),
				safeDiv(float64(m.Tasks), float64(b.Tasks))))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------------
// emq: engineered MultiQueue ablation (Williams et al. 2021)

// emqStickiness and emqBuffers span the two engineering knobs of the
// engineered MultiQueue. Stickiness 1 with buffer 1 degenerates to the
// classic per-operation Multi-Queue discipline, so the grid's corner
// doubles as a sanity anchor against the classic-MQ baseline.
var (
	emqStickiness = []int{1, 4, 16, 64}
	emqBuffers    = []int{1, 4, 16, 64}
)

func runEMQ(cfg RunConfig) ([]Table, error) {
	rows := make([]string, len(emqStickiness))
	for i, s := range emqStickiness {
		rows[i] = fmt.Sprint(s)
	}
	cols := make([]string, len(emqBuffers))
	for i, b := range emqBuffers {
		cols[i] = fmt.Sprint(b)
	}
	return gridExperiment(cfg, "Engineered MultiQueue — Williams et al. 2021", "stickiness", rows, "buffer", cols,
		func(ri, ci int) SchedulerSpec {
			return EMQSpec("EMQ", emqStickiness[ri], emqBuffers[ci], 0)
		})
}

// ---------------------------------------------------------------------------
// klsm: k-LSM relaxation ablation (Wimmer et al. 2015)

// klsmRelaxations is the relaxation sweep of the klsm experiment: the
// local-LSM capacity k spans strict-ish (4) to strongly relaxed (4096),
// bracketing the k-LSM paper's headline k = 256.
var klsmRelaxations = []int{4, 64, 256, 1024, 4096}

// runKLSM measures the k-LSM across its relaxation sweep on the quick
// workload set, one row per workload, cells speedup/work-increase
// against the classic MQ baseline — the same normalization as the other
// ablation grids, so the k-LSM columns are directly comparable to the
// emq and fig1 tables.
func runKLSM(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	ws := QuickWorkloads(cfg.Scale)
	base, err := classicBaselines(ws, cfg.MaxThreads, cfg.Reps, cfg.Validate)
	if err != nil {
		return nil, err
	}
	header := []string{"Benchmark"}
	for _, k := range klsmRelaxations {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	t := Table{
		Title: fmt.Sprintf("k-LSM (Wimmer et al. 2015) — relaxation sweep (cells: speedup/work-increase vs classic MQ, %d threads)",
			cfg.MaxThreads),
		Header: header,
	}
	for _, w := range ws {
		b := base[w.Name]
		row := []string{w.Name}
		for _, k := range klsmRelaxations {
			m, err := Measure(w, KLSMSpec("kLSM", k), cfg.MaxThreads, cfg.Reps, cfg.Validate)
			if err != nil {
				return nil, err
			}
			row = append(row, speedupCell(safeRatio(b.Duration, m.Duration),
				safeDiv(float64(m.Tasks), float64(b.Tasks))))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// ---------------------------------------------------------------------------
// numa: Tables 16-27

func runNUMA(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	ws := QuickWorkloads(cfg.Scale)
	base, err := classicBaselines(ws, cfg.MaxThreads, cfg.Reps, cfg.Validate)
	if err != nil {
		return nil, err
	}
	ks := []float64{1, 2, 8, 64, 256, 1024}
	variants := []struct {
		name string
		mk   func(k float64) SchedulerSpec
	}{
		{"MQ B/B", func(k float64) SchedulerSpec {
			return mqSpec("MQ B/B", mq.Config{C: 4, Insert: mq.InsertBatch, BatchInsert: 8,
				Delete: mq.DeleteBatch, BatchDelete: 8, NUMANodes: 2, NUMAWeightK: k})
		}},
		{"MQ TL/TL", func(k float64) SchedulerSpec {
			return mqSpec("MQ TL/TL", mq.Config{C: 4,
				Insert: mq.InsertTemporalLocality, PInsertChange: 1.0 / 64,
				Delete: mq.DeleteTemporalLocality, PDeleteChange: 1.0 / 64,
				NUMANodes: 2, NUMAWeightK: k})
		}},
		{"SMQ heap", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "SMQ", Make: func(workers int) sched.Scheduler[uint32] {
				return core.NewStealingMQ[uint32](core.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k})
			}}
		}},
		{"SMQ skiplist", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "SMQ skip", Make: func(workers int) sched.Scheduler[uint32] {
				return core.NewStealingMQSkipList[uint32](core.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k})
			}}
		}},
		{"EMQ", func(k float64) SchedulerSpec {
			return SchedulerSpec{Name: "EMQ", Make: func(workers int) sched.Scheduler[uint32] {
				return emq.New[uint32](emq.Config{Workers: workers,
					NUMANodes: 2, NUMAWeightK: k})
			}}
		}},
	}
	var tables []Table
	for _, v := range variants {
		t := Table{
			Title:  fmt.Sprintf("Tables 16-27 — %s with NUMA weight K (cells: speedup/remote-fraction, %d threads, 2 virtual nodes)", v.name, cfg.MaxThreads),
			Header: append([]string{"Benchmark"}, kLabels(ks)...),
		}
		for _, w := range ws {
			b := base[w.Name]
			row := []string{w.Name}
			for _, k := range ks {
				m, err := Measure(w, v.mk(k), cfg.MaxThreads, cfg.Reps, cfg.Validate)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f/%.2f", safeRatio(b.Duration, m.Duration), m.Remote))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func kLabels(ks []float64) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("K=%g", k)
	}
	return out
}

// ---------------------------------------------------------------------------
// theory: Theorem 1 validation

func runTheory(cfg RunConfig) ([]Table, error) {
	cfg.normalize()
	elements := 200000 * cfg.Scale

	// (a) rank vs number of queues.
	ta := Table{
		Title:  "Theorem 1(a) — mean removed rank vs queues n (psteal=1/8, B=1)",
		Header: []string{"n", "MeanRank", "MaxRank", "TheoremBound"},
	}
	for _, n := range []int{4, 8, 16, 32, 64} {
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: n, Elements: elements, StealProb: 0.125, Batch: 1, Seed: 1})
		ta.AddRow(fmt.Sprint(n), fm(res.MeanRemovedRank), fmt.Sprint(res.MaxRemovedRank),
			fm(ranksim.TheoremBound(n, 1, 0.125, 0)))
	}

	// (b) rank vs stealing probability.
	tb := Table{
		Title:  "Theorem 1(b) — mean removed rank vs psteal (n=16, B=1)",
		Header: []string{"psteal", "MeanRank", "MaxRank", "TheoremBound"},
	}
	for _, p := range []float64{0.5, 0.25, 0.125, 0.0625, 0.03125} {
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: 16, Elements: elements, StealProb: p, Batch: 1, Seed: 2})
		tb.AddRow(fmt.Sprintf("%.3g", p), fm(res.MeanRemovedRank), fmt.Sprint(res.MaxRemovedRank),
			fm(ranksim.TheoremBound(16, 1, p, 0)))
	}

	// (c) rank vs batch size.
	tc := Table{
		Title:  "Theorem 1(c) — mean removed rank vs batch B (n=16, psteal=1/8)",
		Header: []string{"B", "MeanRank", "MaxRank", "TheoremBound"},
	}
	for _, b := range []int{1, 2, 4, 8, 16} {
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: 16, Elements: elements, StealProb: 0.125, Batch: b, Seed: 3})
		tc.AddRow(fmt.Sprint(b), fm(res.MeanRemovedRank), fmt.Sprint(res.MaxRemovedRank),
			fm(ranksim.TheoremBound(16, b, 0.125, 0)))
	}

	// (d) unfair scheduling within the theorem's condition.
	td := Table{
		Title:  "Theorem 1(d) — scheduler unfairness γ (n=16, psteal=1/2, B=1)",
		Header: []string{"gamma", "MeanRank", "MaxRank", "TheoremBound"},
	}
	for _, g := range []float64{0, 0.005, 0.015, 0.03} {
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: 16, Elements: elements, StealProb: 0.5, Batch: 1, Gamma: g, Seed: 4})
		td.AddRow(fmt.Sprintf("%.3g", g), fm(res.MeanRemovedRank), fmt.Sprint(res.MaxRemovedRank),
			fm(ranksim.TheoremBound(16, 1, 0.5, g)))
	}

	// (d2) classic Multi-Queue rank vs queue count. Setting p_steal = 1
	// makes the Listing-3 process pick a second uniform queue on every
	// delete and take the better top — exactly the classic Multi-Queue's
	// two-choice delete — so the same simulator covers the O(m) result
	// of Alistarh et al. that the paper builds on.
	tmq := Table{
		Title:  "Classic Multi-Queue (= SMQ process at psteal=1) — mean removed rank vs m",
		Header: []string{"m", "MeanRank", "MaxRank", "O(m) reference"},
	}
	for _, m := range []int{8, 16, 32, 64} {
		res := ranksim.RunDiscrete(ranksim.DiscreteConfig{
			Queues: m, Elements: elements, StealProb: 1, Batch: 1, Seed: 8})
		tmq.AddRow(fmt.Sprint(m), fm(res.MeanRemovedRank), fmt.Sprint(res.MaxRemovedRank), fmt.Sprint(m))
	}

	// (e) continuous SMQ process vs its (1+β) coupling.
	te := Table{
		Title:  "Appendix A — continuous SMQ vs (1+β) coupling (n=16, stationary top ranks)",
		Header: []string{"psteal", "SMQ avg", "SMQ max", "β=p/2 avg", "β=p/2 max"},
	}
	for _, p := range []float64{0.5, 0.25, 0.125} {
		smq := ranksim.RunContinuousSMQ(ranksim.ContinuousConfig{
			Bins: 16, Steps: 50000 * cfg.Scale, StealProb: p, Seed: 5})
		beta := ranksim.RunOnePlusBeta(ranksim.ContinuousConfig{
			Bins: 16, Steps: 50000 * cfg.Scale, Beta: p / 2, Seed: 5})
		te.AddRow(fmt.Sprintf("%.3g", p), fm(smq.MeanTopAvg), fm(smq.MeanTopMax),
			fm(beta.MeanTopAvg), fm(beta.MeanTopMax))
	}

	return []Table{ta, tb, tc, td, tmq, te}, nil
}
