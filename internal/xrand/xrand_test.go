package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded stream has too many repeats: %d distinct", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d want ~%.0f", i, c, want)
		}
	}
}

func TestIntnOther(t *testing.T) {
	r := New(13)
	const n = 8
	for avoid := 0; avoid < n; avoid++ {
		counts := make([]int, n)
		for i := 0; i < 8000; i++ {
			v := r.IntnOther(n, avoid)
			if v == avoid {
				t.Fatalf("IntnOther(%d, %d) returned the avoided value", n, avoid)
			}
			if v < 0 || v >= n {
				t.Fatalf("IntnOther out of range: %d", v)
			}
			counts[v]++
		}
		// All n-1 other values should appear with roughly equal frequency.
		want := 8000.0 / float64(n-1)
		for i, c := range counts {
			if i == avoid {
				continue
			}
			if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
				t.Errorf("avoid=%d bucket %d: got %d want ~%.0f", avoid, i, c, want)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(23)
	const draws = 200000
	for _, p := range []float64{0.125, 0.5, 0.9} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v): observed %v", p, got)
		}
	}
}

func TestOneIn(t *testing.T) {
	r := New(29)
	const draws = 400000
	for _, n := range []int{1, 2, 8, 10, 100} {
		hits := 0
		for i := 0; i < draws; i++ {
			if r.OneIn(n) {
				hits++
			}
		}
		got := float64(hits) / draws
		want := 1.0 / float64(n)
		if math.Abs(got-want) > 0.01+want*0.1 {
			t.Errorf("OneIn(%d): observed %v want %v", n, got, want)
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 64} {
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, out)
			}
			seen[v] = true
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(37)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1.0", mean)
	}
}

func TestIntnProperty(t *testing.T) {
	// Property: for random seeds and bounds, Intn stays in range.
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1024)
	}
	_ = sink
}
