//go:build stress

// Elevated-iteration soaks of the zoo-wide conservation suites, run by
// CI's dedicated stress job (`go test -race -tags stress`) so the main
// test job stays fast. See .github/workflows/ci.yml.

package sched_test

import (
	"runtime"
	"testing"
)

// TestStressHoldConservation soaks the decremental hold pattern
// (pop-min + push-below-head, conserveHold) across the whole zoo at
// full parallelism. For the exact tiers this hammers the structural
// worst case — for CBPQ specifically, the elimination/combining layer
// under maximum push/pop collision — while the relaxed schedulers see
// a workload whose resident set constantly drifts upward.
func TestStressHoldConservation(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveHold(t, tc.mk(workers), workers, 2000, 20000)
		})
	}
}

// TestStressMixedConservation soaks the mixed scalar+batch conservation
// workload (exactly-once accounting) at stress sizes.
func TestStressMixedConservation(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveMixed(t, tc.mk(workers), workers, 12000)
		})
	}
}
