package sched_test

// Count-conservation stress for the whole zoo, added with the lock-free
// tier: a concurrent mixed scalar/batch workload (Push, Pop, PushN,
// PopN interleaved per worker) followed by a Pending-driven drain must
// end with every pushed task popped exactly once —
// pushed == popped + remaining, and remaining == 0 after the drain.
// The scalar conformance suite already checks lost/duplicated tasks for
// scalar traffic; this suite mixes the batch fast paths into the same
// run (a batch reservation that leaks or double-publishes slots is
// invisible to scalar-only traffic) and adds an oversubscribed variant
// (more runnable threads than GOMAXPROCS) so threads get preempted
// inside publication windows — the progress-sensitive interleavings a
// spinlock scheduler never exhibits.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// conserveMixed runs the mixed workload over one scheduler and checks
// conservation. Each worker publishes perWorker tasks (alternating
// scalar pushes and PushN batches), pops opportunistically along the
// way (alternating Pop and PopN), then drains via Pending.
func conserveMixed(t *testing.T, s sched.Scheduler[uint32], workers, perWorker int) {
	t.Helper()
	total := workers * perWorker
	seen := make([]atomic.Int32, total)
	var pending sched.Pending
	pending.Inc(int64(total))
	var popped atomic.Int64

	record := func(t_ *testing.T, v uint32) {
		if int(v) >= total {
			t_.Errorf("implausible task id %d", v)
			return
		}
		if seen[v].Add(1) != 1 {
			t_.Errorf("task %d popped more than once", v)
		}
		popped.Add(1)
		pending.Dec()
	}

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			next := 0
			step := 0
			dst := make([]sched.Task[uint32], 7)
			ps := make([]uint64, 0, 5)
			vs := make([]uint32, 0, 5)
			var b sched.Backoff
			for {
				if next < perWorker {
					if step%2 == 0 {
						v := uint32(wid*perWorker + next)
						w.Push(uint64(v%509), v)
						next++
					} else {
						n := min(5, perWorker-next)
						ps, vs = ps[:0], vs[:0]
						for j := 0; j < n; j++ {
							v := uint32(wid*perWorker + next)
							ps = append(ps, uint64(v%509))
							vs = append(vs, v)
							next++
						}
						w.PushN(ps, vs)
					}
				}
				step++
				var got bool
				if step%2 == 0 {
					if n := w.PopN(dst); n > 0 {
						for _, it := range dst[:n] {
							record(t, it.V)
						}
						got = true
					}
				} else if _, v, ok := w.Pop(); ok {
					record(t, v)
					got = true
				}
				if got {
					b.Reset()
					continue
				}
				if next < perWorker {
					continue // still have our own tasks to publish
				}
				if pending.Done() {
					return
				}
				b.Wait()
			}
		}(wid)
	}
	wg.Wait()

	// remaining == 0 by Pending.Done; conservation is then
	// pushed == popped exactly.
	if got := popped.Load(); got != int64(total) {
		t.Fatalf("conservation: pushed %d, popped %d", total, got)
	}
	for v := range seen {
		if seen[v].Load() != 1 {
			t.Fatalf("task %d popped %d times", v, seen[v].Load())
		}
	}
	st := s.Stats()
	if st.Pushes != uint64(total) || st.Pops != uint64(total) {
		t.Fatalf("stats conservation: pushes=%d pops=%d, want %d each", st.Pushes, st.Pops, total)
	}
}

// TestConservationMixedBatch runs the mixed scalar+batch conservation
// workload over every zoo configuration.
func TestConservationMixedBatch(t *testing.T) {
	workers := 4
	perWorker := 3000
	if testing.Short() {
		perWorker = 400
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveMixed(t, tc.mk(workers), workers, perWorker)
		})
	}
}

// TestConservationOversubscribed reruns the mixed workload with more
// worker goroutines than GOMAXPROCS, so workers are preempted inside
// critical windows (between a slot reservation and its publication, or
// while holding a spinlock). Progress bugs of that shape never surface
// when every worker owns a core.
func TestConservationOversubscribed(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	workers := 8
	perWorker := 800
	if testing.Short() {
		perWorker = 200
	}
	for _, tc := range conformanceSchedulers() {
		t.Run(tc.name, func(t *testing.T) {
			conserveMixed(t, tc.mk(workers), workers, perWorker)
		})
	}
}
