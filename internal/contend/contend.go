// Package contend provides the contention-control primitives shared by
// every scheduler hot path in this repository: a test-and-test-and-set
// (TATAS) try-spinlock with bounded exponential backoff, and cache-line
// padding helpers that keep independently-mutated hot words off each
// other's cache lines.
//
// # Why a spinlock
//
// The Multi-Queue discipline (§2.1 of the paper, Listing 1) is built
// around TRY-locking: a contended queue is not waited for, it is
// abandoned for a fresh random sample. Critical sections are tiny — one
// heap operation plus a cached-top store — so when a worker does decide
// to block (the cold sweep paths), parking the goroutine in the futex
// layer of sync.Mutex costs far more than the critical section it waits
// for. A TATAS spinlock makes TryLock a single load-then-CAS, keeps the
// uncontended Lock/Unlock pair to two atomic operations on a word the
// owner already has in cache, and spins briefly — with exponential
// backoff, then runtime.Gosched so single-P schedules cannot livelock —
// when it must wait. Rihani, Sanders and Dementiev (2014) and Williams
// et al. (2021) both report that exactly this cheap-uncontended-lock
// property carries a large fraction of MultiQueue throughput.
//
// # Why padding
//
// False sharing is the other half of the story: m queue headers or P
// worker states packed densely into one slice means every lock CAS and
// every counter increment invalidates neighbouring elements' cache
// lines. CacheLineSize, Padded and the explicit pad arrays used by the
// scheduler packages round hot structures up to cache-line multiples so
// that unrelated workers never write the same line.
//
// All synchronization in this package goes through sync/atomic, so the
// race detector observes the same happens-before edges a sync.Mutex
// would provide: an Unlock's atomic store releases everything written in
// the critical section to the next successful TryLock/Lock CAS.
package contend

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CacheLineSize is the assumed coherence granularity in bytes. 64 is
// correct for every mainstream x86-64 and arm64 part this repository
// targets; being wrong in either direction costs a little memory or a
// little sharing, never correctness.
const CacheLineSize = 64

// Lock is a TATAS try-spinlock. The zero value is an unlocked Lock. It
// satisfies sync.Locker, so it is a drop-in replacement for sync.Mutex
// in the scheduler queue headers, and like sync.Mutex it must not be
// copied after first use.
//
// Lock is intentionally unfair: under contention the acquirer is
// whichever spinner's CAS lands first. The schedulers tolerate this by
// design — their blocking acquisitions sit on cold paths (sweeps,
// global-LSM spills) where bounded backoff plus Gosched guarantees
// progress, while the hot paths only ever TryLock.
type Lock struct {
	state atomic.Uint32
}

var _ sync.Locker = (*Lock)(nil)

// TryLock attempts to acquire l without waiting. It is a bare CAS, not
// a test-and-CAS: every TryLock caller in the schedulers reacts to
// failure by resampling a different queue rather than retrying the same
// lock, so the test's protection against CAS-looping on a held line is
// not needed here and would only lengthen the (hot) uncontended path.
// The spinning acquirer in lockSlow does test before CASing.
func (l *Lock) TryLock() bool {
	return l.state.CompareAndSwap(0, 1)
}

// Lock acquires l, spinning with bounded exponential backoff and then
// yielding the processor until the lock is free.
func (l *Lock) Lock() {
	if l.state.CompareAndSwap(0, 1) {
		return
	}
	l.lockSlow()
}

// lockSlow is kept out of Lock so the uncontended fast path stays within
// the compiler's inlining budget at call sites.
func (l *Lock) lockSlow() {
	const maxSpinShift = 6 // cap the busy-wait at 2^6 iterations per probe
	shift := 0
	for {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		if shift < maxSpinShift {
			// Bounded exponential busy-wait: cheap while the holder is
			// inside its (tiny) critical section on another P.
			for i := 0; i < 1<<shift; i++ {
				_ = i
			}
			shift++
		} else {
			// Past the bound the holder is likely descheduled (or we are
			// single-P); hand the processor over instead of burning it.
			runtime.Gosched()
		}
	}
}

// Unlock releases l. It panics when l is not locked, matching
// sync.Mutex's contract for unlock-of-unlocked misuse.
func (l *Lock) Unlock() {
	if l.state.Swap(0) != 1 {
		panic("contend: Unlock of unlocked Lock")
	}
}

// Padded wraps a value in trailing cache-line padding. Any two Padded
// values stored in distinct slice elements (or struct fields) are
// separated by at least CacheLineSize bytes, so a write to one Value can
// never invalidate a line holding a neighbour's — Go offers no portable
// way to align a slice's base, but with a full line of separation no two
// word-sized hot fields can cohabit a line regardless of the base
// address.
//
// Use it for slices of per-worker or per-queue state whose element type
// is not worth hand-padding (internal/spray's worker slice is the
// in-tree example); structs with several hot words to separate from
// each other (the schedulers' queue headers, the k-LSM global) carry
// explicit pad arrays instead, hand-sized so each hot word gets its own
// line.
type Padded[T any] struct {
	Value T
	_     [CacheLineSize]byte
}
