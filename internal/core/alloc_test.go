//go:build !race

// testing.AllocsPerRun under the race detector measures the
// instrumentation's allocations, not the scheduler's; CI runs these
// through a dedicated non-race step.

package core

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/xrand"
)

// TestSteadyStateAllocFree asserts the zero-alloc steady state of the
// SMQ: local pushes and pops on a warm heap must never allocate. (Steal
// buffer refills do allocate one immutable batch per epoch by design —
// the published-slice protocol is what keeps the seqlock race-free under
// the Go memory model — but refills only happen after a steal, which
// the single-worker steady state never triggers.)
func TestSteadyStateAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":      {Workers: 1},
		"insert_batch": {Workers: 1, InsertBatch: 8},
	} {
		t.Run(name, func(t *testing.T) {
			s := NewStealingMQ[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			for i := 0; i < 4096; i++ {
				w.Push(uint64(rng.Intn(1<<20)), i)
			}
			for i := 0; i < 2048; i++ {
				w.Pop()
			}
			allocs := testing.AllocsPerRun(2000, func() {
				p, v, ok := w.Pop()
				if !ok {
					w.Push(uint64(rng.Intn(1<<20)), 0)
					return
				}
				w.Push(p+uint64(rng.Intn(64)), v)
			})
			if allocs != 0 {
				t.Fatalf("steady-state pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestSteadyStateBatchAllocFree asserts the zero-alloc steady state of
// the SMQ bulk operations: PopN into a caller-owned slice plus a PushN
// of the same batch must never allocate once the worker's zip scratch
// has grown (the scratch is owned by the handle and reused in place;
// vacated slots are zeroed, per the payload-retention discipline).
func TestSteadyStateBatchAllocFree(t *testing.T) {
	for name, cfg := range map[string]Config{
		"default":      {Workers: 1},
		"insert_batch": {Workers: 1, InsertBatch: 8},
	} {
		t.Run(name, func(t *testing.T) {
			s := NewStealingMQ[int](cfg)
			w := s.Worker(0)
			rng := xrand.New(42)
			for i := 0; i < 4096; i++ {
				w.Push(uint64(rng.Intn(1<<20)), i)
			}
			const batch = 16
			dst := make([]sched.Task[int], batch)
			ps := make([]uint64, 0, batch)
			vs := make([]int, 0, batch)
			// Warm the batch scratch buffers once.
			runBatchPair(w, dst, &ps, &vs, rng)
			allocs := testing.AllocsPerRun(2000, func() {
				runBatchPair(w, dst, &ps, &vs, rng)
			})
			if allocs != 0 {
				t.Fatalf("steady-state batch pop+push allocates %.3f allocs/op, want 0", allocs)
			}
		})
	}
}

// runBatchPair is one steady-state PopN→PushN round: re-insert every
// popped task with a fresh priority, reseeding on an empty batch.
func runBatchPair(w sched.Worker[int], dst []sched.Task[int], ps *[]uint64, vs *[]int, rng *xrand.Rand) {
	k := w.PopN(dst)
	*ps, *vs = (*ps)[:0], (*vs)[:0]
	if k == 0 {
		*ps = append(*ps, uint64(rng.Intn(1<<20)))
		*vs = append(*vs, 0)
	} else {
		for i := 0; i < k; i++ {
			*ps = append(*ps, uint64(rng.Intn(1<<20)))
			*vs = append(*vs, dst[i].V)
		}
	}
	w.PushN(*ps, *vs)
}
