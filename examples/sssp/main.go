// SSSP: the paper's headline workload. Runs parallel single-source
// shortest paths on a synthetic road network under several schedulers
// and reports time and wasted work — the metric that explains why the
// SMQ's rank guarantees translate into throughput.
package main

import (
	"flag"
	"fmt"
	"runtime"

	smq "repro"
)

func main() {
	rows := flag.Int("rows", 192, "road grid rows")
	cols := flag.Int("cols", 96, "road grid cols")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines")
	flag.Parse()

	g := smq.GenerateRoadGrid(*rows, *cols, 42)
	src := uint32(0)
	fmt.Printf("road graph: %d vertices, %d edges, %d workers\n\n", g.N, g.M(), *workers)

	want := smq.DijkstraSeq(g, src)

	type entry struct {
		name string
		mk   func() smq.Scheduler[uint32]
	}
	schedulers := []entry{
		{"SMQ (heap)", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQ[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"SMQ (skiplist)", func() smq.Scheduler[uint32] {
			return smq.NewStealingMQSkipList[uint32](smq.SMQConfig{Workers: *workers})
		}},
		{"MultiQueue C=4", func() smq.Scheduler[uint32] {
			return smq.NewClassicMultiQueue[uint32](*workers, 4)
		}},
		{"OBIM", func() smq.Scheduler[uint32] {
			return smq.NewOBIM[uint32](smq.OBIMConfig{Workers: *workers})
		}},
		{"PMOD", func() smq.Scheduler[uint32] {
			return smq.NewPMOD[uint32](smq.OBIMConfig{Workers: *workers})
		}},
		{"SprayList", func() smq.Scheduler[uint32] {
			return smq.NewSprayList[uint32](smq.SprayConfig{Workers: *workers})
		}},
	}

	fmt.Printf("%-16s %12s %10s %10s %8s\n", "scheduler", "time", "tasks", "wasted", "ok")
	for _, e := range schedulers {
		dist, res := smq.SSSP(g, src, e.mk())
		ok := true
		for v := range dist {
			if dist[v] != want[v] {
				ok = false
				break
			}
		}
		fmt.Printf("%-16s %12v %10d %10d %8v\n",
			e.name, res.Duration.Round(1000), res.Tasks, res.Wasted, ok)
	}
}
