package harness

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// enumHash canonically hashes a cell enumeration: any change to the
// order, keys, kinds, threads, reps or derived seeds changes the hash.
func enumHash(cells []Cell) (int, string) {
	h := fnv.New64a()
	for _, c := range cells {
		fmt.Fprintf(h, "%d|%s|%s|%s|%s|%s|%d|%d|%d\n",
			c.Index, c.Key, c.Kind, c.Workload, c.Scheduler, c.Params, c.Threads, c.Reps, c.Seed)
	}
	return len(cells), fmt.Sprintf("%016x", h.Sum64())
}

// goldenCfg is the fixed configuration the enumeration goldens pin.
var goldenCfg = RunConfig{Scale: 1, Threads: []int{1, 2}, MaxThreads: 2, Reps: 2, Seed: 42}

// goldenEnum pins every experiment's cell enumeration under goldenCfg.
// These values are a contract with internal/shard: two binaries that
// disagree on them would assemble fragments of different grids. If you
// deliberately change an experiment's cell list, run the test once and
// paste the new entries it suggests.
var goldenEnum = map[string]struct {
	cells int
	hash  string
}{
	"table1": {cells: 4, hash: "401eae429f7ef278"},
	"table2": {cells: 96, hash: "582aca57ed89fa32"},
	"fig1":   {cells: 148, hash: "e2f3731b94843cec"},
	"fig19":  {cells: 148, hash: "196d82e04271ae80"},
	"fig2":   {cells: 288, hash: "fbba96de4602b317"},
	"fig3":   {cells: 208, hash: "b0a768c716c43b23"},
	"fig7":   {cells: 148, hash: "e0a14e54a3818b66"},
	"fig9":   {cells: 124, hash: "a79200bd8d862dd1"},
	"fig11":  {cells: 124, hash: "1014b9dc606037fb"},
	"fig13":  {cells: 104, hash: "495f816325d25385"},
	"fig15":  {cells: 20, hash: "83356499777b93dd"},
	"emq":    {cells: 68, hash: "2203418e19f343b6"},
	"klsm":   {cells: 24, hash: "f435fd1bc6083ef6"},
	"geom":   {cells: 72, hash: "3922bfd96a568648"},
	"numa":   {cells: 124, hash: "a2fbbd07798282a7"},
	"serve":  {cells: 15, hash: "9818131c5544fa79"},
	"desim":  {cells: 10, hash: "af94559d8d2b4efe"},
	"theory": {cells: 26, hash: "ae60b34c87d6154d"},
	// rankprobe gained two cells when the lock-free CBPQ joined
	// AllSchedulers as a second exact reference point.
	"rankprobe": {cells: 26, hash: "548fe7d2612adc23"},
}

func TestCellEnumerationGolden(t *testing.T) {
	for _, e := range Registry() {
		cells, err := e.Cells(goldenCfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		n, h := enumHash(cells)
		want, ok := goldenEnum[e.ID]
		if !ok {
			t.Errorf("%s: no golden entry; add {cells: %d, hash: %q}", e.ID, n, h)
			continue
		}
		if n != want.cells || h != want.hash {
			t.Errorf("%s: enumeration drifted: got %d cells hash %s, golden %d cells hash %s",
				e.ID, n, h, want.cells, want.hash)
		}
	}
}

// TestCellEnumerationDeterministic checks the enumeration is a pure
// function of the config: two independent Plan builds agree cell by
// cell, and a different base seed changes only the derived seeds.
func TestCellEnumerationDeterministic(t *testing.T) {
	for _, e := range Registry() {
		a, err := e.Cells(goldenCfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		b, err := e.Cells(goldenCfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		_, ha := enumHash(a)
		_, hb := enumHash(b)
		if ha != hb {
			t.Errorf("%s: two enumerations of the same config differ", e.ID)
		}

		cfg2 := goldenCfg
		cfg2.Seed = 43
		c, err := e.Cells(cfg2)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(c) != len(a) {
			t.Errorf("%s: base seed changed the cell count (%d vs %d)", e.ID, len(c), len(a))
			continue
		}
		for i := range a {
			ac, cc := a[i], c[i]
			ac.Seed, cc.Seed = 0, 0
			if ac != cc {
				t.Errorf("%s: cell %d differs beyond the seed under a new base seed", e.ID, i)
				break
			}
		}
	}
}

func TestCellSeedProperties(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10000; i++ {
		s := CellSeed(42, i)
		if s == 0 {
			t.Fatalf("CellSeed(42, %d) = 0", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("CellSeed collision: indices %d and %d", prev, i)
		}
		seen[s] = i
	}
	if CellSeed(1, 7) == CellSeed(2, 7) {
		t.Fatal("base seed does not separate streams")
	}
	if CellSeed(1, 7) != CellSeed(1, 7) {
		t.Fatal("CellSeed not deterministic")
	}
}

func TestPlanErrorCellDoesNotWedgeOthers(t *testing.T) {
	p := NewPlan("toy", RunConfig{})
	p.AddCell(Cell{Key: "good"}, func(Cell) (CellResult, error) {
		return CellResult{Tasks: 1}, nil
	})
	p.AddCell(Cell{Key: "bad"}, func(Cell) (CellResult, error) {
		return CellResult{}, fmt.Errorf("boom")
	})
	p.AddCell(Cell{Key: "alsogood"}, func(Cell) (CellResult, error) {
		return CellResult{Tasks: 2}, nil
	})
	rs := p.RunAll()
	if rs[0].Status != CellOK || rs[2].Status != CellOK {
		t.Fatalf("good cells disturbed by the bad one: %+v", rs)
	}
	if rs[1].Status != CellError || rs[1].Error != "boom" {
		t.Fatalf("bad cell not reported: %+v", rs[1])
	}
	if _, err := p.Assemble(rs); err == nil {
		t.Fatal("Assemble accepted a failed cell")
	}
}

func TestAssembleRejectsPartialResults(t *testing.T) {
	p := NewPlan("toy", RunConfig{})
	p.AddCell(Cell{Key: "a"}, func(Cell) (CellResult, error) { return CellResult{}, nil })
	p.AddCell(Cell{Key: "b"}, func(Cell) (CellResult, error) { return CellResult{}, nil })
	p.SetAssemble(func([]CellResult) ([]Table, error) { return nil, nil })
	rs := p.RunAll()
	if _, err := p.Assemble(rs[:1]); err == nil {
		t.Fatal("Assemble accepted a partial result set")
	}
	rs[0], rs[1] = rs[1], rs[0]
	if _, err := p.Assemble(rs); err == nil {
		t.Fatal("Assemble accepted out-of-order results")
	}
}

func TestDuplicateCellKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate key did not panic")
		}
	}()
	p := NewPlan("toy", RunConfig{})
	run := func(Cell) (CellResult, error) { return CellResult{}, nil }
	p.AddCell(Cell{Key: "x"}, run)
	p.AddCell(Cell{Key: "x"}, run)
}

// TestCellReproducibleAcrossPaths is the per-cell seed satellite: the
// same cell run through two independently built plans (as an in-process
// run and a shard would) produces identical non-timing results — at one
// thread the seeded schedulers are fully deterministic.
func TestCellReproducibleAcrossPaths(t *testing.T) {
	cfg := RunConfig{Scale: 1, MaxThreads: 1, Reps: 1, Seed: 9, Validate: true}
	e := mustFind(t, "fig1")
	p1, err := e.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick an SMQ measurement cell (index > baselines).
	idx := -1
	for _, c := range p1.Cells {
		if c.Kind == "measure" && c.Scheduler == "SMQ" {
			idx = c.Index
			break
		}
	}
	if idx < 0 {
		t.Fatal("no SMQ cell in fig1")
	}
	r1 := p1.RunCell(idx)
	r2 := p2.RunCell(idx)
	if r1.Status != CellOK || r2.Status != CellOK {
		t.Fatalf("cells not ok: %q %q", r1.Error, r2.Error)
	}
	if r1.Seed != r2.Seed || r1.Key != r2.Key {
		t.Fatalf("cell identity differs: %+v vs %+v", r1.Cell, r2.Cell)
	}
	if r1.Tasks != r2.Tasks || r1.Wasted != r2.Wasted {
		t.Fatalf("seeded cell not reproducible: tasks %d/%d wasted %d/%d",
			r1.Tasks, r2.Tasks, r1.Wasted, r2.Wasted)
	}
}

// TestTheoryRowsReproducible checks a full experiment whose tables
// carry no timing fields renders byte-identically across two runs —
// the property the shard-merge acceptance test builds on.
func TestTheoryRowsReproducible(t *testing.T) {
	e := mustFind(t, "theory")
	cfg := RunConfig{Scale: 1, Seed: 5}
	t1, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatal("theory tables differ across identically seeded runs")
	}
}
