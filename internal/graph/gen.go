package graph

import (
	"math"

	"repro/internal/xrand"
)

// GenerateRoadGrid builds a road-network stand-in: a rows×cols planar
// grid with 4-neighbour edges plus a sprinkling of diagonal "shortcuts",
// undirected, with integer weights derived from Euclidean length times a
// random detour factor in [1, 1.5]. Every vertex gets a coordinate, so
// the graph supports the A* heuristic; weights satisfy
// w >= ceil(EuclidDist·HeuristicScale), keeping the heuristic admissible.
//
// Road networks (the paper's USA/WEST inputs) are near-planar, bounded-
// degree and high-diameter — exactly the properties this generator
// reproduces, and the ones that make scheduling order matter for
// SSSP/A* (DESIGN.md §2).
func GenerateRoadGrid(rows, cols int, seed uint64) *CSR {
	if rows < 1 || cols < 1 {
		panic("graph: grid dimensions must be positive")
	}
	rng := xrand.New(seed)
	n := rows * cols
	coords := make([]Coord, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Jitter coordinates slightly so distances are irregular,
			// like real roads.
			coords[r*cols+c] = Coord{
				X: float64(c) + 0.3*rng.Float64(),
				Y: float64(r) + 0.3*rng.Float64(),
			}
		}
	}
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	roadWeight := func(u, v uint32) uint32 {
		d := EuclidDist(coords[u], coords[v])
		detour := 1.0 + 0.5*rng.Float64()
		w := uint32(math.Ceil(d * HeuristicScale * detour))
		if w == 0 {
			w = 1
		}
		return w
	}
	var edges []Edge
	addUndirected := func(u, v uint32) {
		w := roadWeight(u, v)
		edges = append(edges, Edge{U: u, V: v, W: w}, Edge{U: v, V: u, W: w})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addUndirected(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				addUndirected(id(r, c), id(r+1, c))
			}
			// ~20% of cells gain a diagonal, echoing highway shortcuts.
			if r+1 < rows && c+1 < cols && rng.OneIn(5) {
				addUndirected(id(r, c), id(r+1, c+1))
			}
		}
	}
	return MustBuild(n, edges, coords)
}

// RMATParams are the recursive-matrix quadrant probabilities. They must
// sum to 1; DefaultRMATParams gives the standard skewed (a=0.57) setting
// that produces power-law degree distributions.
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMATParams is the Graph500-style parameterization.
func DefaultRMATParams() RMATParams {
	return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}
}

// GenerateRMAT builds a social-network stand-in: a directed R-MAT graph
// with 2^scale vertices and edgeFactor·2^scale edges, edge weights
// uniform in [0, 255] (the paper's own weighting for TWITTER/WEB,
// Table 1). Degree skew and low diameter — the properties that flatten
// task priorities on social graphs — come from the recursive quadrant
// bias.
func GenerateRMAT(scale, edgeFactor int, params RMATParams, seed uint64) *CSR {
	if scale < 1 || scale > 30 {
		panic("graph: RMAT scale out of range [1,30]")
	}
	if edgeFactor < 1 {
		panic("graph: RMAT edgeFactor must be positive")
	}
	rng := xrand.New(seed)
	n := 1 << scale
	m := edgeFactor * n
	edges := make([]Edge, 0, m)
	ab := params.A + params.B
	abc := ab + params.C
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < params.A:
				// top-left: no bits set
			case r < ab:
				v |= 1 << bit
			case r < abc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue // drop self-loops
		}
		edges = append(edges, Edge{U: uint32(u), V: uint32(v), W: uint32(rng.Intn(256))})
	}
	return MustBuild(n, edges, nil)
}

// GenerateUniformRandom builds an Erdős–Rényi-style directed graph with n
// vertices and m edges, weights uniform in [1, maxW]. Used by scheduler
// micro-benchmarks that want structureless inputs.
func GenerateUniformRandom(n, m int, maxW uint32, seed uint64) *CSR {
	if n < 2 {
		panic("graph: need at least 2 vertices")
	}
	if maxW == 0 {
		maxW = 255
	}
	rng := xrand.New(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.IntnOther(n, int(u)))
		edges = append(edges, Edge{U: u, V: v, W: 1 + uint32(rng.Intn(int(maxW)))})
	}
	return MustBuild(n, edges, nil)
}

// StandardInputs generates the four benchmark graphs standing in for
// Table 1 at the requested scale factor (1 = smallest sensible size).
// The names mirror the paper's: USA and WEST are road grids, TWITTER and
// WEB are power-law RMAT graphs.
func StandardInputs(scale int) map[string]*CSR {
	if scale < 1 {
		scale = 1
	}
	side := 64 * scale
	rmatScale := 12
	for s := scale; s > 1; s /= 2 {
		rmatScale++
	}
	return map[string]*CSR{
		"USA":     GenerateRoadGrid(2*side, side, 42),
		"WEST":    GenerateRoadGrid(side, side/2+1, 43),
		"TWITTER": GenerateRMAT(rmatScale, 16, DefaultRMATParams(), 44),
		"WEB":     GenerateRMAT(rmatScale, 20, DefaultRMATParams(), 45),
	}
}
