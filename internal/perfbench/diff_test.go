package perfbench

import (
	"strings"
	"testing"
)

func diffFixtures() (*Report, *Report) {
	old := &Report{
		SchemaVersion: SchemaVersion,
		Results: []Result{
			{Scheduler: "coarse", ThroughputOpsPerSec: 1000, BatchedThroughputOpsPerSec: 4000, PopP99Ns: 800},
			{Scheduler: "smq", ThroughputOpsPerSec: 8000, BatchedThroughputOpsPerSec: 20000, PopP99Ns: 300},
			{Scheduler: "obim", ThroughputOpsPerSec: 5000},
		},
		Desim: []DesimResult{
			{Scheduler: "coarse", Model: "cluster", EventsPerSec: 1e6},
		},
	}
	new_ := &Report{
		SchemaVersion: SchemaVersion,
		Results: []Result{
			// Throughput down 50% (regression), p99 up 3x (regression).
			{Scheduler: "coarse", ThroughputOpsPerSec: 500, BatchedThroughputOpsPerSec: 4100, PopP99Ns: 2400},
			// All within noise.
			{Scheduler: "smq", ThroughputOpsPerSec: 8200, BatchedThroughputOpsPerSec: 19000, PopP99Ns: 310},
			// New tier, absent from the old report.
			{Scheduler: "cbpq", ThroughputOpsPerSec: 900, BatchedThroughputOpsPerSec: 3000, PopP99Ns: 900},
		},
		Desim: []DesimResult{
			// 2x faster — flagged, but an improvement, not a regression.
			{Scheduler: "coarse", Model: "cluster", EventsPerSec: 2e6},
		},
	}
	return old, new_
}

func TestDiffFlagsAndDirections(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0.25)

	get := func(sched, metric string) DiffEntry {
		t.Helper()
		for _, e := range d.Entries {
			if e.Scheduler == sched && e.Metric == metric {
				return e
			}
		}
		t.Fatalf("no entry for %s/%s", sched, metric)
		return DiffEntry{}
	}

	if e := get("coarse", "throughput_ops_per_sec"); !e.Flagged || !e.Regression || e.Delta > -0.49 {
		t.Errorf("halved throughput not flagged as regression: %+v", e)
	}
	if e := get("coarse", "pop_latency_p99_ns"); !e.Flagged || !e.Regression {
		t.Errorf("tripled p99 not flagged as regression: %+v", e)
	}
	if e := get("coarse", "batched_throughput_ops_per_sec"); e.Flagged {
		t.Errorf("2.5%% batched change flagged: %+v", e)
	}
	if e := get("smq", "throughput_ops_per_sec"); e.Flagged {
		t.Errorf("2.5%% change flagged: %+v", e)
	}
	// Faster desim is flagged (big change) but not a regression.
	if e := get("coarse/cluster", "desim_events_per_sec"); !e.Flagged || e.Regression {
		t.Errorf("2x desim speedup misclassified: %+v", e)
	}

	// obim's old entry lacks the schema>=2 fields: only the scalar
	// throughput pairs, and only until the scheduler leaves the lineup.
	if got := len(d.OnlyOld); got != 1 || d.OnlyOld[0] != "results:obim" {
		t.Errorf("OnlyOld = %v, want [results:obim]", d.OnlyOld)
	}
	if got := len(d.OnlyNew); got != 1 || d.OnlyNew[0] != "results:cbpq" {
		t.Errorf("OnlyNew = %v, want [results:cbpq]", d.OnlyNew)
	}

	if got, want := len(d.Regressions()), 2; got != want {
		t.Errorf("got %d regressions, want %d: %+v", got, want, d.Regressions())
	}
	if got := len(d.Flagged()); got != 3 {
		t.Errorf("got %d flagged entries, want 3: %+v", got, d.Flagged())
	}
}

func TestDiffDefaultThresholdAndSorting(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0)
	if d.Threshold != DefaultDiffThreshold {
		t.Fatalf("threshold = %g, want default %g", d.Threshold, DefaultDiffThreshold)
	}
	for i := 1; i < len(d.Entries); i++ {
		a, b := d.Entries[i-1], d.Entries[i]
		if a.Scheduler > b.Scheduler || (a.Scheduler == b.Scheduler && a.Metric > b.Metric) {
			t.Fatalf("entries not sorted: %v before %v", a, b)
		}
	}
}

// TestDiffDisjointSections: a desim-only artifact against a
// microbenchmark-only artifact has nothing to pair — the diff must
// report lineup drift, not invent comparisons.
func TestDiffDisjointSections(t *testing.T) {
	old := &Report{Desim: []DesimResult{{Scheduler: "coarse", Model: "dag", EventsPerSec: 1e6}}}
	new_ := &Report{Results: []Result{{Scheduler: "coarse", ThroughputOpsPerSec: 1000}}}
	d := Diff(old, new_, 0)
	if len(d.Entries) != 0 {
		t.Fatalf("disjoint sections produced entries: %+v", d.Entries)
	}
	if len(d.OnlyOld) != 1 || len(d.OnlyNew) != 1 {
		t.Fatalf("drift lists = %v / %v, want one key each", d.OnlyOld, d.OnlyNew)
	}
	out := d.Format(false)
	if !strings.Contains(out, "no comparable entries") {
		t.Fatalf("Format of empty diff missing placeholder:\n%s", out)
	}
}

func TestDiffFormat(t *testing.T) {
	old, new_ := diffFixtures()
	d := Diff(old, new_, 0.25)
	full := d.Format(false)
	for _, want := range []string{
		"!! coarse", "pop_latency_p99_ns", "+200.0%",
		"-  results:obim only in old report",
		"+  results:cbpq only in new report",
	} {
		if !strings.Contains(full, want) {
			t.Errorf("Format missing %q:\n%s", want, full)
		}
	}
	flagged := d.Format(true)
	if strings.Contains(flagged, "smq") {
		t.Errorf("flagged-only format includes unflagged smq rows:\n%s", flagged)
	}
	if !strings.Contains(flagged, "coarse/cluster") {
		t.Errorf("flagged-only format missing flagged desim row:\n%s", flagged)
	}
}
