package ranksim

import (
	"math"

	"repro/internal/xrand"
)

// ContinuousConfig parameterizes the balls-into-bins coupling of
// Appendix A: n bins whose ball labels form exponential processes (bin i
// has label gaps Exp with rate π_i·n, so busier threads hold denser
// bins), with SMQ-style or (1+β)-style removals.
type ContinuousConfig struct {
	Bins      int     // n
	Steps     int     // removal steps
	StealProb float64 // p_steal (SMQ process)
	Beta      float64 // β ((1+β)-choice process)
	Batch     int     // B labels removed per step
	Gamma     float64 // scheduler unfairness γ
	Seed      uint64
	// SampleEvery sets the sampling period; default Steps/64.
	SampleEvery int
}

func (c *ContinuousConfig) normalize() {
	if c.Bins <= 0 {
		panic("ranksim: Bins must be positive")
	}
	if c.Steps <= 0 {
		c.Steps = 100000
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = c.Steps/64 + 1
	}
}

// ContinuousResult aggregates rank statistics of the label process. The
// rank of a label x is the expected number of labels smaller than x still
// present: sum_j max(0, x − ℓ_j)·rate_j, with ℓ_j the top label of bin j.
type ContinuousResult struct {
	Samples []Sample
	// MeanTopAvg / MeanTopMax average the per-sample statistics over the
	// second half of the run (the stationary regime Theorem 1 describes).
	MeanTopAvg float64
	MeanTopMax float64
}

// RunContinuousSMQ simulates the continuous SMQ removal process: pick a
// "local" bin from π; with probability p_steal compare against a second,
// uniformly random bin and take from the lower top label; advance the
// chosen bin's top by B exponential gaps.
func RunContinuousSMQ(cfg ContinuousConfig) ContinuousResult {
	cfg.normalize()
	rng := xrand.New(cfg.Seed)
	pi := Pi(cfg.Bins, cfg.Gamma)
	cum := cumulative(pi)
	rates := make([]float64, cfg.Bins)
	for i, p := range pi {
		rates[i] = p * float64(cfg.Bins) // uniform => rate 1
	}
	tops := initialTops(rates, rng)

	step := func() {
		i := sampleCum(cum, rng)
		src := i
		if cfg.StealProb > 0 && rng.Bernoulli(cfg.StealProb) {
			j := rng.Intn(cfg.Bins)
			if tops[j] < tops[i] {
				src = j
			}
		}
		advance(tops, rates, src, cfg.Batch, rng)
	}
	return runContinuous(cfg, tops, rates, step)
}

// RunOnePlusBeta simulates the classic (1+β)-choice process on the same
// label dynamics: with probability β remove from the better of two
// uniform bins, otherwise from one uniform bin.
func RunOnePlusBeta(cfg ContinuousConfig) ContinuousResult {
	cfg.normalize()
	rng := xrand.New(cfg.Seed)
	rates := make([]float64, cfg.Bins)
	for i := range rates {
		rates[i] = 1
	}
	tops := initialTops(rates, rng)

	step := func() {
		i := rng.Intn(cfg.Bins)
		src := i
		if cfg.Beta > 0 && rng.Bernoulli(cfg.Beta) {
			j := rng.Intn(cfg.Bins)
			if tops[j] < tops[i] {
				src = j
			}
		}
		advance(tops, rates, src, cfg.Batch, rng)
	}
	return runContinuous(cfg, tops, rates, step)
}

func initialTops(rates []float64, rng *xrand.Rand) []float64 {
	tops := make([]float64, len(rates))
	for i := range tops {
		// First ball's label is one gap above zero.
		tops[i] = rng.ExpFloat64() / rates[i]
	}
	return tops
}

func advance(tops, rates []float64, src, batch int, rng *xrand.Rand) {
	for b := 0; b < batch; b++ {
		tops[src] += rng.ExpFloat64() / rates[src]
	}
}

func runContinuous(cfg ContinuousConfig, tops, rates []float64, step func()) ContinuousResult {
	res := ContinuousResult{}
	half := cfg.Steps / 2
	count := 0
	for t := 0; t < cfg.Steps; t++ {
		step()
		if t%cfg.SampleEvery == 0 {
			s := continuousSample(tops, rates, t)
			res.Samples = append(res.Samples, s)
			if t >= half {
				res.MeanTopAvg += s.AvgTopRank
				res.MeanTopMax += float64(s.MaxTopRank)
				count++
			}
		}
	}
	if count > 0 {
		res.MeanTopAvg /= float64(count)
		res.MeanTopMax /= float64(count)
	}
	return res
}

// continuousSample computes expected ranks of the bins' top labels.
func continuousSample(tops, rates []float64, step int) Sample {
	s := Sample{Step: step}
	sum := 0.0
	maxRank := 0.0
	for i := range tops {
		r := expectedRank(tops, rates, tops[i])
		sum += r
		if r > maxRank {
			maxRank = r
		}
	}
	s.AvgTopRank = sum / float64(len(tops))
	s.MaxTopRank = int(maxRank)
	return s
}

// expectedRank is the expected number of present labels below x: bins are
// exponential processes, so bin j holds (x − ℓ_j)·rate_j expected labels
// in (ℓ_j, x) when x > ℓ_j.
func expectedRank(tops, rates []float64, x float64) float64 {
	total := 0.0
	for j := range tops {
		if d := x - tops[j]; d > 0 {
			total += d * rates[j]
		}
	}
	return total
}

// TheoremBound evaluates Theorem 1's expected average rank scaling
// nB(1+γ)/p_steal · log((1+γ)/p_steal) (up to constants), used by the
// `theory` experiment for side-by-side reporting.
func TheoremBound(n, batch int, stealProb, gamma float64) float64 {
	if stealProb <= 0 {
		return float64(n*batch) * 1e9 // no guarantee without stealing
	}
	ratio := (1 + gamma) / stealProb
	l := math.Log(ratio)
	if l < 1 {
		l = 1
	}
	return float64(n*batch) * ratio * l
}
