package emq

import (
	"sync"
	"testing"

	"repro/internal/pq"
	"repro/internal/sched"
)

func TestDefaults(t *testing.T) {
	c := Config{Workers: 3}
	c.normalize()
	if c.C != 2 || c.Stickiness != 16 || c.InsertBuffer != 16 || c.DeleteBuffer != 16 {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.HeapArity != 8 || c.Seed != 1 || c.NUMAWeightK != 8 {
		t.Fatalf("bad defaults: %+v", c)
	}
}

func TestWorkersRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Workers=0")
		}
	}()
	New[int](Config{})
}

func TestWorkerIndexBounds(t *testing.T) {
	s := New[int](Config{Workers: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range worker")
		}
	}()
	s.Worker(2)
}

// TestSingleWorkerDrain checks that one worker gets back everything it
// pushed, including tasks still sitting in its insertion buffer when the
// pops begin.
func TestSingleWorkerDrain(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 1},
		{Workers: 1, C: 1, Stickiness: 1, InsertBuffer: 1, DeleteBuffer: 1},
		{Workers: 1, Stickiness: 3, InsertBuffer: 7, DeleteBuffer: 5},
	} {
		s := New[int](cfg)
		w := s.Worker(0)
		const n = 1000
		for i := 0; i < n; i++ {
			w.Push(uint64(i%97), i)
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			_, v, ok := w.Pop()
			if !ok {
				t.Fatalf("cfg %+v: pop %d failed with tasks outstanding", cfg, i)
			}
			if seen[v] {
				t.Fatalf("cfg %+v: duplicate value %d", cfg, v)
			}
			seen[v] = true
		}
		if _, _, ok := w.Pop(); ok {
			t.Fatalf("cfg %+v: pop succeeded on drained scheduler", cfg)
		}
		st := s.Stats()
		if st.Pushes != n || st.Pops != n || st.EmptyPops != 1 {
			t.Fatalf("cfg %+v: stats %+v", cfg, st)
		}
	}
}

// TestPopPrefersLowPriorities checks the relaxed ordering is still
// broadly priority-driven: with a single worker and tiny buffers, the
// first pop after pushing a spread of priorities must come from the low
// end, not the high end.
func TestPopPrefersLowPriorities(t *testing.T) {
	s := New[int](Config{Workers: 1, C: 1, Stickiness: 1, InsertBuffer: 1, DeleteBuffer: 1})
	w := s.Worker(0)
	for i := 1000; i > 0; i-- {
		w.Push(uint64(i), i)
	}
	p, _, ok := w.Pop()
	if !ok || p != 1 {
		t.Fatalf("single-queue EMQ must pop the exact minimum, got %d ok=%v", p, ok)
	}
}

// TestConcurrentDrain runs the Pending protocol across workers under
// load (the -race build exercises the locking).
func TestConcurrentDrain(t *testing.T) {
	const workers = 4
	const perWorker = 5000
	s := New[uint32](Config{Workers: workers, Stickiness: 8, InsertBuffer: 8, DeleteBuffer: 8})
	var pending sched.Pending
	pending.Inc(workers * perWorker)

	var popped [workers][]uint32
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			w := s.Worker(wid)
			for i := 0; i < perWorker; i++ {
				v := uint32(wid*perWorker + i)
				w.Push(uint64(v%1021), v)
			}
			var b sched.Backoff
			for !pending.Done() {
				_, v, ok := w.Pop()
				if !ok {
					b.Wait()
					continue
				}
				b.Reset()
				popped[wid] = append(popped[wid], v)
				pending.Dec()
			}
		}(wid)
	}
	wg.Wait()

	seen := make([]bool, workers*perWorker)
	total := 0
	for wid := range popped {
		for _, v := range popped[wid] {
			if seen[v] {
				t.Fatalf("duplicate task %d", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != workers*perWorker {
		t.Fatalf("drained %d of %d tasks", total, workers*perWorker)
	}
	st := s.Stats()
	if st.Pushes != workers*perWorker || st.Pops != workers*perWorker {
		t.Fatalf("stats disagree with drain: %+v", st)
	}
}

// TestNUMASamplingCountsRemote checks the weighted sampler is actually
// wired in: with two virtual nodes some sticky resamples must land
// off-node, and with K=1 remote accesses must be more frequent than with
// a large K.
func TestNUMASamplingCountsRemote(t *testing.T) {
	remoteFrac := func(k float64) float64 {
		s := New[int](Config{Workers: 4, Stickiness: 1, InsertBuffer: 1,
			DeleteBuffer: 1, NUMANodes: 2, NUMAWeightK: k, Seed: 7})
		var wg sync.WaitGroup
		for wid := 0; wid < 4; wid++ {
			wg.Add(1)
			go func(wid int) {
				defer wg.Done()
				w := s.Worker(wid)
				for i := 0; i < 3000; i++ {
					w.Push(uint64(i), i)
				}
				for i := 0; i < 3000; i++ {
					w.Pop()
				}
			}(wid)
		}
		wg.Wait()
		st := s.Stats()
		return float64(st.Remote) / float64(st.Pushes+st.Pops)
	}
	low, high := remoteFrac(256), remoteFrac(1)
	if high == 0 {
		t.Fatal("no remote accesses recorded with uniform sampling")
	}
	if low >= high {
		t.Fatalf("K=256 remote fraction %.3f should be below K=1's %.3f", low, high)
	}
}

// TestSweepRefillDoesNotBlockOnHeldLock: the sweep's first pass must use
// try-locks, so a deletion-buffer refill that falls back to a sweep
// still finds a task in an unlocked queue while another queue's lock is
// held indefinitely.
func TestSweepRefillDoesNotBlockOnHeldLock(t *testing.T) {
	s := New[int](Config{Workers: 1, C: 4, DeleteBuffer: 4})
	// Plant a task directly in queue 2, keeping its cached top coherent.
	s.queues[2].mu.Lock()
	s.queues[2].pushAll([]pq.Item[int]{{P: 5, V: 50}})
	s.queues[2].mu.Unlock()
	// Hold queue 0's lock for the whole test.
	s.queues[0].mu.Lock()
	defer s.queues[0].mu.Unlock()

	p, v, ok := s.Worker(0).Pop()
	if !ok || p != 5 || v != 50 {
		t.Fatalf("Pop = (%d, %d, %v), want (5, 50, true)", p, v, ok)
	}
}
