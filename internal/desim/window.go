package desim

import (
	"sync/atomic"
)

// window tracks, concurrently, how many pending events have timestamps
// below a queried point — the primitive behind the causality check. It
// is a Fenwick (binary indexed) tree of atomic counters over bucketed
// timestamps: Register/Unregister touch O(log n) counters, and Before
// reads a prefix sum with the same cost. All updates use atomic adds,
// so the tree is a commutative CRDT-style counter array: concurrent
// registers and queries interleave freely, and a query returns some
// value between "before all concurrent updates" and "after all of
// them" — which is exactly the slack the engine's violation threshold
// already absorbs (see Config.Lookahead).
type window struct {
	// shift buckets timestamps: bucket = t >> shift. Coarser buckets
	// trade check resolution for tree size; the engine picks the
	// smallest shift that keeps the tree within maxWindowBuckets.
	shift uint
	tree  []atomic.Int64
}

// maxWindowBuckets caps the Fenwick tree's footprint (8 MiB of
// counters). Horizons wider than shift can resolve get coarser buckets,
// never a bigger tree.
const maxWindowBuckets = 1 << 20

// newWindow sizes a tree for timestamps in [0, horizon].
func newWindow(horizon uint64) *window {
	var shift uint
	for (horizon>>shift)+2 > maxWindowBuckets {
		shift++
	}
	return &window{shift: shift, tree: make([]atomic.Int64, (horizon>>shift)+2)}
}

// bucket maps a timestamp to its 1-based Fenwick index, clamped into
// the tree (events at exactly the horizon land in the last bucket).
func (w *window) bucket(t uint64) int {
	i := int(t>>w.shift) + 1
	if i >= len(w.tree) {
		i = len(w.tree) - 1
	}
	return i
}

// Register records a pending event at timestamp t. It must complete
// before the event becomes poppable (register-before-push): the
// scheduler's push→pop happens-before edge then guarantees any pop that
// could observe the event also observes its registration.
func (w *window) Register(t uint64) {
	for i := w.bucket(t); i < len(w.tree); i += i & -i {
		w.tree[i].Add(1)
	}
}

// Unregister removes an event after it has been popped and its
// lookahead lead was measured.
func (w *window) Unregister(t uint64) {
	for i := w.bucket(t); i < len(w.tree); i += i & -i {
		w.tree[i].Add(-1)
	}
}

// Before returns how many registered events have timestamps strictly
// below t's bucket — the popped event's own bucket is excluded, so
// same-bucket (and in particular same-timestamp) events never count as
// a lead. Bucketing therefore under-counts by design: it can only make
// the check more lenient, never report a false violation.
func (w *window) Before(t uint64) int64 {
	var sum int64
	for i := w.bucket(t) - 1; i > 0; i -= i & -i {
		sum += w.tree[i].Load()
	}
	return sum
}

// bucketWidth reports the timestamp width of one bucket, for logging.
func (w *window) bucketWidth() uint64 { return 1 << w.shift }
