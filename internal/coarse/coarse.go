// Package coarse implements the strawman every relaxed scheduler is
// measured against: a single global heap behind one mutex. It is the
// "perfect priority order" endpoint of the paper's relaxation-vs-
// scalability trade-off (§1, citing Lenharth et al., "Concurrent
// priority queues are not good priority schedulers"): zero wasted work
// from inversions, but every operation serializes on one lock, so
// throughput collapses as workers are added.
//
// It is exact: Pop always returns the global minimum, and ok=false means
// the queue is truly empty at that instant.
package coarse

import (
	"fmt"

	"repro/internal/contend"
	"repro/internal/pq"
	"repro/internal/sched"
)

// Config parameterizes the coarse-locked queue.
type Config struct {
	// Workers is the number of worker slots. Required.
	Workers int
	// HeapArity is the global heap fan-out. Default 4.
	HeapArity int
}

// Sched is the coarse-locked global priority queue. The lock word sits
// on its own cache line: with every worker hammering it, sharing a line
// with the heap pointer would add a second invalidation per operation.
type Sched[T any] struct {
	cfg      Config
	mu       contend.Lock
	_        [contend.CacheLineSize - 4]byte
	heap     *pq.DHeap[T]
	workers  []worker[T]
	counters []sched.Counters
}

type worker[T any] struct {
	s *Sched[T]
	c *sched.Counters
}

// Validate reports whether the configuration can build a scheduler:
// Workers must be positive and HeapArity zero (default) or a real
// fan-out. New panics with exactly this error on an invalid
// configuration, so callers that must not panic validate first.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("coarse: Config.Workers = %d, must be positive", c.Workers)
	}
	if c.HeapArity < 0 || c.HeapArity == 1 {
		return fmt.Errorf("coarse: Config.HeapArity = %d, must be 0 (default) or >= 2", c.HeapArity)
	}
	return nil
}

// withDefaults returns a copy with the zero HeapArity replaced by the
// default fan-out. Construction applies it after Validate.
func (c Config) withDefaults() Config {
	if c.HeapArity == 0 {
		c.HeapArity = pq.DefaultArity
	}
	return c
}

// New builds a coarse-locked scheduler.
func New[T any](cfg Config) *Sched[T] {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg = cfg.withDefaults()
	s := &Sched[T]{
		cfg:      cfg,
		heap:     pq.NewDHeapCap[T](cfg.HeapArity, 1024),
		workers:  make([]worker[T], cfg.Workers),
		counters: make([]sched.Counters, cfg.Workers),
	}
	for i := range s.workers {
		s.workers[i] = worker[T]{s: s, c: &s.counters[i]}
	}
	return s
}

// Workers reports the number of worker slots.
func (s *Sched[T]) Workers() int { return s.cfg.Workers }

// Worker returns the handle for worker w.
func (s *Sched[T]) Worker(w int) sched.Worker[T] {
	if w < 0 || w >= len(s.workers) {
		panic(fmt.Sprintf("coarse: worker index %d out of range [0,%d)", w, len(s.workers)))
	}
	return &s.workers[w]
}

// Stats aggregates counters; call only after workers quiesce.
func (s *Sched[T]) Stats() sched.Stats { return sched.SumCounters(s.counters) }

// Push inserts under the global lock.
func (w *worker[T]) Push(p uint64, v T) {
	w.c.Pushes++
	w.s.mu.Lock()
	w.s.heap.Push(p, v)
	w.s.mu.Unlock()
}

// Pop removes the exact global minimum under the global lock.
func (w *worker[T]) Pop() (uint64, T, bool) {
	w.s.mu.Lock()
	p, v, ok := w.s.heap.Pop()
	w.s.mu.Unlock()
	if ok {
		w.c.Pops++
	} else {
		w.c.EmptyPops++
	}
	return p, v, ok
}

// PushN inserts the whole batch under ONE global lock acquisition —
// for the serialization strawman the batch win is maximal, since the
// lock round trip is the entire cost of an operation. The pairs go
// into the heap straight from the caller's parallel slices
// (PushPairs), with no intermediate zip.
func (w *worker[T]) PushN(ps []uint64, vs []T) {
	sched.CheckPushN(len(ps), len(vs))
	if len(ps) == 0 {
		return
	}
	w.c.Pushes += uint64(len(ps))
	w.s.mu.Lock()
	w.s.heap.PushPairs(ps, vs)
	w.s.mu.Unlock()
}

// PopN removes the len(dst) smallest tasks, in order, under one global
// lock acquisition. Exactness is preserved per batch: the batch is a
// prefix of the global priority order at acquisition time.
func (w *worker[T]) PopN(dst []sched.Task[T]) int {
	if len(dst) == 0 {
		return 0
	}
	w.s.mu.Lock()
	n := len(w.s.heap.PopBatch(len(dst), dst[:0]))
	w.s.mu.Unlock()
	if n > 0 {
		w.c.Pops += uint64(n)
	} else {
		w.c.EmptyPops++
	}
	return n
}
