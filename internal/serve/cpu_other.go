//go:build !linux

package serve

import "time"

// processCPU reports that CPU accounting is unavailable here; idle-CPU
// fractions come out negative ("unmeasurable") instead of wrong.
func processCPU() (time.Duration, bool) { return 0, false }
