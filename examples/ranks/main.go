// Ranks: empirical validation of Theorem 1. Runs the paper's §3
// sequential SMQ rank process across stealing probabilities and batch
// sizes, printing measured ranks next to the theorem's scaling.
package main

import (
	"fmt"

	smq "repro"
)

func main() {
	fmt.Println("Theorem 1: expected rank of removed tasks in the SMQ process")
	fmt.Println("(n queues, batch B, stealing probability p; bound is O(nB/p·log(1/p)))")
	fmt.Println()

	fmt.Printf("%-6s %-4s %-8s %-12s %-12s %-12s\n", "n", "B", "psteal", "meanRank", "maxRank", "bound~")
	for _, n := range []int{8, 32} {
		for _, b := range []int{1, 4} {
			for _, p := range []float64{0.5, 0.125, 0.03125} {
				res := smq.RunRankModel(smq.RankModelConfig{
					Queues: n, Elements: 400000, StealProb: p, Batch: b, Seed: 9,
				})
				fmt.Printf("%-6d %-4d %-8.3g %-12.1f %-12d %-12.0f\n",
					n, b, p, res.MeanRemovedRank, res.MaxRemovedRank,
					smq.RankTheoremBound(n, b, p, 0))
			}
		}
	}
	fmt.Println()
	fmt.Println("Higher stealing probability → lower rank; larger batches and more")
	fmt.Println("queues → higher rank, exactly as Theorem 1 predicts.")
}
