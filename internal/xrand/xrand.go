// Package xrand provides a small, fast, allocation-free pseudo-random
// number generator for use inside scheduler hot paths.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64 so that any 64-bit seed — including zero — produces a
// well-mixed initial state. Each scheduler worker owns one generator, so
// no locking is required and runs are reproducible given a seed.
//
// This package intentionally does not implement math/rand.Source: the
// schedulers need only a handful of operations (bounded integers,
// Bernoulli trials, unit floats) and calling them directly avoids
// interface dispatch on the hot path.
package xrand

import "math/bits"

// Rand is a xoshiro256** generator. The zero value is NOT valid; use New.
// A Rand must not be shared between goroutines without synchronization.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the splitmix64 state and returns the next value.
// Used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the same seed yields the same stream.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro256** requires a nonzero state; splitmix64 of any seed is
	// astronomically unlikely to produce all zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift reduction, which avoids division on
// the hot path (the rejection loop almost never iterates for small n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		// Rejection zone: recompute threshold only when needed.
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// IntnOther returns a uniformly random int in [0, n) that differs from
// avoid. It panics if n < 2. Used for the Multi-Queue's "two distinct
// queues" choice.
func (r *Rand) IntnOther(n, avoid int) int {
	if n < 2 {
		panic("xrand: IntnOther needs n >= 2")
	}
	// Draw from [0, n-1) and skip over avoid: uniform over the n-1
	// remaining values without a rejection loop.
	v := r.Intn(n - 1)
	if v >= avoid {
		v++
	}
	return v
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. p outside [0,1] saturates.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// OneIn returns true with probability 1/n. For n that is a power of two
// this compiles to a single mask test. It panics if n <= 0.
func (r *Rand) OneIn(n int) bool {
	if n <= 0 {
		panic("xrand: OneIn called with n <= 0")
	}
	if n&(n-1) == 0 {
		return r.Uint64()&uint64(n-1) == 0
	}
	return r.Intn(n) == 0
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1,
// via inversion sampling. Used by the balls-into-bins continuous model
// (§3 of the paper), where label gaps are Exp(π_i).
func (r *Rand) ExpFloat64() float64 {
	// -ln(U) with U in (0, 1]. Avoid U == 0.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mathLog(u)
}
