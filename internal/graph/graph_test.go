package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func tinyGraph() *CSR {
	//      0 --1--> 1 --2--> 2
	//      |                 ^
	//      +-------7---------+
	return MustBuild(3, []Edge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 0, V: 2, W: 7},
	}, nil)
}

func TestBuildBasics(t *testing.T) {
	g := tinyGraph()
	if g.N != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	ts, ws := g.Neighbors(0)
	if len(ts) != 2 || ts[0] != 1 || ws[0] != 1 || ts[1] != 2 || ws[1] != 7 {
		t.Fatalf("neighbors(0) = %v %v", ts, ws)
	}
	if g.OutDegree(2) != 0 {
		t.Fatalf("deg(2) = %d", g.OutDegree(2))
	}
	if g.MaxOutDegreeVertex() != 0 {
		t.Fatalf("max-degree vertex = %d", g.MaxOutDegreeVertex())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, nil, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Build(2, []Edge{{U: 0, V: 5, W: 1}}, nil); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Build(2, nil, make([]Coord, 3)); err == nil {
		t.Error("mismatched coords accepted")
	}
}

func TestBuildPreservesMultiEdges(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1, 5}, {0, 1, 9}}, nil)
	ts, ws := g.Neighbors(0)
	if len(ts) != 2 || ws[0] != 5 || ws[1] != 9 {
		t.Fatalf("multi-edges mangled: %v %v", ts, ws)
	}
}

func TestRoadGridProperties(t *testing.T) {
	g := GenerateRoadGrid(20, 30, 7)
	if g.N != 600 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Coords == nil {
		t.Fatal("road grid missing coordinates")
	}
	if !g.Undirected() {
		t.Fatal("road grid not undirected")
	}
	if _, comps := g.ConnectedComponents(); comps != 1 {
		t.Fatalf("road grid has %d components, want 1", comps)
	}
	// Degrees bounded: grid + diagonals gives max degree 8.
	degs := g.DegreeHistogram()
	if degs[len(degs)-1] > 8 {
		t.Fatalf("max degree %d too high for a road grid", degs[len(degs)-1])
	}
	// Admissibility invariant: w >= ceil(dist * scale).
	for u := 0; u < g.N; u++ {
		ts, ws := g.Neighbors(uint32(u))
		for i, v := range ts {
			min := math.Ceil(EuclidDist(g.Coords[u], g.Coords[v]) * HeuristicScale)
			if float64(ws[i]) < min {
				t.Fatalf("edge (%d,%d) weight %d below Euclidean bound %v", u, v, ws[i], min)
			}
		}
	}
}

func TestRoadGridDeterministic(t *testing.T) {
	a := GenerateRoadGrid(10, 10, 5)
	b := GenerateRoadGrid(10, 10, 5)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestRMATProperties(t *testing.T) {
	g := GenerateRMAT(10, 8, DefaultRMATParams(), 11)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.M() < 7*1024 { // some self-loops dropped
		t.Fatalf("M = %d, want close to %d", g.M(), 8*1024)
	}
	for _, w := range g.Weights {
		if w > 255 {
			t.Fatalf("weight %d out of [0,255]", w)
		}
	}
	// Power-law check: the top vertex should hold far more than the mean
	// degree.
	degs := g.DegreeHistogram()
	mean := float64(g.M()) / float64(g.N)
	if float64(degs[len(degs)-1]) < 5*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", degs[len(degs)-1], mean)
	}
}

func TestUniformRandom(t *testing.T) {
	g := GenerateUniformRandom(100, 1000, 50, 3)
	if g.N != 100 || g.M() != 1000 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	for u := 0; u < g.N; u++ {
		ts, ws := g.Neighbors(uint32(u))
		for i, v := range ts {
			if v == uint32(u) {
				t.Fatal("self-loop generated")
			}
			if ws[i] < 1 || ws[i] > 50 {
				t.Fatalf("weight %d out of range", ws[i])
			}
		}
	}
}

func TestStandardInputs(t *testing.T) {
	gs := StandardInputs(1)
	for _, name := range []string{"USA", "WEST", "TWITTER", "WEB"} {
		g, ok := gs[name]
		if !ok {
			t.Fatalf("missing standard input %s", name)
		}
		if g.N == 0 || g.M() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if gs["USA"].Coords == nil || gs["WEST"].Coords == nil {
		t.Fatal("road inputs need coordinates for A*")
	}
	if gs["USA"].N <= gs["WEST"].N {
		t.Fatal("USA should be larger than WEST, as in Table 1")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := GenerateRoadGrid(6, 7, 9)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d", g2.N, g2.M(), g.N, g.M())
	}
	for i := range g.Targets {
		if g.Targets[i] != g2.Targets[i] || g.Weights[i] != g2.Weights[i] {
			t.Fatal("round trip changed edges")
		}
	}
}

func TestDIMACSParsing(t *testing.T) {
	in := `c sample graph
p sp 3 2
a 1 2 10
a 2 3 20
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	ts, ws := g.Neighbors(0)
	if len(ts) != 1 || ts[0] != 1 || ws[0] != 10 {
		t.Fatalf("bad arc: %v %v", ts, ws)
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "a 1 2 3\n",
		"bad header":    "p xx 3 2\n",
		"out of range":  "p sp 2 1\na 1 5 1\n",
		"bad arc":       "p sp 2 1\na 1 two 1\n",
		"unknown":       "p sp 2 1\nz 1 2 3\n",
		"missing plist": "c only comments\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*CSR{
		GenerateRoadGrid(5, 8, 1),                  // with coords
		GenerateRMAT(8, 4, DefaultRMATParams(), 2), // without coords
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N != g.N || g2.M() != g.M() {
			t.Fatalf("size changed: %d/%d", g2.N, g2.M())
		}
		for i := range g.Targets {
			if g.Targets[i] != g2.Targets[i] || g.Weights[i] != g2.Weights[i] {
				t.Fatal("edges changed")
			}
		}
		if (g.Coords == nil) != (g2.Coords == nil) {
			t.Fatal("coords presence changed")
		}
		if g.Coords != nil {
			for i := range g.Coords {
				if g.Coords[i] != g2.Coords[i] {
					t.Fatal("coords changed")
				}
			}
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph at all............."))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, rows, cols uint8) bool {
		g := GenerateRoadGrid(int(rows%8)+1, int(cols%8)+1, seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil || g2.N != g.N || g2.M() != g.M() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint pairs plus an isolated vertex.
	g := MustBuild(5, []Edge{{0, 1, 1}, {2, 3, 1}}, nil)
	labels, comps := g.ConnectedComponents()
	if comps != 3 {
		t.Fatalf("components = %d, want 3", comps)
	}
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("bad labels: %v", labels)
	}
}

func TestHeuristicZeroWithoutCoords(t *testing.T) {
	g := tinyGraph()
	if h := g.Heuristic(0, 2); h != 0 {
		t.Fatalf("coordless heuristic = %d", h)
	}
}

func TestStat(t *testing.T) {
	g := GenerateRoadGrid(4, 4, 1)
	s := g.Stat("test")
	if s.N != 16 || s.M != g.M() || !s.HasCoords || s.MaxDeg < 2 {
		t.Fatalf("bad stats: %+v", s)
	}
}
