package main

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/harness"
	"repro/internal/perfbench"
)

// TestRunJSONWritesValidReport drives the -json code path end to end on
// a tiny configuration: the written file must parse and satisfy the
// perfbench schema (the same validation CI applies to its artifact).
func TestRunJSONWritesValidReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := runJSON(path, perfbench.Config{
		Workers: 1, Prefill: 128, OpsPerWorker: 500,
		Schedulers: []string{"mq", "emq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := perfbench.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := perfbench.Validate(r); err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(r.Results))
	}
}

func TestParseShard(t *testing.T) {
	if i, n, err := parseShard("1/3"); err != nil || i != 1 || n != 3 {
		t.Fatalf("1/3 = %d/%d, %v", i, n, err)
	}
	for _, bad := range []string{"", "2", "3/3", "-1/2", "a/b", "1/0"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseCells(t *testing.T) {
	got, err := parseCells("0, 5,2")
	if err != nil || !reflect.DeepEqual(got, []int{0, 5, 2}) {
		t.Fatalf("got %v, %v", got, err)
	}
	for _, bad := range []string{"", "-1", "x", ",,"} {
		if _, err := parseCells(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSubprocessArgv pins the child invocation: the re-exec'd command
// must target exactly one cell, print a fragment on stdout, and never
// inherit -subproc or -shard (which would recurse or mis-slice).
func TestSubprocessArgv(t *testing.T) {
	cfg := harness.RunConfig{Scale: 2, Threads: []int{1, 2}, MaxThreads: 2,
		Reps: 3, Validate: true, Seed: 9}
	mk, err := subprocessExec("nice -n 10", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmd := mk("fig2")(7)
	argv := strings.Join(cmd.Args, " ")
	if !strings.HasPrefix(argv, "nice -n 10 ") {
		t.Fatalf("prefix not applied: %q", argv)
	}
	for _, want := range []string{"-exp fig2", "-cells 7", "-fragment -", "-seed 9",
		"-scale 2", "-threads 1,2", "-maxthreads 2", "-reps 3", "-validate"} {
		if !strings.Contains(argv, want) {
			t.Errorf("argv missing %q: %q", want, argv)
		}
	}
	for _, bad := range []string{"-subproc", "-shard"} {
		if strings.Contains(argv, bad) {
			t.Errorf("argv must not carry %q: %q", bad, argv)
		}
	}
}

func TestParseThreads(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"1,2,4", []int{1, 2, 4}, false},
		{"8", []int{8}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"", nil, true},
		{"0", nil, true},
		{"-3", nil, true},
		{"two", nil, true},
		{",,", nil, true},
	}
	for _, tc := range cases {
		got, err := parseThreads(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("%q: expected error, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%q: got %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

// expColumnStarts returns the rune offsets at which a -list row's
// fields begin; runs of two or more spaces separate the columns (the
// paper and description fields contain single spaces).
func expColumnStarts(line string) []int {
	var starts []int
	for _, loc := range regexp.MustCompile(`(?:^|  +)\S`).FindAllStringIndex(line, -1) {
		_, size := utf8.DecodeLastRuneInString(line[loc[0]:loc[1]])
		starts = append(starts, utf8.RuneCountInString(line[:loc[1]-size]))
	}
	return starts
}

// TestRenderExperimentListAlignment is the golden test for `smqbench
// -list`: every experiment row must place its paper-artifact and
// description fields in the same columns. The fixed %-40s width this
// rendering replaced overflowed on the longer follow-up baseline
// titles and misaligned the descriptions after them.
func TestRenderExperimentListAlignment(t *testing.T) {
	var b strings.Builder
	renderExperimentList(&b)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "Available experiments") {
		t.Fatalf("unexpected list shape:\n%s", out)
	}
	rows := lines[1:]
	first := expColumnStarts(rows[0])
	if len(first) != 3 {
		t.Fatalf("row has %d columns, want 3: %q", len(first), rows[0])
	}
	ids := make(map[string]bool, len(rows))
	for _, row := range rows {
		starts := expColumnStarts(row)
		if len(starts) != 3 {
			t.Errorf("row has %d columns, want 3: %q", len(starts), row)
			continue
		}
		for i := range starts {
			if starts[i] != first[i] {
				t.Errorf("column %d starts at rune %d, first row at %d: %q", i, starts[i], first[i], row)
			}
		}
		ids[strings.Fields(row)[0]] = true
	}
	// The historically overflowing rows must be present and, per the
	// loop above, aligned: emq's paper title is 41 runes and rankprobe's
	// id is wider than the old 8-rune id column.
	for _, id := range []string{"emq", "desim", "rankprobe"} {
		if !ids[id] {
			t.Errorf("list missing experiment %q:\n%s", id, out)
		}
	}
	if len(ids) != len(harness.Registry()) {
		t.Errorf("list shows %d experiments, registry has %d", len(ids), len(harness.Registry()))
	}
}
